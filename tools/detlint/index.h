/**
 * @file
 * Phase 1 of detlint's two-phase analysis: the declaration index.
 *
 * detlint v1 was a per-line token scanner; the cross-file rules
 * (R10 lock-discipline, R11 view-escape, R12 snapshot-coverage)
 * need symbols. buildIndex() walks every scanned file's token
 * stream once and records, per class: the data members (with their
 * EYECOD_GUARDED_BY annotations and flattened type text), and the
 * member-function bodies as token ranges — including out-of-line
 * `Class::method` definitions in other files, matched back to the
 * declaring class by qualifier suffix. Free functions keep their
 * signature and body ranges too, so codec pairs written as free
 * functions (writeTicket/readTicket) participate in R12.
 *
 * The index is built from the comment- and preprocessor-free token
 * stream (SourceFile::code), so `#define EYECOD_GUARDED_BY(x)` in a
 * header never parses as an annotation, while the per-line rules
 * keep running on the stream that retains preprocessor tokens.
 *
 * Like the rest of detlint this is a heuristic lexer-level parse,
 * not a compiler front end: templates, macros, and exotic declarator
 * syntax degrade to "not indexed" rather than to wrong answers, and
 * every symbol rule only fires on constructs the index understood.
 */

#ifndef EYECOD_TOOLS_DETLINT_INDEX_H
#define EYECOD_TOOLS_DETLINT_INDEX_H

#include <map>
#include <set>
#include <string>
#include <vector>

#include "findings.h"
#include "lexer.h"

namespace eyecod {
namespace detlint {

// ---------------------------------------------------------------------
// Suppressions (shared by the per-line and symbol rules).
// ---------------------------------------------------------------------

/** Rules silenced by detlint:allow comments, per file. */
struct Suppressions
{
    std::set<Rule> file_wide;
    /** line -> rules suppressed on that line. */
    std::map<int, std::set<Rule>> by_line;

    bool
    suppressed(Rule rule, int line) const
    {
        if (file_wide.count(rule))
            return true;
        auto it = by_line.find(line);
        return it != by_line.end() && it->second.count(rule) > 0;
    }
};

/** Parse "R1,warn-in-loop" (already inside parens) into rules. */
void parseRuleList(const std::string &list, std::set<Rule> *out);

/** Scan the full token stream (comments included) for
 *  detlint:allow(...) / detlint:allow-file(...) directives. */
Suppressions collectSuppressions(const std::vector<Token> &toks);

// ---------------------------------------------------------------------
// Token helpers over comment-free streams.
// ---------------------------------------------------------------------

inline bool
isPunct(const Token &t, const char *text)
{
    return t.kind == TokKind::Punct && t.text == text;
}

inline bool
isIdent(const Token &t, const char *text)
{
    return t.kind == TokKind::Identifier && t.text == text;
}

/** Index of the matching close paren for the open paren at @p open
 *  (also balances '{' and '['); toks.size() when unbalanced. */
size_t matchParen(const std::vector<Token> &toks, size_t open);

/** Index of the matching close brace for the open brace at @p open. */
size_t matchBrace(const std::vector<Token> &toks, size_t open);

// ---------------------------------------------------------------------
// The index.
// ---------------------------------------------------------------------

/** One scanned file, pre-lexed once for all phases. */
struct SourceFile
{
    std::string relpath;
    /** Comment-free stream: what the per-line rules scan. */
    std::vector<Token> toks;
    /** Comment- and preprocessor-free stream: what the index and the
     *  symbol rules walk (ranges below point into this vector). */
    std::vector<Token> code;
    Suppressions sup;
};

/** Lex @p content into a SourceFile (fills all token streams). */
SourceFile makeSourceFile(const std::string &relpath,
                          const std::string &content);

/** One data member of an indexed class. */
struct MemberVar
{
    std::string name;
    /** Flattened declaration text before the name (type + storage). */
    std::string type;
    /** Mutex expression from EYECOD_GUARDED_BY(...); empty if none. */
    std::string guarded_by;
    size_t file = 0; ///< Index into the SourceFile vector.
    int line = 0;    ///< Declaration line.
    bool is_static = false;
};

/** One member function (declaration or definition). */
struct MemberFunc
{
    std::string name;
    size_t file = 0;
    int line = 0;
    /** Signature tokens [sig_begin, sig_end) in the file's code
     *  stream: return type through the parameter list and trailing
     *  qualifiers (everything before the body / semicolon). */
    size_t sig_begin = 0, sig_end = 0;
    /** Body tokens [body_begin, body_end) including both braces;
     *  body_begin == body_end for a declaration without a body. */
    size_t body_begin = 0, body_end = 0;
    /** Capabilities from EYECOD_REQUIRES(...) on the signature. */
    std::vector<std::string> requires_caps;
    bool ctor_dtor = false;

    bool hasBody() const { return body_end > body_begin; }
};

/** One class/struct with its members and methods. */
struct ClassInfo
{
    /** Class-scope chain ("Outer::Inner"); namespaces excluded. */
    std::string name;
    size_t file = 0;
    int line = 0;
    std::vector<MemberVar> members;
    std::vector<MemberFunc> methods;

    const MemberVar *
    findMember(const std::string &member_name) const
    {
        for (const MemberVar &m : members)
            if (m.name == member_name)
                return &m;
        return nullptr;
    }
};

/** One free (namespace-scope) function definition. */
struct FreeFunc
{
    std::string name;
    size_t file = 0;
    int line = 0;
    size_t sig_begin = 0, sig_end = 0;
    size_t body_begin = 0, body_end = 0;
};

/** The repo-wide declaration index (phase 1 output). */
struct DeclIndex
{
    std::vector<ClassInfo> classes;
    std::vector<FreeFunc> free_funcs;

    /**
     * Class whose scope chain matches @p qualifier — exactly, or as
     * a trailing suffix on a "::" boundary in either direction (so
     * "BoundedFrameQueue" resolves `serve::BoundedFrameQueue::push`
     * and "Outer::Inner" resolves `Inner::method` does not). -1 when
     * no unique match exists.
     */
    int findClass(const std::string &qualifier) const;
};

/** Build the index over every file (phase 1). */
DeclIndex buildIndex(const std::vector<SourceFile> &files);

} // namespace detlint
} // namespace eyecod

#endif // EYECOD_TOOLS_DETLINT_INDEX_H
