/**
 * @file
 * Header self-containment check (rule H1).
 *
 * Every header under src/ must compile as the sole content of a
 * translation unit: a header that silently relies on what a previous
 * include happened to pull in breaks as soon as include order
 * changes, which in a 10-subsystem tree is every other refactor.
 * The check materializes a one-line TU per header and runs the real
 * compiler in syntax-only mode, so "self-contained" means exactly
 * what the build system would see.
 */

#ifndef EYECOD_TOOLS_DETLINT_HEADER_CHECK_H
#define EYECOD_TOOLS_DETLINT_HEADER_CHECK_H

#include <string>
#include <vector>

#include "findings.h"

namespace eyecod {
namespace detlint {

struct HeaderCheckOptions
{
    std::string cxx;      ///< Compiler binary; empty = $CXX or "c++".
    std::string std_flag = "-std=c++20";
    std::vector<std::string> include_dirs; ///< -I roots for the TU.
};

/**
 * Compile every .h/.hpp under @p roots standalone. Returns one H1
 * finding per header that fails, message carrying the first
 * diagnostic line. @p checked (optional) receives the count of
 * headers compiled.
 */
std::vector<Finding> checkHeaders(const std::string &repo_root,
                                  const std::vector<std::string> &roots,
                                  const HeaderCheckOptions &opts,
                                  int *checked = nullptr);

} // namespace detlint
} // namespace eyecod

#endif // EYECOD_TOOLS_DETLINT_HEADER_CHECK_H
