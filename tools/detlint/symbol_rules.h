/**
 * @file
 * Phase 2 of detlint's two-phase analysis: cross-file symbol rules.
 *
 *  R10 lock-discipline: a data member annotated
 *      EYECOD_GUARDED_BY(mu_) may only be touched inside a lock
 *      scope that names that mutex (MutexLock / UniqueMutexLock /
 *      std::lock_guard / unique_lock / scoped_lock), or from a
 *      method carrying EYECOD_REQUIRES(mu_). The model is textual
 *      and scope-wide: a lock declared mid-block covers the rest of
 *      the block (and lambdas inside it), so an access *before* the
 *      lock declaration — the "lock taken too late" bug — is flagged.
 *      Constructors and destructors are exempt (no concurrent
 *      callers exist yet / anymore).
 *  R11 view-escape: ImageView / ImageConstView are epoch-scoped
 *      loans from a BufferArena. Storing one where it outlives the
 *      epoch — a view-typed data member, a static view variable, a
 *      function returning a reference to a view, or a member
 *      assigned from an arena allocation — dangles at the next
 *      arena reset. Scoped to the frame-spine dirs + src/core/.
 *  R12 snapshot-coverage: for every class with both a snapshot
 *      writer (save.. or write.. taking a SnapshotWriter) and a
 *      reader (restore.. or read.. taking a SnapshotReader), the
 *      member sets the
 *      two sides reference must agree, and together they must cover
 *      every declared field; a field the writer saves but no reader
 *      restores (or vice versa) is format drift that silently loses
 *      state across checkpoint/restore. Free codec functions are
 *      paired to their class through the parameter list.
 *
 * All three rules run over the DeclIndex (index.h) and honor the
 * same detlint:allow suppression comments as the per-line rules,
 * anchored at the finding's own file and line.
 */

#ifndef EYECOD_TOOLS_DETLINT_SYMBOL_RULES_H
#define EYECOD_TOOLS_DETLINT_SYMBOL_RULES_H

#include <vector>

#include "index.h"
#include "rules.h"

namespace eyecod {
namespace detlint {

/** Run R10/R11/R12 over the index (suppressions NOT yet applied —
 *  the caller filters against each finding's anchor file). */
std::vector<Finding> runSymbolRules(const DeclIndex &ix,
                                    const std::vector<SourceFile> &files,
                                    const AnalyzeOptions &opts);

} // namespace detlint
} // namespace eyecod

#endif // EYECOD_TOOLS_DETLINT_SYMBOL_RULES_H
