#include "findings.h"

#include <algorithm>
#include <tuple>

namespace eyecod {
namespace detlint {

const std::vector<RuleInfo> &
allRules()
{
    static const std::vector<RuleInfo> kTable = {
        {Rule::R1UnseededRng, "R1", "unseeded-rng",
         "randomness outside the seeded eyecod::Rng"},
        {Rule::R2WallClock, "R2", "wall-clock",
         "wall-clock time in virtual-time directories"},
        {Rule::R3UnorderedIter, "R3", "unordered-iteration",
         "iteration over hash-ordered containers"},
        {Rule::R4HotPathThrow, "R4", "hot-path-throw-or-discard",
         "throw / discarded checked result on a hot path"},
        {Rule::R5WarnInLoop, "R5", "warn-in-loop",
         "unbounded warn() inside a loop body"},
        {Rule::R6FloatReduction, "R6", "float-reduction-order",
         "reduction primitives with unspecified order"},
        {Rule::R7ImageCopy, "R7", "image-copy",
         "by-value Image traffic on the frame spine"},
        {Rule::R8UnboundedPushBack, "R8", "unbounded-push-back",
         "member container growth on serve hot paths"},
        {Rule::R9RawMemcpySerialize, "R9", "raw-memcpy-serialize",
         "raw-memory (de)serialization in snapshot code"},
        {Rule::R10LockDiscipline, "R10", "lock-discipline",
         "EYECOD_GUARDED_BY member accessed without its mutex"},
        {Rule::R11ViewEscape, "R11", "view-escape",
         "arena view stored where it outlives its epoch"},
        {Rule::R12SnapshotCoverage, "R12", "snapshot-coverage",
         "snapshot writer/reader field sets drift"},
        {Rule::H1HeaderSelfContained, "H1", "header-self-contained",
         "header fails to compile standalone"},
    };
    return kTable;
}

namespace {

/** Table row for @p rule; falls back to the first row (never hit —
 *  ruleId()'s switch-free lookup is exercised for every enum value by
 *  the round-trip test). */
const RuleInfo &
infoOf(Rule rule)
{
    for (const RuleInfo &info : allRules())
        if (info.rule == rule)
            return info;
    return allRules().front();
}

} // namespace

const char *
ruleId(Rule rule)
{
    return infoOf(rule).id;
}

const char *
ruleName(Rule rule)
{
    return infoOf(rule).name;
}

bool
parseRule(const std::string &text, Rule *out)
{
    for (const RuleInfo &info : allRules()) {
        if (text == info.id || text == info.name) {
            *out = info.rule;
            return true;
        }
    }
    return false;
}

void
sortFindings(std::vector<Finding> *findings)
{
    std::stable_sort(findings->begin(), findings->end(),
                     [](const Finding &a, const Finding &b) {
                         return std::tie(a.file, a.line, a.rule) <
                                std::tie(b.file, b.line, b.rule);
                     });
}

void
emitText(const std::vector<Finding> &findings, std::ostream &os)
{
    for (const Finding &f : findings) {
        os << f.file << ":" << f.line << ": [" << ruleId(f.rule) << "-"
           << ruleName(f.rule) << "] " << f.message << "\n";
    }
}

namespace {

/** Escape a string for embedding in a JSON document. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

void
emitJson(const std::vector<Finding> &findings, std::ostream &os)
{
    os << "{\n  \"findings\": [";
    for (size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        os << (i ? ",\n    " : "\n    ") << "{\"file\": \""
           << jsonEscape(f.file) << "\", \"line\": " << f.line
           << ", \"rule\": \"" << ruleId(f.rule) << "\", \"name\": \""
           << ruleName(f.rule) << "\", \"message\": \""
           << jsonEscape(f.message) << "\"}";
    }
    os << (findings.empty() ? "]" : "\n  ]") << ",\n  \"count\": "
       << findings.size() << "\n}\n";
}

} // namespace detlint
} // namespace eyecod
