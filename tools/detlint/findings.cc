#include "findings.h"

#include <algorithm>
#include <tuple>

namespace eyecod {
namespace detlint {

const char *
ruleId(Rule rule)
{
    switch (rule) {
    case Rule::R1UnseededRng: return "R1";
    case Rule::R2WallClock: return "R2";
    case Rule::R3UnorderedIter: return "R3";
    case Rule::R4HotPathThrow: return "R4";
    case Rule::R5WarnInLoop: return "R5";
    case Rule::R6FloatReduction: return "R6";
    case Rule::R7ImageCopy: return "R7";
    case Rule::R8UnboundedPushBack: return "R8";
    case Rule::R9RawMemcpySerialize: return "R9";
    case Rule::H1HeaderSelfContained: return "H1";
    }
    return "R?";
}

const char *
ruleName(Rule rule)
{
    switch (rule) {
    case Rule::R1UnseededRng: return "unseeded-rng";
    case Rule::R2WallClock: return "wall-clock";
    case Rule::R3UnorderedIter: return "unordered-iteration";
    case Rule::R4HotPathThrow: return "hot-path-throw-or-discard";
    case Rule::R5WarnInLoop: return "warn-in-loop";
    case Rule::R6FloatReduction: return "float-reduction-order";
    case Rule::R7ImageCopy: return "image-copy";
    case Rule::R8UnboundedPushBack: return "unbounded-push-back";
    case Rule::R9RawMemcpySerialize: return "raw-memcpy-serialize";
    case Rule::H1HeaderSelfContained: return "header-self-contained";
    }
    return "unknown";
}

bool
parseRule(const std::string &text, Rule *out)
{
    static const Rule kAll[] = {
        Rule::R1UnseededRng,   Rule::R2WallClock,
        Rule::R3UnorderedIter, Rule::R4HotPathThrow,
        Rule::R5WarnInLoop,    Rule::R6FloatReduction,
        Rule::R7ImageCopy,     Rule::R8UnboundedPushBack,
        Rule::R9RawMemcpySerialize,
        Rule::H1HeaderSelfContained,
    };
    for (Rule r : kAll) {
        if (text == ruleId(r) || text == ruleName(r)) {
            *out = r;
            return true;
        }
    }
    return false;
}

void
sortFindings(std::vector<Finding> *findings)
{
    std::stable_sort(findings->begin(), findings->end(),
                     [](const Finding &a, const Finding &b) {
                         return std::tie(a.file, a.line, a.rule) <
                                std::tie(b.file, b.line, b.rule);
                     });
}

void
emitText(const std::vector<Finding> &findings, std::ostream &os)
{
    for (const Finding &f : findings) {
        os << f.file << ":" << f.line << ": [" << ruleId(f.rule) << "-"
           << ruleName(f.rule) << "] " << f.message << "\n";
    }
}

namespace {

/** Escape a string for embedding in a JSON document. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

void
emitJson(const std::vector<Finding> &findings, std::ostream &os)
{
    os << "{\n  \"findings\": [";
    for (size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        os << (i ? ",\n    " : "\n    ") << "{\"file\": \""
           << jsonEscape(f.file) << "\", \"line\": " << f.line
           << ", \"rule\": \"" << ruleId(f.rule) << "\", \"name\": \""
           << ruleName(f.rule) << "\", \"message\": \""
           << jsonEscape(f.message) << "\"}";
    }
    os << (findings.empty() ? "]" : "\n  ]") << ",\n  \"count\": "
       << findings.size() << "\n}\n";
}

} // namespace detlint
} // namespace eyecod
