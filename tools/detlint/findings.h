/**
 * @file
 * Finding records and output formatting for detlint.
 *
 * A Finding pins one rule violation to a file:line. Output comes in
 * two formats: a human-readable `file:line: [RULE] message` stream
 * for terminals, and a machine-readable JSON document for CI
 * tooling. Findings are always emitted in (file, line, rule) order
 * so output is stable across runs and filesystem enumeration order.
 */

#ifndef EYECOD_TOOLS_DETLINT_FINDINGS_H
#define EYECOD_TOOLS_DETLINT_FINDINGS_H

#include <ostream>
#include <string>
#include <vector>

namespace eyecod {
namespace detlint {

/** Stable identifiers for the enforced rules. */
enum class Rule {
    R1UnseededRng = 0, ///< Randomness outside common/rng.h.
    R2WallClock,       ///< Wall-clock time in virtual-time dirs.
    R3UnorderedIter,   ///< Iteration over unordered containers.
    R4HotPathThrow,    ///< throw / discarded Result-Status in hot paths.
    R5WarnInLoop,      ///< Unbounded warn() inside a loop body.
    R6FloatReduction,  ///< Reduction-order-hazardous primitives.
    R7ImageCopy,       ///< By-value Image traffic in hot-path dirs.
    R8UnboundedPushBack, ///< push_back into members on serve hot paths.
    R9RawMemcpySerialize, ///< memcpy/reinterpret_cast (de)serialization
                          ///  in snapshot/codec code.
    R10LockDiscipline,  ///< EYECOD_GUARDED_BY member touched lock-free.
    R11ViewEscape,      ///< Arena view stored past its epoch.
    R12SnapshotCoverage, ///< Writer/reader field sets drift.
    H1HeaderSelfContained, ///< Header fails standalone compile.
};

/**
 * One row of the rule table: the single source of truth every rule
 * listing (parseRule, --list-rules, the default enabled set) derives
 * from, so adding an enum value without a row is a compile-time
 * error in ruleId()'s switch and the listings can never drift again.
 */
struct RuleInfo
{
    Rule rule;
    const char *id;      ///< Short id ("R1"), suppression comments.
    const char *name;    ///< Long kebab-case name ("unseeded-rng").
    const char *summary; ///< One-line description for --list-rules.
};

/** Every rule, in id order. */
const std::vector<RuleInfo> &allRules();

/** Short id ("R1") used in suppression comments and output. */
const char *ruleId(Rule rule);

/** Long kebab-case name ("unseeded-rng"). */
const char *ruleName(Rule rule);

/** Parse "R1" or "unseeded-rng" into a Rule; false when unknown. */
bool parseRule(const std::string &text, Rule *out);

/** One rule violation at a specific location. */
struct Finding
{
    Rule rule = Rule::R1UnseededRng;
    std::string file; ///< Repo-relative path.
    int line = 0;     ///< 1-based.
    std::string message;
};

/** Sort findings into the canonical (file, line, rule) order. */
void sortFindings(std::vector<Finding> *findings);

/** `file:line: [id-name] message`, one per line. */
void emitText(const std::vector<Finding> &findings, std::ostream &os);

/** JSON: {"findings": [{file, line, rule, name, message}], "count"}. */
void emitJson(const std::vector<Finding> &findings, std::ostream &os);

} // namespace detlint
} // namespace eyecod

#endif // EYECOD_TOOLS_DETLINT_FINDINGS_H
