/**
 * @file
 * The determinism & robustness rules detlint enforces.
 *
 * Each rule encodes an invariant the repo's correctness story rests
 * on but no compiler checks:
 *
 *  R1 unseeded-rng: all randomness flows through the explicitly
 *     seeded eyecod::Rng in src/common/rng.h. Naming a standard
 *     engine or calling C-library randomness anywhere else breaks
 *     bitwise replay.
 *  R2 wall-clock: the simulator, serving engine, optics, and NN
 *     runtime run on *virtual* time. system_clock / time() / clock()
 *     are banned in src/{accel,serve,flatcam,nn}; steady_clock is
 *     tolerated only where real elapsed time is the point — bench/
 *     and the thread pool's internal bookkeeping.
 *  R3 unordered-iteration: iterating an unordered container feeds
 *     hash-order into whatever consumes the loop (accumulation,
 *     scheduling, serialization) and hash order is not part of the
 *     contract. Banned across src/.
 *  R4 hot-path-throw-or-discard: hot-path dirs are exception-free
 *     (errors travel as Status / Result<T>), and a checked API's
 *     return must not be silently dropped at statement position.
 *  R5 warn-in-loop: an unbounded warn() inside a loop floods stderr
 *     at streaming rates; loop bodies must use warnLimited().
 *  R6 float-reduction-order: std::reduce / std::execution::par make
 *     float accumulation order unspecified — banned in src/, where
 *     every kernel is written to a fixed accumulation order.
 *  R7 image-copy: on the zero-copy frame spine (src/{flatcam,
 *     eyetrack,nn,serve}) a by-value Image parameter or a
 *     copy-construction from another Image duplicates a full frame
 *     per call; frames travel as ImageView / ImageConstView.
 *  R8 unbounded-push-back: push_back / emplace_back into a member
 *     container (receiver named with the trailing-underscore member
 *     convention, a this-> chain, or a member-of-member chain) inside
 *     src/serve/, whose engine runs per-frame at streaming rates.
 *     Member containers there must be pooled or explicitly bounded;
 *     every legitimate site carries a `detlint:allow(R8)` comment
 *     stating its bound.
 *  R9 raw-memcpy-serialize: in snapshot/codec code (any file whose
 *     path mentions "snapshot"), memcpy/memmove calls and
 *     reinterpret_cast bake struct layout, padding, and host
 *     endianness into the on-disk snapshot format. Every field must
 *     travel through the typed field-wise codec calls
 *     (common/snapshot.h) so the format stays portable and a hostile
 *     snapshot can never be reinterpreted as a live struct.
 *
 * The symbol-aware rules (R10 lock-discipline, R11 view-escape, R12
 * snapshot-coverage) run in a second phase over a repo-wide
 * declaration index — see index.h and symbol_rules.h for the model
 * each enforces.
 *
 * The list above is documentation; the authoritative rule table is
 * allRules() in findings.h, which every listing (parseRule,
 * --list-rules, the default enabled set) derives from.
 *
 * Suppression: `// detlint:allow(R1)` (or the long rule name)
 * suppresses that rule on the comment's line and the line below;
 * `// detlint:allow-file(R1,R5)` suppresses for the whole file.
 */

#ifndef EYECOD_TOOLS_DETLINT_RULES_H
#define EYECOD_TOOLS_DETLINT_RULES_H

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "findings.h"

namespace eyecod {
namespace detlint {

/** Which rules to run (scoping is still applied per file). */
struct AnalyzeOptions
{
    /** Empty means "every rule in allRules()". */
    std::set<Rule> enabled;

    /** True when @p rule should run. */
    bool
    runs(Rule rule) const
    {
        return enabled.empty() || enabled.count(rule) > 0;
    }
};

/**
 * Analyze one translation unit.
 *
 * @param relpath repo-relative path with '/' separators; drives the
 *                per-directory rule scoping documented above.
 * @param content full file text.
 */
std::vector<Finding> analyzeSource(const std::string &relpath,
                                   const std::string &content,
                                   const AnalyzeOptions &opts = {});

/**
 * Analyze a set of translation units together: the per-line rules
 * run on each file, then the symbol rules (R10/R11/R12) run over a
 * declaration index built from all of them, so a class declared in
 * one file is checked against method bodies defined in another.
 * @param sources (repo-relative path, file content) pairs.
 */
std::vector<Finding>
analyzeSources(
    const std::vector<std::pair<std::string, std::string>> &sources,
    const AnalyzeOptions &opts = {});

/**
 * Recursively analyze every .h/.hpp/.cc/.cpp under @p roots
 * (directories or single files, absolute or relative to
 * @p repo_root). Directories named build, .git, or fixtures are
 * skipped. Findings come back sorted; @p scanned_files (optional)
 * receives the repo-relative paths visited.
 */
std::vector<Finding>
analyzeTree(const std::string &repo_root,
            const std::vector<std::string> &roots,
            const AnalyzeOptions &opts = {},
            std::vector<std::string> *scanned_files = nullptr);

} // namespace detlint
} // namespace eyecod

#endif // EYECOD_TOOLS_DETLINT_RULES_H
