#include "header_check.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

namespace fs = std::filesystem;

namespace eyecod {
namespace detlint {

namespace {

/** Shell-quote a path for the compiler command line. */
std::string
shellQuote(const std::string &s)
{
    std::string out = "'";
    for (char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += "'";
    return out;
}

/** First non-empty line of @p text, trimmed. */
std::string
firstLine(const std::string &text)
{
    size_t start = text.find_first_not_of(" \t\n\r");
    if (start == std::string::npos)
        return "";
    size_t end = text.find('\n', start);
    return text.substr(start, end == std::string::npos ? std::string::npos
                                                       : end - start);
}

} // namespace

std::vector<Finding>
checkHeaders(const std::string &repo_root,
             const std::vector<std::string> &roots,
             const HeaderCheckOptions &opts, int *checked)
{
    const fs::path base = repo_root.empty() ? fs::current_path()
                                            : fs::path(repo_root);
    std::string cxx = opts.cxx;
    if (cxx.empty()) {
        const char *env = std::getenv("CXX");
        cxx = (env && *env) ? env : "c++";
    }

    std::vector<fs::path> headers;
    for (const std::string &root : roots) {
        fs::path p(root);
        if (p.is_relative())
            p = base / p;
        std::error_code ec;
        if (fs::is_regular_file(p, ec)) {
            headers.push_back(p);
            continue;
        }
        if (!fs::is_directory(p, ec))
            continue;
        for (fs::recursive_directory_iterator it(p, ec), end;
             it != end && !ec; it.increment(ec)) {
            const std::string name = it->path().filename().string();
            if (it->is_directory() &&
                (name == "build" || name == ".git" || name == "fixtures")) {
                it.disable_recursion_pending();
                continue;
            }
            const std::string ext = it->path().extension().string();
            if (it->is_regular_file() && (ext == ".h" || ext == ".hpp"))
                headers.push_back(it->path());
        }
    }

    const fs::path tmp_dir =
        fs::temp_directory_path() / "detlint_header_check";
    std::error_code ec;
    fs::create_directories(tmp_dir, ec);
    const fs::path tu = tmp_dir / "tu.cc";
    const fs::path diag = tmp_dir / "diag.txt";

    std::vector<Finding> findings;
    int count = 0;
    for (const fs::path &header : headers) {
        {
            std::ofstream out(tu);
            out << "#include \"" << header.generic_string() << "\"\n";
        }
        std::string cmd = shellQuote(cxx) + " " + opts.std_flag +
                          " -fsyntax-only -x c++";
        for (const std::string &inc : opts.include_dirs)
            cmd += " -I " + shellQuote(inc);
        cmd += " " + shellQuote(tu.string()) + " > " +
               shellQuote(diag.string()) + " 2>&1";
        const int rc = std::system(cmd.c_str());
        ++count;
        if (rc == 0)
            continue;

        std::ifstream in(diag);
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        fs::path rel = fs::relative(header, base, ec);
        const std::string relpath = (ec || rel.empty())
                                        ? header.generic_string()
                                        : rel.generic_string();
        findings.push_back(
            {Rule::H1HeaderSelfContained, relpath, 1,
             "header is not self-contained: " + firstLine(text)});
    }
    if (checked)
        *checked = count;
    sortFindings(&findings);
    return findings;
}

} // namespace detlint
} // namespace eyecod
