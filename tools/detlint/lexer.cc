#include "lexer.h"

#include <cctype>

namespace eyecod {
namespace detlint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Multi-char punctuators detlint cares about as single tokens. Only
 * the ones rules inspect need to be glued; everything else can fall
 * apart into single chars without changing any rule's behavior.
 */
bool
isGluedPunct(char a, char b)
{
    return (a == ':' && b == ':') || (a == '-' && b == '>') ||
           (a == '<' && b == '<') || (a == '>' && b == '>');
}

} // namespace

std::vector<Token>
lex(const std::string &source)
{
    std::vector<Token> toks;
    const size_t n = source.size();
    size_t i = 0;
    int line = 1;
    bool preproc = false;      // inside a # directive line
    bool line_has_token = false;

    auto push = [&](TokKind kind, std::string text, int tok_line) {
        Token t;
        t.kind = kind;
        t.text = std::move(text);
        t.line = tok_line;
        t.preproc = preproc;
        toks.push_back(std::move(t));
    };

    while (i < n) {
        char c = source[i];

        if (c == '\n') {
            // A directive ends at an unescaped newline.
            if (preproc && (i == 0 || source[i - 1] != '\\'))
                preproc = false;
            ++line;
            line_has_token = false;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // Line comment.
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            size_t start = i;
            while (i < n && source[i] != '\n')
                ++i;
            push(TokKind::Comment, source.substr(start, i - start), line);
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && source[i + 1] == '*') {
            size_t start = i;
            int start_line = line;
            i += 2;
            while (i + 1 < n &&
                   !(source[i] == '*' && source[i + 1] == '/')) {
                if (source[i] == '\n')
                    ++line;
                ++i;
            }
            i = (i + 1 < n) ? i + 2 : n;
            push(TokKind::Comment, source.substr(start, i - start),
                 start_line);
            continue;
        }

        // Preprocessor directive: '#' first token on the line.
        if (c == '#' && !line_has_token) {
            preproc = true;
            push(TokKind::Punct, "#", line);
            line_has_token = true;
            ++i;
            continue;
        }

        // Raw string literal: R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && source[i + 1] == '"') {
            size_t d0 = i + 2;
            size_t dp = d0;
            while (dp < n && source[dp] != '(' && source[dp] != '\n')
                ++dp;
            if (dp < n && source[dp] == '(') {
                std::string close(1, ')');
                close += source.substr(d0, dp - d0);
                close += '"';
                size_t end = source.find(close, dp + 1);
                size_t stop = (end == std::string::npos)
                                  ? n
                                  : end + close.size();
                int start_line = line;
                for (size_t k = i; k < stop; ++k)
                    if (source[k] == '\n')
                        ++line;
                push(TokKind::String, source.substr(i, stop - i),
                     start_line);
                line_has_token = true;
                i = stop;
                continue;
            }
        }

        // String / char literal with escapes.
        if (c == '"' || c == '\'') {
            char quote = c;
            size_t start = i;
            ++i;
            while (i < n && source[i] != quote) {
                if (source[i] == '\\' && i + 1 < n)
                    ++i;
                if (source[i] == '\n')
                    ++line;
                ++i;
            }
            i = (i < n) ? i + 1 : n;
            push(quote == '"' ? TokKind::String : TokKind::CharLit,
                 source.substr(start, i - start), line);
            line_has_token = true;
            continue;
        }

        if (isIdentStart(c)) {
            size_t start = i;
            while (i < n && isIdentChar(source[i]))
                ++i;
            push(TokKind::Identifier, source.substr(start, i - start),
                 line);
            line_has_token = true;
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t start = i;
            while (i < n && (isIdentChar(source[i]) || source[i] == '.' ||
                             ((source[i] == '+' || source[i] == '-') &&
                              (source[i - 1] == 'e' || source[i - 1] == 'E' ||
                               source[i - 1] == 'p' || source[i - 1] == 'P'))))
                ++i;
            push(TokKind::Number, source.substr(start, i - start), line);
            line_has_token = true;
            continue;
        }

        // Punctuation, gluing the few two-char lexemes rules inspect.
        if (i + 1 < n && isGluedPunct(c, source[i + 1])) {
            push(TokKind::Punct, source.substr(i, 2), line);
            i += 2;
        } else {
            push(TokKind::Punct, std::string(1, c), line);
            ++i;
        }
        line_has_token = true;
    }
    return toks;
}

} // namespace detlint
} // namespace eyecod
