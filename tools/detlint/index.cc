#include "index.h"

#include <sstream>

namespace eyecod {
namespace detlint {

// ---------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------

void
parseRuleList(const std::string &list, std::set<Rule> *out)
{
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
        const size_t a = item.find_first_not_of(" \t");
        const size_t b = item.find_last_not_of(" \t");
        if (a == std::string::npos)
            continue;
        Rule rule;
        if (parseRule(item.substr(a, b - a + 1), &rule))
            out->insert(rule);
    }
}

Suppressions
collectSuppressions(const std::vector<Token> &toks)
{
    Suppressions sup;
    for (const Token &t : toks) {
        if (t.kind != TokKind::Comment)
            continue;
        for (const bool file_wide : {false, true}) {
            const std::string marker = file_wide ? "detlint:allow-file("
                                                 : "detlint:allow(";
            size_t pos = 0;
            while ((pos = t.text.find(marker, pos)) != std::string::npos) {
                const size_t open = pos + marker.size();
                const size_t close = t.text.find(')', open);
                if (close == std::string::npos)
                    break;
                std::set<Rule> rules;
                parseRuleList(t.text.substr(open, close - open), &rules);
                if (file_wide) {
                    sup.file_wide.insert(rules.begin(), rules.end());
                } else {
                    sup.by_line[t.line].insert(rules.begin(), rules.end());
                    sup.by_line[t.line + 1].insert(rules.begin(),
                                                   rules.end());
                }
                pos = close;
            }
        }
    }
    return sup;
}

// ---------------------------------------------------------------------
// Token helpers.
// ---------------------------------------------------------------------

size_t
matchParen(const std::vector<Token> &toks, size_t open)
{
    int depth = 0;
    for (size_t i = open; i < toks.size(); ++i) {
        if (isPunct(toks[i], "(") || isPunct(toks[i], "{") ||
            isPunct(toks[i], "["))
            ++depth;
        else if ((isPunct(toks[i], ")") || isPunct(toks[i], "}") ||
                  isPunct(toks[i], "]")) &&
                 --depth == 0)
            return i;
    }
    return toks.size();
}

size_t
matchBrace(const std::vector<Token> &toks, size_t open)
{
    int depth = 0;
    for (size_t i = open; i < toks.size(); ++i) {
        if (isPunct(toks[i], "{"))
            ++depth;
        else if (isPunct(toks[i], "}") && --depth == 0)
            return i;
    }
    return toks.size();
}

SourceFile
makeSourceFile(const std::string &relpath, const std::string &content)
{
    SourceFile sf;
    sf.relpath = relpath;
    const std::vector<Token> all = lex(content);
    sf.sup = collectSuppressions(all);
    sf.toks.reserve(all.size());
    for (const Token &t : all)
        if (t.kind != TokKind::Comment)
            sf.toks.push_back(t);
    sf.code.reserve(sf.toks.size());
    for (const Token &t : sf.toks)
        if (!t.preproc)
            sf.code.push_back(t);
    return sf;
}

namespace {

// ---------------------------------------------------------------------
// The declaration parser (one file at a time).
// ---------------------------------------------------------------------

/** What one statement-level parse step found. */
struct Stmt
{
    enum Kind { Var, Func, Other } kind = Other;
    std::string name;
    /** Qualifiers before a function name (out-of-line defs). */
    std::vector<std::string> qual_chain;
    std::string guarded_by;
    std::vector<std::string> requires_caps;
    std::string type; ///< Space-joined tokens before a var's name.
    bool is_static = false;
    bool tilde = false; ///< '~' seen before the name (destructor).
    size_t sig_begin = 0, sig_end = 0;
    size_t body_begin = 0, body_end = 0;
    int line = 0;
    size_t next = 0; ///< Resume index after the statement.
};

/** Out-of-line `Qualifier::method` definition awaiting resolution. */
struct PendingDef
{
    std::string qualifier;
    MemberFunc fn;
};

class FileParser
{
  public:
    FileParser(const std::vector<Token> &code, size_t file_idx,
               DeclIndex *ix, std::vector<PendingDef> *pending)
        : t(code), file(file_idx), ix(ix), pending(pending)
    {
    }

    void run() { parseOuter(0, t.size()); }

  private:
    const std::vector<Token> &t;
    const size_t file;
    DeclIndex *ix;
    std::vector<PendingDef> *pending;

    /** Last identifier inside (j..close) or "" when none. */
    std::string
    lastIdentIn(size_t j, size_t close) const
    {
        std::string out;
        for (size_t k = j; k < close && k < t.size(); ++k)
            if (t[k].kind == TokKind::Identifier)
                out = t[k].text;
        return out;
    }

    /** Skip to the first top-level ';' from @p j (balances all
     *  bracket kinds); returns the index after it. */
    size_t
    skipToSemicolon(size_t j, size_t end) const
    {
        int depth = 0;
        for (; j < end; ++j) {
            if (isPunct(t[j], "(") || isPunct(t[j], "{") ||
                isPunct(t[j], "["))
                ++depth;
            else if (isPunct(t[j], ")") || isPunct(t[j], "}") ||
                     isPunct(t[j], "]"))
                --depth;
            else if (isPunct(t[j], ";") && depth <= 0)
                return j + 1;
        }
        return end;
    }

    /** Skip a `template <...>` header; @p j sits on 'template'. */
    size_t
    skipTemplateHeader(size_t j, size_t end) const
    {
        ++j;
        if (j >= end || !isPunct(t[j], "<"))
            return j;
        int angle = 0;
        for (; j < end; ++j) {
            if (isPunct(t[j], "<"))
                ++angle;
            else if (isPunct(t[j], ">") && --angle == 0)
                return j + 1;
            else if (isPunct(t[j], ">>") && (angle -= 2) <= 0)
                return j + 1;
        }
        return end;
    }

    /**
     * Parse one declaration statement starting at @p i. Handles
     * member variables (with EYECOD_GUARDED_BY), member/free
     * function declarations and definitions (with ctor init lists,
     * trailing qualifiers, and EYECOD_REQUIRES), and degrades to
     * Kind::Other on anything it cannot classify.
     */
    Stmt
    parseStatement(size_t i, size_t end) const
    {
        Stmt s;
        s.sig_begin = i;
        s.line = t[i].line;
        int angle = 0, paren = 0, bracket = 0;
        std::string last_ident;
        size_t name_tok = i;
        size_t j = i;
        size_t func_paren = size_t(-1);

        for (; j < end; ++j) {
            const Token &tok = t[j];
            if (tok.kind == TokKind::Identifier) {
                if (tok.text == "static")
                    s.is_static = true;
                if (tok.text == "operator") {
                    // operator<symbol>(params): the param list is the
                    // first '(' after the symbol — except operator()
                    // whose symbol IS "()".
                    size_t k = j + 1;
                    if (k + 1 < end && isPunct(t[k], "(") &&
                        isPunct(t[k + 1], ")"))
                        k += 2;
                    while (k < end && !isPunct(t[k], "("))
                        ++k;
                    s.name = "operator";
                    func_paren = k;
                    break;
                }
                if (tok.text.rfind("EYECOD_", 0) == 0 && j + 1 < end &&
                    isPunct(t[j + 1], "(")) {
                    const size_t close = matchParen(t, j + 1);
                    if (tok.text == "EYECOD_GUARDED_BY")
                        s.guarded_by = lastIdentIn(j + 2, close);
                    j = close; // loop ++ steps past ')'
                    continue;
                }
                if (angle == 0 && paren == 0 && bracket == 0) {
                    last_ident = tok.text;
                    name_tok = j;
                } else if (bracket > 0 || angle > 0) {
                    // [[nodiscard]] / template args: idents inside
                    // never name the declared entity.
                }
                continue;
            }
            if (tok.kind != TokKind::Punct)
                continue;
            const std::string &p = tok.text;
            if (p == "<") {
                ++angle;
            } else if (p == ">") {
                if (angle > 0)
                    --angle;
            } else if (p == ">>") {
                if (angle > 0)
                    angle = angle >= 2 ? angle - 2 : 0;
            } else if (p == "[") {
                ++bracket;
            } else if (p == "]") {
                if (bracket > 0)
                    --bracket;
            } else if (p == "~") {
                s.tilde = true;
            } else if (p == "(") {
                if (angle == 0 && bracket == 0 && paren == 0) {
                    func_paren = j;
                    break;
                }
                ++paren;
            } else if (p == ")") {
                if (paren > 0)
                    --paren;
            } else if (angle == 0 && paren == 0 && bracket == 0) {
                if (p == "=") {
                    s.kind = Stmt::Var;
                    s.name = last_ident;
                    s.type = joined(s.sig_begin, name_tok);
                    s.sig_end = j;
                    s.next = skipToSemicolon(j, end);
                    return s;
                }
                if (p == "{") {
                    // Brace-initialized variable: `atomic<T> x{v};`.
                    s.kind = Stmt::Var;
                    s.name = last_ident;
                    s.type = joined(s.sig_begin, name_tok);
                    s.sig_end = j;
                    s.next = skipToSemicolon(matchBrace(t, j), end);
                    return s;
                }
                if (p == ";" || p == ":") {
                    // Plain declaration (or bitfield at ':').
                    s.kind = last_ident.empty() ? Stmt::Other : Stmt::Var;
                    s.name = last_ident;
                    s.type = joined(s.sig_begin, name_tok);
                    s.sig_end = j;
                    s.next = p == ";" ? j + 1 : skipToSemicolon(j, end);
                    return s;
                }
            }
        }
        if (func_paren == size_t(-1) || func_paren >= end) {
            s.kind = Stmt::Other;
            s.next = end;
            return s;
        }
        return parseFunctionTail(s, func_paren, end);
    }

    std::string
    joined(size_t begin, size_t end_tok) const
    {
        std::string out = " ";
        for (size_t k = begin; k < end_tok && k < t.size(); ++k) {
            out += t[k].text;
            out += ' ';
        }
        return out;
    }

    /** Finish parsing a function once its parameter list is found. */
    Stmt
    parseFunctionTail(Stmt s, size_t func_paren, size_t end) const
    {
        const size_t close = matchParen(t, func_paren);
        // Name and qualifier chain, walking back from the '('.
        size_t k = func_paren;
        if (s.name != "operator") {
            if (func_paren == 0 ||
                t[func_paren - 1].kind != TokKind::Identifier) {
                // Function-pointer declarator or similar; skip it.
                s.kind = Stmt::Other;
                s.next = skipToSemicolon(close, end);
                return s;
            }
            s.name = t[func_paren - 1].text;
            k = func_paren - 1;
        } else {
            // Walk back over the operator's symbol tokens.
            k = func_paren;
            while (k > 0 && !isIdent(t[k - 1], "operator"))
                --k;
            if (k > 0)
                --k; // onto 'operator'
        }
        if (k > 0 && isPunct(t[k - 1], "~")) {
            s.tilde = true;
            --k;
        }
        while (k >= 2 && isPunct(t[k - 1], "::") &&
               t[k - 2].kind == TokKind::Identifier) {
            s.qual_chain.insert(s.qual_chain.begin(), t[k - 2].text);
            k -= 2;
        }

        s.kind = Stmt::Func;
        size_t j = close + 1;
        while (j < end) {
            const Token &tok = t[j];
            if (tok.kind == TokKind::Identifier) {
                if (tok.text.rfind("EYECOD_", 0) == 0 && j + 1 < end &&
                    isPunct(t[j + 1], "(")) {
                    const size_t c2 = matchParen(t, j + 1);
                    if (tok.text == "EYECOD_REQUIRES") {
                        for (size_t m = j + 2; m < c2; ++m)
                            if (t[m].kind == TokKind::Identifier)
                                s.requires_caps.push_back(t[m].text);
                    }
                    j = c2 + 1;
                    continue;
                }
                ++j; // const / noexcept / override / final / ...
                continue;
            }
            if (isPunct(tok, "(")) {
                j = matchParen(t, j) + 1; // noexcept(...)
                continue;
            }
            if (isPunct(tok, ";")) {
                s.sig_end = j;
                s.next = j + 1;
                return s;
            }
            if (isPunct(tok, "=")) {
                // = default / = delete / = 0.
                s.sig_end = j;
                s.next = skipToSemicolon(j, end);
                return s;
            }
            if (isPunct(tok, ":")) {
                // Constructor init list: `name(args)` or `name{args}`
                // entries separated by commas, then the body brace.
                ++j;
                while (j < end) {
                    while (j < end && !isPunct(t[j], "(") &&
                           !isPunct(t[j], "{"))
                        ++j;
                    if (j >= end)
                        break;
                    if (isPunct(t[j], "{") &&
                        (j == 0 || (!isPunct(t[j - 1], ")") &&
                                    t[j - 1].kind != TokKind::Identifier &&
                                    !isPunct(t[j - 1], ">"))))
                        break; // defensive: not an init entry
                    const bool entry_paren = isPunct(t[j], "(");
                    const size_t c2 = entry_paren ? matchParen(t, j)
                                                  : matchBrace(t, j);
                    if (!entry_paren &&
                        !(j > 0 &&
                          t[j - 1].kind == TokKind::Identifier))
                        break; // `{` not preceded by a member name:
                               // this is the body brace
                    j = c2 + 1;
                    if (j < end && isPunct(t[j], ","))
                        ++j;
                    else
                        break;
                }
                continue;
            }
            if (isPunct(tok, "{")) {
                s.sig_end = j;
                s.body_begin = j;
                s.body_end = matchBrace(t, j) + 1;
                s.next = s.body_end;
                if (s.next < end && isPunct(t[s.next], ";"))
                    ++s.next;
                return s;
            }
            ++j; // -> & * && ...
        }
        s.sig_end = end;
        s.next = end;
        return s;
    }

    /**
     * True when the token at @p i opens a class/struct *definition*
     * (not an elaborated type specifier or forward declaration);
     * fills the name and the index of the '{'.
     */
    bool
    classHead(size_t i, size_t end, std::string *name,
              size_t *body_open) const
    {
        size_t j = i + 1;
        std::string last;
        while (j < end) {
            const Token &tok = t[j];
            if (tok.kind == TokKind::Identifier) {
                if (tok.text.rfind("EYECOD_", 0) == 0 && j + 1 < end &&
                    isPunct(t[j + 1], "(")) {
                    j = matchParen(t, j + 1) + 1;
                    continue;
                }
                if (tok.text != "final" && tok.text != "alignas")
                    last = tok.text;
                ++j;
                continue;
            }
            if (isPunct(tok, "[") || isPunct(tok, "(")) {
                j = matchParen(t, j) + 1; // attributes / alignas(...)
                continue;
            }
            if (isPunct(tok, "{")) {
                *name = last;
                *body_open = j;
                return !last.empty();
            }
            if (isPunct(tok, ":")) {
                // Base clause: the body brace follows at depth 0.
                int depth = 0;
                for (++j; j < end; ++j) {
                    if (isPunct(t[j], "(") || isPunct(t[j], "["))
                        ++depth;
                    else if (isPunct(t[j], ")") || isPunct(t[j], "]"))
                        --depth;
                    else if (isPunct(t[j], "{") && depth == 0) {
                        *name = last;
                        *body_open = j;
                        return !last.empty();
                    } else if (isPunct(t[j], ";") && depth == 0) {
                        return false;
                    }
                }
                return false;
            }
            if (isPunct(tok, ";"))
                return false; // forward declaration
            if (isPunct(tok, "::")) {
                ++j; // qualified name continues
                continue;
            }
            if (isPunct(tok, "<")) {
                // Specialization args: skip the angle group.
                int angle = 0;
                for (; j < end; ++j) {
                    if (isPunct(t[j], "<"))
                        ++angle;
                    else if (isPunct(t[j], ">") && --angle == 0)
                        break;
                    else if (isPunct(t[j], ">>") && (angle -= 2) <= 0)
                        break;
                }
                ++j;
                continue;
            }
            return false; // `class X *p;` and other elaborated uses
        }
        return false;
    }

    void
    parseOuter(size_t i, size_t end)
    {
        while (i < end) {
            const Token &tok = t[i];
            if (tok.kind == TokKind::Identifier) {
                if (tok.text == "namespace") {
                    size_t j = i + 1;
                    while (j < end && !isPunct(t[j], "{") &&
                           !isPunct(t[j], ";") && !isPunct(t[j], "="))
                        ++j;
                    if (j < end && isPunct(t[j], "{")) {
                        const size_t close = matchBrace(t, j);
                        parseOuter(j + 1, close);
                        i = close + 1;
                    } else {
                        i = skipToSemicolon(j, end);
                    }
                    continue;
                }
                if (tok.text == "template") {
                    i = skipTemplateHeader(i, end);
                    continue;
                }
                if ((tok.text == "class" || tok.text == "struct") &&
                    !(i > 0 && isIdent(t[i - 1], "enum"))) {
                    std::string name;
                    size_t body_open = 0;
                    if (classHead(i, end, &name, &body_open)) {
                        const size_t close = matchBrace(t, body_open);
                        registerClass(name, tok.line, body_open + 1,
                                      close);
                        i = skipToSemicolon(close, end);
                    } else {
                        i = skipToSemicolon(i, end);
                    }
                    continue;
                }
                if (tok.text == "enum" || tok.text == "using" ||
                    tok.text == "typedef" ||
                    tok.text == "static_assert") {
                    i = skipToSemicolon(i, end);
                    continue;
                }
            }
            if (tok.kind == TokKind::Punct &&
                (tok.text == ";" || tok.text == "}" ||
                 tok.text == "{")) {
                ++i; // stray separators / extern "C" braces
                continue;
            }
            const Stmt s = parseStatement(i, end);
            if (s.kind == Stmt::Func && s.body_end > s.body_begin) {
                MemberFunc fn;
                fn.name = s.name;
                fn.file = file;
                fn.line = s.line;
                fn.sig_begin = s.sig_begin;
                fn.sig_end = s.sig_end;
                fn.body_begin = s.body_begin;
                fn.body_end = s.body_end;
                fn.requires_caps = s.requires_caps;
                fn.ctor_dtor = s.tilde;
                if (!s.qual_chain.empty()) {
                    PendingDef pd;
                    for (const std::string &q : s.qual_chain) {
                        if (!pd.qualifier.empty())
                            pd.qualifier += "::";
                        pd.qualifier += q;
                    }
                    pd.fn = fn;
                    pending->push_back(pd);
                } else {
                    FreeFunc ff;
                    ff.name = fn.name;
                    ff.file = file;
                    ff.line = fn.line;
                    ff.sig_begin = fn.sig_begin;
                    ff.sig_end = fn.sig_end;
                    ff.body_begin = fn.body_begin;
                    ff.body_end = fn.body_end;
                    ix->free_funcs.push_back(ff);
                }
            }
            i = s.next > i ? s.next : i + 1;
        }
    }

    void
    registerClass(const std::string &name, int line, size_t body_begin,
                  size_t body_end)
    {
        registerClassChained(name, "", line, body_begin, body_end);
    }

    void
    registerClassChained(const std::string &name,
                         const std::string &parent_chain, int line,
                         size_t body_begin, size_t body_end)
    {
        ClassInfo cls;
        cls.name = parent_chain.empty() ? name
                                        : parent_chain + "::" + name;
        cls.file = file;
        cls.line = line;
        ix->classes.push_back(cls);
        const size_t cls_idx = ix->classes.size() - 1;
        parseClassBody(cls_idx, name, body_begin, body_end);
    }

    void
    parseClassBody(size_t cls_idx, const std::string &class_name,
                   size_t i, size_t end)
    {
        while (i < end) {
            const Token &tok = t[i];
            if (tok.kind == TokKind::Identifier) {
                if ((tok.text == "public" || tok.text == "private" ||
                     tok.text == "protected") &&
                    i + 1 < end && isPunct(t[i + 1], ":")) {
                    i += 2;
                    continue;
                }
                if (tok.text == "using" || tok.text == "friend" ||
                    tok.text == "typedef" ||
                    tok.text == "static_assert") {
                    i = skipToSemicolon(i, end);
                    continue;
                }
                if (tok.text == "template") {
                    i = skipTemplateHeader(i, end);
                    continue;
                }
                if ((tok.text == "class" || tok.text == "struct") &&
                    !(i > 0 && isIdent(t[i - 1], "enum"))) {
                    std::string name;
                    size_t body_open = 0;
                    if (classHead(i, end, &name, &body_open)) {
                        const size_t close = matchBrace(t, body_open);
                        const std::string chain =
                            ix->classes[cls_idx].name;
                        registerClassChained(name, chain, tok.line,
                                             body_open + 1, close);
                        i = skipToSemicolon(close, end);
                    } else {
                        i = skipToSemicolon(i, end);
                    }
                    continue;
                }
                if (tok.text == "enum") {
                    i = skipToSemicolon(i, end);
                    continue;
                }
            }
            if (tok.kind == TokKind::Punct &&
                (tok.text == ";" || tok.text == "}")) {
                ++i;
                continue;
            }
            const Stmt s = parseStatement(i, end);
            if (s.kind == Stmt::Var && !s.name.empty()) {
                MemberVar mv;
                mv.name = s.name;
                mv.type = s.type;
                mv.guarded_by = s.guarded_by;
                mv.file = file;
                mv.line = s.line;
                mv.is_static = s.is_static;
                ix->classes[cls_idx].members.push_back(mv);
            } else if (s.kind == Stmt::Func) {
                MemberFunc fn;
                fn.name = s.name;
                fn.file = file;
                fn.line = s.line;
                fn.sig_begin = s.sig_begin;
                fn.sig_end = s.sig_end;
                fn.body_begin = s.body_begin;
                fn.body_end = s.body_end;
                fn.requires_caps = s.requires_caps;
                fn.ctor_dtor = s.tilde || s.name == class_name;
                ix->classes[cls_idx].methods.push_back(fn);
            }
            i = s.next > i ? s.next : i + 1;
        }
    }
};

} // namespace

int
DeclIndex::findClass(const std::string &qualifier) const
{
    int found = -1;
    for (size_t c = 0; c < classes.size(); ++c) {
        const std::string &name = classes[c].name;
        const bool match =
            name == qualifier ||
            (qualifier.size() > name.size() + 2 &&
             qualifier.compare(qualifier.size() - name.size() - 2, 2,
                               "::") == 0 &&
             qualifier.compare(qualifier.size() - name.size(),
                               name.size(), name) == 0) ||
            (name.size() > qualifier.size() + 2 &&
             name.compare(name.size() - qualifier.size() - 2, 2,
                          "::") == 0 &&
             name.compare(name.size() - qualifier.size(),
                          qualifier.size(), qualifier) == 0);
        if (!match)
            continue;
        if (found >= 0)
            return -1; // ambiguous
        found = int(c);
    }
    return found;
}

DeclIndex
buildIndex(const std::vector<SourceFile> &files)
{
    DeclIndex ix;
    std::vector<PendingDef> pending;
    for (size_t f = 0; f < files.size(); ++f) {
        FileParser parser(files[f].code, f, &ix, &pending);
        parser.run();
    }
    // Resolve out-of-line `Class::method` definitions now that every
    // class from every file is known.
    for (PendingDef &pd : pending) {
        const int c = ix.findClass(pd.qualifier);
        if (c < 0)
            continue;
        ClassInfo &cls = ix.classes[size_t(c)];
        const size_t sep = cls.name.rfind("::");
        const std::string base =
            sep == std::string::npos ? cls.name : cls.name.substr(sep + 2);
        pd.fn.ctor_dtor = pd.fn.ctor_dtor || pd.fn.name == base;
        cls.methods.push_back(pd.fn);
    }
    return ix;
}

} // namespace detlint
} // namespace eyecod
