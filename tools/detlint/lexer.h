/**
 * @file
 * Minimal C++ token stream for detlint.
 *
 * detlint deliberately avoids libclang: the invariants it enforces
 * (R1-R6, see rules.h) are all expressible over a comment- and
 * string-aware token stream, and a dependency-free lexer keeps the
 * linter buildable on the bare repo toolchain and fast enough to run
 * on every commit. The lexer preserves comments (suppression
 * directives live there) and tags tokens that belong to preprocessor
 * directives so rules can skip `#include <time.h>` and friends.
 */

#ifndef EYECOD_TOOLS_DETLINT_LEXER_H
#define EYECOD_TOOLS_DETLINT_LEXER_H

#include <string>
#include <vector>

namespace eyecod {
namespace detlint {

/** Lexical class of a token. */
enum class TokKind {
    Identifier, ///< Identifiers and keywords (no keyword table needed).
    Number,     ///< Numeric literal (integer or floating).
    String,     ///< String literal, including raw strings.
    CharLit,    ///< Character literal.
    Punct,      ///< Operators and punctuation, one token per lexeme.
    Comment,    ///< Line or block comment, text includes delimiters.
};

/** One lexed token with its source position. */
struct Token
{
    TokKind kind = TokKind::Punct;
    std::string text;    ///< Lexeme (comments keep their full text).
    int line = 0;        ///< 1-based line of the token's first char.
    bool preproc = false; ///< Inside a preprocessor directive line.
};

/**
 * Tokenize @p source. Never fails: unrecognized bytes become
 * single-char Punct tokens so rules degrade gracefully on odd input.
 */
std::vector<Token> lex(const std::string &source);

} // namespace detlint
} // namespace eyecod

#endif // EYECOD_TOOLS_DETLINT_LEXER_H
