// R3 failing exemplar: hash-order iteration feeding accumulation.
// Scoped as src/accel/ by the test harness.
#include <unordered_map>
#include <string>

double
totalEnergy(const std::unordered_map<std::string, double> &by_unit)
{
    double total = 0.0;
    for (const auto &entry : by_unit)   // line 10: R3 (range-for)
        total += entry.second;
    auto it = by_unit.begin();          // line 12: R3 (iterator walk)
    (void)it;
    return total;
}
