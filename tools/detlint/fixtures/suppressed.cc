// Suppression exemplar: the same violations as the failing fixtures,
// silenced with detlint:allow — same-line, previous-line, and
// file-wide forms. detlint must report nothing for this file.
//
// detlint:allow-file(R6)
#include <numeric>
#include <vector>

void warn(const char *fmt, ...);

float
tolerated(const std::vector<float> &acts, int depth)
{
    for (int i = 0; i < depth; ++i) {
        // detlint:allow(R5) — proving the previous-line form works.
        warn("suppressed in a loop");
        warn("same-line form"); // detlint:allow(warn-in-loop)
    }
    return std::reduce(acts.begin(), acts.end()); // file-wide R6 allow
}
