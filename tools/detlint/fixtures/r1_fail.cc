// R1 failing exemplar: standard engines and C randomness outside
// common/rng.h. Scoped as src/nn/ by the test harness.
#include <cstdlib>
#include <random>

int
hashSalt()
{
    std::random_device dev;        // line 9: R1 (random_device)
    std::mt19937 engine;           // line 10: R1 (default-constructed)
    (void)dev;
    (void)engine;
    return rand();                 // line 13: R1 (rand())
}
