// R12 fixture (pass): symmetric codecs, suppression, and near-misses.

struct Gauge
{
    void
    saveSnapshot(SnapshotWriter &w) const
    {
        w.u64(total_);
        w.f64(rate_);
    }

    Status
    restoreSnapshot(SnapshotReader &r)
    {
        total_ = r.u64();
        rate_ = r.f64();
        return Status::ok();
    }

    unsigned long total_ = 0;
    double rate_ = 0.0;
    // detlint:allow(R12) scratch accumulator, rebuilt on the next tick.
    double scratch_ = 0.0;
};

struct WriteOnlyLog
{
    void
    saveSnapshot(SnapshotWriter &w) const // no reader: not checked
    {
        w.u64(lines_);
    }

    unsigned long lines_ = 0;
};

struct Opaque
{
    unsigned long value() const;
    void setValue(unsigned long v);
    unsigned long raw_ = 0;
};

// Accessor-only free codec pair: neither side references a field
// directly, so there is nothing to cross-check.
void
writeOpaque(SnapshotWriter &w, const Opaque &x)
{
    w.u64(x.value());
}

Result<Opaque>
readOpaque(SnapshotReader &r)
{
    Opaque x;
    x.setValue(r.u64());
    return x;
}
