// R2 failing exemplar: wall-clock time inside a virtual-time
// directory. Scoped as src/serve/ by the test harness.
#include <chrono>
#include <ctime>

long long
stampNow()
{
    auto wall = std::chrono::system_clock::now();   // line 9: R2
    long ticks = std::clock();                      // line 10: R2
    auto mono = std::chrono::steady_clock::now();   // line 11: R2
    (void)wall;
    (void)mono;
    return ticks + time(nullptr);                   // line 14: R2
}
