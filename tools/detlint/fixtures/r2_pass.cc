// R2 passing exemplar: virtual time threaded through explicitly, and
// near-miss identifiers (frame_time, clock_mhz) left alone.
struct VirtualClock
{
    long long now_us = 0;
};

long long
advance(VirtualClock &clock_state, long long frame_time_us)
{
    long long clock_mhz = 500;
    clock_state.now_us += frame_time_us;
    return clock_state.now_us * clock_mhz;
}
