// R5 failing exemplar: unbounded warn() in loop bodies — braced,
// unbraced, and nested-in-while forms.
void warn(const char *fmt, ...);

void
drainQueue(int depth)
{
    for (int i = 0; i < depth; ++i) {
        warn("queue still backed up");      // line 9: R5
    }
    int spins = 0;
    while (spins < depth)
        warn("spinning %d", spins++);       // line 13: R5
}
