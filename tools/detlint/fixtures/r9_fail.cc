// R9 failing exemplar: whole-struct (de)serialization in snapshot
// code. Scoped as src/common/snapshot_bad.cc by the test harness.
#include <cstring>
#include <vector>

struct Header
{
    unsigned magic;
    unsigned version;
};

void
save(std::vector<unsigned char> &out, const Header &h)
{
    out.resize(sizeof(Header));
    std::memcpy(out.data(), &h, sizeof(Header)); // line 16: R9 memcpy
    memmove(out.data(), &h, sizeof(Header));     // line 17: R9 memmove
}

const Header *
load(const std::vector<unsigned char> &in)
{
    return reinterpret_cast<const Header *>(in.data()); // line 23: R9
}
