// R9 passing exemplar: field-wise encoding through bit_cast and
// byte pushes, near-miss identifiers, and an allowed raw copy naming
// its reason. Scoped as src/common/snapshot_ok.cc by the test
// harness.
#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

void
save(std::vector<unsigned char> &out, double v)
{
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i)
        out.push_back((unsigned char)(bits >> (8 * i)));
    int memcpy_count = 0; // near-miss identifier, never called
    (void)memcpy_count;
    // detlint:allow(R9) opaque byte payload, length checked above
    std::memcpy(out.data(), &bits, 8);
}
