// R12 fixture: snapshot writer/reader field drift.

struct Counters
{
    void
    saveSnapshot(SnapshotWriter &w) const
    {
        w.u64(hits_);
        w.u64(misses_);
        w.u64(evictions_); // FLAG: never restored
    }

    Status
    restoreSnapshot(SnapshotReader &r)
    {
        hits_ = r.u64();
        misses_ = r.u64();
        floor_ = r.u64(); // FLAG: never saved
        return Status::ok();
    }

    unsigned long hits_ = 0;
    unsigned long misses_ = 0;
    unsigned long evictions_ = 0;
    unsigned long floor_ = 0;
    unsigned long peak_depth_ = 0; // FLAG: covered by neither side
};
