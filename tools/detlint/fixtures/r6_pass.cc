// R6 passing exemplar: a fixed-order accumulation loop — the only
// float reduction shape allowed in kernels. std::accumulate is
// left-fold by contract and stays legal.
#include <numeric>
#include <vector>

float
sumActivations(const std::vector<float> &acts)
{
    float total = 0.0f;
    for (float a : acts)
        total += a;
    return total + std::accumulate(acts.begin(), acts.end(), 0.0f);
}
