// R6 failing exemplar: reduction-order-hazardous primitives in a
// numeric kernel. Scoped as src/nn/ by the test harness.
#include <execution>
#include <numeric>
#include <vector>

float
sumActivations(const std::vector<float> &acts)
{
    float eager = std::reduce(acts.begin(), acts.end());  // line 10: R6
    float par = std::reduce(std::execution::par,          // line 11: R6 x2
                            acts.begin(), acts.end());
    return eager + par;
}
