// R4 passing exemplar: typed errors flow through Status values; the
// checked result is branched on, and an explicit void cast (an
// intentional, visible discard) is honored.
struct Status { bool isOk() const; };
Status simulateChecked(int frames);

int
runFrames(int frames)
{
    Status st = simulateChecked(frames);
    if (!st.isOk())
        return -1;
    (void)simulateChecked(0);
    return 0;
}
