// R5 passing exemplar: rate-limited warnings inside loops; a plain
// warn() outside any loop is fine.
void warn(const char *fmt, ...);
void warnLimited(const char *key, const char *fmt, ...);

void
drainQueue(int depth)
{
    for (int i = 0; i < depth; ++i)
        warnLimited("queue-backlog", "queue still backed up");
    if (depth > 0)
        warn("drained %d entries", depth);
}
