// R1 passing exemplar: randomness drawn through the seeded Rng, and
// identifiers that merely *contain* banned names stay untouched.
namespace eyecod {
struct Rng { explicit Rng(unsigned long seed); double uniform(); };
}

double
jitter(eyecod::Rng &rng)
{
    int operand = 3;          // "rand" embedded in a longer identifier
    double spread = rng.uniform();
    return spread + operand;
}
