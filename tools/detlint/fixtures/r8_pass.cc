// R8 passing exemplar: locals may grow, bounded member pushes carry
// an allow comment naming their bound, and call-expression receivers
// are not member chains. Scoped as src/serve/ by the test harness.
#include <vector>

std::vector<int> &scratch();

struct Engine
{
    std::vector<int> pool_;
    std::size_t cap_ = 64;

    void
    onFrame(int frame)
    {
        std::vector<int> batch; // local: rebuilt and freed per call
        batch.push_back(frame);
        if (pool_.size() < cap_)
            pool_.push_back(frame); // detlint:allow(R8) capped at cap_
        scratch().push_back(frame); // call receiver: not a member
    }
};
