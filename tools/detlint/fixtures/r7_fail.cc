// R7 failing exemplar: by-value Image traffic on the frame spine.
// Scoped as src/eyetrack/ by the test harness.
#include "common/image.h"

using eyecod::Image;

double
meanOf(Image frame)                       // line 8: R7 by-value param
{
    double acc = 0.0;
    for (float v : frame.data())
        acc += v;
    return acc / double(frame.size());
}

double
contrast(const Image lhs, Image rhs)      // line 17: R7 x2
{
    Image copy = rhs;                     // line 19: R7 copy-construct
    return meanOf(copy) - meanOf(lhs);
}
