// R10 fixture (pass): disciplined lock usage plus near-misses.

struct StatsHub
{
    StatsHub() { count_ = 0; } // ctor exempt: no concurrent callers yet

    void
    bump()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        count_ += 1;
        helper(); // unguarded call: fine
    }

    void
    bumpLocked() EYECOD_REQUIRES(mutex_)
    {
        ++count_; // caller holds mutex_
    }

    void
    waitUnderLock()
    {
        UniqueMutexLock lock(mutex_);
        auto pred = [&] { return count_ > 0; }; // lambda inherits the hold
        (void)pred;
    }

    long
    readFrom(const StatsHub &other) const
    {
        MutexLock lock(mutex_);
        return count_ + other.free_count; // other object's member: not ours
    }

    void
    touchUnguarded()
    {
        free_count = 5; // unannotated member: free access
    }

    long free_count = 0;
    mutable Mutex mutex_;
    long count_ EYECOD_GUARDED_BY(mutex_) = 0;
};

struct OtherHub
{
    long count_ = 0; // same name, unguarded in this class
    void set() { count_ = 1; }
};
