// R4 failing exemplar: an exception on the hot path and a silently
// discarded checked result. Scoped as src/accel/ by the test harness.
struct Status { bool isOk() const; };
Status simulateChecked(int frames);

Status
runFrames(int frames)
{
    if (frames < 0)
        throw frames;          // line 10: R4 (throw in hot path)
    simulateChecked(frames);   // line 11: R4 (discarded result)
    return Status{};
}
