// R11 fixture: arena views escaping their epoch.

static ImageView g_last_view; // FLAG: static view pins an arena buffer

ImageView &lastView(); // FLAG: reference-returning view accessor

struct Tracker
{
    void
    refresh(BufferArena &arena)
    {
        roi_view_ = arena.allocImage(64, 64); // FLAG: member store
    }

    ImageConstView snap_; // FLAG: view-typed member
    Image owned_;
};
