// R7 passing exemplar: frames travel as views or const references;
// owning copies happen only through move-yielding factories or with
// an explicit allow. Near-misses (ImageConstView by value, Image by
// reference/pointer, template args, return types) must stay silent.
#include "common/image.h"
#include "common/image_view.h"

#include <vector>

using eyecod::Image;
using eyecod::ImageConstView;

double
meanOf(ImageConstView frame)
{
    double acc = 0.0;
    for (int y = 0; y < frame.height(); ++y)
        for (int x = 0; x < frame.width(); ++x)
            acc += frame.at(y, x);
    return acc / double(frame.height() * frame.width());
}

double
contrast(const Image &lhs, Image *rhs, std::vector<Image> &scratch)
{
    Image resized = lhs.resized(8, 8); // move from a temporary
    // detlint:allow(R7) — golden copy kept for a bitwise comparison.
    Image golden = resized;
    scratch.push_back(golden);
    return meanOf(ImageConstView::of(resized)) -
           meanOf(ImageConstView::of(*rhs));
}

Image
makeFrame(int n)
{
    return Image(n, n, 0.5f);
}
