// R11 fixture (pass): views used frame-locally.

ImageView viewOf(Image &img); // by-value return: fine

struct Pipeline
{
    void
    process(BufferArena &arena)
    {
        ImageView scratch = arena.allocImage(32, 32); // local: fine
        last_ = ownedCopy(scratch); // member stores an owning Image
    }

    static ImageConstView of(const Image &img); // factory fn, not a var

    Image last_; // owning member: fine
};
