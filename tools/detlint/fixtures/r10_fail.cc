// R10 fixture: EYECOD_GUARDED_BY members accessed outside lock scopes.
// Annotations here are tokens only; fixtures are never compiled.

struct StatsHub
{
    void
    bump()
    {
        MutexLock lock(mutex_);
        ++count_; // held: fine
    }

    long
    peek() const
    {
        return count_; // FLAG: no lock at all
    }

    void
    reset()
    {
        count_ = 0; // FLAG: lock taken too late
        MutexLock lock(mutex_);
        count_ = 0; // held: fine
    }

    mutable Mutex mutex_;
    long count_ EYECOD_GUARDED_BY(mutex_) = 0;
};
