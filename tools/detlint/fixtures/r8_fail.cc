// R8 failing exemplar: member containers growing per frame on the
// serving hot path. Scoped as src/serve/ by the test harness.
#include <vector>

struct Engine
{
    std::vector<int> retry_;
    std::vector<long> log_;
    struct Metrics
    {
        std::vector<int> drops;
    } metrics_;

    void
    onFrame(int frame)
    {
        retry_.push_back(frame);            // line 17: R8 member
        this->log_.emplace_back(frame);     // line 18: R8 this->
        metrics_.drops.push_back(frame);    // line 19: R8 chain
    }
};
