// R3 passing exemplar: unordered containers used for O(1) lookup
// only; anything iterated is a vector or a sorted copy.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

double
totalEnergy(const std::unordered_map<std::string, double> &by_unit,
            const std::vector<std::string> &unit_order)
{
    double total = 0.0;
    for (const std::string &unit : unit_order) {
        auto it = by_unit.find(unit);
        if (it != by_unit.end())
            total += it->second;
    }
    return total;
}
