#include "rules.h"

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "index.h"
#include "lexer.h"
#include "symbol_rules.h"

namespace fs = std::filesystem;

namespace eyecod {
namespace detlint {

namespace {

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
inAnyDir(const std::string &relpath,
         const std::vector<std::string> &prefixes)
{
    for (const std::string &p : prefixes)
        if (startsWith(relpath, p))
            return true;
    return false;
}

// ---------------------------------------------------------------------
// Per-directory scoping. Paths are repo-relative with '/' separators.
// ---------------------------------------------------------------------

/** Dirs that must run on virtual time only (R2 wall-clock set). */
const std::vector<std::string> kVirtualTimeDirs = {
    "src/accel/", "src/serve/", "src/flatcam/", "src/nn/"};

/** Files allowed to read steady_clock (real elapsed time is the point). */
const std::vector<std::string> kSteadyClockAllowed = {
    "bench/", "src/common/thread_pool.cc", "src/common/thread_pool.h"};

/** Exception-free hot-path dirs (R4 throw). */
const std::vector<std::string> kHotPathDirs = {
    "src/accel/", "src/serve/", "src/nn/",
    "src/flatcam/", "src/eyetrack/", "src/core/"};

/** The one home of seeded randomness (R1 exemption). */
const char kRngHeader[] = "src/common/rng.h";

bool
isDeterministicSrc(const std::string &relpath)
{
    return startsWith(relpath, "src/");
}

// ---------------------------------------------------------------------
// Identifier sets.
// ---------------------------------------------------------------------

const std::set<std::string> kRandomEngines = {
    "random_device", "mt19937", "mt19937_64", "default_random_engine",
    "minstd_rand", "minstd_rand0", "ranlux24", "ranlux48",
    "ranlux24_base", "ranlux48_base", "knuth_b"};

const std::set<std::string> kRandomCalls = {
    "rand", "srand", "rand_r", "drand48", "lrand48", "random"};

const std::set<std::string> kWallClockTypes = {"system_clock",
                                               "high_resolution_clock"};

const std::set<std::string> kWallClockCalls = {
    "time", "clock", "gettimeofday", "clock_gettime", "localtime",
    "gmtime", "strftime", "mktime", "asctime", "ctime", "ftime"};

const std::set<std::string> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

/** Checked entry points whose return must never be dropped. */
bool
isMustCheckCall(const std::string &name)
{
    if (name == "validateHwConfig")
        return true;
    static const std::string suffix = "Checked";
    return name.size() > suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

// ---------------------------------------------------------------------
// Token helpers over the comment-free stream (isPunct / isIdent /
// matchParen and the suppression machinery now live in index.h,
// shared with the phase-2 symbol rules).
// ---------------------------------------------------------------------

/** True when toks[i] is a member access (x.name / x->name). */
bool
isMemberAccess(const std::vector<Token> &toks, size_t i)
{
    return i > 0 && (isPunct(toks[i - 1], ".") ||
                     isPunct(toks[i - 1], "->"));
}

/**
 * For an identifier at @p i qualified as `ns::name`, true when the
 * qualifier is std (or the name is unqualified / globally
 * qualified). `other_ns::rand` is someone else's function.
 */
bool
stdOrUnqualified(const std::vector<Token> &toks, size_t i)
{
    if (i == 0 || !isPunct(toks[i - 1], "::"))
        return true; // unqualified
    if (i == 1)
        return true; // ::name — global scope
    const Token &q = toks[i - 2];
    if (q.kind != TokKind::Identifier)
        return true; // ::name after punctuation — global scope
    return q.text == "std" || q.text == "chrono";
}

// ---------------------------------------------------------------------
// R1 / R2 / R6: banned-identifier scans.
// ---------------------------------------------------------------------

void
scanBannedIdentifiers(const std::vector<Token> &toks,
                      const std::string &relpath,
                      const AnalyzeOptions &opts,
                      std::vector<Finding> *out)
{
    const bool r1 = opts.runs(Rule::R1UnseededRng) && relpath != kRngHeader;
    const bool r2_wall = opts.runs(Rule::R2WallClock) &&
                         inAnyDir(relpath, kVirtualTimeDirs);
    const bool r2_steady = opts.runs(Rule::R2WallClock) &&
                           !inAnyDir(relpath, kSteadyClockAllowed);
    const bool r6 = opts.runs(Rule::R6FloatReduction) &&
                    isDeterministicSrc(relpath);

    for (size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Identifier || t.preproc)
            continue;
        if (isMemberAccess(toks, i))
            continue;
        const bool called =
            i + 1 < toks.size() && isPunct(toks[i + 1], "(");

        if (r1 && kRandomEngines.count(t.text)) {
            out->push_back({Rule::R1UnseededRng, relpath, t.line,
                            "random engine '" + t.text +
                                "' outside common/rng.h; draw from an "
                                "explicitly seeded eyecod::Rng"});
        } else if (r1 && called && kRandomCalls.count(t.text) &&
                   stdOrUnqualified(toks, i)) {
            out->push_back({Rule::R1UnseededRng, relpath, t.line,
                            "unseeded C-library randomness '" + t.text +
                                "()'; draw from an explicitly seeded "
                                "eyecod::Rng"});
        }

        if (r2_wall && kWallClockTypes.count(t.text)) {
            out->push_back({Rule::R2WallClock, relpath, t.line,
                            "wall-clock type '" + t.text +
                                "' in a virtual-time directory; derive "
                                "time from the simulated clock"});
        } else if (r2_wall && called && kWallClockCalls.count(t.text) &&
                   stdOrUnqualified(toks, i)) {
            out->push_back({Rule::R2WallClock, relpath, t.line,
                            "wall-clock call '" + t.text +
                                "()' in a virtual-time directory; derive "
                                "time from the simulated clock"});
        }
        if (r2_steady && t.text == "steady_clock") {
            out->push_back({Rule::R2WallClock, relpath, t.line,
                            "steady_clock outside bench/ and the thread "
                            "pool; deterministic code must use virtual "
                            "time"});
        }

        if (r6 && (t.text == "reduce" || t.text == "transform_reduce") &&
            i >= 2 && isPunct(toks[i - 1], "::") &&
            isIdent(toks[i - 2], "std")) {
            out->push_back({Rule::R6FloatReduction, relpath, t.line,
                            "std::" + t.text +
                                " has unspecified accumulation order; "
                                "use a fixed-order loop"});
        }
        if (r6 && isIdent(t, "execution") && i + 3 < toks.size() &&
            isPunct(toks[i + 1], "::") &&
            (isIdent(toks[i + 2], "par") ||
             isIdent(toks[i + 2], "par_unseq") ||
             isIdent(toks[i + 2], "unseq"))) {
            out->push_back({Rule::R6FloatReduction, relpath, t.line,
                            "std::execution::" + toks[i + 2].text +
                                " makes reduction order (and float "
                                "results) nondeterministic"});
        }
    }
}

// ---------------------------------------------------------------------
// R3: iteration over unordered containers.
// ---------------------------------------------------------------------

/**
 * Names declared in this file with an unordered container type
 * (variables and data members; heuristic, one file at a time).
 */
std::set<std::string>
collectUnorderedNames(const std::vector<Token> &toks)
{
    std::set<std::string> names;
    for (size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Identifier ||
            !kUnorderedTypes.count(toks[i].text))
            continue;
        size_t j = i + 1;
        if (j >= toks.size() || !isPunct(toks[j], "<"))
            continue;
        // Skip the template argument list, counting angle depth.
        int depth = 0;
        for (; j < toks.size(); ++j) {
            if (isPunct(toks[j], "<"))
                ++depth;
            else if (isPunct(toks[j], ">") && --depth == 0)
                break;
            else if (isPunct(toks[j], ">>") && (depth -= 2) <= 0)
                break;
        }
        // The declared name follows, possibly after cv/ref tokens.
        for (++j; j < toks.size(); ++j) {
            const Token &t = toks[j];
            if (isPunct(t, "&") || isPunct(t, "*") ||
                isIdent(t, "const"))
                continue;
            if (t.kind == TokKind::Identifier)
                names.insert(t.text);
            break;
        }
    }
    return names;
}

void
scanUnorderedIteration(const std::vector<Token> &toks,
                       const std::string &relpath,
                       const AnalyzeOptions &opts,
                       std::vector<Finding> *out)
{
    if (!opts.runs(Rule::R3UnorderedIter) || !isDeterministicSrc(relpath))
        return;
    const std::set<std::string> names = collectUnorderedNames(toks);

    for (size_t i = 0; i < toks.size(); ++i) {
        // Range-for whose range expression names an unordered
        // container (or constructs one inline).
        if (isIdent(toks[i], "for") && i + 1 < toks.size() &&
            isPunct(toks[i + 1], "(")) {
            const size_t close = matchParen(toks, i + 1);
            size_t colon = toks.size();
            int depth = 0;
            for (size_t j = i + 1; j < close; ++j) {
                if (isPunct(toks[j], "(") || isPunct(toks[j], "[") ||
                    isPunct(toks[j], "{"))
                    ++depth;
                else if (isPunct(toks[j], ")") || isPunct(toks[j], "]") ||
                         isPunct(toks[j], "}"))
                    --depth;
                else if (depth == 1 && isPunct(toks[j], ":")) {
                    colon = j;
                    break;
                }
            }
            for (size_t j = colon + 1; j < close && colon < close; ++j) {
                const Token &t = toks[j];
                if (t.kind == TokKind::Identifier &&
                    (names.count(t.text) ||
                     kUnorderedTypes.count(t.text)) &&
                    !isMemberAccess(toks, j)) {
                    out->push_back(
                        {Rule::R3UnorderedIter, relpath, t.line,
                         "range-for over unordered container '" + t.text +
                             "'; hash order is nondeterministic — "
                             "iterate a sorted copy or a vector"});
                    break;
                }
            }
        }
        // Explicit iterator walk: name.begin() / name->cbegin() etc.
        if (toks[i].kind == TokKind::Identifier &&
            names.count(toks[i].text) && i + 2 < toks.size() &&
            (isPunct(toks[i + 1], ".") || isPunct(toks[i + 1], "->")) &&
            (isIdent(toks[i + 2], "begin") ||
             isIdent(toks[i + 2], "cbegin") ||
             isIdent(toks[i + 2], "rbegin"))) {
            out->push_back({Rule::R3UnorderedIter, relpath, toks[i].line,
                            "iterator walk over unordered container '" +
                                toks[i].text +
                                "'; hash order is nondeterministic — "
                                "iterate a sorted copy or a vector"});
        }
    }
}

// ---------------------------------------------------------------------
// R4: throw in hot paths; discarded checked results.
// ---------------------------------------------------------------------

void
scanThrowAndDiscard(const std::vector<Token> &toks,
                    const std::string &relpath,
                    const AnalyzeOptions &opts,
                    std::vector<Finding> *out)
{
    if (!opts.runs(Rule::R4HotPathThrow))
        return;
    const bool hot = inAnyDir(relpath, kHotPathDirs);

    for (size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Identifier || t.preproc)
            continue;

        if (hot && t.text == "throw") {
            out->push_back({Rule::R4HotPathThrow, relpath, t.line,
                            "throw in a hot-path directory; return a "
                            "Status / Result<T> instead"});
            continue;
        }

        // Discarded checked call: `obj.runChecked(...);` at statement
        // position with nothing consuming the result.
        if (!isMustCheckCall(t.text) || i + 1 >= toks.size() ||
            !isPunct(toks[i + 1], "("))
            continue;
        // Walk back over the object chain (x.y->z::).
        size_t k = i;
        while (k >= 2 &&
               (isPunct(toks[k - 1], ".") || isPunct(toks[k - 1], "->") ||
                isPunct(toks[k - 1], "::")) &&
               toks[k - 2].kind == TokKind::Identifier)
            k -= 2;
        const bool stmt_start =
            k == 0 || isPunct(toks[k - 1], ";") ||
            isPunct(toks[k - 1], "{") || isPunct(toks[k - 1], "}");
        if (!stmt_start)
            continue;
        const size_t close = matchParen(toks, i + 1);
        if (close + 1 < toks.size() && isPunct(toks[close + 1], ";")) {
            out->push_back({Rule::R4HotPathThrow, relpath, t.line,
                            "result of checked call '" + t.text +
                                "()' is discarded; branch on it (or "
                                "cast to void under an allow comment)"});
        }
    }
}

// ---------------------------------------------------------------------
// R5: warn() inside loop bodies.
// ---------------------------------------------------------------------

void
scanWarnInLoop(const std::vector<Token> &toks, const std::string &relpath,
               const AnalyzeOptions &opts, std::vector<Finding> *out)
{
    if (!opts.runs(Rule::R5WarnInLoop))
        return;

    std::vector<bool> brace_is_loop; // one entry per open brace
    std::vector<size_t> unbraced_at; // brace depth of unbraced bodies
    bool pending_head = false;       // inside for/while (...) control
    int head_parens = 0;
    bool pending_body = false; // control closed; next token starts body
    int loop_braces = 0;       // count of open loop-tagged braces

    for (size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind == TokKind::Comment)
            continue;

        if (pending_head) {
            if (isPunct(t, "(")) {
                ++head_parens;
            } else if (isPunct(t, ")")) {
                if (--head_parens == 0) {
                    pending_head = false;
                    pending_body = true;
                }
            }
            continue;
        }

        if (pending_body) {
            pending_body = false;
            if (isPunct(t, "{")) {
                brace_is_loop.push_back(true);
                ++loop_braces;
                continue;
            }
            if (!isPunct(t, ";"))
                unbraced_at.push_back(brace_is_loop.size());
            // fall through: the token itself is part of the body.
        }

        if (isIdent(t, "for") || isIdent(t, "while")) {
            pending_head = true;
            head_parens = 0;
            continue;
        }
        if (isIdent(t, "do")) {
            pending_body = true;
            continue;
        }

        if (isPunct(t, "{")) {
            brace_is_loop.push_back(false);
        } else if (isPunct(t, "}")) {
            if (!brace_is_loop.empty()) {
                if (brace_is_loop.back())
                    --loop_braces;
                brace_is_loop.pop_back();
            }
            while (!unbraced_at.empty() &&
                   unbraced_at.back() > brace_is_loop.size())
                unbraced_at.pop_back();
        } else if (isPunct(t, ";")) {
            while (!unbraced_at.empty() &&
                   unbraced_at.back() == brace_is_loop.size())
                unbraced_at.pop_back();
        }

        const bool in_loop = loop_braces > 0 || !unbraced_at.empty();
        if (in_loop && isIdent(t, "warn") && i + 1 < toks.size() &&
            isPunct(toks[i + 1], "(") && !isMemberAccess(toks, i) &&
            !t.preproc) {
            out->push_back({Rule::R5WarnInLoop, relpath, t.line,
                            "warn() inside a loop body floods stderr at "
                            "streaming rates; use warnLimited()"});
        }
    }
}

// ---------------------------------------------------------------------
// R7: by-value Image traffic on the zero-copy frame spine.
// ---------------------------------------------------------------------

/** Dirs on the zero-copy frame spine (R7 image-copy). */
const std::vector<std::string> kFrameSpineDirs = {
    "src/flatcam/", "src/eyetrack/", "src/nn/", "src/serve/"};

void
scanImageCopy(const std::vector<Token> &toks,
              const std::string &relpath, const AnalyzeOptions &opts,
              std::vector<Finding> *out)
{
    if (!opts.runs(Rule::R7ImageCopy) ||
        !inAnyDir(relpath, kFrameSpineDirs))
        return;

    for (size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Identifier || t.text != "Image" ||
            t.preproc)
            continue;
        if (isMemberAccess(toks, i))
            continue;

        // By-value (optionally const) `Image` parameter: preceded by
        // '(' or ',', followed by the parameter name and ',', ')' or
        // a default argument — i.e. no '&' / '*' declarator.
        size_t k = i;
        if (k >= 1 && isIdent(toks[k - 1], "const"))
            --k;
        const bool param_pos = k >= 1 && (isPunct(toks[k - 1], "(") ||
                                          isPunct(toks[k - 1], ","));
        if (param_pos && i + 2 < toks.size() &&
            toks[i + 1].kind == TokKind::Identifier &&
            (isPunct(toks[i + 2], ",") || isPunct(toks[i + 2], ")") ||
             isPunct(toks[i + 2], "="))) {
            out->push_back(
                {Rule::R7ImageCopy, relpath, t.line,
                 "by-value Image parameter '" + toks[i + 1].text +
                     "' copies a full frame on every call; take an "
                     "ImageConstView (or const Image&)"});
            continue;
        }

        // Statement-level copy-construction `Image a = b;` from a
        // plain identifier (initialization from a call expression is
        // a move and does not match).
        const bool stmt_start = i == 0 || isPunct(toks[i - 1], ";") ||
                                isPunct(toks[i - 1], "{") ||
                                isPunct(toks[i - 1], "}");
        if (stmt_start && i + 4 < toks.size() &&
            toks[i + 1].kind == TokKind::Identifier &&
            isPunct(toks[i + 2], "=") &&
            toks[i + 3].kind == TokKind::Identifier &&
            isPunct(toks[i + 4], ";")) {
            out->push_back(
                {Rule::R7ImageCopy, relpath, t.line,
                 "Image copy-construction of '" + toks[i + 1].text +
                     "' duplicates frame storage; crop/resize through "
                     "views or reuse a member image"});
        }
    }
}

// ---------------------------------------------------------------------
// R8: unbounded push_back into member containers on serve hot paths.
// ---------------------------------------------------------------------

/**
 * Dirs whose member containers sit on a per-frame path (R8). The
 * serving engine's tick loop runs at streaming rates; a member
 * vector that grows per frame is a leak with a delay.
 */
const std::vector<std::string> kServeHotDirs = {"src/serve/"};

/**
 * Walk the receiver chain of the member call whose access token
 * ('.' or '->') sits at @p dot, reporting the innermost component
 * name through @p name. True when the chain roots in a data member:
 * any component using the trailing-underscore member convention, or
 * an explicit `this->`. Subscripts are skipped (`buf_[i].items`),
 * and a call-expression receiver (`make().push_back`) never names a
 * member.
 */
bool
receiverIsMember(const std::vector<Token> &toks, size_t dot,
                 std::string *name)
{
    bool member = false;
    size_t j = dot;
    while (j > 0) {
        --j; // last token of this receiver component
        // Skip balanced subscripts: by_session_[g].second ...
        while (j > 0 && isPunct(toks[j], "]")) {
            int depth = 0;
            for (;;) {
                if (isPunct(toks[j], "]"))
                    ++depth;
                else if (isPunct(toks[j], "[") && --depth == 0)
                    break;
                if (j == 0)
                    return member;
                --j;
            }
            if (j == 0)
                return member;
            --j;
        }
        if (toks[j].kind != TokKind::Identifier)
            return false;
        if (name->empty())
            *name = toks[j].text;
        if (toks[j].text == "this" || toks[j].text.back() == '_')
            member = true;
        if (j == 0 || !(isPunct(toks[j - 1], ".") ||
                        isPunct(toks[j - 1], "->") ||
                        isPunct(toks[j - 1], "::")))
            break;
        --j; // onto the separator; the loop steps past it
    }
    return member;
}

void
scanMemberPushBack(const std::vector<Token> &toks,
                   const std::string &relpath,
                   const AnalyzeOptions &opts,
                   std::vector<Finding> *out)
{
    if (!opts.runs(Rule::R8UnboundedPushBack) ||
        !inAnyDir(relpath, kServeHotDirs))
        return;
    for (size_t i = 1; i + 1 < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Identifier || t.preproc)
            continue;
        if (t.text != "push_back" && t.text != "emplace_back")
            continue;
        if (!isMemberAccess(toks, i) || !isPunct(toks[i + 1], "("))
            continue;
        std::string name;
        if (!receiverIsMember(toks, i - 1, &name))
            continue;
        out->push_back(
            {Rule::R8UnboundedPushBack, relpath, t.line,
             t.text + " into member container '" + name +
                 "' on a per-frame path grows without bound; pool or "
                 "cap it, then state the bound in a "
                 "detlint:allow(R8) comment"});
    }
}

// ---------------------------------------------------------------------
// R9: raw-memory (de)serialization in snapshot/codec code.
// ---------------------------------------------------------------------

/**
 * True for files in the snapshot format's blast radius: anything
 * whose repo-relative path mentions "snapshot" (the codec itself and
 * per-component saveSnapshot/restoreSnapshot translation units that
 * adopt the naming convention).
 */
bool
isSnapshotCode(const std::string &relpath)
{
    return relpath.find("snapshot") != std::string::npos;
}

void
scanRawMemcpySerialize(const std::vector<Token> &toks,
                       const std::string &relpath,
                       const AnalyzeOptions &opts,
                       std::vector<Finding> *out)
{
    if (!opts.runs(Rule::R9RawMemcpySerialize) ||
        !isSnapshotCode(relpath))
        return;
    for (size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Identifier || t.preproc)
            continue;
        if (t.text == "reinterpret_cast") {
            out->push_back(
                {Rule::R9RawMemcpySerialize, relpath, t.line,
                 "reinterpret_cast in snapshot code reads struct "
                 "layout/padding into the wire format; encode each "
                 "field through the typed codec calls"});
            continue;
        }
        if (t.text != "memcpy" && t.text != "memmove")
            continue;
        if (isMemberAccess(toks, i))
            continue;
        const bool called =
            i + 1 < toks.size() && isPunct(toks[i + 1], "(");
        if (!called || !stdOrUnqualified(toks, i))
            continue;
        out->push_back(
            {Rule::R9RawMemcpySerialize, relpath, t.line,
             "whole-struct " + t.text +
                 " (de)serialization bakes layout, padding, and "
                 "endianness into the snapshot format; encode each "
                 "field through the typed codec calls"});
    }
}

} // namespace

std::vector<Finding>
analyzeSources(
    const std::vector<std::pair<std::string, std::string>> &sources,
    const AnalyzeOptions &opts)
{
    // Phase 0: lex every file once (both token streams + suppressions).
    std::vector<SourceFile> files;
    files.reserve(sources.size());
    for (const auto &[relpath, content] : sources)
        files.push_back(makeSourceFile(relpath, content));

    // Phase 1+2 per file: the line-oriented rules over the stream
    // that retains preprocessor tokens.
    std::vector<Finding> raw;
    for (const SourceFile &sf : files) {
        scanBannedIdentifiers(sf.toks, sf.relpath, opts, &raw);
        scanUnorderedIteration(sf.toks, sf.relpath, opts, &raw);
        scanThrowAndDiscard(sf.toks, sf.relpath, opts, &raw);
        scanWarnInLoop(sf.toks, sf.relpath, opts, &raw);
        scanImageCopy(sf.toks, sf.relpath, opts, &raw);
        scanMemberPushBack(sf.toks, sf.relpath, opts, &raw);
        scanRawMemcpySerialize(sf.toks, sf.relpath, opts, &raw);
    }

    // Cross-file symbol rules over the declaration index.
    if (opts.runs(Rule::R10LockDiscipline) ||
        opts.runs(Rule::R11ViewEscape) ||
        opts.runs(Rule::R12SnapshotCoverage)) {
        const DeclIndex ix = buildIndex(files);
        std::vector<Finding> sym = runSymbolRules(ix, files, opts);
        raw.insert(raw.end(), std::make_move_iterator(sym.begin()),
                   std::make_move_iterator(sym.end()));
    }

    // Suppressions anchor at each finding's own file and line.
    std::map<std::string, const Suppressions *> sup_of;
    for (const SourceFile &sf : files)
        sup_of[sf.relpath] = &sf.sup;
    std::vector<Finding> kept;
    for (Finding &f : raw) {
        auto it = sup_of.find(f.file);
        if (it == sup_of.end() ||
            !it->second->suppressed(f.rule, f.line))
            kept.push_back(std::move(f));
    }
    sortFindings(&kept);
    return kept;
}

std::vector<Finding>
analyzeSource(const std::string &relpath, const std::string &content,
              const AnalyzeOptions &opts)
{
    return analyzeSources({{relpath, content}}, opts);
}

std::vector<Finding>
analyzeTree(const std::string &repo_root,
            const std::vector<std::string> &roots,
            const AnalyzeOptions &opts,
            std::vector<std::string> *scanned_files)
{
    const fs::path base = repo_root.empty() ? fs::current_path()
                                            : fs::path(repo_root);
    std::vector<fs::path> files;
    for (const std::string &root : roots) {
        fs::path p(root);
        if (p.is_relative())
            p = base / p;
        std::error_code ec;
        if (fs::is_regular_file(p, ec)) {
            files.push_back(p);
            continue;
        }
        if (!fs::is_directory(p, ec))
            continue;
        for (fs::recursive_directory_iterator it(p, ec), end;
             it != end && !ec; it.increment(ec)) {
            const fs::path &entry = it->path();
            const std::string name = entry.filename().string();
            if (it->is_directory() &&
                (name == "build" || name == ".git" ||
                 name == "fixtures")) {
                it.disable_recursion_pending();
                continue;
            }
            if (!it->is_regular_file())
                continue;
            const std::string ext = entry.extension().string();
            if (ext == ".h" || ext == ".hpp" || ext == ".cc" ||
                ext == ".cpp")
                files.push_back(entry);
        }
    }

    // All files feed one analyzeSources() call so the symbol rules
    // see cross-file declarations (e.g. a class in a header with its
    // codec bodies in the matching .cc).
    std::vector<std::pair<std::string, std::string>> sources;
    sources.reserve(files.size());
    for (const fs::path &file : files) {
        std::error_code ec;
        fs::path rel = fs::relative(file, base, ec);
        const std::string relpath =
            (ec || rel.empty()) ? file.generic_string()
                                : rel.generic_string();
        if (scanned_files)
            scanned_files->push_back(relpath);
        std::ifstream in(file);
        std::stringstream ss;
        ss << in.rdbuf();
        sources.emplace_back(relpath, ss.str());
    }
    return analyzeSources(sources, opts);
}

} // namespace detlint
} // namespace eyecod
