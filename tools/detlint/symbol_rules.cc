#include "symbol_rules.h"

#include <map>
#include <set>
#include <utility>

namespace eyecod {
namespace detlint {

namespace {

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
inAnyDir(const std::string &relpath,
         const std::vector<std::string> &prefixes)
{
    for (const std::string &p : prefixes)
        if (startsWith(relpath, p.c_str()))
            return true;
    return false;
}

/** Dirs where arena views circulate (R11 scope): the zero-copy
 *  frame spine plus the top-level pipeline facade. */
const std::vector<std::string> kViewScopeDirs = {
    "src/flatcam/", "src/eyetrack/", "src/nn/", "src/serve/",
    "src/core/"};

/** RAII lock types whose declaration opens a lock scope (R10). */
const std::set<std::string> kLockTypes = {
    "MutexLock", "UniqueMutexLock", "lock_guard", "unique_lock",
    "scoped_lock"};

/** True when the identifier at @p i is a bare or this-> member
 *  access (not `other.name` / `ns::name`). */
bool
isSelfMemberRef(const std::vector<Token> &code, size_t i)
{
    if (i == 0)
        return true;
    const Token &prev = code[i - 1];
    if (isPunct(prev, "::"))
        return false;
    if (isPunct(prev, ".") || isPunct(prev, "->"))
        return i >= 2 && isIdent(code[i - 2], "this");
    return true;
}

// ---------------------------------------------------------------------
// R10: lock discipline over EYECOD_GUARDED_BY members.
// ---------------------------------------------------------------------

/** Mutex names a lock declaration at @p i acquires; empty when the
 *  tokens do not form `LockType[<...>] var (args)`. Advances @p i
 *  past the declaration on success. */
std::vector<std::string>
parseLockDecl(const std::vector<Token> &code, size_t *i)
{
    size_t j = *i + 1;
    if (j < code.size() && isPunct(code[j], "<")) {
        int angle = 0;
        for (; j < code.size(); ++j) {
            if (isPunct(code[j], "<"))
                ++angle;
            else if (isPunct(code[j], ">") && --angle == 0)
                break;
            else if (isPunct(code[j], ">>") && (angle -= 2) <= 0)
                break;
        }
        ++j;
    }
    if (j + 1 >= code.size() || code[j].kind != TokKind::Identifier ||
        !(isPunct(code[j + 1], "(") || isPunct(code[j + 1], "{")))
        return {};
    const size_t close = matchParen(code, j + 1);
    std::vector<std::string> mutexes;
    std::string last;
    int depth = 0;
    for (size_t k = j + 2; k < close; ++k) {
        if (isPunct(code[k], "(") || isPunct(code[k], "[") ||
            isPunct(code[k], "{")) {
            ++depth;
        } else if (isPunct(code[k], ")") || isPunct(code[k], "]") ||
                   isPunct(code[k], "}")) {
            --depth;
        } else if (isPunct(code[k], ",") && depth == 0) {
            if (!last.empty())
                mutexes.push_back(last);
            last.clear();
        } else if (code[k].kind == TokKind::Identifier) {
            last = code[k].text;
        }
    }
    if (!last.empty())
        mutexes.push_back(last);
    *i = close;
    return mutexes;
}

void
checkLockDiscipline(const DeclIndex &ix,
                    const std::vector<SourceFile> &files,
                    std::vector<Finding> *out)
{
    for (const ClassInfo &cls : ix.classes) {
        std::map<std::string, std::string> guarded;
        for (const MemberVar &m : cls.members)
            if (!m.guarded_by.empty())
                guarded[m.name] = m.guarded_by;
        if (guarded.empty())
            continue;

        for (const MemberFunc &fn : cls.methods) {
            if (!fn.hasBody() || fn.ctor_dtor)
                continue;
            const std::vector<Token> &code = files[fn.file].code;
            // (mutex, brace depth of the declaring scope); REQUIRES
            // capabilities never pop.
            std::vector<std::pair<std::string, int>> holds;
            for (const std::string &cap : fn.requires_caps)
                holds.emplace_back(cap, -1);
            int depth = 0;
            for (size_t i = fn.body_begin; i < fn.body_end; ++i) {
                const Token &t = code[i];
                if (isPunct(t, "{")) {
                    ++depth;
                    continue;
                }
                if (isPunct(t, "}")) {
                    --depth;
                    while (!holds.empty() && holds.back().second > depth)
                        holds.pop_back();
                    continue;
                }
                if (t.kind != TokKind::Identifier)
                    continue;
                if (kLockTypes.count(t.text) &&
                    !(i > 0 && (isPunct(code[i - 1], ".") ||
                                isPunct(code[i - 1], "->")))) {
                    const std::vector<std::string> mutexes =
                        parseLockDecl(code, &i);
                    for (const std::string &mu : mutexes)
                        holds.emplace_back(mu, depth);
                    continue;
                }
                auto g = guarded.find(t.text);
                if (g == guarded.end() || !isSelfMemberRef(code, i))
                    continue;
                bool held = false;
                for (const auto &h : holds)
                    if (h.first == g->second) {
                        held = true;
                        break;
                    }
                if (!held) {
                    out->push_back(
                        {Rule::R10LockDiscipline, files[fn.file].relpath,
                         t.line,
                         "member '" + t.text + "' is guarded by '" +
                             g->second +
                             "' but accessed outside a lock scope "
                             "naming it (in " + cls.name +
                             "::" + fn.name + ")"});
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// R11: arena views escaping their epoch.
// ---------------------------------------------------------------------

bool
isViewType(const Token &t)
{
    return t.kind == TokKind::Identifier &&
           (t.text == "ImageView" || t.text == "ImageConstView");
}

void
checkViewEscape(const DeclIndex &ix,
                const std::vector<SourceFile> &files,
                std::vector<Finding> *out)
{
    std::set<std::pair<std::string, int>> seen;
    auto emit = [&](const std::string &file, int line,
                    const std::string &msg) {
        if (seen.insert({file, line}).second)
            out->push_back({Rule::R11ViewEscape, file, line, msg});
    };

    // (a) View-typed data members.
    for (const ClassInfo &cls : ix.classes) {
        if (!inAnyDir(files[cls.file].relpath, kViewScopeDirs))
            continue;
        for (const MemberVar &m : cls.members) {
            if (m.type.find(" ImageView ") == std::string::npos &&
                m.type.find(" ImageConstView ") == std::string::npos)
                continue;
            emit(files[m.file].relpath, m.line,
                 "view-typed member '" + m.name + "' of " + cls.name +
                     " outlives the arena epoch that produced it; "
                     "store an owning Image or re-derive the view "
                     "per frame");
        }
    }

    for (const SourceFile &sf : files) {
        if (!inAnyDir(sf.relpath, kViewScopeDirs))
            continue;
        const std::vector<Token> &code = sf.code;
        for (size_t i = 0; i < code.size(); ++i) {
            if (isViewType(code[i])) {
                // (b) Static view variables: `static` earlier in the
                // same statement, declarator not a function.
                bool is_static = false;
                for (size_t k = i; k-- > 0;) {
                    if (isPunct(code[k], ";") || isPunct(code[k], "{") ||
                        isPunct(code[k], "}") || isPunct(code[k], "("))
                        break;
                    if (isIdent(code[k], "static")) {
                        is_static = true;
                        break;
                    }
                }
                if (is_static && i + 1 < code.size() &&
                    code[i + 1].kind == TokKind::Identifier &&
                    !(i + 2 < code.size() && isPunct(code[i + 2], "("))) {
                    emit(sf.relpath, code[i].line,
                         "static view variable '" + code[i + 1].text +
                             "' pins an arena buffer across epochs; "
                             "views must not outlive their arena "
                             "reset");
                }
                // (c) Function returning a reference to a view:
                // `ImageView &name(` (possibly Class::name).
                if (i + 2 < code.size() && isPunct(code[i + 1], "&")) {
                    size_t j = i + 2;
                    while (j + 2 < code.size() &&
                           code[j].kind == TokKind::Identifier &&
                           isPunct(code[j + 1], "::") &&
                           code[j + 2].kind == TokKind::Identifier)
                        j += 2;
                    if (j + 1 < code.size() &&
                        code[j].kind == TokKind::Identifier &&
                        isPunct(code[j + 1], "(")) {
                        emit(sf.relpath, code[i].line,
                             "'" + code[j].text +
                                 "' returns a reference to a view; "
                                 "return the view by value (views are "
                                 "two pointers) so it cannot dangle");
                    }
                }
                continue;
            }
            // (d) Member assigned from an arena allocation:
            // `x_ = ... allocImage(...)` / `x_ = arena....alloc(...)`.
            const Token &t = code[i];
            if (t.kind != TokKind::Identifier || t.text.back() != '_' ||
                i + 1 >= code.size() || !isPunct(code[i + 1], "=") ||
                !isSelfMemberRef(code, i))
                continue;
            bool arena_named = false, alloc_call = false;
            for (size_t j = i + 2; j < code.size(); ++j) {
                if (isPunct(code[j], ";"))
                    break;
                if (code[j].kind != TokKind::Identifier)
                    continue;
                if (code[j].text == "allocImage") {
                    arena_named = alloc_call = true;
                    break;
                }
                if (code[j].text.find("arena") != std::string::npos ||
                    code[j].text.find("Arena") != std::string::npos)
                    arena_named = true;
                else if (code[j].text == "alloc" && j + 1 < code.size() &&
                         isPunct(code[j + 1], "("))
                    alloc_call = true;
            }
            if (arena_named && alloc_call) {
                emit(sf.relpath, t.line,
                     "member '" + t.text +
                         "' stores an arena allocation; it dangles at "
                         "the next epoch reset — keep arena views "
                         "frame-local");
            }
        }
    }
}

// ---------------------------------------------------------------------
// R12: snapshot writer/reader coverage.
// ---------------------------------------------------------------------

/** First-reference line per member name, per codec side. */
struct SideRefs
{
    bool present = false;
    std::map<std::string, std::pair<std::string, int>> refs;
};

bool
sigMentions(const std::vector<Token> &code, size_t begin, size_t end,
            const char *name)
{
    for (size_t i = begin; i < end && i < code.size(); ++i)
        if (isIdent(code[i], name))
            return true;
    return false;
}

/** Member name the identifier @p text references under the loose
 *  accessor heuristic; "" when it matches no member. */
std::string
looseMemberMatch(const std::set<std::string> &members,
                 const std::string &text)
{
    if (members.count(text))
        return text;
    if (members.count(text + "_"))
        return text + "_";
    return "";
}

void
collectRefs(const std::vector<SourceFile> &files, size_t file,
            size_t body_begin, size_t body_end,
            const std::set<std::string> &members, SideRefs *side)
{
    side->present = true;
    const std::vector<Token> &code = files[file].code;
    for (size_t i = body_begin; i < body_end && i < code.size(); ++i) {
        if (code[i].kind != TokKind::Identifier)
            continue;
        const std::string m = looseMemberMatch(members, code[i].text);
        if (m.empty())
            continue;
        side->refs.emplace(m, std::make_pair(files[file].relpath,
                                             code[i].line));
    }
}

void
checkSnapshotCoverage(const DeclIndex &ix,
                      const std::vector<SourceFile> &files,
                      std::vector<Finding> *out)
{
    // Last name component -> class index (-2 when ambiguous).
    std::map<std::string, int> by_last;
    for (size_t c = 0; c < ix.classes.size(); ++c) {
        const std::string &name = ix.classes[c].name;
        const size_t sep = name.rfind("::");
        const std::string last =
            sep == std::string::npos ? name : name.substr(sep + 2);
        auto it = by_last.find(last);
        if (it == by_last.end())
            by_last[last] = int(c);
        else
            it->second = -2;
    }

    std::vector<SideRefs> writers(ix.classes.size());
    std::vector<SideRefs> readers(ix.classes.size());
    std::vector<std::set<std::string>> member_names(ix.classes.size());
    for (size_t c = 0; c < ix.classes.size(); ++c)
        for (const MemberVar &m : ix.classes[c].members)
            if (!m.is_static)
                member_names[c].insert(m.name);

    auto side_of = [](const std::string &name, bool *writer) -> bool {
        if (startsWith(name, "save") || startsWith(name, "write")) {
            *writer = true;
            return true;
        }
        if (startsWith(name, "restore") || startsWith(name, "read")) {
            *writer = false;
            return true;
        }
        return false;
    };

    // Member codecs.
    for (size_t c = 0; c < ix.classes.size(); ++c) {
        for (const MemberFunc &fn : ix.classes[c].methods) {
            bool writer = false;
            if (!fn.hasBody() || !side_of(fn.name, &writer))
                continue;
            const std::vector<Token> &code = files[fn.file].code;
            if (!sigMentions(code, fn.sig_begin, fn.sig_end,
                             writer ? "SnapshotWriter"
                                    : "SnapshotReader"))
                continue;
            collectRefs(files, fn.file, fn.body_begin, fn.body_end,
                        member_names[c],
                        writer ? &writers[c] : &readers[c]);
        }
    }

    // Free codecs: paired to the unique indexed class named in the
    // signature (return type included — `Result<Rect> readRect(...)`
    // names its target only there). Error/codec plumbing types can
    // appear in any codec's signature and never are the target.
    const std::set<std::string> kPlumbing = {
        "SnapshotWriter", "SnapshotReader", "Status", "Result"};
    for (const FreeFunc &fn : ix.free_funcs) {
        bool writer = false;
        if (!side_of(fn.name, &writer))
            continue;
        const std::vector<Token> &code = files[fn.file].code;
        if (!sigMentions(code, fn.sig_begin, fn.sig_end,
                         writer ? "SnapshotWriter" : "SnapshotReader"))
            continue;
        int target = -1;
        bool ambiguous = false;
        for (size_t i = fn.sig_begin; i < fn.sig_end; ++i) {
            if (code[i].kind != TokKind::Identifier ||
                kPlumbing.count(code[i].text))
                continue;
            auto it = by_last.find(code[i].text);
            if (it == by_last.end() || it->second < 0)
                continue;
            if (target >= 0 && target != it->second) {
                ambiguous = true; // two candidate classes
                break;
            }
            target = it->second;
        }
        if (target < 0 || ambiguous)
            continue;
        collectRefs(files, fn.file, fn.body_begin, fn.body_end,
                    member_names[size_t(target)],
                    writer ? &writers[size_t(target)]
                           : &readers[size_t(target)]);
    }

    for (size_t c = 0; c < ix.classes.size(); ++c) {
        const SideRefs &w = writers[c];
        const SideRefs &r = readers[c];
        if (!w.present || !r.present)
            continue;
        // Accessor-only codecs (e.g. Image's writeImage/readImage
        // driving the public API) reference no field directly on
        // either side: nothing to cross-check.
        if (w.refs.empty() && r.refs.empty())
            continue;
        const ClassInfo &cls = ix.classes[c];
        for (const auto &[m, loc] : w.refs) {
            if (!r.refs.count(m))
                out->push_back(
                    {Rule::R12SnapshotCoverage, loc.first, loc.second,
                     "snapshot writer for " + cls.name +
                         " references '" + m +
                         "' but no reader restores it; the field is "
                         "silently lost across checkpoint/restore"});
        }
        for (const auto &[m, loc] : r.refs) {
            if (!w.refs.count(m))
                out->push_back(
                    {Rule::R12SnapshotCoverage, loc.first, loc.second,
                     "snapshot reader for " + cls.name +
                         " references '" + m +
                         "' but no writer saves it; restore reads a "
                         "field the format never carries"});
        }
        for (const MemberVar &m : cls.members) {
            if (m.is_static || w.refs.count(m.name) ||
                r.refs.count(m.name))
                continue;
            out->push_back(
                {Rule::R12SnapshotCoverage, files[m.file].relpath,
                 m.line,
                 "member '" + m.name + "' of " + cls.name +
                     " is covered by neither snapshot writer nor "
                     "reader; state it is rebuilt (detlint:allow) or "
                     "add it to the codec"});
        }
    }
}

} // namespace

std::vector<Finding>
runSymbolRules(const DeclIndex &ix, const std::vector<SourceFile> &files,
               const AnalyzeOptions &opts)
{
    std::vector<Finding> out;
    if (opts.runs(Rule::R10LockDiscipline))
        checkLockDiscipline(ix, files, &out);
    if (opts.runs(Rule::R11ViewEscape))
        checkViewEscape(ix, files, &out);
    if (opts.runs(Rule::R12SnapshotCoverage))
        checkSnapshotCoverage(ix, files, &out);
    return out;
}

} // namespace detlint
} // namespace eyecod
