/**
 * @file
 * detlint CLI — the repo's determinism & robustness linter.
 *
 * Usage:
 *   detlint [options] [path...]
 *
 * Paths are files or directories, relative to --repo-root (default:
 * the current directory). With no paths, scans src, bench, tests,
 * examples, and tools/dse.
 *
 * Options:
 *   --repo-root=DIR     Root used for relative paths and rule scoping.
 *   --format=text|json  Findings output format (default text).
 *   --rules=R1,R5,...   Run only the listed rules (ids or names).
 *   --check-headers     Also compile every header standalone (H1).
 *   --headers-only      Run only the H1 header check.
 *   --cxx=BIN           Compiler for the header check ($CXX, c++).
 *   --include=DIR       Extra -I for the header check (repeatable;
 *                       repo-root/src is always included).
 *   --list-rules        Print the rule table and exit.
 *
 * Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "findings.h"
#include "header_check.h"
#include "rules.h"

namespace {

using namespace eyecod::detlint;

int
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--repo-root=DIR] [--format=text|json] "
                 "[--rules=LIST] [--check-headers] [--headers-only] "
                 "[--cxx=BIN] [--include=DIR] [--list-rules] "
                 "[path...]\n";
    return 2;
}

void
listRules()
{
    for (const RuleInfo &info : allRules())
        std::cout << info.id << "  " << info.name << "  — "
                  << info.summary << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string repo_root;
    std::string format = "text";
    bool check_headers = false;
    bool headers_only = false;
    AnalyzeOptions opts;
    HeaderCheckOptions header_opts;
    std::vector<std::string> roots;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto valueOf = [&](const char *prefix) -> const char * {
            const size_t n = std::strlen(prefix);
            return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n
                                                  : nullptr;
        };
        if (const char *v = valueOf("--repo-root=")) {
            repo_root = v;
        } else if (const char *v2 = valueOf("--format=")) {
            format = v2;
            if (format != "text" && format != "json")
                return usage(argv[0]);
        } else if (const char *v3 = valueOf("--rules=")) {
            std::string list = v3;
            size_t pos = 0;
            while (pos <= list.size()) {
                size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                const std::string item = list.substr(pos, comma - pos);
                Rule rule;
                if (!item.empty() && !parseRule(item, &rule)) {
                    std::cerr << "detlint: unknown rule '" << item
                              << "'\n";
                    return 2;
                }
                if (!item.empty())
                    opts.enabled.insert(rule);
                pos = comma + 1;
            }
        } else if (arg == "--check-headers") {
            check_headers = true;
        } else if (arg == "--headers-only") {
            headers_only = true;
        } else if (const char *v4 = valueOf("--cxx=")) {
            header_opts.cxx = v4;
        } else if (const char *v5 = valueOf("--include=")) {
            header_opts.include_dirs.push_back(v5);
        } else if (arg == "--list-rules") {
            listRules();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            return usage(argv[0]);
        } else {
            roots.push_back(arg);
        }
    }

    const bool explicit_roots = !roots.empty();
    if (roots.empty())
        roots = {"src",      "bench",    "tests",
                 "examples", "tools/dse"};

    std::vector<Finding> findings;
    std::vector<std::string> scanned;
    if (!headers_only)
        findings = analyzeTree(repo_root, roots, opts, &scanned);

    int headers_checked = 0;
    if (check_headers || headers_only) {
        // Header TUs resolve their internal includes against src/.
        const std::string base = repo_root.empty() ? "." : repo_root;
        header_opts.include_dirs.push_back(base + "/src");
        const std::vector<std::string> header_roots =
            explicit_roots ? roots : std::vector<std::string>{"src"};
        std::vector<Finding> h1 = checkHeaders(
            repo_root, header_roots, header_opts, &headers_checked);
        findings.insert(findings.end(), h1.begin(), h1.end());
        sortFindings(&findings);
    }

    if (format == "json") {
        emitJson(findings, std::cout);
    } else {
        emitText(findings, std::cout);
        std::cerr << "detlint: " << scanned.size() << " file(s) scanned";
        if (check_headers || headers_only)
            std::cerr << ", " << headers_checked
                      << " header(s) compiled standalone";
        std::cerr << ", " << findings.size() << " finding(s)\n";
    }
    return findings.empty() ? 0 : 1;
}
