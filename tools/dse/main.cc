/**
 * @file
 * Design-space explorer CLI (DESIGN.md section 14.5):
 *
 *   dse estimate [--lanes N] [--macs N] [--act-kib N] [--banks N]
 *                [--mode partial|timemux|concurrent]
 *       estimate the pipeline on one candidate configuration;
 *   dse validate
 *       run the estimator-vs-simulator validation sweep;
 *   dse search [--json]
 *       sweep the default lattice and print the Pareto front
 *       (--json emits the full machine-readable result).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/stats.h"
#include "dse/search.h"
#include "dse/validate.h"

using namespace eyecod;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: dse <estimate|validate|search> [options]\n"
        "  estimate [--lanes N] [--macs N] [--act-kib N] "
        "[--banks N]\n"
        "           [--mode partial|timemux|concurrent]\n"
        "  validate\n"
        "  search [--json]\n");
    return 2;
}

/** Parse a positive integer option value; exits on garbage. */
int
intArg(const char *flag, const char *value)
{
    if (value == nullptr) {
        std::fprintf(stderr, "dse: %s needs a value\n", flag);
        std::exit(2);
    }
    const int v = std::atoi(value);
    if (v <= 0) {
        std::fprintf(stderr, "dse: bad %s value '%s'\n", flag,
                     value);
        std::exit(2);
    }
    return v;
}

int
runEstimate(int argc, char **argv)
{
    accel::HwConfig hw;
    for (int i = 0; i < argc; ++i) {
        const char *next = i + 1 < argc ? argv[i + 1] : nullptr;
        if (std::strcmp(argv[i], "--lanes") == 0)
            hw.mac_lanes = intArg("--lanes", next), ++i;
        else if (std::strcmp(argv[i], "--macs") == 0)
            hw.macs_per_lane = intArg("--macs", next), ++i;
        else if (std::strcmp(argv[i], "--act-kib") == 0)
            hw.act_gb_bytes = intArg("--act-kib", next) * 1024L, ++i;
        else if (std::strcmp(argv[i], "--banks") == 0)
            hw.act_gb_banks = intArg("--banks", next), ++i;
        else if (std::strcmp(argv[i], "--mode") == 0 &&
                 next != nullptr) {
            if (std::strcmp(next, "partial") == 0)
                hw.orchestration =
                    accel::OrchestrationMode::PartialTimeMultiplex;
            else if (std::strcmp(next, "timemux") == 0)
                hw.orchestration =
                    accel::OrchestrationMode::TimeMultiplex;
            else if (std::strcmp(next, "concurrent") == 0)
                hw.orchestration =
                    accel::OrchestrationMode::Concurrent;
            else {
                std::fprintf(stderr, "dse: bad --mode '%s'\n", next);
                return 2;
            }
            ++i;
        } else {
            std::fprintf(stderr, "dse: unknown option '%s'\n",
                         argv[i]);
            return 2;
        }
    }

    const accel::EnergyModel energy = dse::energyModelFor(hw);
    Result<dse::Estimate> est =
        dse::estimatePipeline({}, hw, energy);
    if (!est.ok()) {
        std::fprintf(stderr, "dse: %s\n",
                     est.status().toString().c_str());
        return 1;
    }
    const dse::Estimate &e = est.value();
    std::printf("config: %d lanes x %d MACs, %ld KiB Act GB x %d "
                "(%d banks)\n",
                hw.mac_lanes, hw.macs_per_lane,
                hw.act_gb_bytes / 1024, hw.act_gb_count,
                hw.act_gb_banks);
    std::printf("frame:  %lld cycles (%lld peak, %lld partition "
                "overhead), %.3f ms\n",
                e.frame_cycles, e.peak_frame_cycles,
                e.partition_overhead_cycles, e.frame_ms);
    std::printf("rate:   %.1f FPS steady, %.1f FPS peak, "
                "utilization %.3f\n",
                e.fps, e.fps_peak, e.utilization);
    std::printf("memory: %lld B resident activations (P=%d, "
                "fits: %s), %lld B SRAM provisioned\n",
                e.act_mem_bytes, e.partition_factor,
                e.act_mem_fits ? "yes" : "no", e.sram_total_bytes);
    std::printf("energy: %.1f uJ/frame, %.3f W average\n",
                e.energy_per_frame_j * 1e6, e.power_w);
    return 0;
}

int
runValidate()
{
    Result<dse::ValidationReport> sweep = dse::runValidationSweep();
    if (!sweep.ok()) {
        std::fprintf(stderr, "dse: %s\n",
                     sweep.status().toString().c_str());
        return 1;
    }
    const dse::ValidationReport &rep = sweep.value();
    TextTable t({"case", "est cycles", "sim cycles", "lat err",
                 "energy err", "exact"});
    for (const dse::ValidationCase &c : rep.cases)
        t.addRow({c.name, std::to_string(c.est_frame_cycles),
                  std::to_string(c.sim_frame_cycles),
                  formatDouble(c.latency_rel_err, 4),
                  formatDouble(c.energy_rel_err, 4),
                  c.exact ? "yes" : "no"});
    std::printf("%s\nmax latency err %.4f (gate %.2f), max energy "
                "err %.4f (gate %.2f), paper exact: %s\n%s\n",
                t.render().c_str(), rep.max_latency_rel_err,
                dse::kLatencyErrorGate, rep.max_energy_rel_err,
                dse::kEnergyErrorGate,
                rep.paper_exact ? "yes" : "NO",
                rep.passed() ? "PASSED" : "FAILED");
    return rep.passed() ? 0 : 1;
}

int
runSearch(bool json)
{
    Result<dse::SearchResult> search =
        dse::searchParetoFront(dse::SearchSpace::defaultSpace());
    if (!search.ok()) {
        std::fprintf(stderr, "dse: %s\n",
                     search.status().toString().c_str());
        return 1;
    }
    const dse::SearchResult &r = search.value();
    if (json) {
        std::fputs(dse::searchResultJson(r).c_str(), stdout);
        return 0;
    }
    TextTable t({"lanes", "macs", "act KiB", "banks", "FPS",
                 "uJ/frame", "SRAM KiB", "P", "paper"});
    for (size_t idx : r.front) {
        const dse::DesignPoint &p = r.points[idx];
        t.addRow({std::to_string(p.hw.mac_lanes),
                  std::to_string(p.hw.macs_per_lane),
                  std::to_string(p.hw.act_gb_bytes / 1024),
                  std::to_string(p.hw.act_gb_banks),
                  formatDouble(p.est.fps, 1),
                  formatDouble(p.est.energy_per_frame_j * 1e6, 1),
                  std::to_string(p.est.sram_total_bytes / 1024),
                  std::to_string(p.est.partition_factor),
                  p.is_paper ? "<<<" : ""});
    }
    std::printf("%s\nlattice %lld: evaluated %lld, pruned %lld "
                "infeasible + %lld monotone; front %zu points, "
                "paper on front: %s\n",
                t.render().c_str(), r.lattice_size, r.evaluated,
                r.pruned_infeasible, r.pruned_monotone,
                r.front.size(), r.paper_on_front ? "yes" : "no");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "estimate")
        return runEstimate(argc - 2, argv + 2);
    if (cmd == "validate")
        return runValidate();
    if (cmd == "search")
        return runSearch(argc > 2 &&
                         std::string(argv[2]) == "--json");
    return usage();
}
