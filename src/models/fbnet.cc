/**
 * @file
 * FBNet-C builder ("FBNet-C100" in EyeCoD): the differentiable-NAS
 * mobile architecture of Wu et al., re-headed as a 3-D gaze
 * regressor. Block table follows the published FBNet-C search result
 * (kernel, expansion, channels, stride per block).
 */

#include "models/model_zoo.h"

#include "common/logging.h"
#include "models/mbconv.h"
#include "nn/basic_layers.h"
#include "nn/conv.h"

namespace eyecod {
namespace models {

namespace {

/** One searched FBNet block: kernel, expansion, out channels, stride. */
struct BlockCfg
{
    int kernel;
    int expansion;
    int channels;
    int stride;
};

/** FBNet-C block table (skip-blocks of the search are elided). */
const BlockCfg kFbnetC[] = {
    {3, 1, 16, 1},
    {3, 6, 24, 2}, {3, 1, 24, 1}, {3, 1, 24, 1}, {3, 1, 24, 1},
    {5, 6, 32, 2}, {5, 3, 32, 1}, {5, 6, 32, 1}, {3, 6, 32, 1},
    {5, 6, 64, 2}, {5, 3, 64, 1}, {5, 6, 64, 1}, {5, 6, 64, 1},
    {5, 6, 112, 1}, {5, 3, 112, 1}, {5, 6, 112, 1}, {5, 6, 112, 1},
    {5, 6, 184, 2}, {5, 6, 184, 1}, {5, 6, 184, 1}, {5, 6, 184, 1},
    {3, 6, 352, 1},
};

} // namespace

nn::Graph
buildFBNetC100(int height, int width, int quant_bits)
{
    eyecod_assert(height % 32 == 0 && width % 32 == 0,
                  "FBNet input must be divisible by 32, got %dx%d",
                  height, width);
    nn::Graph g("fbnet-c100-" + std::to_string(height) + "x" +
                std::to_string(width));
    MbCtx ctx{&g, quant_bits, 300, 0};

    const int input = g.addInput(nn::Shape{1, height, width}, "roi");

    // Stem: 3x3 stride-2 conv to 16 channels.
    int x = mbConvLayer(ctx, input, nn::Shape{1, height, width}, 16,
                        3, 2, true);
    nn::Shape shape{16, height / 2, width / 2};

    for (const BlockCfg &b : kFbnetC) {
        x = mbConvBlock(ctx, x, shape, b.channels, b.kernel, b.stride,
                        b.expansion);
        shape = nn::Shape{b.channels,
                          (shape.h + b.stride - 1) / b.stride,
                          (shape.w + b.stride - 1) / b.stride};
    }

    // Head: 1x1 conv to 1504 features, global average pool, and the
    // gaze-normal regression FC producing the 3-D gaze vector.
    x = mbConvLayer(ctx, x, shape, 1504, 1, 1, true);
    shape.c = 1504;
    x = g.emplace<nn::Pool>({x}, "gap", shape,
                            nn::PoolMode::GlobalAverage);
    g.emplace<nn::FullyConnected>({x}, "gaze_fc",
                                  nn::Shape{1504, 1, 1}, kGazeOutputs,
                                  false, quant_bits, 399);
    return g;
}

nn::Graph
buildMobileNetV2(int height, int width, int quant_bits)
{
    eyecod_assert(height % 32 == 0 && width % 32 == 0,
                  "MobileNetV2 input must be divisible by 32, got "
                  "%dx%d", height, width);
    nn::Graph g("mobilenetv2-" + std::to_string(height) + "x" +
                std::to_string(width));
    MbCtx ctx{&g, quant_bits, 400, 0};

    const int input = g.addInput(nn::Shape{1, height, width}, "roi");

    int x = mbConvLayer(ctx, input, nn::Shape{1, height, width}, 32,
                        3, 2, true);
    nn::Shape shape{32, height / 2, width / 2};

    // (expansion, channels, repeats, first stride) per MobileNetV2.
    const int cfg[][4] = {
        {1, 16, 1, 1}, {6, 24, 2, 2}, {6, 32, 3, 2}, {6, 64, 4, 2},
        {6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1},
    };
    for (const auto &c : cfg) {
        for (int i = 0; i < c[2]; ++i) {
            const int stride = i == 0 ? c[3] : 1;
            x = mbConvBlock(ctx, x, shape, c[1], 3, stride, c[0]);
            shape = nn::Shape{c[1], (shape.h + stride - 1) / stride,
                              (shape.w + stride - 1) / stride};
        }
    }

    x = mbConvLayer(ctx, x, shape, 1280, 1, 1, true);
    shape.c = 1280;
    x = g.emplace<nn::Pool>({x}, "gap", shape,
                            nn::PoolMode::GlobalAverage);
    g.emplace<nn::FullyConnected>({x}, "gaze_fc",
                                  nn::Shape{1280, 1, 1}, kGazeOutputs,
                                  false, quant_bits, 499);
    return g;
}

} // namespace models
} // namespace eyecod
