/**
 * @file
 * Builders for every network in the paper's evaluation:
 *
 *  - RITNet (Chaudhary et al. 2019) — eye segmentation backbone of the
 *    predict stage (Tab. 3);
 *  - U-Net — segmentation baseline row of Tab. 3;
 *  - FBNet-C100 (Wu et al. 2019) — gaze estimation backbone of the
 *    focus stage (Tab. 2);
 *  - ResNet18 — the OpenEDS2020-winner gaze baseline (Tab. 2);
 *  - MobileNetV2 — gaze alternative row of Tab. 2.
 *
 * All builders produce functional nn::Graph instances whose layer
 * shapes — and therefore FLOPs, parameter counts, and accelerator
 * workloads — match the published architectures. Weights are
 * deterministic seeded He initializations (see DESIGN.md on the
 * trained-checkpoint substitution).
 */

#ifndef EYECOD_MODELS_MODEL_ZOO_H
#define EYECOD_MODELS_MODEL_ZOO_H

#include <string>
#include <vector>

#include "nn/graph.h"

namespace eyecod {
namespace models {

/** Gaze-model output width: a 3-D gaze vector. */
constexpr int kGazeOutputs = 3;

/** Segmentation classes: background, sclera, iris, pupil. */
constexpr int kSegClasses = 4;

/**
 * RITNet eye segmentation network: five dense down-blocks, four
 * dense up-blocks with skip concatenations, 4-class per-pixel output.
 *
 * @param height,width input resolution (paper sweeps 512/256/128).
 * @param quant_bits 0 for float, 8 for the deployed int8 variant.
 */
nn::Graph buildRitNet(int height, int width, int quant_bits = 0);

/**
 * U-Net segmentation baseline (slim variant sized per Tab. 3).
 */
nn::Graph buildUNet(int height, int width, int quant_bits = 0);

/**
 * FBNet-C gaze estimation network ("FBNet-C100" in the paper),
 * ending in a 3-D gaze regression head.
 *
 * @param height,width input ROI resolution (96x160 in EyeCoD).
 */
nn::Graph buildFBNetC100(int height, int width, int quant_bits = 0);

/**
 * ResNet18 gaze baseline (OpenEDS2020 winner backbone).
 */
nn::Graph buildResNet18(int height, int width, int quant_bits = 0);

/**
 * MobileNetV2 gaze alternative.
 */
nn::Graph buildMobileNetV2(int height, int width, int quant_bits = 0);

/** One registered model builder. */
struct ZooEntry
{
    std::string name; ///< Stable registry key ("ritnet", "fbnet", …).
    nn::Graph (*build)(int height, int width, int quant_bits);
    int deploy_height; ///< EyeCoD deployment input resolution.
    int deploy_width;
    int test_height; ///< Smallest resolution the builder accepts —
    int test_width;  ///< what parity tests and fuzzers should use.
};

/**
 * Every network in the zoo, in a stable order. Runtime parity tests
 * and benchmarks iterate this instead of hard-coding builders, so a
 * model added here is automatically covered.
 */
const std::vector<ZooEntry> &modelZoo();

/** Registry lookup by name; asserts when @p name is unknown. */
const ZooEntry &findModel(const std::string &name);

} // namespace models
} // namespace eyecod

#endif // EYECOD_MODELS_MODEL_ZOO_H
