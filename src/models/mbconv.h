/**
 * @file
 * Shared inverted-residual (MBConv) block builder used by the
 * FBNet-C100 and MobileNetV2 gaze models: 1x1 expansion, KxK
 * depth-wise, 1x1 linear projection, residual add when shapes allow.
 */

#ifndef EYECOD_MODELS_MBCONV_H
#define EYECOD_MODELS_MBCONV_H

#include <cstdint>

#include "nn/graph.h"

namespace eyecod {
namespace models {

/** Builder state threaded through block construction. */
struct MbCtx
{
    nn::Graph *g;       ///< Target graph.
    int quant_bits = 0; ///< Conv quantization bits.
    uint64_t seed = 1;  ///< Seed base for weight init.
    int counter = 0;    ///< Unique-name counter.
};

/**
 * Append a plain convolution (+ fused ReLU) to the graph.
 *
 * @return the new node id.
 */
int mbConvLayer(MbCtx &ctx, int input, nn::Shape in, int out_c,
                int kernel, int stride, bool relu,
                bool depthwise = false);

/**
 * Append an MBConv block. expansion == 1 skips the expansion conv.
 *
 * @param in input shape; the block outputs (out_c, ceil(h/s),
 *        ceil(w/s)).
 * @return the output node id.
 */
int mbConvBlock(MbCtx &ctx, int input, nn::Shape in, int out_c,
                int kernel, int stride, int expansion);

} // namespace models
} // namespace eyecod

#endif // EYECOD_MODELS_MBCONV_H
