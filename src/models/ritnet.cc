/**
 * @file
 * RITNet builder: the DenseNet2D-style segmentation network of
 * Chaudhary et al. used by EyeCoD's predict stage. Five down-blocks
 * with dense intra-block concatenation, four up-blocks with skip
 * concatenations, and a 1x1 4-class head.
 */

#include "models/model_zoo.h"

#include "common/logging.h"
#include "nn/basic_layers.h"
#include "nn/conv.h"

namespace eyecod {
namespace models {

namespace {

using nn::Conv2d;
using nn::ConvSpec;
using nn::Shape;

/** Base channel width; sized so 512x512 lands near the paper's 17G. */
constexpr int kRitChannels = 20;

struct Ctx
{
    nn::Graph *g;
    int quant_bits;
    uint64_t seed = 100;
    int counter = 0;

    int
    conv(int input, Shape in, int out_c, int kernel, bool relu = true)
    {
        ConvSpec spec;
        spec.in = in;
        spec.out_channels = out_c;
        spec.kernel = kernel;
        spec.stride = 1;
        spec.relu = relu;
        spec.quant_bits = quant_bits;
        spec.seed = seed + uint64_t(++counter);
        return g->emplace<Conv2d>({input},
                                  "conv" + std::to_string(counter),
                                  spec);
    }
};

/**
 * A dense block: three 3x3 convs, each consuming the concatenation of
 * the block input and all previous conv outputs.
 */
int
denseBlock(Ctx &ctx, int input, Shape in, int m)
{
    nn::Graph &g = *ctx.g;
    const int c1 = ctx.conv(input, in, m, 3);
    const int cat1 = g.emplace<nn::Concat>(
        {input, c1}, "cat" + std::to_string(ctx.counter), in,
        Shape{m, in.h, in.w});
    const int c2 = ctx.conv(cat1, Shape{in.c + m, in.h, in.w}, m, 3);
    const int cat2 = g.emplace<nn::Concat>(
        {cat1, c2}, "cat" + std::to_string(ctx.counter),
        Shape{in.c + m, in.h, in.w}, Shape{m, in.h, in.w});
    const int c3 =
        ctx.conv(cat2, Shape{in.c + 2 * m, in.h, in.w}, m, 3);
    return c3;
}

} // namespace

nn::Graph
buildRitNet(int height, int width, int quant_bits)
{
    eyecod_assert(height % 16 == 0 && width % 16 == 0,
                  "RITNet input must be divisible by 16, got %dx%d",
                  height, width);
    nn::Graph g("ritnet-" + std::to_string(height) + "x" +
                std::to_string(width));
    Ctx ctx{&g, quant_bits};
    const int m = kRitChannels;

    const int input = g.addInput(Shape{1, height, width}, "eye");

    // Encoder: dense block then 2x average pool, four times down.
    int x = input;
    Shape shape{1, height, width};
    std::vector<int> skips;
    std::vector<Shape> skip_shapes;
    for (int level = 0; level < 4; ++level) {
        x = denseBlock(ctx, x, shape, m);
        shape = Shape{m, shape.h, shape.w};
        skips.push_back(x);
        skip_shapes.push_back(shape);
        x = g.emplace<nn::Pool>({x},
                                "pool" + std::to_string(level), shape,
                                nn::PoolMode::Average, 2, 2);
        shape = Shape{m, shape.h / 2, shape.w / 2};
    }
    // Bottleneck block.
    x = denseBlock(ctx, x, shape, m);
    shape = Shape{m, shape.h, shape.w};

    // Decoder: upsample, concat skip, dense block, four times up.
    for (int level = 3; level >= 0; --level) {
        x = g.emplace<nn::Upsample>({x},
                                    "up" + std::to_string(level),
                                    shape, 2, false);
        shape = Shape{m, shape.h * 2, shape.w * 2};
        x = g.emplace<nn::Concat>({x, skips[size_t(level)]},
                                  "skipcat" + std::to_string(level),
                                  shape, skip_shapes[size_t(level)]);
        shape = Shape{2 * m, shape.h, shape.w};
        x = denseBlock(ctx, x, shape, m);
        shape = Shape{m, shape.h, shape.w};
    }

    // 4-class per-pixel head (logits; no activation).
    ctx.conv(x, shape, kSegClasses, 1, false);
    return g;
}

nn::Graph
buildUNet(int height, int width, int quant_bits)
{
    eyecod_assert(height % 16 == 0 && width % 16 == 0,
                  "U-Net input must be divisible by 16, got %dx%d",
                  height, width);
    nn::Graph g("unet-" + std::to_string(height) + "x" +
                std::to_string(width));
    Ctx ctx{&g, quant_bits, 200};
    // Slim U-Net sized to the paper's 14.1G @ 512x512 baseline row.
    const int base = 18;

    const int input = g.addInput(Shape{1, height, width}, "eye");

    int x = input;
    Shape shape{1, height, width};
    std::vector<int> skips;
    std::vector<Shape> skip_shapes;
    int ch = base;
    for (int level = 0; level < 4; ++level) {
        x = ctx.conv(x, shape, ch, 3);
        shape.c = ch;
        x = ctx.conv(x, shape, ch, 3);
        skips.push_back(x);
        skip_shapes.push_back(shape);
        x = g.emplace<nn::Pool>({x},
                                "pool" + std::to_string(level), shape,
                                nn::PoolMode::Max, 2, 2);
        shape = Shape{ch, shape.h / 2, shape.w / 2};
        ch *= 2;
    }
    // Bottleneck.
    x = ctx.conv(x, shape, ch, 3);
    shape.c = ch;
    x = ctx.conv(x, shape, ch, 3);

    for (int level = 3; level >= 0; --level) {
        ch /= 2;
        x = g.emplace<nn::Upsample>({x},
                                    "up" + std::to_string(level),
                                    shape, 2, false);
        shape = Shape{shape.c, shape.h * 2, shape.w * 2};
        // 1x1 projection halves channels before the skip concat.
        x = ctx.conv(x, shape, ch, 1);
        shape.c = ch;
        x = g.emplace<nn::Concat>({x, skips[size_t(level)]},
                                  "skipcat" + std::to_string(level),
                                  shape, skip_shapes[size_t(level)]);
        shape.c = 2 * ch;
        x = ctx.conv(x, shape, ch, 3);
        shape.c = ch;
        x = ctx.conv(x, shape, ch, 3);
    }

    ctx.conv(x, shape, kSegClasses, 1, false);
    return g;
}

} // namespace models
} // namespace eyecod
