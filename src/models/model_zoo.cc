/**
 * @file
 * The model registry: a stable, iterable list of every builder in the
 * zoo with its deployment and minimum-test resolutions. Runtime
 * parity tests, the runtime benchmark, and tooling enumerate this
 * instead of hard-coding builder calls.
 */

#include "models/model_zoo.h"

#include "common/logging.h"

namespace eyecod {
namespace models {

const std::vector<ZooEntry> &
modelZoo()
{
    static const std::vector<ZooEntry> zoo = {
        {"ritnet", &buildRitNet, 256, 256, 32, 32},
        {"unet", &buildUNet, 256, 256, 32, 32},
        {"fbnet", &buildFBNetC100, 96, 160, 32, 64},
        {"resnet18", &buildResNet18, 96, 160, 32, 64},
        {"mobilenetv2", &buildMobileNetV2, 96, 160, 32, 64},
    };
    return zoo;
}

const ZooEntry &
findModel(const std::string &name)
{
    for (const ZooEntry &entry : modelZoo())
        if (entry.name == name)
            return entry;
    eyecod_assert(false, "unknown model '%s'", name.c_str());
    return modelZoo().front(); // unreachable
}

} // namespace models
} // namespace eyecod
