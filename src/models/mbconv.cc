#include "models/mbconv.h"

#include "nn/basic_layers.h"
#include "nn/conv.h"

namespace eyecod {
namespace models {

int
mbConvLayer(MbCtx &ctx, int input, nn::Shape in, int out_c, int kernel,
            int stride, bool relu, bool depthwise)
{
    nn::ConvSpec spec;
    spec.in = in;
    spec.out_channels = out_c;
    spec.kernel = kernel;
    spec.stride = stride;
    spec.depthwise = depthwise;
    spec.relu = relu;
    spec.quant_bits = ctx.quant_bits;
    spec.seed = ctx.seed + uint64_t(++ctx.counter);
    return ctx.g->emplace<nn::Conv2d>(
        {input}, "conv" + std::to_string(ctx.counter), spec);
}

int
mbConvBlock(MbCtx &ctx, int input, nn::Shape in, int out_c, int kernel,
            int stride, int expansion)
{
    int x = input;
    nn::Shape shape = in;
    const int expanded = in.c * expansion;

    if (expansion != 1) {
        x = mbConvLayer(ctx, x, shape, expanded, 1, 1, true);
        shape.c = expanded;
    }
    x = mbConvLayer(ctx, x, shape, expanded, kernel, stride, true,
                    true);
    shape = nn::Shape{expanded, (shape.h + stride - 1) / stride,
                      (shape.w + stride - 1) / stride};
    // Linear (no ReLU) projection.
    x = mbConvLayer(ctx, x, shape, out_c, 1, 1, false);
    shape.c = out_c;

    if (stride == 1 && in.c == out_c) {
        x = ctx.g->emplace<nn::Add>(
            {input, x}, "add" + std::to_string(++ctx.counter), shape,
            false);
    }
    return x;
}

} // namespace models
} // namespace eyecod
