/**
 * @file
 * ResNet18 builder: the OpenEDS2020-winner gaze backbone used as the
 * baseline row of Tab. 2, re-headed as a 3-D gaze regressor.
 */

#include "models/model_zoo.h"

#include "common/logging.h"
#include "nn/basic_layers.h"
#include "nn/conv.h"

namespace eyecod {
namespace models {

namespace {

struct RnCtx
{
    nn::Graph *g;
    int quant_bits;
    int counter = 0;

    int
    conv(int input, nn::Shape in, int out_c, int kernel, int stride,
         bool relu)
    {
        nn::ConvSpec spec;
        spec.in = in;
        spec.out_channels = out_c;
        spec.kernel = kernel;
        spec.stride = stride;
        spec.relu = relu;
        spec.quant_bits = quant_bits;
        spec.seed = 500 + uint64_t(++counter);
        return g->emplace<nn::Conv2d>(
            {input}, "conv" + std::to_string(counter), spec);
    }
};

/** A BasicBlock: two 3x3 convs plus the (possibly projected) skip. */
int
basicBlock(RnCtx &ctx, int input, nn::Shape in, int out_c, int stride)
{
    const nn::Shape mid{out_c, (in.h + stride - 1) / stride,
                        (in.w + stride - 1) / stride};
    int x = ctx.conv(input, in, out_c, 3, stride, true);
    x = ctx.conv(x, mid, out_c, 3, 1, false);

    int skip = input;
    if (stride != 1 || in.c != out_c)
        skip = ctx.conv(input, in, out_c, 1, stride, false);
    return ctx.g->emplace<nn::Add>(
        {skip, x}, "add" + std::to_string(++ctx.counter), mid, true);
}

} // namespace

nn::Graph
buildResNet18(int height, int width, int quant_bits)
{
    eyecod_assert(height % 32 == 0 && width % 32 == 0,
                  "ResNet18 input must be divisible by 32, got %dx%d",
                  height, width);
    nn::Graph g("resnet18-" + std::to_string(height) + "x" +
                std::to_string(width));
    RnCtx ctx{&g, quant_bits};

    const int input = g.addInput(nn::Shape{1, height, width}, "roi");

    // Stem: 7x7 stride-2 conv then 3x3 stride-2 max pool.
    int x = ctx.conv(input, nn::Shape{1, height, width}, 64, 7, 2,
                     true);
    nn::Shape shape{64, height / 2, width / 2};
    x = g.emplace<nn::Pool>({x}, "stem_pool", shape,
                            nn::PoolMode::Max, 3, 2);
    shape = nn::Shape{64, (shape.h + 1) / 2, (shape.w + 1) / 2};

    const int stage_channels[] = {64, 128, 256, 512};
    for (int stage = 0; stage < 4; ++stage) {
        const int out_c = stage_channels[stage];
        for (int block = 0; block < 2; ++block) {
            const int stride = (stage > 0 && block == 0) ? 2 : 1;
            x = basicBlock(ctx, x, shape, out_c, stride);
            shape = nn::Shape{out_c,
                              (shape.h + stride - 1) / stride,
                              (shape.w + stride - 1) / stride};
        }
    }

    x = g.emplace<nn::Pool>({x}, "gap", shape,
                            nn::PoolMode::GlobalAverage);
    g.emplace<nn::FullyConnected>({x}, "gaze_fc",
                                  nn::Shape{512, 1, 1}, kGazeOutputs,
                                  false, quant_bits, 599);
    return g;
}

} // namespace models
} // namespace eyecod
