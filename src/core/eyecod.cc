#include "core/eyecod.h"

#include "common/logging.h"
#include "flatcam/optical_interface.h"
#include "models/model_zoo.h"

namespace eyecod {
namespace core {

EyeCoDSystem::EyeCoDSystem(SystemConfig cfg)
    : cfg_(std::move(cfg)),
      pipe_(std::make_unique<eyetrack::PredictThenFocusPipeline>(
          cfg_.pipeline))
{
}

void
EyeCoDSystem::train(const dataset::SyntheticEyeRenderer &renderer,
                    int train_count)
{
    pipe_->trainGaze(renderer, train_count);
}

eyetrack::PredictThenFocusPipeline::FrameResult
EyeCoDSystem::processFrame(const Image &scene)
{
    return pipe_->processFrame(scene);
}

Result<GazeSample>
EyeCoDSystem::processFrameChecked(const Image &scene)
{
    const bool mis_sized =
        scene.height() != cfg_.pipeline.scene_size ||
        scene.width() != cfg_.pipeline.scene_size;
    // Run the frame through the pipeline unconditionally so the
    // degradation FSM and health counters advance exactly as on the
    // unchecked path; only the reporting differs. The by-reference
    // entry avoids copying the result (and its full-frame view) on
    // the serving hot path.
    const auto &r = pipe_->processFrameRef(scene);
    if (mis_sized)
        return Status::error(
            ErrorCode::ShapeMismatch,
            "scene %dx%d does not match configured %dx%d",
            scene.height(), scene.width(), cfg_.pipeline.scene_size,
            cfg_.pipeline.scene_size);
    if (r.health.frame_dropped)
        return Status::error(ErrorCode::FrameDropped,
                             "no usable frame (faults seen: %d)",
                             r.health.faults_seen);
    GazeSample sample;
    sample.gaze = r.gaze;
    sample.roi = r.roi;
    sample.roi_refreshed = r.roi_refreshed;
    sample.health = r.health;
    return sample;
}

void
EyeCoDSystem::reset()
{
    pipe_->reset();
    accel_health_ = AccelHealth{};
    // Baseline out warning history accumulated before this reset: the
    // warnLimited() counters are process-global, and a reset system's
    // health report must read like a fresh run's.
    warn_baseline_ = warnCounters();
}

namespace {

/**
 * Per-key delta of the process-global warn counters against a
 * baseline; keys whose counts did not move since the baseline are
 * dropped entirely.
 */
std::vector<WarnKeyCount>
warnCountersSince(const std::vector<WarnKeyCount> &baseline)
{
    std::vector<WarnKeyCount> now = warnCounters();
    std::vector<WarnKeyCount> delta;
    for (const WarnKeyCount &cur : now) {
        WarnKeyCount d = cur;
        for (const WarnKeyCount &base : baseline) {
            if (base.key == cur.key) {
                d.occurrences -= base.occurrences;
                d.suppressed -= base.suppressed;
                break;
            }
        }
        if (d.occurrences > 0 || d.suppressed > 0)
            delta.push_back(d);
    }
    return delta;
}

} // namespace

HealthReport
EyeCoDSystem::healthReport() const
{
    HealthReport report;
    report.stats = pipe_->healthStats();
    report.degraded_mode = pipe_->inDegradedMode();
    if (report.stats.frames > 0) {
        const double n = double(report.stats.frames);
        report.degraded_fraction =
            double(report.stats.degraded_frames) / n;
        report.drop_fraction =
            double(report.stats.dropped_frames) / n;
    }
    report.mean_recovery_latency_frames =
        report.stats.meanRecoveryLatency();
    report.accel = accel_health_;
    report.warnings = warnCountersSince(warn_baseline_);
    return report;
}

namespace {
constexpr uint32_t kSystemTag = 0x53595331; // "SYS1"
} // namespace

void
EyeCoDSystem::saveSnapshot(snap::SnapshotWriter &w) const
{
    w.tag(kSystemTag);
    pipe_->saveSnapshot(w);
    w.i64(accel_health_.frames);
    w.i64(accel_health_.lane_fault_frames);
    w.i64(accel_health_.stall_frames);
    w.i64(accel_health_.schedule_timeouts);
    w.i64(accel_health_.lane_fault_errors);
    w.i32(accel_health_.retired_lanes);
    w.i64(accel_health_.ecc.corrected);
    w.i64(accel_health_.ecc.detected_uncorrectable);
    w.i64(accel_health_.ecc.silent);
    w.i64(accel_health_.ecc.overhead_cycles);
    w.i32(int(accel_health_.last_error));
}

Status
EyeCoDSystem::restoreSnapshot(snap::SnapshotReader &r)
{
    Status fence = r.expectTag(kSystemTag);
    if (!fence.isOk())
        return fence;
    Status s = pipe_->restoreSnapshot(r);
    if (!s.isOk())
        return s;
    auto frames = r.i64();
    auto lane_fault_frames = r.i64();
    auto stall_frames = r.i64();
    auto schedule_timeouts = r.i64();
    auto lane_fault_errors = r.i64();
    auto retired_lanes = r.i32();
    auto ecc_corrected = r.i64();
    auto ecc_detected = r.i64();
    auto ecc_silent = r.i64();
    auto ecc_overhead = r.i64();
    auto last_error = r.i32();
    if (!last_error.ok())
        return last_error.status();
    if (last_error.value() < 0 ||
        last_error.value() > int(ErrorCode::VersionMismatch))
        return Status::error(ErrorCode::CorruptSnapshot,
                             "accel health error code %d out of range",
                             last_error.value());
    accel_health_.frames = frames.value();
    accel_health_.lane_fault_frames = lane_fault_frames.value();
    accel_health_.stall_frames = stall_frames.value();
    accel_health_.schedule_timeouts = schedule_timeouts.value();
    accel_health_.lane_fault_errors = lane_fault_errors.value();
    accel_health_.retired_lanes = retired_lanes.value();
    accel_health_.ecc.corrected = ecc_corrected.value();
    accel_health_.ecc.detected_uncorrectable = ecc_detected.value();
    accel_health_.ecc.silent = ecc_silent.value();
    accel_health_.ecc.overhead_cycles = ecc_overhead.value();
    accel_health_.last_error = ErrorCode(last_error.value());
    // Warn counters are process-global: re-baseline at restore so the
    // restored system's report starts clean, exactly like a fresh run.
    // detlint:allow(R12) re-derived at restore, never decoded from the stream.
    warn_baseline_ = warnCounters();
    return Status::ok();
}

accel::PerfReport
EyeCoDSystem::simulatePerformance() const
{
    const auto workloads = accel::buildPipelineWorkload(cfg_.workload);
    return accel::simulate(workloads, cfg_.hw, cfg_.energy);
}

Result<accel::PerfReport>
EyeCoDSystem::simulateFaultedPerformance(long frame)
{
    const auto workloads = accel::buildPipelineWorkload(cfg_.workload);
    const accel::HwFaultInjector injector(cfg_.hw_faults, cfg_.hw);
    Result<accel::PerfReport> r = accel::simulateFaulted(
        workloads, cfg_.hw, cfg_.energy, injector, frame);

    ++accel_health_.frames;
    accel_health_.retired_lanes = injector.retiredLaneCount();
    if (r.ok()) {
        const accel::PerfReport &p = r.value();
        if (p.stuck_lane_events > 0)
            ++accel_health_.lane_fault_frames;
        if (p.injected_stall_cycles > 0)
            ++accel_health_.stall_frames;
        accel_health_.ecc += p.ecc;
    } else {
        accel_health_.last_error = r.status().code();
        if (r.status().code() == ErrorCode::ScheduleTimeout)
            ++accel_health_.schedule_timeouts;
        else if (r.status().code() == ErrorCode::HwLaneFault)
            ++accel_health_.lane_fault_errors;
    }
    return r;
}

RuntimeProfile
EyeCoDSystem::runtimeProfile() const
{
    RuntimeProfile profile;
    profile.backend =
        nn::makeBackend(cfg_.nn_backend, cfg_.nn_threads)->name();

    const nn::Graph seg = models::buildRitNet(
        cfg_.workload.seg_input, cfg_.workload.seg_input,
        cfg_.workload.quant_bits);
    profile.segmentation = nn::ExecutionPlan(seg).stats();

    const nn::Graph gaze = models::buildFBNetC100(
        cfg_.workload.roi_height, cfg_.workload.roi_width,
        cfg_.workload.quant_bits);
    profile.gaze = nn::ExecutionPlan(gaze).stats();
    return profile;
}

long long
EyeCoDSystem::frameCommBytes() const
{
    const int sensor = cfg_.workload.sensor;
    if (!cfg_.optical_interface)
        return (long long)sensor * sensor; // raw 8-bit measurement
    // Sensing-processing interface: the mask computes the first
    // layer optically; the sensor transmits downsampled feature maps.
    flatcam::OpticalFirstLayer optical;
    return optical.featureBytes(sensor, sensor);
}

long long
EyeCoDSystem::lensFrameCommBytes() const
{
    const int scene = cfg_.workload.scene;
    return (long long)scene * scene;
}

long long
EyeCoDSystem::rawMeasurementBytes() const
{
    const int sensor = cfg_.workload.sensor;
    return (long long)sensor * sensor;
}

std::vector<ComparisonRow>
EyeCoDSystem::compareAgainstBaselines() const
{
    const auto workloads = accel::buildPipelineWorkload(cfg_.workload);
    double macs_per_frame = 0.0;
    for (const auto &m : workloads)
        macs_per_frame += m.macsPerFrame();

    std::vector<ComparisonRow> rows;
    const long long lens_bytes = lensFrameCommBytes();
    for (const auto &spec : platforms::baselinePlatforms()) {
        const auto p = platforms::evaluatePlatform(
            spec, macs_per_frame, lens_bytes);
        ComparisonRow row;
        row.name = p.name;
        row.fps = p.fps;
        row.system_fps = p.system_fps;
        row.fps_per_watt = p.fps_per_watt;
        rows.push_back(row);
    }

    // EyeCoD itself: simulated accelerator + attached-sensor link.
    const accel::PerfReport perf = simulatePerformance();
    const platforms::CommLink link = platforms::eyecodAttachedLink();
    ComparisonRow self;
    self.name = "EyeCoD";
    self.fps = perf.fps;
    self.system_fps =
        1.0 / (1.0 / perf.fps + link.latency(frameCommBytes()));
    self.fps_per_watt = perf.fps_per_watt;
    rows.push_back(self);

    // Normalize energy efficiency to EyeCoD = 1.0 (Fig. 14 y-axis).
    const double base = self.fps_per_watt;
    for (ComparisonRow &row : rows)
        row.norm_energy_eff = base > 0.0
            ? row.fps_per_watt / base : 0.0;
    return rows;
}

} // namespace core
} // namespace eyecod
