/**
 * @file
 * EyeCoD public API: the composed eye tracking system.
 *
 * An EyeCoDSystem bundles the two faces of the reproduction:
 *
 *  - the *functional* path — FlatCam sensing, Tikhonov
 *    reconstruction, predict-then-focus segmentation/ROI/gaze — which
 *    produces actual gaze vectors for actual (synthetic) eye images;
 *  - the *performance* path — the cycle-level accelerator simulator
 *    running the deployment workload (int8 RITNet + FBNet-C100 +
 *    reconstruction) — which produces throughput/energy numbers and
 *    the comparison against the Fig. 14 baseline platforms.
 *
 * Quickstart:
 * @code
 *   core::EyeCoDSystem sys{core::SystemConfig{}};
 *   dataset::SyntheticEyeRenderer eyes(
 *       {.image_size = sys.config().pipeline.scene_size});
 *   sys.train(eyes, 400);
 *   auto frame = sys.processFrame(eyes.sample(0).image);
 *   auto perf = sys.simulatePerformance();
 * @endcode
 */

#ifndef EYECOD_CORE_EYECOD_H
#define EYECOD_CORE_EYECOD_H

#include <memory>
#include <vector>

#include "accel/simulator.h"
#include "common/logging.h"
#include "eyetrack/pipeline.h"
#include "nn/runtime.h"
#include "platforms/platform.h"

namespace eyecod {
namespace core {

/** Whole-system configuration. */
struct SystemConfig
{
    /** Functional predict-then-focus pipeline. */
    eyetrack::PipelineConfig pipeline;
    /** Deployment workload fed to the accelerator simulator. */
    accel::PipelineWorkloadConfig workload;
    /** Accelerator hardware configuration (Tab. 1). */
    accel::HwConfig hw;
    /** Accelerator energy model (silicon-calibrated). */
    accel::EnergyModel energy;
    /**
     * Hardware fault model applied by simulateFaultedPerformance();
     * all-zero rates (the default) make the faulted path bitwise
     * identical to simulatePerformance().
     */
    accel::HwFaultConfig hw_faults;
    /**
     * Sensing-processing interface (Sec. 4.2): transmit first-layer
     * feature maps instead of raw measurements, reducing the
     * camera-processor traffic.
     */
    bool optical_interface = true;
    /**
     * CPU execution backend for the planned NN runtime (the
     * functional neural path; the simulated accelerator is
     * unaffected).
     */
    nn::BackendKind nn_backend = nn::BackendKind::Serial;
    /** Threaded backend concurrency; 0 = hardware concurrency. */
    int nn_threads = 0;
};

/**
 * Plan/arena accounting of the deployment graphs on the planned NN
 * runtime (see nn/runtime.h).
 */
struct RuntimeProfile
{
    std::string backend;          ///< Backend name in use.
    nn::PlanStats segmentation;   ///< RITNet at the workload's
                                  ///< seg_input resolution.
    nn::PlanStats gaze;           ///< FBNet-C100 at the ROI extent.
};

/**
 * Accelerator-side health counters accumulated across
 * simulateFaultedPerformance() calls.
 */
struct AccelHealth
{
    long long frames = 0;            ///< Faulted frames simulated.
    long long lane_fault_frames = 0; ///< Frames with stuck lanes.
    long long stall_frames = 0;      ///< Frames with injected stalls.
    long long schedule_timeouts = 0; ///< Watchdog trips (errors).
    long long lane_fault_errors = 0; ///< HwLaneFault failures.
    int retired_lanes = 0;           ///< Last-seen retired lane count.
    accel::EccCounters ecc;          ///< Accumulated ECC outcomes.
    ErrorCode last_error = ErrorCode::Ok; ///< Last typed failure.
};

/**
 * Fleet-level failover counters, filled in by the serving engine
 * (serve::ServingEngine::sessionHealth); all-zero for a standalone
 * EyeCoDSystem that serves no fleet.
 */
struct FleetFailoverHealth
{
    long long chip_failures = 0;     ///< Whole-chip outages seen.
    long long chip_rejoins = 0;      ///< Chips back in service.
    long long lanes_retired = 0;     ///< MAC lanes mapped out.
    long long redispatched_frames = 0; ///< Completions that survived
                                       ///  a chip failure.
    long long failover_drops = 0;    ///< Frames shed after retries
                                     ///  were exhausted.
    int degradation_tier = 0;        ///< Ladder position (0..4).
    long long tier_transitions = 0;  ///< Ladder moves, both ways.
};

/**
 * Aggregate serving-health report of the functional pipeline:
 * degraded-mode status, fault/recovery counters, and recovery
 * latency, accumulated since construction or the last reset().
 */
struct HealthReport
{
    /** Raw per-event counters (see eyetrack::HealthStats). */
    eyetrack::HealthStats stats;
    /** True while the pipeline is inside a degraded streak. */
    bool degraded_mode = false;
    /** Fraction of processed frames that were degraded. */
    double degraded_fraction = 0.0;
    /** Fraction of processed frames dropped outright. */
    double drop_fraction = 0.0;
    /** Mean degraded-streak length in frames. */
    double mean_recovery_latency_frames = 0.0;
    /** Accelerator-side fault counters (simulateFaultedPerformance). */
    AccelHealth accel;
    /** Fleet failover/degradation counters (serving engine only). */
    FleetFailoverHealth fleet;
    /**
     * Process-wide warnLimited() rate-limiter snapshot: per-key
     * occurrence and suppression counts, key-ordered. A nonzero
     * suppressed count means the logs undercount that warning.
     */
    std::vector<WarnKeyCount> warnings;
};

/**
 * One typed-error frame outcome: the gaze emitted for a successfully
 * served frame, plus the ROI bookkeeping the serving layer batches
 * on. Returned by processFrameChecked(); frames the pipeline could
 * not serve at all surface as a non-OK Status instead of sentinel
 * values.
 */
struct GazeSample
{
    dataset::GazeVec gaze{0, 0, 1}; ///< Finite by construction.
    Rect roi;                       ///< Crop the gaze stage consumed.
    bool roi_refreshed = false;     ///< Segmentation ran this frame.
    eyetrack::FrameHealth health;   ///< Per-frame degradation record.
};

/** One row of the Fig. 14 style cross-platform comparison. */
struct ComparisonRow
{
    std::string name;
    double fps = 0.0;        ///< Compute-only throughput.
    double system_fps = 0.0; ///< End-to-end incl. camera link.
    double fps_per_watt = 0.0;
    double norm_energy_eff = 0.0; ///< Normalized to EyeCoD = 1.0.
};

/**
 * The composed EyeCoD system.
 */
class EyeCoDSystem
{
  public:
    explicit EyeCoDSystem(SystemConfig cfg);

    /** Train the functional gaze stage on synthetic subjects. */
    void train(const dataset::SyntheticEyeRenderer &renderer,
               int train_count);

    /**
     * Run one frame through the functional pipeline. The returned
     * FrameResult carries a per-frame FrameHealth record; the call
     * never aborts on bad input and always emits a finite gaze.
     */
    eyetrack::PredictThenFocusPipeline::FrameResult processFrame(
        const Image &scene);

    /**
     * Typed-error frame entry for the serving layer. Runs the exact
     * same degradation state machine as processFrame() (health
     * counters, held state, and the ROI chain advance identically),
     * then reports the outcome as a Result instead of sentinel
     * values:
     *
     *  - a mis-sized scene returns ShapeMismatch;
     *  - a dropped frame (sensor fault / no usable image) returns
     *    FrameDropped — the caller decides whether to hold its own
     *    last gaze rather than receiving a silently held value;
     *  - everything else returns the emitted GazeSample (possibly
     *    degraded — inspect health).
     */
    [[nodiscard]] Result<GazeSample> processFrameChecked(const Image &scene);

    /**
     * Reset the functional pipeline's per-sequence state, the
     * accelerator health counters, and the health report's warning
     * view: warnLimited() counters accumulated before the reset are
     * baselined out, so a reset (or snapshot-restored) system's
     * healthReport() matches a fresh run instead of inheriting
     * process-wide warning history.
     */
    void reset();

    /** Aggregate health since construction or the last reset(). */
    HealthReport healthReport() const;

    /**
     * Serialize the serve-time state: the pipeline's per-sequence
     * state graph plus the accelerator health counters. Trained
     * estimators and configuration are construction inputs, not
     * snapshot payload.
     */
    void saveSnapshot(snap::SnapshotWriter &w) const;

    /**
     * Restore state saved by saveSnapshot() into a system built from
     * the same configuration. The warning baseline is re-captured at
     * restore time (warn counters are process-global, and the
     * restoring process has its own history).
     */
    [[nodiscard]] Status restoreSnapshot(snap::SnapshotReader &r);

    /** Simulate the accelerator on the deployment workload. */
    accel::PerfReport simulatePerformance() const;

    /**
     * Simulate the accelerator under the configured hardware fault
     * model (cfg.hw_faults) at @p frame. Outcomes — ECC counters,
     * stuck-lane/stall frames, watchdog timeouts, HwLaneFault
     * failures — accumulate into healthReport().accel. With all-zero
     * fault rates the report is bitwise identical to
     * simulatePerformance().
     */
    Result<accel::PerfReport> simulateFaultedPerformance(long frame);

    /**
     * Plan the deployment graphs on the configured NN backend and
     * report their arena/liveness statistics.
     */
    RuntimeProfile runtimeProfile() const;

    /**
     * Fig. 14: EyeCoD (simulated) against the baseline platforms on
     * the same per-frame workload. EyeCoD is the last row.
     */
    std::vector<ComparisonRow> compareAgainstBaselines() const;

    /** Camera-to-processor bytes per frame for this system. */
    long long frameCommBytes() const;

    /** Camera-to-processor bytes per frame for a lens baseline. */
    long long lensFrameCommBytes() const;

    /** Raw FlatCam measurement bytes (no sensing-processing
     *  interface). */
    long long rawMeasurementBytes() const;

    /** Configuration in use. */
    const SystemConfig &config() const { return cfg_; }

    /** Direct access to the functional pipeline. */
    eyetrack::PredictThenFocusPipeline &pipeline() { return *pipe_; }

    /**
     * Pooling statistics of the pipeline's per-frame buffer arena
     * (heap blocks, peak epoch bytes) for the memory benches.
     */
    const BufferArena::Stats &arenaStats() const
    {
        return pipe_->arena().stats();
    }

  private:
    // detlint:allow(R12) construction-time config; snapshots carry dynamic state.
    SystemConfig cfg_;
    std::unique_ptr<eyetrack::PredictThenFocusPipeline> pipe_;
    AccelHealth accel_health_;
    /**
     * warnLimited() counters at the last reset()/restore (the
     * counters are process-global; healthReport() reports the delta
     * since, so a reset system reads like a fresh one). Empty at
     * construction: a system built mid-process intentionally surfaces
     * pre-existing warning pressure until its first reset.
     */
    std::vector<WarnKeyCount> warn_baseline_;
};

} // namespace core
} // namespace eyecod

#endif // EYECOD_CORE_EYECOD_H
