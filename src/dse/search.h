/**
 * @file
 * Design-space search: enumerate a bounded lattice of HwConfig
 * candidates for the EyeCoD pipeline, estimate each with the
 * analytical model (never the cycle-level simulator), and emit the
 * FPS / energy-per-frame / SRAM-capacity Pareto front.
 *
 * Pruning keeps the sweep honest and cheap:
 *  - validateHwConfig + activation-fit feasibility rejects candidates
 *    the simulator itself would refuse or that cannot hold the
 *    pipeline's resident activations even fully partitioned;
 *  - monotone dominance skips candidates that a cheaper neighbor
 *    provably dominates: any weight buffer above the lattice minimum
 *    (capacity is dead weight — it buys no cycles, only SRAM and
 *    leakage), and any Act-GB capacity above the first one that runs
 *    the pipeline unpartitioned (more capacity cannot reduce cycles
 *    further, only add SRAM and leakage).
 *
 * The paper's Tab. 1 point is a lattice member and, with the shipped
 * default space, lands on the front (gated by bench_dse_pareto).
 */

#ifndef EYECOD_DSE_SEARCH_H
#define EYECOD_DSE_SEARCH_H

#include <string>
#include <vector>

#include "dse/estimate.h"

namespace eyecod {
namespace dse {

/** The candidate lattice; every axis is swept independently. */
struct SearchSpace
{
    std::vector<int> mac_lanes;
    std::vector<int> macs_per_lane;
    std::vector<long> act_gb_bytes;
    std::vector<int> act_gb_banks;
    std::vector<long> weight_buf_bytes;
    accel::PipelineWorkloadConfig workload;

    /**
     * The shipped default lattice: 3 x 2 x 5 x 3 x 2 = 180 corners
     * spanning quarter-to-double the paper's array and memories, with
     * the Tab. 1 point (128x8, 512 KB Act GBs, 4 banks, 64 KB weight
     * buffers) an interior member.
     */
    static SearchSpace defaultSpace();
};

/** One evaluated candidate. */
struct DesignPoint
{
    accel::HwConfig hw;
    Estimate est;
    bool on_front = false;
    bool is_paper = false; ///< Matches the default HwConfig.
};

/** Sweep outcome plus enumeration accounting. */
struct SearchResult
{
    std::vector<DesignPoint> points; ///< Feasible, evaluated.
    std::vector<size_t> front;       ///< Indices, FPS-descending.
    long long lattice_size = 0;
    long long evaluated = 0;
    long long pruned_infeasible = 0; ///< Invalid config / no fit.
    long long pruned_monotone = 0;   ///< Dominated by construction.
    int paper_index = -1; ///< Index into points, -1 if not swept.
    bool paper_on_front = false;
};

/**
 * True when @p a is at least as good as @p b on every objective
 * (FPS up, energy/frame down, total SRAM down) and strictly better
 * on at least one.
 */
bool dominates(const DesignPoint &a, const DesignPoint &b);

/** Sweep @p space and compute the Pareto front. */
[[nodiscard]] Result<SearchResult> searchParetoFront(
    const SearchSpace &space);

/**
 * Serialize a search result as deterministic JSON (one object per
 * point with the hw axes, objectives, and front membership, plus the
 * enumeration counters) for tools/dse and bench_dse_pareto.
 */
std::string searchResultJson(const SearchResult &result);

} // namespace dse
} // namespace eyecod

#endif // EYECOD_DSE_SEARCH_H
