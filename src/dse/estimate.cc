#include "dse/estimate.h"

#include <algorithm>
#include <cmath>

#include "accel/analytic.h"
#include "accel/dataflow.h"
#include "accel/partition.h"

namespace eyecod {
namespace dse {

using accel::ActivityCounts;
using accel::EnergyModel;
using accel::HwConfig;
using accel::LayerCost;
using accel::ModelWorkload;

namespace {

/**
 * Same workload validation as the simulator's checked entry, so the
 * estimator rejects exactly what simulateChecked rejects.
 */
Status
validateWorkloads(const std::vector<ModelWorkload> &workloads)
{
    if (workloads.empty())
        return Status::error(ErrorCode::InvalidArgument,
                             "estimate with no workloads");
    bool any_per_frame = false;
    for (const ModelWorkload &m : workloads) {
        if (m.period < 1)
            return Status::error(ErrorCode::InvalidArgument,
                                 "workload %s has period %d (< 1)",
                                 m.name.c_str(), m.period);
        if (m.layers.empty())
            return Status::error(ErrorCode::InvalidArgument,
                                 "workload %s has no layers",
                                 m.name.c_str());
        any_per_frame = any_per_frame || m.period == 1;
    }
    if (!any_per_frame)
        return Status::error(ErrorCode::InvalidArgument,
                             "pipeline needs at least one per-frame "
                             "workload");
    return Status::ok();
}

/** Amortized activity: 1/period per field, orchestrator discipline. */
ActivityCounts
scaleActivity(const ActivityCounts &a, int period)
{
    ActivityCounts s;
    s.mac_ops = a.mac_ops / period;
    s.act_gb_bytes = a.act_gb_bytes / period;
    s.buf_bytes = a.buf_bytes / period;
    s.weight_gb_bytes = a.weight_gb_bytes / period;
    s.dram_bytes = a.dram_bytes / period;
    s.cycles = a.cycles / period;
    return s;
}

/**
 * Partial time-multiplexing aggregates: the same accumulation, in
 * the same order, as accel::scheduleFrame's partial path — minus the
 * per-layer trace records and the donor-slot credit assignment,
 * which only exist for Fig. 7 rendering.
 */
ScheduleEstimate
estimatePartial(const std::vector<const ModelWorkload *> &per_frame,
                const std::vector<const ModelWorkload *> &periodic,
                const HwConfig &hw)
{
    ScheduleEstimate e;
    const double total_macs = double(hw.totalMacs());

    long long t = 0;
    long long ideal = 0;
    double donated = 0.0;
    for (const ModelWorkload *m : per_frame) {
        ActivityCounts model_activity;
        for (const nn::LayerWorkload &w : m->layers) {
            const LayerCost c =
                accel::costLayer(w, hw, hw.mac_lanes);
            const double util =
                double(c.ideal_macs) /
                (double(std::max(1LL, c.totalCycles())) *
                 total_macs);
            if (util < hw.partial_util_threshold &&
                c.totalCycles() > 0)
                donated += (1.0 - util) *
                           double(c.totalCycles()) * total_macs;
            t += c.totalCycles();
            ideal += c.ideal_macs;
            model_activity += c.activity;
        }
        e.activity += model_activity;
    }

    double needed = 0.0;
    long long periodic_ideal = 0;
    for (const ModelWorkload *m : periodic) {
        const int granted = std::max(1, hw.mac_lanes / 2);
        const LayerCost c =
            accel::costModel(m->layers, hw, granted);
        const double eff =
            double(c.ideal_macs) /
            (double(std::max(1LL, c.totalCycles())) * granted *
             hw.macs_per_lane);
        const double eff_clamped = std::clamp(eff, 0.05, 0.9);
        needed += double(c.ideal_macs) / m->period / eff_clamped;
        periodic_ideal += c.ideal_macs / m->period;
        e.activity += scaleActivity(c.activity, m->period);
    }

    const double hidden = std::min(donated, needed);
    e.seg_hidden_fraction = needed > 0.0 ? hidden / needed : 1.0;
    const long long extra =
        (long long)std::ceil((needed - hidden) / total_macs);
    e.frame_cycles = t + extra;
    e.peak_frame_cycles = e.frame_cycles;
    ideal += periodic_ideal;
    e.utilization = double(ideal) /
                    (double(std::max(1LL, e.frame_cycles)) *
                     total_macs);
    return e;
}

/** Time-multiplexing aggregates, exact replica of scheduleTimeMux. */
ScheduleEstimate
estimateTimeMux(const std::vector<const ModelWorkload *> &per_frame,
                const std::vector<const ModelWorkload *> &periodic,
                const HwConfig &hw)
{
    ScheduleEstimate e;
    long long t = 0;
    long long ideal = 0;
    for (const ModelWorkload *m : per_frame) {
        const LayerCost c =
            accel::costModel(m->layers, hw, hw.mac_lanes);
        t += c.totalCycles();
        e.activity += c.activity;
        ideal += c.ideal_macs;
    }
    long long worst_periodic_layer = 0;
    long long amortized_periodic = 0;
    for (const ModelWorkload *m : periodic) {
        const LayerCost c =
            accel::costModel(m->layers, hw, hw.mac_lanes);
        for (const nn::LayerWorkload &w : m->layers) {
            worst_periodic_layer = std::max(
                worst_periodic_layer,
                accel::costLayer(w, hw, hw.mac_lanes)
                    .totalCycles());
        }
        amortized_periodic += c.totalCycles() / m->period;
        t += c.totalCycles() / m->period;
        e.activity += scaleActivity(c.activity, m->period);
        ideal += c.ideal_macs / m->period;
    }
    e.frame_cycles = t;
    e.peak_frame_cycles = std::max(
        t, t - amortized_periodic + worst_periodic_layer);
    e.seg_hidden_fraction = 0.0;
    e.utilization = double(ideal) /
                    (double(std::max(1LL, e.frame_cycles)) *
                     double(hw.totalMacs()));
    return e;
}

/** Steady frame time of a static lane split s (periodic side). */
long long
concurrentFrameAt(
    const std::vector<const ModelWorkload *> &per_frame,
    const std::vector<const ModelWorkload *> &periodic,
    const HwConfig &hw, int s)
{
    long long pf = 0;
    for (const ModelWorkload *m : per_frame)
        pf += accel::costModel(m->layers, hw, hw.mac_lanes - s)
                  .totalCycles();
    long long pd = 0;
    for (const ModelWorkload *m : periodic)
        pd += accel::costModel(m->layers, hw, s).totalCycles() /
              m->period;
    return std::max(pf, pd);
}

/**
 * Concurrent-mode aggregates. The orchestrator scans every lane
 * split 1..mac_lanes-1; the estimator probes a coarse grid and
 * refines around the best probe. max(pf, pd) is near-unimodal in the
 * split, so the refined optimum is usually the true one — but not
 * always, which is exactly the estimation error the validation
 * harness measures.
 */
ScheduleEstimate
estimateConcurrent(
    const std::vector<const ModelWorkload *> &per_frame,
    const std::vector<const ModelWorkload *> &periodic,
    const HwConfig &hw)
{
    const int lanes = hw.mac_lanes;
    long long best_frame = -1;
    int best_s = 1;
    auto probe = [&](int s) {
        const long long frame =
            concurrentFrameAt(per_frame, periodic, hw, s);
        if (best_frame < 0 || frame < best_frame) {
            best_frame = frame;
            best_s = s;
        }
    };
    const int step = std::max(1, lanes / 16);
    for (int s = 1; s < lanes; s += step)
        probe(s);
    const int lo = std::max(1, best_s - step + 1);
    const int hi = std::min(lanes - 1, best_s + step - 1);
    for (int s = lo; s <= hi; ++s)
        probe(s);

    ScheduleEstimate e;
    long long t = 0;
    long long ideal = 0;
    for (const ModelWorkload *m : per_frame) {
        const LayerCost c =
            accel::costModel(m->layers, hw, lanes - best_s);
        t += c.totalCycles();
        e.activity += c.activity;
        ideal += c.ideal_macs;
    }
    for (const ModelWorkload *m : periodic) {
        const LayerCost c = accel::costModel(m->layers, hw, best_s);
        e.activity += scaleActivity(c.activity, m->period);
        ideal += c.ideal_macs / m->period;
    }
    e.frame_cycles = std::max(t, best_frame);
    e.peak_frame_cycles = e.frame_cycles;
    e.seg_hidden_fraction = 0.0;
    e.utilization = double(ideal) /
                    (double(std::max(1LL, e.frame_cycles)) *
                     double(hw.totalMacs()));
    return e;
}

} // namespace

EnergyModel
energyModelFor(const HwConfig &hw)
{
    // Reference point: the paper's Tab. 1 chip. At exactly that
    // configuration every ratio below is 1.0 and the returned model
    // is field-for-field identical to EnergyModel{} — the anchor the
    // validation harness and the serving cost model rely on.
    const HwConfig ref;
    EnergyModel m;
    m.clock_hz = hw.clock_hz;
    // The array's static cost splits between the lanes (row FIFO,
    // address generation, broadcast leaf per lane) and the MACs
    // themselves, half and half at the reference shape.
    const double lane_ratio =
        double(hw.mac_lanes) / double(ref.mac_lanes);
    const double mac_ratio =
        double(hw.totalMacs()) / double(ref.totalMacs());
    const double array_ratio = 0.5 * lane_ratio + 0.5 * mac_ratio;
    const double sram_ratio = double(hw.totalSramBytes()) /
                              double(ref.totalSramBytes());
    const double ports = double(hw.act_gb_banks) * hw.act_gb_count;
    const double ref_ports =
        double(ref.act_gb_banks) * ref.act_gb_count;
    // Each Act-GB bank carries fixed periphery (decoder, sense amps,
    // bank control) that leaks regardless of the bank's capacity; at
    // the reference banking it sits inside the SRAM share, and extra
    // banks pay for it on top.
    const double bank_periphery =
        0.25 * (ports / ref_ports - 1.0);
    // Leakage: a fixed fabric floor plus array and SRAM shares.
    m.leakage_w = 0.030 * (0.10 + 0.40 * array_ratio +
                           0.50 * sram_ratio + bank_periphery);
    // Clock tree: mostly the array's flops and lane control.
    m.clock_tree_w = 0.125 * (0.2 + 0.8 * array_ratio);
    return m;
}

Result<ScheduleEstimate>
estimateSchedule(const std::vector<ModelWorkload> &workloads,
                 const HwConfig &hw)
{
    const Status valid = accel::validateHwConfig(hw);
    if (!valid.isOk())
        return valid;
    const Status wl = validateWorkloads(workloads);
    if (!wl.isOk())
        return wl;

    std::vector<const ModelWorkload *> per_frame;
    std::vector<const ModelWorkload *> periodic;
    for (const ModelWorkload &m : workloads) {
        if (m.period <= 1)
            per_frame.push_back(&m);
        else
            periodic.push_back(&m);
    }

    switch (hw.orchestration) {
      case accel::OrchestrationMode::TimeMultiplex:
        return estimateTimeMux(per_frame, periodic, hw);
      case accel::OrchestrationMode::Concurrent:
        return estimateConcurrent(per_frame, periodic, hw);
      case accel::OrchestrationMode::PartialTimeMultiplex:
        return estimatePartial(per_frame, periodic, hw);
    }
    return Status::error(ErrorCode::InvalidArgument,
                         "unknown orchestration mode");
}

Result<Estimate>
estimateWorkloads(const std::vector<ModelWorkload> &workloads,
                  const HwConfig &hw, const EnergyModel &energy)
{
    Result<ScheduleEstimate> sched =
        estimateSchedule(workloads, hw);
    if (!sched.ok())
        return sched.status();
    const ScheduleEstimate &s = sched.value();

    Estimate e;
    e.utilization = s.utilization;
    e.seg_hidden_fraction = s.seg_hidden_fraction;
    e.sram_total_bytes = hw.totalSramBytes();

    // Activation memory + partition overhead: simulateCore's block,
    // reproduced term for term (shared analyzePartition /
    // partitionOverhead closed forms).
    const long long budget =
        (long long)hw.act_gb_bytes * hw.act_gb_count;
    long long resident = 0;
    long long unpart = 0;
    int factor = 1;
    bool fits = true;
    long long extra_act_bytes = 0;
    long long extra_weight_bytes = 0;
    long long overhead_cycles = 0;
    for (const ModelWorkload &m : workloads) {
        unpart = std::max(unpart,
                          accel::peakActivationBytes(m.layers));
        if (hw.feature_partition) {
            const accel::PartitionAnalysis a =
                accel::analyzePartition(m.layers, budget);
            resident = std::max(resident, a.partitioned_bytes);
            factor = std::max(factor, a.partition_factor);
            fits = fits && a.fits;
            if (a.partition_factor > 1) {
                const accel::PartitionOverhead o =
                    accel::partitionOverhead(m.layers,
                                             a.partition_factor);
                extra_act_bytes += o.act_reread_bytes / m.period;
                extra_weight_bytes +=
                    o.weight_restream_bytes / m.period;
                overhead_cycles +=
                    (long long)std::ceil(
                        double(o.act_reread_bytes) /
                        hw.actReadBandwidth()) /
                    m.period;
            }
        } else {
            resident =
                std::max(resident,
                         accel::peakActivationBytes(m.layers));
            fits = fits && resident <= budget;
        }
    }
    e.act_mem_bytes = resident;
    e.act_mem_unpartitioned = unpart;
    e.partition_factor = factor;
    e.act_mem_fits = fits;

    e.partition_overhead_cycles = overhead_cycles;
    e.frame_cycles = s.frame_cycles + overhead_cycles;
    e.peak_frame_cycles = s.peak_frame_cycles + overhead_cycles;
    e.frame_ms = double(e.frame_cycles) / hw.clock_hz * 1e3;
    e.fps = hw.clock_hz / double(std::max(1LL, e.frame_cycles));
    e.fps_peak =
        hw.clock_hz / double(std::max(1LL, e.peak_frame_cycles));
    if (overhead_cycles > 0)
        e.utilization *= double(s.frame_cycles) /
                         double(std::max(1LL, e.frame_cycles));

    e.activity = s.activity;
    e.activity.act_gb_bytes += extra_act_bytes;
    e.activity.weight_gb_bytes += extra_weight_bytes;
    e.activity.buf_bytes += extra_weight_bytes;
    e.activity.cycles = e.frame_cycles;
    e.energy_per_frame_j = energy.energyJoules(e.activity);
    e.power_w = energy.averagePowerWatts(e.activity);

    // Same watchdog contract as simulateChecked, so a sweep never
    // accepts a candidate the simulator would reject as timed out.
    if (hw.watchdog_cycle_budget > 0 &&
        e.frame_cycles > hw.watchdog_cycle_budget)
        return Status::error(
            ErrorCode::ScheduleTimeout,
            "estimated frame of %lld cycles exceeds the watchdog "
            "budget of %lld",
            e.frame_cycles, hw.watchdog_cycle_budget);
    return e;
}

Result<Estimate>
estimatePipeline(const accel::PipelineWorkloadConfig &workload,
                 const HwConfig &hw, const EnergyModel &energy)
{
    return estimateWorkloads(accel::buildPipelineWorkload(workload),
                             hw, energy);
}

} // namespace dse
} // namespace eyecod
