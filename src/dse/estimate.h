/**
 * @file
 * Analytical resource / latency / energy estimators for the
 * design-space explorer (ROADMAP item 2, in the style of AutoSA's
 * est_resource/est_latency and hls4ml's per-layer objective
 * estimators).
 *
 * Given an accel::HwConfig candidate and a workload set, the
 * estimator predicts cycles/frame, FPS, SRAM footprint, and J/frame
 * WITHOUT running the cycle-level simulator: it reuses the
 * simulator's own per-layer closed forms (accel/dataflow.h,
 * accel/analytic.h) and replicates the orchestrator's aggregate
 * arithmetic, but skips everything a design-space sweep does not
 * need — per-layer trace construction, donor-slot credit
 * assignment, and (for the Concurrent mode) the exhaustive lane
 * split scan, which it replaces with a coarse-to-fine search.
 *
 * Accuracy contract (gated by dse/validate.h and bench_dse_pareto):
 * for the PartialTimeMultiplex and TimeMultiplex orchestrations the
 * estimate is exact — bit-identical frame cycles and energy to
 * accel::simulateChecked — and in particular the paper's 128x8
 * configuration is pinned exactly. Concurrent mode is approximate
 * (the coarse split search may pick a slightly worse split) and is
 * covered by the <= 10% latency / <= 15% energy validation gates.
 */

#ifndef EYECOD_DSE_ESTIMATE_H
#define EYECOD_DSE_ESTIMATE_H

#include <vector>

#include "accel/energy.h"
#include "accel/simulator.h"
#include "accel/workload.h"
#include "common/status.h"

namespace eyecod {
namespace dse {

/** Frame-schedule aggregates, predicted without building a trace. */
struct ScheduleEstimate
{
    long long frame_cycles = 0;      ///< Steady-state frame.
    long long peak_frame_cycles = 0; ///< Worst (seg-boundary) frame.
    double utilization = 0.0;        ///< Overall MAC utilization.
    double seg_hidden_fraction = 0.0;
    accel::ActivityCounts activity;  ///< Amortized per-frame traffic.
};

/** Full design-point estimate for one workload set on one config. */
struct Estimate
{
    // --- Latency / throughput ---
    long long frame_cycles = 0; ///< Incl. partition overhead.
    long long peak_frame_cycles = 0;
    long long partition_overhead_cycles = 0;
    double fps = 0.0;
    double fps_peak = 0.0;
    double frame_ms = 0.0;
    double utilization = 0.0;
    double seg_hidden_fraction = 0.0;

    // --- Resources ---
    long long act_mem_bytes = 0; ///< Resident activations.
    long long act_mem_unpartitioned = 0;
    int partition_factor = 1;
    bool act_mem_fits = false;
    long long sram_total_bytes = 0; ///< Provisioned on-chip SRAM.

    // --- Energy ---
    accel::ActivityCounts activity;
    double energy_per_frame_j = 0.0;
    double power_w = 0.0;
};

/**
 * Candidate-scaled energy model: leakage and clock-tree power grow
 * with the provisioned lane and MAC counts, SRAM capacity, and
 * Act-GB banking of the candidate instead of staying pinned at the
 * paper chip's constants. Anchored so the paper's Tab. 1 configuration reproduces
 * accel::EnergyModel{} exactly (bitwise — the validation harness and
 * the serving cost model depend on that identity). Pass the result
 * to BOTH the estimator and the simulator when comparing candidates,
 * so the sweep charts genuine provisioning tradeoffs.
 */
accel::EnergyModel energyModelFor(const accel::HwConfig &hw);

/**
 * Predict the frame-schedule aggregates of accel::scheduleFrame for
 * @p workloads on @p hw. Exact (bit-identical to the orchestrator)
 * for PartialTimeMultiplex and TimeMultiplex; approximate for
 * Concurrent. Same typed-error contract as scheduleFrameChecked.
 */
[[nodiscard]] Result<ScheduleEstimate> estimateSchedule(
    const std::vector<accel::ModelWorkload> &workloads,
    const accel::HwConfig &hw);

/**
 * Full design-point estimate: schedule aggregates plus activation
 * memory (partition analysis + stripe overhead, mirroring
 * simulateCore) and the energy of the predicted activity under
 * @p energy. Compare against accel::simulateChecked with the same
 * energy model.
 */
[[nodiscard]] Result<Estimate> estimateWorkloads(
    const std::vector<accel::ModelWorkload> &workloads,
    const accel::HwConfig &hw, const accel::EnergyModel &energy);

/**
 * Convenience wrapper: assemble the predict-then-focus pipeline
 * workload for @p workload and estimate it on @p hw.
 */
[[nodiscard]] Result<Estimate> estimatePipeline(
    const accel::PipelineWorkloadConfig &workload,
    const accel::HwConfig &hw, const accel::EnergyModel &energy);

} // namespace dse
} // namespace eyecod

#endif // EYECOD_DSE_ESTIMATE_H
