/**
 * @file
 * Estimator validation harness: sweeps the analytical estimator
 * against the cycle-level simulator across the model zoo, the full
 * pipeline, all three orchestration modes, and off-nominal hardware
 * variants, and gates the relative error (<= 10% latency, <= 15%
 * energy). The paper's 128x8 configuration is additionally pinned
 * bit-exact — the estimator replicates the orchestrator's arithmetic
 * for that path, so any drift is a refactoring bug, not model error.
 */

#ifndef EYECOD_DSE_VALIDATE_H
#define EYECOD_DSE_VALIDATE_H

#include <string>
#include <vector>

#include "dse/estimate.h"

namespace eyecod {
namespace dse {

/** Validation gates (relative error, estimator vs simulator). */
constexpr double kLatencyErrorGate = 0.10;
constexpr double kEnergyErrorGate = 0.15;

/** One estimator-vs-simulator comparison. */
struct ValidationCase
{
    std::string name;          ///< Stable case identifier.
    long long est_frame_cycles = 0;
    long long sim_frame_cycles = 0;
    double est_energy_j = 0.0;
    double sim_energy_j = 0.0;
    double latency_rel_err = 0.0;
    double energy_rel_err = 0.0;
    bool exact = false; ///< Bit-identical cycles AND energy.
};

/** Sweep outcome; passed() is the bench/CI gate. */
struct ValidationReport
{
    std::vector<ValidationCase> cases;
    double max_latency_rel_err = 0.0;
    double max_energy_rel_err = 0.0;
    /** The paper-config pipeline case is bit-exact. */
    bool paper_exact = false;

    bool
    passed() const
    {
        return paper_exact &&
               max_latency_rel_err <= kLatencyErrorGate &&
               max_energy_rel_err <= kEnergyErrorGate;
    }
};

/**
 * Run the full validation sweep: the paper pipeline (exact-pinned),
 * the pipeline under every orchestration mode, each zoo model as a
 * standalone per-frame workload at its deployment resolution, and a
 * set of off-nominal hardware variants (narrow array, wide-short
 * array, reduced banking, optimizations disabled, capacity-starved
 * Act GBs that force feature partitioning). Both sides of every
 * comparison use energyModelFor(hw).
 */
[[nodiscard]] Result<ValidationReport> runValidationSweep();

} // namespace dse
} // namespace eyecod

#endif // EYECOD_DSE_VALIDATE_H
