#include "dse/search.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "accel/partition.h"

namespace eyecod {
namespace dse {

namespace {

/** Per-Act-GB-capacity feasibility, compute-dimension independent. */
struct CapacityFit
{
    long act_gb_bytes = 0;
    bool fits = false;
    int partition_factor = 1;
};

/**
 * The activation-fit of a capacity depends only on the workloads and
 * the total Act-GB budget, never on the compute dimensions — analyze
 * each capacity once up front instead of once per lattice corner.
 */
std::vector<CapacityFit>
analyzeCapacities(const std::vector<accel::ModelWorkload> &workloads,
                  const SearchSpace &space)
{
    std::vector<CapacityFit> fits;
    const accel::HwConfig ref;
    for (long bytes : space.act_gb_bytes) {
        CapacityFit f;
        f.act_gb_bytes = bytes;
        const long long budget = (long long)bytes * ref.act_gb_count;
        f.fits = true;
        for (const accel::ModelWorkload &m : workloads) {
            const accel::PartitionAnalysis a =
                accel::analyzePartition(m.layers, budget);
            f.fits = f.fits && a.fits;
            f.partition_factor =
                std::max(f.partition_factor, a.partition_factor);
        }
        fits.push_back(f);
    }
    std::sort(fits.begin(), fits.end(),
              [](const CapacityFit &a, const CapacityFit &b) {
                  return a.act_gb_bytes < b.act_gb_bytes;
              });
    return fits;
}

bool
isPaperConfig(const accel::HwConfig &hw)
{
    const accel::HwConfig ref;
    return hw.mac_lanes == ref.mac_lanes &&
           hw.macs_per_lane == ref.macs_per_lane &&
           hw.act_gb_bytes == ref.act_gb_bytes &&
           hw.act_gb_banks == ref.act_gb_banks &&
           hw.weight_buf_bytes == ref.weight_buf_bytes;
}

void appendf(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

} // namespace

SearchSpace
SearchSpace::defaultSpace()
{
    SearchSpace s;
    s.mac_lanes = {64, 128, 256};
    s.macs_per_lane = {4, 8};
    s.act_gb_bytes = {128 * 1024, 256 * 1024, 512 * 1024,
                      1024 * 1024, 2048 * 1024};
    s.act_gb_banks = {2, 4, 8};
    s.weight_buf_bytes = {64 * 1024, 128 * 1024};
    return s;
}

bool
dominates(const DesignPoint &a, const DesignPoint &b)
{
    const bool no_worse =
        a.est.fps >= b.est.fps &&
        a.est.energy_per_frame_j <= b.est.energy_per_frame_j &&
        a.est.sram_total_bytes <= b.est.sram_total_bytes;
    const bool strictly_better =
        a.est.fps > b.est.fps ||
        a.est.energy_per_frame_j < b.est.energy_per_frame_j ||
        a.est.sram_total_bytes < b.est.sram_total_bytes;
    return no_worse && strictly_better;
}

Result<SearchResult>
searchParetoFront(const SearchSpace &space)
{
    if (space.mac_lanes.empty() || space.macs_per_lane.empty() ||
        space.act_gb_bytes.empty() || space.act_gb_banks.empty() ||
        space.weight_buf_bytes.empty())
        return Status::error(ErrorCode::InvalidArgument,
                             "search space has an empty axis");

    const std::vector<accel::ModelWorkload> workloads =
        accel::buildPipelineWorkload(space.workload);

    SearchResult r;
    r.lattice_size = (long long)space.mac_lanes.size() *
                     (long long)space.macs_per_lane.size() *
                     (long long)space.act_gb_bytes.size() *
                     (long long)space.act_gb_banks.size() *
                     (long long)space.weight_buf_bytes.size();

    const std::vector<CapacityFit> capacities =
        analyzeCapacities(workloads, space);
    // Monotone rule 1: weight-buffer capacity buys no cycles in the
    // dataflow model — only SRAM and leakage — so only the lattice
    // minimum can be Pareto-optimal.
    const long min_weight_buf = *std::min_element(
        space.weight_buf_bytes.begin(), space.weight_buf_bytes.end());
    const long long pruned_weight_bufs =
        (long long)space.weight_buf_bytes.size() - 1;

    for (int lanes : space.mac_lanes) {
        for (int macs : space.macs_per_lane) {
            for (int banks : space.act_gb_banks) {
                // Monotone rule 2: walk capacities smallest-first;
                // past the first unpartitioned (P == 1) fit, extra
                // capacity cannot reduce cycles — prune the rest.
                bool past_unpartitioned = false;
                for (const CapacityFit &cap : capacities) {
                    if (!cap.fits) {
                        r.pruned_infeasible +=
                            1 + pruned_weight_bufs;
                        continue;
                    }
                    if (past_unpartitioned) {
                        r.pruned_monotone += 1 + pruned_weight_bufs;
                        continue;
                    }
                    if (cap.partition_factor == 1)
                        past_unpartitioned = true;

                    accel::HwConfig hw;
                    hw.mac_lanes = lanes;
                    hw.macs_per_lane = macs;
                    hw.act_gb_banks = banks;
                    hw.act_gb_bytes = cap.act_gb_bytes;
                    hw.weight_buf_bytes = min_weight_buf;
                    r.pruned_monotone += pruned_weight_bufs;

                    if (!accel::validateHwConfig(hw).isOk()) {
                        r.pruned_infeasible += 1;
                        continue;
                    }
                    const accel::EnergyModel energy =
                        energyModelFor(hw);
                    Result<Estimate> est =
                        estimateWorkloads(workloads, hw, energy);
                    if (!est.ok()) {
                        r.pruned_infeasible += 1;
                        continue;
                    }
                    r.evaluated += 1;
                    DesignPoint p;
                    p.hw = hw;
                    p.est = est.take();
                    p.is_paper = isPaperConfig(hw);
                    if (p.is_paper)
                        r.paper_index = int(r.points.size());
                    r.points.push_back(std::move(p));
                }
            }
        }
    }

    // Pareto classification: quadratic scan is fine at this scale.
    for (size_t i = 0; i < r.points.size(); ++i) {
        bool dominated = false;
        for (size_t j = 0; j < r.points.size() && !dominated; ++j)
            dominated = j != i && dominates(r.points[j], r.points[i]);
        r.points[i].on_front = !dominated;
        if (!dominated)
            r.front.push_back(i);
    }
    std::sort(r.front.begin(), r.front.end(),
              [&r](size_t a, size_t b) {
                  if (r.points[a].est.fps != r.points[b].est.fps)
                      return r.points[a].est.fps >
                             r.points[b].est.fps;
                  return a < b;
              });
    r.paper_on_front = r.paper_index >= 0 &&
                       r.points[size_t(r.paper_index)].on_front;
    return r;
}

std::string
searchResultJson(const SearchResult &result)
{
    std::string out;
    out += "{\n  \"counters\": {\n";
    appendf(out, "    \"lattice_size\": %lld,\n",
            result.lattice_size);
    appendf(out, "    \"evaluated\": %lld,\n", result.evaluated);
    appendf(out, "    \"pruned_infeasible\": %lld,\n",
            result.pruned_infeasible);
    appendf(out, "    \"pruned_monotone\": %lld,\n",
            result.pruned_monotone);
    appendf(out, "    \"front_size\": %zu,\n", result.front.size());
    appendf(out, "    \"paper_index\": %d,\n", result.paper_index);
    appendf(out, "    \"paper_on_front\": %s\n",
            result.paper_on_front ? "true" : "false");
    out += "  },\n  \"points\": [\n";
    for (size_t i = 0; i < result.points.size(); ++i) {
        const DesignPoint &p = result.points[i];
        out += "    {";
        appendf(out, "\"mac_lanes\": %d, ", p.hw.mac_lanes);
        appendf(out, "\"macs_per_lane\": %d, ", p.hw.macs_per_lane);
        appendf(out, "\"act_gb_kib\": %ld, ",
                p.hw.act_gb_bytes / 1024);
        appendf(out, "\"act_gb_banks\": %d, ", p.hw.act_gb_banks);
        appendf(out, "\"weight_buf_kib\": %ld, ",
                p.hw.weight_buf_bytes / 1024);
        appendf(out, "\"fps\": %.17g, ", p.est.fps);
        appendf(out, "\"energy_per_frame_j\": %.17g, ",
                p.est.energy_per_frame_j);
        appendf(out, "\"sram_total_bytes\": %lld, ",
                p.est.sram_total_bytes);
        appendf(out, "\"partition_factor\": %d, ",
                p.est.partition_factor);
        appendf(out, "\"on_front\": %s, ",
                p.on_front ? "true" : "false");
        appendf(out, "\"is_paper\": %s}",
                p.is_paper ? "true" : "false");
        out += i + 1 < result.points.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

} // namespace dse
} // namespace eyecod
