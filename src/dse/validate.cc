#include "dse/validate.h"

#include <algorithm>
#include <cmath>

#include "accel/simulator.h"
#include "models/model_zoo.h"

namespace eyecod {
namespace dse {

namespace {

double
relErr(double est, double sim)
{
    const double denom = std::max(std::abs(sim), 1e-30);
    return std::abs(est - sim) / denom;
}

/** Run one comparison and fold it into the report. */
Status
runCase(ValidationReport &report, const std::string &name,
        const std::vector<accel::ModelWorkload> &workloads,
        const accel::HwConfig &hw)
{
    const accel::EnergyModel energy = energyModelFor(hw);
    Result<accel::PerfReport> sim =
        accel::simulateChecked(workloads, hw, energy);
    if (!sim.ok())
        return sim.status();
    Result<Estimate> est = estimateWorkloads(workloads, hw, energy);
    if (!est.ok())
        return est.status();

    ValidationCase c;
    c.name = name;
    c.est_frame_cycles = est.value().frame_cycles;
    c.sim_frame_cycles = sim.value().frame_cycles;
    c.est_energy_j = est.value().energy_per_frame_j;
    c.sim_energy_j = sim.value().energy_per_frame_j;
    c.latency_rel_err = relErr(double(c.est_frame_cycles),
                               double(c.sim_frame_cycles));
    c.energy_rel_err = relErr(c.est_energy_j, c.sim_energy_j);
    c.exact = c.est_frame_cycles == c.sim_frame_cycles &&
              c.est_energy_j == c.sim_energy_j;
    report.max_latency_rel_err =
        std::max(report.max_latency_rel_err, c.latency_rel_err);
    report.max_energy_rel_err =
        std::max(report.max_energy_rel_err, c.energy_rel_err);
    report.cases.push_back(std::move(c));
    return Status::ok();
}

} // namespace

Result<ValidationReport>
runValidationSweep()
{
    ValidationReport report;
    const accel::PipelineWorkloadConfig pipeline_cfg;
    const std::vector<accel::ModelWorkload> pipeline =
        accel::buildPipelineWorkload(pipeline_cfg);

    // 1. The paper's Tab. 1 configuration — pinned bit-exact.
    {
        const accel::HwConfig hw;
        Status s = runCase(report, "pipeline/paper-128x8",
                           pipeline, hw);
        if (!s.isOk())
            return s;
        report.paper_exact = report.cases.back().exact;
    }

    // 2. The pipeline under the other orchestration modes.
    {
        accel::HwConfig hw;
        hw.orchestration = accel::OrchestrationMode::TimeMultiplex;
        Status s = runCase(report, "pipeline/timemux", pipeline, hw);
        if (!s.isOk())
            return s;
        hw.orchestration = accel::OrchestrationMode::Concurrent;
        s = runCase(report, "pipeline/concurrent", pipeline, hw);
        if (!s.isOk())
            return s;
    }

    // 3. Every zoo model standalone, at its deployment resolution.
    for (const models::ZooEntry &entry : models::modelZoo()) {
        const nn::Graph graph =
            entry.build(entry.deploy_height, entry.deploy_width, 8);
        std::vector<accel::ModelWorkload> workloads;
        workloads.push_back(accel::workloadFromGraph(graph, 1));
        const accel::HwConfig hw;
        Status s = runCase(report, "zoo/" + entry.name, workloads,
                           hw);
        if (!s.isOk())
            return s;
    }

    // 4. Off-nominal hardware variants of the pipeline.
    struct Variant
    {
        const char *name;
        void (*mutate)(accel::HwConfig &);
    };
    const Variant variants[] = {
        {"hw/narrow-64x8",
         [](accel::HwConfig &hw) { hw.mac_lanes = 64; }},
        {"hw/wide-256x4",
         [](accel::HwConfig &hw) {
             hw.mac_lanes = 256;
             hw.macs_per_lane = 4;
         }},
        {"hw/banks-2-no-swpr",
         [](accel::HwConfig &hw) {
             hw.act_gb_banks = 2;
             hw.swpr_input_buffer = false;
         }},
        {"hw/no-depthwise-opt",
         [](accel::HwConfig &hw) {
             hw.depthwise_optimization = false;
         }},
        {"hw/act-gb-128k-partitioned",
         [](accel::HwConfig &hw) {
             hw.act_gb_bytes = 128 * 1024;
         }},
        {"hw/concurrent-64x8",
         [](accel::HwConfig &hw) {
             hw.mac_lanes = 64;
             hw.orchestration =
                 accel::OrchestrationMode::Concurrent;
         }},
    };
    for (const Variant &v : variants) {
        accel::HwConfig hw;
        v.mutate(hw);
        Status s = runCase(report, v.name, pipeline, hw);
        if (!s.isOk())
            return s;
    }

    return report;
}

} // namespace dse
} // namespace eyecod
