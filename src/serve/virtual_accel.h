/**
 * @file
 * Virtual accelerator instances for multi-session serving.
 *
 * The cycle-level simulator in src/accel models ONE chip running ONE
 * user's predict-then-focus workload under partial time-multiplexing
 * (Sec. 5.1). Serving M sessions on K < M physical chips
 * time-multiplexes that schedule across users; this module lifts the
 * simulator's per-frame costs into a fleet-level timing model:
 *
 *  - a ServiceModel derived once per configuration from
 *    accel::scheduleFrameChecked(): the steady-state (recon + gaze)
 *    frame cost and the peak refresh-frame cost (the seg-boundary
 *    frame of Fig. 7), converted from cycles to microseconds at the
 *    configured clock;
 *  - a VirtualAccelPool of K chip instances, each a busy-until
 *    horizon in virtual time. A batch of frames dispatched to an
 *    idle chip occupies it for the batch's service time.
 *
 * Cross-session batching amortizes the weight-resident share of a
 * frame: consecutive frames of the *same stage* reuse the weights
 * already staged in the double-buffered weight GB, so a batch of B
 * frames costs (1 - f) * sum(cost) + f * max(cost), where f is the
 * amortizable fraction. f defaults to the weight-traffic share the
 * dataflow model attributes to a steady frame; it is configurable
 * for what-if sweeps.
 *
 * Everything runs in virtual microseconds — no wall clock — so a
 * serving run is bit-for-bit reproducible at any scheduler thread
 * count.
 */

#ifndef EYECOD_SERVE_VIRTUAL_ACCEL_H
#define EYECOD_SERVE_VIRTUAL_ACCEL_H

#include <vector>

#include "accel/hw_config.h"
#include "accel/workload.h"
#include "common/status.h"

namespace eyecod {
namespace serve {

/** Per-frame service costs of one chip, derived from the simulator. */
struct ServiceModel
{
    /** Steady-state frame (reconstruction + gaze), microseconds. */
    double gaze_frame_us = 0.0;
    /** Peak refresh frame (segmentation boundary), microseconds. */
    double seg_frame_us = 0.0;
    /** Amortized frame cost incl. the 1/N segmentation share. */
    double amortized_frame_us = 0.0;
    /** Single-chip steady throughput, frames per second. */
    double chip_fps = 0.0;
};

/**
 * Derive the service model for one chip configuration by scheduling
 * the pipeline workloads on the cycle-level orchestrator. Returns
 * typed errors for malformed hardware configurations or workloads
 * (same contract as accel::scheduleFrameChecked).
 */
Result<ServiceModel> deriveServiceModel(
    const accel::PipelineWorkloadConfig &workload,
    const accel::HwConfig &hw);

/**
 * K virtual chip instances tracked as busy-until horizons in virtual
 * time, with batched-dispatch cost accounting.
 */
class VirtualAccelPool
{
  public:
    /**
     * @param chips number of virtual accelerator instances (>= 1).
     * @param model per-frame service costs.
     * @param batch_amortized_fraction share of a frame's cost
     *        amortized across a batch (weight staging); in [0, 1).
     */
    VirtualAccelPool(int chips, const ServiceModel &model,
                     double batch_amortized_fraction);

    /** Number of virtual chips. */
    int chips() const { return int(busy_until_us_.size()); }

    /** Service model in use. */
    const ServiceModel &model() const { return model_; }

    /**
     * Lowest-index chip idle at @p now_us (busy horizon has passed),
     * or -1 when every chip is still busy.
     */
    int idleChip(long long now_us) const;

    /**
     * Service time of a batch with the given per-frame costs,
     * microseconds: (1 - f) * sum + f * max.
     */
    double batchServiceUs(const std::vector<double> &costs_us) const;

    /**
     * Occupy @p chip from @p now_us for @p service_us. The chip must
     * be idle at @p now_us. Returns the completion timestamp.
     */
    long long dispatch(int chip, long long now_us, double service_us);

    /** Busy horizon of @p chip. */
    long long busyUntil(int chip) const
    {
        return busy_until_us_[size_t(chip)];
    }

    /** True when every chip is idle at @p now_us. */
    bool allIdle(long long now_us) const;

    /** Total busy microseconds accumulated across all chips. */
    double totalBusyUs() const { return total_busy_us_; }

  private:
    ServiceModel model_;
    double batch_fraction_;
    std::vector<long long> busy_until_us_;
    double total_busy_us_ = 0.0;
};

} // namespace serve
} // namespace eyecod

#endif // EYECOD_SERVE_VIRTUAL_ACCEL_H
