/**
 * @file
 * Virtual accelerator instances for multi-session serving.
 *
 * The cycle-level simulator in src/accel models ONE chip running ONE
 * user's predict-then-focus workload under partial time-multiplexing
 * (Sec. 5.1). Serving M sessions on K < M physical chips
 * time-multiplexes that schedule across users; this module lifts the
 * simulator's per-frame costs into a fleet-level timing model:
 *
 *  - a ServiceModel derived once per configuration from
 *    accel::scheduleFrameChecked(): the steady-state (recon + gaze)
 *    frame cost and the peak refresh-frame cost (the seg-boundary
 *    frame of Fig. 7), converted from cycles to microseconds at the
 *    configured clock;
 *  - a VirtualAccelPool of K chip instances, each a busy-until
 *    horizon in virtual time. A batch of frames dispatched to an
 *    idle chip occupies it for the batch's service time.
 *
 * Cross-session batching amortizes the weight-resident share of a
 * frame: consecutive frames of the *same stage* reuse the weights
 * already staged in the double-buffered weight GB, so a batch of B
 * frames costs (1 - f) * sum(cost) + f * max(cost), where f is the
 * amortizable fraction. f defaults to the weight-traffic share the
 * dataflow model attributes to a steady frame; it is configurable
 * for what-if sweeps.
 *
 * Chips are not assumed healthy forever. A pool can carry a scripted
 * fault schedule — whole-chip outages (with later rejoin) and BIST
 * lane retirements — applied in virtual time. A retired-lane chip
 * stays in the pool with a *degraded* ServiceModel re-derived from
 * accel::retireLanes() + the cycle-level scheduler, so its frames
 * genuinely bill slower; a failed chip leaves the pool until its
 * rejoin event and the engine re-dispatches whatever it was running.
 * Schedules come either scripted or generated from the PR-3
 * accel::HwFaultInjector seeded fault model (makeChipFaultSchedule),
 * keeping serve-time chaos and simulator-time faults on one seed
 * discipline.
 *
 * Everything runs in virtual microseconds — no wall clock — so a
 * serving run is bit-for-bit reproducible at any scheduler thread
 * count.
 */

#ifndef EYECOD_SERVE_VIRTUAL_ACCEL_H
#define EYECOD_SERVE_VIRTUAL_ACCEL_H

#include <map>
#include <vector>

#include "accel/hw_config.h"
#include "accel/hw_faults.h"
#include "accel/workload.h"
#include "common/snapshot.h"
#include "common/status.h"

namespace eyecod {
namespace serve {

/** Per-frame service costs of one chip, derived from the simulator. */
struct ServiceModel
{
    /** Steady-state frame (reconstruction + gaze), microseconds. */
    double gaze_frame_us = 0.0;
    /** Peak refresh frame (segmentation boundary), microseconds. */
    double seg_frame_us = 0.0;
    /** Amortized frame cost incl. the 1/N segmentation share. */
    double amortized_frame_us = 0.0;
    /** Single-chip steady throughput, frames per second. */
    double chip_fps = 0.0;
};

/**
 * Derive the service model for one chip configuration by scheduling
 * the pipeline workloads on the cycle-level orchestrator. Returns
 * typed errors for malformed hardware configurations or workloads
 * (same contract as accel::scheduleFrameChecked).
 */
Result<ServiceModel> deriveServiceModel(
    const accel::PipelineWorkloadConfig &workload,
    const accel::HwConfig &hw);

/** What happens to a chip at a scheduled fault event. */
enum class ChipEventKind : int {
    Fail = 0,    ///< Whole-chip outage: leaves the pool.
    Rejoin,      ///< Returns to service (degradations persist).
    RetireLanes, ///< BIST maps out MAC lanes; chip serves degraded.
};

/** One scheduled chip lifecycle event, in virtual time. */
struct ChipFaultEvent
{
    long long at_us = 0; ///< Virtual time the event takes effect.
    int chip = 0;        ///< Target chip index.
    ChipEventKind kind = ChipEventKind::Fail;
    int lanes = 0;       ///< RetireLanes only: lanes mapped out.
};

/**
 * Chaos-schedule generator config layered on the PR-3 hardware fault
 * model: dead_lane_rate drives BIST lane retirements, stall_rate
 * drives whole-chip outage windows. Each chip derives its own
 * injector seed from (seed, chip), so per-chip schedules are
 * independent and the whole schedule is a pure function of the seed.
 */
struct ChaosScheduleConfig
{
    /** Fault rates + master seed (accel::HwFaultConfig semantics). */
    accel::HwFaultConfig hw_faults;
    /** Generate events in [0, horizon_us). */
    long long horizon_us = 0;
    /** Outage-draw granularity: one stall_rate draw per epoch. */
    long long epoch_us = 50000;
    /** Whole-chip outage duration before the rejoin event. */
    long long outage_us = 100000;
    /** When BIST detection lands the lane-retirement event. */
    long long bist_detect_us = 40000;
};

/**
 * Generate a deterministic chip fault schedule for @p chips chips of
 * configuration @p hw, sorted by (at_us, chip, kind). An all-zero
 * rate config yields an empty schedule.
 */
std::vector<ChipFaultEvent> makeChipFaultSchedule(
    const ChaosScheduleConfig &cfg, const accel::HwConfig &hw,
    int chips);

/**
 * K virtual chip instances tracked as busy-until horizons in virtual
 * time, with batched-dispatch cost accounting and scheduled
 * fail/rejoin/retire-lanes lifecycle events.
 */
class VirtualAccelPool
{
  public:
    /**
     * @param chips number of virtual accelerator instances (>= 1).
     * @param model per-frame service costs.
     * @param batch_amortized_fraction share of a frame's cost
     *        amortized across a batch (weight staging); in [0, 1).
     */
    VirtualAccelPool(int chips, const ServiceModel &model,
                     double batch_amortized_fraction);

    /** Number of virtual chips (alive or not). */
    int chips() const { return int(state_.size()); }

    /** Baseline (healthy-chip) service model. */
    const ServiceModel &model() const { return model_; }

    /**
     * Enable degraded-model derivation for lane retirements. Without
     * this, RetireLanes events fall back to proportional lane-count
     * scaling of the baseline model.
     */
    void configureHardware(
        const accel::PipelineWorkloadConfig &workload,
        const accel::HwConfig &hw);

    /** Install the chip fault schedule (re-sorted deterministically).
     *  Must be called before any event time has been passed. */
    void setFaultSchedule(std::vector<ChipFaultEvent> events);

    /** Chips affected by one applyEventsUpTo() sweep. */
    struct EventOutcome
    {
        std::vector<int> failed;       ///< Chips that went down.
        std::vector<int> rejoined;     ///< Chips back in service.
        std::vector<int> lane_retired; ///< Chips now degraded.
        long long lanes_retired = 0;   ///< Total lanes mapped out.
    };

    /**
     * Apply every scheduled event with at_us <= @p now_us, in
     * schedule order. A failing chip's busy horizon is truncated to
     * the event time (its in-flight work is the caller's to
     * re-dispatch) and the unserved remainder is refunded from the
     * busy accounting. A chip whose lane retirement leaves no usable
     * lane fails instead of degrading.
     */
    EventOutcome applyEventsUpTo(long long now_us);

    /** True when any scheduled event is still in the future. */
    bool hasPendingEvents() const
    {
        return next_event_ < schedule_.size();
    }

    /** True when @p chip is in service. */
    bool alive(int chip) const
    {
        return state_[size_t(chip)].alive;
    }

    /** Chips currently in service. */
    int aliveChips() const;

    /** True when at least one chip is in service. */
    bool anyAlive() const { return aliveChips() > 0; }

    /** Lanes mapped out on @p chip so far. */
    int retiredLanes(int chip) const
    {
        return state_[size_t(chip)].retired_lanes;
    }

    /** Service model of @p chip (degraded once lanes retired). */
    const ServiceModel &chipModel(int chip) const
    {
        return state_[size_t(chip)].model;
    }

    /**
     * Fleet capacity in healthy-chip units: each alive chip
     * contributes baseline_amortized / its_amortized (1.0 when
     * healthy, less once degraded). 0 when every chip is down.
     */
    double effectiveCapacity() const;

    /**
     * Lowest-index alive chip idle at @p now_us (busy horizon has
     * passed), or -1 when every chip is busy or down.
     */
    int idleChip(long long now_us) const;

    /**
     * Service time of a batch with the given per-frame costs,
     * microseconds: (1 - f) * sum + f * max.
     */
    double batchServiceUs(const std::vector<double> &costs_us) const;

    /**
     * Occupy @p chip from @p now_us for @p service_us. The chip must
     * be alive and idle at @p now_us. Returns the completion
     * timestamp.
     */
    long long dispatch(int chip, long long now_us, double service_us);

    /** Busy horizon of @p chip. */
    long long busyUntil(int chip) const
    {
        return state_[size_t(chip)].busy_until_us;
    }

    /** True when every alive chip is idle at @p now_us. */
    bool allIdle(long long now_us) const;

    /** Total busy microseconds accumulated across all chips (time a
     *  failed chip never served is refunded). */
    double totalBusyUs() const { return total_busy_us_; }

    /**
     * Serialize chip lifecycle state: per-chip liveness/usability,
     * retired lanes, busy horizon, and (possibly degraded) service
     * model, plus the busy accounting and the fault-schedule cursor.
     * The schedule itself is configuration (installed via
     * setFaultSchedule); only its length rides along for validation.
     */
    void saveSnapshot(snap::SnapshotWriter &w) const;

    /**
     * Restore into a pool built with the same chip count and fault
     * schedule. The cursor re-enters mid-schedule: events already
     * applied before the snapshot are never replayed, pending ones
     * still fire. Typed errors on any mismatch.
     */
    [[nodiscard]] Status restoreSnapshot(snap::SnapshotReader &r);

  private:
    struct ChipState
    {
        bool alive = true;
        bool usable = true; ///< False once retirement leaves no lane.
        int retired_lanes = 0;
        long long busy_until_us = 0;
        ServiceModel model; ///< Degraded once lanes retire.
    };

    /**
     * Degraded model for @p retired total lanes (cached); nullptr
     * when no usable lane survives.
     */
    const ServiceModel *degradedModel(int retired);

    ServiceModel model_;
    // detlint:allow(R12) construction-time config, not snapshot state.
    double batch_fraction_;
    std::vector<ChipState> state_;
    double total_busy_us_ = 0.0;

    std::vector<ChipFaultEvent> schedule_;
    size_t next_event_ = 0;

    // detlint:allow(R12) re-established by provisionHardware() on rebuild.
    bool have_hardware_ = false;
    // detlint:allow(R12) re-established by provisionHardware() on rebuild.
    accel::PipelineWorkloadConfig workload_;
    // detlint:allow(R12) re-established by provisionHardware() on rebuild.
    accel::HwConfig hw_;
    /** retired-lane count -> re-derived model (ordered: replayable). */
    // detlint:allow(R12) memo cache, re-derived on demand after restore.
    std::map<int, ServiceModel> degraded_models_;
};

} // namespace serve
} // namespace eyecod

#endif // EYECOD_SERVE_VIRTUAL_ACCEL_H
