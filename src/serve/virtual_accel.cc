#include "serve/virtual_accel.h"

#include <algorithm>

#include "accel/analytic.h"
#include "accel/orchestrator.h"
#include "common/logging.h"

namespace eyecod {
namespace serve {

namespace {

using accel::cyclesToUs;

/** splitmix64 mix of a 64-bit state (public-domain constant set). */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Deterministic schedule order: time, then chip, then kind. */
bool
eventBefore(const ChipFaultEvent &a, const ChipFaultEvent &b)
{
    if (a.at_us != b.at_us)
        return a.at_us < b.at_us;
    if (a.chip != b.chip)
        return a.chip < b.chip;
    if (a.kind != b.kind)
        return int(a.kind) < int(b.kind);
    return a.lanes < b.lanes;
}

} // namespace

Result<ServiceModel>
deriveServiceModel(const accel::PipelineWorkloadConfig &workload,
                   const accel::HwConfig &hw)
{
    const auto all = accel::buildPipelineWorkload(workload);

    // Full pipeline: amortized steady frame + the peak segmentation
    // boundary frame (Fig. 7).
    Result<accel::FrameSchedule> full =
        accel::scheduleFrameChecked(all, hw);
    if (!full.ok())
        return full.status();

    // Per-frame workloads only (reconstruction + gaze): the cost of
    // a frame inside the refresh window.
    std::vector<accel::ModelWorkload> per_frame;
    for (const auto &m : all)
        if (m.period == 1)
            per_frame.push_back(m);
    Result<accel::FrameSchedule> steady =
        accel::scheduleFrameChecked(per_frame, hw);
    if (!steady.ok())
        return steady.status();

    ServiceModel model;
    model.gaze_frame_us =
        cyclesToUs(steady.value().frame_cycles, hw);
    model.seg_frame_us =
        cyclesToUs(full.value().peak_frame_cycles, hw);
    model.amortized_frame_us =
        cyclesToUs(full.value().frame_cycles, hw);
    if (model.amortized_frame_us > 0.0)
        model.chip_fps = 1e6 / model.amortized_frame_us;
    // Partial time-multiplexing hides segmentation work in gaze
    // slack, so the peak frame can only extend the steady frame.
    model.seg_frame_us =
        std::max(model.seg_frame_us, model.gaze_frame_us);
    return model;
}

std::vector<ChipFaultEvent>
makeChipFaultSchedule(const ChaosScheduleConfig &cfg,
                      const accel::HwConfig &hw, int chips)
{
    eyecod_assert(chips >= 1, "schedule needs >= 1 chip");
    eyecod_assert(cfg.epoch_us >= 1, "epoch_us must be >= 1");
    eyecod_assert(cfg.outage_us >= 1, "outage_us must be >= 1");
    std::vector<ChipFaultEvent> events;
    for (int c = 0; c < chips; ++c) {
        // Each chip is its own fault domain: fold the chip index into
        // the seed so per-chip schedules decorrelate, same discipline
        // as the per-(seed, frame, unit) streams inside the injector.
        accel::HwFaultConfig per_chip = cfg.hw_faults;
        per_chip.seed = mix64(cfg.hw_faults.seed ^
                              (uint64_t(c) << 17) ^ 0xc41b5ULL);
        const accel::HwFaultInjector injector(per_chip, hw);

        // Manufacturing-dead lanes surface as one BIST retirement
        // event once the detection window elapses.
        const int dead = int(injector.chip().dead_lanes.size());
        if (dead > 0 && cfg.bist_detect_us < cfg.horizon_us)
            events.push_back(ChipFaultEvent{
                cfg.bist_detect_us, c, ChipEventKind::RetireLanes,
                dead});

        // Whole-chip outages: one stall-rate draw per epoch (the
        // injector's per-frame plan, with the epoch index standing in
        // for the frame index). Epochs inside an ongoing outage are
        // skipped — a chip that is already down cannot fail again.
        long long down_until = -1;
        const long long epochs = cfg.horizon_us / cfg.epoch_us;
        for (long long e = 0; e < epochs; ++e) {
            const long long at = e * cfg.epoch_us;
            if (at < down_until)
                continue;
            if (injector.plan(long(e)).stall_cycles <= 0)
                continue;
            events.push_back(
                ChipFaultEvent{at, c, ChipEventKind::Fail, 0});
            const long long back = at + cfg.outage_us;
            if (back < cfg.horizon_us)
                events.push_back(ChipFaultEvent{
                    back, c, ChipEventKind::Rejoin, 0});
            down_until = back;
        }
    }
    std::sort(events.begin(), events.end(), eventBefore);
    return events;
}

VirtualAccelPool::VirtualAccelPool(int chips,
                                   const ServiceModel &model,
                                   double batch_amortized_fraction)
    : model_(model), batch_fraction_(batch_amortized_fraction)
{
    eyecod_assert(chips >= 1, "need >= 1 virtual chip, got %d",
                  chips);
    eyecod_assert(batch_fraction_ >= 0.0 && batch_fraction_ < 1.0,
                  "batch fraction %g outside [0, 1)",
                  batch_fraction_);
    ChipState healthy;
    healthy.model = model_;
    state_.assign(size_t(chips), healthy);
}

void
VirtualAccelPool::configureHardware(
    const accel::PipelineWorkloadConfig &workload,
    const accel::HwConfig &hw)
{
    workload_ = workload;
    hw_ = hw;
    have_hardware_ = true;
    degraded_models_.clear();
}

void
VirtualAccelPool::setFaultSchedule(std::vector<ChipFaultEvent> events)
{
    eyecod_assert(next_event_ == 0,
                  "fault schedule installed after events ran");
    for (const ChipFaultEvent &ev : events) {
        eyecod_assert(ev.chip >= 0 && ev.chip < chips(),
                      "fault event chip %d out of range", ev.chip);
        eyecod_assert(ev.at_us >= 0,
                      "fault event at negative virtual time");
    }
    schedule_ = std::move(events);
    std::sort(schedule_.begin(), schedule_.end(), eventBefore);
}

const ServiceModel *
VirtualAccelPool::degradedModel(int retired)
{
    if (retired <= 0)
        return &model_;
    const auto it = degraded_models_.find(retired);
    if (it != degraded_models_.end())
        return it->second.amortized_frame_us > 0.0 ? &it->second
                                                   : nullptr;
    ServiceModel degraded; // Zero-cost sentinel = unusable.
    if (have_hardware_) {
        // Re-derive the timing model on the surviving lanes: the
        // orchestrator re-partitions work exactly as the PR-3
        // retirement path does, so serve-time degradation and
        // simulator-time degradation agree.
        const Result<accel::HwConfig> hw =
            accel::retireLanes(hw_, retired);
        if (hw.ok()) {
            const Result<ServiceModel> m =
                deriveServiceModel(workload_, hw.value());
            if (m.ok())
                degraded = m.value();
        }
    } else {
        // No hardware attached: proportional lane-count scaling of
        // the baseline model (sweeps and unit tests).
        const int lanes = hw_.mac_lanes;
        if (retired < lanes) {
            const double scale =
                double(lanes) / double(lanes - retired);
            degraded = model_;
            degraded.gaze_frame_us *= scale;
            degraded.seg_frame_us *= scale;
            degraded.amortized_frame_us *= scale;
            degraded.chip_fps = model_.chip_fps / scale;
        }
    }
    const auto [pos, inserted] =
        degraded_models_.emplace(retired, degraded);
    (void)inserted;
    return pos->second.amortized_frame_us > 0.0 ? &pos->second
                                                : nullptr;
}

VirtualAccelPool::EventOutcome
VirtualAccelPool::applyEventsUpTo(long long now_us)
{
    EventOutcome out;
    while (next_event_ < schedule_.size() &&
           schedule_[next_event_].at_us <= now_us) {
        const ChipFaultEvent &ev = schedule_[next_event_++];
        ChipState &chip = state_[size_t(ev.chip)];
        switch (ev.kind) {
        case ChipEventKind::Fail:
            if (!chip.alive)
                break;
            chip.alive = false;
            // Work past the failure instant was never served: refund
            // it from the busy accounting and free the horizon so
            // utilization stays truthful.
            if (chip.busy_until_us > ev.at_us) {
                total_busy_us_ -=
                    double(chip.busy_until_us - ev.at_us);
                chip.busy_until_us = ev.at_us;
            }
            out.failed.push_back(ev.chip);
            break;
        case ChipEventKind::Rejoin:
            if (chip.alive || !chip.usable)
                break;
            chip.alive = true;
            chip.busy_until_us =
                std::max(chip.busy_until_us, ev.at_us);
            out.rejoined.push_back(ev.chip);
            break;
        case ChipEventKind::RetireLanes: {
            if (!chip.usable)
                break;
            const int retired = chip.retired_lanes + ev.lanes;
            const ServiceModel *m = degradedModel(retired);
            chip.retired_lanes = retired;
            out.lanes_retired += ev.lanes;
            if (m == nullptr) {
                // No usable lane survives: the chip is bricked, not
                // degraded — it fails and never rejoins.
                chip.usable = false;
                if (chip.alive) {
                    chip.alive = false;
                    if (chip.busy_until_us > ev.at_us) {
                        total_busy_us_ -=
                            double(chip.busy_until_us - ev.at_us);
                        chip.busy_until_us = ev.at_us;
                    }
                    out.failed.push_back(ev.chip);
                }
                break;
            }
            chip.model = *m;
            out.lane_retired.push_back(ev.chip);
            break;
        }
        }
    }
    return out;
}

int
VirtualAccelPool::aliveChips() const
{
    int n = 0;
    for (const ChipState &chip : state_)
        if (chip.alive)
            ++n;
    return n;
}

double
VirtualAccelPool::effectiveCapacity() const
{
    double capacity = 0.0;
    for (const ChipState &chip : state_) {
        if (!chip.alive || chip.model.amortized_frame_us <= 0.0)
            continue;
        capacity +=
            model_.amortized_frame_us / chip.model.amortized_frame_us;
    }
    return capacity;
}

int
VirtualAccelPool::idleChip(long long now_us) const
{
    for (size_t c = 0; c < state_.size(); ++c)
        if (state_[c].alive && state_[c].busy_until_us <= now_us)
            return int(c);
    return -1;
}

double
VirtualAccelPool::batchServiceUs(
    const std::vector<double> &costs_us) const
{
    if (costs_us.empty())
        return 0.0;
    double sum = 0.0;
    double peak = 0.0;
    for (double c : costs_us) {
        sum += c;
        peak = std::max(peak, c);
    }
    return (1.0 - batch_fraction_) * sum + batch_fraction_ * peak;
}

long long
VirtualAccelPool::dispatch(int chip, long long now_us,
                           double service_us)
{
    eyecod_assert(chip >= 0 && chip < chips(),
                  "chip %d out of range", chip);
    ChipState &st = state_[size_t(chip)];
    eyecod_assert(st.alive, "dispatch to failed chip %d", chip);
    eyecod_assert(st.busy_until_us <= now_us,
                  "dispatch to busy chip %d", chip);
    // Ceil to whole microseconds so completion timestamps stay
    // integral (and therefore exactly comparable across runs).
    const long long span = (long long)(service_us + 0.999999);
    st.busy_until_us = now_us + span;
    total_busy_us_ += double(span);
    return st.busy_until_us;
}

bool
VirtualAccelPool::allIdle(long long now_us) const
{
    for (const ChipState &chip : state_)
        if (chip.busy_until_us > now_us)
            return false;
    return true;
}

namespace {

constexpr uint32_t kAccelPoolTag = 0x41504c31; // "APL1"

void
writeServiceModel(snap::SnapshotWriter &w, const ServiceModel &m)
{
    w.f64(m.gaze_frame_us);
    w.f64(m.seg_frame_us);
    w.f64(m.amortized_frame_us);
    w.f64(m.chip_fps);
}

Status
readServiceModel(snap::SnapshotReader &r, ServiceModel *out)
{
    auto gaze = r.f64();
    auto seg = r.f64();
    auto amortized = r.f64();
    auto fps = r.f64();
    if (!fps.ok())
        return fps.status();
    out->gaze_frame_us = gaze.value();
    out->seg_frame_us = seg.value();
    out->amortized_frame_us = amortized.value();
    out->chip_fps = fps.value();
    return Status::ok();
}

} // namespace

void
VirtualAccelPool::saveSnapshot(snap::SnapshotWriter &w) const
{
    w.tag(kAccelPoolTag);
    w.u64(uint64_t(state_.size()));
    for (const ChipState &chip : state_) {
        w.b(chip.alive);
        w.b(chip.usable);
        w.i32(chip.retired_lanes);
        w.i64(chip.busy_until_us);
        writeServiceModel(w, chip.model);
    }
    w.f64(total_busy_us_);
    w.u64(uint64_t(schedule_.size()));
    w.u64(uint64_t(next_event_));
}

Status
VirtualAccelPool::restoreSnapshot(snap::SnapshotReader &r)
{
    Status fence = r.expectTag(kAccelPoolTag);
    if (!fence.isOk())
        return fence;
    auto chips_count = r.count(uint64_t(state_.size()));
    if (!chips_count.ok())
        return chips_count.status();
    if (chips_count.value() != state_.size())
        return Status::error(ErrorCode::CorruptSnapshot,
                             "pool has %zu chips, snapshot %llu",
                             state_.size(),
                             (unsigned long long)chips_count.value());
    for (ChipState &chip : state_) {
        auto alive = r.b();
        auto usable = r.b();
        auto retired = r.i32();
        auto busy = r.i64();
        if (!busy.ok())
            return busy.status();
        ServiceModel model;
        Status s = readServiceModel(r, &model);
        if (!s.isOk())
            return s;
        if (retired.value() < 0)
            return Status::error(ErrorCode::CorruptSnapshot,
                                 "negative retired-lane count %d",
                                 retired.value());
        chip.alive = alive.value();
        chip.usable = usable.value();
        chip.retired_lanes = retired.value();
        chip.busy_until_us = busy.value();
        chip.model = model;
    }
    auto total_busy = r.f64();
    auto schedule_len = r.u64();
    auto next_event = r.u64();
    if (!next_event.ok())
        return next_event.status();
    if (schedule_len.value() != schedule_.size())
        return Status::error(ErrorCode::CorruptSnapshot,
                             "fault schedule has %zu events, snapshot "
                             "expects %llu",
                             schedule_.size(),
                             (unsigned long long)schedule_len.value());
    if (next_event.value() > schedule_.size())
        return Status::error(ErrorCode::CorruptSnapshot,
                             "schedule cursor %llu past %zu events",
                             (unsigned long long)next_event.value(),
                             schedule_.size());
    total_busy_us_ = total_busy.value();
    next_event_ = size_t(next_event.value());
    return Status::ok();
}

} // namespace serve
} // namespace eyecod
