#include "serve/virtual_accel.h"

#include <algorithm>

#include "accel/orchestrator.h"
#include "common/logging.h"

namespace eyecod {
namespace serve {

namespace {

double
cyclesToUs(long long cycles, const accel::HwConfig &hw)
{
    return double(cycles) / hw.clock_hz * 1e6;
}

} // namespace

Result<ServiceModel>
deriveServiceModel(const accel::PipelineWorkloadConfig &workload,
                   const accel::HwConfig &hw)
{
    const auto all = accel::buildPipelineWorkload(workload);

    // Full pipeline: amortized steady frame + the peak segmentation
    // boundary frame (Fig. 7).
    Result<accel::FrameSchedule> full =
        accel::scheduleFrameChecked(all, hw);
    if (!full.ok())
        return full.status();

    // Per-frame workloads only (reconstruction + gaze): the cost of
    // a frame inside the refresh window.
    std::vector<accel::ModelWorkload> per_frame;
    for (const auto &m : all)
        if (m.period == 1)
            per_frame.push_back(m);
    Result<accel::FrameSchedule> steady =
        accel::scheduleFrameChecked(per_frame, hw);
    if (!steady.ok())
        return steady.status();

    ServiceModel model;
    model.gaze_frame_us =
        cyclesToUs(steady.value().frame_cycles, hw);
    model.seg_frame_us =
        cyclesToUs(full.value().peak_frame_cycles, hw);
    model.amortized_frame_us =
        cyclesToUs(full.value().frame_cycles, hw);
    if (model.amortized_frame_us > 0.0)
        model.chip_fps = 1e6 / model.amortized_frame_us;
    // Partial time-multiplexing hides segmentation work in gaze
    // slack, so the peak frame can only extend the steady frame.
    model.seg_frame_us =
        std::max(model.seg_frame_us, model.gaze_frame_us);
    return model;
}

VirtualAccelPool::VirtualAccelPool(int chips,
                                   const ServiceModel &model,
                                   double batch_amortized_fraction)
    : model_(model), batch_fraction_(batch_amortized_fraction)
{
    eyecod_assert(chips >= 1, "need >= 1 virtual chip, got %d",
                  chips);
    eyecod_assert(batch_fraction_ >= 0.0 && batch_fraction_ < 1.0,
                  "batch fraction %g outside [0, 1)",
                  batch_fraction_);
    busy_until_us_.assign(size_t(chips), 0);
}

int
VirtualAccelPool::idleChip(long long now_us) const
{
    for (size_t c = 0; c < busy_until_us_.size(); ++c)
        if (busy_until_us_[c] <= now_us)
            return int(c);
    return -1;
}

double
VirtualAccelPool::batchServiceUs(
    const std::vector<double> &costs_us) const
{
    if (costs_us.empty())
        return 0.0;
    double sum = 0.0;
    double peak = 0.0;
    for (double c : costs_us) {
        sum += c;
        peak = std::max(peak, c);
    }
    return (1.0 - batch_fraction_) * sum + batch_fraction_ * peak;
}

long long
VirtualAccelPool::dispatch(int chip, long long now_us,
                           double service_us)
{
    eyecod_assert(chip >= 0 && chip < chips(),
                  "chip %d out of range", chip);
    eyecod_assert(busy_until_us_[size_t(chip)] <= now_us,
                  "dispatch to busy chip %d", chip);
    // Ceil to whole microseconds so completion timestamps stay
    // integral (and therefore exactly comparable across runs).
    const long long span = (long long)(service_us + 0.999999);
    busy_until_us_[size_t(chip)] = now_us + span;
    total_busy_us_ += double(span);
    return busy_until_us_[size_t(chip)];
}

bool
VirtualAccelPool::allIdle(long long now_us) const
{
    for (long long b : busy_until_us_)
        if (b > now_us)
            return false;
    return true;
}

} // namespace serve
} // namespace eyecod
