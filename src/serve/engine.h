/**
 * @file
 * Multi-session serving engine: N user sessions sharing the
 * functional CPU substrate and K virtual accelerator instances.
 *
 * Architecture (DESIGN.md section 9):
 *
 *  - each admitted session owns a PredictThenFocusPipeline (via
 *    core::EyeCoDSystem) and a bounded drop-oldest frame queue;
 *    producers never block;
 *  - a deadline-aware scheduler runs in discrete virtual-time ticks.
 *    Every tick it forms cross-session batches from ready frames in
 *    earliest-deadline order (uniform relative deadlines make that
 *    earliest-arrival order, tie-broken by session id) and assigns
 *    one batch to every idle virtual chip; frames that find no idle
 *    chip wait in their bounded queue, which is where backpressure
 *    drops come from;
 *  - the functional work of one tick is executed on a shared
 *    common::ThreadPool — the same deterministic substrate the
 *    nn::ThreadedBackend runs on — with one chunk per session, so
 *    results are bitwise identical at any scheduler thread count;
 *  - frame *timing* comes from the cycle-level accelerator model
 *    (serve/virtual_accel.h), in virtual microseconds. No wall
 *    clock is read anywhere, which makes a serving run fully
 *    replayable: same seed and trace => identical gaze streams,
 *    drop decisions, and metrics;
 *  - admission control rejects sessions with a typed
 *    ErrorCode::Overloaded once projected fleet utilization exceeds
 *    the configured bound.
 */

#ifndef EYECOD_SERVE_ENGINE_H
#define EYECOD_SERVE_ENGINE_H

#include <memory>
#include <string>
#include <vector>

#include "common/perf_json.h"
#include "common/thread_pool.h"
#include "serve/session.h"
#include "serve/traffic.h"
#include "serve/virtual_accel.h"

namespace eyecod {
namespace serve {

/** Serving engine configuration. */
struct ServingConfig
{
    /** Per-session system prototype (pipeline flavour, extents). */
    core::SystemConfig system;
    /** Virtual accelerator instances serving the fleet. */
    int virtual_chips = 2;
    /** Weight-staging share amortized across a batch, [0, 1). */
    double batch_amortized_fraction = 0.3;
    /** Largest cross-session batch per chip dispatch. */
    int max_batch = 8;
    /** Hard cap on concurrently admitted sessions. */
    int max_sessions = 64;
    /** Bounded per-session frame queue depth. */
    size_t queue_capacity = 8;
    /** Nominal per-user frame period (240 FPS default). */
    long long frame_interval_us = 4167;
    /** Relative frame deadline (two frame periods default). */
    long long deadline_us = 8334;
    /** Scheduler quantum in virtual microseconds. */
    long long tick_us = 1000;
    /**
     * Admission bound on projected fleet utilization (demand /
     * capacity). > 1 permits over-subscription served with bounded
     * drops; sessions beyond the bound are rejected as Overloaded.
     */
    double admission_max_utilization = 2.0;
    /** Scheduler thread-pool width; 0 = hardware concurrency. */
    int scheduler_threads = 0;
    /** Record per-session gaze streams (determinism tests). */
    bool record_gaze = false;
};

/** Fleet-wide aggregate metrics. */
struct FleetMetrics
{
    long long submitted = 0;
    long long completed = 0;
    long long queue_drops = 0;
    long long pipeline_drops = 0;
    long long deadline_misses = 0;
    long long sessions_opened = 0;
    long long sessions_rejected = 0;
    long long sessions_closed = 0;
    double aggregate_fps = 0.0;      ///< Completed / makespan.
    double backend_utilization = 0.0; ///< Chip busy share.
    double deadline_miss_rate = 0.0; ///< Misses / completed.
    double drop_rate = 0.0;          ///< Queue drops / submitted.
    double mean_latency_us = 0.0;
    double p50_latency_us = 0.0;
    double p95_latency_us = 0.0;
    double p99_latency_us = 0.0;
    long long makespan_us = 0;       ///< Last completion timestamp.
    // Memory-spine accounting (see SessionMetrics): heap allocations
    // on steady (gaze-only) vs refresh/dropped frames, summed over
    // sessions, and the largest per-session arena epoch footprint.
    long long steady_frames = 0;
    long long steady_allocs = 0;
    long long refresh_frames = 0;
    long long refresh_allocs = 0;
    long long peak_arena_bytes = 0;  ///< Max over sessions.
};

/**
 * The multi-session serving engine.
 */
class ServingEngine
{
  public:
    /**
     * @param cfg engine configuration.
     * @param trained fleet-trained gaze estimator copied into every
     *        admitted session.
     * @param renderer scene renderer shared (const) by all sessions;
     *        must outlive the engine.
     *
     * Panics on an invalid accelerator configuration (the service
     * model is derived in the constructor via the checked scheduler
     * entry; construction is a trusted configuration-time path).
     */
    ServingEngine(ServingConfig cfg,
                  const eyetrack::RidgeGazeEstimator &trained,
                  const dataset::SyntheticEyeRenderer &renderer);

    /** Timing model derived from the accelerator simulator. */
    const ServiceModel &serviceModel() const
    {
        return pool_.model();
    }

    /**
     * Projected fleet utilization (demand / capacity) with
     * @p additional_sessions more active sessions.
     */
    double projectedUtilization(int additional_sessions) const;

    /**
     * Admit a new session. Fails with ErrorCode::Overloaded when the
     * session cap is reached or the projected utilization exceeds
     * the admission bound. Returns the session id.
     */
    Result<int> openSession();

    /**
     * Close an admitted session: queued frames are shed (recorded as
     * drops), metrics and health remain queryable.
     */
    Status closeSession(int id);

    /**
     * Enqueue one frame for @p id. Never blocks; a full queue sheds
     * its oldest frame into the session's drop log. Fails with
     * InvalidArgument for unknown/closed sessions and after stop().
     */
    Status submitFrame(int id, const FrameTicket &ticket);

    /** Current virtual time. */
    long long now() const { return virtual_now_; }

    /** Run scheduler ticks up to virtual time @p target_us. */
    void advanceTo(long long target_us);

    /** Tick until every queue is empty and every chip idle. */
    void drain();

    /**
     * Stop the engine. With @p drain_first, serve every queued frame
     * to completion before retiring the scheduler workers (no frame
     * is lost); otherwise shed remaining queued frames as drops.
     * Idempotent; the engine stays queryable afterwards.
     */
    void stop(bool drain_first = true);

    /**
     * Convenience driver: replay a scripted trace — opening sessions
     * at their join times (admission applies), submitting frames at
     * their arrival times, closing churned sessions — then drain and
     * return the fleet metrics.
     */
    FleetMetrics runTrace(const std::vector<SessionTraffic> &traffic);

    /** Sessions currently admitted and not closed. */
    int activeSessions() const;

    /** Total sessions ever admitted (ids are 0..count-1). */
    int sessionCount() const { return int(sessions_.size()); }

    /** Serving metrics of session @p id. */
    const SessionMetrics &sessionMetrics(int id) const;

    /** Serving + pipeline health of session @p id. */
    SessionHealth sessionHealth(int id) const;

    /** Emitted gaze stream of session @p id (record_gaze only). */
    const std::vector<dataset::GazeVec> &sessionGazeLog(int id) const;

    /** Aggregate fleet metrics. */
    FleetMetrics fleetMetrics() const;

    /**
     * Export fleet metrics into @p json under section @p section,
     * plus one "<section>.s<id>" subsection per session.
     */
    void exportMetrics(PerfJson &json,
                       const std::string &section) const;

    /** Configuration in use. */
    const ServingConfig &config() const { return cfg_; }

  private:
    /** One dispatched frame in flight through a tick. */
    struct PendingFrame
    {
        int session = -1;     ///< Session index.
        FrameTicket ticket;
        int batch = -1;       ///< Owning batch index this tick.
        double cost_us = 0.0; ///< Service cost (set by the
                              ///  functional pass).
        bool pipeline_drop = false; ///< Typed FrameDropped/other.
    };

    /** One cross-session batch bound to an idle chip. */
    struct Batch
    {
        int chip = -1;
        std::vector<size_t> items; ///< Indices into the tick's
                                   ///  dispatched frames.
    };

    Session &sessionRef(int id);
    const Session &sessionRef(int id) const;

    /** Run one scheduler tick at virtual_now_. */
    void runTick();

    /** True when any active session still has queued frames. */
    bool anyQueued() const;

    ServingConfig cfg_;
    const dataset::SyntheticEyeRenderer &renderer_;
    eyetrack::RidgeGazeEstimator trained_;
    VirtualAccelPool pool_;
    ThreadPool sched_pool_;
    std::vector<std::unique_ptr<Session>> sessions_;
    long long virtual_now_ = 0;
    long long next_tick_us_ = 0;
    long long last_completion_us_ = 0;
    long long rejected_sessions_ = 0;
    long long closed_sessions_ = 0;
    bool stopped_ = false;

    // Tick scratch, reused across runTick() calls so the scheduler's
    // serial phases allocate nothing in steady state. Pooled entries
    // (batches_, by_session_) keep their inner vectors' capacity and
    // are bounded by num_batches_ / num_groups_ each tick.
    std::vector<PendingFrame> dispatched_;
    std::vector<Batch> batches_;
    size_t num_batches_ = 0;
    std::vector<char> chip_taken_;
    std::vector<double> costs_;
    std::vector<std::pair<int, std::vector<size_t>>> by_session_;
    size_t num_groups_ = 0;
};

} // namespace serve
} // namespace eyecod

#endif // EYECOD_SERVE_ENGINE_H
