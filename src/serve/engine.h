/**
 * @file
 * Multi-session serving engine: N user sessions sharing the
 * functional CPU substrate and K virtual accelerator instances.
 *
 * Architecture (DESIGN.md sections 9 and 12):
 *
 *  - each admitted session owns a PredictThenFocusPipeline (via
 *    core::EyeCoDSystem) and a bounded drop-oldest frame queue;
 *    producers never block;
 *  - a deadline-aware scheduler runs in discrete virtual-time ticks.
 *    Every tick it forms cross-session batches from ready frames in
 *    earliest-deadline order (uniform relative deadlines make that
 *    earliest-arrival order, tie-broken by session id) and assigns
 *    one batch to every idle virtual chip; frames that find no idle
 *    chip wait in their bounded queue, which is where backpressure
 *    drops come from;
 *  - the functional work of one tick is executed on a shared
 *    common::ThreadPool — the same deterministic substrate the
 *    nn::ThreadedBackend runs on — with one chunk per session, so
 *    results are bitwise identical at any scheduler thread count;
 *  - frame *timing* comes from the cycle-level accelerator model
 *    (serve/virtual_accel.h), in virtual microseconds. No wall
 *    clock is read anywhere, which makes a serving run fully
 *    replayable: same seed and trace => identical gaze streams,
 *    drop decisions, and metrics;
 *  - chips are mortal: a scripted (or hw_faults-seeded) schedule can
 *    fail chips, rejoin them, or retire their MAC lanes mid-run.
 *    Batches in flight on a failed chip are re-dispatched to
 *    survivors with bounded retries and capped exponential backoff
 *    (all in virtual time); a frame is functionally served exactly
 *    once — re-dispatch re-bills its timing, never its gaze;
 *  - a FleetHealthController (serve/health.h) watches raw fleet
 *    pressure and walks the four-tier degradation ladder:
 *    drop-oldest -> resolution downgrade -> refresh-rate downgrade
 *    -> admission reject, with hysteresis on both edges;
 *  - admission control rejects sessions with a typed
 *    ErrorCode::Overloaded once projected fleet utilization exceeds
 *    the configured bound, or while the ladder sits at tier 4.
 */

#ifndef EYECOD_SERVE_ENGINE_H
#define EYECOD_SERVE_ENGINE_H

#include <memory>
#include <string>
#include <vector>

#include "common/perf_json.h"
#include "common/thread_pool.h"
#include "serve/cost_model.h"
#include "serve/health.h"
#include "serve/session.h"
#include "serve/traffic.h"
#include "serve/virtual_accel.h"

namespace eyecod {
namespace serve {

/** Chip fault schedule + re-dispatch policy. */
struct FailoverConfig
{
    /**
     * Chip lifecycle events in virtual time (scripted, or generated
     * by makeChipFaultSchedule from the PR-3 seeded fault model).
     * Empty = every chip healthy forever, and the engine's outputs
     * are bitwise identical to the pre-failover engine.
     */
    std::vector<ChipFaultEvent> chip_faults;
    /** Re-dispatch attempts per frame after its chip fails. */
    int max_retries = 3;
    /** First retry backoff, virtual microseconds. */
    long long backoff_base_us = 2000;
    /** Backoff growth cap (exponential, then clamped). */
    long long backoff_cap_us = 16000;
};

/** Serving engine configuration. */
struct ServingConfig
{
    /** Per-session system prototype (pipeline flavour, extents). */
    core::SystemConfig system;
    /** Virtual accelerator instances serving the fleet. */
    int virtual_chips = 2;
    /** Weight-staging share amortized across a batch, [0, 1). */
    double batch_amortized_fraction = 0.3;
    /** Largest cross-session batch per chip dispatch. */
    int max_batch = 8;
    /** Hard cap on concurrently admitted sessions. */
    int max_sessions = 64;
    /** Bounded per-session frame queue depth. */
    size_t queue_capacity = 8;
    /** Nominal per-user frame period (240 FPS default). */
    long long frame_interval_us = 4167;
    /** Relative frame deadline (two frame periods default). */
    long long deadline_us = 8334;
    /** Scheduler quantum in virtual microseconds. */
    long long tick_us = 1000;
    /**
     * Admission bound on projected fleet utilization (demand /
     * capacity). > 1 permits over-subscription served with bounded
     * drops; sessions beyond the bound are rejected as Overloaded.
     */
    double admission_max_utilization = 2.0;
    /** Scheduler thread-pool width; 0 = hardware concurrency. */
    int scheduler_threads = 0;
    /** Record per-session gaze streams (determinism tests). */
    bool record_gaze = false;
    /** Chip failure schedule + retry/backoff policy. */
    FailoverConfig failover;
    /** Degradation-ladder thresholds + hysteresis. */
    HealthControllerConfig degradation;
    /**
     * Service-cost multiplier for tier-2 reduced-resolution frames
     * (half linear resolution quarters the pixels, but the gaze
     * stage's cost share is resolution-independent). Under
     * CostModelKind::DseEstimator this hardcoded assumption is
     * replaced at construction by the estimator's predicted
     * half-res / full-res amortized cost ratio.
     */
    double resolution_cost_factor = 0.6;
    /**
     * Source of per-frame service costs: the legacy orchestrator
     * schedule, or the dse/ analytical estimator (which also
     * predicts resolution_cost_factor). The two produce bitwise
     * identical ServiceModels for the default orchestration, so
     * flipping this leaves serving benches unchanged.
     */
    CostModelKind cost_model = CostModelKind::Schedule;
    /** Tier-3 stride: every stride-th submitted frame is shed. */
    int rate_downgrade_stride = 3;
    /** Bound on each session's drop log (overflow counted). */
    size_t drop_log_cap = 4096;
    /** Keep a bounded per-completion record log (chaos bench). */
    bool record_completions = false;
    /** Completion-log bound when record_completions is set. */
    size_t completion_log_cap = 1u << 20;
};

/** Fleet-wide aggregate metrics. */
struct FleetMetrics
{
    long long submitted = 0;
    long long completed = 0;
    long long queue_drops = 0;       ///< All shed frames, any reason.
    // queue_drops by DropReason:
    long long drops_backpressure = 0;
    long long drops_shed_on_close = 0;
    long long drops_rate_downgrade = 0;
    long long drops_failover = 0;
    long long pipeline_drops = 0;
    long long deadline_misses = 0;
    long long sessions_opened = 0;
    long long sessions_rejected = 0;
    long long sessions_closed = 0;
    // Failover + degradation counters:
    long long chip_failures = 0;     ///< Whole-chip outages seen.
    long long chip_rejoins = 0;      ///< Chips back in service.
    long long lanes_retired = 0;     ///< MAC lanes mapped out.
    long long redispatched_frames = 0; ///< Completions that survived
                                       ///  >= 1 chip failure.
    long long degraded_res_frames = 0; ///< Tier-2 served frames.
    long long drop_log_overflow = 0; ///< Drop records past the cap.
    int degradation_tier = 0;        ///< Ladder position right now.
    long long tier_transitions = 0;  ///< Ladder moves, both ways.
    /** Scheduler ticks spent at each tier (0..4). */
    long long tier_residency[kNumDegradationTiers + 1] = {};
    double aggregate_fps = 0.0;      ///< Completed / makespan.
    double backend_utilization = 0.0; ///< Chip busy share.
    double deadline_miss_rate = 0.0; ///< Misses / completed.
    double drop_rate = 0.0;          ///< Queue drops / submitted.
    double mean_latency_us = 0.0;
    double p50_latency_us = 0.0;
    double p95_latency_us = 0.0;
    double p99_latency_us = 0.0;
    double p999_latency_us = 0.0;
    /** p99 latency of re-dispatched completions (failover cost). */
    double failover_p99_latency_us = 0.0;
    long long makespan_us = 0;       ///< Last completion timestamp.
    // Memory-spine accounting (see SessionMetrics): heap allocations
    // on steady (gaze-only) vs refresh/dropped frames, summed over
    // sessions, and the largest per-session arena epoch footprint.
    long long steady_frames = 0;
    long long steady_allocs = 0;
    long long refresh_frames = 0;
    long long refresh_allocs = 0;
    long long peak_arena_bytes = 0;  ///< Max over sessions.
};

/** One finalized completion (record_completions only). */
struct CompletionRecord
{
    int session = -1;
    long frame_index = 0;
    long long arrival_us = 0;
    long long completion_us = 0;
    double latency_us = 0.0;
    bool redispatched = false; ///< Survived >= 1 chip failure.
    bool deadline_miss = false;
};

/**
 * The multi-session serving engine.
 */
class ServingEngine
{
  public:
    /**
     * @param cfg engine configuration.
     * @param trained fleet-trained gaze estimator copied into every
     *        admitted session.
     * @param renderer scene renderer shared (const) by all sessions;
     *        must outlive the engine.
     *
     * Panics on an invalid accelerator configuration (the service
     * model is derived in the constructor via the checked scheduler
     * entry; construction is a trusted configuration-time path).
     */
    ServingEngine(ServingConfig cfg,
                  const eyetrack::RidgeGazeEstimator &trained,
                  const dataset::SyntheticEyeRenderer &renderer);

    /** Timing model derived from the accelerator simulator. */
    const ServiceModel &serviceModel() const
    {
        return pool_.model();
    }

    /**
     * Projected fleet utilization (demand / capacity) with
     * @p additional_sessions more active sessions. Capacity reflects
     * surviving chips and their lane degradations.
     */
    double projectedUtilization(int additional_sessions) const;

    /**
     * Admit a new session. Fails with ErrorCode::Overloaded when the
     * session cap is reached, the projected utilization exceeds the
     * admission bound, or the degradation ladder sits at tier 4.
     * Returns the session id.
     */
    Result<int> openSession();

    /**
     * Close an admitted session: queued frames and pending retries
     * are shed (DropReason::ShedOnClose); frames already in flight
     * on a chip still finalize into the closed session's metrics.
     */
    Status closeSession(int id);

    /**
     * Enqueue one frame for @p id. Never blocks; a full queue sheds
     * its oldest frame into the session's drop log; at tier 3 every
     * rate_downgrade_stride-th frame is shed at admission. Fails
     * with InvalidArgument for unknown/closed sessions and after
     * stop().
     */
    Status submitFrame(int id, const FrameTicket &ticket);

    /** Current virtual time. */
    long long now() const { return virtual_now_; }

    /** Run scheduler ticks up to virtual time @p target_us. */
    void advanceTo(long long target_us);

    /**
     * Tick until every queue, retry slot, and chip is empty/idle.
     * If the whole fleet is down with no rejoin left in the
     * schedule, pending work is shed (DropReason::Failover) so the
     * drain terminates.
     */
    void drain();

    /**
     * Stop the engine. With @p drain_first, serve every queued frame
     * to completion before retiring the scheduler workers (no frame
     * is lost); otherwise shed remaining queued frames as drops and
     * finalize work already in flight. Idempotent; the engine stays
     * queryable afterwards.
     */
    void stop(bool drain_first = true);

    /**
     * Convenience driver: replay a scripted trace — opening sessions
     * at their join times (admission applies), submitting frames at
     * their arrival times, closing churned sessions at their leave
     * times — then drain and return the fleet metrics.
     */
    FleetMetrics runTrace(const std::vector<SessionTraffic> &traffic);

    /** Sessions currently admitted and not closed. */
    int activeSessions() const;

    /** Total sessions ever admitted (ids are 0..count-1). */
    int sessionCount() const { return int(sessions_.size()); }

    /** Serving metrics of session @p id. */
    const SessionMetrics &sessionMetrics(int id) const;

    /**
     * Serving + pipeline health of session @p id; the embedded
     * core::HealthReport carries the fleet failover counters and
     * degradation-tier position.
     */
    SessionHealth sessionHealth(int id) const;

    /** Emitted gaze stream of session @p id (record_gaze only). */
    const std::vector<dataset::GazeVec> &sessionGazeLog(int id) const;

    /** Aggregate fleet metrics. */
    FleetMetrics fleetMetrics() const;

    /** The degradation-ladder controller (tier, residency). */
    const FleetHealthController &healthController() const
    {
        return health_;
    }

    /** The virtual chip pool (liveness, degraded models). */
    const VirtualAccelPool &pool() const { return pool_; }

    /** Finalized completions, in completion order
     *  (record_completions only; bounded by completion_log_cap). */
    const std::vector<CompletionRecord> &completionLog() const
    {
        return completion_log_;
    }

    /** Completions that no longer fit the bounded completion log. */
    long long completionLogDropped() const
    {
        return completion_log_dropped_;
    }

    /**
     * Export fleet metrics into @p json under section @p section,
     * plus one "<section>.s<id>" subsection per session.
     */
    void exportMetrics(PerfJson &json,
                       const std::string &section) const;

    /** Configuration in use. */
    const ServingConfig &config() const { return cfg_; }

    /** Frames waiting out a failover backoff right now. */
    size_t pendingRetries() const { return retry_.size(); }

    /**
     * Serialize the engine's complete serve-time state into a sealed,
     * versioned snapshot: virtual clock, in-flight batches, retry
     * backoff queue, chip pool, degradation ladder, completion log,
     * and every session (pipeline FSM, RNG streams, metrics, queued
     * frames). Snapshots are taken at tick boundaries — call between
     * advanceTo() steps, never concurrently with one.
     *
     * NOT captured (configuration, rebuilt on restore): the serving
     * config, the trained estimator, the renderer, the fault
     * schedule, and per-tick scheduler scratch.
     */
    std::vector<uint8_t> saveSnapshot() const;

    /**
     * Restore a snapshot into an engine constructed with the same
     * configuration, estimator, and renderer. On success the engine
     * continues bitwise identically to the run that saved the
     * snapshot. Returns typed errors — CorruptSnapshot for damaged
     * or mismatched bytes, VersionMismatch for a foreign format
     * version — and never crashes on hostile input. On failure the
     * engine state is unspecified; discard the engine.
     */
    [[nodiscard]] Status restoreSnapshot(
        const std::vector<uint8_t> &data);

  private:
    /** One dispatched frame in flight through a tick. */
    struct PendingFrame
    {
        int session = -1;     ///< Session index.
        FrameTicket ticket;
        int batch = -1;       ///< Owning batch index this tick.
        bool refresh = false; ///< Functional pass ran segmentation.
        bool degraded_res = false; ///< Served at tier-2 resolution.
        bool pipeline_drop = false; ///< Typed FrameDropped/other.
        int attempts = 1;     ///< Dispatch attempts incl. this one.
        bool first_dispatch = true; ///< Run the functional pass.
    };

    /** One cross-session batch bound to an idle chip. */
    struct Batch
    {
        int chip = -1;
        std::vector<size_t> items; ///< Indices into the tick's
                                   ///  dispatched frames.
    };

    /** A frame riding a chip until its completion timestamp. */
    struct InFlightFrame
    {
        int session = -1;
        FrameTicket ticket;
        bool refresh = false;
        bool degraded_res = false;
        bool pipeline_drop = false;
        int attempts = 1;
    };

    /** The batch occupying one chip (at most one per chip). */
    struct InFlightBatch
    {
        bool active = false;
        long long completion_us = 0;
        std::vector<InFlightFrame> frames; ///< Pooled storage.
    };

    /** A frame whose chip failed, waiting out its backoff. */
    struct RetryFrame
    {
        InFlightFrame frame;
        long long eligible_us = 0; ///< Earliest re-dispatch time.
    };

    Session &sessionRef(int id);
    const Session &sessionRef(int id) const;

    /** Run one scheduler tick at virtual_now_. */
    void runTick();

    /** Abort the batch on a failed chip: requeue or shed frames. */
    void abortInFlight(int chip, long long now_us);

    /** Finalize in-flight batches due by @p now_us, in
     *  (completion, chip) order. With @p force, finalize all. */
    void finalizeDue(long long now_us, bool force = false);

    /** Record one finalized batch's frames into session metrics. */
    void finalizeBatch(int chip);

    /** This tick's raw pressure signal for the health controller. */
    FleetSignal fleetSignal() const;

    /** Shed every queued + retrying frame (dead fleet / stop). */
    void shedPending(DropReason reason);

    /** True when any active session still has queued frames. */
    bool anyQueued() const;

    /** True while any chip carries an unfinalized batch. */
    bool anyInFlight() const;

    ServingConfig cfg_;
    const dataset::SyntheticEyeRenderer &renderer_;
    eyetrack::RidgeGazeEstimator trained_;
    VirtualAccelPool pool_;
    FleetHealthController health_;
    ThreadPool sched_pool_;
    std::vector<std::unique_ptr<Session>> sessions_;
    long long virtual_now_ = 0;
    long long next_tick_us_ = 0;
    long long last_completion_us_ = 0;
    long long rejected_sessions_ = 0;
    long long closed_sessions_ = 0;
    bool stopped_ = false;

    // Failover state.
    std::vector<InFlightBatch> inflight_; ///< One slot per chip.
    std::vector<RetryFrame> retry_;       ///< Backoff queue; bounded
                                          ///  by frames in flight at
                                          ///  failure times.
    long long chip_failures_ = 0;
    long long chip_rejoins_ = 0;
    long long lanes_retired_ = 0;
    StreamingHistogram failover_latency_hist_{1.0, 1e8};
    std::vector<CompletionRecord> completion_log_;
    long long completion_log_dropped_ = 0;

    // Tick scratch, reused across runTick() calls so the scheduler's
    // serial phases allocate nothing in steady state. Pooled entries
    // (batches_, by_session_) keep their inner vectors' capacity and
    // are bounded by num_batches_ / num_groups_ each tick.
    std::vector<PendingFrame> dispatched_;
    std::vector<Batch> batches_;
    size_t num_batches_ = 0;
    std::vector<char> chip_taken_;
    std::vector<double> costs_;
    std::vector<std::pair<int, std::vector<size_t>>> by_session_;
    size_t num_groups_ = 0;
    std::vector<size_t> retry_pick_; ///< Eligible retries this tick.
};

} // namespace serve
} // namespace eyecod

#endif // EYECOD_SERVE_ENGINE_H
