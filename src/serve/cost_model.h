/**
 * @file
 * Estimator-backed serving cost model: derives the per-session
 * ServiceModel and the reduced-resolution billing factor from the
 * dse/ analytical estimator instead of the engine's hardcoded
 * assumptions (DESIGN.md section 14.4).
 *
 * In the default PartialTimeMultiplex orchestration the estimator's
 * schedule aggregates are bit-identical to the orchestrator's, so
 * estimatorServiceModel() returns a ServiceModel bitwise equal to
 * deriveServiceModel() — swapping the cost model in leaves every
 * existing serving bench output unchanged (gated by
 * bench_dse_pareto). What DOES change under CostModelKind::
 * DseEstimator is the tier-2 resolution billing: the hardcoded 0.6
 * multiplier is replaced by the estimator's predicted
 * half-resolution / full-resolution amortized frame-cost ratio for
 * the configured pipeline and hardware.
 */

#ifndef EYECOD_SERVE_COST_MODEL_H
#define EYECOD_SERVE_COST_MODEL_H

#include "serve/virtual_accel.h"

namespace eyecod {
namespace serve {

/** Where the engine's per-frame service costs come from. */
enum class CostModelKind : int {
    /** Cycle-level orchestrator schedule (legacy default). */
    Schedule = 0,
    /** dse/ analytical estimator (admission/placement cost model). */
    DseEstimator,
};

/**
 * ServiceModel from the analytical estimator: same derivation shape
 * as deriveServiceModel() (full pipeline for the amortized and peak
 * frames, per-frame workloads only for the steady gaze frame), with
 * dse::estimateSchedule() predicting the schedule aggregates instead
 * of running the orchestrator. Bitwise equal to deriveServiceModel()
 * for the PartialTimeMultiplex and TimeMultiplex orchestrations.
 */
[[nodiscard]] Result<ServiceModel> estimatorServiceModel(
    const accel::PipelineWorkloadConfig &workload,
    const accel::HwConfig &hw);

/**
 * Predicted tier-2 billing factor: the ratio of the amortized frame
 * cost of the half-resolution pipeline (scene, sensor, and
 * segmentation extents halved; the gaze ROI is resolution-independent
 * by construction) to the full-resolution pipeline, clamped to
 * (0, 1]. Replaces ServingConfig::resolution_cost_factor under
 * CostModelKind::DseEstimator.
 */
[[nodiscard]] Result<double> estimatorResolutionCostFactor(
    const accel::PipelineWorkloadConfig &workload,
    const accel::HwConfig &hw);

} // namespace serve
} // namespace eyecod

#endif // EYECOD_SERVE_COST_MODEL_H
