/**
 * @file
 * One user session inside the serving engine: a private
 * core::EyeCoDSystem (predict-then-focus pipeline + degradation FSM
 * + health counters), the session's bounded frame queue, and its
 * serving metrics.
 *
 * Sessions own no threads. The engine's scheduler dispatches a
 * session's frames strictly in order and at most one scheduler chunk
 * touches a session per tick, so per-session state needs no locking
 * and the functional gaze stream is bitwise independent of the
 * scheduler thread count.
 */

#ifndef EYECOD_SERVE_SESSION_H
#define EYECOD_SERVE_SESSION_H

#include <memory>
#include <vector>

#include "common/stats.h"
#include "core/eyecod.h"
#include "serve/frame_queue.h"

namespace eyecod {
namespace serve {

/** Serving-side per-session counters and latency statistics. */
struct SessionMetrics
{
    long long submitted = 0;      ///< Frames pushed at the queue.
    long long completed = 0;      ///< Frames served to completion.
    /** Total shed frames, every reason (the accounting identity
     *  submitted == completed + queue_drops spans all shedding). */
    long long queue_drops = 0;
    // queue_drops broken out by DropReason:
    long long drops_backpressure = 0;   ///< Drop-oldest eviction.
    long long drops_shed_on_close = 0;  ///< Session close / stop.
    long long drops_rate_downgrade = 0; ///< Tier-3 rate shedding.
    long long drops_failover = 0;       ///< Retries exhausted.
    long long pipeline_drops = 0; ///< Served frames the pipeline
                                  ///  reported as FrameDropped.
    long long deadline_misses = 0; ///< Completions past deadline.
    long long max_queue_depth = 0; ///< Deepest backlog observed.
    /** Completions that survived >= 1 chip failure (re-dispatched). */
    long long redispatched_frames = 0;
    /** Frames served at tier-2 reduced resolution. */
    long long degraded_res_frames = 0;
    /** Drops whose records no longer fit the bounded drop log. */
    long long drop_log_overflow = 0;
    // Hot-path allocation accounting (alloc hooks; zero without
    // them). "Steady" frames are served gaze-only frames — no ROI
    // refresh, no drop — which the memory spine requires to perform
    // zero heap allocations; refresh/dropped frames are reported
    // separately since segmentation allocates per call by design.
    long long steady_frames = 0;  ///< Served frames, no ROI refresh.
    long long steady_allocs = 0;  ///< Heap allocations on those.
    long long refresh_frames = 0; ///< Refresh or dropped frames.
    long long refresh_allocs = 0; ///< Heap allocations on those.
    RunningStat latency_us;       ///< Completion - arrival.
    /** Streaming p50/p95/p99 of frame latency (microseconds). */
    StreamingHistogram latency_hist{1.0, 1e8};
    /** Shed frames, in drop order (replayable drop decisions).
     *  Bounded: Session::recordDrop caps it and counts overflow. */
    std::vector<DropRecord> drop_log;
};

/**
 * Aggregated per-session health: serving-side counters plus the
 * wrapped system's pipeline/accelerator health report.
 */
struct SessionHealth
{
    SessionMetrics metrics;
    core::HealthReport pipeline; ///< From EyeCoDSystem::healthReport.
    bool active = false;         ///< Still admitted (not closed).
};

/**
 * One admitted user session.
 */
class Session
{
  public:
    /**
     * @param id engine-assigned session id.
     * @param cfg per-session system configuration (pipeline flavour,
     *        extents; the accelerator configs ride along unused by
     *        the functional path).
     * @param trained gaze estimator fitted on the prototype
     *        pipeline; copied so sessions never retrain.
     * @param queue_capacity bounded frame queue depth.
     * @param record_gaze keep the emitted gaze stream for
     *        determinism checks (tests) when true.
     * @param drop_log_cap bound on the per-session drop log; records
     *        past the cap are counted in drop_log_overflow instead
     *        of growing the log (detlint R8's concern made real).
     */
    Session(int id, const core::SystemConfig &cfg,
            const eyetrack::RidgeGazeEstimator &trained,
            size_t queue_capacity, bool record_gaze,
            size_t drop_log_cap = 4096);

    /** Engine-assigned id. */
    int id() const { return id_; }

    /** True until closeSession(). */
    bool active() const { return active_; }
    /** Mark the session closed. */
    void deactivate() { active_ = false; }

    /** The session's bounded frame queue. */
    BoundedFrameQueue &queue() { return queue_; }
    const BoundedFrameQueue &queue() const { return queue_; }

    /**
     * Serve one dispatched frame functionally (render + pipeline)
     * and return the typed outcome. Called by exactly one scheduler
     * chunk at a time.
     *
     * With @p degraded_resolution (degradation tier >= 2) the scene
     * round-trips through a half-linear-resolution buffer on the
     * zero-copy resizeBilinearInto path before entering the fixed-
     * extent pipeline: the gaze quality cost of serving cheaper
     * frames is modelled functionally, not just in the timing.
     */
    Result<core::GazeSample> serveFrame(
        const dataset::SyntheticEyeRenderer &renderer,
        const FrameTicket &ticket, bool degraded_resolution = false);

    /**
     * Account one shed frame: total + per-reason counters, and the
     * bounded drop log (overflow counted, never grown past the cap).
     */
    void recordDrop(const DropRecord &record);

    /** Serving metrics (mutated by the engine's serial sections). */
    SessionMetrics &metrics() { return metrics_; }
    const SessionMetrics &metrics() const { return metrics_; }

    /** Combined serving + pipeline health. */
    SessionHealth health() const;

    /** Emitted gaze stream (empty unless record_gaze). */
    const std::vector<dataset::GazeVec> &gazeLog() const
    {
        return gaze_log_;
    }

    /** Pooling stats of the session pipeline's frame arena. */
    const BufferArena::Stats &arenaStats() const
    {
        return system_.arenaStats();
    }

    /**
     * Serialize the session's full serve-time state: liveness,
     * metrics (counters, latency stat + histogram, bounded drop
     * log), gaze stream (record_gaze only), the wrapped system's
     * pipeline FSM, and the queued frame tickets.
     */
    void saveSnapshot(snap::SnapshotWriter &w) const;

    /**
     * Restore into a session constructed with the same id and
     * configuration (the engine rebuilds sessions from config before
     * restoring). Typed errors on any mismatch or corrupt field.
     */
    [[nodiscard]] Status restoreSnapshot(snap::SnapshotReader &r);

  private:
    int id_;
    bool active_ = true;
    bool record_gaze_;
    size_t drop_log_cap_;
    core::EyeCoDSystem system_;
    BoundedFrameQueue queue_;
    SessionMetrics metrics_;
    dataset::GazeVec last_gaze_{0, 0, 1};
    std::vector<dataset::GazeVec> gaze_log_;
    /** Persistent render target: renderInto() reuses its storage, so
     *  steady-state serving allocates nothing for the scene. */
    // detlint:allow(R12) persistent render target, repainted every frame.
    dataset::EyeSample sample_;
    /** Tier-2 scratch: half-resolution + restored scenes. Both reuse
     *  their storage, so degraded steady frames stay zero-alloc after
     *  the first downgrade transition. */
    // detlint:allow(R12) tier-2 scratch, repainted before first use.
    Image lowres_;
    // detlint:allow(R12) tier-2 scratch, repainted before first use.
    Image restored_;
    /** Previous frame's resolution mode, to classify downgrade /
     *  recover transition frames out of the steady-alloc bucket. */
    bool last_degraded_ = false;
};

} // namespace serve
} // namespace eyecod

#endif // EYECOD_SERVE_SESSION_H
