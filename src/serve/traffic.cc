#include "serve/traffic.h"

#include <algorithm>

#include "common/logging.h"

namespace eyecod {
namespace serve {

namespace {

/** splitmix64 mix of a 64-bit state (public-domain constant set). */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Uniform double in [0, 1) from (seed, session, frame). */
double
jitterUnit(uint64_t seed, int session, long frame)
{
    const uint64_t h = mix64(
        mix64(seed ^ (uint64_t(session) << 32)) ^ uint64_t(frame));
    return double(h >> 11) * 0x1.0p-53;
}

} // namespace

std::vector<SessionTraffic>
makeTraffic(const dataset::SyntheticEyeRenderer &renderer,
            const TrafficConfig &cfg)
{
    eyecod_assert(cfg.sessions >= 1, "traffic needs >= 1 session");
    eyecod_assert(cfg.frame_interval_us >= 1,
                  "frame interval must be positive");
    eyecod_assert(cfg.arrival_jitter >= 0.0 &&
                      cfg.arrival_jitter <= 0.5,
                  "arrival jitter %g outside [0, 0.5]",
                  cfg.arrival_jitter);

    std::vector<SessionTraffic> out;
    out.reserve(size_t(cfg.sessions));
    for (int s = 0; s < cfg.sessions; ++s) {
        SessionTraffic traffic;
        traffic.user_seed = mix64(cfg.seed ^ uint64_t(s));
        traffic.join_us = (long long)(s) * cfg.churn_stagger_us;

        long frames = cfg.frames_per_session;
        if (cfg.leave_every > 0 && (s + 1) % cfg.leave_every == 0)
            frames = std::max<long>(1, frames / 2);

        dataset::TrajectoryConfig tc = cfg.trajectory;
        tc.frames = int(frames);
        tc.fps = 1e6 / double(cfg.frame_interval_us);
        const auto traj =
            makeTrajectory(renderer, traffic.user_seed, tc);

        traffic.frames.reserve(size_t(frames));
        long long prev_arrival = traffic.join_us - 1;
        for (long f = 0; f < frames; ++f) {
            FrameTicket t;
            t.frame_index = f;
            t.params = traj[size_t(f)];
            const double centered =
                jitterUnit(cfg.seed, s, f) - 0.5; // [-0.5, 0.5)
            const double jitter_us = 2.0 * cfg.arrival_jitter *
                                     centered *
                                     double(cfg.frame_interval_us);
            t.arrival_us = traffic.join_us +
                           f * cfg.frame_interval_us +
                           (long long)(jitter_us);
            // Arrivals within a session are strictly monotone (the
            // sensor cannot deliver frame k+1 before frame k).
            t.arrival_us = std::max(t.arrival_us, prev_arrival + 1);
            prev_arrival = t.arrival_us;
            traffic.frames.push_back(t);
        }
        // A churned session leaves one frame interval after its last
        // arrival, so runTrace() closes it mid-run while its tail
        // frames may still sit queued or in flight.
        if (frames < cfg.frames_per_session)
            traffic.leave_us = prev_arrival + cfg.frame_interval_us;
        out.push_back(std::move(traffic));
    }
    return out;
}

} // namespace serve
} // namespace eyecod
