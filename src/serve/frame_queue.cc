#include "serve/frame_queue.h"

#include "common/logging.h"

namespace eyecod {
namespace serve {

const char *
dropReasonName(DropReason reason)
{
    switch (reason) {
    case DropReason::Backpressure:
        return "backpressure";
    case DropReason::ShedOnClose:
        return "shed_on_close";
    case DropReason::RateDowngrade:
        return "rate_downgrade";
    case DropReason::Failover:
        return "failover";
    }
    return "unknown";
}

BoundedFrameQueue::BoundedFrameQueue(size_t capacity)
    : ring_(capacity), capacity_(capacity)
{
    eyecod_assert(capacity >= 1,
                  "frame queue needs capacity >= 1, got %zu",
                  capacity);
}

std::optional<DropRecord>
BoundedFrameQueue::push(const FrameTicket &ticket, long long now_us)
{
    MutexLock lock(mutex_);
    ++pushed_;
    std::optional<DropRecord> shed;
    if (count_ >= capacity_) {
        // Drop-oldest backpressure: the head slot is recycled in
        // place — it becomes the tail slot the incoming ticket is
        // written into below. No heap traffic.
        const FrameTicket &oldest = ring_[head_];
        shed = DropRecord{oldest.frame_index, oldest.arrival_us,
                          now_us};
        head_ = (head_ + 1) % capacity_;
        --count_;
        ++dropped_;
    }
    ring_[(head_ + count_) % capacity_] = ticket;
    ++count_;
    max_depth_ = std::max(max_depth_, count_);
    return shed;
}

std::optional<long long>
BoundedFrameQueue::frontArrival() const
{
    MutexLock lock(mutex_);
    if (count_ == 0)
        return std::nullopt;
    return ring_[head_].arrival_us;
}

bool
BoundedFrameQueue::pop(FrameTicket *out)
{
    MutexLock lock(mutex_);
    if (count_ == 0)
        return false;
    *out = ring_[head_];
    head_ = (head_ + 1) % capacity_;
    --count_;
    return true;
}

size_t
BoundedFrameQueue::clear()
{
    MutexLock lock(mutex_);
    const size_t n = count_;
    count_ = 0;
    dropped_ += n;
    return n;
}

size_t
BoundedFrameQueue::size() const
{
    MutexLock lock(mutex_);
    return count_;
}

uint64_t
BoundedFrameQueue::totalPushed() const
{
    MutexLock lock(mutex_);
    return pushed_;
}

uint64_t
BoundedFrameQueue::totalDropped() const
{
    MutexLock lock(mutex_);
    return dropped_;
}

size_t
BoundedFrameQueue::maxDepth() const
{
    MutexLock lock(mutex_);
    return max_depth_;
}

namespace {
constexpr uint32_t kFrameQueueTag = 0x46515531; // "FQU1"
}

void
writeTicket(snap::SnapshotWriter &w, const FrameTicket &ticket)
{
    w.i64(ticket.frame_index);
    w.i64(ticket.arrival_us);
    w.f64(ticket.params.yaw_deg);
    w.f64(ticket.params.pitch_deg);
    w.f64(ticket.params.eye_cy);
    w.f64(ticket.params.eye_cx);
    w.f64(ticket.params.eye_radius);
    w.f64(ticket.params.pupil_scale);
    w.f64(ticket.params.eyelid_open);
}

Result<FrameTicket>
readTicket(snap::SnapshotReader &r)
{
    auto frame_index = r.i64();
    auto arrival = r.i64();
    auto yaw = r.f64();
    auto pitch = r.f64();
    auto eye_cy = r.f64();
    auto eye_cx = r.f64();
    auto eye_radius = r.f64();
    auto pupil_scale = r.f64();
    auto eyelid_open = r.f64();
    if (!eyelid_open.ok())
        return eyelid_open.status();
    FrameTicket t;
    t.frame_index = long(frame_index.value());
    t.arrival_us = arrival.value();
    t.params.yaw_deg = yaw.value();
    t.params.pitch_deg = pitch.value();
    t.params.eye_cy = eye_cy.value();
    t.params.eye_cx = eye_cx.value();
    t.params.eye_radius = eye_radius.value();
    t.params.pupil_scale = pupil_scale.value();
    t.params.eyelid_open = eyelid_open.value();
    return t;
}

void
writeDropRecord(snap::SnapshotWriter &w, const DropRecord &rec)
{
    w.i64(rec.frame_index);
    w.i64(rec.arrival_us);
    w.i64(rec.dropped_us);
    w.u8(uint8_t(int(rec.reason)));
}

Result<DropRecord>
readDropRecord(snap::SnapshotReader &r)
{
    auto frame_index = r.i64();
    auto arrival = r.i64();
    auto dropped = r.i64();
    auto reason = r.u8();
    if (!reason.ok())
        return reason.status();
    if (reason.value() >= kNumDropReasons)
        return Status::error(ErrorCode::CorruptSnapshot,
                             "drop reason %d out of range",
                             int(reason.value()));
    DropRecord rec;
    rec.frame_index = long(frame_index.value());
    rec.arrival_us = arrival.value();
    rec.dropped_us = dropped.value();
    rec.reason = DropReason(reason.value());
    return rec;
}

void
BoundedFrameQueue::saveSnapshot(snap::SnapshotWriter &w) const
{
    MutexLock lock(mutex_);
    w.tag(kFrameQueueTag);
    w.u64(capacity_);
    w.u64(count_);
    for (size_t i = 0; i < count_; ++i)
        writeTicket(w, ring_[(head_ + i) % capacity_]);
    w.u64(pushed_);
    w.u64(dropped_);
    w.u64(max_depth_);
}

Status
BoundedFrameQueue::restoreSnapshot(snap::SnapshotReader &r)
{
    MutexLock lock(mutex_);
    Status fence = r.expectTag(kFrameQueueTag);
    if (!fence.isOk())
        return fence;
    auto capacity = r.u64();
    if (!capacity.ok())
        return capacity.status();
    if (capacity.value() != capacity_)
        return Status::error(ErrorCode::CorruptSnapshot,
                             "queue capacity %llu != configured %zu",
                             (unsigned long long)capacity.value(),
                             capacity_);
    auto count = r.count(capacity_);
    if (!count.ok())
        return count.status();
    head_ = 0;
    count_ = size_t(count.value());
    for (size_t i = 0; i < count_; ++i) {
        auto t = readTicket(r);
        if (!t.ok())
            return t.status();
        ring_[i] = t.value();
    }
    auto pushed = r.u64();
    auto dropped = r.u64();
    auto max_depth = r.u64();
    if (!max_depth.ok())
        return max_depth.status();
    pushed_ = pushed.value();
    dropped_ = dropped.value();
    max_depth_ = size_t(max_depth.value());
    return Status::ok();
}

} // namespace serve
} // namespace eyecod
