#include "serve/frame_queue.h"

#include "common/logging.h"

namespace eyecod {
namespace serve {

BoundedFrameQueue::BoundedFrameQueue(size_t capacity)
    : capacity_(capacity)
{
    eyecod_assert(capacity >= 1,
                  "frame queue needs capacity >= 1, got %zu",
                  capacity);
}

std::optional<DropRecord>
BoundedFrameQueue::push(const FrameTicket &ticket, long long now_us)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++pushed_;
    std::optional<DropRecord> shed;
    if (ring_.size() >= capacity_) {
        const FrameTicket &oldest = ring_.front();
        shed = DropRecord{oldest.frame_index, oldest.arrival_us,
                          now_us};
        ring_.pop_front();
        ++dropped_;
    }
    ring_.push_back(ticket);
    max_depth_ = std::max(max_depth_, ring_.size());
    return shed;
}

std::optional<long long>
BoundedFrameQueue::frontArrival() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (ring_.empty())
        return std::nullopt;
    return ring_.front().arrival_us;
}

bool
BoundedFrameQueue::pop(FrameTicket *out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (ring_.empty())
        return false;
    *out = ring_.front();
    ring_.pop_front();
    return true;
}

size_t
BoundedFrameQueue::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    const size_t n = ring_.size();
    ring_.clear();
    dropped_ += n;
    return n;
}

size_t
BoundedFrameQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.size();
}

uint64_t
BoundedFrameQueue::totalPushed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return pushed_;
}

uint64_t
BoundedFrameQueue::totalDropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

size_t
BoundedFrameQueue::maxDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return max_depth_;
}

} // namespace serve
} // namespace eyecod
