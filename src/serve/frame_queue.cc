#include "serve/frame_queue.h"

#include "common/logging.h"

namespace eyecod {
namespace serve {

const char *
dropReasonName(DropReason reason)
{
    switch (reason) {
    case DropReason::Backpressure:
        return "backpressure";
    case DropReason::ShedOnClose:
        return "shed_on_close";
    case DropReason::RateDowngrade:
        return "rate_downgrade";
    case DropReason::Failover:
        return "failover";
    }
    return "unknown";
}

BoundedFrameQueue::BoundedFrameQueue(size_t capacity)
    : ring_(capacity), capacity_(capacity)
{
    eyecod_assert(capacity >= 1,
                  "frame queue needs capacity >= 1, got %zu",
                  capacity);
}

std::optional<DropRecord>
BoundedFrameQueue::push(const FrameTicket &ticket, long long now_us)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++pushed_;
    std::optional<DropRecord> shed;
    if (count_ >= capacity_) {
        // Drop-oldest backpressure: the head slot is recycled in
        // place — it becomes the tail slot the incoming ticket is
        // written into below. No heap traffic.
        const FrameTicket &oldest = ring_[head_];
        shed = DropRecord{oldest.frame_index, oldest.arrival_us,
                          now_us};
        head_ = (head_ + 1) % capacity_;
        --count_;
        ++dropped_;
    }
    ring_[(head_ + count_) % capacity_] = ticket;
    ++count_;
    max_depth_ = std::max(max_depth_, count_);
    return shed;
}

std::optional<long long>
BoundedFrameQueue::frontArrival() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0)
        return std::nullopt;
    return ring_[head_].arrival_us;
}

bool
BoundedFrameQueue::pop(FrameTicket *out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0)
        return false;
    *out = ring_[head_];
    head_ = (head_ + 1) % capacity_;
    --count_;
    return true;
}

size_t
BoundedFrameQueue::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    const size_t n = count_;
    count_ = 0;
    dropped_ += n;
    return n;
}

size_t
BoundedFrameQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

uint64_t
BoundedFrameQueue::totalPushed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return pushed_;
}

uint64_t
BoundedFrameQueue::totalDropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

size_t
BoundedFrameQueue::maxDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return max_depth_;
}

} // namespace serve
} // namespace eyecod
