#include "serve/engine.h"

#include <algorithm>

#include "common/logging.h"

namespace eyecod {
namespace serve {

namespace {

/** Derive the timing model at construction (trusted config path). */
ServiceModel
deriveModelOrDie(const ServingConfig &cfg)
{
    Result<ServiceModel> model =
        cfg.cost_model == CostModelKind::DseEstimator
            ? estimatorServiceModel(cfg.system.workload,
                                    cfg.system.hw)
            : deriveServiceModel(cfg.system.workload, cfg.system.hw);
    if (!model.ok())
        panic("serving engine: %s",
              model.status().toString().c_str());
    return model.value();
}

/** Pressure reported while demand exists but no chip survives. */
constexpr double kDeadFleetPressure = 1e9;

} // namespace

ServingEngine::ServingEngine(
    ServingConfig cfg, const eyetrack::RidgeGazeEstimator &trained,
    const dataset::SyntheticEyeRenderer &renderer)
    : cfg_(std::move(cfg)), renderer_(renderer), trained_(trained),
      pool_(cfg_.virtual_chips, deriveModelOrDie(cfg_),
            cfg_.batch_amortized_fraction),
      health_(cfg_.degradation),
      sched_pool_(cfg_.scheduler_threads)
{
    eyecod_assert(cfg_.max_batch >= 1, "max_batch must be >= 1");
    eyecod_assert(cfg_.tick_us >= 1, "tick_us must be >= 1");
    eyecod_assert(cfg_.frame_interval_us >= 1,
                  "frame_interval_us must be >= 1");
    eyecod_assert(cfg_.deadline_us >= 1, "deadline_us must be >= 1");
    eyecod_assert(cfg_.max_sessions >= 1,
                  "max_sessions must be >= 1");
    eyecod_assert(cfg_.failover.max_retries >= 0,
                  "max_retries must be >= 0");
    eyecod_assert(cfg_.failover.backoff_base_us >= 1,
                  "backoff_base_us must be >= 1");
    eyecod_assert(cfg_.failover.backoff_cap_us >=
                      cfg_.failover.backoff_base_us,
                  "backoff cap below backoff base");
    eyecod_assert(cfg_.rate_downgrade_stride >= 2,
                  "rate_downgrade_stride must be >= 2");
    if (cfg_.cost_model == CostModelKind::DseEstimator) {
        // Replace the hardcoded tier-2 billing assumption with the
        // estimator's prediction for this pipeline and hardware.
        Result<double> factor = estimatorResolutionCostFactor(
            cfg_.system.workload, cfg_.system.hw);
        if (!factor.ok())
            panic("serving engine: %s",
                  factor.status().toString().c_str());
        cfg_.resolution_cost_factor = factor.value();
    }
    eyecod_assert(cfg_.resolution_cost_factor > 0.0 &&
                      cfg_.resolution_cost_factor <= 1.0,
                  "resolution_cost_factor outside (0, 1]");
    // Lane retirements re-derive their degraded timing models on the
    // real hardware config, same path as accel::retireLanes.
    pool_.configureHardware(cfg_.system.workload, cfg_.system.hw);
    pool_.setFaultSchedule(cfg_.failover.chip_faults);
    inflight_.resize(size_t(cfg_.virtual_chips));
    next_tick_us_ = cfg_.tick_us;
}

double
ServingEngine::projectedUtilization(int additional_sessions) const
{
    const double demand =
        double(activeSessions() + additional_sessions) *
        pool_.model().amortized_frame_us;
    // Capacity reflects the fleet as it stands: failed chips are
    // gone, lane-retired chips count fractionally.
    const double capacity = double(cfg_.frame_interval_us) *
                            pool_.effectiveCapacity();
    if (capacity > 0.0)
        return demand / capacity;
    return demand > 0.0 ? kDeadFleetPressure : 0.0;
}

Result<int>
ServingEngine::openSession()
{
    if (stopped_)
        return Status::error(ErrorCode::InvalidArgument,
                             "engine is stopped");
    if (health_.admissionClosed()) {
        ++rejected_sessions_;
        return Status::error(
            ErrorCode::Overloaded,
            "degradation ladder at tier %d (admission closed)",
            health_.tier());
    }
    if (activeSessions() >= cfg_.max_sessions) {
        ++rejected_sessions_;
        return Status::error(
            ErrorCode::Overloaded,
            "session cap reached (%d active, cap %d)",
            activeSessions(), cfg_.max_sessions);
    }
    const double projected = projectedUtilization(1);
    if (projected > cfg_.admission_max_utilization) {
        ++rejected_sessions_;
        return Status::error(
            ErrorCode::Overloaded,
            "projected utilization %.2f exceeds admission bound "
            "%.2f (%d active sessions, %d alive chips)",
            projected, cfg_.admission_max_utilization,
            activeSessions(), pool_.aliveChips());
    }
    const int id = int(sessions_.size());
    // detlint:allow(R8) control plane, bounded by max_sessions above
    sessions_.push_back(std::make_unique<Session>(
        id, cfg_.system, trained_, cfg_.queue_capacity,
        cfg_.record_gaze, cfg_.drop_log_cap));
    return id;
}

Status
ServingEngine::closeSession(int id)
{
    if (id < 0 || id >= sessionCount())
        return Status::error(ErrorCode::InvalidArgument,
                             "unknown session %d", id);
    Session &sess = *sessions_[size_t(id)];
    if (!sess.active())
        return Status::error(ErrorCode::InvalidArgument,
                             "session %d already closed", id);
    // Shed whatever is still queued — a closed session must not pin
    // scheduler capacity.
    FrameTicket ticket;
    while (sess.queue().pop(&ticket))
        sess.recordDrop(DropRecord{ticket.frame_index,
                                   ticket.arrival_us, virtual_now_,
                                   DropReason::ShedOnClose});
    // Pending failover retries of this session are equally moot.
    size_t out = 0;
    for (size_t i = 0; i < retry_.size(); ++i) {
        if (retry_[i].frame.session == id) {
            sess.recordDrop(DropRecord{
                retry_[i].frame.ticket.frame_index,
                retry_[i].frame.ticket.arrival_us, virtual_now_,
                DropReason::ShedOnClose});
            continue;
        }
        if (out != i)
            retry_[out] = retry_[i];
        ++out;
    }
    retry_.resize(out);
    // Frames already in flight on a chip still finalize into the
    // closed session's metrics (the work was done).
    sess.deactivate();
    ++closed_sessions_;
    return Status::ok();
}

Status
ServingEngine::submitFrame(int id, const FrameTicket &ticket)
{
    if (stopped_)
        return Status::error(ErrorCode::InvalidArgument,
                             "engine is stopped");
    if (id < 0 || id >= sessionCount())
        return Status::error(ErrorCode::InvalidArgument,
                             "unknown session %d", id);
    Session &sess = *sessions_[size_t(id)];
    if (!sess.active())
        return Status::error(ErrorCode::InvalidArgument,
                             "session %d is closed", id);
    SessionMetrics &m = sess.metrics();
    ++m.submitted;
    // Tier 3: refresh-rate downgrade. Every stride-th frame is shed
    // at admission — cheaper than queueing work the fleet cannot
    // serve, and spread evenly across every session (fairness). The
    // submit still succeeds: the producer is being paced, not
    // failed.
    if (health_.rateDowngraded() &&
        ticket.frame_index % cfg_.rate_downgrade_stride ==
            cfg_.rate_downgrade_stride - 1) {
        sess.recordDrop(DropRecord{ticket.frame_index,
                                   ticket.arrival_us, virtual_now_,
                                   DropReason::RateDowngrade});
        return Status::ok();
    }
    const std::optional<DropRecord> shed =
        sess.queue().push(ticket, virtual_now_);
    if (shed)
        sess.recordDrop(*shed);
    m.max_queue_depth = std::max(
        m.max_queue_depth, (long long)(sess.queue().size()));
    return Status::ok();
}

void
ServingEngine::advanceTo(long long target_us)
{
    while (next_tick_us_ <= target_us) {
        virtual_now_ = next_tick_us_;
        next_tick_us_ += cfg_.tick_us;
        runTick();
    }
    virtual_now_ = std::max(virtual_now_, target_us);
}

bool
ServingEngine::anyQueued() const
{
    for (const auto &sess : sessions_)
        if (sess->active() && !sess->queue().empty())
            return true;
    return false;
}

bool
ServingEngine::anyInFlight() const
{
    for (const InFlightBatch &b : inflight_)
        if (b.active)
            return true;
    return false;
}

void
ServingEngine::drain()
{
    while (anyQueued() || !retry_.empty() || anyInFlight() ||
           !pool_.allIdle(virtual_now_)) {
        if (!pool_.anyAlive() && !pool_.hasPendingEvents() &&
            !anyInFlight()) {
            // The whole fleet is down and no rejoin is scheduled:
            // pending work can never be served. Shed it so the drain
            // terminates instead of ticking forever.
            shedPending(DropReason::Failover);
            break;
        }
        virtual_now_ = next_tick_us_;
        next_tick_us_ += cfg_.tick_us;
        runTick();
    }
}

void
ServingEngine::shedPending(DropReason reason)
{
    for (auto &sess : sessions_) {
        if (!sess->active())
            continue;
        FrameTicket ticket;
        while (sess->queue().pop(&ticket))
            sess->recordDrop(DropRecord{ticket.frame_index,
                                        ticket.arrival_us,
                                        virtual_now_, reason});
    }
    for (const RetryFrame &r : retry_)
        sessions_[size_t(r.frame.session)]->recordDrop(DropRecord{
            r.frame.ticket.frame_index, r.frame.ticket.arrival_us,
            virtual_now_, reason});
    retry_.clear();
}

void
ServingEngine::stop(bool drain_first)
{
    if (stopped_)
        return;
    if (drain_first) {
        drain();
    } else {
        // Work already on a chip was functionally served — finalize
        // it at its recorded completion time; everything still
        // waiting is shed.
        finalizeDue(virtual_now_, /*force=*/true);
        shedPending(DropReason::ShedOnClose);
    }
    sched_pool_.shutdown(drain_first);
    stopped_ = true;
}

FleetMetrics
ServingEngine::runTrace(const std::vector<SessionTraffic> &traffic)
{
    // Flatten the trace into a deterministic event order: joins
    // before frames before leaves at equal timestamps, then by trace
    // index.
    struct Event
    {
        long long t = 0;
        int kind = 0; ///< 0 = join, 1 = frame, 2 = leave.
        int trace = 0;
        long frame = 0;
    };
    std::vector<Event> events;
    for (size_t i = 0; i < traffic.size(); ++i) {
        events.push_back(Event{traffic[i].join_us, 0, int(i), 0});
        for (size_t f = 0; f < traffic[i].frames.size(); ++f)
            events.push_back(
                Event{traffic[i].frames[f].arrival_us, 1, int(i),
                      long(f)});
        if (traffic[i].leave_us >= 0)
            events.push_back(
                Event{traffic[i].leave_us, 2, int(i), 0});
    }
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  if (a.t != b.t)
                      return a.t < b.t;
                  if (a.kind != b.kind)
                      return a.kind < b.kind;
                  if (a.trace != b.trace)
                      return a.trace < b.trace;
                  return a.frame < b.frame;
              });

    std::vector<int> ids(traffic.size(), -1);
    for (const Event &ev : events) {
        advanceTo(ev.t);
        if (ev.kind == 0) {
            const Result<int> r = openSession();
            if (r.ok())
                ids[size_t(ev.trace)] = r.value();
            // Rejections are already counted by openSession; the
            // rejected user's frames are simply never submitted.
        } else if (ev.kind == 1 && ids[size_t(ev.trace)] >= 0) {
            // The session was admitted above and leaves only at its
            // scripted leave event, so a submit failure here is
            // engine state corruption, not load shedding.
            const Status st = submitFrame(
                ids[size_t(ev.trace)],
                traffic[size_t(ev.trace)].frames[size_t(ev.frame)]);
            eyecod_assert(st.isOk(), "runTraffic submit: %s",
                          st.toString().c_str());
        } else if (ev.kind == 2 && ids[size_t(ev.trace)] >= 0) {
            const Status st = closeSession(ids[size_t(ev.trace)]);
            eyecod_assert(st.isOk(), "runTraffic close: %s",
                          st.toString().c_str());
            ids[size_t(ev.trace)] = -1;
        }
    }
    drain();
    return fleetMetrics();
}

int
ServingEngine::activeSessions() const
{
    int n = 0;
    for (const auto &sess : sessions_)
        if (sess->active())
            ++n;
    return n;
}

Session &
ServingEngine::sessionRef(int id)
{
    eyecod_assert(id >= 0 && id < sessionCount(),
                  "session id %d out of range", id);
    return *sessions_[size_t(id)];
}

const Session &
ServingEngine::sessionRef(int id) const
{
    eyecod_assert(id >= 0 && id < sessionCount(),
                  "session id %d out of range", id);
    return *sessions_[size_t(id)];
}

const SessionMetrics &
ServingEngine::sessionMetrics(int id) const
{
    return sessionRef(id).metrics();
}

SessionHealth
ServingEngine::sessionHealth(int id) const
{
    SessionHealth h = sessionRef(id).health();
    core::FleetFailoverHealth &fleet = h.pipeline.fleet;
    fleet.chip_failures = chip_failures_;
    fleet.chip_rejoins = chip_rejoins_;
    fleet.lanes_retired = lanes_retired_;
    fleet.degradation_tier = health_.tier();
    fleet.tier_transitions = health_.transitions();
    for (const auto &sess : sessions_) {
        fleet.redispatched_frames +=
            sess->metrics().redispatched_frames;
        fleet.failover_drops += sess->metrics().drops_failover;
    }
    return h;
}

const std::vector<dataset::GazeVec> &
ServingEngine::sessionGazeLog(int id) const
{
    return sessionRef(id).gazeLog();
}

FleetSignal
ServingEngine::fleetSignal() const
{
    FleetSignal sig;
    // RAW demand pressure — nominal per-session load over surviving
    // capacity, NOT the post-degradation cost. The ladder must react
    // to capacity/population changes only; reacting to the load it
    // itself reduced would oscillate (see serve/health.h).
    const double demand = double(activeSessions()) *
                          pool_.model().amortized_frame_us;
    const double capacity = double(cfg_.frame_interval_us) *
                            pool_.effectiveCapacity();
    if (capacity > 0.0)
        sig.utilization = demand / capacity;
    else if (demand > 0.0)
        sig.utilization = kDeadFleetPressure;
    long long queued = (long long)retry_.size();
    long long cap = 0;
    for (const auto &sess : sessions_) {
        if (!sess->active())
            continue;
        queued += (long long)sess->queue().size();
        cap += (long long)sess->queue().capacity();
    }
    if (cap > 0)
        sig.queue_occupancy = double(queued) / double(cap);
    return sig;
}

void
ServingEngine::abortInFlight(int chip, long long now_us)
{
    InFlightBatch &b = inflight_[size_t(chip)];
    if (!b.active)
        return;
    for (const InFlightFrame &fr : b.frames) {
        Session &sess = *sessions_[size_t(fr.session)];
        if (!sess.active()) {
            // The session left while its frame rode the dead chip;
            // nobody is waiting for a re-dispatch.
            sess.recordDrop(DropRecord{fr.ticket.frame_index,
                                       fr.ticket.arrival_us, now_us,
                                       DropReason::ShedOnClose});
            continue;
        }
        if (fr.attempts > cfg_.failover.max_retries) {
            sess.recordDrop(DropRecord{fr.ticket.frame_index,
                                       fr.ticket.arrival_us, now_us,
                                       DropReason::Failover});
            continue;
        }
        // Capped exponential backoff in virtual time: attempt k
        // waits base * 2^(k-1), clamped to the cap.
        long long backoff = cfg_.failover.backoff_base_us;
        for (int a = 1;
             a < fr.attempts && backoff < cfg_.failover.backoff_cap_us;
             ++a)
            backoff *= 2;
        backoff = std::min(backoff, cfg_.failover.backoff_cap_us);
        retry_.push_back( // detlint:allow(R8) bounded by frames in
                          // flight at failure instants
            RetryFrame{fr, now_us + backoff});
    }
    b.active = false;
    b.frames.clear();
}

void
ServingEngine::finalizeBatch(int chip)
{
    InFlightBatch &b = inflight_[size_t(chip)];
    const long long completion = b.completion_us;
    last_completion_us_ = std::max(last_completion_us_, completion);
    for (const InFlightFrame &fr : b.frames) {
        SessionMetrics &m = sessions_[size_t(fr.session)]->metrics();
        ++m.completed;
        if (fr.pipeline_drop)
            ++m.pipeline_drops;
        const double latency =
            double(completion - fr.ticket.arrival_us);
        m.latency_us.add(latency);
        m.latency_hist.add(latency);
        const bool miss =
            completion > fr.ticket.arrival_us + cfg_.deadline_us;
        if (miss)
            ++m.deadline_misses;
        if (fr.attempts > 1) {
            ++m.redispatched_frames;
            failover_latency_hist_.add(latency);
        }
        if (cfg_.record_completions) {
            if (completion_log_.size() < cfg_.completion_log_cap)
                completion_log_.push_back( // detlint:allow(R8)
                                           // bounded by the cap
                    CompletionRecord{fr.session,
                                     fr.ticket.frame_index,
                                     fr.ticket.arrival_us,
                                     completion, latency,
                                     fr.attempts > 1, miss});
            else
                ++completion_log_dropped_;
        }
    }
    b.active = false;
    b.frames.clear();
}

void
ServingEngine::finalizeDue(long long now_us, bool force)
{
    // Finalize in deterministic (completion, chip) order so metric
    // streams replay bitwise regardless of dispatch history.
    for (;;) {
        int best = -1;
        for (int c = 0; c < int(inflight_.size()); ++c) {
            const InFlightBatch &b = inflight_[size_t(c)];
            if (!b.active)
                continue;
            if (!force && b.completion_us > now_us)
                continue;
            if (best < 0 ||
                b.completion_us <
                    inflight_[size_t(best)].completion_us)
                best = c;
        }
        if (best < 0)
            break;
        finalizeBatch(best);
    }
}

void
ServingEngine::runTick()
{
    const long long now = virtual_now_;

    // --- Phase 0 (serial): lifecycle. Batches whose completion has
    // passed finalize FIRST — a batch done by `now` beat any failure
    // at `now` — then scheduled chip events apply, surviving work on
    // failed chips goes to the retry queue, and the health
    // controller digests the new fleet shape.
    finalizeDue(now);
    const VirtualAccelPool::EventOutcome events =
        pool_.applyEventsUpTo(now);
    chip_failures_ += (long long)events.failed.size();
    chip_rejoins_ += (long long)events.rejoined.size();
    lanes_retired_ += events.lanes_retired;
    for (int chip : events.failed)
        abortInFlight(chip, now);
    health_.update(fleetSignal());
    const bool degraded_res_tick = health_.resolutionDowngraded();

    // --- Phase 1 (serial): form cross-session batches, one per idle
    // alive chip. Failover retries whose backoff elapsed go first
    // (they are the oldest work in the system), then ready queue
    // fronts in earliest-deadline order (uniform relative deadlines
    // => earliest arrival, ties by session id). Frames left behind
    // wait in their bounded queues — that is the backpressure path.
    // All scratch is member state reused tick over tick
    // (capacity-retaining clears), so a warm scheduler tick performs
    // no heap allocation.
    std::vector<PendingFrame> &dispatched = dispatched_;
    dispatched.clear();
    num_batches_ = 0;
    chip_taken_.assign(size_t(pool_.chips()), 0);
    std::vector<char> &chip_taken = chip_taken_;

    retry_pick_.clear();
    for (size_t i = 0; i < retry_.size(); ++i)
        if (retry_[i].eligible_us <= now)
            retry_pick_.push_back(i); // detlint:allow(R8) bounded by
                                      // the retry queue
    std::sort(retry_pick_.begin(), retry_pick_.end(),
              [this](size_t a, size_t b) {
                  const InFlightFrame &fa = retry_[a].frame;
                  const InFlightFrame &fb = retry_[b].frame;
                  if (fa.ticket.arrival_us != fb.ticket.arrival_us)
                      return fa.ticket.arrival_us <
                             fb.ticket.arrival_us;
                  if (fa.session != fb.session)
                      return fa.session < fb.session;
                  return fa.ticket.frame_index <
                         fb.ticket.frame_index;
              });
    size_t next_retry = 0;

    for (;;) {
        int chip = -1;
        for (int c = 0; c < pool_.chips(); ++c) {
            if (!chip_taken[size_t(c)] && pool_.alive(c) &&
                pool_.busyUntil(c) <= now) {
                chip = c;
                break;
            }
        }
        if (chip < 0)
            break;
        if (num_batches_ == batches_.size())
            batches_.emplace_back(); // detlint:allow(R8) pooled,
                                     // bounded by chip count
        Batch &batch = batches_[num_batches_];
        batch.chip = chip;
        batch.items.clear();
        for (int b = 0; b < cfg_.max_batch; ++b) {
            if (next_retry < retry_pick_.size()) {
                // Re-dispatch a failed-over frame: its functional
                // result already exists, only the timing re-bills.
                const InFlightFrame &src =
                    retry_[retry_pick_[next_retry]].frame;
                ++next_retry;
                PendingFrame pf;
                pf.session = src.session;
                pf.ticket = src.ticket;
                pf.refresh = src.refresh;
                pf.degraded_res = src.degraded_res;
                pf.pipeline_drop = src.pipeline_drop;
                pf.attempts = src.attempts + 1;
                pf.first_dispatch = false;
                pf.batch = int(num_batches_);
                batch.items.push_back( // detlint:allow(R8) pooled,
                                       // bounded by max_batch
                    dispatched.size());
                dispatched.push_back(pf);
                continue;
            }
            int best = -1;
            long long best_arrival = 0;
            for (size_t s = 0; s < sessions_.size(); ++s) {
                Session &sess = *sessions_[s];
                if (!sess.active())
                    continue;
                const auto arrival = sess.queue().frontArrival();
                if (!arrival || *arrival > now)
                    continue;
                if (best < 0 || *arrival < best_arrival) {
                    best = int(s);
                    best_arrival = *arrival;
                }
            }
            if (best < 0)
                break;
            PendingFrame pf;
            pf.session = best;
            // frontArrival() just returned a value and the scheduler
            // is the only consumer, so the queue cannot have drained.
            const bool popped =
                sessions_[size_t(best)]->queue().pop(&pf.ticket);
            eyecod_assert(popped,
                          "scheduler pop raced an empty queue "
                          "(session %d)", best);
            pf.degraded_res = degraded_res_tick;
            pf.batch = int(num_batches_);
            batch.items.push_back( // detlint:allow(R8) pooled,
                                   // bounded by max_batch
                dispatched.size());
            dispatched.push_back(pf);
        }
        if (batch.items.empty())
            break;
        chip_taken[size_t(chip)] = 1;
        ++num_batches_;
    }

    // Compact consumed retries, preserving order of the survivors.
    if (next_retry > 0) {
        std::sort(retry_pick_.begin(),
                  retry_pick_.begin() + long(next_retry));
        size_t out = 0;
        size_t consumed = 0;
        for (size_t i = 0; i < retry_.size(); ++i) {
            if (consumed < next_retry &&
                retry_pick_[consumed] == i) {
                ++consumed;
                continue;
            }
            if (out != i)
                retry_[out] = retry_[i];
            ++out;
        }
        retry_.resize(out);
    }

    if (dispatched.empty())
        return;

    // --- Phase 2 (parallel): functional serving of FIRST-dispatch
    // frames only (re-dispatches already have their gaze). One chunk
    // per session — a session's frames run in dispatch order on one
    // thread, and chunk boundaries depend only on the (serial,
    // deterministic) phase-1 outcome, so the gaze streams are
    // bitwise independent of the scheduler thread count.
    num_groups_ = 0;
    for (size_t i = 0; i < dispatched.size(); ++i) {
        if (!dispatched[i].first_dispatch)
            continue;
        const int s = dispatched[i].session;
        size_t g = 0;
        while (g < num_groups_ && by_session_[g].first != s)
            ++g;
        if (g == num_groups_) {
            if (num_groups_ == by_session_.size())
                by_session_.emplace_back( // detlint:allow(R8)
                                          // pooled, bounded by the
                                          // session count
                    s, std::vector<size_t>{});
            by_session_[g].first = s;
            by_session_[g].second.clear();
            ++num_groups_;
        }
        by_session_[g].second.push_back(i); // detlint:allow(R8)
                                            // pooled tick scratch
    }
    sched_pool_.parallelFor(
        long(num_groups_), 1, [&](long lo, long hi) {
            for (long g = lo; g < hi; ++g) {
                const auto &group = by_session_[size_t(g)];
                Session &sess = *sessions_[size_t(group.first)];
                for (size_t idx : group.second) {
                    PendingFrame &pf = dispatched[idx];
                    const Result<core::GazeSample> r =
                        sess.serveFrame(renderer_, pf.ticket,
                                        pf.degraded_res);
                    if (r.ok()) {
                        pf.refresh = r.value().roi_refreshed;
                    } else {
                        // The chip still turned the frame around;
                        // bill the steady frame cost.
                        pf.pipeline_drop = true;
                        pf.refresh = false;
                    }
                }
            }
        });

    // --- Phase 3 (serial): timing, in batch order. Costs come from
    // the serving chip's (possibly lane-degraded) model, so a
    // retired-lane chip genuinely turns frames around slower.
    // Completion metrics are recorded when virtual time passes the
    // batch's completion (finalizeDue), not here — a chip can still
    // die under this batch.
    for (size_t bi = 0; bi < num_batches_; ++bi) {
        const Batch &batch = batches_[bi];
        const ServiceModel &cm = pool_.chipModel(batch.chip);
        costs_.clear();
        for (size_t idx : batch.items) {
            const PendingFrame &pf = dispatched[idx];
            double cost = pf.refresh ? cm.seg_frame_us
                                     : cm.gaze_frame_us;
            if (pf.degraded_res)
                cost *= cfg_.resolution_cost_factor;
            costs_.push_back(cost); // detlint:allow(R8) pooled,
                                    // bounded by max_batch
        }
        const double service = pool_.batchServiceUs(costs_);
        const long long completion =
            pool_.dispatch(batch.chip, now, service);
        InFlightBatch &fl = inflight_[size_t(batch.chip)];
        eyecod_assert(!fl.active,
                      "batch dispatched onto occupied chip %d",
                      batch.chip);
        fl.active = true;
        fl.completion_us = completion;
        fl.frames.clear();
        for (size_t idx : batch.items) {
            const PendingFrame &pf = dispatched[idx];
            fl.frames.push_back( // detlint:allow(R8) pooled, bounded
                                 // by max_batch
                InFlightFrame{pf.session, pf.ticket, pf.refresh,
                              pf.degraded_res, pf.pipeline_drop,
                              pf.attempts});
        }
    }
}

FleetMetrics
ServingEngine::fleetMetrics() const
{
    FleetMetrics f;
    StreamingHistogram merged(1.0, 1e8);
    double latency_weighted = 0.0;
    uint64_t latency_count = 0;
    for (const auto &sess : sessions_) {
        const SessionMetrics &m = sess->metrics();
        f.submitted += m.submitted;
        f.completed += m.completed;
        f.queue_drops += m.queue_drops;
        f.drops_backpressure += m.drops_backpressure;
        f.drops_shed_on_close += m.drops_shed_on_close;
        f.drops_rate_downgrade += m.drops_rate_downgrade;
        f.drops_failover += m.drops_failover;
        f.pipeline_drops += m.pipeline_drops;
        f.deadline_misses += m.deadline_misses;
        f.redispatched_frames += m.redispatched_frames;
        f.degraded_res_frames += m.degraded_res_frames;
        f.drop_log_overflow += m.drop_log_overflow;
        f.steady_frames += m.steady_frames;
        f.steady_allocs += m.steady_allocs;
        f.refresh_frames += m.refresh_frames;
        f.refresh_allocs += m.refresh_allocs;
        f.peak_arena_bytes = std::max(
            f.peak_arena_bytes,
            (long long)sess->arenaStats().peak_epoch_bytes);
        merged.merge(m.latency_hist);
        latency_weighted +=
            m.latency_us.mean() * double(m.latency_us.count());
        latency_count += m.latency_us.count();
    }
    f.sessions_opened = sessionCount();
    f.sessions_rejected = rejected_sessions_;
    f.sessions_closed = closed_sessions_;
    f.chip_failures = chip_failures_;
    f.chip_rejoins = chip_rejoins_;
    f.lanes_retired = lanes_retired_;
    f.degradation_tier = health_.tier();
    f.tier_transitions = health_.transitions();
    for (int t = 0; t <= kNumDegradationTiers; ++t)
        f.tier_residency[t] = health_.residencyTicks(t);
    f.makespan_us = last_completion_us_;
    if (f.completed > 0 && f.makespan_us > 0)
        f.aggregate_fps =
            double(f.completed) * 1e6 / double(f.makespan_us);
    if (f.makespan_us > 0)
        f.backend_utilization =
            pool_.totalBusyUs() /
            (double(pool_.chips()) * double(f.makespan_us));
    if (f.completed > 0)
        f.deadline_miss_rate =
            double(f.deadline_misses) / double(f.completed);
    if (f.submitted > 0)
        f.drop_rate = double(f.queue_drops) / double(f.submitted);
    if (latency_count > 0)
        f.mean_latency_us =
            latency_weighted / double(latency_count);
    f.p50_latency_us = merged.p50();
    f.p95_latency_us = merged.p95();
    f.p99_latency_us = merged.p99();
    f.p999_latency_us = merged.quantile(0.999);
    f.failover_p99_latency_us = failover_latency_hist_.p99();
    return f;
}

void
ServingEngine::exportMetrics(PerfJson &json,
                             const std::string &section) const
{
    const FleetMetrics f = fleetMetrics();
    json.set(section, "sessions_opened",
             double(f.sessions_opened));
    json.set(section, "sessions_rejected",
             double(f.sessions_rejected));
    json.set(section, "sessions_closed", double(f.sessions_closed));
    json.set(section, "submitted", double(f.submitted));
    json.set(section, "completed", double(f.completed));
    json.set(section, "queue_drops", double(f.queue_drops));
    json.set(section, "drops_backpressure",
             double(f.drops_backpressure));
    json.set(section, "drops_shed_on_close",
             double(f.drops_shed_on_close));
    json.set(section, "drops_rate_downgrade",
             double(f.drops_rate_downgrade));
    json.set(section, "drops_failover", double(f.drops_failover));
    json.set(section, "pipeline_drops", double(f.pipeline_drops));
    json.set(section, "deadline_misses",
             double(f.deadline_misses));
    json.set(section, "chip_failures", double(f.chip_failures));
    json.set(section, "chip_rejoins", double(f.chip_rejoins));
    json.set(section, "lanes_retired", double(f.lanes_retired));
    json.set(section, "redispatched_frames",
             double(f.redispatched_frames));
    json.set(section, "degraded_res_frames",
             double(f.degraded_res_frames));
    json.set(section, "drop_log_overflow",
             double(f.drop_log_overflow));
    json.set(section, "degradation_tier",
             double(f.degradation_tier));
    json.set(section, "tier_transitions",
             double(f.tier_transitions));
    for (int t = 0; t <= kNumDegradationTiers; ++t)
        json.set(section,
                 "tier" + std::to_string(t) + "_residency_ticks",
                 double(f.tier_residency[t]));
    json.set(section, "aggregate_fps", f.aggregate_fps);
    json.set(section, "backend_utilization",
             f.backend_utilization);
    json.set(section, "deadline_miss_rate", f.deadline_miss_rate);
    json.set(section, "drop_rate", f.drop_rate);
    json.set(section, "mean_latency_us", f.mean_latency_us);
    json.set(section, "p50_latency_us", f.p50_latency_us);
    json.set(section, "p95_latency_us", f.p95_latency_us);
    json.set(section, "p99_latency_us", f.p99_latency_us);
    json.set(section, "p999_latency_us", f.p999_latency_us);
    json.set(section, "failover_p99_latency_us",
             f.failover_p99_latency_us);
    json.set(section, "makespan_us", double(f.makespan_us));
    json.set(section, "steady_frames", double(f.steady_frames));
    json.set(section, "steady_allocs", double(f.steady_allocs));
    json.set(section, "refresh_frames", double(f.refresh_frames));
    json.set(section, "refresh_allocs", double(f.refresh_allocs));
    json.set(section, "peak_arena_bytes",
             double(f.peak_arena_bytes));

    for (int id = 0; id < sessionCount(); ++id) {
        const SessionMetrics &m = sessionMetrics(id);
        const std::string sub =
            section + ".s" + std::to_string(id);
        json.set(sub, "submitted", double(m.submitted));
        json.set(sub, "completed", double(m.completed));
        json.set(sub, "queue_drops", double(m.queue_drops));
        json.set(sub, "drops_backpressure",
                 double(m.drops_backpressure));
        json.set(sub, "drops_shed_on_close",
                 double(m.drops_shed_on_close));
        json.set(sub, "drops_rate_downgrade",
                 double(m.drops_rate_downgrade));
        json.set(sub, "drops_failover", double(m.drops_failover));
        json.set(sub, "deadline_misses",
                 double(m.deadline_misses));
        json.set(sub, "max_queue_depth",
                 double(m.max_queue_depth));
        json.set(sub, "redispatched_frames",
                 double(m.redispatched_frames));
        json.set(sub, "degraded_res_frames",
                 double(m.degraded_res_frames));
        json.set(sub, "p50_latency_us", m.latency_hist.p50());
        json.set(sub, "p99_latency_us", m.latency_hist.p99());
        json.set(sub, "steady_frames", double(m.steady_frames));
        json.set(sub, "steady_allocs", double(m.steady_allocs));
        json.set(sub, "refresh_allocs", double(m.refresh_allocs));
        json.set(sub, "arena_peak_bytes",
                 double(sessionRef(id).arenaStats()
                            .peak_epoch_bytes));
    }
}

namespace {

constexpr uint32_t kEngineTag = 0x454e4731; // "ENG1"

/** Sanity bounds on hostile-input container counts. Sessions and
 *  retries are unbounded in principle (session ids are never reused;
 *  the retry queue is bounded by frames in flight at failure
 *  instants), so the codec bound is a generous corruption fence, not
 *  a policy limit. */
constexpr uint64_t kMaxSnapshotSessions = 1u << 20;
constexpr uint64_t kMaxSnapshotRetries = 1u << 20;

} // namespace

std::vector<uint8_t>
ServingEngine::saveSnapshot() const
{
    snap::SnapshotWriter w;
    snap::writeHeader(w);
    w.tag(kEngineTag);

    // Configuration fingerprint: restore refuses a snapshot taken
    // under a different serving shape (chip count, batch/queue
    // geometry, timing grid, logging switches). scheduler_threads is
    // deliberately absent — results are bitwise thread-count
    // independent, so a snapshot may be restored at any width.
    w.i32(cfg_.virtual_chips);
    w.i32(cfg_.max_batch);
    w.i32(cfg_.max_sessions);
    w.u64(uint64_t(cfg_.queue_capacity));
    w.i64(cfg_.tick_us);
    w.i64(cfg_.frame_interval_us);
    w.i64(cfg_.deadline_us);
    w.i32(cfg_.rate_downgrade_stride);
    w.i32(cfg_.failover.max_retries);
    w.b(cfg_.record_gaze);
    w.b(cfg_.record_completions);
    w.u64(uint64_t(cfg_.drop_log_cap));
    w.u64(uint64_t(cfg_.completion_log_cap));

    // Virtual clock + engine-level counters.
    w.i64(virtual_now_);
    w.i64(next_tick_us_);
    w.i64(last_completion_us_);
    w.i64(rejected_sessions_);
    w.i64(closed_sessions_);
    w.b(stopped_);
    w.i64(chip_failures_);
    w.i64(chip_rejoins_);
    w.i64(lanes_retired_);
    w.i64(completion_log_dropped_);
    failover_latency_hist_.saveSnapshot(w);

    pool_.saveSnapshot(w);
    health_.saveSnapshot(w);

    // Sessions before the in-flight/retry state so restore can
    // validate frame session indices as it decodes them.
    w.u64(uint64_t(sessions_.size()));
    for (const auto &sess : sessions_)
        sess->saveSnapshot(w);

    // In-flight batches, one slot per chip.
    w.u64(uint64_t(inflight_.size()));
    for (const InFlightBatch &b : inflight_) {
        w.b(b.active);
        w.i64(b.completion_us);
        w.u64(uint64_t(b.frames.size()));
        for (const InFlightFrame &fr : b.frames) {
            w.i32(fr.session);
            writeTicket(w, fr.ticket);
            w.b(fr.refresh);
            w.b(fr.degraded_res);
            w.b(fr.pipeline_drop);
            w.i32(fr.attempts);
        }
    }

    // Failover retry queue, in order (order is scheduling-relevant).
    w.u64(uint64_t(retry_.size()));
    for (const RetryFrame &r : retry_) {
        w.i32(r.frame.session);
        writeTicket(w, r.frame.ticket);
        w.b(r.frame.refresh);
        w.b(r.frame.degraded_res);
        w.b(r.frame.pipeline_drop);
        w.i32(r.frame.attempts);
        w.i64(r.eligible_us);
    }

    // Bounded completion log (record_completions only; may be empty).
    w.u64(uint64_t(completion_log_.size()));
    for (const CompletionRecord &rec : completion_log_) {
        w.i32(rec.session);
        w.i64(rec.frame_index);
        w.i64(rec.arrival_us);
        w.i64(rec.completion_us);
        w.f64(rec.latency_us);
        w.b(rec.redispatched);
        w.b(rec.deadline_miss);
    }

    snap::sealSnapshot(w);
    return w.take();
}

Status
ServingEngine::restoreSnapshot(const std::vector<uint8_t> &data)
{
    // Integrity first: the seal rejects any truncation or bit flip
    // before a single field is decoded.
    Result<size_t> payload = snap::checkSeal(data.data(), data.size());
    if (!payload.ok())
        return payload.status();
    snap::SnapshotReader r(data.data(), payload.value());
    Status s = snap::checkHeader(r);
    if (!s.isOk())
        return s;
    s = r.expectTag(kEngineTag);
    if (!s.isOk())
        return s;

    // Configuration fingerprint must match this engine exactly.
    auto chips = r.i32();
    auto max_batch = r.i32();
    auto max_sessions = r.i32();
    auto queue_capacity = r.u64();
    auto tick_us = r.i64();
    auto frame_interval_us = r.i64();
    auto deadline_us = r.i64();
    auto stride = r.i32();
    auto max_retries = r.i32();
    auto record_gaze = r.b();
    auto record_completions = r.b();
    auto drop_log_cap = r.u64();
    auto completion_log_cap = r.u64();
    if (!completion_log_cap.ok())
        return completion_log_cap.status();
    const bool fingerprint_ok =
        chips.value() == cfg_.virtual_chips &&
        max_batch.value() == cfg_.max_batch &&
        max_sessions.value() == cfg_.max_sessions &&
        queue_capacity.value() == uint64_t(cfg_.queue_capacity) &&
        tick_us.value() == cfg_.tick_us &&
        frame_interval_us.value() == cfg_.frame_interval_us &&
        deadline_us.value() == cfg_.deadline_us &&
        stride.value() == cfg_.rate_downgrade_stride &&
        max_retries.value() == cfg_.failover.max_retries &&
        record_gaze.value() == cfg_.record_gaze &&
        record_completions.value() == cfg_.record_completions &&
        drop_log_cap.value() == uint64_t(cfg_.drop_log_cap) &&
        completion_log_cap.value() ==
            uint64_t(cfg_.completion_log_cap);
    if (!fingerprint_ok)
        return Status::error(
            ErrorCode::CorruptSnapshot,
            "snapshot was taken under a different serving "
            "configuration");

    auto virtual_now = r.i64();
    auto next_tick = r.i64();
    auto last_completion = r.i64();
    auto rejected = r.i64();
    auto closed = r.i64();
    auto stopped = r.b();
    auto chip_failures = r.i64();
    auto chip_rejoins = r.i64();
    auto lanes_retired = r.i64();
    auto log_dropped = r.i64();
    if (!log_dropped.ok())
        return log_dropped.status();
    virtual_now_ = virtual_now.value();
    next_tick_us_ = next_tick.value();
    last_completion_us_ = last_completion.value();
    rejected_sessions_ = rejected.value();
    closed_sessions_ = closed.value();
    stopped_ = stopped.value();
    chip_failures_ = chip_failures.value();
    chip_rejoins_ = chip_rejoins.value();
    lanes_retired_ = lanes_retired.value();
    completion_log_dropped_ = log_dropped.value();

    s = failover_latency_hist_.restoreSnapshot(r);
    if (!s.isOk())
        return s;
    s = pool_.restoreSnapshot(r);
    if (!s.isOk())
        return s;
    s = health_.restoreSnapshot(r);
    if (!s.isOk())
        return s;

    // Rebuild the session table from configuration, then restore
    // each session's state into its fresh instance.
    auto session_count = r.count(kMaxSnapshotSessions);
    if (!session_count.ok())
        return session_count.status();
    sessions_.clear();
    sessions_.reserve(size_t(session_count.value()));
    for (uint64_t i = 0; i < session_count.value(); ++i) {
        // detlint:allow(R8) bounded by the validated session count
        sessions_.push_back(std::make_unique<Session>(
            int(i), cfg_.system, trained_, cfg_.queue_capacity,
            cfg_.record_gaze, cfg_.drop_log_cap));
        s = sessions_.back()->restoreSnapshot(r);
        if (!s.isOk())
            return s;
    }

    // In-flight frame decode, shared by the chip slots and the retry
    // queue; the session index is validated against the table above.
    auto read_frame = [&](InFlightFrame *out) -> Status {
        auto session = r.i32();
        if (!session.ok())
            return session.status();
        if (session.value() < 0 ||
            session.value() >= int(sessions_.size()))
            return Status::error(ErrorCode::CorruptSnapshot,
                                 "in-flight frame session %d out of "
                                 "range", session.value());
        auto ticket = readTicket(r);
        if (!ticket.ok())
            return ticket.status();
        auto refresh = r.b();
        auto degraded = r.b();
        auto pipeline_drop = r.b();
        auto attempts = r.i32();
        if (!attempts.ok())
            return attempts.status();
        if (attempts.value() < 1)
            return Status::error(ErrorCode::CorruptSnapshot,
                                 "in-flight frame attempts %d < 1",
                                 attempts.value());
        out->session = session.value();
        out->ticket = ticket.value();
        out->refresh = refresh.value();
        out->degraded_res = degraded.value();
        out->pipeline_drop = pipeline_drop.value();
        out->attempts = attempts.value();
        return Status::ok();
    };

    auto slot_count = r.u64();
    if (!slot_count.ok())
        return slot_count.status();
    if (slot_count.value() != uint64_t(cfg_.virtual_chips))
        return Status::error(ErrorCode::CorruptSnapshot,
                             "in-flight slot count %llu != %d chips",
                             (unsigned long long)slot_count.value(),
                             cfg_.virtual_chips);
    inflight_.assign(size_t(cfg_.virtual_chips), InFlightBatch{});
    for (InFlightBatch &b : inflight_) {
        auto active = r.b();
        auto completion = r.i64();
        if (!completion.ok())
            return completion.status();
        auto frames = r.count(uint64_t(cfg_.max_batch));
        if (!frames.ok())
            return frames.status();
        b.active = active.value();
        b.completion_us = completion.value();
        b.frames.resize(size_t(frames.value()));
        for (InFlightFrame &fr : b.frames) {
            s = read_frame(&fr);
            if (!s.isOk())
                return s;
        }
    }

    auto retry_count = r.count(kMaxSnapshotRetries);
    if (!retry_count.ok())
        return retry_count.status();
    retry_.clear();
    retry_.resize(size_t(retry_count.value()));
    for (RetryFrame &rf : retry_) {
        s = read_frame(&rf.frame);
        if (!s.isOk())
            return s;
        auto eligible = r.i64();
        if (!eligible.ok())
            return eligible.status();
        rf.eligible_us = eligible.value();
    }

    auto log_count = r.count(uint64_t(cfg_.completion_log_cap));
    if (!log_count.ok())
        return log_count.status();
    completion_log_.clear();
    completion_log_.resize(size_t(log_count.value()));
    for (CompletionRecord &rec : completion_log_) {
        auto session = r.i32();
        auto frame_index = r.i64();
        auto arrival = r.i64();
        auto completion = r.i64();
        auto latency = r.f64();
        auto redispatched = r.b();
        auto miss = r.b();
        if (!miss.ok())
            return miss.status();
        rec.session = session.value();
        rec.frame_index = long(frame_index.value());
        rec.arrival_us = arrival.value();
        rec.completion_us = completion.value();
        rec.latency_us = latency.value();
        rec.redispatched = redispatched.value();
        rec.deadline_miss = miss.value();
    }

    return r.expectEnd();
}

} // namespace serve
} // namespace eyecod
