#include "serve/engine.h"

#include <algorithm>

#include "common/logging.h"

namespace eyecod {
namespace serve {

namespace {

/** Derive the timing model at construction (trusted config path). */
ServiceModel
deriveModelOrDie(const ServingConfig &cfg)
{
    Result<ServiceModel> model =
        deriveServiceModel(cfg.system.workload, cfg.system.hw);
    if (!model.ok())
        panic("serving engine: %s",
              model.status().toString().c_str());
    return model.value();
}

} // namespace

ServingEngine::ServingEngine(
    ServingConfig cfg, const eyetrack::RidgeGazeEstimator &trained,
    const dataset::SyntheticEyeRenderer &renderer)
    : cfg_(std::move(cfg)), renderer_(renderer), trained_(trained),
      pool_(cfg_.virtual_chips, deriveModelOrDie(cfg_),
            cfg_.batch_amortized_fraction),
      sched_pool_(cfg_.scheduler_threads)
{
    eyecod_assert(cfg_.max_batch >= 1, "max_batch must be >= 1");
    eyecod_assert(cfg_.tick_us >= 1, "tick_us must be >= 1");
    eyecod_assert(cfg_.frame_interval_us >= 1,
                  "frame_interval_us must be >= 1");
    eyecod_assert(cfg_.deadline_us >= 1, "deadline_us must be >= 1");
    eyecod_assert(cfg_.max_sessions >= 1,
                  "max_sessions must be >= 1");
    next_tick_us_ = cfg_.tick_us;
}

double
ServingEngine::projectedUtilization(int additional_sessions) const
{
    const double demand =
        double(activeSessions() + additional_sessions) *
        pool_.model().amortized_frame_us;
    const double capacity =
        double(cfg_.frame_interval_us) * double(pool_.chips());
    return capacity > 0.0 ? demand / capacity : 0.0;
}

Result<int>
ServingEngine::openSession()
{
    if (stopped_)
        return Status::error(ErrorCode::InvalidArgument,
                             "engine is stopped");
    if (activeSessions() >= cfg_.max_sessions) {
        ++rejected_sessions_;
        return Status::error(
            ErrorCode::Overloaded,
            "session cap reached (%d active, cap %d)",
            activeSessions(), cfg_.max_sessions);
    }
    const double projected = projectedUtilization(1);
    if (projected > cfg_.admission_max_utilization) {
        ++rejected_sessions_;
        return Status::error(
            ErrorCode::Overloaded,
            "projected utilization %.2f exceeds admission bound "
            "%.2f (%d active sessions, %d chips)",
            projected, cfg_.admission_max_utilization,
            activeSessions(), pool_.chips());
    }
    const int id = int(sessions_.size());
    sessions_.push_back(std::make_unique<Session>(
        id, cfg_.system, trained_, cfg_.queue_capacity,
        cfg_.record_gaze));
    return id;
}

Status
ServingEngine::closeSession(int id)
{
    if (id < 0 || id >= sessionCount())
        return Status::error(ErrorCode::InvalidArgument,
                             "unknown session %d", id);
    Session &sess = *sessions_[size_t(id)];
    if (!sess.active())
        return Status::error(ErrorCode::InvalidArgument,
                             "session %d already closed", id);
    // Shed whatever is still queued — a closed session must not pin
    // scheduler capacity.
    FrameTicket ticket;
    while (sess.queue().pop(&ticket)) {
        sess.metrics().drop_log.push_back(DropRecord{
            ticket.frame_index, ticket.arrival_us, virtual_now_});
        ++sess.metrics().queue_drops;
    }
    sess.deactivate();
    ++closed_sessions_;
    return Status::ok();
}

Status
ServingEngine::submitFrame(int id, const FrameTicket &ticket)
{
    if (stopped_)
        return Status::error(ErrorCode::InvalidArgument,
                             "engine is stopped");
    if (id < 0 || id >= sessionCount())
        return Status::error(ErrorCode::InvalidArgument,
                             "unknown session %d", id);
    Session &sess = *sessions_[size_t(id)];
    if (!sess.active())
        return Status::error(ErrorCode::InvalidArgument,
                             "session %d is closed", id);
    SessionMetrics &m = sess.metrics();
    ++m.submitted;
    const std::optional<DropRecord> shed =
        sess.queue().push(ticket, virtual_now_);
    if (shed) {
        ++m.queue_drops;
        m.drop_log.push_back(*shed);
    }
    m.max_queue_depth = std::max(
        m.max_queue_depth, (long long)(sess.queue().size()));
    return Status::ok();
}

void
ServingEngine::advanceTo(long long target_us)
{
    while (next_tick_us_ <= target_us) {
        virtual_now_ = next_tick_us_;
        next_tick_us_ += cfg_.tick_us;
        runTick();
    }
    virtual_now_ = std::max(virtual_now_, target_us);
}

bool
ServingEngine::anyQueued() const
{
    for (const auto &sess : sessions_)
        if (sess->active() && !sess->queue().empty())
            return true;
    return false;
}

void
ServingEngine::drain()
{
    while (anyQueued() || !pool_.allIdle(virtual_now_)) {
        virtual_now_ = next_tick_us_;
        next_tick_us_ += cfg_.tick_us;
        runTick();
    }
}

void
ServingEngine::stop(bool drain_first)
{
    if (stopped_)
        return;
    if (drain_first) {
        drain();
    } else {
        for (auto &sess : sessions_) {
            if (!sess->active())
                continue;
            FrameTicket ticket;
            while (sess->queue().pop(&ticket)) {
                sess->metrics().drop_log.push_back(
                    DropRecord{ticket.frame_index,
                               ticket.arrival_us, virtual_now_});
                ++sess->metrics().queue_drops;
            }
        }
    }
    sched_pool_.shutdown(drain_first);
    stopped_ = true;
}

FleetMetrics
ServingEngine::runTrace(const std::vector<SessionTraffic> &traffic)
{
    // Flatten the trace into a deterministic event order: joins
    // before frames at equal timestamps, then by trace index.
    struct Event
    {
        long long t = 0;
        int kind = 0; ///< 0 = join, 1 = frame.
        int trace = 0;
        long frame = 0;
    };
    std::vector<Event> events;
    for (size_t i = 0; i < traffic.size(); ++i) {
        events.push_back(Event{traffic[i].join_us, 0, int(i), 0});
        for (size_t f = 0; f < traffic[i].frames.size(); ++f)
            events.push_back(
                Event{traffic[i].frames[f].arrival_us, 1, int(i),
                      long(f)});
    }
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  if (a.t != b.t)
                      return a.t < b.t;
                  if (a.kind != b.kind)
                      return a.kind < b.kind;
                  if (a.trace != b.trace)
                      return a.trace < b.trace;
                  return a.frame < b.frame;
              });

    std::vector<int> ids(traffic.size(), -1);
    for (const Event &ev : events) {
        advanceTo(ev.t);
        if (ev.kind == 0) {
            const Result<int> r = openSession();
            if (r.ok())
                ids[size_t(ev.trace)] = r.value();
            // Rejections are already counted by openSession; the
            // rejected user's frames are simply never submitted.
        } else if (ids[size_t(ev.trace)] >= 0) {
            // The session was admitted above and stays active for the
            // whole trace, so a submit failure here is engine state
            // corruption, not load shedding.
            const Status st = submitFrame(
                ids[size_t(ev.trace)],
                traffic[size_t(ev.trace)].frames[size_t(ev.frame)]);
            eyecod_assert(st.isOk(), "runTraffic submit: %s",
                          st.toString().c_str());
        }
    }
    drain();
    return fleetMetrics();
}

int
ServingEngine::activeSessions() const
{
    int n = 0;
    for (const auto &sess : sessions_)
        if (sess->active())
            ++n;
    return n;
}

Session &
ServingEngine::sessionRef(int id)
{
    eyecod_assert(id >= 0 && id < sessionCount(),
                  "session id %d out of range", id);
    return *sessions_[size_t(id)];
}

const Session &
ServingEngine::sessionRef(int id) const
{
    eyecod_assert(id >= 0 && id < sessionCount(),
                  "session id %d out of range", id);
    return *sessions_[size_t(id)];
}

const SessionMetrics &
ServingEngine::sessionMetrics(int id) const
{
    return sessionRef(id).metrics();
}

SessionHealth
ServingEngine::sessionHealth(int id) const
{
    return sessionRef(id).health();
}

const std::vector<dataset::GazeVec> &
ServingEngine::sessionGazeLog(int id) const
{
    return sessionRef(id).gazeLog();
}

void
ServingEngine::runTick()
{
    const long long now = virtual_now_;

    // --- Phase 1 (serial): form cross-session batches from ready
    // frames, one batch per idle chip, in earliest-deadline order
    // (uniform relative deadlines => earliest arrival, ties by
    // session id). Frames left behind wait in their bounded queues —
    // that is the backpressure path. All scratch is member state
    // reused tick over tick (capacity-retaining clears), so a warm
    // scheduler tick performs no heap allocation.
    std::vector<PendingFrame> &dispatched = dispatched_;
    dispatched.clear();
    num_batches_ = 0;
    chip_taken_.assign(size_t(pool_.chips()), 0);
    std::vector<char> &chip_taken = chip_taken_;
    for (;;) {
        int chip = -1;
        for (int c = 0; c < pool_.chips(); ++c) {
            if (!chip_taken[size_t(c)] && pool_.busyUntil(c) <= now) {
                chip = c;
                break;
            }
        }
        if (chip < 0)
            break;
        if (num_batches_ == batches_.size())
            batches_.emplace_back();
        Batch &batch = batches_[num_batches_];
        batch.chip = chip;
        batch.items.clear();
        for (int b = 0; b < cfg_.max_batch; ++b) {
            int best = -1;
            long long best_arrival = 0;
            for (size_t s = 0; s < sessions_.size(); ++s) {
                Session &sess = *sessions_[s];
                if (!sess.active())
                    continue;
                const auto arrival = sess.queue().frontArrival();
                if (!arrival || *arrival > now)
                    continue;
                if (best < 0 || *arrival < best_arrival) {
                    best = int(s);
                    best_arrival = *arrival;
                }
            }
            if (best < 0)
                break;
            PendingFrame pf;
            pf.session = best;
            // frontArrival() just returned a value and the scheduler
            // is the only consumer, so the queue cannot have drained.
            const bool popped =
                sessions_[size_t(best)]->queue().pop(&pf.ticket);
            eyecod_assert(popped,
                          "scheduler pop raced an empty queue "
                          "(session %d)", best);
            pf.batch = int(num_batches_);
            batch.items.push_back(dispatched.size());
            dispatched.push_back(pf);
        }
        if (batch.items.empty())
            break;
        chip_taken[size_t(chip)] = 1;
        ++num_batches_;
    }
    if (dispatched.empty())
        return;

    // --- Phase 2 (parallel): functional serving. One chunk per
    // session — a session's frames run in dispatch order on one
    // thread, and chunk boundaries depend only on the (serial,
    // deterministic) phase-1 outcome, so the gaze streams are
    // bitwise independent of the scheduler thread count.
    num_groups_ = 0;
    for (size_t i = 0; i < dispatched.size(); ++i) {
        const int s = dispatched[i].session;
        size_t g = 0;
        while (g < num_groups_ && by_session_[g].first != s)
            ++g;
        if (g == num_groups_) {
            if (num_groups_ == by_session_.size())
                by_session_.emplace_back(s, std::vector<size_t>{});
            by_session_[g].first = s;
            by_session_[g].second.clear();
            ++num_groups_;
        }
        by_session_[g].second.push_back(i);
    }
    sched_pool_.parallelFor(
        long(num_groups_), 1, [&](long lo, long hi) {
            for (long g = lo; g < hi; ++g) {
                const auto &group = by_session_[size_t(g)];
                Session &sess = *sessions_[size_t(group.first)];
                for (size_t idx : group.second) {
                    PendingFrame &pf = dispatched[idx];
                    const Result<core::GazeSample> r =
                        sess.serveFrame(renderer_, pf.ticket);
                    if (r.ok()) {
                        pf.cost_us =
                            r.value().roi_refreshed
                                ? pool_.model().seg_frame_us
                                : pool_.model().gaze_frame_us;
                    } else {
                        // The chip still turned the frame around;
                        // bill the steady frame cost.
                        pf.pipeline_drop = true;
                        pf.cost_us = pool_.model().gaze_frame_us;
                    }
                }
            }
        });

    // --- Phase 3 (serial): timing + metrics, in batch order.
    for (size_t bi = 0; bi < num_batches_; ++bi) {
        const Batch &batch = batches_[bi];
        costs_.clear();
        for (size_t idx : batch.items)
            costs_.push_back(dispatched[idx].cost_us);
        const double service = pool_.batchServiceUs(costs_);
        const long long completion =
            pool_.dispatch(batch.chip, now, service);
        last_completion_us_ =
            std::max(last_completion_us_, completion);
        for (size_t idx : batch.items) {
            const PendingFrame &pf = dispatched[idx];
            SessionMetrics &m =
                sessions_[size_t(pf.session)]->metrics();
            ++m.completed;
            if (pf.pipeline_drop)
                ++m.pipeline_drops;
            const double latency =
                double(completion - pf.ticket.arrival_us);
            m.latency_us.add(latency);
            m.latency_hist.add(latency);
            if (completion >
                pf.ticket.arrival_us + cfg_.deadline_us)
                ++m.deadline_misses;
        }
    }
}

FleetMetrics
ServingEngine::fleetMetrics() const
{
    FleetMetrics f;
    StreamingHistogram merged(1.0, 1e8);
    double latency_weighted = 0.0;
    uint64_t latency_count = 0;
    for (const auto &sess : sessions_) {
        const SessionMetrics &m = sess->metrics();
        f.submitted += m.submitted;
        f.completed += m.completed;
        f.queue_drops += m.queue_drops;
        f.pipeline_drops += m.pipeline_drops;
        f.deadline_misses += m.deadline_misses;
        f.steady_frames += m.steady_frames;
        f.steady_allocs += m.steady_allocs;
        f.refresh_frames += m.refresh_frames;
        f.refresh_allocs += m.refresh_allocs;
        f.peak_arena_bytes = std::max(
            f.peak_arena_bytes,
            (long long)sess->arenaStats().peak_epoch_bytes);
        merged.merge(m.latency_hist);
        latency_weighted +=
            m.latency_us.mean() * double(m.latency_us.count());
        latency_count += m.latency_us.count();
    }
    f.sessions_opened = sessionCount();
    f.sessions_rejected = rejected_sessions_;
    f.sessions_closed = closed_sessions_;
    f.makespan_us = last_completion_us_;
    if (f.completed > 0 && f.makespan_us > 0)
        f.aggregate_fps =
            double(f.completed) * 1e6 / double(f.makespan_us);
    if (f.makespan_us > 0)
        f.backend_utilization =
            pool_.totalBusyUs() /
            (double(pool_.chips()) * double(f.makespan_us));
    if (f.completed > 0)
        f.deadline_miss_rate =
            double(f.deadline_misses) / double(f.completed);
    if (f.submitted > 0)
        f.drop_rate = double(f.queue_drops) / double(f.submitted);
    if (latency_count > 0)
        f.mean_latency_us =
            latency_weighted / double(latency_count);
    f.p50_latency_us = merged.p50();
    f.p95_latency_us = merged.p95();
    f.p99_latency_us = merged.p99();
    return f;
}

void
ServingEngine::exportMetrics(PerfJson &json,
                             const std::string &section) const
{
    const FleetMetrics f = fleetMetrics();
    json.set(section, "sessions_opened",
             double(f.sessions_opened));
    json.set(section, "sessions_rejected",
             double(f.sessions_rejected));
    json.set(section, "sessions_closed", double(f.sessions_closed));
    json.set(section, "submitted", double(f.submitted));
    json.set(section, "completed", double(f.completed));
    json.set(section, "queue_drops", double(f.queue_drops));
    json.set(section, "pipeline_drops", double(f.pipeline_drops));
    json.set(section, "deadline_misses",
             double(f.deadline_misses));
    json.set(section, "aggregate_fps", f.aggregate_fps);
    json.set(section, "backend_utilization",
             f.backend_utilization);
    json.set(section, "deadline_miss_rate", f.deadline_miss_rate);
    json.set(section, "drop_rate", f.drop_rate);
    json.set(section, "mean_latency_us", f.mean_latency_us);
    json.set(section, "p50_latency_us", f.p50_latency_us);
    json.set(section, "p95_latency_us", f.p95_latency_us);
    json.set(section, "p99_latency_us", f.p99_latency_us);
    json.set(section, "makespan_us", double(f.makespan_us));
    json.set(section, "steady_frames", double(f.steady_frames));
    json.set(section, "steady_allocs", double(f.steady_allocs));
    json.set(section, "refresh_frames", double(f.refresh_frames));
    json.set(section, "refresh_allocs", double(f.refresh_allocs));
    json.set(section, "peak_arena_bytes",
             double(f.peak_arena_bytes));

    for (int id = 0; id < sessionCount(); ++id) {
        const SessionMetrics &m = sessionMetrics(id);
        const std::string sub =
            section + ".s" + std::to_string(id);
        json.set(sub, "submitted", double(m.submitted));
        json.set(sub, "completed", double(m.completed));
        json.set(sub, "queue_drops", double(m.queue_drops));
        json.set(sub, "deadline_misses",
                 double(m.deadline_misses));
        json.set(sub, "max_queue_depth",
                 double(m.max_queue_depth));
        json.set(sub, "p50_latency_us", m.latency_hist.p50());
        json.set(sub, "p99_latency_us", m.latency_hist.p99());
        json.set(sub, "steady_frames", double(m.steady_frames));
        json.set(sub, "steady_allocs", double(m.steady_allocs));
        json.set(sub, "refresh_allocs", double(m.refresh_allocs));
        json.set(sub, "arena_peak_bytes",
                 double(sessionRef(id).arenaStats()
                            .peak_epoch_bytes));
    }
}

} // namespace serve
} // namespace eyecod
