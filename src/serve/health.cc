#include "serve/health.h"

#include <algorithm>

#include "common/logging.h"

namespace eyecod {
namespace serve {

const char *
degradationTierName(int tier)
{
    switch (tier) {
    case 0:
        return "healthy";
    case 1:
        return "drop_oldest";
    case 2:
        return "resolution_downgrade";
    case 3:
        return "rate_downgrade";
    case 4:
        return "admission_reject";
    }
    return "unknown";
}

FleetHealthController::FleetHealthController(
    const HealthControllerConfig &cfg)
    : cfg_(cfg)
{
    for (int i = 0; i < kNumDegradationTiers; ++i) {
        eyecod_assert(cfg_.disengage_pressure[size_t(i)] <
                          cfg_.engage_pressure[size_t(i)],
                      "tier %d hysteresis band is empty", i + 1);
        if (i > 0)
            eyecod_assert(cfg_.engage_pressure[size_t(i)] >=
                              cfg_.engage_pressure[size_t(i - 1)],
                          "tier %d engage threshold decreases",
                          i + 1);
    }
    eyecod_assert(cfg_.engage_ticks >= 1,
                  "engage_ticks must be >= 1");
    eyecod_assert(cfg_.disengage_ticks >= 1,
                  "disengage_ticks must be >= 1");
}

int
FleetHealthController::update(const FleetSignal &signal)
{
    last_pressure_ =
        std::max(signal.utilization,
                 signal.queue_occupancy * cfg_.occupancy_gain);

    // Escalate at most one tier per engage window and de-escalate at
    // most one per disengage window: the ladder walks rung by rung,
    // so a capacity cliff still produces an ordered, replayable
    // escalation sequence rather than a jump.
    if (tier_ < kNumDegradationTiers &&
        last_pressure_ >= cfg_.engage_pressure[size_t(tier_)]) {
        below_ticks_ = 0;
        if (++above_ticks_ >= cfg_.engage_ticks) {
            ++tier_;
            ++transitions_;
            above_ticks_ = 0;
        }
    } else if (tier_ > 0 &&
               last_pressure_ <
                   cfg_.disengage_pressure[size_t(tier_ - 1)]) {
        above_ticks_ = 0;
        if (++below_ticks_ >= cfg_.disengage_ticks) {
            --tier_;
            ++transitions_;
            below_ticks_ = 0;
        }
    } else {
        // Inside the hysteresis band: hold the tier, reset streaks.
        above_ticks_ = 0;
        below_ticks_ = 0;
    }

    ++residency_[size_t(tier_)];
    return tier_;
}

namespace {
constexpr uint32_t kHealthControllerTag = 0x48435431; // "HCT1"
}

void
FleetHealthController::saveSnapshot(snap::SnapshotWriter &w) const
{
    w.tag(kHealthControllerTag);
    w.i32(tier_);
    w.i32(above_ticks_);
    w.i32(below_ticks_);
    w.f64(last_pressure_);
    w.i64(transitions_);
    for (long long ticks : residency_)
        w.i64(ticks);
}

Status
FleetHealthController::restoreSnapshot(snap::SnapshotReader &r)
{
    Status fence = r.expectTag(kHealthControllerTag);
    if (!fence.isOk())
        return fence;
    auto tier = r.i32();
    auto above = r.i32();
    auto below = r.i32();
    auto pressure = r.f64();
    auto transitions = r.i64();
    if (!transitions.ok())
        return transitions.status();
    if (tier.value() < 0 || tier.value() > kNumDegradationTiers)
        return Status::error(ErrorCode::CorruptSnapshot,
                             "degradation tier %d out of range",
                             tier.value());
    if (above.value() < 0 || below.value() < 0)
        return Status::error(ErrorCode::CorruptSnapshot,
                             "negative hysteresis streak");
    tier_ = tier.value();
    above_ticks_ = above.value();
    below_ticks_ = below.value();
    last_pressure_ = pressure.value();
    transitions_ = transitions.value();
    for (long long &ticks : residency_) {
        auto v = r.i64();
        if (!v.ok())
            return v.status();
        ticks = v.value();
    }
    return Status::ok();
}

} // namespace serve
} // namespace eyecod
