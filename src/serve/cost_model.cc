#include "serve/cost_model.h"

#include <algorithm>

#include "accel/analytic.h"
#include "dse/estimate.h"

namespace eyecod {
namespace serve {

using accel::cyclesToUs;

Result<ServiceModel>
estimatorServiceModel(const accel::PipelineWorkloadConfig &workload,
                      const accel::HwConfig &hw)
{
    const auto all = accel::buildPipelineWorkload(workload);

    Result<dse::ScheduleEstimate> full =
        dse::estimateSchedule(all, hw);
    if (!full.ok())
        return full.status();

    std::vector<accel::ModelWorkload> per_frame;
    for (const auto &m : all)
        if (m.period == 1)
            per_frame.push_back(m);
    Result<dse::ScheduleEstimate> steady =
        dse::estimateSchedule(per_frame, hw);
    if (!steady.ok())
        return steady.status();

    // Field for field the deriveServiceModel() assembly, so the two
    // cost models agree bitwise whenever the schedule estimate is
    // exact.
    ServiceModel model;
    model.gaze_frame_us =
        cyclesToUs(steady.value().frame_cycles, hw);
    model.seg_frame_us =
        cyclesToUs(full.value().peak_frame_cycles, hw);
    model.amortized_frame_us =
        cyclesToUs(full.value().frame_cycles, hw);
    if (model.amortized_frame_us > 0.0)
        model.chip_fps = 1e6 / model.amortized_frame_us;
    model.seg_frame_us =
        std::max(model.seg_frame_us, model.gaze_frame_us);
    return model;
}

Result<double>
estimatorResolutionCostFactor(
    const accel::PipelineWorkloadConfig &workload,
    const accel::HwConfig &hw)
{
    Result<ServiceModel> at_full = estimatorServiceModel(workload, hw);
    if (!at_full.ok())
        return at_full.status();

    // The tier-2 downgrade halves the linear resolution of the
    // camera-facing stages; the gaze ROI crop stays fixed (the ROI
    // is produced by the predictor at its own extent).
    accel::PipelineWorkloadConfig half = workload;
    half.scene = std::max(1, workload.scene / 2);
    half.sensor = std::max(1, workload.sensor / 2);
    half.seg_input = std::max(1, workload.seg_input / 2);
    Result<ServiceModel> at_half = estimatorServiceModel(half, hw);
    if (!at_half.ok())
        return at_half.status();

    if (at_full.value().amortized_frame_us <= 0.0)
        return Status::error(ErrorCode::InvalidArgument,
                             "full-resolution frame cost is zero");
    const double ratio = at_half.value().amortized_frame_us /
                         at_full.value().amortized_frame_us;
    // The billing contract requires a factor in (0, 1]; a half-res
    // pipeline can never cost more than the full one under this
    // dataflow, but clamp defensively.
    return std::clamp(ratio, 1e-6, 1.0);
}

} // namespace serve
} // namespace eyecod
