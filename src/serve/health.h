/**
 * @file
 * Fleet health controller: the four-tier graceful-degradation ladder
 * of ROADMAP item 4, driven by fleet pressure in virtual time.
 *
 * Tiers, in escalation order (each tier includes the ones below it):
 *
 *  - tier 0: healthy — bounded drop-oldest queues only (the engine's
 *    always-on backpressure);
 *  - tier 1: drop-oldest under pressure — no new mechanism engages,
 *    but the fleet is flagged as shedding via backpressure so
 *    operators see the ladder's first rung, not silence;
 *  - tier 2: per-session resolution downgrade — sessions serve at
 *    half linear resolution through the zero-copy
 *    view/resizeBilinearInto path, cutting per-frame service cost;
 *  - tier 3: refresh-rate downgrade — every k-th submitted frame is
 *    shed at admission to the queue (DropReason::RateDowngrade),
 *    trading per-user FPS for fleet survival;
 *  - tier 4: admission reject — no new sessions are admitted until
 *    pressure subsides.
 *
 * The controller's input is *raw* demand pressure — active sessions'
 * nominal load over surviving capacity, combined with queue
 * occupancy — NOT the post-degradation load. Reacting to the load the
 * ladder itself reduced would oscillate: tier 2 halves the cost,
 * pressure halves, tier disengages, cost doubles, pressure doubles.
 * Raw pressure only moves when capacity or population moves, so the
 * ladder is a pure function of the fault/churn schedule and replays
 * bitwise at any scheduler thread count.
 *
 * Hysteresis: a tier engages only after its threshold holds for
 * engage_ticks consecutive ticks, and disengages only after the
 * (lower) exit threshold holds for disengage_ticks — so a chip
 * blinking in and out of service cannot flap the fleet between
 * resolutions every tick.
 */

#ifndef EYECOD_SERVE_HEALTH_H
#define EYECOD_SERVE_HEALTH_H

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/snapshot.h"

namespace eyecod {
namespace serve {

/** Number of rungs above healthy (tiers 1..4). */
constexpr int kNumDegradationTiers = 4;

/** Human-readable name of a degradation tier (0..4). */
const char *degradationTierName(int tier);

/** Ladder thresholds and hysteresis windows. */
struct HealthControllerConfig
{
    /**
     * Pressure at which tier i+1 engages. Pressure ~ demand /
     * capacity: 1.0 means the fleet is exactly saturated. Must be
     * non-decreasing.
     */
    std::array<double, kNumDegradationTiers> engage_pressure{
        1.00, 1.08, 1.35, 1.60};
    /**
     * Pressure below which tier i+1 disengages; strictly below the
     * engage threshold (the hysteresis band).
     */
    std::array<double, kNumDegradationTiers> disengage_pressure{
        0.90, 0.98, 1.20, 1.45};
    /** Consecutive ticks above threshold before escalating a tier. */
    int engage_ticks = 3;
    /** Consecutive ticks below threshold before de-escalating. */
    int disengage_ticks = 25;
    /**
     * Queue-occupancy weight folded into pressure: pressure =
     * max(utilization, occupancy * occupancy_gain). Deep queues mean
     * the fleet is already behind even if raw utilization looks
     * sustainable (e.g. right after an outage truncated capacity).
     */
    double occupancy_gain = 1.6;
};

/** One tick's fleet load signal (computed by the engine). */
struct FleetSignal
{
    /** Raw demand / surviving capacity (pre-degradation). */
    double utilization = 0.0;
    /** Queued frames / total queue capacity of active sessions. */
    double queue_occupancy = 0.0;
};

/**
 * The tier ladder state machine. One update() per scheduler tick;
 * everything is integer/double arithmetic on the signal, so the
 * trajectory is bitwise deterministic.
 */
class FleetHealthController
{
  public:
    explicit FleetHealthController(
        const HealthControllerConfig &cfg = {});

    /** Feed one tick's signal; returns the (possibly new) tier. */
    int update(const FleetSignal &signal);

    /** Current tier, 0 (healthy) .. 4 (admission reject). */
    int tier() const { return tier_; }

    /** Pressure computed from the last update()'s signal. */
    double lastPressure() const { return last_pressure_; }

    /** Tier changes since construction (escalations + recoveries). */
    long long transitions() const { return transitions_; }

    /** Ticks spent at @p tier (incl. the current update's tick). */
    long long residencyTicks(int tier) const
    {
        return residency_[std::size_t(tier)];
    }

    /** True while tier >= 2: sessions serve at reduced resolution. */
    bool resolutionDowngraded() const { return tier_ >= 2; }

    /** True while tier >= 3: every k-th submit is shed. */
    bool rateDowngraded() const { return tier_ >= 3; }

    /** True while tier >= 4: new sessions are rejected. */
    bool admissionClosed() const { return tier_ >= 4; }

    /** Configuration in use. */
    const HealthControllerConfig &config() const { return cfg_; }

    /**
     * Serialize the ladder position and both hysteresis streaks — a
     * restored controller continues its residency counters and
     * escalation/de-escalation windows exactly where the snapshot
     * left them (a mid-ladder checkpoint must not re-arm hysteresis).
     */
    void saveSnapshot(snap::SnapshotWriter &w) const;

    /** Restore ladder state; tier and streaks are range-checked. */
    [[nodiscard]] Status restoreSnapshot(snap::SnapshotReader &r);

  private:
    // detlint:allow(R12) construction-time config; snapshots carry ladder state.
    HealthControllerConfig cfg_;
    int tier_ = 0;
    int above_ticks_ = 0; ///< Consecutive ticks above next engage.
    int below_ticks_ = 0; ///< Consecutive ticks below current exit.
    double last_pressure_ = 0.0;
    long long transitions_ = 0;
    std::array<long long, kNumDegradationTiers + 1> residency_{};
};

} // namespace serve
} // namespace eyecod

#endif // EYECOD_SERVE_HEALTH_H
