#include "serve/session.h"

#include <algorithm>

#include "common/alloc_counter.h"
#include "common/image_view.h"

namespace eyecod {
namespace serve {

Session::Session(int id, const core::SystemConfig &cfg,
                 const eyetrack::RidgeGazeEstimator &trained,
                 size_t queue_capacity, bool record_gaze,
                 size_t drop_log_cap)
    : id_(id), record_gaze_(record_gaze),
      drop_log_cap_(drop_log_cap), system_(cfg),
      queue_(queue_capacity)
{
    // Sessions share the fleet-trained estimator instead of
    // retraining per user (per-user calibration would refit here).
    system_.pipeline().gazeEstimator() = trained;
}

Result<core::GazeSample>
Session::serveFrame(const dataset::SyntheticEyeRenderer &renderer,
                    const FrameTicket &ticket,
                    bool degraded_resolution)
{
    // serveFrame runs wholly on one scheduler thread, so the
    // thread-local allocation counters bracket exactly this frame's
    // heap traffic (zero deltas when the alloc hooks are not linked).
    const uint64_t allocs_before = AllocCounter::threadAllocs();

    // Render at dispatch time — frames shed by the queue never paid
    // for rendering. The noise seed folds the session id in so two
    // sessions viewing the same trajectory still see distinct sensor
    // noise. renderInto() reuses the member sample's storage.
    renderer.renderInto(ticket.params,
                        uint64_t(ticket.frame_index) * 0x9e3779b9ULL +
                            uint64_t(id_),
                        &sample_);

    const Image *scene = &sample_.image;
    if (degraded_resolution) {
        // Tier-2 resolution downgrade: the sensor read-out halves its
        // linear resolution; the pipeline's extents are fixed, so the
        // half-res frame is bilinearly restored before processing.
        // Both hops reuse member storage — after the first downgrade
        // transition this path allocates nothing per frame.
        const int h = sample_.image.height();
        const int w = sample_.image.width();
        resizeBilinearInto(ImageConstView::of(sample_.image),
                           std::max(1, h / 2), std::max(1, w / 2),
                           &lowres_);
        resizeBilinearInto(ImageConstView::of(lowres_), h, w,
                           &restored_);
        scene = &restored_;
        ++metrics_.degraded_res_frames;
    }
    Result<core::GazeSample> r = system_.processFrameChecked(*scene);

    const uint64_t frame_allocs =
        AllocCounter::threadAllocs() - allocs_before;
    // Resolution-mode transitions size the tier-2 scratch buffers, so
    // they count with the refresh frames; frames inside one mode are
    // held to the steady zero-alloc contract.
    const bool transition = degraded_resolution != last_degraded_;
    last_degraded_ = degraded_resolution;
    if (r.ok() && !r.value().roi_refreshed && !transition) {
        ++metrics_.steady_frames;
        metrics_.steady_allocs += (long long)frame_allocs;
    } else {
        ++metrics_.refresh_frames;
        metrics_.refresh_allocs += (long long)frame_allocs;
    }

    if (r.ok())
        last_gaze_ = r.value().gaze;
    if (record_gaze_)
        gaze_log_.push_back(last_gaze_); // detlint:allow(R8) tests
                                         // only; bounded by the trace
    return r;
}

void
Session::recordDrop(const DropRecord &record)
{
    ++metrics_.queue_drops;
    switch (record.reason) {
    case DropReason::Backpressure:
        ++metrics_.drops_backpressure;
        break;
    case DropReason::ShedOnClose:
        ++metrics_.drops_shed_on_close;
        break;
    case DropReason::RateDowngrade:
        ++metrics_.drops_rate_downgrade;
        break;
    case DropReason::Failover:
        ++metrics_.drops_failover;
        break;
    }
    if (metrics_.drop_log.size() < drop_log_cap_)
        metrics_.drop_log.push_back(record); // detlint:allow(R8)
                                             // bounded by the cap
    else
        ++metrics_.drop_log_overflow;
}

SessionHealth
Session::health() const
{
    SessionHealth h;
    h.metrics = metrics_;
    h.pipeline = system_.healthReport();
    h.active = active_;
    return h;
}

} // namespace serve
} // namespace eyecod
