#include "serve/session.h"

#include "common/alloc_counter.h"

namespace eyecod {
namespace serve {

Session::Session(int id, const core::SystemConfig &cfg,
                 const eyetrack::RidgeGazeEstimator &trained,
                 size_t queue_capacity, bool record_gaze)
    : id_(id), record_gaze_(record_gaze), system_(cfg),
      queue_(queue_capacity)
{
    // Sessions share the fleet-trained estimator instead of
    // retraining per user (per-user calibration would refit here).
    system_.pipeline().gazeEstimator() = trained;
}

Result<core::GazeSample>
Session::serveFrame(const dataset::SyntheticEyeRenderer &renderer,
                    const FrameTicket &ticket)
{
    // serveFrame runs wholly on one scheduler thread, so the
    // thread-local allocation counters bracket exactly this frame's
    // heap traffic (zero deltas when the alloc hooks are not linked).
    const uint64_t allocs_before = AllocCounter::threadAllocs();

    // Render at dispatch time — frames shed by the queue never paid
    // for rendering. The noise seed folds the session id in so two
    // sessions viewing the same trajectory still see distinct sensor
    // noise. renderInto() reuses the member sample's storage.
    renderer.renderInto(ticket.params,
                        uint64_t(ticket.frame_index) * 0x9e3779b9ULL +
                            uint64_t(id_),
                        &sample_);
    Result<core::GazeSample> r =
        system_.processFrameChecked(sample_.image);

    const uint64_t frame_allocs =
        AllocCounter::threadAllocs() - allocs_before;
    if (r.ok() && !r.value().roi_refreshed) {
        ++metrics_.steady_frames;
        metrics_.steady_allocs += (long long)frame_allocs;
    } else {
        ++metrics_.refresh_frames;
        metrics_.refresh_allocs += (long long)frame_allocs;
    }

    if (r.ok())
        last_gaze_ = r.value().gaze;
    if (record_gaze_)
        gaze_log_.push_back(last_gaze_);
    return r;
}

SessionHealth
Session::health() const
{
    SessionHealth h;
    h.metrics = metrics_;
    h.pipeline = system_.healthReport();
    h.active = active_;
    return h;
}

} // namespace serve
} // namespace eyecod
