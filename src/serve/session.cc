#include "serve/session.h"

#include <algorithm>

#include "common/alloc_counter.h"
#include "common/image_view.h"

namespace eyecod {
namespace serve {

Session::Session(int id, const core::SystemConfig &cfg,
                 const eyetrack::RidgeGazeEstimator &trained,
                 size_t queue_capacity, bool record_gaze,
                 size_t drop_log_cap)
    : id_(id), record_gaze_(record_gaze),
      drop_log_cap_(drop_log_cap), system_(cfg),
      queue_(queue_capacity)
{
    // Sessions share the fleet-trained estimator instead of
    // retraining per user (per-user calibration would refit here).
    system_.pipeline().gazeEstimator() = trained;
}

Result<core::GazeSample>
Session::serveFrame(const dataset::SyntheticEyeRenderer &renderer,
                    const FrameTicket &ticket,
                    bool degraded_resolution)
{
    // serveFrame runs wholly on one scheduler thread, so the
    // thread-local allocation counters bracket exactly this frame's
    // heap traffic (zero deltas when the alloc hooks are not linked).
    const uint64_t allocs_before = AllocCounter::threadAllocs();

    // Render at dispatch time — frames shed by the queue never paid
    // for rendering. The noise seed folds the session id in so two
    // sessions viewing the same trajectory still see distinct sensor
    // noise. renderInto() reuses the member sample's storage.
    renderer.renderInto(ticket.params,
                        uint64_t(ticket.frame_index) * 0x9e3779b9ULL +
                            uint64_t(id_),
                        &sample_);

    const Image *scene = &sample_.image;
    if (degraded_resolution) {
        // Tier-2 resolution downgrade: the sensor read-out halves its
        // linear resolution; the pipeline's extents are fixed, so the
        // half-res frame is bilinearly restored before processing.
        // Both hops reuse member storage — after the first downgrade
        // transition this path allocates nothing per frame.
        const int h = sample_.image.height();
        const int w = sample_.image.width();
        resizeBilinearInto(ImageConstView::of(sample_.image),
                           std::max(1, h / 2), std::max(1, w / 2),
                           &lowres_);
        resizeBilinearInto(ImageConstView::of(lowres_), h, w,
                           &restored_);
        scene = &restored_;
        ++metrics_.degraded_res_frames;
    }
    Result<core::GazeSample> r = system_.processFrameChecked(*scene);

    const uint64_t frame_allocs =
        AllocCounter::threadAllocs() - allocs_before;
    // Resolution-mode transitions size the tier-2 scratch buffers, so
    // they count with the refresh frames; frames inside one mode are
    // held to the steady zero-alloc contract.
    const bool transition = degraded_resolution != last_degraded_;
    last_degraded_ = degraded_resolution;
    if (r.ok() && !r.value().roi_refreshed && !transition) {
        ++metrics_.steady_frames;
        metrics_.steady_allocs += (long long)frame_allocs;
    } else {
        ++metrics_.refresh_frames;
        metrics_.refresh_allocs += (long long)frame_allocs;
    }

    if (r.ok())
        last_gaze_ = r.value().gaze;
    if (record_gaze_)
        gaze_log_.push_back(last_gaze_); // detlint:allow(R8) tests
                                         // only; bounded by the trace
    return r;
}

void
Session::recordDrop(const DropRecord &record)
{
    ++metrics_.queue_drops;
    switch (record.reason) {
    case DropReason::Backpressure:
        ++metrics_.drops_backpressure;
        break;
    case DropReason::ShedOnClose:
        ++metrics_.drops_shed_on_close;
        break;
    case DropReason::RateDowngrade:
        ++metrics_.drops_rate_downgrade;
        break;
    case DropReason::Failover:
        ++metrics_.drops_failover;
        break;
    }
    if (metrics_.drop_log.size() < drop_log_cap_)
        metrics_.drop_log.push_back(record); // detlint:allow(R8)
                                             // bounded by the cap
    else
        ++metrics_.drop_log_overflow;
}

SessionHealth
Session::health() const
{
    SessionHealth h;
    h.metrics = metrics_;
    h.pipeline = system_.healthReport();
    h.active = active_;
    return h;
}

namespace {
constexpr uint32_t kSessionTag = 0x53455331; // "SES1"
/** Sanity bound on a recorded gaze stream (tests only record a few
 *  thousand frames; a count above this is corrupt input). */
constexpr uint64_t kMaxGazeLog = 1u << 22;
} // namespace

void
Session::saveSnapshot(snap::SnapshotWriter &w) const
{
    w.tag(kSessionTag);
    w.i32(id_);
    w.b(active_);
    w.b(record_gaze_);
    // Metrics counters, in declaration order.
    w.i64(metrics_.submitted);
    w.i64(metrics_.completed);
    w.i64(metrics_.queue_drops);
    w.i64(metrics_.drops_backpressure);
    w.i64(metrics_.drops_shed_on_close);
    w.i64(metrics_.drops_rate_downgrade);
    w.i64(metrics_.drops_failover);
    w.i64(metrics_.pipeline_drops);
    w.i64(metrics_.deadline_misses);
    w.i64(metrics_.max_queue_depth);
    w.i64(metrics_.redispatched_frames);
    w.i64(metrics_.degraded_res_frames);
    w.i64(metrics_.drop_log_overflow);
    w.i64(metrics_.steady_frames);
    w.i64(metrics_.steady_allocs);
    w.i64(metrics_.refresh_frames);
    w.i64(metrics_.refresh_allocs);
    metrics_.latency_us.saveSnapshot(w);
    metrics_.latency_hist.saveSnapshot(w);
    w.u64(uint64_t(metrics_.drop_log.size()));
    for (const DropRecord &rec : metrics_.drop_log)
        writeDropRecord(w, rec);
    for (double g : last_gaze_)
        w.f64(g);
    w.u64(uint64_t(gaze_log_.size()));
    for (const dataset::GazeVec &g : gaze_log_)
        for (double v : g)
            w.f64(v);
    w.b(last_degraded_);
    system_.saveSnapshot(w);
    queue_.saveSnapshot(w);
}

Status
Session::restoreSnapshot(snap::SnapshotReader &r)
{
    Status fence = r.expectTag(kSessionTag);
    if (!fence.isOk())
        return fence;
    auto id = r.i32();
    auto active = r.b();
    auto record_gaze = r.b();
    if (!record_gaze.ok())
        return record_gaze.status();
    if (id.value() != id_)
        return Status::error(ErrorCode::CorruptSnapshot,
                             "session id %d != snapshot id %d", id_,
                             id.value());
    if (record_gaze.value() != record_gaze_)
        return Status::error(ErrorCode::CorruptSnapshot,
                             "record_gaze flag differs from this "
                             "session's configuration");
    active_ = active.value();
    long long *counters[] = {
        &metrics_.submitted,
        &metrics_.completed,
        &metrics_.queue_drops,
        &metrics_.drops_backpressure,
        &metrics_.drops_shed_on_close,
        &metrics_.drops_rate_downgrade,
        &metrics_.drops_failover,
        &metrics_.pipeline_drops,
        &metrics_.deadline_misses,
        &metrics_.max_queue_depth,
        &metrics_.redispatched_frames,
        &metrics_.degraded_res_frames,
        &metrics_.drop_log_overflow,
        &metrics_.steady_frames,
        &metrics_.steady_allocs,
        &metrics_.refresh_frames,
        &metrics_.refresh_allocs,
    };
    for (long long *c : counters) {
        auto v = r.i64();
        if (!v.ok())
            return v.status();
        *c = v.value();
    }
    Status s = metrics_.latency_us.restoreSnapshot(r);
    if (!s.isOk())
        return s;
    s = metrics_.latency_hist.restoreSnapshot(r);
    if (!s.isOk())
        return s;
    // detlint:allow(R12) drop_log_cap_ is the validation bound, not decoded state.
    auto drops = r.count(uint64_t(drop_log_cap_));
    if (!drops.ok())
        return drops.status();
    metrics_.drop_log.clear();
    metrics_.drop_log.reserve(size_t(drops.value()));
    for (uint64_t i = 0; i < drops.value(); ++i) {
        auto rec = readDropRecord(r);
        if (!rec.ok())
            return rec.status();
        // detlint:allow(R8) bounded by drop_log_cap_ via the count check
        metrics_.drop_log.push_back(rec.value());
    }
    for (double &g : last_gaze_) {
        auto v = r.f64();
        if (!v.ok())
            return v.status();
        g = v.value();
    }
    auto gaze_count = r.count(kMaxGazeLog);
    if (!gaze_count.ok())
        return gaze_count.status();
    gaze_log_.clear();
    gaze_log_.reserve(size_t(gaze_count.value()));
    for (uint64_t i = 0; i < gaze_count.value(); ++i) {
        dataset::GazeVec g{};
        for (double &v : g) {
            auto val = r.f64();
            if (!val.ok())
                return val.status();
            v = val.value();
        }
        // detlint:allow(R8) bounded by kMaxGazeLog via the count check
        gaze_log_.push_back(g);
    }
    auto last_degraded = r.b();
    if (!last_degraded.ok())
        return last_degraded.status();
    last_degraded_ = last_degraded.value();
    s = system_.restoreSnapshot(r);
    if (!s.isOk())
        return s;
    return queue_.restoreSnapshot(r);
}

} // namespace serve
} // namespace eyecod
