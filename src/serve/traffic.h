/**
 * @file
 * Deterministic synthetic traffic for the serving engine: N user
 * sessions, each an eye-motion trajectory (dataset::makeTrajectory,
 * including blinks) arriving at a nominal per-user frame rate with
 * seeded per-frame arrival jitter, plus scripted session churn
 * (staggered joins, early leaves).
 *
 * The whole trace is generated up front from (seed, session, frame)
 * via a stateless splitmix64 stream — no generator state is shared
 * between sessions — so a trace is bitwise reproducible and the
 * engine can be driven identically at any scheduler thread count.
 */

#ifndef EYECOD_SERVE_TRAFFIC_H
#define EYECOD_SERVE_TRAFFIC_H

#include <cstdint>
#include <vector>

#include "dataset/sequence.h"
#include "serve/frame_queue.h"

namespace eyecod {
namespace serve {

/** Traffic shape configuration. */
struct TrafficConfig
{
    int sessions = 4;                  ///< Concurrent user sessions.
    long frames_per_session = 100;     ///< Frames each user submits.
    long long frame_interval_us = 4167; ///< Nominal period (240 FPS).
    /**
     * Uniform per-frame arrival jitter as a fraction of the frame
     * interval (cameras are not phase-locked across users).
     */
    double arrival_jitter = 0.25;
    uint64_t seed = 0x5e111;           ///< Master trace seed.
    /**
     * Session i joins at i * churn_stagger_us (0 = everyone joins at
     * time zero).
     */
    long long churn_stagger_us = 0;
    /**
     * When > 0, every churn-th session leaves after submitting only
     * half its frames (mid-trace churn); 0 disables leaves.
     */
    int leave_every = 0;
    /** Eye-motion dynamics (blink reuse via blink_rate). */
    dataset::TrajectoryConfig trajectory;
};

/** One session's scripted traffic. */
struct SessionTraffic
{
    uint64_t user_seed = 0;      ///< Trajectory subject seed.
    long long join_us = 0;       ///< Virtual join time.
    /** Virtual leave time (session closes); -1 = stays to the end. */
    long long leave_us = -1;
    /** Frames in arrival order (strictly increasing arrival_us). */
    std::vector<FrameTicket> frames;
};

/**
 * Generate the full scripted trace for @p cfg. @p renderer supplies
 * the per-subject scene statistics for the trajectories.
 */
std::vector<SessionTraffic> makeTraffic(
    const dataset::SyntheticEyeRenderer &renderer,
    const TrafficConfig &cfg);

} // namespace serve
} // namespace eyecod

#endif // EYECOD_SERVE_TRAFFIC_H
