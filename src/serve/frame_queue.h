/**
 * @file
 * Bounded per-session frame queue for the serving engine.
 *
 * One queue sits between each session's frame producer (the traffic
 * source / sensor feed) and the cross-session scheduler. The queue is
 * bounded and *never blocks the producer*: when a push finds the
 * queue full, the oldest queued frame is evicted and returned to the
 * caller as an explicit drop record — a frame that has been waiting
 * the longest is also the one whose deadline is closest to (or past)
 * expiry, so drop-oldest sheds the least useful work first and keeps
 * the queue's age bounded by capacity x service time.
 *
 * The discipline is single-producer / single-consumer (the traffic
 * feed pushes, the scheduler pops); a mutex guards the ring so the
 * producer may live on a different thread than the scheduler without
 * TSan findings. All state a frame needs downstream travels in the
 * ticket, so a dropped frame costs no rendering or NN work.
 *
 * Storage is a fixed ring preallocated at construction: push, pop,
 * and drop-oldest all recycle ticket slots in place, so the queue
 * performs zero heap traffic after construction — including under
 * sustained backpressure, where the evicted slot is immediately
 * reused for the incoming ticket.
 */

#ifndef EYECOD_SERVE_FRAME_QUEUE_H
#define EYECOD_SERVE_FRAME_QUEUE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/snapshot.h"
#include "common/thread_annotations.h"
#include "dataset/synthetic_eye.h"

namespace eyecod {
namespace serve {

/**
 * One frame waiting to be served: identity, virtual arrival time,
 * and the scene parameters to render at dispatch (rendering is
 * deferred past the queue so dropped frames cost nothing).
 */
struct FrameTicket
{
    long frame_index = 0;        ///< Per-session monotone index.
    long long arrival_us = 0;    ///< Virtual arrival timestamp.
    dataset::EyeParams params;   ///< Scene to render when dispatched.
};

/** Why a frame was shed (drop accounting is broken out by reason). */
enum class DropReason : int {
    Backpressure = 0, ///< Drop-oldest eviction from a full queue.
    ShedOnClose,      ///< Queue shed at session close / engine stop.
    RateDowngrade,    ///< Refresh-rate downgrade (degradation tier 3).
    Failover,         ///< Retries exhausted after chip failures.
};

/** Number of DropReason values. */
constexpr int kNumDropReasons = 4;

/** Human-readable name of a DropReason. */
const char *dropReasonName(DropReason reason);

/** Record of one shed frame. */
struct DropRecord
{
    long frame_index = 0;     ///< Which frame was shed.
    long long arrival_us = 0; ///< When it arrived.
    long long dropped_us = 0; ///< When the eviction happened.
    DropReason reason = DropReason::Backpressure;
};

/** Encode one ticket field-wise (identity, arrival, scene params). */
void writeTicket(snap::SnapshotWriter &w, const FrameTicket &ticket);

/** Decode one ticket. */
Result<FrameTicket> readTicket(snap::SnapshotReader &r);

/** Encode one drop record field-wise. */
void writeDropRecord(snap::SnapshotWriter &w, const DropRecord &rec);

/** Decode one drop record (reason validated against the enum). */
Result<DropRecord> readDropRecord(snap::SnapshotReader &r);

/**
 * Bounded SPSC frame queue with drop-oldest backpressure.
 */
class BoundedFrameQueue
{
  public:
    /** @param capacity maximum queued frames (>= 1). */
    explicit BoundedFrameQueue(size_t capacity);

    /**
     * Enqueue @p ticket at virtual time @p now_us. Never blocks: a
     * full queue evicts its oldest entry, which is returned as a
     * DropRecord so the caller can account for the shed frame.
     */
    [[nodiscard]] std::optional<DropRecord> push(const FrameTicket &ticket,
                                   long long now_us);

    /** Arrival time of the oldest queued frame (empty when none). */
    std::optional<long long> frontArrival() const;

    /** Dequeue the oldest frame into @p out; false when empty. */
    [[nodiscard]] bool pop(FrameTicket *out);

    /**
     * Evict every queued frame, counting each as a drop (session
     * close / non-drain stop). Returns the evicted count.
     */
    size_t clear();

    /** Current depth. */
    size_t size() const;
    /** True when no frame is queued. */
    bool empty() const { return size() == 0; }
    /** Configured bound. */
    size_t capacity() const { return capacity_; }

    /** Total frames ever pushed (including later-dropped ones). */
    uint64_t totalPushed() const;
    /** Total frames evicted by backpressure or clear(). */
    uint64_t totalDropped() const;
    /** Largest depth ever observed. */
    size_t maxDepth() const;

    /** Serialize the queued tickets (oldest first) + counters. */
    void saveSnapshot(snap::SnapshotWriter &w) const;

    /**
     * Restore into a queue of the same capacity; the snapshot's
     * capacity is validated, queued tickets land at the front of the
     * ring (head 0), and the counters resume exactly.
     */
    [[nodiscard]] Status restoreSnapshot(snap::SnapshotReader &r);

  private:
    mutable Mutex mutex_;
    /** Fixed ring: ring_[(head_ + i) % capacity_] is the i-th oldest
     *  queued ticket. Preallocated; slots recycle in place. */
    std::vector<FrameTicket> ring_ EYECOD_GUARDED_BY(mutex_);
    /** Index of the oldest queued ticket. */
    size_t head_ EYECOD_GUARDED_BY(mutex_) = 0;
    /** Queued tickets. */
    size_t count_ EYECOD_GUARDED_BY(mutex_) = 0;
    /** Immutable after construction; read lock-free. */
    size_t capacity_;
    uint64_t pushed_ EYECOD_GUARDED_BY(mutex_) = 0;
    uint64_t dropped_ EYECOD_GUARDED_BY(mutex_) = 0;
    size_t max_depth_ EYECOD_GUARDED_BY(mutex_) = 0;
};

} // namespace serve
} // namespace eyecod

#endif // EYECOD_SERVE_FRAME_QUEUE_H
