#include "eyetrack/tracker.h"

#include <algorithm>

#include "common/logging.h"

namespace eyecod {
namespace eyetrack {

EyeTracker::EyeTracker(TrackerConfig cfg)
    : cfg_(std::move(cfg)), pipeline_(cfg_.pipeline),
      filter_(cfg_.filter)
{
}

void
EyeTracker::train(const dataset::SyntheticEyeRenderer &renderer,
                  int train_count)
{
    pipeline_.trainGaze(renderer, train_count);
}

TrackerOutput
EyeTracker::processFrame(const Image &scene)
{
    const auto frame = pipeline_.processFrame(scene);
    ++frames_;

    TrackerOutput out;
    out.roi = frame.roi;
    out.raw_gaze = frame.gaze;

    // Blink detection: a closed eye leaves no pupil-dark pixels in
    // the ROI. Cheap enough to run every frame, unlike the
    // segmentation stage.
    const Image crop = frame.view.cropped(frame.roi);
    long dark = 0;
    for (float v : crop.data())
        dark += v <= cfg_.pupil_dark_level;
    const double dark_fraction =
        double(dark) / double(crop.size());
    out.blink = dark_fraction < cfg_.min_pupil_fraction;

    if (out.blink) {
        ++blinks_;
        // Hold the last good gaze through the blink; the filter
        // state is left untouched so it resumes smoothly.
        out.gaze = has_gaze_ ? held_gaze_
                             : dataset::GazeVec{0.0, 0.0, 1.0};
        out.confidence = 0.0;
        return out;
    }

    const GazeFilter::Output f = filter_.update(frame.gaze);
    out.gaze = f.gaze;
    out.saccade = f.saccade;
    held_gaze_ = f.gaze;
    has_gaze_ = true;

    // Confidence: full when the pupil is clearly visible and the
    // gaze is steady; reduced during saccades (motion blur) and for
    // marginal pupil evidence.
    const double pupil_conf = std::clamp(
        dark_fraction / (2.0 * cfg_.min_pupil_fraction), 0.0, 1.0);
    const double motion_conf = f.saccade ? 0.5 : 1.0;
    out.confidence = pupil_conf * motion_conf;
    return out;
}

void
EyeTracker::reset()
{
    pipeline_.reset();
    filter_.reset();
    has_gaze_ = false;
    frames_ = 0;
    blinks_ = 0;
}

double
EyeTracker::blinkRate() const
{
    return frames_ > 0 ? double(blinks_) / double(frames_) : 0.0;
}

} // namespace eyetrack
} // namespace eyecod
