#include "eyetrack/pipeline.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace eyecod {
namespace eyetrack {

namespace {

/** True when every component of @p g is finite. */
bool
gazeFinite(const dataset::GazeVec &g)
{
    return std::isfinite(g[0]) && std::isfinite(g[1]) &&
           std::isfinite(g[2]);
}

/**
 * Replace non-finite pixels with mid-gray in place; returns the
 * number of pixels sanitized.
 */
long
sanitizeView(Image &view)
{
    long fixed = 0;
    for (float &v : view.data()) {
        if (!std::isfinite(v)) {
            v = 0.5f;
            ++fixed;
        }
    }
    return fixed;
}

} // namespace

PredictThenFocusPipeline::PredictThenFocusPipeline(PipelineConfig cfg)
    : cfg_(cfg), segmenter_(cfg.segmenter),
      roi_(cfg.roi_height, cfg.roi_width), gaze_(cfg.gaze),
      backoff_(cfg.watchdog.initial_backoff)
{
    eyecod_assert(cfg_.roi_refresh > 0, "roi_refresh must be > 0");
    eyecod_assert(cfg_.watchdog.initial_backoff > 0 &&
                  cfg_.watchdog.max_backoff > 0,
                  "watchdog backoff must be positive");
    if (cfg_.faults.anyEnabled())
        injector_ =
            std::make_unique<flatcam::FaultInjector>(cfg_.faults);
    if (cfg_.camera == CameraKind::FlatCam) {
        flatcam::MaskConfig mc;
        mc.scene_rows = cfg_.scene_size;
        mc.scene_cols = cfg_.scene_size;
        mc.sensor_rows = cfg_.scene_size + cfg_.flatcam_sensor_margin;
        mc.sensor_cols = cfg_.scene_size + cfg_.flatcam_sensor_margin;
        mc.seed = cfg_.mask_seed;
        // The MLS must span the scene extent.
        mc.mls_order = 3;
        while ((1 << mc.mls_order) - 1 < mc.sensor_rows)
            ++mc.mls_order;
        sensor_ = std::make_unique<flatcam::FlatCamSensor>(
            flatcam::makeSeparableMask(mc), cfg_.sensor_noise);
        recon_ = std::make_unique<flatcam::FlatCamReconstructor>(
            sensor_->mask(), cfg_.recon_epsilon);
        sensor_->setFaultInjector(injector_.get());
    }
    // Pre-warm the frame arena: its only serving-path consumer is the
    // border-clamped ROI materialization (fixed ROI extent), and an
    // out-of-bounds ROI can first occur on a steady frame — fetching
    // the block lazily there would be a hot-path heap allocation.
    arena_.allocImage(cfg_.roi_height, cfg_.roi_width);
    arena_.resetEpoch();
}

PredictThenFocusPipeline::~PredictThenFocusPipeline() = default;

Image
PredictThenFocusPipeline::acquire(const Image &scene) const
{
    eyecod_assert(scene.height() == cfg_.scene_size &&
                  scene.width() == cfg_.scene_size,
                  "scene %dx%d != configured extent %d",
                  scene.height(), scene.width(), cfg_.scene_size);
    if (cfg_.camera == CameraKind::Lens)
        return scene;
    return recon_->reconstruct(sensor_->capture(scene));
}

void
PredictThenFocusPipeline::trainGaze(
    const dataset::SyntheticEyeRenderer &renderer, int train_count)
{
    eyecod_assert(renderer.config().image_size == cfg_.scene_size,
                  "renderer extent %d != pipeline extent %d",
                  renderer.config().image_size, cfg_.scene_size);
    std::vector<Image> rois;
    std::vector<dataset::GazeVec> gazes;
    rois.reserve(size_t(train_count));
    gazes.reserve(size_t(train_count));
    uint64_t crop_rng = 0x7ea1;
    Rng jitter_rng(0x177e4);
    for (int i = 0; i < train_count; ++i) {
        const dataset::EyeSample s = renderer.sample(uint64_t(i));
        const Image view = acquire(s.image);
        const dataset::SegMask mask = segmenter_.segment(view);
        Rect r = roi_.predict(mask, cfg_.policy, &crop_rng);
        if (cfg_.train_anchor_jitter > 0) {
            // Staleness augmentation: the deployed ROI anchor lags
            // the pupil by up to two refresh windows.
            const int j = cfg_.train_anchor_jitter;
            r.y += int(jitter_rng.uniformInt(-j, j));
            r.x += int(jitter_rng.uniformInt(-j, j));
        }
        rois.push_back(view.cropped(r));
        gazes.push_back(s.gaze);
    }
    gaze_.train(rois, gazes);
}

Status
PredictThenFocusPipeline::acquireFrameInto(
    const Image &scene, long frame,
    const flatcam::FrameFaults &faults, Image *view)
{
    if (scene.height() != cfg_.scene_size ||
        scene.width() != cfg_.scene_size)
        return Status::error(
            ErrorCode::ShapeMismatch,
            "frame %ld: scene %dx%d != configured extent %d", frame,
            scene.height(), scene.width(), cfg_.scene_size);

    if (cfg_.camera == CameraKind::Lens) {
        if (faults.dropped())
            return Status::error(ErrorCode::FrameDropped,
                                 "frame %ld dropped by sensor",
                                 frame);
        *view = scene; // capacity-reusing copy-assign
        if (injector_)
            injector_->applySensorFaults(faults, frame, *view);
    } else {
        // FlatCam: the sensor consults the same injector schedule
        // (drop + sensor-domain faults happen in the measurement
        // domain, before reconstruction). Measurement and view land
        // in member scratch; no per-frame image allocation.
        Status y = sensor_->captureFrameInto(
            ImageConstView::of(scene), frame, &meas_);
        if (!y.isOk())
            return y;
        Status x = recon_->reconstructFrameInto(
            ImageConstView::of(meas_), view);
        if (!x.isOk())
            return x;
    }
    if (injector_)
        injector_->applyViewFaults(faults, frame, *view);
    return Status::ok();
}

void
PredictThenFocusPipeline::refreshRoi(ImageConstView view, bool forced,
                                     FrameHealth &health)
{
    const dataset::SegMask mask = segmenter_.segment(view);
    const MaskStats stats = computeMaskStats(mask);
    const Rect candidate =
        roi_.predict(mask, cfg_.policy, &crop_rng_);
    const RoiGateDecision gate =
        validateRoi(mask, stats, candidate, cfg_.roi_gate);
    health.roi_confidence = gate.confidence;

    if (gate.accepted) {
        if (forced || seg_pending_ || outage_start_ >= 0) {
            // Recovery path: the previous chain is suspect, so the
            // validated fresh ROI becomes active immediately instead
            // of waiting out a refresh window.
            current_roi_ = candidate;
            next_roi_ = candidate;
        } else {
            // Healthy path: the paper's predict-then-focus rotation.
            // The fresh ROI becomes active at the *next* refresh
            // boundary, so gaze always consumes an ROI extracted
            // N..2N frames ago (Sec. 4.3).
            if (next_roi_)
                current_roi_ = next_roi_;
            next_roi_ = candidate;
            if (!current_roi_)
                current_roi_ = next_roi_;
        }
        last_good_roi_ = candidate;
        last_accept_frame_ = frame_index_;
        seg_pending_ = false;
        frames_to_retry_ = -1;
        backoff_ = cfg_.watchdog.initial_backoff;
        return;
    }

    // Rejected: keep the current chain and let the watchdog retry
    // early with capped exponential backoff.
    ++health_stats_.roi_rejections;
    health.roi_rejected = true;
    warnLimited("roi-gate-reject", "frame %ld: ROI rejected (%s)",
                frame_index_, gate.reason.toString().c_str());
    seg_pending_ = false;
    if (cfg_.watchdog.enabled) {
        frames_to_retry_ = backoff_;
        const int cap =
            std::min(cfg_.watchdog.max_backoff, cfg_.roi_refresh);
        backoff_ = std::min(backoff_ * 2, std::max(1, cap));
    }
}

Rect
PredictThenFocusPipeline::centeredCrop() const
{
    Rect r;
    r.height = cfg_.roi_height;
    r.width = cfg_.roi_width;
    r.y = (cfg_.scene_size - cfg_.roi_height) / 2;
    r.x = (cfg_.scene_size - cfg_.roi_width) / 2;
    return r;
}

PredictThenFocusPipeline::FrameResult
PredictThenFocusPipeline::processFrame(const Image &scene)
{
    // Copying shim: materializes the member result slot.
    return processFrameRef(scene);
}

const PredictThenFocusPipeline::FrameResult &
PredictThenFocusPipeline::processFrameRef(const Image &scene)
{
    eyecod_assert(gaze_.trained(),
                  "processFrame() before trainGaze()");
    // New frame epoch: every arena span from the previous frame is
    // recycled (and ASan-poisoned) here.
    arena_.resetEpoch();
    FrameResult &result = result_;
    result.gaze = dataset::GazeVec{0, 0, 1};
    result.roi_refreshed = false;
    result.roi = Rect();
    result.health = FrameHealth();
    FrameHealth &health = result.health;
    const long frame = frame_index_;

    flatcam::FrameFaults faults;
    if (injector_)
        faults = injector_->plan(frame);
    health.faults_seen = faults.count();
    for (int k = 0; k < flatcam::kNumFaultKinds; ++k)
        health_stats_.fault_counts[size_t(k)] +=
            faults.active[size_t(k)] ? 1 : 0;

    // --- Acquisition (typed errors, never aborts) ---
    bool view_ok = false;
    const Status acquired =
        acquireFrameInto(scene, frame, faults, &view_);
    if (acquired.isOk()) {
        if (sanitizeView(view_) > 0) {
            health.nonfinite_view = true;
            ++health_stats_.nonfinite_views;
            warnLimited("nonfinite-view",
                        "frame %ld: non-finite pixels sanitized",
                        frame);
        }
        view_ok = true;
    } else {
        if (acquired.code() == ErrorCode::ShapeMismatch)
            ++health_stats_.shape_mismatches;
        health.frame_dropped = true;
        ++health_stats_.dropped_frames;
        warnLimited("frame-dropped", "frame %ld unusable: %s", frame,
                    acquired.toString().c_str());
    }

    // --- Watchdog countdown ---
    bool forced = false;
    if (frames_to_retry_ > 0)
        --frames_to_retry_;
    if (cfg_.watchdog.enabled && frames_to_retry_ == 0) {
        forced = true;
        frames_to_retry_ = -1;
    }

    // --- Segmentation / ROI refresh ---
    const bool boundary = frame % cfg_.roi_refresh == 0;
    if (boundary || forced || seg_pending_) {
        if (!view_ok) {
            // Nothing to segment; carry the obligation to the next
            // usable frame.
            seg_pending_ = true;
        } else {
            if (forced || seg_pending_) {
                health.watchdog_retry = true;
                ++health_stats_.watchdog_retries;
            }
            refreshRoi(ImageConstView::of(view_), forced, health);
            result.roi_refreshed = true;
        }
    }

    // --- ROI fallback chain: fresh chain -> last good -> center ---
    const long stale_limit =
        (long)cfg_.stale_limit_windows * cfg_.roi_refresh;
    const bool chain_fresh =
        current_roi_ && last_accept_frame_ >= 0 &&
        frame - last_accept_frame_ <= stale_limit;
    if (chain_fresh) {
        result.roi = *current_roi_;
        health.roi_source = RoiSource::Predicted;
    } else if (last_good_roi_) {
        result.roi = *last_good_roi_;
        health.roi_source = RoiSource::LastGood;
    } else {
        result.roi = centeredCrop();
        health.roi_source = RoiSource::CenterFallback;
    }

    // --- Gaze (always finite) ---
    if (view_ok) {
        // In-bounds ROI: a strided view straight into the acquired
        // frame, no crop copy. Out-of-bounds ROI: materialize the
        // edge-clamped crop (Image::cropped semantics) in the frame
        // arena. Bounds are tested with contains() up front — an
        // out-of-bounds ROI is a routine steady-state event (the eye
        // drifts to the frame border), and subview()'s typed error
        // would heap-allocate its message on every such frame.
        dataset::GazeVec g;
        const ImageConstView src = ImageConstView::of(view_);
        if (src.contains(result.roi)) {
            g = gaze_.predict(src.subview(result.roi).value());
        } else {
            ImageView c =
                arena_.allocImage(result.roi.height,
                                  result.roi.width);
            for (int y = 0; y < c.height(); ++y)
                for (int x = 0; x < c.width(); ++x)
                    c.at(y, x) = src.atClamped(result.roi.y + y,
                                               result.roi.x + x);
            g = gaze_.predict(c.asConst());
        }
        if (!gazeFinite(g)) {
            g = has_last_gaze_ ? last_gaze_
                               : dataset::GazeVec{0, 0, 1};
            health.gaze_held = true;
            ++health_stats_.gaze_holds;
            warnLimited("nonfinite-gaze",
                        "frame %ld: non-finite gaze held", frame);
        } else {
            last_gaze_ = g;
            has_last_gaze_ = true;
        }
        result.gaze = g;
        result.view = view_; // capacity-reusing copy-assign
        last_view_ = view_;
    } else {
        result.gaze =
            has_last_gaze_ ? last_gaze_ : dataset::GazeVec{0, 0, 1};
        health.gaze_held = true;
        ++health_stats_.gaze_holds;
        result.view = last_view_;
    }

    // --- Degraded-mode flag and recovery accounting ---
    health.degraded = health.frame_dropped || health.roi_rejected ||
                      health.nonfinite_view || health.gaze_held ||
                      health.watchdog_retry ||
                      health.faults_seen > 0 ||
                      health.roi_source != RoiSource::Predicted;
    if (health.degraded) {
        if (outage_start_ < 0)
            outage_start_ = frame;
        ++health_stats_.degraded_frames;
    } else if (outage_start_ >= 0) {
        const long latency = frame - outage_start_;
        health.recovery_latency = latency;
        ++health_stats_.recoveries;
        health_stats_.sum_recovery_latency += latency;
        outage_start_ = -1;
    }

    ++health_stats_.frames;
    ++frame_index_;
    return result;
}

void
PredictThenFocusPipeline::reset()
{
    frame_index_ = 0;
    current_roi_.reset();
    next_roi_.reset();
    crop_rng_ = 0x5eed;
    // Degradation FSM.
    last_good_roi_.reset();
    last_accept_frame_ = -1;
    last_gaze_ = dataset::GazeVec{0, 0, 1};
    has_last_gaze_ = false;
    last_view_ = Image();
    seg_pending_ = false;
    frames_to_retry_ = -1;
    backoff_ = cfg_.watchdog.initial_backoff;
    outage_start_ = -1;
    health_stats_ = HealthStats();
    // Replay the identical sensor noise stream on the next sequence.
    if (sensor_)
        sensor_->resetNoise();
}

namespace {

constexpr uint32_t kPipelineTag = 0x50495031; // "PIP1"

void
writeOptionalRect(snap::SnapshotWriter &w, const std::optional<Rect> &r)
{
    w.b(r.has_value());
    if (r.has_value())
        snap::writeRect(w, *r);
}

Status
readOptionalRect(snap::SnapshotReader &r, std::optional<Rect> *out)
{
    auto has = r.b();
    if (!has.ok())
        return has.status();
    if (!has.value()) {
        out->reset();
        return Status::ok();
    }
    auto rect = snap::readRect(r);
    if (!rect.ok())
        return rect.status();
    *out = rect.value();
    return Status::ok();
}

} // namespace

void
PredictThenFocusPipeline::saveSnapshot(snap::SnapshotWriter &w) const
{
    w.tag(kPipelineTag);
    // ROI refresh chain.
    w.i64(frame_index_);
    writeOptionalRect(w, current_roi_);
    writeOptionalRect(w, next_roi_);
    w.u64(crop_rng_);
    // Degradation FSM.
    writeOptionalRect(w, last_good_roi_);
    w.i64(last_accept_frame_);
    for (double g : last_gaze_)
        w.f64(g);
    w.b(has_last_gaze_);
    snap::writeImage(w, last_view_);
    w.b(seg_pending_);
    w.i64(frames_to_retry_);
    w.i32(backoff_);
    w.i64(outage_start_);
    // Health counters.
    w.i64(health_stats_.frames);
    w.i64(health_stats_.degraded_frames);
    w.i64(health_stats_.dropped_frames);
    w.i64(health_stats_.nonfinite_views);
    w.i64(health_stats_.shape_mismatches);
    w.i64(health_stats_.roi_rejections);
    w.i64(health_stats_.watchdog_retries);
    w.i64(health_stats_.gaze_holds);
    w.i64(health_stats_.recoveries);
    w.i64(health_stats_.sum_recovery_latency);
    for (long c : health_stats_.fault_counts)
        w.i64(c);
    // Sensor noise stream position (FlatCam cameras only).
    w.b(sensor_ != nullptr);
    if (sensor_)
        sensor_->saveNoiseState(w);
}

Status
PredictThenFocusPipeline::restoreSnapshot(snap::SnapshotReader &r)
{
    Status fence = r.expectTag(kPipelineTag);
    if (!fence.isOk())
        return fence;
    auto frame_index = r.i64();
    if (!frame_index.ok())
        return frame_index.status();
    frame_index_ = long(frame_index.value());
    Status s = readOptionalRect(r, &current_roi_);
    if (!s.isOk())
        return s;
    s = readOptionalRect(r, &next_roi_);
    if (!s.isOk())
        return s;
    auto crop_rng = r.u64();
    if (!crop_rng.ok())
        return crop_rng.status();
    crop_rng_ = crop_rng.value();
    s = readOptionalRect(r, &last_good_roi_);
    if (!s.isOk())
        return s;
    auto last_accept = r.i64();
    if (!last_accept.ok())
        return last_accept.status();
    last_accept_frame_ = long(last_accept.value());
    for (double &g : last_gaze_) {
        auto v = r.f64();
        if (!v.ok())
            return v.status();
        g = v.value();
    }
    auto has_gaze = r.b();
    if (!has_gaze.ok())
        return has_gaze.status();
    has_last_gaze_ = has_gaze.value();
    s = snap::readImage(r, &last_view_);
    if (!s.isOk())
        return s;
    auto seg_pending = r.b();
    auto frames_to_retry = r.i64();
    auto backoff = r.i32();
    auto outage_start = r.i64();
    if (!outage_start.ok())
        return outage_start.status();
    seg_pending_ = seg_pending.value();
    frames_to_retry_ = long(frames_to_retry.value());
    backoff_ = backoff.value();
    outage_start_ = long(outage_start.value());
    long *counters[] = {
        &health_stats_.frames,
        &health_stats_.degraded_frames,
        &health_stats_.dropped_frames,
        &health_stats_.nonfinite_views,
        &health_stats_.shape_mismatches,
        &health_stats_.roi_rejections,
        &health_stats_.watchdog_retries,
        &health_stats_.gaze_holds,
        &health_stats_.recoveries,
        &health_stats_.sum_recovery_latency,
    };
    for (long *c : counters) {
        auto v = r.i64();
        if (!v.ok())
            return v.status();
        *c = long(v.value());
    }
    for (long &c : health_stats_.fault_counts) {
        auto v = r.i64();
        if (!v.ok())
            return v.status();
        c = long(v.value());
    }
    auto has_sensor = r.b();
    if (!has_sensor.ok())
        return has_sensor.status();
    if (has_sensor.value() != (sensor_ != nullptr))
        return Status::error(ErrorCode::CorruptSnapshot,
                             "snapshot camera kind differs from this "
                             "pipeline's configuration");
    if (sensor_) {
        s = sensor_->restoreNoiseState(r);
        if (!s.isOk())
            return s;
    }
    return Status::ok();
}

long long
PredictThenFocusPipeline::gazeMacsPerFrame() const
{
    return gaze_.macsPerFrame();
}

double
PredictThenFocusPipeline::segmentationRatePerFrame() const
{
    return 1.0 / double(cfg_.roi_refresh);
}

long long
PredictThenFocusPipeline::reconMacsPerFrame() const
{
    return recon_ ? recon_->macsPerFrame() : 0;
}

} // namespace eyetrack
} // namespace eyecod
