#include "eyetrack/pipeline.h"

#include "common/logging.h"

namespace eyecod {
namespace eyetrack {

PredictThenFocusPipeline::PredictThenFocusPipeline(PipelineConfig cfg)
    : cfg_(cfg), segmenter_(cfg.segmenter),
      roi_(cfg.roi_height, cfg.roi_width), gaze_(cfg.gaze)
{
    eyecod_assert(cfg_.roi_refresh > 0, "roi_refresh must be > 0");
    if (cfg_.camera == CameraKind::FlatCam) {
        flatcam::MaskConfig mc;
        mc.scene_rows = cfg_.scene_size;
        mc.scene_cols = cfg_.scene_size;
        mc.sensor_rows = cfg_.scene_size + cfg_.flatcam_sensor_margin;
        mc.sensor_cols = cfg_.scene_size + cfg_.flatcam_sensor_margin;
        mc.seed = cfg_.mask_seed;
        // The MLS must span the scene extent.
        mc.mls_order = 3;
        while ((1 << mc.mls_order) - 1 < mc.sensor_rows)
            ++mc.mls_order;
        sensor_ = std::make_unique<flatcam::FlatCamSensor>(
            flatcam::makeSeparableMask(mc), cfg_.sensor_noise);
        recon_ = std::make_unique<flatcam::FlatCamReconstructor>(
            sensor_->mask(), cfg_.recon_epsilon);
    }
}

PredictThenFocusPipeline::~PredictThenFocusPipeline() = default;

Image
PredictThenFocusPipeline::acquire(const Image &scene) const
{
    eyecod_assert(scene.height() == cfg_.scene_size &&
                  scene.width() == cfg_.scene_size,
                  "scene %dx%d != configured extent %d",
                  scene.height(), scene.width(), cfg_.scene_size);
    if (cfg_.camera == CameraKind::Lens)
        return scene;
    return recon_->reconstruct(sensor_->capture(scene));
}

void
PredictThenFocusPipeline::trainGaze(
    const dataset::SyntheticEyeRenderer &renderer, int train_count)
{
    eyecod_assert(renderer.config().image_size == cfg_.scene_size,
                  "renderer extent %d != pipeline extent %d",
                  renderer.config().image_size, cfg_.scene_size);
    std::vector<Image> rois;
    std::vector<dataset::GazeVec> gazes;
    rois.reserve(size_t(train_count));
    gazes.reserve(size_t(train_count));
    uint64_t crop_rng = 0x7ea1;
    Rng jitter_rng(0x177e4);
    for (int i = 0; i < train_count; ++i) {
        const dataset::EyeSample s = renderer.sample(uint64_t(i));
        const Image view = acquire(s.image);
        const dataset::SegMask mask = segmenter_.segment(view);
        Rect r = roi_.predict(mask, cfg_.policy, &crop_rng);
        if (cfg_.train_anchor_jitter > 0) {
            // Staleness augmentation: the deployed ROI anchor lags
            // the pupil by up to two refresh windows.
            const int j = cfg_.train_anchor_jitter;
            r.y += int(jitter_rng.uniformInt(-j, j));
            r.x += int(jitter_rng.uniformInt(-j, j));
        }
        rois.push_back(view.cropped(r));
        gazes.push_back(s.gaze);
    }
    gaze_.train(rois, gazes);
}

PredictThenFocusPipeline::FrameResult
PredictThenFocusPipeline::processFrame(const Image &scene)
{
    eyecod_assert(gaze_.trained(),
                  "processFrame() before trainGaze()");
    const Image view = acquire(scene);

    FrameResult result;
    if (frame_index_ % cfg_.roi_refresh == 0) {
        // Segmentation runs this frame; its ROI becomes active at the
        // *next* refresh boundary, so gaze always consumes an ROI
        // extracted N..2N frames ago (Sec. 4.3).
        const dataset::SegMask mask = segmenter_.segment(view);
        if (next_roi_)
            current_roi_ = next_roi_;
        next_roi_ = roi_.predict(mask, cfg_.policy, &crop_rng_);
        if (!current_roi_)
            current_roi_ = next_roi_;
        result.roi_refreshed = true;
    }

    result.roi = *current_roi_;
    result.gaze = gaze_.predict(view.cropped(result.roi));
    result.view = view;
    ++frame_index_;
    return result;
}

void
PredictThenFocusPipeline::reset()
{
    frame_index_ = 0;
    current_roi_.reset();
    next_roi_.reset();
    crop_rng_ = 0x5eed;
}

long long
PredictThenFocusPipeline::gazeMacsPerFrame() const
{
    return gaze_.macsPerFrame();
}

double
PredictThenFocusPipeline::segmentationRatePerFrame() const
{
    return 1.0 / double(cfg_.roi_refresh);
}

long long
PredictThenFocusPipeline::reconMacsPerFrame() const
{
    return recon_ ? recon_->macsPerFrame() : 0;
}

} // namespace eyetrack
} // namespace eyecod
