/**
 * @file
 * Eye semantic segmentation: the functional stand-in for RITNet's
 * role in the predict stage (see DESIGN.md on the trained-checkpoint
 * substitution), plus the mIOU metric of Tab. 3.
 *
 * The classical segmenter exploits the same image statistics the
 * paper's Sec. 4.3 relies on: "pupils have a significantly different
 * feature than the other parts in the image, as the pupil is usually
 * a circle with a darker color than its surrounding", while the
 * low-contrast sclera is the hard class — especially on noisy FlatCam
 * reconstructions.
 */

#ifndef EYECOD_EYETRACK_SEGMENTATION_H
#define EYECOD_EYETRACK_SEGMENTATION_H

#include <array>
#include <memory>

#include "common/image.h"
#include "common/image_view.h"
#include "dataset/synthetic_eye.h"
#include "nn/runtime.h"

namespace eyecod {
namespace eyetrack {

/** Segmenter configuration (intensity-band thresholds). */
struct SegmenterConfig
{
    float pupil_max = 0.20f;   ///< Pupil: darkest band.
    float iris_max = 0.48f;    ///< Iris: mid band.
    float sclera_min = 0.66f;  ///< Sclera: bright band.
    /** Smoothing box-filter radius applied before thresholding. */
    int smooth_radius = 1;
    /**
     * Quantization bits emulated on the input (0 = float); the 8-bit
     * rows of Tab. 3 snap the input to a 256-level grid first.
     */
    int quant_bits = 0;
    /**
     * Extra fraction of pixels randomly mislabelled near class
     * boundaries, emulating the residual error of the trained model;
     * 0 disables.
     */
    double boundary_noise = 0.0;
};

/**
 * Threshold-and-region based eye segmenter.
 */
class ClassicalSegmenter
{
  public:
    explicit ClassicalSegmenter(SegmenterConfig cfg = {});

    /**
     * Segment an eye image into the four OpenEDS classes.
     *
     * The pupil is detected as the largest dark connected component;
     * iris and sclera bands are kept only when connected to the
     * pupil region, which suppresses dark/bright clutter elsewhere.
     */
    dataset::SegMask segment(const Image &eye) const;

    /**
     * View-based segmentation: the eye crop arrives as a (possibly
     * strided) view straight off the frame spine. Bitwise-identical
     * to the owning-image overload. Segmentation runs only on ROI
     * refresh frames, so its internal scratch is allocated per call
     * rather than pooled.
     */
    dataset::SegMask segment(ImageConstView eye) const;

    /** Configuration in use. */
    const SegmenterConfig &config() const { return cfg_; }

  private:
    SegmenterConfig cfg_;
};

/** Neural segmenter configuration. */
struct NeuralSegmenterConfig
{
    int height = 64;  ///< Network input rows (deployment uses 256).
    int width = 64;   ///< Network input columns.
    int quant_bits = 0; ///< 0 float, 8 for the int8 deployment rows.
    /** Execution backend for the planned runtime. */
    nn::BackendKind backend = nn::BackendKind::Serial;
    int threads = 0;  ///< Threaded backend only; 0 = hardware.
};

/**
 * RITNet-based eye segmenter on the planned NN runtime.
 *
 * The graph is planned once at construction; every segment() call
 * reuses the same ExecutionPlan and backend arena, so steady-state
 * inference performs zero tensor allocation.
 */
class NeuralSegmenter
{
  public:
    explicit NeuralSegmenter(NeuralSegmenterConfig cfg = {});

    /**
     * Segment an eye image into the four OpenEDS classes. The input
     * is resized to the network resolution and the per-pixel argmax
     * over the 4-class logits becomes the mask.
     */
    dataset::SegMask segment(const Image &eye);

    /**
     * View-based segmentation: the crop arrives as a view, the
     * network input tensor is a persistent member handed to
     * Backend::runCheckedInto without copy-in. Bitwise-identical to
     * the owning-image overload.
     */
    dataset::SegMask segment(ImageConstView eye);

    /** Arena/liveness accounting of the underlying plan. */
    const nn::PlanStats &planStats() const { return plan_.stats(); }

    /** Name of the backend in use ("serial", "threaded-N"). */
    std::string backendName() const { return backend_->name(); }

    /** Backend executing the plan (e.g. to install a fault tap). */
    nn::Backend &backend() { return *backend_; }

    /** Configuration in use. */
    const NeuralSegmenterConfig &config() const { return cfg_; }

  private:
    NeuralSegmenterConfig cfg_;
    nn::Graph graph_;       ///< Must outlive plan_.
    nn::ExecutionPlan plan_;
    std::unique_ptr<nn::Backend> backend_;

    // Persistent inference scratch: resized crop, input tensor handed
    // to the backend by pointer, input pointer list, output logits.
    Image sized_;
    nn::Tensor input_;
    std::vector<const nn::Tensor *> input_ptrs_;
    nn::Tensor logits_;
};

/**
 * Per-class intersection-over-union and their mean (mIOU, percent).
 *
 * @return {iou_bg, iou_sclera, iou_iris, iou_pupil, mean} in percent.
 */
std::array<double, 5> segmentationIou(const dataset::SegMask &pred,
                                      const dataset::SegMask &truth);

} // namespace eyetrack
} // namespace eyecod

#endif // EYECOD_EYETRACK_SEGMENTATION_H
