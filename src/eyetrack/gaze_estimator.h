/**
 * @file
 * Trainable gaze estimator: the lightweight stand-in for the CNN gaze
 * regressor in the accuracy experiments (Tabs. 2, 4, 5; see DESIGN.md
 * on the trained-checkpoint substitution).
 *
 * A ridge regression maps downsampled ROI pixels to a 3-D gaze
 * vector. Its error responds to exactly the factors the paper
 * ablates: crop policy (whether the eye is inside the crop), ROI
 * size, ROI staleness, FlatCam reconstruction noise, and input
 * quantization — so the relative orderings of the paper's tables
 * reproduce end-to-end.
 */

#ifndef EYECOD_EYETRACK_GAZE_ESTIMATOR_H
#define EYECOD_EYETRACK_GAZE_ESTIMATOR_H

#include <memory>
#include <vector>

#include "common/image.h"
#include "common/image_view.h"
#include "dataset/gaze_math.h"
#include "nn/runtime.h"

namespace eyecod {
namespace eyetrack {

/** Estimator configuration. */
struct GazeEstimatorConfig
{
    int feat_height = 16;  ///< Feature-map rows after downsampling.
    int feat_width = 26;   ///< Feature-map columns.
    double lambda = 3.0;   ///< Ridge regularization weight.
    int quant_bits = 0;    ///< 0 float; 8 emulates int8 deployment.
};

/**
 * Ridge regression from ROI pixels to gaze vectors.
 */
class RidgeGazeEstimator
{
  public:
    explicit RidgeGazeEstimator(GazeEstimatorConfig cfg = {});

    /**
     * Fit the regressor on ROI crops with ground-truth gazes.
     * Solves (X^T X + lambda I) W = X^T Y per output via Cholesky.
     */
    void train(const std::vector<Image> &rois,
               const std::vector<dataset::GazeVec> &gazes);

    /** Predict a unit gaze vector for one ROI crop. */
    dataset::GazeVec predict(const Image &roi) const;

    /**
     * Zero-copy predict: the ROI arrives as a (possibly strided)
     * view and the feature scratch is reused across calls — zero
     * heap allocations in steady state. Bitwise-identical to
     * predict(). The scratch makes concurrent predict calls on one
     * estimator instance a data race; each pipeline owns its own
     * estimator, which is the existing ownership model.
     */
    dataset::GazeVec predict(ImageConstView roi) const;

    /** True after train(). */
    bool trained() const { return !weights_.empty(); }

    /**
     * Mean angular error in degrees over an evaluation set.
     */
    double evaluate(const std::vector<Image> &rois,
                    const std::vector<dataset::GazeVec> &gazes) const;

    /** Per-frame multiply-accumulates of inference. */
    long long macsPerFrame() const;

    /** Configuration in use. */
    const GazeEstimatorConfig &config() const { return cfg_; }

  private:
    std::vector<double> features(const Image &roi) const;

    /** Feature extraction into the member scratch (no allocation). */
    const std::vector<double> &featuresInto(ImageConstView roi) const;

    GazeEstimatorConfig cfg_;
    int dim_; ///< Feature dimension including bias.
    std::vector<double> weights_; ///< dim_ x 3, row-major.

    // Per-call scratch, warmed on the first predict and reused
    // afterwards; not observable state, hence mutable (predict stays
    // const for existing callers).
    mutable Image feat_img_;              ///< Downsampled ROI.
    mutable std::vector<double> feat_scratch_; ///< Feature vector.
};

/** Neural gaze estimator configuration. */
struct NeuralGazeConfig
{
    int height = 32;  ///< Network ROI rows (deployment uses 96).
    int width = 64;   ///< Network ROI columns (deployment uses 160).
    int quant_bits = 0;
    /** Execution backend for the planned runtime. */
    nn::BackendKind backend = nn::BackendKind::Serial;
    int threads = 0;  ///< Threaded backend only; 0 = hardware.
};

/**
 * FBNet-C100-based gaze regressor on the planned NN runtime. The
 * graph is planned once; predict() reuses the backend arena.
 */
class NeuralGazeEstimator
{
  public:
    explicit NeuralGazeEstimator(NeuralGazeConfig cfg = {});

    /** Predict a unit gaze vector for one ROI crop. */
    dataset::GazeVec predict(const Image &roi);

    /**
     * Zero-copy predict: the ROI arrives as a view, the network
     * input tensor and output tensor are persistent members fed to
     * the backend without copy-in (Backend::runCheckedInto) — zero
     * steady-state heap allocations. Bitwise-identical to the
     * owning-image predict.
     */
    dataset::GazeVec predict(ImageConstView roi);

    /** Arena/liveness accounting of the underlying plan. */
    const nn::PlanStats &planStats() const { return plan_.stats(); }

    /** Name of the backend in use ("serial", "threaded-N"). */
    std::string backendName() const { return backend_->name(); }

    /** Backend executing the plan (e.g. to install a fault tap). */
    nn::Backend &backend() { return *backend_; }

    /** Configuration in use. */
    const NeuralGazeConfig &config() const { return cfg_; }

  private:
    NeuralGazeConfig cfg_;
    nn::Graph graph_;       ///< Must outlive plan_.
    nn::ExecutionPlan plan_;
    std::unique_ptr<nn::Backend> backend_;

    // Persistent inference scratch: resized ROI, input tensor handed
    // to the backend by pointer, input pointer list, output tensor.
    Image sized_;
    nn::Tensor input_;
    std::vector<const nn::Tensor *> input_ptrs_;
    nn::Tensor out_;
};

} // namespace eyetrack
} // namespace eyecod

#endif // EYECOD_EYETRACK_GAZE_ESTIMATOR_H
