#include "eyetrack/segmentation.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "models/model_zoo.h"
#include "nn/basic_layers.h"

namespace eyecod {
namespace eyetrack {

using dataset::kBackground;
using dataset::kIris;
using dataset::kPupil;
using dataset::kSclera;
using dataset::SegMask;

ClassicalSegmenter::ClassicalSegmenter(SegmenterConfig cfg) : cfg_(cfg)
{
    eyecod_assert(cfg.pupil_max < cfg.iris_max &&
                  cfg.iris_max < cfg.sclera_min,
                  "segmenter thresholds must be ordered");
}

namespace {

/** Box-filter smoothing with the given radius. */
Image
boxSmooth(const Image &img, int radius)
{
    if (radius <= 0)
        return img;
    Image out(img.height(), img.width());
    const int span = 2 * radius + 1;
    const double inv = 1.0 / (span * span);
    for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
            double acc = 0.0;
            for (int dy = -radius; dy <= radius; ++dy)
                for (int dx = -radius; dx <= radius; ++dx)
                    acc += img.atClamped(y + dy, x + dx);
            out.at(y, x) = float(acc * inv);
        }
    }
    return out;
}

/**
 * Flood-fill over a pixel predicate from a set of seed indices;
 * returns the visited set (including seeds).
 */
std::vector<char>
floodFrom(int h, int w, const std::vector<char> &allowed,
          const std::vector<int> &seeds)
{
    std::vector<char> visited(size_t(h) * w, 0);
    std::queue<int> q;
    for (int s : seeds) {
        if (!visited[size_t(s)] && allowed[size_t(s)]) {
            visited[size_t(s)] = 1;
            q.push(s);
        }
    }
    const int dy[] = {-1, 1, 0, 0};
    const int dx[] = {0, 0, -1, 1};
    while (!q.empty()) {
        const int idx = q.front();
        q.pop();
        const int y = idx / w;
        const int x = idx % w;
        for (int d = 0; d < 4; ++d) {
            const int ny = y + dy[d];
            const int nx = x + dx[d];
            if (ny < 0 || ny >= h || nx < 0 || nx >= w)
                continue;
            const int nidx = ny * w + nx;
            if (!visited[size_t(nidx)] && allowed[size_t(nidx)]) {
                visited[size_t(nidx)] = 1;
                q.push(nidx);
            }
        }
    }
    return visited;
}

/** Largest 4-connected component among allowed pixels. */
std::vector<char>
largestComponent(int h, int w, const std::vector<char> &allowed)
{
    std::vector<int> comp(size_t(h) * w, -1);
    int best_id = -1;
    long best_size = 0;
    int next_id = 0;
    for (int start = 0; start < h * w; ++start) {
        if (!allowed[size_t(start)] || comp[size_t(start)] >= 0)
            continue;
        // BFS labelling this component.
        long size = 0;
        std::queue<int> q;
        comp[size_t(start)] = next_id;
        q.push(start);
        const int dy[] = {-1, 1, 0, 0};
        const int dx[] = {0, 0, -1, 1};
        while (!q.empty()) {
            const int idx = q.front();
            q.pop();
            ++size;
            const int y = idx / w;
            const int x = idx % w;
            for (int d = 0; d < 4; ++d) {
                const int ny = y + dy[d];
                const int nx = x + dx[d];
                if (ny < 0 || ny >= h || nx < 0 || nx >= w)
                    continue;
                const int nidx = ny * w + nx;
                if (allowed[size_t(nidx)] && comp[size_t(nidx)] < 0) {
                    comp[size_t(nidx)] = next_id;
                    q.push(nidx);
                }
            }
        }
        if (size > best_size) {
            best_size = size;
            best_id = next_id;
        }
        ++next_id;
    }
    std::vector<char> out(size_t(h) * w, 0);
    if (best_id >= 0)
        for (size_t i = 0; i < out.size(); ++i)
            out[i] = comp[i] == best_id ? 1 : 0;
    return out;
}

} // namespace

SegMask
ClassicalSegmenter::segment(const Image &eye) const
{
    return segment(ImageConstView::of(eye));
}

SegMask
ClassicalSegmenter::segment(ImageConstView eye) const
{
    const int h = eye.height();
    const int w = eye.width();
    Image img; // refresh-only working copy of the crop view
    img.resetShape(h, w);
    ImageView::of(img).copyFrom(eye);

    if (cfg_.quant_bits > 0) {
        const float levels = float((1 << cfg_.quant_bits) - 1);
        for (float &v : img.data())
            v = std::round(v * levels) / levels;
    }
    img = boxSmooth(img, cfg_.smooth_radius);

    std::vector<char> pupil_band(size_t(h) * w, 0);
    std::vector<char> dark_band(size_t(h) * w, 0);  // pupil + iris
    std::vector<char> sclera_band(size_t(h) * w, 0);
    for (int i = 0; i < h * w; ++i) {
        const float v = img.data()[size_t(i)];
        pupil_band[size_t(i)] = v <= cfg_.pupil_max;
        dark_band[size_t(i)] = v <= cfg_.iris_max;
        sclera_band[size_t(i)] = v >= cfg_.sclera_min;
    }

    // Pupil: the largest dark connected component.
    const std::vector<char> pupil = largestComponent(h, w, pupil_band);

    // Iris: dark-band pixels reachable from the pupil.
    std::vector<int> pupil_seeds;
    for (int i = 0; i < h * w; ++i)
        if (pupil[size_t(i)])
            pupil_seeds.push_back(i);
    const std::vector<char> eye_dark =
        floodFrom(h, w, dark_band, pupil_seeds);

    // Sclera: bright-band pixels near the iris region. The iris is
    // dilated a few pixels first because smoothing (and FlatCam
    // reconstruction blur) creates a thin mid-band transition ring
    // between iris and sclera that would otherwise break adjacency.
    std::vector<char> near_eye = eye_dark;
    for (int iter = 0; iter < 4; ++iter) {
        std::vector<char> grown = near_eye;
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                if (near_eye[size_t(y) * w + x])
                    continue;
                const bool touch =
                    (y > 0 && near_eye[size_t(y - 1) * w + x]) ||
                    (y + 1 < h && near_eye[size_t(y + 1) * w + x]) ||
                    (x > 0 && near_eye[size_t(y) * w + x - 1]) ||
                    (x + 1 < w && near_eye[size_t(y) * w + x + 1]);
                if (touch)
                    grown[size_t(y) * w + x] = 1;
            }
        }
        near_eye = std::move(grown);
    }
    std::vector<int> sclera_seeds;
    for (int i = 0; i < h * w; ++i)
        if (near_eye[size_t(i)] && sclera_band[size_t(i)])
            sclera_seeds.push_back(i);
    const std::vector<char> sclera =
        floodFrom(h, w, sclera_band, sclera_seeds);

    SegMask mask;
    mask.height = h;
    mask.width = w;
    mask.labels.assign(size_t(h) * w, kBackground);
    for (int i = 0; i < h * w; ++i) {
        if (pupil[size_t(i)])
            mask.labels[size_t(i)] = kPupil;
        else if (eye_dark[size_t(i)])
            mask.labels[size_t(i)] = kIris;
        else if (sclera[size_t(i)])
            mask.labels[size_t(i)] = kSclera;
    }

    // Fill enclosed unlabeled pixels — specular glints and the thin
    // transition rings the smoothing leaves between intensity bands.
    // Background pixels unreachable from the image border are holes;
    // they take the majority class of their labelled neighbours.
    {
        std::vector<char> bg(size_t(h) * w, 0);
        for (size_t i = 0; i < bg.size(); ++i)
            bg[i] = mask.labels[i] == kBackground;
        std::vector<int> border_seeds;
        for (int x = 0; x < w; ++x) {
            border_seeds.push_back(x);
            border_seeds.push_back((h - 1) * w + x);
        }
        for (int y = 0; y < h; ++y) {
            border_seeds.push_back(y * w);
            border_seeds.push_back(y * w + w - 1);
        }
        const std::vector<char> outside =
            floodFrom(h, w, bg, border_seeds);
        for (int iter = 0; iter < 8; ++iter) {
            bool changed = false;
            for (int y = 0; y < h; ++y) {
                for (int x = 0; x < w; ++x) {
                    const int i = y * w + x;
                    if (mask.labels[size_t(i)] != kBackground ||
                        outside[size_t(i)])
                        continue;
                    int votes[4] = {0, 0, 0, 0};
                    if (y > 0)
                        ++votes[mask.at(y - 1, x)];
                    if (y + 1 < h)
                        ++votes[mask.at(y + 1, x)];
                    if (x > 0)
                        ++votes[mask.at(y, x - 1)];
                    if (x + 1 < w)
                        ++votes[mask.at(y, x + 1)];
                    int best = kBackground, best_v = 0;
                    for (int c = 1; c < 4; ++c) {
                        if (votes[c] > best_v) {
                            best_v = votes[c];
                            best = c;
                        }
                    }
                    if (best != kBackground) {
                        mask.labels[size_t(i)] = uint8_t(best);
                        changed = true;
                    }
                }
            }
            if (!changed)
                break;
        }
    }

    // Emulated residual model error: flip labels of pixels adjacent
    // to a class boundary with the configured probability.
    if (cfg_.boundary_noise > 0.0) {
        uint64_t hash = 0x9e37;
        for (int i = 0; i < h * w; i += 97)
            hash = hash * 31 +
                   uint64_t(img.data()[size_t(i)] * 255.0f);
        Rng rng(hash);
        SegMask noisy = mask;
        for (int y = 1; y + 1 < h; ++y) {
            for (int x = 1; x + 1 < w; ++x) {
                const uint8_t c = mask.at(y, x);
                const bool boundary =
                    mask.at(y - 1, x) != c || mask.at(y + 1, x) != c ||
                    mask.at(y, x - 1) != c || mask.at(y, x + 1) != c;
                if (boundary && rng.bernoulli(cfg_.boundary_noise)) {
                    // Flip to a random 4-neighbour's class.
                    const uint8_t nb[4] = {
                        mask.at(y - 1, x), mask.at(y + 1, x),
                        mask.at(y, x - 1), mask.at(y, x + 1)};
                    noisy.at(y, x) = nb[rng.uniformInt(0, 3)];
                }
            }
        }
        mask = std::move(noisy);
    }
    return mask;
}

NeuralSegmenter::NeuralSegmenter(NeuralSegmenterConfig cfg)
    : cfg_(cfg),
      graph_(models::buildRitNet(cfg.height, cfg.width,
                                 cfg.quant_bits)),
      plan_(graph_),
      backend_(nn::makeBackend(cfg.backend, cfg.threads))
{
}

SegMask
NeuralSegmenter::segment(const Image &eye)
{
    return segment(ImageConstView::of(eye));
}

SegMask
NeuralSegmenter::segment(ImageConstView eye)
{
    // Same-size inputs reduce to a copy inside resizeBilinearInto, so
    // one path covers both cases of the old owning segment.
    resizeBilinearInto(eye, cfg_.height, cfg_.width, &sized_);
    input_.reset(nn::Shape{1, cfg_.height, cfg_.width});
    std::copy(sized_.data().begin(), sized_.data().end(),
              input_.data().begin());
    input_ptrs_.assign(1, &input_);

    SegMask mask;
    mask.height = cfg_.height;
    mask.width = cfg_.width;
    // Finite-checked execution: a NaN-poisoned input or activation
    // surfaces as a typed error; degrade to an all-background mask
    // (the ROI gate downstream treats it as a failed segmentation).
    Status status =
        backend_->runCheckedInto(plan_, input_ptrs_, &logits_);
    if (!status.isOk()) {
        warnLimited("neural-seg-fault", "segmentation degraded: %s",
                    status.toString().c_str());
        mask.labels.assign(size_t(cfg_.height) * size_t(cfg_.width),
                           uint8_t(dataset::kBackground));
        return mask;
    }
    const std::vector<int> classes = nn::channelArgmax(logits_);
    mask.labels.resize(classes.size());
    for (size_t i = 0; i < classes.size(); ++i)
        mask.labels[i] = uint8_t(classes[i]);
    return mask;
}

std::array<double, 5>
segmentationIou(const SegMask &pred, const SegMask &truth)
{
    eyecod_assert(pred.height == truth.height &&
                  pred.width == truth.width,
                  "IOU mask shape mismatch");
    std::array<long, 4> inter{}, uni{};
    for (size_t i = 0; i < pred.labels.size(); ++i) {
        const uint8_t p = pred.labels[i];
        const uint8_t t = truth.labels[i];
        if (p == t)
            ++inter[p];
        ++uni[p];
        if (p != t)
            ++uni[t];
    }
    std::array<double, 5> out{};
    double mean = 0.0;
    for (int c = 0; c < 4; ++c) {
        const double iou =
            uni[size_t(c)] > 0
                ? 100.0 * double(inter[size_t(c)]) /
                      double(uni[size_t(c)])
                : 100.0;
        out[size_t(c)] = iou;
        mean += iou;
    }
    out[4] = mean / 4.0;
    return out;
}

} // namespace eyetrack
} // namespace eyecod
