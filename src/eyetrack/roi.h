/**
 * @file
 * ROI prediction (Sec. 4.3): the pupil-anchored crop that the focus
 * stage consumes. The pupil centroid of the segmentation mask anchors
 * a fixed-size rectangle whose extent is calibrated to 1.5x the
 * average segmented-sclera extent of the training set.
 */

#ifndef EYECOD_EYETRACK_ROI_H
#define EYECOD_EYETRACK_ROI_H

#include <cstdint>
#include <utility>
#include <vector>

#include "common/image.h"
#include "common/status.h"
#include "dataset/synthetic_eye.h"

namespace eyecod {
namespace eyetrack {

/** Crop policies compared in the Tab. 4 ablation. */
enum class CropPolicy {
    Roi,     ///< Pupil-anchored ROI (the paper's method).
    Central, ///< Fixed central crop of the same size.
    Random,  ///< Uniformly random crop of the same size.
};

/** Summary of a segmentation mask used for ROI derivation. */
struct MaskStats
{
    bool has_pupil = false;
    double pupil_cy = 0.0; ///< Pupil centroid.
    double pupil_cx = 0.0;
    long pupil_area = 0;
    /** Bounding-box extent of the core eye area (sclera+iris+pupil). */
    int eye_height = 0;
    int eye_width = 0;
};

/** Compute pupil centroid and core-eye extent from a mask. */
MaskStats computeMaskStats(const dataset::SegMask &mask);

/**
 * Sanity gate applied to a freshly predicted ROI before it enters the
 * predict-then-focus chain. The gaze stage consumes an ROI for up to
 * two refresh windows, so a single insane ROI poisons many frames;
 * better to reject it and let the pipeline degrade gracefully.
 */
struct RoiGateConfig
{
    bool enabled = true;
    /** Plausible pupil area band, as fractions of the frame area. */
    double min_pupil_fraction = 3e-4;
    double max_pupil_fraction = 0.2;
    /** Minimum fraction of pupil pixels the candidate must contain. */
    double min_containment = 0.7;
    /** Minimum fraction of the candidate that must lie in-frame. */
    double min_inside = 0.5;
};

/** Verdict of the ROI sanity gate. */
struct RoiGateDecision
{
    bool accepted = true;
    /** Pupil-mask coverage confidence in [0, 1]. */
    double confidence = 1.0;
    /** Non-OK rejection reason when !accepted. */
    Status reason;
};

/**
 * Validate a candidate crop against the segmentation that produced
 * it: the mask must contain a plausibly sized pupil, the candidate
 * must lie (mostly) inside the frame, and it must cover most of the
 * pupil mass.
 */
RoiGateDecision validateRoi(const dataset::SegMask &mask,
                            const MaskStats &stats,
                            const Rect &candidate,
                            const RoiGateConfig &cfg);

/**
 * The ROI predictor: holds the calibrated crop size and derives the
 * per-frame crop rectangle from the latest segmentation.
 */
class RoiPredictor
{
  public:
    /**
     * @param roi_height,roi_width calibrated crop extent in pixels
     *        (96x160 at the paper's 256x256 scene scale).
     */
    RoiPredictor(int roi_height, int roi_width);

    /**
     * Calibrate the crop extent as 1.5x the average core-eye extent
     * over a set of training masks (the paper's sizing rule).
     *
     * @return the calibrated (height, width), or a typed error when
     *         the training set is empty or contains no eye pixels
     *         (both input-dependent, hence recoverable).
     */
    static Result<std::pair<int, int>> calibrateSize(
        const std::vector<dataset::SegMask> &train_masks,
        double factor = 1.5);

    /**
     * Predict the crop rectangle for a frame.
     *
     * @param mask latest segmentation (possibly stale by up to the
     *        refresh period).
     * @param policy Roi uses the pupil anchor; Central/Random are the
     *        Tab. 4 ablation baselines.
     * @param rng_state in/out state for the Random policy.
     */
    Rect predict(const dataset::SegMask &mask, CropPolicy policy,
                 uint64_t *rng_state = nullptr) const;

    /** Calibrated crop height. */
    int roiHeight() const { return roi_h_; }
    /** Calibrated crop width. */
    int roiWidth() const { return roi_w_; }

  private:
    int roi_h_;
    int roi_w_;
};

} // namespace eyetrack
} // namespace eyecod

#endif // EYECOD_EYETRACK_ROI_H
