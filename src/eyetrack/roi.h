/**
 * @file
 * ROI prediction (Sec. 4.3): the pupil-anchored crop that the focus
 * stage consumes. The pupil centroid of the segmentation mask anchors
 * a fixed-size rectangle whose extent is calibrated to 1.5x the
 * average segmented-sclera extent of the training set.
 */

#ifndef EYECOD_EYETRACK_ROI_H
#define EYECOD_EYETRACK_ROI_H

#include <cstdint>

#include "common/image.h"
#include "dataset/synthetic_eye.h"

namespace eyecod {
namespace eyetrack {

/** Crop policies compared in the Tab. 4 ablation. */
enum class CropPolicy {
    Roi,     ///< Pupil-anchored ROI (the paper's method).
    Central, ///< Fixed central crop of the same size.
    Random,  ///< Uniformly random crop of the same size.
};

/** Summary of a segmentation mask used for ROI derivation. */
struct MaskStats
{
    bool has_pupil = false;
    double pupil_cy = 0.0; ///< Pupil centroid.
    double pupil_cx = 0.0;
    long pupil_area = 0;
    /** Bounding-box extent of the core eye area (sclera+iris+pupil). */
    int eye_height = 0;
    int eye_width = 0;
};

/** Compute pupil centroid and core-eye extent from a mask. */
MaskStats computeMaskStats(const dataset::SegMask &mask);

/**
 * The ROI predictor: holds the calibrated crop size and derives the
 * per-frame crop rectangle from the latest segmentation.
 */
class RoiPredictor
{
  public:
    /**
     * @param roi_height,roi_width calibrated crop extent in pixels
     *        (96x160 at the paper's 256x256 scene scale).
     */
    RoiPredictor(int roi_height, int roi_width);

    /**
     * Calibrate the crop extent as 1.5x the average core-eye extent
     * over a set of training masks (the paper's sizing rule).
     *
     * @return the calibrated (height, width).
     */
    static std::pair<int, int> calibrateSize(
        const std::vector<dataset::SegMask> &train_masks,
        double factor = 1.5);

    /**
     * Predict the crop rectangle for a frame.
     *
     * @param mask latest segmentation (possibly stale by up to the
     *        refresh period).
     * @param policy Roi uses the pupil anchor; Central/Random are the
     *        Tab. 4 ablation baselines.
     * @param rng_state in/out state for the Random policy.
     */
    Rect predict(const dataset::SegMask &mask, CropPolicy policy,
                 uint64_t *rng_state = nullptr) const;

    /** Calibrated crop height. */
    int roiHeight() const { return roi_h_; }
    /** Calibrated crop width. */
    int roiWidth() const { return roi_w_; }

  private:
    int roi_h_;
    int roi_w_;
};

} // namespace eyetrack
} // namespace eyecod

#endif // EYECOD_EYETRACK_ROI_H
