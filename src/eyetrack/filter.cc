#include "eyetrack/filter.h"

#include <cmath>

#include "common/logging.h"

namespace eyecod {
namespace eyetrack {

namespace {

/** Exponential smoothing coefficient for a cutoff at the rate. */
double
alphaFor(double cutoff_hz, double rate_hz)
{
    const double tau = 1.0 / (2.0 * M_PI * cutoff_hz);
    const double te = 1.0 / rate_hz;
    return 1.0 / (1.0 + tau / te);
}

} // namespace

GazeFilter::GazeFilter(GazeFilterConfig cfg) : cfg_(cfg)
{
    eyecod_assert(cfg.rate_hz > 0.0 && cfg.min_cutoff_hz > 0.0 &&
                  cfg.d_cutoff_hz > 0.0,
                  "bad gaze filter configuration");
}

double
GazeFilter::filterChannel(Channel &ch, double value)
{
    if (!ch.primed) {
        ch.primed = true;
        ch.x = value;
        ch.dx = 0.0;
        return value;
    }
    // Derivative estimate, low-passed at d_cutoff.
    const double raw_dx = (value - ch.x) * cfg_.rate_hz;
    const double a_d = alphaFor(cfg_.d_cutoff_hz, cfg_.rate_hz);
    ch.dx += a_d * (raw_dx - ch.dx);
    // Speed-adaptive cutoff.
    const double cutoff =
        cfg_.min_cutoff_hz + cfg_.beta * std::fabs(ch.dx);
    const double a = alphaFor(cutoff, cfg_.rate_hz);
    ch.x += a * (value - ch.x);
    return ch.x;
}

GazeFilter::Output
GazeFilter::update(const dataset::GazeVec &raw)
{
    const auto angles = dataset::vectorToAngles(raw);
    Output out;
    if (primed_) {
        const double dy = angles[0] - last_yaw_;
        const double dp = angles[1] - last_pitch_;
        const double raw_vel = std::hypot(dy, dp) * cfg_.rate_hz;
        const double a_v =
            alphaFor(cfg_.velocity_cutoff_hz, cfg_.rate_hz);
        velocity_ += a_v * (raw_vel - velocity_);
        out.velocity_deg_s = velocity_;
        out.saccade =
            out.velocity_deg_s >= cfg_.saccade_velocity_deg_s;
    }
    primed_ = true;
    last_yaw_ = angles[0];
    last_pitch_ = angles[1];

    const double fy = filterChannel(yaw_, angles[0]);
    const double fp = filterChannel(pitch_, angles[1]);
    out.gaze = dataset::anglesToVector(fy, fp);
    return out;
}

void
GazeFilter::reset()
{
    yaw_ = Channel{};
    pitch_ = Channel{};
    primed_ = false;
    velocity_ = 0.0;
}

} // namespace eyetrack
} // namespace eyecod
