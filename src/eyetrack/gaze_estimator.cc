#include "eyetrack/gaze_estimator.h"

#include <cmath>

#include <algorithm>

#include "common/logging.h"
#include "common/matrix.h"
#include "models/model_zoo.h"

namespace eyecod {
namespace eyetrack {

RidgeGazeEstimator::RidgeGazeEstimator(GazeEstimatorConfig cfg)
    : cfg_(cfg), dim_(cfg.feat_height * cfg.feat_width + 1)
{
    eyecod_assert(cfg.feat_height > 0 && cfg.feat_width > 0,
                  "estimator feature extent must be positive");
}

std::vector<double>
RidgeGazeEstimator::features(const Image &roi) const
{
    return featuresInto(ImageConstView::of(roi));
}

const std::vector<double> &
RidgeGazeEstimator::featuresInto(ImageConstView roi) const
{
    resizeBilinearInto(roi, cfg_.feat_height, cfg_.feat_width,
                       &feat_img_);
    std::vector<double> &f = feat_scratch_;
    f.assign(static_cast<size_t>(dim_), 0.0);
    for (size_t i = 0; i + 1 < size_t(dim_); ++i) {
        double v = feat_img_.data()[i];
        if (cfg_.quant_bits > 0) {
            // Inputs live in [0, 1]: snap to the unsigned int grid.
            const double levels = double((1 << cfg_.quant_bits) - 1);
            v = std::round(v * levels) / levels;
        }
        f[i] = v - 0.5; // zero-centre
    }
    f[size_t(dim_) - 1] = 1.0; // bias
    return f;
}

void
RidgeGazeEstimator::train(const std::vector<Image> &rois,
                          const std::vector<dataset::GazeVec> &gazes)
{
    eyecod_assert(rois.size() == gazes.size() && !rois.empty(),
                  "train set mismatch: %zu rois vs %zu gazes",
                  rois.size(), gazes.size());

    const size_t n = rois.size();
    const size_t d = size_t(dim_);
    // Accumulate X^T X and X^T Y without materializing X.
    Matrix xtx(d, d);
    Matrix xty(d, 3);
    for (size_t i = 0; i < n; ++i) {
        const std::vector<double> f = features(rois[i]);
        for (size_t a = 0; a < d; ++a) {
            const double fa = f[a];
            if (fa == 0.0)
                continue;
            for (size_t b = a; b < d; ++b)
                xtx(a, b) += fa * f[b];
            for (size_t c = 0; c < 3; ++c)
                xty(a, c) += fa * gazes[i][c];
        }
    }
    // Mirror the upper triangle and add the ridge.
    for (size_t a = 0; a < d; ++a) {
        for (size_t b = 0; b < a; ++b)
            xtx(a, b) = xtx(b, a);
        xtx(a, a) += cfg_.lambda;
    }

    const Matrix w = solveSpd(xtx, xty);
    weights_.resize(d * 3);
    for (size_t a = 0; a < d; ++a)
        for (size_t c = 0; c < 3; ++c)
            weights_[a * 3 + c] = w(a, c);

    if (cfg_.quant_bits > 0) {
        // Deploy-time weight quantization (symmetric, per-tensor).
        double max_abs = 0.0;
        for (double v : weights_)
            max_abs = std::max(max_abs, std::fabs(v));
        const double qmax = double((1 << (cfg_.quant_bits - 1)) - 1);
        const double scale = max_abs > 0.0 ? max_abs / qmax : 1.0;
        for (double &v : weights_)
            v = std::round(v / scale) * scale;
    }
}

dataset::GazeVec
RidgeGazeEstimator::predict(const Image &roi) const
{
    return predict(ImageConstView::of(roi));
}

dataset::GazeVec
RidgeGazeEstimator::predict(ImageConstView roi) const
{
    eyecod_assert(trained(), "predict() before train()");
    const std::vector<double> &f = featuresInto(roi);
    dataset::GazeVec g{0.0, 0.0, 0.0};
    for (size_t a = 0; a < size_t(dim_); ++a)
        for (size_t c = 0; c < 3; ++c)
            g[c] += f[a] * weights_[a * 3 + c];
    return dataset::normalize(g);
}

double
RidgeGazeEstimator::evaluate(
    const std::vector<Image> &rois,
    const std::vector<dataset::GazeVec> &gazes) const
{
    eyecod_assert(rois.size() == gazes.size() && !rois.empty(),
                  "evaluate set mismatch");
    double acc = 0.0;
    for (size_t i = 0; i < rois.size(); ++i)
        acc += dataset::angularErrorDeg(predict(rois[i]), gazes[i]);
    return acc / double(rois.size());
}

long long
RidgeGazeEstimator::macsPerFrame() const
{
    return (long long)dim_ * 3;
}

NeuralGazeEstimator::NeuralGazeEstimator(NeuralGazeConfig cfg)
    : cfg_(cfg),
      graph_(models::buildFBNetC100(cfg.height, cfg.width,
                                    cfg.quant_bits)),
      plan_(graph_),
      backend_(nn::makeBackend(cfg.backend, cfg.threads))
{
}

dataset::GazeVec
NeuralGazeEstimator::predict(const Image &roi)
{
    return predict(ImageConstView::of(roi));
}

dataset::GazeVec
NeuralGazeEstimator::predict(ImageConstView roi)
{
    // Same-size inputs reduce to a copy inside resizeBilinearInto, so
    // one path covers both cases of the old owning predict.
    resizeBilinearInto(roi, cfg_.height, cfg_.width, &sized_);
    input_.reset(nn::Shape{1, cfg_.height, cfg_.width});
    std::copy(sized_.data().begin(), sized_.data().end(),
              input_.data().begin());
    input_ptrs_.assign(1, &input_);

    // Finite-checked execution: a poisoned tensor degrades to the
    // neutral forward gaze instead of emitting NaN.
    Status status = backend_->runCheckedInto(plan_, input_ptrs_, &out_);
    if (!status.isOk()) {
        warnLimited("neural-gaze-fault", "gaze degraded: %s",
                    status.toString().c_str());
        return dataset::GazeVec{0, 0, 1};
    }
    eyecod_assert(out_.size() == 3,
                  "gaze head must emit 3 values, got %zu",
                  out_.size());
    dataset::GazeVec g{double(out_.data()[0]), double(out_.data()[1]),
                       double(out_.data()[2])};
    return dataset::normalize(g);
}

} // namespace eyetrack
} // namespace eyecod
