#include "eyetrack/user_calibration.h"

#include <cmath>

#include "common/logging.h"
#include "common/matrix.h"

namespace eyecod {
namespace eyetrack {

std::vector<dataset::GazeVec>
UserCalibration::standardTargets(double yaw_range_deg,
                                 double pitch_range_deg)
{
    std::vector<dataset::GazeVec> targets;
    for (int py = -1; py <= 1; ++py)
        for (int px = -1; px <= 1; ++px)
            targets.push_back(dataset::anglesToVector(
                px * yaw_range_deg, py * pitch_range_deg));
    return targets;
}

double
UserCalibration::fit(const std::vector<CalibrationSample> &samples)
{
    eyecod_assert(samples.size() >= 3,
                  "user calibration needs >= 3 samples, got %zu",
                  samples.size());
    // Least squares: for each sample, features f = (yaw, pitch, 1)
    // of the *estimate*, targets the true angles.
    Matrix xtx(3, 3);
    Matrix xty(3, 2);
    for (const CalibrationSample &s : samples) {
        const auto est = dataset::vectorToAngles(s.estimated);
        const auto tgt = dataset::vectorToAngles(s.target);
        const double f[3] = {est[0], est[1], 1.0};
        for (int a = 0; a < 3; ++a) {
            for (int b = 0; b < 3; ++b)
                xtx(size_t(a), size_t(b)) += f[a] * f[b];
            xty(size_t(a), 0) += f[a] * tgt[0];
            xty(size_t(a), 1) += f[a] * tgt[1];
        }
    }
    // Tiny ridge for numerical safety with near-collinear grids.
    for (int a = 0; a < 3; ++a)
        xtx(size_t(a), size_t(a)) += 1e-9;
    const Matrix w = solveSpd(xtx, xty);
    coef_[0] = w(0, 0);
    coef_[1] = w(1, 0);
    coef_[2] = w(2, 0);
    coef_[3] = w(0, 1);
    coef_[4] = w(1, 1);
    coef_[5] = w(2, 1);
    fitted_ = true;

    double acc = 0.0;
    for (const CalibrationSample &s : samples) {
        const double err =
            dataset::angularErrorDeg(apply(s.estimated), s.target);
        acc += err * err;
    }
    return std::sqrt(acc / double(samples.size()));
}

dataset::GazeVec
UserCalibration::apply(const dataset::GazeVec &raw) const
{
    if (!fitted_)
        return raw;
    const auto a = dataset::vectorToAngles(raw);
    const double yaw = coef_[0] * a[0] + coef_[1] * a[1] + coef_[2];
    const double pitch =
        coef_[3] * a[0] + coef_[4] * a[1] + coef_[5];
    return dataset::anglesToVector(yaw, pitch);
}

double
UserCalibration::improvementDeg(
    const std::vector<CalibrationSample> &eval) const
{
    eyecod_assert(!eval.empty(), "empty calibration eval set");
    double before = 0.0, after = 0.0;
    for (const CalibrationSample &s : eval) {
        before += dataset::angularErrorDeg(s.estimated, s.target);
        after +=
            dataset::angularErrorDeg(apply(s.estimated), s.target);
    }
    return (before - after) / double(eval.size());
}

} // namespace eyetrack
} // namespace eyecod
