/**
 * @file
 * Session-level eye tracker: the deployment wrapper a VR/AR runtime
 * would integrate. Combines the predict-then-focus pipeline with
 * One-Euro gaze filtering, per-frame blink detection (the
 * segmentation stage only runs every N frames, so blinks must be
 * caught from the ROI intensity statistics), gaze hold-over during
 * blinks, and a per-frame confidence estimate.
 */

#ifndef EYECOD_EYETRACK_TRACKER_H
#define EYECOD_EYETRACK_TRACKER_H

#include "eyetrack/filter.h"
#include "eyetrack/pipeline.h"

namespace eyecod {
namespace eyetrack {

/** Tracker configuration. */
struct TrackerConfig
{
    PipelineConfig pipeline;
    GazeFilterConfig filter;
    /**
     * Minimum fraction of dark (pupil-band) pixels inside the ROI
     * for the eye to count as open; below it the frame is a blink.
     */
    double min_pupil_fraction = 0.025;
    /** Intensity below which an ROI pixel counts as pupil-dark. */
    float pupil_dark_level = 0.22f;
};

/** Per-frame tracker output. */
struct TrackerOutput
{
    dataset::GazeVec gaze{0, 0, 1}; ///< Filtered gaze (held during
                                    ///  blinks).
    dataset::GazeVec raw_gaze{0, 0, 1}; ///< Unfiltered estimate.
    bool blink = false;     ///< Eye closed this frame.
    bool saccade = false;   ///< Rapid gaze motion detected.
    double confidence = 0.0; ///< 0 (blink) .. 1 (clean fixation).
    Rect roi;               ///< Crop used.
};

/**
 * The composed tracker.
 */
class EyeTracker
{
  public:
    explicit EyeTracker(TrackerConfig cfg = {});

    /** Train the underlying gaze stage. */
    void train(const dataset::SyntheticEyeRenderer &renderer,
               int train_count);

    /** Process one frame of a continuous sequence. */
    TrackerOutput processFrame(const Image &scene);

    /** Reset all per-sequence state. */
    void reset();

    /** Fraction of processed frames flagged as blinks. */
    double blinkRate() const;

    /** Underlying pipeline (for experiments). */
    PredictThenFocusPipeline &pipeline() { return pipeline_; }

  private:
    TrackerConfig cfg_;
    PredictThenFocusPipeline pipeline_;
    GazeFilter filter_;
    dataset::GazeVec held_gaze_{0, 0, 1};
    bool has_gaze_ = false;
    long frames_ = 0;
    long blinks_ = 0;
};

} // namespace eyetrack
} // namespace eyecod

#endif // EYECOD_EYETRACK_TRACKER_H
