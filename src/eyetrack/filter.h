/**
 * @file
 * Temporal gaze filtering for the eye tracking output.
 *
 * VR/AR consumers (foveated rendering in particular) need a gaze
 * signal that is stable during fixations but snaps to saccades. The
 * One-Euro filter provides exactly that trade-off: a low-pass filter
 * whose cutoff rises with signal speed. The filter operates on the
 * (yaw, pitch) angles of the gaze vector and additionally flags
 * saccades via an angular-velocity threshold.
 */

#ifndef EYECOD_EYETRACK_FILTER_H
#define EYECOD_EYETRACK_FILTER_H

#include "dataset/gaze_math.h"

namespace eyecod {
namespace eyetrack {

/** One-Euro filter parameters. */
struct GazeFilterConfig
{
    double rate_hz = 240.0;   ///< Frame rate of the gaze stream.
    double min_cutoff_hz = 1.5; ///< Cutoff at rest (fixation).
    double beta = 0.05;       ///< Speed coefficient.
    double d_cutoff_hz = 1.0; ///< Derivative low-pass cutoff.
    /**
     * Low-pass cutoff of the velocity estimate used for saccade
     * detection. At 240 Hz, frame-to-frame estimator noise aliases
     * into hundreds of deg/s instantaneous velocity; smoothing at
     * ~20 Hz keeps fixation noise below the threshold while a real
     * saccade (thousands of deg/s) still crosses it within a frame
     * or two.
     */
    double velocity_cutoff_hz = 20.0;
    /** Angular velocity (deg/s) above which a saccade is flagged. */
    double saccade_velocity_deg_s = 800.0;
};

/**
 * One-Euro filter over gaze directions with saccade detection.
 */
class GazeFilter
{
  public:
    explicit GazeFilter(GazeFilterConfig cfg = {});

    /** Filtered output of one step. */
    struct Output
    {
        dataset::GazeVec gaze{0, 0, 1}; ///< Filtered direction.
        double velocity_deg_s = 0.0;    ///< Estimated speed.
        bool saccade = false;           ///< Velocity above threshold.
    };

    /** Feed one raw gaze sample; returns the filtered sample. */
    Output update(const dataset::GazeVec &raw);

    /** Clear the filter state (start of a new sequence). */
    void reset();

    /** Configuration in use. */
    const GazeFilterConfig &config() const { return cfg_; }

  private:
    /** One scalar One-Euro channel. */
    struct Channel
    {
        bool primed = false;
        double x = 0.0;  ///< Filtered value.
        double dx = 0.0; ///< Filtered derivative.
    };

    double filterChannel(Channel &ch, double value);

    GazeFilterConfig cfg_;
    Channel yaw_;
    Channel pitch_;
    bool primed_ = false;
    double last_yaw_ = 0.0;
    double last_pitch_ = 0.0;
    double velocity_ = 0.0; ///< Smoothed speed estimate (deg/s).
};

} // namespace eyetrack
} // namespace eyecod

#endif // EYECOD_EYETRACK_FILTER_H
