/**
 * @file
 * Per-user gaze calibration — the 9-point procedure a VR runtime
 * runs when a new user puts on the headset. The tracker's raw gaze
 * carries user-specific systematic error (eye geometry and headset
 * fit differ from the training population); showing targets at
 * known directions and fitting an affine correction in (yaw, pitch)
 * space removes the bias.
 */

#ifndef EYECOD_EYETRACK_USER_CALIBRATION_H
#define EYECOD_EYETRACK_USER_CALIBRATION_H

#include <vector>

#include "dataset/gaze_math.h"

namespace eyecod {
namespace eyetrack {

/** One calibration observation. */
struct CalibrationSample
{
    dataset::GazeVec target;    ///< Where the user was told to look.
    dataset::GazeVec estimated; ///< What the tracker reported.
};

/**
 * Affine gaze correction fitted from calibration samples:
 * corrected = A * (yaw, pitch) + b, least squares over the targets.
 */
class UserCalibration
{
  public:
    /** The standard 3x3 target grid over the given angular range. */
    static std::vector<dataset::GazeVec> standardTargets(
        double yaw_range_deg = 20.0, double pitch_range_deg = 15.0);

    /**
     * Fit the correction; needs >= 3 non-collinear samples.
     * Returns the RMS residual in degrees.
     */
    double fit(const std::vector<CalibrationSample> &samples);

    /** True after a successful fit(). */
    bool fitted() const { return fitted_; }

    /** Apply the correction (identity before fit()). */
    dataset::GazeVec apply(const dataset::GazeVec &raw) const;

    /** Mean angular improvement on a labelled evaluation set. */
    double improvementDeg(
        const std::vector<CalibrationSample> &eval) const;

  private:
    bool fitted_ = false;
    // Row-major 2x3: [a00 a01 b0; a10 a11 b1].
    double coef_[6] = {1, 0, 0, 0, 1, 0};
};

} // namespace eyetrack
} // namespace eyecod

#endif // EYECOD_EYETRACK_USER_CALIBRATION_H
