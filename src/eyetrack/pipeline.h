/**
 * @file
 * The predict-then-focus processing pipeline (Fig. 3): image
 * acquisition (lens pass-through or FlatCam capture + Tikhonov
 * reconstruction), periodic ROI prediction via segmentation, and
 * per-frame gaze estimation on the (possibly stale) ROI.
 *
 * As in the paper, ROI prediction runs once every `roi_refresh`
 * frames and the gaze stage consumes the ROI computed during the
 * *previous* refresh window, i.e. an ROI extracted N..2N frames ago.
 */

#ifndef EYECOD_EYETRACK_PIPELINE_H
#define EYECOD_EYETRACK_PIPELINE_H

#include <memory>
#include <optional>

#include "dataset/sequence.h"
#include "dataset/synthetic_eye.h"
#include "eyetrack/gaze_estimator.h"
#include "eyetrack/roi.h"
#include "eyetrack/segmentation.h"
#include "flatcam/imaging.h"
#include "flatcam/reconstruction.h"

namespace eyecod {
namespace eyetrack {

/** Camera front-end flavours. */
enum class CameraKind { Lens, FlatCam };

/** End-to-end pipeline configuration. */
struct PipelineConfig
{
    CameraKind camera = CameraKind::FlatCam;
    int scene_size = 128;  ///< Scene / reconstruction extent.
    int roi_height = 48;   ///< ROI crop extent at scene scale
    int roi_width = 80;    ///  (96x160 at the paper's 256 scale).
    int roi_refresh = 50;  ///< Frames between ROI predictions.
    CropPolicy policy = CropPolicy::Roi;
    SegmenterConfig segmenter;
    GazeEstimatorConfig gaze;
    flatcam::SensorNoise sensor_noise;
    double recon_epsilon = 2e-3; ///< Tikhonov weight.
    int flatcam_sensor_margin = 32; ///< Sensor extent - scene extent.
    uint64_t mask_seed = 0x71a7ca;
    /**
     * Training-time ROI anchor jitter in pixels: augments the gaze
     * training crops with random offsets so the estimator tolerates
     * the N..2N-frame ROI staleness of the deployed pipeline.
     */
    int train_anchor_jitter = 6;
};

/**
 * The composed predict-then-focus pipeline.
 */
class PredictThenFocusPipeline
{
  public:
    explicit PredictThenFocusPipeline(PipelineConfig cfg);
    ~PredictThenFocusPipeline();

    /**
     * Acquire a scene through the configured camera: identity for a
     * lens camera, FlatCam capture + reconstruction otherwise.
     */
    Image acquire(const Image &scene) const;

    /**
     * Fit the gaze stage: renders @p train_count samples, pushes
     * them through acquisition + segmentation + the configured crop
     * policy, and trains the ridge regressor on the crops.
     */
    void trainGaze(const dataset::SyntheticEyeRenderer &renderer,
                   int train_count);

    /** Result of one frame. */
    struct FrameResult
    {
        dataset::GazeVec gaze{0, 0, 1};
        bool roi_refreshed = false; ///< Segmentation ran this frame.
        Rect roi;                   ///< Crop used for gaze.
        Image view;                 ///< Acquired (reconstructed)
                                    ///  image the stages consumed.
    };

    /** Process one frame; maintains the ROI refresh state. */
    FrameResult processFrame(const Image &scene);

    /** Reset the per-sequence ROI state. */
    void reset();

    /** Mean gaze MACs per frame (stand-in estimator). */
    long long gazeMacsPerFrame() const;

    /** Amortized segmentation-stage invocations per frame (1/N). */
    double segmentationRatePerFrame() const;

    /** FlatCam reconstruction MACs per frame (0 for lens). */
    long long reconMacsPerFrame() const;

    /** Configuration in use. */
    const PipelineConfig &config() const { return cfg_; }

    /** Direct access to the stages (for experiments). */
    const ClassicalSegmenter &segmenter() const { return segmenter_; }
    const RoiPredictor &roiPredictor() const { return roi_; }
    RidgeGazeEstimator &gazeEstimator() { return gaze_; }

  private:
    PipelineConfig cfg_;
    ClassicalSegmenter segmenter_;
    RoiPredictor roi_;
    RidgeGazeEstimator gaze_;
    std::unique_ptr<flatcam::FlatCamSensor> sensor_;
    std::unique_ptr<flatcam::FlatCamReconstructor> recon_;

    // Per-sequence state.
    long frame_index_ = 0;
    std::optional<Rect> current_roi_;
    std::optional<Rect> next_roi_;
    uint64_t crop_rng_ = 0x5eed;
};

} // namespace eyetrack
} // namespace eyecod

#endif // EYECOD_EYETRACK_PIPELINE_H
