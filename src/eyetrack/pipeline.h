/**
 * @file
 * The predict-then-focus processing pipeline (Fig. 3): image
 * acquisition (lens pass-through or FlatCam capture + Tikhonov
 * reconstruction), periodic ROI prediction via segmentation, and
 * per-frame gaze estimation on the (possibly stale) ROI.
 *
 * As in the paper, ROI prediction runs once every `roi_refresh`
 * frames and the gaze stage consumes the ROI computed during the
 * *previous* refresh window, i.e. an ROI extracted N..2N frames ago.
 */

#ifndef EYECOD_EYETRACK_PIPELINE_H
#define EYECOD_EYETRACK_PIPELINE_H

#include <array>
#include <memory>
#include <optional>

#include "common/buffer_arena.h"
#include "common/image_view.h"
#include "common/snapshot.h"
#include "common/status.h"
#include "dataset/sequence.h"
#include "dataset/synthetic_eye.h"
#include "eyetrack/gaze_estimator.h"
#include "eyetrack/roi.h"
#include "eyetrack/segmentation.h"
#include "flatcam/fault_injection.h"
#include "flatcam/imaging.h"
#include "flatcam/reconstruction.h"

namespace eyecod {
namespace eyetrack {

/** Camera front-end flavours. */
enum class CameraKind { Lens, FlatCam };

/**
 * Stale-ROI watchdog: when a fresh segmentation is rejected by the
 * sanity gate (or missed because the frame was dropped), the pipeline
 * does not wait out the remainder of the roi_refresh window; it
 * re-runs segmentation after a capped exponentially growing backoff.
 */
struct WatchdogConfig
{
    bool enabled = true;
    int initial_backoff = 1; ///< Frames until the first retry.
    int max_backoff = 16;    ///< Backoff cap (also capped at
                             ///  roi_refresh).
};

/** Where the crop consumed by the gaze stage came from. */
enum class RoiSource {
    Predicted,      ///< The normal predict-then-focus chain.
    LastGood,       ///< Chain expired; holding the last accepted ROI.
    CenterFallback, ///< No accepted ROI yet; centered crop.
};

/**
 * Per-frame health record: what degraded, what was injected, and how
 * the pipeline compensated.
 */
struct FrameHealth
{
    bool degraded = false;      ///< Any abnormal condition this frame.
    bool frame_dropped = false; ///< No usable image this frame.
    RoiSource roi_source = RoiSource::Predicted;
    int faults_seen = 0;        ///< Injected faults planned this frame.
    bool nonfinite_view = false; ///< NaN/Inf pixels sanitized.
    bool roi_rejected = false;  ///< Fresh ROI failed the sanity gate.
    bool watchdog_retry = false; ///< Segmentation forced early.
    bool gaze_held = false;     ///< Emitted gaze is a held value.
    double roi_confidence = 1.0; ///< Gate confidence of the last
                                 ///  fresh ROI attempt (this frame).
    /**
     * On the first healthy frame after a degraded streak: the streak
     * length in frames; -1 otherwise.
     */
    long recovery_latency = -1;
};

/** Aggregate health counters over a sequence. */
struct HealthStats
{
    long frames = 0;
    long degraded_frames = 0;
    long dropped_frames = 0;
    long nonfinite_views = 0;   ///< Views with NaN/Inf sanitized.
    long shape_mismatches = 0;  ///< Mis-sized input frames.
    long roi_rejections = 0;
    long watchdog_retries = 0;
    long gaze_holds = 0;
    long recoveries = 0;        ///< Degraded->healthy transitions.
    long sum_recovery_latency = 0;
    /** Injected fault events by FaultKind index. */
    std::array<long, flatcam::kNumFaultKinds> fault_counts{};

    /** Mean degraded-streak length in frames (0 when none). */
    double
    meanRecoveryLatency() const
    {
        return recoveries > 0
                   ? double(sum_recovery_latency) / double(recoveries)
                   : 0.0;
    }
};

/** End-to-end pipeline configuration. */
struct PipelineConfig
{
    CameraKind camera = CameraKind::FlatCam;
    int scene_size = 128;  ///< Scene / reconstruction extent.
    int roi_height = 48;   ///< ROI crop extent at scene scale
    int roi_width = 80;    ///  (96x160 at the paper's 256 scale).
    int roi_refresh = 50;  ///< Frames between ROI predictions.
    CropPolicy policy = CropPolicy::Roi;
    SegmenterConfig segmenter;
    GazeEstimatorConfig gaze;
    flatcam::SensorNoise sensor_noise;
    double recon_epsilon = 2e-3; ///< Tikhonov weight.
    int flatcam_sensor_margin = 32; ///< Sensor extent - scene extent.
    uint64_t mask_seed = 0x71a7ca;
    /**
     * Training-time ROI anchor jitter in pixels: augments the gaze
     * training crops with random offsets so the estimator tolerates
     * the N..2N-frame ROI staleness of the deployed pipeline.
     */
    int train_anchor_jitter = 6;
    /** Sensor fault injection; all rates default to 0 (disabled). */
    flatcam::FaultConfig faults;
    /** ROI sanity gating (graceful degradation entry point). */
    RoiGateConfig roi_gate;
    /** Early re-segmentation policy after gate rejections. */
    WatchdogConfig watchdog;
    /**
     * Frames after the last accepted segmentation before the
     * predicted ROI chain is considered expired and the pipeline
     * falls back to the last-known-good ROI, in units of
     * roi_refresh. 2 matches the design's N..2N staleness bound.
     */
    int stale_limit_windows = 2;
};

/**
 * The composed predict-then-focus pipeline.
 */
class PredictThenFocusPipeline
{
  public:
    explicit PredictThenFocusPipeline(PipelineConfig cfg);
    ~PredictThenFocusPipeline();

    /**
     * Acquire a scene through the configured camera: identity for a
     * lens camera, FlatCam capture + reconstruction otherwise.
     */
    Image acquire(const Image &scene) const;

    /**
     * Fit the gaze stage: renders @p train_count samples, pushes
     * them through acquisition + segmentation + the configured crop
     * policy, and trains the ridge regressor on the crops.
     */
    void trainGaze(const dataset::SyntheticEyeRenderer &renderer,
                   int train_count);

    /** Result of one frame. */
    struct FrameResult
    {
        dataset::GazeVec gaze{0, 0, 1};
        bool roi_refreshed = false; ///< Segmentation ran this frame.
        Rect roi;                   ///< Crop used for gaze.
        Image view;                 ///< Acquired (reconstructed)
                                    ///  image the stages consumed
                                    ///  (the last good view on a
                                    ///  dropped frame).
        FrameHealth health;         ///< Degradation record.
    };

    /**
     * Process one frame; maintains the ROI refresh state and the
     * degradation state machine. Never aborts on abnormal input: a
     * dropped/corrupted frame degrades the result (held gaze,
     * fallback ROI) and is recorded in the returned FrameHealth. The
     * emitted gaze vector is always finite.
     */
    FrameResult processFrame(const Image &scene);

    /**
     * Zero-copy variant of processFrame(): identical semantics and
     * bitwise-identical outputs, but the result lives in a member
     * slot (valid until the next processFrameRef/processFrame/reset
     * call) and the per-frame scratch — acquired view, FlatCam
     * measurement, clamped ROI crops — is served from the pipeline's
     * buffer arena and capacity-reusing member images. Steady-state
     * frames perform zero heap allocations. This is the serving-path
     * entry point; processFrame() is a copying shim over it.
     */
    const FrameResult &processFrameRef(const Image &scene);

    /**
     * Reset the full per-sequence state: ROI refresh chain, crop RNG,
     * sensor noise stream, the degradation state machine (fallback
     * ROIs, held gaze, watchdog backoff), and the health counters.
     */
    void reset();

    /**
     * Serialize the full per-sequence state — exactly the set
     * reset() clears: ROI refresh phase, crop RNG, degradation FSM
     * (fallback ROIs, held gaze, watchdog backoff, outage streak),
     * the last acquired view, health counters, and the sensor noise
     * stream position. The trained gaze estimator, mask, and
     * configuration are NOT captured: they are construction inputs a
     * restoring process already holds.
     */
    void saveSnapshot(snap::SnapshotWriter &w) const;

    /**
     * Restore the per-sequence state saved by saveSnapshot() into a
     * pipeline built from the same configuration. On a typed failure
     * the pipeline state is unspecified; call reset() before reuse.
     */
    [[nodiscard]] Status restoreSnapshot(snap::SnapshotReader &r);

    /** Aggregate health counters since construction or reset(). */
    const HealthStats &healthStats() const { return health_stats_; }

    /** True while inside a degraded streak (not yet recovered). */
    bool inDegradedMode() const { return outage_start_ >= 0; }

    /** Mean gaze MACs per frame (stand-in estimator). */
    long long gazeMacsPerFrame() const;

    /** Amortized segmentation-stage invocations per frame (1/N). */
    double segmentationRatePerFrame() const;

    /** FlatCam reconstruction MACs per frame (0 for lens). */
    long long reconMacsPerFrame() const;

    /** Configuration in use. */
    const PipelineConfig &config() const { return cfg_; }

    /**
     * The per-pipeline frame arena (epoch-reset at the top of every
     * processed frame); exposes pooling statistics for benches.
     */
    const BufferArena &arena() const { return arena_; }

    /** Direct access to the stages (for experiments). */
    const ClassicalSegmenter &segmenter() const { return segmenter_; }
    const RoiPredictor &roiPredictor() const { return roi_; }
    RidgeGazeEstimator &gazeEstimator() { return gaze_; }

  private:
    /**
     * Acquire one serving-path frame into @p view (capacity-reusing);
     * typed errors, fault-injected. On error @p view is unspecified
     * and must not be consumed.
     */
    Status acquireFrameInto(const Image &scene, long frame,
                            const flatcam::FrameFaults &faults,
                            Image *view);

    /** Run + gate segmentation; updates the ROI chain and watchdog. */
    void refreshRoi(ImageConstView view, bool forced,
                    FrameHealth &health);

    /** Centered roi_height x roi_width crop of the scene extent. */
    Rect centeredCrop() const;

    // detlint:allow(R12) construction-time config; snapshots carry dynamic state.
    PipelineConfig cfg_;
    // detlint:allow(R12) stateless stage, rebuilt from cfg_ at construction.
    ClassicalSegmenter segmenter_;
    // detlint:allow(R12) stage state travels via the ROI fields below.
    RoiPredictor roi_;
    // detlint:allow(R12) model fitted at construction from cfg_.
    RidgeGazeEstimator gaze_;
    std::unique_ptr<flatcam::FlatCamSensor> sensor_;
    // detlint:allow(R12) rebuilt from calibration at construction.
    std::unique_ptr<flatcam::FlatCamReconstructor> recon_;
    // detlint:allow(R12) fault schedule is config, replayed deterministically.
    std::unique_ptr<flatcam::FaultInjector> injector_;

    // Per-sequence ROI refresh state.
    long frame_index_ = 0;
    std::optional<Rect> current_roi_;
    std::optional<Rect> next_roi_;
    uint64_t crop_rng_ = 0x5eed;

    // Degradation state machine.
    std::optional<Rect> last_good_roi_; ///< Last gate-accepted ROI.
    long last_accept_frame_ = -1;  ///< Frame of that acceptance.
    dataset::GazeVec last_gaze_{0, 0, 1};
    bool has_last_gaze_ = false;
    Image last_view_;              ///< Last successfully acquired view.
    bool seg_pending_ = false;     ///< Seg was due on a dropped frame.
    long frames_to_retry_ = -1;    ///< Watchdog countdown (-1 idle).
    int backoff_ = 1;              ///< Current watchdog backoff.
    long outage_start_ = -1;       ///< First frame of the current
                                   ///  degraded streak (-1 healthy).
    HealthStats health_stats_;

    // Frame spine: pooled per-frame scratch. The arena is epoch-reset
    // at the top of every frame; the member images reuse capacity, so
    // steady-state frames never touch the heap.
    // detlint:allow(R12) pooled scratch, epoch-reset at the top of every frame.
    BufferArena arena_;
    // detlint:allow(R12) per-frame scratch, repainted before first use.
    Image view_;       ///< Acquired (reconstructed) frame scratch.
    // detlint:allow(R12) per-frame scratch, repainted before first use.
    Image meas_;       ///< FlatCam measurement scratch.
    // detlint:allow(R12) last-frame output slot, overwritten next frame.
    FrameResult result_; ///< processFrameRef() result slot.
};

} // namespace eyetrack
} // namespace eyecod

#endif // EYECOD_EYETRACK_PIPELINE_H
