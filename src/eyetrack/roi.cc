#include "eyetrack/roi.h"

#include <algorithm>

#include "common/logging.h"

namespace eyecod {
namespace eyetrack {

using dataset::SegMask;

MaskStats
computeMaskStats(const SegMask &mask)
{
    MaskStats s;
    long sum_y = 0, sum_x = 0;
    int min_y = mask.height, max_y = -1;
    int min_x = mask.width, max_x = -1;
    for (int y = 0; y < mask.height; ++y) {
        for (int x = 0; x < mask.width; ++x) {
            const uint8_t c = mask.at(y, x);
            if (c == dataset::kPupil) {
                sum_y += y;
                sum_x += x;
                ++s.pupil_area;
            }
            if (c != dataset::kBackground) {
                min_y = std::min(min_y, y);
                max_y = std::max(max_y, y);
                min_x = std::min(min_x, x);
                max_x = std::max(max_x, x);
            }
        }
    }
    if (s.pupil_area > 0) {
        s.has_pupil = true;
        s.pupil_cy = double(sum_y) / double(s.pupil_area);
        s.pupil_cx = double(sum_x) / double(s.pupil_area);
    }
    if (max_y >= 0) {
        s.eye_height = max_y - min_y + 1;
        s.eye_width = max_x - min_x + 1;
    }
    return s;
}

RoiPredictor::RoiPredictor(int roi_height, int roi_width)
    : roi_h_(roi_height), roi_w_(roi_width)
{
    eyecod_assert(roi_height > 0 && roi_width > 0,
                  "ROI extent must be positive, got %dx%d",
                  roi_height, roi_width);
}

Result<std::pair<int, int>>
RoiPredictor::calibrateSize(const std::vector<SegMask> &train_masks,
                            double factor)
{
    if (train_masks.empty())
        return Status::error(ErrorCode::InvalidArgument,
                             "calibrateSize on empty set");
    double sum_h = 0.0, sum_w = 0.0;
    long count = 0;
    for (const SegMask &m : train_masks) {
        const MaskStats s = computeMaskStats(m);
        if (s.eye_height > 0) {
            sum_h += s.eye_height;
            sum_w += s.eye_width;
            ++count;
        }
    }
    if (count == 0)
        return Status::error(
            ErrorCode::SegmentationFailed,
            "ROI calibration found no eye pixels in training set");
    const int h = int(factor * sum_h / double(count));
    const int w = int(factor * sum_w / double(count));
    return std::pair<int, int>{h, w};
}

RoiGateDecision
validateRoi(const SegMask &mask, const MaskStats &stats,
            const Rect &candidate, const RoiGateConfig &cfg)
{
    RoiGateDecision d;
    if (!cfg.enabled)
        return d;

    const double frame_area = double(mask.height) * double(mask.width);
    if (!stats.has_pupil) {
        d.accepted = false;
        d.confidence = 0.0;
        d.reason = Status::error(ErrorCode::SegmentationFailed,
                                 "segmentation found no pupil");
        return d;
    }
    const double pupil_frac = double(stats.pupil_area) / frame_area;
    if (pupil_frac < cfg.min_pupil_fraction ||
        pupil_frac > cfg.max_pupil_fraction) {
        d.accepted = false;
        d.confidence = 0.0;
        d.reason = Status::error(
            ErrorCode::RoiRejected,
            "pupil area fraction %.5f outside [%.5f, %.5f]",
            pupil_frac, cfg.min_pupil_fraction,
            cfg.max_pupil_fraction);
        return d;
    }

    // Candidate placement: mostly inside the frame.
    const int y0 = std::max(candidate.y, 0);
    const int x0 = std::max(candidate.x, 0);
    const int y1 = std::min(candidate.y + candidate.height, mask.height);
    const int x1 = std::min(candidate.x + candidate.width, mask.width);
    const long inside_area =
        std::max(0, y1 - y0) * long(std::max(0, x1 - x0));
    const double inside_frac =
        candidate.area() > 0
            ? double(inside_area) / double(candidate.area()) : 0.0;
    if (inside_frac < cfg.min_inside) {
        d.accepted = false;
        d.confidence = 0.0;
        d.reason = Status::error(
            ErrorCode::RoiRejected,
            "only %.2f of candidate ROI lies in-frame", inside_frac);
        return d;
    }

    // Pupil-mask coverage: the crop must contain the pupil mass it is
    // supposed to focus on.
    long covered = 0;
    for (int y = y0; y < y1; ++y)
        for (int x = x0; x < x1; ++x)
            covered += mask.at(y, x) == dataset::kPupil ? 1 : 0;
    const double containment =
        double(covered) / double(stats.pupil_area);
    d.confidence = std::min(1.0, containment);
    if (containment < cfg.min_containment) {
        d.accepted = false;
        d.reason = Status::error(
            ErrorCode::RoiRejected,
            "candidate ROI covers only %.2f of the pupil mass",
            containment);
        return d;
    }
    return d;
}

namespace {

/** xorshift64 step for the Random crop policy. */
uint64_t
xorshift(uint64_t *state)
{
    uint64_t x = *state ? *state : 0x1234567ULL;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    return x;
}

} // namespace

Rect
RoiPredictor::predict(const SegMask &mask, CropPolicy policy,
                      uint64_t *rng_state) const
{
    const int h = mask.height;
    const int w = mask.width;
    double cy = h / 2.0;
    double cx = w / 2.0;

    switch (policy) {
      case CropPolicy::Roi: {
        const MaskStats s = computeMaskStats(mask);
        // Fallback to the central crop when segmentation found no
        // pupil (e.g. a blink).
        if (s.has_pupil) {
            cy = s.pupil_cy;
            cx = s.pupil_cx;
        }
        break;
      }
      case CropPolicy::Central:
        break;
      case CropPolicy::Random: {
        eyecod_assert(rng_state != nullptr,
                      "Random crop policy needs rng state");
        cy = roi_h_ / 2.0 +
             double(xorshift(rng_state) % 10000) / 10000.0 *
                 std::max(0, h - roi_h_);
        cx = roi_w_ / 2.0 +
             double(xorshift(rng_state) % 10000) / 10000.0 *
                 std::max(0, w - roi_w_);
        break;
      }
    }

    Rect r;
    r.height = roi_h_;
    r.width = roi_w_;
    r.y = int(cy - roi_h_ / 2.0);
    r.x = int(cx - roi_w_ / 2.0);
    // Keep the crop inside the frame where possible (clamped border
    // replication handles any residual overhang).
    r.y = std::clamp(r.y, -roi_h_ / 4, h - 3 * roi_h_ / 4);
    r.x = std::clamp(r.x, -roi_w_ / 4, w - 3 * roi_w_ / 4);
    return r;
}

} // namespace eyetrack
} // namespace eyecod
