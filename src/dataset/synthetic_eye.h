/**
 * @file
 * Procedural near-eye image renderer: the OpenEDS dataset substitute
 * (see DESIGN.md). Each sample is a grayscale eye image with a
 * 4-class segmentation mask (background/sclera/iris/pupil, matching
 * OpenEDS2019 semantics) and a ground-truth 3-D gaze vector.
 *
 * The renderer models the statistics the pipeline depends on: a dark
 * circular pupil anchored near the eye centre, a textured iris ring,
 * a low-contrast sclera, eyelid occlusion, a specular glint, skin
 * texture, eye-position jitter across subjects/headset placements,
 * and sensor noise.
 */

#ifndef EYECOD_DATASET_SYNTHETIC_EYE_H
#define EYECOD_DATASET_SYNTHETIC_EYE_H

#include <cstdint>
#include <vector>

#include "common/image.h"
#include "common/rng.h"
#include "dataset/gaze_math.h"

namespace eyecod {
namespace dataset {

/** OpenEDS-style segmentation class labels. */
enum SegClass : uint8_t {
    kBackground = 0,
    kSclera = 1,
    kIris = 2,
    kPupil = 3,
};

/** Per-pixel class labels matching an Image's extent. */
struct SegMask
{
    int height = 0;
    int width = 0;
    std::vector<uint8_t> labels; ///< Row-major class ids.

    uint8_t
    at(int y, int x) const
    {
        return labels[size_t(y) * width + x];
    }
    uint8_t &
    at(int y, int x)
    {
        return labels[size_t(y) * width + x];
    }

    /** Nearest-neighbour downsample to a new extent. */
    SegMask resized(int new_height, int new_width) const;
};

/** Scene-level parameters of one rendered eye. */
struct EyeParams
{
    double yaw_deg = 0.0;    ///< Gaze yaw.
    double pitch_deg = 0.0;  ///< Gaze pitch.
    double eye_cy = 0.0;     ///< Eyeball centre (pixels).
    double eye_cx = 0.0;
    double eye_radius = 0.0; ///< Eyeball radius (pixels).
    double pupil_scale = 1.0; ///< Pupil dilation factor.
    double eyelid_open = 1.0; ///< 1 fully open .. 0 closed.
};

/** One rendered sample. */
struct EyeSample
{
    Image image;     ///< Grayscale eye image in [0, 1].
    SegMask mask;    ///< Ground-truth segmentation.
    GazeVec gaze;    ///< Ground-truth gaze direction.
    EyeParams params; ///< Scene parameters used.
    double pupil_cy = 0.0; ///< Ground-truth pupil centre.
    double pupil_cx = 0.0;
};

/** Renderer configuration. */
struct RenderConfig
{
    int image_size = 128;   ///< Square output extent.
    double max_yaw_deg = 30.0;
    double max_pitch_deg = 25.0;
    /** Eye-centre jitter as a fraction of the image extent. */
    double centre_jitter = 0.16;
    double skin_level = 0.55;   ///< Mean skin intensity.
    double sclera_level = 0.82; ///< Mean sclera intensity.
    double iris_level = 0.34;   ///< Mean iris intensity.
    double pupil_level = 0.06;  ///< Mean pupil intensity.
    double texture_noise = 0.03; ///< Per-pixel texture noise.
    double sensor_noise = 0.01;  ///< Additive capture noise.
    bool draw_glint = true;     ///< Specular reflection.
};

/**
 * The procedural renderer. Deterministic given (config, seed, index):
 * sample(i) always returns the same EyeSample.
 */
class SyntheticEyeRenderer
{
  public:
    explicit SyntheticEyeRenderer(RenderConfig cfg = {},
                                  uint64_t seed = 2019);

    /** Render sample @p index of the virtual dataset. */
    EyeSample sample(uint64_t index) const;

    /**
     * Render a sample with explicit scene parameters (used by the
     * trajectory generator for Tab. 5). Thin shim over renderInto().
     */
    EyeSample render(const EyeParams &params, uint64_t noise_seed)
        const;

    /**
     * Render into a caller-provided sample, reusing its image/mask
     * storage when the extents already match — the serving path keeps
     * one EyeSample per session and re-renders into it every frame
     * with zero heap allocations. Bitwise-identical to render().
     */
    void renderInto(const EyeParams &params, uint64_t noise_seed,
                    EyeSample *out) const;

    /** Draw random scene parameters for sample @p index. */
    EyeParams sampleParams(uint64_t index) const;

    /** Renderer configuration. */
    const RenderConfig &config() const { return cfg_; }

  private:
    RenderConfig cfg_;
    uint64_t seed_;
};

} // namespace dataset
} // namespace eyecod

#endif // EYECOD_DATASET_SYNTHETIC_EYE_H
