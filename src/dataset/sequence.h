/**
 * @file
 * Temporal eye-motion sequences for the ROI refresh-rate experiments
 * (Tab. 5). The paper exploits that "the movement of eyes [in the
 * socket] is much slower than the movement of gaze directions": gaze
 * makes saccades many times per second, while the eye centre drifts
 * slowly (headset slippage). The trajectory generator reproduces
 * exactly that separation of time scales.
 */

#ifndef EYECOD_DATASET_SEQUENCE_H
#define EYECOD_DATASET_SEQUENCE_H

#include <cstdint>
#include <vector>

#include "dataset/synthetic_eye.h"

namespace eyecod {
namespace dataset {

/** Trajectory generator configuration. */
struct TrajectoryConfig
{
    int frames = 200;        ///< Sequence length.
    double fps = 240.0;      ///< Frame rate the paper targets.
    double saccade_rate = 3.0; ///< Expected saccades per second.
    /** Smooth-pursuit time constant in seconds. */
    double pursuit_tau = 0.08;
    /** Eye-centre drift amplitude, fraction of image per second. */
    double drift_per_second = 0.02;
    /**
     * Fraction of the renderer's gaze range that saccade targets
     * span (in-headset gaze rarely sweeps the full calibration
     * range).
     */
    double gaze_range_scale = 0.7;
    /**
     * Expected blinks per second; 0 (the default) disables blinks
     * and leaves the generated sequence bit-identical to the
     * pre-blink generator. During a blink the eyelid sweeps closed
     * and back open over blink_duration seconds, occluding the
     * pupil — the natural-fault counterpart to injected sensor
     * faults (the segmenter finds no pupil and the ROI gate must
     * hold the last good ROI).
     */
    double blink_rate = 0.0;
    /** Blink duration in seconds (close + reopen). */
    double blink_duration = 0.15;
};

/**
 * Generate a frame-by-frame sequence of scene parameters for one
 * synthetic subject: fast gaze dynamics over a slowly drifting eye
 * position.
 *
 * @param renderer supplies the static per-subject parameters.
 * @param subject subject index (deterministic per index).
 * @param cfg dynamics configuration.
 */
std::vector<EyeParams> makeTrajectory(
    const SyntheticEyeRenderer &renderer, uint64_t subject,
    const TrajectoryConfig &cfg);

} // namespace dataset
} // namespace eyecod

#endif // EYECOD_DATASET_SEQUENCE_H
