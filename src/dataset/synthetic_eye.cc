#include "dataset/synthetic_eye.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace eyecod {
namespace dataset {

namespace {

/** Mix an index into a seed (splitmix64 finalizer). */
uint64_t
mixSeed(uint64_t seed, uint64_t index)
{
    uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

SegMask
SegMask::resized(int new_height, int new_width) const
{
    SegMask out;
    out.height = new_height;
    out.width = new_width;
    out.labels.resize(size_t(new_height) * new_width);
    for (int y = 0; y < new_height; ++y) {
        const int sy = std::min(height - 1, y * height / new_height);
        for (int x = 0; x < new_width; ++x) {
            const int sx = std::min(width - 1, x * width / new_width);
            out.at(y, x) = at(sy, sx);
        }
    }
    return out;
}

SyntheticEyeRenderer::SyntheticEyeRenderer(RenderConfig cfg,
                                           uint64_t seed)
    : cfg_(cfg), seed_(seed)
{
    eyecod_assert(cfg_.image_size >= 32,
                  "renderer needs image_size >= 32, got %d",
                  cfg_.image_size);
}

EyeParams
SyntheticEyeRenderer::sampleParams(uint64_t index) const
{
    Rng rng(mixSeed(seed_, index));
    const double n = cfg_.image_size;
    EyeParams p;
    p.yaw_deg = rng.uniform(-cfg_.max_yaw_deg, cfg_.max_yaw_deg);
    p.pitch_deg =
        rng.uniform(-cfg_.max_pitch_deg, cfg_.max_pitch_deg);
    p.eye_cy = n / 2.0 +
               rng.uniform(-1.0, 1.0) * cfg_.centre_jitter * n;
    p.eye_cx = n / 2.0 +
               rng.uniform(-1.0, 1.0) * cfg_.centre_jitter * n;
    p.eye_radius = n * (0.20 + 0.03 * rng.uniform());
    p.pupil_scale = 0.8 + 0.4 * rng.uniform();
    p.eyelid_open = 0.72 + 0.28 * rng.uniform();
    return p;
}

EyeSample
SyntheticEyeRenderer::sample(uint64_t index) const
{
    return render(sampleParams(index), mixSeed(seed_ ^ 0xabcd, index));
}

EyeSample
SyntheticEyeRenderer::render(const EyeParams &p,
                             uint64_t noise_seed) const
{
    EyeSample s;
    renderInto(p, noise_seed, &s);
    return s;
}

void
SyntheticEyeRenderer::renderInto(const EyeParams &p,
                                 uint64_t noise_seed,
                                 EyeSample *out) const
{
    const int n = cfg_.image_size;
    Rng rng(noise_seed);

    EyeSample &s = *out;
    s.params = p;
    s.gaze = anglesToVector(p.yaw_deg, p.pitch_deg);
    // Capacity-reusing (re)initialization: same values the
    // Image(n, n, skin_level) constructor would produce.
    s.image.resetShape(n, n);
    std::fill(s.image.data().begin(), s.image.data().end(),
              float(cfg_.skin_level));
    s.mask.height = n;
    s.mask.width = n;
    s.mask.labels.assign(size_t(n) * n, kBackground);

    // Low-frequency skin texture: a few random sinusoidal ripples.
    const int waves = 4;
    double wy[waves], wx[waves], ph[waves], amp[waves];
    for (int i = 0; i < waves; ++i) {
        wy[i] = rng.uniform(0.5, 3.0) * 2.0 * M_PI / n;
        wx[i] = rng.uniform(0.5, 3.0) * 2.0 * M_PI / n;
        ph[i] = rng.uniform(0.0, 2.0 * M_PI);
        amp[i] = rng.uniform(0.01, 0.035);
    }
    for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
            double v = s.image.at(y, x);
            for (int i = 0; i < waves; ++i)
                v += amp[i] * std::sin(wy[i] * y + wx[i] * x + ph[i]);
            v += rng.gaussian(0.0, cfg_.texture_noise);
            s.image.at(y, x) = float(v);
        }
    }

    // Geometry. Image y grows downward, so positive pitch (up) moves
    // the iris centre up, i.e. toward smaller y.
    const double r = p.eye_radius;
    const double gx = s.gaze[0];
    const double gy = s.gaze[1];
    // Eye opening (sclera aperture), clipped by the eyelids.
    const double ap_rx = 1.60 * r;
    const double ap_ry = 0.95 * r * p.eyelid_open;
    // Iris centre displaced across the eyeball by the gaze.
    const double iris_cy = p.eye_cy - gy * r * 0.90;
    const double iris_cx = p.eye_cx + gx * r * 0.90;
    const double ri = 0.82 * r;
    const double iris_rx = ri * std::sqrt(1.0 - 0.75 * gx * gx);
    const double iris_ry = ri * std::sqrt(1.0 - 0.75 * gy * gy);
    const double rp = 0.38 * ri * p.pupil_scale;
    const double pup_rx = rp * std::sqrt(1.0 - 0.75 * gx * gx);
    const double pup_ry = rp * std::sqrt(1.0 - 0.75 * gy * gy);
    s.pupil_cy = iris_cy;
    s.pupil_cx = iris_cx;

    auto inside = [](double y, double x, double cy, double cx,
                     double ry, double rx) {
        const double dy = (y - cy) / ry;
        const double dx = (x - cx) / rx;
        return dy * dy + dx * dx <= 1.0;
    };

    for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
            if (!inside(y, x, p.eye_cy, p.eye_cx, ap_ry, ap_rx))
                continue; // skin / eyelid
            double v = cfg_.sclera_level + rng.gaussian(
                0.0, cfg_.texture_noise * 1.5);
            uint8_t cls = kSclera;
            if (inside(y, x, iris_cy, iris_cx, iris_ry, iris_rx)) {
                const double ang =
                    std::atan2(y - iris_cy, x - iris_cx);
                v = cfg_.iris_level + 0.05 * std::sin(8.0 * ang) +
                    rng.gaussian(0.0, cfg_.texture_noise);
                cls = kIris;
                if (inside(y, x, iris_cy, iris_cx, pup_ry, pup_rx)) {
                    v = cfg_.pupil_level +
                        rng.gaussian(0.0, cfg_.texture_noise * 0.5);
                    cls = kPupil;
                }
            }
            s.image.at(y, x) = float(v);
            s.mask.at(y, x) = cls;
        }
    }

    // Specular glint from the (fixed) NIR illuminator: a small bright
    // spot at the lower-left pupil boundary. Class labels unchanged.
    if (cfg_.draw_glint) {
        const double g_cy = iris_cy + 0.45 * rp;
        const double g_cx = iris_cx - 0.45 * rp;
        const double g_r = std::max(1.0, 0.30 * rp);
        for (int y = std::max(0, int(g_cy - g_r));
             y <= std::min(n - 1, int(g_cy + g_r)); ++y) {
            for (int x = std::max(0, int(g_cx - g_r));
                 x <= std::min(n - 1, int(g_cx + g_r)); ++x) {
                if (inside(y, x, g_cy, g_cx, g_r, g_r))
                    s.image.at(y, x) = 0.95f;
            }
        }
    }

    // Capture noise.
    if (cfg_.sensor_noise > 0.0) {
        for (float &v : s.image.data())
            v += float(rng.gaussian(0.0, cfg_.sensor_noise));
    }
    s.image.clamp();
}

} // namespace dataset
} // namespace eyecod
