/**
 * @file
 * Gaze direction math: angle <-> unit-vector conversion and the
 * arccosine angular error metric used by OpenEDS2020 and the paper's
 * Tab. 2/4/5 (gaze error in degrees).
 */

#ifndef EYECOD_DATASET_GAZE_MATH_H
#define EYECOD_DATASET_GAZE_MATH_H

#include <array>

namespace eyecod {
namespace dataset {

/** A 3-D gaze direction; unit length by convention. */
using GazeVec = std::array<double, 3>;

/**
 * Build a unit gaze vector from yaw/pitch.
 *
 * @param yaw_deg horizontal angle, positive to the viewer's right.
 * @param pitch_deg vertical angle, positive upward.
 */
GazeVec anglesToVector(double yaw_deg, double pitch_deg);

/** Recover (yaw, pitch) in degrees from a gaze vector. */
std::array<double, 2> vectorToAngles(const GazeVec &g);

/** Normalize a vector to unit length (returns +z for near-zero). */
GazeVec normalize(const GazeVec &g);

/**
 * Angular error between two gaze directions in degrees:
 * acos(<a, b> / (|a||b|)).
 */
double angularErrorDeg(const GazeVec &a, const GazeVec &b);

} // namespace dataset
} // namespace eyecod

#endif // EYECOD_DATASET_GAZE_MATH_H
