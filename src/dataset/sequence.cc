#include "dataset/sequence.h"

#include <cmath>

#include "common/logging.h"

namespace eyecod {
namespace dataset {

std::vector<EyeParams>
makeTrajectory(const SyntheticEyeRenderer &renderer, uint64_t subject,
               const TrajectoryConfig &cfg)
{
    eyecod_assert(cfg.frames > 0 && cfg.fps > 0.0,
                  "bad trajectory config");
    const RenderConfig &rc = renderer.config();
    // Static per-subject parameters (eye radius, starting position).
    EyeParams base = renderer.sampleParams(subject * 7919);
    Rng rng(0xf00d + subject);

    const double dt = 1.0 / cfg.fps;
    const double saccade_p = cfg.saccade_rate * dt;
    const double alpha = 1.0 - std::exp(-dt / cfg.pursuit_tau);
    const double drift_step =
        cfg.drift_per_second * rc.image_size * dt;

    double yaw = base.yaw_deg;
    double pitch = base.pitch_deg;
    double target_yaw = yaw;
    double target_pitch = pitch;
    double cy = base.eye_cy;
    double cx = base.eye_cx;
    // Slow sinusoidal drift of the eye position (headset slippage).
    const double drift_freq = rng.uniform(0.2, 0.6); // Hz
    const double drift_phase = rng.uniform(0.0, 2.0 * M_PI);

    // Blink state: frames remaining in the current blink, and its
    // total length. Guarded on blink_rate so the default (0) draws
    // nothing from the RNG and the sequence stays bit-identical to
    // the blink-free generator.
    const int blink_frames =
        std::max(1, int(std::lround(cfg.blink_duration * cfg.fps)));
    const double blink_p = cfg.blink_rate * dt;
    int blink_left = 0;

    std::vector<EyeParams> out;
    out.reserve(size_t(cfg.frames));
    for (int f = 0; f < cfg.frames; ++f) {
        if (rng.bernoulli(saccade_p)) {
            const double ry = rc.max_yaw_deg * cfg.gaze_range_scale;
            const double rp =
                rc.max_pitch_deg * cfg.gaze_range_scale;
            target_yaw = rng.uniform(-ry, ry);
            target_pitch = rng.uniform(-rp, rp);
        }
        // Exponential approach to the saccade target (pursuit).
        yaw += alpha * (target_yaw - yaw) + rng.gaussian(0.0, 0.15);
        pitch +=
            alpha * (target_pitch - pitch) + rng.gaussian(0.0, 0.15);

        const double t = f * dt;
        cy = base.eye_cy + drift_step / dt * 0.5 / drift_freq *
             std::sin(2.0 * M_PI * drift_freq * t + drift_phase) /
             (2.0 * M_PI);
        cx += rng.gaussian(0.0, drift_step * 0.3);

        EyeParams p = base;
        p.yaw_deg = yaw;
        p.pitch_deg = pitch;
        p.eye_cy = cy;
        p.eye_cx = cx;
        p.pupil_scale =
            base.pupil_scale * (1.0 + 0.02 * std::sin(2.0 * t));

        if (cfg.blink_rate > 0.0) {
            if (blink_left == 0 && rng.bernoulli(blink_p))
                blink_left = blink_frames;
            if (blink_left > 0) {
                // Cosine lid profile: open -> closed -> open.
                const double phase =
                    double(blink_frames - blink_left) /
                    double(blink_frames);
                const double lid =
                    0.5 * (1.0 + std::cos(2.0 * M_PI * phase));
                p.eyelid_open = base.eyelid_open * lid;
                --blink_left;
            }
        }
        out.push_back(p);
    }
    return out;
}

} // namespace dataset
} // namespace eyecod
