#include "dataset/gaze_math.h"

#include <algorithm>
#include <cmath>

namespace eyecod {
namespace dataset {

namespace {
constexpr double kDegToRad = M_PI / 180.0;
constexpr double kRadToDeg = 180.0 / M_PI;
} // namespace

GazeVec
anglesToVector(double yaw_deg, double pitch_deg)
{
    const double yaw = yaw_deg * kDegToRad;
    const double pitch = pitch_deg * kDegToRad;
    return GazeVec{std::sin(yaw) * std::cos(pitch), std::sin(pitch),
                   std::cos(yaw) * std::cos(pitch)};
}

std::array<double, 2>
vectorToAngles(const GazeVec &g)
{
    const GazeVec n = normalize(g);
    const double pitch = std::asin(std::clamp(n[1], -1.0, 1.0));
    const double yaw = std::atan2(n[0], n[2]);
    return {yaw * kRadToDeg, pitch * kRadToDeg};
}

GazeVec
normalize(const GazeVec &g)
{
    const double norm =
        std::sqrt(g[0] * g[0] + g[1] * g[1] + g[2] * g[2]);
    if (norm < 1e-12)
        return GazeVec{0.0, 0.0, 1.0};
    return GazeVec{g[0] / norm, g[1] / norm, g[2] / norm};
}

double
angularErrorDeg(const GazeVec &a, const GazeVec &b)
{
    const GazeVec na = normalize(a);
    const GazeVec nb = normalize(b);
    const double dot = std::clamp(
        na[0] * nb[0] + na[1] * nb[1] + na[2] * nb[2], -1.0, 1.0);
    return std::acos(dot) * kRadToDeg;
}

} // namespace dataset
} // namespace eyecod
