#include "dataset/export.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/logging.h"

namespace eyecod {
namespace dataset {

namespace {

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

bool
writePgm(const std::string &path, const Image &img)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;
    std::fprintf(f.get(), "P5\n%d %d\n255\n", img.width(),
                 img.height());
    std::vector<unsigned char> row(size_t(img.width()));
    for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
            const float v = std::clamp(img.at(y, x), 0.0f, 1.0f);
            row[size_t(x)] = (unsigned char)std::lround(v * 255.0f);
        }
        if (std::fwrite(row.data(), 1, row.size(), f.get()) !=
            row.size())
            return false;
    }
    return true;
}

bool
readPgm(const std::string &path, Image *img)
{
    eyecod_assert(img != nullptr, "readPgm needs a destination");
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return false;
    int w = 0, h = 0, maxval = 0;
    if (std::fscanf(f.get(), "P5 %d %d %d", &w, &h, &maxval) != 3 ||
        w <= 0 || h <= 0 || maxval != 255)
        return false;
    std::fgetc(f.get()); // the single whitespace after the header
    *img = Image(h, w);
    std::vector<unsigned char> row(static_cast<size_t>(w), 0);
    for (int y = 0; y < h; ++y) {
        if (std::fread(row.data(), 1, row.size(), f.get()) !=
            row.size())
            return false;
        for (int x = 0; x < w; ++x)
            img->at(y, x) = float(row[size_t(x)]) / 255.0f;
    }
    return true;
}

bool
writeMaskPpm(const std::string &path, const SegMask &mask)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;
    std::fprintf(f.get(), "P6\n%d %d\n255\n", mask.width,
                 mask.height);
    static const unsigned char palette[4][3] = {
        {0, 0, 0},     // background
        {220, 60, 60}, // sclera
        {60, 200, 60}, // iris
        {60, 60, 230}, // pupil
    };
    std::vector<unsigned char> row(size_t(mask.width) * 3);
    for (int y = 0; y < mask.height; ++y) {
        for (int x = 0; x < mask.width; ++x) {
            const unsigned char *c = palette[mask.at(y, x) & 3];
            row[size_t(x) * 3 + 0] = c[0];
            row[size_t(x) * 3 + 1] = c[1];
            row[size_t(x) * 3 + 2] = c[2];
        }
        if (std::fwrite(row.data(), 1, row.size(), f.get()) !=
            row.size())
            return false;
    }
    return true;
}

} // namespace dataset
} // namespace eyecod
