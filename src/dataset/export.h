/**
 * @file
 * Image export/import for debugging and visualization: binary PGM
 * (P5) for grayscale images and binary PPM (P6) for colorized
 * segmentation masks. The examples use these to dump eye renders,
 * FlatCam measurements, and reconstructions.
 */

#ifndef EYECOD_DATASET_EXPORT_H
#define EYECOD_DATASET_EXPORT_H

#include <string>

#include "common/image.h"
#include "dataset/synthetic_eye.h"

namespace eyecod {
namespace dataset {

/**
 * Write an image as binary PGM; pixel values are clamped to [0, 1]
 * and quantized to 8 bits.
 *
 * @return false on I/O failure.
 */
bool writePgm(const std::string &path, const Image &img);

/**
 * Read a binary PGM written by writePgm().
 *
 * @param[out] img destination image.
 * @return false on I/O or format failure.
 */
bool readPgm(const std::string &path, Image *img);

/**
 * Write a segmentation mask as binary PPM with the conventional
 * OpenEDS class colours: background black, sclera red, iris green,
 * pupil blue.
 */
bool writeMaskPpm(const std::string &path, const SegMask &mask);

} // namespace dataset
} // namespace eyecod

#endif // EYECOD_DATASET_EXPORT_H
