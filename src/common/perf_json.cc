#include "common/perf_json.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace eyecod {

namespace {

/** Minimal scanner for the {"s": {"m": num}} schema PerfJson writes. */
struct Scanner
{
    const std::string &text;
    size_t pos = 0;
    bool ok = true;

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    accept(char c)
    {
        skipSpace();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    void
    expect(char c)
    {
        if (!accept(c))
            ok = false;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (ok && pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c == '\\' && pos < text.size()) {
                const char esc = text[pos++];
                switch (esc) {
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  default:  c = esc; break;
                }
            }
            out.push_back(c);
        }
        expect('"');
        return out;
    }

    double
    parseNumber()
    {
        skipSpace();
        const char *start = text.c_str() + pos;
        char *end = nullptr;
        const double v = std::strtod(start, &end);
        if (end == start) {
            ok = false;
            return 0.0;
        }
        pos += size_t(end - start);
        return v;
    }
};

/** Escape a string for JSON output. */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:   out.push_back(c); break;
        }
    }
    return out;
}

} // namespace

PerfJson
PerfJson::load(const std::string &path)
{
    PerfJson out;
    std::ifstream in(path);
    if (!in)
        return out;
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    Scanner s{text};
    s.expect('{');
    if (!s.accept('}')) {
        do {
            const std::string section = s.parseString();
            s.expect(':');
            s.expect('{');
            if (!s.accept('}')) {
                do {
                    const std::string metric = s.parseString();
                    s.expect(':');
                    const double value = s.parseNumber();
                    if (s.ok)
                        out.sections_[section][metric] = value;
                } while (s.ok && s.accept(','));
                s.expect('}');
            }
        } while (s.ok && s.accept(','));
        s.expect('}');
    }
    if (!s.ok)
        return PerfJson(); // malformed: start fresh
    return out;
}

void
PerfJson::set(const std::string &section, const std::string &metric,
              double value)
{
    sections_[section][metric] = value;
}

bool
PerfJson::has(const std::string &section,
              const std::string &metric) const
{
    const auto it = sections_.find(section);
    return it != sections_.end() &&
           it->second.find(metric) != it->second.end();
}

double
PerfJson::get(const std::string &section, const std::string &metric,
              double fallback) const
{
    const auto it = sections_.find(section);
    if (it == sections_.end())
        return fallback;
    const auto jt = it->second.find(metric);
    return jt == it->second.end() ? fallback : jt->second;
}

std::string
PerfJson::serialize() const
{
    std::ostringstream out;
    out.precision(12);
    out << "{\n";
    bool first_section = true;
    for (const auto &sec : sections_) {
        if (!first_section)
            out << ",\n";
        first_section = false;
        out << "  \"" << escape(sec.first) << "\": {\n";
        bool first_metric = true;
        for (const auto &m : sec.second) {
            if (!first_metric)
                out << ",\n";
            first_metric = false;
            out << "    \"" << escape(m.first) << "\": " << m.second;
        }
        out << "\n  }";
    }
    out << "\n}\n";
    return out.str();
}

bool
PerfJson::write(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << serialize();
    return bool(out);
}

bool
PerfJson::update(const std::string &path, const std::string &section,
                 const std::string &metric, double value)
{
    PerfJson doc = load(path);
    doc.set(section, metric, value);
    return doc.write(path);
}

} // namespace eyecod
