/**
 * @file
 * Machine-readable performance emitter: a flat two-level JSON store
 * ({"section": {"metric": number}}) that bench binaries merge into so
 * the perf trajectory is trackable across PRs.
 *
 * Several binaries append to the same file (bench_runtime and
 * bench_micro_stages both write BENCH_runtime.json), so load() parses
 * the existing file and set() overwrites only the touched metrics.
 * The parser accepts exactly the schema this writer produces; a
 * missing or malformed file yields an empty store.
 */

#ifndef EYECOD_COMMON_PERF_JSON_H
#define EYECOD_COMMON_PERF_JSON_H

#include <map>
#include <string>

namespace eyecod {

/**
 * A mergeable {section -> {metric -> value}} JSON document.
 */
class PerfJson
{
  public:
    PerfJson() = default;

    /** Parse @p path; returns an empty store on missing/bad input. */
    static PerfJson load(const std::string &path);

    /** Set (or overwrite) one metric. */
    void set(const std::string &section, const std::string &metric,
             double value);

    /** True when the metric exists. */
    bool has(const std::string &section,
             const std::string &metric) const;

    /** Read a metric; @p fallback when absent. */
    double get(const std::string &section, const std::string &metric,
               double fallback = 0.0) const;

    /** Number of sections. */
    size_t numSections() const { return sections_.size(); }

    /** Serialize to a JSON string. */
    std::string serialize() const;

    /** Write to @p path; returns false on I/O failure. */
    bool write(const std::string &path) const;

    /**
     * Convenience: load @p path, apply @p section/@p metric/@p value,
     * write back. Returns false on I/O failure.
     */
    static bool update(const std::string &path,
                       const std::string &section,
                       const std::string &metric, double value);

  private:
    std::map<std::string, std::map<std::string, double>> sections_;
};

} // namespace eyecod

#endif // EYECOD_COMMON_PERF_JSON_H
