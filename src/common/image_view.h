/**
 * @file
 * Non-owning image views for the zero-copy frame spine.
 *
 * An ImageConstView / ImageView is a {data pointer, height, width,
 * row stride} quadruple over somebody else's float storage — an
 * owning common::Image, a BufferArena block, or a strided window
 * into either. Views are how ROI crops travel through the pipeline
 * without materializing: an in-bounds crop is just a pointer offset
 * plus the parent's stride.
 *
 * Ownership rules (DESIGN.md section 11 "Memory spine"):
 *  - a view never outlives the buffer it points into;
 *  - views into a BufferArena are valid only within the epoch that
 *    allocated them — BufferArena::resetEpoch() invalidates them
 *    (and poisons the memory under ASan so stale use traps);
 *  - views into an Image are invalidated by any reallocation of the
 *    image (resetShape to a larger size, assignment, destruction).
 *
 * Out-of-bounds subviews are a typed error (Result<...>), not a
 * clamped fallback: border-clamped crops need materialization and
 * callers must be explicit about paying for it (Image::croppedInto).
 */

#ifndef EYECOD_COMMON_IMAGE_VIEW_H
#define EYECOD_COMMON_IMAGE_VIEW_H

#include <algorithm>
#include <cstddef>

#include "common/image.h"
#include "common/status.h"

namespace eyecod {

/** Read-only strided view over float pixels (row-major). */
class ImageConstView
{
  public:
    /** An empty 0x0 view. */
    ImageConstView() = default;

    /**
     * View over raw storage. @p stride is in elements (>= width).
     */
    ImageConstView(const float *data, int height, int width,
                   ptrdiff_t stride)
        : data_(data), height_(height), width_(width), stride_(stride)
    {
    }

    /** Full view over an owning image (stride == width). */
    static ImageConstView
    of(const Image &img)
    {
        return ImageConstView(img.data().data(), img.height(),
                              img.width(), img.width());
    }

    /** View height in pixels. */
    int height() const { return height_; }
    /** View width in pixels. */
    int width() const { return width_; }
    /** Distance between row starts, in elements. */
    ptrdiff_t stride() const { return stride_; }
    /** Pointer to the first pixel (row 0, column 0). */
    const float *data() const { return data_; }
    /** True for a default-constructed / zero-area view. */
    bool empty() const { return height_ <= 0 || width_ <= 0; }
    /** True when rows are contiguous (stride == width). */
    bool contiguous() const { return stride_ == width_; }

    /** Pixel access (no bounds check). */
    float
    at(int y, int x) const
    {
        return data_[ptrdiff_t(y) * stride_ + x];
    }

    /** Pixel access with border clamping to the view's bounds. */
    float
    atClamped(int y, int x) const
    {
        y = std::clamp(y, 0, height_ - 1);
        x = std::clamp(x, 0, width_ - 1);
        return at(y, x);
    }

    /**
     * True when @p r (non-empty) lies fully inside this view — the
     * exact precondition of subview(). Allocation-free; hot paths
     * that expect out-of-bounds rectangles in steady state test this
     * first instead of paying for subview()'s error Status (whose
     * formatted message is a heap allocation).
     */
    bool
    contains(const Rect &r) const
    {
        return r.width > 0 && r.height > 0 && r.x >= 0 && r.y >= 0 &&
               r.x + r.width <= width_ && r.y + r.height <= height_;
    }

    /**
     * Strided sub-window. The rectangle must lie fully inside the
     * view; a rect that pokes outside returns InvalidArgument (use
     * Image::croppedInto for border-clamped materialization).
     */
    Result<ImageConstView> subview(const Rect &r) const;

  private:
    const float *data_ = nullptr;
    int height_ = 0;
    int width_ = 0;
    ptrdiff_t stride_ = 0;
};

/** Mutable strided view over float pixels (row-major). */
class ImageView
{
  public:
    /** An empty 0x0 view. */
    ImageView() = default;

    /**
     * View over raw storage. @p stride is in elements (>= width).
     */
    ImageView(float *data, int height, int width, ptrdiff_t stride)
        : data_(data), height_(height), width_(width), stride_(stride)
    {
    }

    /** Full mutable view over an owning image (stride == width). */
    static ImageView
    of(Image &img)
    {
        return ImageView(img.data().data(), img.height(), img.width(),
                         img.width());
    }

    /** View height in pixels. */
    int height() const { return height_; }
    /** View width in pixels. */
    int width() const { return width_; }
    /** Distance between row starts, in elements. */
    ptrdiff_t stride() const { return stride_; }
    /** Pointer to the first pixel (row 0, column 0). */
    float *data() const { return data_; }
    /** True for a default-constructed / zero-area view. */
    bool empty() const { return height_ <= 0 || width_ <= 0; }
    /** True when rows are contiguous (stride == width). */
    bool contiguous() const { return stride_ == width_; }

    /** Mutable pixel access (no bounds check). */
    float &
    at(int y, int x) const
    {
        return data_[ptrdiff_t(y) * stride_ + x];
    }

    /** Pixel access with border clamping to the view's bounds. */
    float
    atClamped(int y, int x) const
    {
        y = std::clamp(y, 0, height_ - 1);
        x = std::clamp(x, 0, width_ - 1);
        return at(y, x);
    }

    /** Read-only alias of this view. */
    operator ImageConstView() const
    {
        return ImageConstView(data_, height_, width_, stride_);
    }

    /** Read-only alias of this view (explicit spelling). */
    ImageConstView
    asConst() const
    {
        return ImageConstView(data_, height_, width_, stride_);
    }

    /** True when @p r lies fully inside this view (see
     *  ImageConstView::contains). */
    bool
    contains(const Rect &r) const
    {
        return r.width > 0 && r.height > 0 && r.x >= 0 && r.y >= 0 &&
               r.x + r.width <= width_ && r.y + r.height <= height_;
    }

    /**
     * Strided mutable sub-window; same bounds contract as
     * ImageConstView::subview.
     */
    Result<ImageView> subview(const Rect &r) const;

    /** Set every pixel to @p value. */
    void fill(float value) const;

    /**
     * Copy pixels from @p src (shapes must match; panics otherwise —
     * shape agreement is the caller's contract, like Image::at).
     */
    void copyFrom(ImageConstView src) const;

  private:
    float *data_ = nullptr;
    int height_ = 0;
    int width_ = 0;
    ptrdiff_t stride_ = 0;
};

/**
 * Bilinear resize from a (possibly strided) view into an owning
 * image. Reuses @p out's storage when the target shape matches its
 * current capacity; bitwise-identical to Image::resized on a full
 * view. Same-size resizes degrade to an exact pixel copy (which is
 * what the bilinear kernel produces at scale 1, just cheaper).
 */
void resizeBilinearInto(ImageConstView src, int new_height,
                        int new_width, Image *out);

/**
 * Materialize a border-clamped crop of @p src into @p out (reusing
 * storage). Bitwise-identical to Image::cropped.
 */
void cropClampedInto(ImageConstView src, const Rect &r, Image *out);

/**
 * Zero-copy crop of an owning image: a strided view when @p r is
 * fully inside, InvalidArgument when it pokes outside (callers fall
 * back to Image::croppedInto for clamped-border materialization).
 */
inline Result<ImageConstView>
croppedView(const Image &img, const Rect &r)
{
    return ImageConstView::of(img).subview(r);
}

} // namespace eyecod

#endif // EYECOD_COMMON_IMAGE_VIEW_H
