/**
 * @file
 * Pooled, aligned per-pipeline buffer arena with epoch-based reuse.
 *
 * A BufferArena owns a small set of 64-byte-aligned float blocks and
 * hands out bump-allocated spans from them. resetEpoch() — called
 * once per frame at the top of the pipeline — recycles every block
 * in place: no memory is returned to the heap, so after a short
 * warm-up the arena serves every frame without touching the
 * allocator. This is the same liveness-recycling idea the NN
 * runtime's ExecutionPlan arena uses, extended to whole-frame
 * lifetime instead of per-layer lifetime.
 *
 * Epoch contract: a span (or any ImageView built over it) is valid
 * only until the next resetEpoch(). Under AddressSanitizer the arena
 * poisons all recycled memory on reset, so a stale view kept across
 * an epoch traps immediately in the ASan CI job instead of silently
 * reading a reused frame.
 *
 * Alignment: every span starts on a 64-byte boundary (cache line /
 * widest vector unit), which is what ROADMAP item 5's SIMD fast path
 * needs from its input buffers.
 */

#ifndef EYECOD_COMMON_BUFFER_ARENA_H
#define EYECOD_COMMON_BUFFER_ARENA_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/image_view.h"

namespace eyecod {

/** Pooled bump allocator for per-frame float scratch. */
class BufferArena
{
  public:
    /** Allocation statistics, cumulative over the arena's lifetime. */
    struct Stats
    {
        size_t heap_blocks = 0;     ///< Blocks fetched from the heap.
        size_t heap_bytes = 0;      ///< Total bytes of those blocks.
        size_t peak_epoch_bytes = 0; ///< Max bytes live in one epoch.
        uint64_t epochs = 0;         ///< resetEpoch() calls so far.
    };

    BufferArena() = default;
    ~BufferArena();

    BufferArena(const BufferArena &) = delete;
    BufferArena &operator=(const BufferArena &) = delete;

    /**
     * A 64-byte-aligned span of @p count floats, valid until the next
     * resetEpoch(). Contents are unspecified (recycled memory).
     */
    float *alloc(size_t count);

    /**
     * A height x width image view over arena storage (contiguous,
     * stride == width), valid until the next resetEpoch().
     */
    ImageView allocImage(int height, int width);

    /**
     * Start a new epoch: every span handed out so far is recycled in
     * place. Under ASan the recycled memory is poisoned until
     * re-allocated, so stale views trap.
     */
    void resetEpoch();

    /** Bytes handed out in the current epoch. */
    size_t epochBytes() const { return epoch_bytes_; }

    /** Lifetime statistics. */
    const Stats &stats() const { return stats_; }

  private:
    struct Block
    {
        float *data = nullptr;
        size_t capacity = 0; ///< Floats.
        size_t used = 0;     ///< Floats bump-allocated this epoch.
    };

    /** Floats in the smallest block we bother allocating. */
    static constexpr size_t kMinBlockFloats = 16 * 1024;
    /** Span alignment in floats (64 bytes). */
    static constexpr size_t kAlignFloats = 16;

    std::vector<Block> blocks_;
    size_t epoch_bytes_ = 0;
    Stats stats_;
};

} // namespace eyecod

#endif // EYECOD_COMMON_BUFFER_ARENA_H
