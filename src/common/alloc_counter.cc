#include "common/alloc_counter.h"

namespace eyecod {
namespace alloc_hooks_detail {

// Trivial type + constant initialization: safe to touch from inside
// operator new even during early process / thread start-up.
thread_local ThreadCounters g_counters = {0, 0, 0};

bool g_hooks_installed = false;

} // namespace alloc_hooks_detail
} // namespace eyecod
