/**
 * @file
 * Dense double-precision matrix with the linear algebra the FlatCam
 * optical model needs: products, transposes, norms, and a one-sided
 * Jacobi singular value decomposition used by the separable Tikhonov
 * reconstruction.
 */

#ifndef EYECOD_COMMON_MATRIX_H
#define EYECOD_COMMON_MATRIX_H

#include <cstddef>
#include <vector>

namespace eyecod {

/**
 * A dense row-major matrix of doubles.
 */
class Matrix
{
  public:
    /** An empty 0x0 matrix. */
    Matrix() = default;

    /** A rows x cols matrix filled with @p fill. */
    Matrix(size_t rows, size_t cols, double fill = 0.0);

    /** Number of rows. */
    size_t rows() const { return rows_; }
    /** Number of columns. */
    size_t cols() const { return cols_; }
    /** Total number of elements. */
    size_t size() const { return data_.size(); }

    /** Mutable element access. */
    double &operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
    /** Const element access. */
    double
    operator()(size_t r, size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Raw storage (row-major). */
    const std::vector<double> &data() const { return data_; }
    /** Raw storage (row-major, mutable). */
    std::vector<double> &data() { return data_; }

    /** The identity matrix of order n. */
    static Matrix identity(size_t n);

    /**
     * Reshape in place to rows x cols of zeros, reusing the existing
     * allocation whenever the new element count fits the current
     * capacity. Leaves the matrix in the same state as a fresh
     * Matrix(rows, cols).
     */
    void resetShape(size_t rows, size_t cols);

    /** Matrix product this * other. */
    Matrix multiply(const Matrix &other) const;

    /**
     * Matrix product this * other written into @p out, reusing
     * @p out's buffer (zero allocations in steady state).
     * Bitwise-identical to multiply(). @p out must not alias either
     * operand.
     */
    void multiplyInto(const Matrix &other, Matrix *out) const;

    /** Transpose. */
    Matrix transposed() const;

    /**
     * Transpose into @p out, reusing @p out's buffer.
     * Bitwise-identical to transposed(). @p out must not alias this.
     */
    void transposedInto(Matrix *out) const;

    /** Element-wise sum; shapes must match. */
    Matrix add(const Matrix &other) const;

    /** Element-wise difference; shapes must match. */
    Matrix sub(const Matrix &other) const;

    /** All elements multiplied by s. */
    Matrix scaled(double s) const;

    /** Frobenius norm. */
    double frobeniusNorm() const;

    /** Largest absolute element. */
    double maxAbs() const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<double> data_;
};

/**
 * Thin singular value decomposition A = U * diag(S) * V^T.
 *
 * U is m x k, S holds k = min(m, n) non-negative singular values in
 * descending order, and V is n x k with orthonormal columns.
 */
struct Svd
{
    Matrix u;              ///< Left singular vectors (m x k).
    std::vector<double> s; ///< Singular values, descending.
    Matrix v;              ///< Right singular vectors (n x k).
};

/**
 * Solve A * X = B for X where A is symmetric positive definite,
 * via Cholesky factorization. Used by the ridge-regression gaze
 * estimator (normal equations).
 *
 * @param a SPD matrix (n x n); not modified.
 * @param b right-hand side (n x m).
 * @return X (n x m).
 */
Matrix solveSpd(const Matrix &a, const Matrix &b);

/**
 * Compute the thin SVD of @p a via one-sided Jacobi rotations.
 *
 * Intended for the moderate sizes of FlatCam transfer matrices
 * (hundreds of rows/columns); accuracy is ~1e-10 relative.
 *
 * @param a input matrix (m x n with m >= n preferred; handled
 *          internally otherwise).
 * @param max_sweeps upper bound on Jacobi sweeps before giving up.
 */
Svd computeSvd(const Matrix &a, int max_sweeps = 60);

} // namespace eyecod

#endif // EYECOD_COMMON_MATRIX_H
