/**
 * @file
 * Single-channel float image container plus the geometric primitives
 * the eye tracking pipeline needs: bilinear resize, cropping with
 * clamped borders, normalization, and drawing helpers used by the
 * synthetic eye renderer.
 */

#ifndef EYECOD_COMMON_IMAGE_H
#define EYECOD_COMMON_IMAGE_H

#include <cstddef>
#include <vector>

namespace eyecod {

/** An axis-aligned integer rectangle (pixel units). */
struct Rect
{
    int x = 0;      ///< Left edge (inclusive).
    int y = 0;      ///< Top edge (inclusive).
    int width = 0;  ///< Width in pixels.
    int height = 0; ///< Height in pixels.

    /** Centre x coordinate. */
    double cx() const { return x + width / 2.0; }
    /** Centre y coordinate. */
    double cy() const { return y + height / 2.0; }
    /** Area in pixels. */
    long area() const { return long(width) * long(height); }
};

/**
 * A grayscale image with float pixels, row-major, nominally in [0, 1].
 */
class Image
{
  public:
    /** An empty 0x0 image. */
    Image() = default;

    /** A height x width image filled with @p fill. */
    Image(int height, int width, float fill = 0.0f);

    /** Image height in pixels. */
    int height() const { return height_; }
    /** Image width in pixels. */
    int width() const { return width_; }
    /** Total pixel count. */
    size_t size() const { return data_.size(); }

    /** Mutable pixel access (no bounds check). */
    float &at(int y, int x) { return data_[size_t(y) * width_ + x]; }
    /** Const pixel access (no bounds check). */
    float at(int y, int x) const { return data_[size_t(y) * width_ + x]; }

    /** Pixel access with border clamping. */
    float atClamped(int y, int x) const;

    /** Raw pixel storage (row-major). */
    std::vector<float> &data() { return data_; }
    /** Raw pixel storage (row-major, const). */
    const std::vector<float> &data() const { return data_; }

    /**
     * Reshape in place, reusing the existing allocation whenever the
     * new pixel count fits the current capacity. Pixel contents are
     * unspecified afterwards; callers overwrite every pixel. This is
     * the capacity-reuse primitive behind every *Into API.
     */
    void resetShape(int height, int width);

    /** Bilinear resize to the given shape. */
    Image resized(int new_height, int new_width) const;

    /**
     * Bilinear resize into @p out, reusing @p out's buffer when the
     * target shape matches its capacity (zero allocations in steady
     * state). Bitwise-identical to resized(). @p out must not alias
     * this image.
     */
    void resizedInto(int new_height, int new_width, Image *out) const;

    /**
     * Crop the given rectangle; samples outside the image are filled by
     * clamped-border replication so ROI crops near edges stay valid.
     */
    Image cropped(const Rect &r) const;

    /**
     * Crop into @p out, reusing @p out's buffer (zero allocations in
     * steady state). Bitwise-identical to cropped(). @p out must not
     * alias this image.
     */
    void croppedInto(const Rect &r, Image *out) const;

    /** Clamp all pixels into [lo, hi]. */
    void clamp(float lo = 0.0f, float hi = 1.0f);

    /** Mean pixel value. */
    float mean() const;

    /** Min / max pixel values. */
    float minValue() const;
    float maxValue() const;

    /** Rescale pixels linearly so min -> 0 and max -> 1. */
    void normalize();

    /** Fill a solid disk (used by the synthetic renderer). */
    void fillDisk(double cy, double cx, double radius, float value);

    /**
     * Fill a solid axis-aligned ellipse.
     *
     * @param cy,cx centre. @param ry,rx radii. @param value pixel value.
     */
    void fillEllipse(double cy, double cx, double ry, double rx,
                     float value);

  private:
    int height_ = 0;
    int width_ = 0;
    std::vector<float> data_;
};

/** Mean squared error between two same-shaped images. */
double imageMse(const Image &a, const Image &b);

/** Peak signal-to-noise ratio in dB assuming a unit dynamic range. */
double imagePsnr(const Image &a, const Image &b);

/**
 * Zero-mean normalized cross-correlation between two same-shaped
 * images; 1.0 means identical up to affine intensity changes. Used by
 * the visual-privacy experiments to quantify how little a raw FlatCam
 * measurement resembles the scene.
 */
double imageNcc(const Image &a, const Image &b);

} // namespace eyecod

#endif // EYECOD_COMMON_IMAGE_H
