#include "common/buffer_arena.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

#if defined(__SANITIZE_ADDRESS__)
#define EYECOD_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define EYECOD_ASAN 1
#endif
#endif

#ifdef EYECOD_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace eyecod {

namespace {

/** Poison / unpoison a span for ASan; no-ops without ASan. */
void
poisonSpan(const float *ptr, size_t count)
{
#ifdef EYECOD_ASAN
    ASAN_POISON_MEMORY_REGION(ptr, count * sizeof(float));
#else
    (void)ptr;
    (void)count;
#endif
}

void
unpoisonSpan(const float *ptr, size_t count)
{
#ifdef EYECOD_ASAN
    ASAN_UNPOISON_MEMORY_REGION(ptr, count * sizeof(float));
#else
    (void)ptr;
    (void)count;
#endif
}

} // namespace

BufferArena::~BufferArena()
{
    for (Block &b : blocks_) {
        unpoisonSpan(b.data, b.capacity);
        std::free(b.data);
    }
}

float *
BufferArena::alloc(size_t count)
{
    // Round every span up to a 64-byte boundary so the next span is
    // aligned too.
    const size_t need =
        (count + kAlignFloats - 1) / kAlignFloats * kAlignFloats;

    for (Block &b : blocks_) {
        if (b.capacity - b.used >= need) {
            float *ptr = b.data + b.used;
            b.used += need;
            unpoisonSpan(ptr, need);
            epoch_bytes_ += need * sizeof(float);
            stats_.peak_epoch_bytes =
                std::max(stats_.peak_epoch_bytes, epoch_bytes_);
            return ptr;
        }
    }

    // No block has room: fetch a fresh one from the heap. This only
    // happens while the arena warms up (or when a frame's footprint
    // grows past anything seen before).
    const size_t cap = std::max(need, kMinBlockFloats);
    void *raw = std::aligned_alloc(64, cap * sizeof(float));
    eyecod_assert(raw != nullptr, "arena block allocation failed");
    Block b;
    b.data = static_cast<float *>(raw);
    b.capacity = cap;
    b.used = need;
    ++stats_.heap_blocks;
    stats_.heap_bytes += cap * sizeof(float);
    poisonSpan(b.data + need, cap - need);
    blocks_.push_back(b);
    epoch_bytes_ += need * sizeof(float);
    stats_.peak_epoch_bytes =
        std::max(stats_.peak_epoch_bytes, epoch_bytes_);
    return blocks_.back().data;
}

ImageView
BufferArena::allocImage(int height, int width)
{
    eyecod_assert(height > 0 && width > 0,
                  "arena image needs a positive shape");
    float *ptr = alloc(size_t(height) * size_t(width));
    return ImageView(ptr, height, width, width);
}

void
BufferArena::resetEpoch()
{
    for (Block &b : blocks_) {
        poisonSpan(b.data, b.capacity);
        b.used = 0;
    }
    epoch_bytes_ = 0;
    ++stats_.epochs;
}

} // namespace eyecod
