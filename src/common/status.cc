#include "common/status.h"

#include <cstdarg>
#include <cstdio>

#include "common/logging.h"

namespace eyecod {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok: return "ok";
      case ErrorCode::InvalidArgument: return "invalid-argument";
      case ErrorCode::ShapeMismatch: return "shape-mismatch";
      case ErrorCode::FrameDropped: return "frame-dropped";
      case ErrorCode::SensorFault: return "sensor-fault";
      case ErrorCode::NonFinite: return "non-finite";
      case ErrorCode::SegmentationFailed: return "segmentation-failed";
      case ErrorCode::RoiRejected: return "roi-rejected";
      case ErrorCode::NotTrained: return "not-trained";
      case ErrorCode::Internal: return "internal";
      case ErrorCode::HwLaneFault: return "hw-lane-fault";
      case ErrorCode::EccUncorrectable: return "ecc-uncorrectable";
      case ErrorCode::ScheduleTimeout: return "schedule-timeout";
      case ErrorCode::Overloaded: return "overloaded";
      case ErrorCode::CorruptSnapshot: return "corrupt-snapshot";
      case ErrorCode::VersionMismatch: return "version-mismatch";
    }
    return "unknown";
}

Status
Status::error(ErrorCode code, const char *fmt, ...)
{
    eyecod_assert(code != ErrorCode::Ok,
                  "Status::error with ErrorCode::Ok");
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return Status(code, std::string(buf));
}

std::string
Status::toString() const
{
    if (isOk())
        return "ok";
    return std::string(errorCodeName(code_)) + ": " + message_;
}

void
resultBadAccessPanic(const Status &status)
{
    panic("Result::value() on failed result (%s)",
          status.toString().c_str());
}

void
resultOkStatusPanic()
{
    panic("Result constructed from an OK status");
}

} // namespace eyecod
