#include "common/matrix.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace eyecod {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix
Matrix::identity(size_t n)
{
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

void
Matrix::resetShape(size_t rows, size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
    std::fill(data_.begin(), data_.end(), 0.0);
}

Matrix
Matrix::multiply(const Matrix &other) const
{
    Matrix out;
    multiplyInto(other, &out);
    return out;
}

void
Matrix::multiplyInto(const Matrix &other, Matrix *out) const
{
    eyecod_assert(cols_ == other.rows_,
                  "matrix product shape mismatch %zux%zu * %zux%zu",
                  rows_, cols_, other.rows_, other.cols_);
    out->resetShape(rows_, other.cols_);
    // ikj loop order keeps the inner loop contiguous in both the
    // right operand and the output. The zero-skip relies on
    // resetShape zero-filling the output, exactly like a fresh
    // Matrix.
    for (size_t i = 0; i < rows_; ++i) {
        for (size_t k = 0; k < cols_; ++k) {
            const double aik = data_[i * cols_ + k];
            if (aik == 0.0)
                continue;
            const double *brow = &other.data_[k * other.cols_];
            double *orow = &out->data_[i * other.cols_];
            for (size_t j = 0; j < other.cols_; ++j)
                orow[j] += aik * brow[j];
        }
    }
}

Matrix
Matrix::transposed() const
{
    Matrix out;
    transposedInto(&out);
    return out;
}

void
Matrix::transposedInto(Matrix *out) const
{
    out->resetShape(cols_, rows_);
    for (size_t i = 0; i < rows_; ++i)
        for (size_t j = 0; j < cols_; ++j)
            (*out)(j, i) = (*this)(i, j);
}

Matrix
Matrix::add(const Matrix &other) const
{
    eyecod_assert(rows_ == other.rows_ && cols_ == other.cols_,
                  "matrix add shape mismatch");
    Matrix out(rows_, cols_);
    for (size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] + other.data_[i];
    return out;
}

Matrix
Matrix::sub(const Matrix &other) const
{
    eyecod_assert(rows_ == other.rows_ && cols_ == other.cols_,
                  "matrix sub shape mismatch");
    Matrix out(rows_, cols_);
    for (size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] - other.data_[i];
    return out;
}

Matrix
Matrix::scaled(double s) const
{
    Matrix out(rows_, cols_);
    for (size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] * s;
    return out;
}

double
Matrix::frobeniusNorm() const
{
    double acc = 0.0;
    for (double v : data_)
        acc += v * v;
    return std::sqrt(acc);
}

double
Matrix::maxAbs() const
{
    double best = 0.0;
    for (double v : data_)
        best = std::max(best, std::fabs(v));
    return best;
}

Matrix
solveSpd(const Matrix &a, const Matrix &b)
{
    eyecod_assert(a.rows() == a.cols(), "solveSpd needs square A");
    eyecod_assert(a.rows() == b.rows(), "solveSpd shape mismatch");
    const size_t n = a.rows();
    const size_t m = b.cols();

    // Cholesky: A = L L^T (lower triangular L).
    Matrix l(n, n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j <= i; ++j) {
            double acc = a(i, j);
            for (size_t k = 0; k < j; ++k)
                acc -= l(i, k) * l(j, k);
            if (i == j) {
                if (acc <= 0.0)
                    panic("solveSpd: matrix not positive definite "
                          "(pivot %g at %zu)", acc, i);
                l(i, i) = std::sqrt(acc);
            } else {
                l(i, j) = acc / l(j, j);
            }
        }
    }

    // Forward substitution L Y = B, then back substitution L^T X = Y.
    Matrix x = b;
    for (size_t c = 0; c < m; ++c) {
        for (size_t i = 0; i < n; ++i) {
            double acc = x(i, c);
            for (size_t k = 0; k < i; ++k)
                acc -= l(i, k) * x(k, c);
            x(i, c) = acc / l(i, i);
        }
        for (size_t ii = n; ii-- > 0;) {
            double acc = x(ii, c);
            for (size_t k = ii + 1; k < n; ++k)
                acc -= l(k, ii) * x(k, c);
            x(ii, c) = acc / l(ii, ii);
        }
    }
    return x;
}

namespace {

/**
 * One-sided Jacobi SVD on a matrix with rows >= cols. Columns of the
 * working copy converge to U * diag(S); V accumulates the rotations.
 */
Svd
jacobiSvdTall(const Matrix &a, int max_sweeps)
{
    const size_t m = a.rows();
    const size_t n = a.cols();
    Matrix w = a;                  // working copy, becomes U * S
    Matrix v = Matrix::identity(n);

    const double eps = 1e-14;
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        bool rotated = false;
        for (size_t p = 0; p + 1 < n; ++p) {
            for (size_t q = p + 1; q < n; ++q) {
                double app = 0.0, aqq = 0.0, apq = 0.0;
                for (size_t i = 0; i < m; ++i) {
                    const double wp = w(i, p), wq = w(i, q);
                    app += wp * wp;
                    aqq += wq * wq;
                    apq += wp * wq;
                }
                if (std::fabs(apq) <= eps * std::sqrt(app * aqq))
                    continue;
                rotated = true;
                const double tau = (aqq - app) / (2.0 * apq);
                const double t = (tau >= 0.0)
                    ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                    : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
                const double c = 1.0 / std::sqrt(1.0 + t * t);
                const double s = c * t;
                for (size_t i = 0; i < m; ++i) {
                    const double wp = w(i, p), wq = w(i, q);
                    w(i, p) = c * wp - s * wq;
                    w(i, q) = s * wp + c * wq;
                }
                for (size_t i = 0; i < n; ++i) {
                    const double vp = v(i, p), vq = v(i, q);
                    v(i, p) = c * vp - s * vq;
                    v(i, q) = s * vp + c * vq;
                }
            }
        }
        if (!rotated)
            break;
    }

    // Extract singular values and normalize the columns of w into U.
    std::vector<double> sv(n, 0.0);
    for (size_t j = 0; j < n; ++j) {
        double norm = 0.0;
        for (size_t i = 0; i < m; ++i)
            norm += w(i, j) * w(i, j);
        sv[j] = std::sqrt(norm);
    }

    // Sort descending by singular value.
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](size_t x, size_t y) { return sv[x] > sv[y]; });

    Svd out;
    out.u = Matrix(m, n);
    out.v = Matrix(n, n);
    out.s.resize(n);
    for (size_t jj = 0; jj < n; ++jj) {
        const size_t j = order[jj];
        out.s[jj] = sv[j];
        const double inv = sv[j] > 0.0 ? 1.0 / sv[j] : 0.0;
        for (size_t i = 0; i < m; ++i)
            out.u(i, jj) = w(i, j) * inv;
        for (size_t i = 0; i < n; ++i)
            out.v(i, jj) = v(i, j);
    }
    return out;
}

} // namespace

Svd
computeSvd(const Matrix &a, int max_sweeps)
{
    eyecod_assert(a.rows() > 0 && a.cols() > 0, "SVD of empty matrix");
    if (a.rows() >= a.cols())
        return jacobiSvdTall(a, max_sweeps);
    // Wide matrix: decompose the transpose and swap the factors.
    Svd t = jacobiSvdTall(a.transposed(), max_sweeps);
    Svd out;
    out.u = std::move(t.v);
    out.v = std::move(t.u);
    out.s = std::move(t.s);
    return out;
}

} // namespace eyecod
