/**
 * @file
 * Status and error reporting helpers in the gem5 tradition.
 *
 * panic()  — an internal invariant of the simulator is broken (a bug in
 *            EyeCoD itself); aborts so a debugger/core dump can be used.
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments); exits with code 1.
 * warn()   — something may not behave as well as it should, but the run
 *            can continue.
 * inform() — plain status messages.
 */

#ifndef EYECOD_COMMON_LOGGING_H
#define EYECOD_COMMON_LOGGING_H

#include <cstdarg>
#include <string>
#include <vector>

namespace eyecod {

/** Verbosity levels for message filtering. */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2, Debug = 3 };

/** Set the global verbosity; messages above the level are dropped. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Report an internal invariant violation and abort.
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and exit(1).
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a condition that might indicate a problem but is survivable.
 *
 * warn() is rate-limited per call site (keyed by the format string):
 * the first `first_n` occurrences of a key are emitted verbatim, then
 * only every `period`-th occurrence, annotated with the number of
 * messages suppressed since the last emission. This keeps per-frame
 * fault warnings from flooding stderr at streaming rates while still
 * surfacing that the condition persists.
 */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Rate-limit policy applied by warn() to each distinct key. */
struct WarnRateLimit
{
    long first_n = 10;  ///< Emit this many leading occurrences.
    long period = 1000; ///< Then emit every period-th with a summary.
};

/** Replace the global warn() rate-limit policy. */
void setWarnRateLimit(const WarnRateLimit &limit);

/**
 * Rate-limited warn with an explicit key, for messages whose format
 * string is not a stable identity (e.g. composed at runtime).
 */
void warnLimited(const char *key, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Total occurrences recorded for a warn key (emitted + suppressed). */
long warnOccurrences(const char *key);

/** Occurrences of a warn key that were suppressed (never printed). */
long warnSuppressed(const char *key);

/** One warn key's lifetime occurrence/suppression counts. */
struct WarnKeyCount
{
    std::string key;      ///< Rate-limit key (format string or
                          ///  explicit warnLimited key).
    long occurrences = 0; ///< Total times the key was hit.
    long suppressed = 0;  ///< Hits that were never printed.
};

/**
 * Snapshot of every warn key's counters, sorted by key (the backing
 * map is ordered), so health reports can surface how much warning
 * traffic the rate limiter swallowed.
 */
std::vector<WarnKeyCount> warnCounters();

/** Drop all warn rate-limiter state (counts and keys). */
void resetWarnRateLimiter();

/** Report a normal status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report a verbose debugging message. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Assert an invariant with a formatted message; calls panic() on
 * failure. Enabled in all build types (unlike assert()).
 */
#define eyecod_assert(cond, fmt, ...)                                     \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::eyecod::panic("assertion '%s' failed at %s:%d: " fmt,       \
                            #cond, __FILE__, __LINE__, ##__VA_ARGS__);    \
        }                                                                 \
    } while (0)

} // namespace eyecod

#endif // EYECOD_COMMON_LOGGING_H
