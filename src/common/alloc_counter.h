/**
 * @file
 * Heap allocation counters for the zero-steady-state-alloc proof.
 *
 * AllocCounter exposes per-thread counts of global operator new
 * calls. The counters are bumped by operator new / delete overrides
 * that live in alloc_hooks.cc, which is linked ONLY into the
 * allocation-audited benchmarks (bench_serving, bench_runtime) — the
 * test binaries keep the stock allocator so sanitizer jobs are
 * undisturbed. In binaries without the hooks, hooksInstalled() is
 * false and every counter reads zero; callers must gate their
 * accounting (and any acceptance gate) on hooksInstalled().
 *
 * Counters are thread-local: a Session::serveFrame call runs
 * entirely on one pool thread, so the delta of threadAllocs() across
 * the call is exactly that frame's allocation count.
 */

#ifndef EYECOD_COMMON_ALLOC_COUNTER_H
#define EYECOD_COMMON_ALLOC_COUNTER_H

#include <cstdint>

namespace eyecod {

namespace alloc_hooks_detail {

/** Per-thread tallies, bumped by the operator new/delete overrides. */
struct ThreadCounters
{
    uint64_t allocs;
    uint64_t frees;
    uint64_t bytes;
};

/** This thread's tallies (trivially-initialized thread_local). */
extern thread_local ThreadCounters g_counters;

/** Set (via static initializer) when alloc_hooks.cc is linked in. */
extern bool g_hooks_installed;

} // namespace alloc_hooks_detail

/** Read-side API over the per-thread allocation tallies. */
class AllocCounter
{
  public:
    /** True when the operator new/delete overrides are linked in. */
    static bool
    hooksInstalled()
    {
        return alloc_hooks_detail::g_hooks_installed;
    }

    /** Global operator new calls made by this thread so far. */
    static uint64_t
    threadAllocs()
    {
        return alloc_hooks_detail::g_counters.allocs;
    }

    /** Global operator delete calls made by this thread so far. */
    static uint64_t
    threadFrees()
    {
        return alloc_hooks_detail::g_counters.frees;
    }

    /** Bytes requested from operator new by this thread so far. */
    static uint64_t
    threadBytes()
    {
        return alloc_hooks_detail::g_counters.bytes;
    }
};

/**
 * Anchor for the hook translation unit: benchmarks call this once so
 * the linker pulls alloc_hooks.o (and with it the operator new /
 * delete overrides) out of the static library. Returns
 * hooksInstalled(). Declared here, defined in alloc_hooks.cc.
 */
bool allocHooksForceLink();

} // namespace eyecod

#endif // EYECOD_COMMON_ALLOC_COUNTER_H
