#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/thread_annotations.h"

namespace eyecod {

namespace {
LogLevel g_level = LogLevel::Warn;

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

/** Per-key occurrence counts behind warn()'s rate limiting. */
struct WarnEntry
{
    long occurrences = 0;
    long suppressed = 0;
    long suppressed_since_emit = 0;
};

Mutex g_warn_mutex;
WarnRateLimit g_warn_limit EYECOD_GUARDED_BY(g_warn_mutex);
std::map<std::string, WarnEntry> g_warn_entries
    EYECOD_GUARDED_BY(g_warn_mutex);

/**
 * Record one occurrence of @p key; returns the number of messages
 * suppressed since the last emission in @p summary when this
 * occurrence should be printed, or -1 when it must be suppressed.
 */
long
warnAdmit(const char *key)
{
    MutexLock lock(g_warn_mutex);
    WarnEntry &e = g_warn_entries[key];
    ++e.occurrences;
    const bool in_head = g_warn_limit.first_n < 0 ||
                         e.occurrences <= g_warn_limit.first_n;
    const bool periodic =
        g_warn_limit.period > 0 &&
        e.occurrences % g_warn_limit.period == 0;
    if (in_head || periodic) {
        const long summary = e.suppressed_since_emit;
        e.suppressed_since_emit = 0;
        return summary;
    }
    ++e.suppressed;
    ++e.suppressed_since_emit;
    return -1;
}

void
vwarnLimited(const char *key, const char *fmt, va_list ap)
{
    if (g_level < LogLevel::Warn)
        return;
    const long summary = warnAdmit(key);
    if (summary < 0)
        return;
    std::fprintf(stderr, "warn: ");
    std::vfprintf(stderr, fmt, ap);
    if (summary > 0)
        std::fprintf(stderr, " (%ld similar suppressed)", summary);
    std::fprintf(stderr, "\n");
}
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    // The format string is the rate-limit key: each call site gets
    // its own budget.
    vwarnLimited(fmt, fmt, ap);
    va_end(ap);
}

void
setWarnRateLimit(const WarnRateLimit &limit)
{
    MutexLock lock(g_warn_mutex);
    g_warn_limit = limit;
}

void
warnLimited(const char *key, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vwarnLimited(key, fmt, ap);
    va_end(ap);
}

long
warnOccurrences(const char *key)
{
    MutexLock lock(g_warn_mutex);
    const auto it = g_warn_entries.find(key);
    return it == g_warn_entries.end() ? 0 : it->second.occurrences;
}

long
warnSuppressed(const char *key)
{
    MutexLock lock(g_warn_mutex);
    const auto it = g_warn_entries.find(key);
    return it == g_warn_entries.end() ? 0 : it->second.suppressed;
}

std::vector<WarnKeyCount>
warnCounters()
{
    MutexLock lock(g_warn_mutex);
    std::vector<WarnKeyCount> out;
    out.reserve(g_warn_entries.size());
    // std::map iteration is key-ordered, so the snapshot order is
    // deterministic across runs.
    for (const auto &[key, e] : g_warn_entries)
        out.push_back(WarnKeyCount{key, e.occurrences, e.suppressed});
    return out;
}

void
resetWarnRateLimiter()
{
    MutexLock lock(g_warn_mutex);
    g_warn_entries.clear();
}

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

void
debugLog(const char *fmt, ...)
{
    if (g_level < LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("debug", fmt, ap);
    va_end(ap);
}

} // namespace eyecod
