#include "common/image_view.h"

#include <cmath>

#include "common/logging.h"

namespace eyecod {

Result<ImageConstView>
ImageConstView::subview(const Rect &r) const
{
    if (!contains(r))
        return Status::error(
            ErrorCode::InvalidArgument,
            "subview rect [%d,%d %dx%d] outside view %dx%d", r.x, r.y,
            r.width, r.height, width_, height_);
    return ImageConstView(data_ + ptrdiff_t(r.y) * stride_ + r.x,
                          r.height, r.width, stride_);
}

Result<ImageView>
ImageView::subview(const Rect &r) const
{
    if (!contains(r))
        return Status::error(
            ErrorCode::InvalidArgument,
            "subview rect [%d,%d %dx%d] outside view %dx%d", r.x, r.y,
            r.width, r.height, width_, height_);
    return ImageView(data_ + ptrdiff_t(r.y) * stride_ + r.x, r.height,
                     r.width, stride_);
}

void
ImageView::fill(float value) const
{
    for (int y = 0; y < height_; ++y) {
        float *row = data_ + ptrdiff_t(y) * stride_;
        for (int x = 0; x < width_; ++x)
            row[x] = value;
    }
}

void
ImageView::copyFrom(ImageConstView src) const
{
    eyecod_assert(src.height() == height_ && src.width() == width_,
                  "copyFrom shape mismatch (%dx%d <- %dx%d)", height_,
                  width_, src.height(), src.width());
    for (int y = 0; y < height_; ++y) {
        float *dst_row = data_ + ptrdiff_t(y) * stride_;
        const float *src_row = src.data() + ptrdiff_t(y) * src.stride();
        for (int x = 0; x < width_; ++x)
            dst_row[x] = src_row[x];
    }
}

void
resizeBilinearInto(ImageConstView src, int new_height, int new_width,
                   Image *out)
{
    eyecod_assert(src.height() > 0 && src.width() > 0,
                  "resize of empty image");
    out->resetShape(new_height, new_width);
    if (new_height == src.height() && new_width == src.width()) {
        // Scale-1 bilinear has zero fractional weights everywhere, so
        // the kernel reduces to an exact pixel copy (for the finite
        // pixels every pipeline stage guarantees).
        ImageView::of(*out).copyFrom(src);
        return;
    }
    const double sy = double(src.height()) / new_height;
    const double sx = double(src.width()) / new_width;
    for (int y = 0; y < new_height; ++y) {
        const double fy = (y + 0.5) * sy - 0.5;
        const int y0 = int(std::floor(fy));
        const double wy = fy - y0;
        for (int x = 0; x < new_width; ++x) {
            const double fx = (x + 0.5) * sx - 0.5;
            const int x0 = int(std::floor(fx));
            const double wx = fx - x0;
            const double v =
                (1 - wy) * ((1 - wx) * src.atClamped(y0, x0) +
                            wx * src.atClamped(y0, x0 + 1)) +
                wy * ((1 - wx) * src.atClamped(y0 + 1, x0) +
                      wx * src.atClamped(y0 + 1, x0 + 1));
            out->at(y, x) = float(v);
        }
    }
}

void
cropClampedInto(ImageConstView src, const Rect &r, Image *out)
{
    eyecod_assert(r.width > 0 && r.height > 0, "empty crop rect");
    out->resetShape(r.height, r.width);
    for (int y = 0; y < r.height; ++y)
        for (int x = 0; x < r.width; ++x)
            out->at(y, x) = src.atClamped(r.y + y, r.x + x);
}

} // namespace eyecod
