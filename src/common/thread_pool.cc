#include "common/thread_pool.h"

#include <algorithm>

namespace eyecod {

thread_local bool ThreadPool::in_pool_body_ = false;

ThreadPool::ThreadPool(int threads)
{
    if (threads <= 0)
        threads = int(std::thread::hardware_concurrency());
    if (threads < 1)
        threads = 1;
    workers_.reserve(size_t(threads - 1));
    for (int i = 0; i < threads - 1; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown(false);
}

void
ThreadPool::shutdown(bool drain)
{
    std::vector<std::thread> workers;
    {
        UniqueMutexLock lock(mutex_);
        if (shutdown_)
            return;
        if (!drain)
            quit_.store(true, std::memory_order_relaxed);
        else
            // Let the in-flight parallelFor (if any) fully retire
            // before the workers go away. The predicate runs with
            // mutex_ held by wait() itself.
            done_.wait(lock.native(), [&]() EYECOD_NO_THREAD_SAFETY_ANALYSIS {
                return job_ == nullptr;
            });
        stop_ = true;
        shutdown_ = true;
        // Swapping the vector out makes threadCount() report 1 and
        // future parallelFor calls run inline.
        workers.swap(workers_);
    }
    wake_.notify_all();
    for (std::thread &t : workers)
        t.join();
}

bool
ThreadPool::isShutdown() const
{
    MutexLock lock(mutex_);
    return shutdown_;
}

void
ThreadPool::runChunks(Job &job, bool is_worker)
{
    for (;;) {
        // A worker bails out between chunks on a non-drain shutdown;
        // the thread inside parallelFor never does, so every chunk
        // still executes exactly once.
        if (is_worker && quit_.load(std::memory_order_relaxed))
            return;
        const long chunk = job.next_chunk.fetch_add(1);
        if (chunk >= job.num_chunks)
            return;
        const long begin = chunk * job.grain;
        const long end = std::min(job.n, begin + job.grain);
        try {
            in_pool_body_ = true;
            (*job.body)(begin, end);
            in_pool_body_ = false;
        } catch (...) {
            in_pool_body_ = false;
            MutexLock lock(mutex_);
            if (!job.error)
                job.error = std::current_exception();
        }
        MutexLock lock(mutex_);
        if (++job.chunks_done == job.num_chunks)
            done_.notify_all();
    }
}

void
ThreadPool::workerLoop()
{
    uint64_t seen_generation = 0;
    UniqueMutexLock lock(mutex_);
    for (;;) {
        // The predicate runs with mutex_ held by wait() itself.
        wake_.wait(lock.native(), [&]() EYECOD_NO_THREAD_SAFETY_ANALYSIS {
            return stop_ || (job_ && generation_ != seen_generation);
        });
        if (stop_)
            return;
        seen_generation = generation_;
        Job *job = job_;
        ++job->active;
        lock.unlock();
        runChunks(*job, /*is_worker=*/true);
        lock.lock();
        if (--job->active == 0)
            done_.notify_all();
    }
}

void
ThreadPool::parallelFor(long n, long grain,
                        const std::function<void(long, long)> &body)
{
    if (n <= 0)
        return;
    if (grain < 1)
        grain = 1;
    const long num_chunks = (n + grain - 1) / grain;
    // Run inline when there is nothing to distribute, no workers
    // exist, or this is a nested call from inside a pool body.
    if (num_chunks == 1 || workers_.empty() || in_pool_body_) {
        const bool was_in_body = in_pool_body_;
        for (long begin = 0; begin < n; begin += grain)
            body(begin, std::min(n, begin + grain));
        in_pool_body_ = was_in_body;
        return;
    }

    Job job;
    job.body = &body;
    job.n = n;
    job.grain = grain;
    job.num_chunks = num_chunks;
    {
        MutexLock lock(mutex_);
        job_ = &job;
        ++generation_;
        job.active = 1; // the calling thread
    }
    wake_.notify_all();

    runChunks(job, /*is_worker=*/false);

    std::exception_ptr error;
    {
        UniqueMutexLock lock(mutex_);
        --job.active;
        // The job is stack-allocated: wait until every worker that
        // entered it has left before letting it go out of scope.
        done_.wait(lock.native(), [&] {
            return job.active == 0 && job.chunks_done == job.num_chunks;
        });
        job_ = nullptr;
        error = job.error;
    }
    // A draining shutdown() waits for job_ == nullptr on done_.
    done_.notify_all();
    if (error)
        std::rethrow_exception(error);
}

void
ThreadPool::parallelFor(long n,
                        const std::function<void(long, long)> &body)
{
    const long threads = threadCount();
    parallelFor(n, (n + threads - 1) / threads, body);
}

} // namespace eyecod
