#include "common/image.h"

#include <algorithm>
#include <cmath>

#include "common/image_view.h"
#include "common/logging.h"

namespace eyecod {

Image::Image(int height, int width, float fill)
    : height_(height), width_(width),
      data_(size_t(height) * size_t(width), fill)
{
    eyecod_assert(height >= 0 && width >= 0, "negative image shape");
}

float
Image::atClamped(int y, int x) const
{
    y = std::clamp(y, 0, height_ - 1);
    x = std::clamp(x, 0, width_ - 1);
    return at(y, x);
}

void
Image::resetShape(int height, int width)
{
    eyecod_assert(height >= 0 && width >= 0, "negative image shape");
    height_ = height;
    width_ = width;
    data_.resize(size_t(height) * size_t(width));
}

Image
Image::resized(int new_height, int new_width) const
{
    Image out;
    resizedInto(new_height, new_width, &out);
    return out;
}

void
Image::resizedInto(int new_height, int new_width, Image *out) const
{
    resizeBilinearInto(ImageConstView::of(*this), new_height,
                       new_width, out);
}

Image
Image::cropped(const Rect &r) const
{
    Image out;
    croppedInto(r, &out);
    return out;
}

void
Image::croppedInto(const Rect &r, Image *out) const
{
    cropClampedInto(ImageConstView::of(*this), r, out);
}

void
Image::clamp(float lo, float hi)
{
    for (float &v : data_)
        v = std::clamp(v, lo, hi);
}

float
Image::mean() const
{
    if (data_.empty())
        return 0.0f;
    double acc = 0.0;
    for (float v : data_)
        acc += v;
    return float(acc / double(data_.size()));
}

float
Image::minValue() const
{
    return *std::min_element(data_.begin(), data_.end());
}

float
Image::maxValue() const
{
    return *std::max_element(data_.begin(), data_.end());
}

void
Image::normalize()
{
    if (data_.empty())
        return;
    const float lo = minValue();
    const float hi = maxValue();
    const float span = hi - lo;
    if (span <= 0.0f) {
        std::fill(data_.begin(), data_.end(), 0.0f);
        return;
    }
    for (float &v : data_)
        v = (v - lo) / span;
}

void
Image::fillDisk(double cy, double cx, double radius, float value)
{
    fillEllipse(cy, cx, radius, radius, value);
}

void
Image::fillEllipse(double cy, double cx, double ry, double rx,
                   float value)
{
    if (ry <= 0.0 || rx <= 0.0)
        return;
    const int y_lo = std::max(0, int(std::floor(cy - ry)));
    const int y_hi = std::min(height_ - 1, int(std::ceil(cy + ry)));
    for (int y = y_lo; y <= y_hi; ++y) {
        const double dy = (y - cy) / ry;
        const double rem = 1.0 - dy * dy;
        if (rem < 0.0)
            continue;
        const double half = rx * std::sqrt(rem);
        const int x_lo = std::max(0, int(std::floor(cx - half)));
        const int x_hi = std::min(width_ - 1, int(std::ceil(cx + half)));
        for (int x = x_lo; x <= x_hi; ++x) {
            const double dx = (x - cx) / rx;
            if (dy * dy + dx * dx <= 1.0)
                at(y, x) = value;
        }
    }
}

double
imageMse(const Image &a, const Image &b)
{
    eyecod_assert(a.height() == b.height() && a.width() == b.width(),
                  "MSE shape mismatch");
    if (a.size() == 0)
        return 0.0;
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double d = double(a.data()[i]) - double(b.data()[i]);
        acc += d * d;
    }
    return acc / double(a.size());
}

double
imagePsnr(const Image &a, const Image &b)
{
    const double mse = imageMse(a, b);
    if (mse <= 0.0)
        return 99.0;
    return 10.0 * std::log10(1.0 / mse);
}

double
imageNcc(const Image &a, const Image &b)
{
    eyecod_assert(a.height() == b.height() && a.width() == b.width(),
                  "NCC shape mismatch");
    const double ma = a.mean();
    const double mb = b.mean();
    double num = 0.0, da = 0.0, db = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double xa = a.data()[i] - ma;
        const double xb = b.data()[i] - mb;
        num += xa * xb;
        da += xa * xa;
        db += xb * xb;
    }
    if (da <= 0.0 || db <= 0.0)
        return 0.0;
    return num / std::sqrt(da * db);
}

} // namespace eyecod
