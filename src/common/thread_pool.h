/**
 * @file
 * A persistent worker-thread pool with a deterministic parallel-for.
 *
 * Work is split into fixed, caller-visible index ranges and every
 * output index is processed by exactly one chunk, so any computation
 * whose chunks touch disjoint outputs produces bitwise-identical
 * results regardless of the number of worker threads. This is the
 * substrate of the threaded NN backend (nn::ThreadedBackend), which
 * relies on that property for its thread-count-independence guarantee.
 */

#ifndef EYECOD_COMMON_THREAD_POOL_H
#define EYECOD_COMMON_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace eyecod {

/**
 * Fixed-size pool of worker threads executing chunked index ranges.
 *
 * The calling thread participates in every parallelFor, so a pool
 * constructed with N threads applies N-way parallelism using N - 1
 * workers; a pool of one thread runs everything inline and spawns no
 * workers at all.
 */
class ThreadPool
{
  public:
    /**
     * @param threads total concurrency including the caller; 0 picks
     *        std::thread::hardware_concurrency().
     */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency (workers + the calling thread). */
    int threadCount() const { return int(workers_.size()) + 1; }

    /**
     * Stop the worker threads for good — the graceful-stop entry the
     * long-lived serving engine uses instead of destroying the pool
     * mid-traffic.
     *
     * With @p drain true, blocks until any in-flight parallelFor has
     * fully completed before retiring the workers; with false the
     * workers abandon chunks they have not yet claimed (the thread
     * inside parallelFor still claims and runs them, so every chunk
     * executes exactly once and no work is lost either way — drain
     * only controls whether shutdown waits for that completion).
     *
     * After shutdown the pool remains usable: parallelFor runs every
     * chunk inline on the calling thread and threadCount() is 1.
     * Idempotent; must not be called from inside a parallelFor body.
     */
    void shutdown(bool drain = true);

    /** True once shutdown() has retired the workers. */
    bool isShutdown() const;

    /**
     * Execute @p body over [0, n) split into chunks of at most
     * @p grain indices. Chunk boundaries depend only on n and grain —
     * never on the thread count — and chunks are disjoint, so writes
     * to per-index outputs are race-free and deterministic.
     *
     * Blocks until every chunk has run. The first exception thrown by
     * a chunk is rethrown on the calling thread (remaining chunks
     * still run). Reentrant calls from inside a body execute inline.
     */
    void parallelFor(long n, long grain,
                     const std::function<void(long, long)> &body);

    /** parallelFor with an automatic grain of ceil(n / threads). */
    void parallelFor(long n,
                     const std::function<void(long, long)> &body);

  private:
    struct Job
    {
        const std::function<void(long, long)> *body = nullptr;
        long n = 0;
        long grain = 1;
        long num_chunks = 0;
        std::atomic<long> next_chunk{0};
        long chunks_done = 0;     ///< Guarded by pool mutex_.
        int active = 0;           ///< Threads inside the job (mutex_).
        std::exception_ptr error; ///< First failure (mutex_).
    };

    void workerLoop();
    void runChunks(Job &job, bool is_worker);

    std::vector<std::thread> workers_;
    mutable Mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    /** Current job. */
    Job *job_ EYECOD_GUARDED_BY(mutex_) = nullptr;
    /** Bumped per job so workers spot fresh work. */
    uint64_t generation_ EYECOD_GUARDED_BY(mutex_) = 0;
    /** Workers exit. */
    bool stop_ EYECOD_GUARDED_BY(mutex_) = false;
    /** shutdown() completed. */
    bool shutdown_ EYECOD_GUARDED_BY(mutex_) = false;
    /** Non-drain shutdown: workers stop claiming new chunks. */
    std::atomic<bool> quit_{false};
    static thread_local bool in_pool_body_;
};

} // namespace eyecod

#endif // EYECOD_COMMON_THREAD_POOL_H
