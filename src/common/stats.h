/**
 * @file
 * Lightweight statistics helpers shared by the simulator and the
 * benchmark harnesses: running scalar statistics and formatted table
 * printing for the paper-style result rows.
 */

#ifndef EYECOD_COMMON_STATS_H
#define EYECOD_COMMON_STATS_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace eyecod {

/**
 * Online mean / variance / min / max accumulator (Welford).
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / double(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    /** Number of samples seen. */
    uint64_t count() const { return n_; }
    /** Sample mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Population variance (0 when fewer than 2 samples). */
    double variance() const { return n_ > 1 ? m2_ / double(n_) : 0.0; }
    /** Population standard deviation. */
    double stddev() const { return std::sqrt(variance()); }
    /** Smallest sample (+inf when empty). */
    double min() const { return min_; }
    /** Largest sample (-inf when empty). */
    double max() const { return max_; }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-column text table used by the bench binaries to print
 * paper-style rows.
 */
class TextTable
{
  public:
    /** Create with column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Render the table with aligned columns. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given number of decimals. */
std::string formatDouble(double v, int decimals = 2);

/** Format a count with SI-style suffixes (K/M/G/T). */
std::string formatSi(double v, int decimals = 2);

} // namespace eyecod

#endif // EYECOD_COMMON_STATS_H
