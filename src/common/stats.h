/**
 * @file
 * Lightweight statistics helpers shared by the simulator and the
 * benchmark harnesses: running scalar statistics and formatted table
 * printing for the paper-style result rows.
 */

#ifndef EYECOD_COMMON_STATS_H
#define EYECOD_COMMON_STATS_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/snapshot.h"

namespace eyecod {

/**
 * Online mean / variance / min / max accumulator (Welford).
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / double(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    /** Number of samples seen. */
    uint64_t count() const { return n_; }
    /** Sample mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Population variance (0 when fewer than 2 samples). */
    double variance() const { return n_ > 1 ? m2_ / double(n_) : 0.0; }
    /** Population standard deviation. */
    double stddev() const { return std::sqrt(variance()); }
    /** Smallest sample (+inf when empty). */
    double min() const { return min_; }
    /** Largest sample (-inf when empty). */
    double max() const { return max_; }

    /** Field-wise encode (bit-exact, including the Welford m2). */
    void saveSnapshot(snap::SnapshotWriter &w) const;

    /** Field-wise decode; typed CorruptSnapshot on bad input. */
    Status restoreSnapshot(snap::SnapshotReader &r);

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Exact percentile of a sample set with linear interpolation between
 * order statistics (the numpy "linear" convention): q = 0 is the
 * minimum, q = 1 the maximum, q = 0.5 the median. Takes the values by
 * copy (they are sorted internally). Returns 0 on an empty input.
 */
double percentile(std::vector<double> values, double q);

/**
 * Fixed-memory streaming quantile estimator over log-spaced buckets.
 *
 * Samples are counted into geometrically growing buckets between
 * @p lo and @p hi (values outside are clamped into the edge buckets;
 * the exact observed min/max are tracked separately and bound every
 * quantile answer). quantile() interpolates within the holding
 * bucket, so the relative error is bounded by the bucket width —
 * with the default 32 buckets per decade, under ~4%.
 *
 * The serving engine uses this for p50/p95/p99 frame-latency metrics:
 * O(buckets) memory regardless of stream length, deterministic
 * (integer counts, no sampling), and mergeable across sessions.
 */
class StreamingHistogram
{
  public:
    /**
     * @param lo lower edge of the bucketed range (> 0).
     * @param hi upper edge of the bucketed range (> lo).
     * @param buckets_per_decade resolution (>= 1).
     */
    StreamingHistogram(double lo, double hi,
                       int buckets_per_decade = 32);

    /** Count one sample. Non-finite samples are ignored. */
    void add(double x);

    /** Samples counted. */
    uint64_t count() const { return n_; }

    /** Exact smallest sample (+inf when empty). */
    double min() const { return min_; }
    /** Exact largest sample (-inf when empty). */
    double max() const { return max_; }

    /**
     * Estimated @p q quantile in [0, 1]; 0 when empty. Clamped to
     * the exact observed [min, max].
     */
    double quantile(double q) const;

    /** Shorthands for the serving latency metrics. */
    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    /**
     * Fold @p other into this histogram. Both must share (lo, hi,
     * buckets_per_decade); panics otherwise.
     */
    void merge(const StreamingHistogram &other);

    /** Field-wise encode (bucket counts + exact min/max). */
    void saveSnapshot(snap::SnapshotWriter &w) const;

    /**
     * Field-wise decode into this histogram. The snapshot's (lo, hi,
     * buckets_per_decade) must match this instance's construction
     * parameters — a mismatch is a CorruptSnapshot error, since the
     * bucket geometry is part of the metric contract.
     */
    Status restoreSnapshot(snap::SnapshotReader &r);

  private:
    /** Bucket index holding @p x (clamped to the edge buckets). */
    int bucketOf(double x) const;
    /** Lower value edge of bucket @p b. */
    double bucketLo(int b) const;

    double lo_ = 1.0;
    double hi_ = 10.0;
    int per_decade_ = 32;
    // detlint:allow(R12) derived from lo_ in the ctor; restore validates geometry.
    double log_lo_ = 0.0;
    // detlint:allow(R12) derived from per_decade_ in the ctor; geometry-checked.
    double inv_log_step_ = 1.0; ///< Buckets per unit log10.
    std::vector<uint64_t> buckets_;
    uint64_t n_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-column text table used by the bench binaries to print
 * paper-style rows.
 */
class TextTable
{
  public:
    /** Create with column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Render the table with aligned columns. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given number of decimals. */
std::string formatDouble(double v, int decimals = 2);

/** Format a count with SI-style suffixes (K/M/G/T). */
std::string formatSi(double v, int decimals = 2);

} // namespace eyecod

#endif // EYECOD_COMMON_STATS_H
