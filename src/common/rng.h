/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component in the repository (mask generation, sensor
 * noise, synthetic eye sampling, weight initialization) draws from an
 * explicitly seeded Rng so that tests and benchmark tables are
 * reproducible bit-for-bit across runs.
 */

#ifndef EYECOD_COMMON_RNG_H
#define EYECOD_COMMON_RNG_H

#include <cstdint>
#include <random>

namespace eyecod {

/**
 * A seeded pseudo-random source wrapping std::mt19937_64 with the
 * handful of distributions the project needs.
 */
class Rng
{
  public:
    /** Construct with an explicit seed. */
    explicit Rng(uint64_t seed = 0x5eed) : engine_(seed) {}

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo = 0.0, double hi = 1.0)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
    }

    /** Gaussian with the given mean and standard deviation. */
    double
    gaussian(double mean = 0.0, double stddev = 1.0)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /** Bernoulli draw with probability p of true. */
    bool
    bernoulli(double p)
    {
        return std::bernoulli_distribution(p)(engine_);
    }

    /** Poisson draw with the given mean (used for shot noise). */
    int64_t
    poisson(double mean)
    {
        return std::poisson_distribution<int64_t>(mean)(engine_);
    }

    /** Access the underlying engine (e.g. for std::shuffle). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace eyecod

#endif // EYECOD_COMMON_RNG_H
