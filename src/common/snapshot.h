/**
 * @file
 * Versioned field-wise binary snapshot codec.
 *
 * The serving engine checkpoints its whole live state graph (engine,
 * sessions, queues, pipelines, sensor RNG streams) so a crashed
 * scheduler can restore and resume **bitwise identically** — and so
 * session migration (ROADMAP item 4) can serialize a session over the
 * wire. Two rules govern the format:
 *
 *  1. **Field-wise only.** Every value is encoded one field at a time
 *     through the typed put/get calls below. Whole-struct memcpy /
 *     reinterpret_cast serialization is banned (detlint R9
 *     raw-memcpy-serialize): struct layout, padding, and endianness
 *     are not part of the format.
 *  2. **Never trust input.** Decoding returns typed
 *     `Result<T>` / `Status` values — every read bounds-checks the
 *     remaining byte count, every container count is validated
 *     against a caller-supplied maximum, and every component is
 *     fenced by a tag word. A truncated or bit-flipped snapshot
 *     yields `ErrorCode::CorruptSnapshot` (or `VersionMismatch` for a
 *     foreign version), never a crash or UB.
 *
 * Layout: a snapshot is a flat byte string. Scalars are fixed-width
 * little-endian; floating point travels as its IEEE-754 bit pattern
 * (bit_cast, not memcpy). Strings and byte blobs are u32
 * length-prefixed. Components write `u32 tag` first so a reader that
 * drifts out of sync fails fast at the next fence.
 */

#ifndef EYECOD_COMMON_SNAPSHOT_H
#define EYECOD_COMMON_SNAPSHOT_H

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/image.h"
#include "common/status.h"

namespace eyecod {
namespace snap {

/** Format magic ("EYCS") leading every top-level snapshot. */
constexpr uint32_t kSnapshotMagic = 0x45594353u;

/** Current format version. Bump on any layout change. */
constexpr uint32_t kSnapshotVersion = 1;

/**
 * Append-only snapshot encoder. Infallible: the writer owns its
 * buffer and grows it as needed (snapshots are taken off the per-
 * frame hot path, at tick boundaries).
 */
class SnapshotWriter
{
  public:
    /** Append one byte. */
    void
    u8(uint8_t v)
    {
        bytes_.push_back(v); // detlint:allow(R8) snapshot buffer, bounded by state-graph size
    }

    /** Append a bool as one byte (0/1). */
    void b(bool v) { u8(v ? 1 : 0); }

    /** Append a u32, little-endian. */
    void
    u32(uint32_t v)
    {
        u8(uint8_t(v & 0xffu));
        u8(uint8_t((v >> 8) & 0xffu));
        u8(uint8_t((v >> 16) & 0xffu));
        u8(uint8_t((v >> 24) & 0xffu));
    }

    /** Append a u64, little-endian. */
    void
    u64(uint64_t v)
    {
        u32(uint32_t(v & 0xffffffffu));
        u32(uint32_t(v >> 32));
    }

    /** Append a signed 64-bit value (two's-complement bit pattern). */
    void i64(long long v) { u64(uint64_t(v)); }

    /** Append a signed 32-bit value. */
    void i32(int v) { u32(uint32_t(v)); }

    /** Append a double as its IEEE-754 bit pattern. */
    void f64(double v) { u64(std::bit_cast<uint64_t>(v)); }

    /** Append a float as its IEEE-754 bit pattern. */
    void f32(float v) { u32(std::bit_cast<uint32_t>(v)); }

    /** Append a u32 length prefix + raw bytes. */
    void str(const std::string &s);

    /** Append a component fence tag (reader must match it). */
    void tag(uint32_t t) { u32(t); }

    /** The encoded bytes so far. */
    const std::vector<uint8_t> &bytes() const { return bytes_; }

    /** Move the encoded bytes out. */
    std::vector<uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<uint8_t> bytes_;
};

/**
 * Bounds-checked snapshot decoder over a borrowed byte range. Every
 * accessor either returns a value or a typed CorruptSnapshot error;
 * after the first failure the reader stays failed (reads past the
 * end keep erroring, they never wrap or fault).
 */
class SnapshotReader
{
  public:
    SnapshotReader(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {
    }

    explicit SnapshotReader(const std::vector<uint8_t> &bytes)
        : SnapshotReader(bytes.data(), bytes.size())
    {
    }

    /** Read one byte. */
    Result<uint8_t> u8();

    /** Read a bool; bytes other than 0/1 are corrupt. */
    Result<bool> b();

    /** Read a little-endian u32. */
    Result<uint32_t> u32();

    /** Read a little-endian u64. */
    Result<uint64_t> u64();

    /** Read a signed 64-bit value. */
    Result<long long> i64();

    /** Read a signed 32-bit value. */
    Result<int> i32();

    /** Read a double from its bit pattern. */
    Result<double> f64();

    /** Read a float from its bit pattern. */
    Result<float> f32();

    /**
     * Read a length-prefixed string; lengths above @p max_len (or
     * past the end of the buffer) are corrupt.
     */
    Result<std::string> str(size_t max_len);

    /**
     * Read a container count and validate it against @p max — a
     * count a hostile snapshot could inflate must never size an
     * allocation unchecked.
     */
    Result<uint64_t> count(uint64_t max);

    /** Read a fence tag and require it to equal @p want. */
    Status expectTag(uint32_t want);

    /** Bytes not yet consumed. */
    size_t remaining() const { return size_ - pos_; }

    /** True when every byte has been consumed. */
    bool atEnd() const { return pos_ == size_; }

    /** OK only when the whole buffer was consumed exactly. */
    Status expectEnd() const;

  private:
    /**
     * Build a CorruptSnapshot error and latch the reader failed:
     * every later read also errors, so a decode routine may issue a
     * batch of reads and check only the last one before touching any
     * value.
     */
    Status corrupt(const char *what) const;

    const uint8_t *data_ = nullptr;
    size_t size_ = 0;
    size_t pos_ = 0;
    mutable bool failed_ = false;
};

/** Write the top-level header (magic + version). */
void writeHeader(SnapshotWriter &w);

/**
 * Check the top-level header: CorruptSnapshot on a bad magic,
 * VersionMismatch on a well-formed header from another version.
 */
Status checkHeader(SnapshotReader &r);

/** FNV-1a 64-bit hash of a byte range. */
uint64_t fnv1a(const uint8_t *data, size_t size);

/**
 * Seal a top-level snapshot: append the FNV-1a checksum of every
 * byte written so far as the trailing u64. Any later truncation or
 * bit flip — header, payload, or the checksum itself — is detected
 * before a single payload field is decoded.
 */
void sealSnapshot(SnapshotWriter &w);

/**
 * Verify a sealed snapshot's trailing checksum. Returns the payload
 * byte count (the sealed size minus the checksum), or
 * CorruptSnapshot when the buffer is too short or the checksum does
 * not match.
 */
Result<size_t> checkSeal(const uint8_t *data, size_t size);

/** Encode a Rect field-wise (x, y, width, height). */
void writeRect(SnapshotWriter &w, const Rect &rect);

/** Decode a Rect. */
Result<Rect> readRect(SnapshotReader &r);

/** Encode an Image field-wise (extents + pixels). */
void writeImage(SnapshotWriter &w, const Image &img);

/**
 * Decode an Image into @p out (storage reused when the capacity
 * fits). Extents are validated against @p max_extent per axis before
 * any allocation is sized from snapshot input.
 */
Status readImage(SnapshotReader &r, Image *out, int max_extent = 1 << 14);

} // namespace snap
} // namespace eyecod

#endif // EYECOD_COMMON_SNAPSHOT_H
