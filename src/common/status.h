/**
 * @file
 * Typed recoverable errors for the serving path.
 *
 * The logging layer (panic/fatal) is for conditions that end the
 * process: internal invariant violations and unrecoverable user
 * configuration errors. Everything *input-dependent* — a corrupted
 * sensor frame, a mis-sized measurement, a segmentation that found no
 * eye, a NaN-poisoned tensor — must instead surface as a value the
 * caller can branch on, because a production tracker serving a
 * headset at 240 FPS cannot abort on the first bad frame.
 *
 * Status is a cheap (code, message) pair; Result<T> is the
 * expected-style carrier of either a value or a non-OK Status. No
 * exceptions are thrown on the hot path.
 */

#ifndef EYECOD_COMMON_STATUS_H
#define EYECOD_COMMON_STATUS_H

#include <optional>
#include <string>
#include <utility>

namespace eyecod {

/** Taxonomy of recoverable failures. */
enum class ErrorCode {
    Ok = 0,
    InvalidArgument,     ///< Caller passed a bad value.
    ShapeMismatch,       ///< Image/tensor extent differs from expected.
    FrameDropped,        ///< Sensor delivered no frame this tick.
    SensorFault,         ///< Frame delivered but known-corrupted.
    NonFinite,           ///< NaN/Inf detected in a numeric result.
    SegmentationFailed,  ///< Segmenter produced no usable eye regions.
    RoiRejected,         ///< Predicted ROI failed sanity gating.
    NotTrained,          ///< Inference requested before fitting.
    Internal,            ///< Unclassified recoverable failure.
    // --- Accelerator-side hardware faults ---
    HwLaneFault,         ///< MAC lane defect (stuck/dead) detected.
    EccUncorrectable,    ///< SRAM ECC detected an uncorrectable word.
    ScheduleTimeout,     ///< Schedule/stream exceeded its cycle budget.
    // --- Multi-session serving ---
    Overloaded,          ///< Admission rejected: fleet at capacity.
    // --- Snapshot / restore ---
    CorruptSnapshot,     ///< Snapshot bytes failed a bounds/tag check.
    VersionMismatch,     ///< Snapshot written by an incompatible version.
};

/** Human-readable name of an ErrorCode. */
const char *errorCodeName(ErrorCode code);

/**
 * A (code, message) error value. Default-constructed Status is OK.
 *
 * [[nodiscard]]: a dropped Status is a silently swallowed error;
 * every producer's return must be branched on (or cast to void under
 * a detlint allow comment when the drop is intentional).
 */
class [[nodiscard]] Status
{
  public:
    Status() = default;

    /** The OK status (no error). */
    static Status ok() { return Status(); }

    /** Build a non-OK status with a printf-style message. */
    static Status error(ErrorCode code, const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    /** True when no error is carried. */
    bool isOk() const { return code_ == ErrorCode::Ok; }

    /** The error code (Ok when isOk()). */
    ErrorCode code() const { return code_; }

    /** The message (empty when isOk()). */
    const std::string &message() const { return message_; }

    /** "ok" or "<code-name>: <message>". */
    std::string toString() const;

  private:
    Status(ErrorCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    ErrorCode code_ = ErrorCode::Ok;
    std::string message_;
};

/**
 * Either a T or a non-OK Status. The value accessors panic on a
 * failed Result, so callers must branch on ok() first (or use
 * valueOr for a fallback).
 */
template <typename T>
class [[nodiscard]] Result
{
  public:
    /** Success. */
    Result(T value) : value_(std::move(value)) {}

    /** Failure; @p status must be non-OK. */
    Result(Status status) : status_(std::move(status))
    {
        if (status_.isOk())
            detail_failOkResult();
    }

    /** True when a value is carried. */
    bool ok() const { return value_.has_value(); }

    /** The status (OK when ok()). */
    const Status &status() const { return status_; }

    /** The value; panics when !ok(). */
    const T &
    value() const
    {
        if (!ok())
            detail_failBadAccess(status_);
        return *value_;
    }

    /** Mutable value; panics when !ok(). */
    T &
    value()
    {
        if (!ok())
            detail_failBadAccess(status_);
        return *value_;
    }

    /** Move the value out; panics when !ok(). */
    T &&
    take()
    {
        if (!ok())
            detail_failBadAccess(status_);
        return std::move(*value_);
    }

    /** The value, or @p fallback when failed. */
    T
    valueOr(T fallback) const
    {
        return ok() ? *value_ : std::move(fallback);
    }

  private:
    static void detail_failOkResult();
    [[noreturn]] static void detail_failBadAccess(const Status &s);

    std::optional<T> value_;
    Status status_;
};

/** Out-of-line panic helpers shared by all Result instantiations. */
[[noreturn]] void resultBadAccessPanic(const Status &status);
void resultOkStatusPanic();

template <typename T>
void
Result<T>::detail_failOkResult()
{
    resultOkStatusPanic();
}

template <typename T>
void
Result<T>::detail_failBadAccess(const Status &s)
{
    resultBadAccessPanic(s);
}

} // namespace eyecod

#endif // EYECOD_COMMON_STATUS_H
