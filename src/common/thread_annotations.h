/**
 * @file
 * Thread-safety annotations and capability-annotated mutex wrappers.
 *
 * The EYECOD_* macros expand to Clang's thread-safety-analysis
 * attributes when the compiler supports them (clang with
 * -Wthread-safety; enable via -DEYECOD_THREAD_SAFETY=ON) and to
 * nothing elsewhere, so annotated code builds identically under GCC.
 * The same annotations are consumed by detlint's R10 lock-discipline
 * rule, which gives a compiler-independent (if shallower) version of
 * the check on every build.
 *
 * libstdc++'s std::mutex / std::lock_guard are not capability-
 * annotated, so Clang's analysis cannot see through them. Mutex,
 * MutexLock, and UniqueMutexLock below are zero-cost wrappers over
 * the std types that carry the attributes; condition variables keep
 * working through UniqueMutexLock::native(). Guarded members are
 * declared as
 *
 *     Mutex mutex_;
 *     long depth_ EYECOD_GUARDED_BY(mutex_);
 *
 * and every access must sit inside a MutexLock / UniqueMutexLock
 * scope naming that mutex (or a method annotated
 * EYECOD_REQUIRES(mutex_)).
 */

#ifndef EYECOD_COMMON_THREAD_ANNOTATIONS_H
#define EYECOD_COMMON_THREAD_ANNOTATIONS_H

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define EYECOD_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef EYECOD_THREAD_ANNOTATION
#define EYECOD_THREAD_ANNOTATION(x) // no-op outside clang
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define EYECOD_CAPABILITY(name) EYECOD_THREAD_ANNOTATION(capability(name))

/** Marks an RAII type whose lifetime holds a capability. */
#define EYECOD_SCOPED_CAPABILITY EYECOD_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while @p mu is held. */
#define EYECOD_GUARDED_BY(mu) EYECOD_THREAD_ANNOTATION(guarded_by(mu))

/** Pointee guarded by @p mu (the pointer itself is free). */
#define EYECOD_PT_GUARDED_BY(mu) EYECOD_THREAD_ANNOTATION(pt_guarded_by(mu))

/** Function that must be called with the capability held. */
#define EYECOD_REQUIRES(...) \
    EYECOD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function that acquires the capability (and does not release it). */
#define EYECOD_ACQUIRE(...) \
    EYECOD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that releases a held capability. */
#define EYECOD_RELEASE(...) \
    EYECOD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that acquires the capability when it returns @p ret. */
#define EYECOD_TRY_ACQUIRE(...) \
    EYECOD_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function that must NOT be called with the capability held. */
#define EYECOD_EXCLUDES(...) \
    EYECOD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Escape hatch: skip analysis for one function (or lambda). */
#define EYECOD_NO_THREAD_SAFETY_ANALYSIS \
    EYECOD_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace eyecod {

/**
 * std::mutex with the capability attribute. Drop-in for the guarded
 * classes in this repo; native() exposes the underlying std::mutex
 * for APIs (condition variables) that need the real type.
 */
class EYECOD_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() EYECOD_ACQUIRE() { mu_.lock(); }
    void unlock() EYECOD_RELEASE() { mu_.unlock(); }
    bool try_lock() EYECOD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

    /** The wrapped std::mutex (condition_variable interop). */
    std::mutex &native() { return mu_; }

  private:
    std::mutex mu_;
};

/** std::lock_guard over Mutex, annotated as a scoped capability. */
class EYECOD_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) EYECOD_ACQUIRE(mu) : lock_(mu.native())
    {
    }
    ~MutexLock() EYECOD_RELEASE() = default;

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    std::lock_guard<std::mutex> lock_;
};

/**
 * std::unique_lock over Mutex, annotated as a scoped capability that
 * may be dropped and re-taken mid-scope. native() hands the
 * underlying unique_lock to std::condition_variable::wait.
 */
class EYECOD_SCOPED_CAPABILITY UniqueMutexLock
{
  public:
    explicit UniqueMutexLock(Mutex &mu) EYECOD_ACQUIRE(mu)
        : lock_(mu.native())
    {
    }
    ~UniqueMutexLock() EYECOD_RELEASE() = default;

    UniqueMutexLock(const UniqueMutexLock &) = delete;
    UniqueMutexLock &operator=(const UniqueMutexLock &) = delete;

    void lock() EYECOD_ACQUIRE() { lock_.lock(); }
    void unlock() EYECOD_RELEASE() { lock_.unlock(); }

    /** The wrapped unique_lock (condition_variable interop). The
     *  capability state is unchanged by the call itself; wait()
     *  releases and re-acquires, which nets out held-on-return. */
    std::unique_lock<std::mutex> &native() { return lock_; }

  private:
    std::unique_lock<std::mutex> lock_;
};

} // namespace eyecod

#endif // EYECOD_COMMON_THREAD_ANNOTATIONS_H
