#include "common/snapshot.h"

namespace eyecod {
namespace snap {

void
SnapshotWriter::str(const std::string &s)
{
    u32(uint32_t(s.size()));
    for (char c : s)
        u8(uint8_t(c));
}

Status
SnapshotReader::corrupt(const char *what) const
{
    failed_ = true;
    return Status::error(ErrorCode::CorruptSnapshot,
                         "snapshot corrupt at byte %zu/%zu: %s", pos_,
                         size_, what);
}

Result<uint8_t>
SnapshotReader::u8()
{
    if (failed_)
        return corrupt("reader already failed");
    if (pos_ >= size_)
        return corrupt("truncated u8");
    return data_[pos_++];
}

Result<bool>
SnapshotReader::b()
{
    auto v = u8();
    if (!v.ok())
        return v.status();
    if (v.value() > 1)
        return corrupt("bool byte not 0/1");
    return v.value() == 1;
}

Result<uint32_t>
SnapshotReader::u32()
{
    if (failed_)
        return corrupt("reader already failed");
    if (size_ - pos_ < 4)
        return corrupt("truncated u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= uint32_t(data_[pos_ + size_t(i)]) << (8 * i);
    pos_ += 4;
    return v;
}

Result<uint64_t>
SnapshotReader::u64()
{
    if (failed_)
        return corrupt("reader already failed");
    if (size_ - pos_ < 8)
        return corrupt("truncated u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= uint64_t(data_[pos_ + size_t(i)]) << (8 * i);
    pos_ += 8;
    return v;
}

Result<long long>
SnapshotReader::i64()
{
    auto v = u64();
    if (!v.ok())
        return v.status();
    return static_cast<long long>(v.value());
}

Result<int>
SnapshotReader::i32()
{
    auto v = u32();
    if (!v.ok())
        return v.status();
    return static_cast<int>(v.value());
}

Result<double>
SnapshotReader::f64()
{
    auto v = u64();
    if (!v.ok())
        return v.status();
    return std::bit_cast<double>(v.value());
}

Result<float>
SnapshotReader::f32()
{
    auto v = u32();
    if (!v.ok())
        return v.status();
    return std::bit_cast<float>(v.value());
}

Result<std::string>
SnapshotReader::str(size_t max_len)
{
    auto len = u32();
    if (!len.ok())
        return len.status();
    if (len.value() > max_len)
        return corrupt("string length above caller limit");
    if (size_ - pos_ < len.value())
        return corrupt("truncated string body");
    std::string out;
    out.reserve(len.value());
    for (uint32_t i = 0; i < len.value(); ++i)
        out.push_back(char(data_[pos_ + i]));
    pos_ += len.value();
    return out;
}

Result<uint64_t>
SnapshotReader::count(uint64_t max)
{
    auto v = u64();
    if (!v.ok())
        return v.status();
    if (v.value() > max)
        return corrupt("container count above limit");
    return v.value();
}

Status
SnapshotReader::expectTag(uint32_t want)
{
    auto got = u32();
    if (!got.ok())
        return got.status();
    if (got.value() != want) {
        failed_ = true;
        return Status::error(ErrorCode::CorruptSnapshot,
                             "snapshot fence mismatch: want 0x%08x got "
                             "0x%08x at byte %zu",
                             want, got.value(), pos_);
    }
    return Status::ok();
}

Status
SnapshotReader::expectEnd() const
{
    if (!atEnd())
        return Status::error(ErrorCode::CorruptSnapshot,
                             "snapshot has %zu trailing bytes",
                             remaining());
    return Status::ok();
}

void
writeHeader(SnapshotWriter &w)
{
    w.u32(kSnapshotMagic);
    w.u32(kSnapshotVersion);
}

Status
checkHeader(SnapshotReader &r)
{
    auto magic = r.u32();
    if (!magic.ok())
        return magic.status();
    if (magic.value() != kSnapshotMagic)
        return Status::error(ErrorCode::CorruptSnapshot,
                             "bad snapshot magic 0x%08x", magic.value());
    auto version = r.u32();
    if (!version.ok())
        return version.status();
    if (version.value() != kSnapshotVersion)
        return Status::error(ErrorCode::VersionMismatch,
                             "snapshot version %u, this build reads %u",
                             version.value(), kSnapshotVersion);
    return Status::ok();
}

uint64_t
fnv1a(const uint8_t *data, size_t size)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

void
sealSnapshot(SnapshotWriter &w)
{
    w.u64(fnv1a(w.bytes().data(), w.bytes().size()));
}

Result<size_t>
checkSeal(const uint8_t *data, size_t size)
{
    if (size < 8)
        return Status::error(ErrorCode::CorruptSnapshot,
                             "sealed snapshot too short (%zu bytes)",
                             size);
    const size_t payload = size - 8;
    uint64_t want = 0;
    for (int i = 0; i < 8; ++i)
        want |= uint64_t(data[payload + size_t(i)]) << (8 * i);
    const uint64_t got = fnv1a(data, payload);
    if (got != want)
        return Status::error(ErrorCode::CorruptSnapshot,
                             "snapshot checksum mismatch: stored "
                             "0x%016llx computed 0x%016llx",
                             (unsigned long long)want,
                             (unsigned long long)got);
    return payload;
}

void
writeRect(SnapshotWriter &w, const Rect &rect)
{
    w.i32(rect.x);
    w.i32(rect.y);
    w.i32(rect.width);
    w.i32(rect.height);
}

Result<Rect>
readRect(SnapshotReader &r)
{
    auto x = r.i32();
    auto y = r.i32();
    auto width = r.i32();
    auto height = r.i32();
    if (!height.ok())
        return height.status();
    Rect rect;
    rect.x = x.value();
    rect.y = y.value();
    rect.width = width.value();
    rect.height = height.value();
    return rect;
}

void
writeImage(SnapshotWriter &w, const Image &img)
{
    w.i32(img.height());
    w.i32(img.width());
    for (float px : img.data())
        w.f32(px);
}

Status
readImage(SnapshotReader &r, Image *out, int max_extent)
{
    auto height = r.i32();
    auto width = r.i32();
    if (!width.ok())
        return width.status();
    const int h = height.value();
    const int w = width.value();
    if (h < 0 || w < 0 || h > max_extent || w > max_extent)
        return Status::error(ErrorCode::CorruptSnapshot,
                             "image extent %dx%d outside [0, %d]", h, w,
                             max_extent);
    // Every pixel is overwritten below; reject before sizing storage
    // from untrusted extents larger than the remaining bytes could
    // ever fill (4 bytes per pixel).
    if (size_t(h) * size_t(w) * 4 > r.remaining())
        return Status::error(ErrorCode::CorruptSnapshot,
                             "image body %dx%d exceeds remaining bytes",
                             h, w);
    out->resetShape(h, w);
    for (float &px : out->data()) {
        auto v = r.f32();
        if (!v.ok())
            return v.status();
        px = v.value();
    }
    return Status::ok();
}

} // namespace snap
} // namespace eyecod
