/**
 * @file
 * Global operator new / delete overrides that tally per-thread
 * allocation counts into AllocCounter's thread-local counters.
 *
 * This translation unit is linked ONLY into the allocation-audited
 * benchmarks (see eyecod_alloc_hooks in src/common/CMakeLists.txt).
 * Linking it anywhere else is harmless but pointless; keeping it out
 * of the test binaries leaves the sanitizers' own allocator
 * interposition fully in charge there.
 *
 * The overrides delegate to malloc / aligned allocation, which the
 * sanitizers intercept as usual — so the serving CI job can run
 * bench_serving under ASan/UBSan *with* the counters active.
 */

#include "common/alloc_counter.h"

#include <cstdlib>
#include <new>

namespace eyecod {

namespace {

using alloc_hooks_detail::g_counters;

/** Tally one allocation of @p size bytes and return malloc memory. */
void *
countedAlloc(std::size_t size)
{
    g_counters.allocs += 1;
    g_counters.bytes += size;
    return std::malloc(size ? size : 1);
}

/** Tally one aligned allocation. */
void *
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    g_counters.allocs += 1;
    g_counters.bytes += size;
    void *ptr = nullptr;
    if (posix_memalign(&ptr, align < sizeof(void *) ? sizeof(void *)
                                                    : align,
                       size ? size : align) != 0)
        return nullptr;
    return ptr;
}

/** One-shot marker proving the overrides are present in the binary. */
struct HookMarker
{
    HookMarker() { alloc_hooks_detail::g_hooks_installed = true; }
};

HookMarker g_marker;

} // namespace

bool
allocHooksForceLink()
{
    return AllocCounter::hooksInstalled();
}

} // namespace eyecod

void *
operator new(std::size_t size)
{
    void *ptr = eyecod::countedAlloc(size);
    if (!ptr)
        throw std::bad_alloc();
    return ptr;
}

void *
operator new[](std::size_t size)
{
    void *ptr = eyecod::countedAlloc(size);
    if (!ptr)
        throw std::bad_alloc();
    return ptr;
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return eyecod::countedAlloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return eyecod::countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    void *ptr =
        eyecod::countedAlignedAlloc(size, std::size_t(align));
    if (!ptr)
        throw std::bad_alloc();
    return ptr;
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    void *ptr =
        eyecod::countedAlignedAlloc(size, std::size_t(align));
    if (!ptr)
        throw std::bad_alloc();
    return ptr;
}

void
operator delete(void *ptr) noexcept
{
    eyecod::alloc_hooks_detail::g_counters.frees += 1;
    std::free(ptr);
}

void
operator delete[](void *ptr) noexcept
{
    eyecod::alloc_hooks_detail::g_counters.frees += 1;
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    eyecod::alloc_hooks_detail::g_counters.frees += 1;
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t) noexcept
{
    eyecod::alloc_hooks_detail::g_counters.frees += 1;
    std::free(ptr);
}

void
operator delete(void *ptr, const std::nothrow_t &) noexcept
{
    eyecod::alloc_hooks_detail::g_counters.frees += 1;
    std::free(ptr);
}

void
operator delete[](void *ptr, const std::nothrow_t &) noexcept
{
    eyecod::alloc_hooks_detail::g_counters.frees += 1;
    std::free(ptr);
}

void
operator delete(void *ptr, std::align_val_t) noexcept
{
    eyecod::alloc_hooks_detail::g_counters.frees += 1;
    std::free(ptr);
}

void
operator delete[](void *ptr, std::align_val_t) noexcept
{
    eyecod::alloc_hooks_detail::g_counters.frees += 1;
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t, std::align_val_t) noexcept
{
    eyecod::alloc_hooks_detail::g_counters.frees += 1;
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t, std::align_val_t) noexcept
{
    eyecod::alloc_hooks_detail::g_counters.frees += 1;
    std::free(ptr);
}
