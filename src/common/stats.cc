#include "common/stats.h"

#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace eyecod {

double
percentile(std::vector<double> values, double q)
{
    if (values.empty())
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    std::sort(values.begin(), values.end());
    const double rank = q * double(values.size() - 1);
    const size_t below = size_t(rank);
    if (below + 1 >= values.size())
        return values.back();
    const double frac = rank - double(below);
    return values[below] * (1.0 - frac) + values[below + 1] * frac;
}

StreamingHistogram::StreamingHistogram(double lo, double hi,
                                       int buckets_per_decade)
    : lo_(lo), hi_(hi), per_decade_(buckets_per_decade)
{
    eyecod_assert(lo > 0.0 && hi > lo,
                  "StreamingHistogram range [%g, %g] invalid", lo, hi);
    eyecod_assert(buckets_per_decade >= 1,
                  "StreamingHistogram needs >= 1 bucket per decade");
    log_lo_ = std::log10(lo_);
    inv_log_step_ = double(per_decade_);
    const double decades = std::log10(hi_) - log_lo_;
    const int nbuckets =
        std::max(1, int(std::ceil(decades * inv_log_step_)));
    buckets_.assign(size_t(nbuckets), 0);
}

int
StreamingHistogram::bucketOf(double x) const
{
    if (x <= lo_)
        return 0;
    const int b = int((std::log10(x) - log_lo_) * inv_log_step_);
    return std::min(std::max(b, 0), int(buckets_.size()) - 1);
}

double
StreamingHistogram::bucketLo(int b) const
{
    return std::pow(10.0, log_lo_ + double(b) / inv_log_step_);
}

void
StreamingHistogram::add(double x)
{
    if (!std::isfinite(x))
        return;
    ++buckets_[size_t(bucketOf(x))];
    ++n_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
StreamingHistogram::quantile(double q) const
{
    if (n_ == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the target sample (linear-interpolation convention,
    // matching percentile()).
    const double rank = q * double(n_ - 1);
    uint64_t seen = 0;
    for (size_t b = 0; b < buckets_.size(); ++b) {
        const uint64_t c = buckets_[b];
        if (c == 0)
            continue;
        if (double(seen + c - 1) >= rank) {
            // Interpolate inside the bucket between its value edges.
            const double inside =
                c > 1 ? (rank - double(seen)) / double(c - 1) : 0.0;
            const double v_lo = bucketLo(int(b));
            const double v_hi = bucketLo(int(b) + 1);
            const double v =
                v_lo + (v_hi - v_lo) * std::min(1.0, std::max(0.0,
                                                              inside));
            return std::min(max_, std::max(min_, v));
        }
        seen += c;
    }
    return max_;
}

void
StreamingHistogram::merge(const StreamingHistogram &other)
{
    eyecod_assert(lo_ == other.lo_ && hi_ == other.hi_ &&
                      per_decade_ == other.per_decade_,
                  "merging histograms with different geometry");
    for (size_t b = 0; b < buckets_.size(); ++b)
        buckets_[b] += other.buckets_[b];
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

namespace {
// Fence tags for the stats components (arbitrary, stable).
constexpr uint32_t kRunningStatTag = 0x52535431;       // "RST1"
constexpr uint32_t kStreamingHistogramTag = 0x53485431; // "SHT1"
} // namespace

void
RunningStat::saveSnapshot(snap::SnapshotWriter &w) const
{
    w.tag(kRunningStatTag);
    w.u64(n_);
    w.f64(mean_);
    w.f64(m2_);
    w.f64(min_);
    w.f64(max_);
}

Status
RunningStat::restoreSnapshot(snap::SnapshotReader &r)
{
    Status fence = r.expectTag(kRunningStatTag);
    if (!fence.isOk())
        return fence;
    auto n = r.u64();
    auto mean = r.f64();
    auto m2 = r.f64();
    auto mn = r.f64();
    auto mx = r.f64();
    if (!mx.ok())
        return mx.status();
    n_ = n.value();
    mean_ = mean.value();
    m2_ = m2.value();
    min_ = mn.value();
    max_ = mx.value();
    return Status::ok();
}

void
StreamingHistogram::saveSnapshot(snap::SnapshotWriter &w) const
{
    w.tag(kStreamingHistogramTag);
    w.f64(lo_);
    w.f64(hi_);
    w.i32(per_decade_);
    w.u64(uint64_t(buckets_.size()));
    for (uint64_t c : buckets_)
        w.u64(c);
    w.u64(n_);
    w.f64(min_);
    w.f64(max_);
}

Status
StreamingHistogram::restoreSnapshot(snap::SnapshotReader &r)
{
    Status fence = r.expectTag(kStreamingHistogramTag);
    if (!fence.isOk())
        return fence;
    auto lo = r.f64();
    auto hi = r.f64();
    auto per_decade = r.i32();
    if (!per_decade.ok())
        return per_decade.status();
    if (lo.value() != lo_ || hi.value() != hi_ ||
        per_decade.value() != per_decade_)
        return Status::error(ErrorCode::CorruptSnapshot,
                             "histogram geometry mismatch: snapshot "
                             "(%g, %g, %d) vs live (%g, %g, %d)",
                             lo.value(), hi.value(), per_decade.value(),
                             lo_, hi_, per_decade_);
    auto n_buckets = r.count(uint64_t(buckets_.size()));
    if (!n_buckets.ok())
        return n_buckets.status();
    if (n_buckets.value() != buckets_.size())
        return Status::error(ErrorCode::CorruptSnapshot,
                             "histogram bucket count %llu != %zu",
                             (unsigned long long)n_buckets.value(),
                             buckets_.size());
    for (size_t i = 0; i < buckets_.size(); ++i) {
        auto c = r.u64();
        if (!c.ok())
            return c.status();
        buckets_[i] = c.value();
    }
    auto n = r.u64();
    auto mn = r.f64();
    auto mx = r.f64();
    if (!mx.ok())
        return mx.status();
    n_ = n.value();
    min_ = mn.value();
    max_ = mx.value();
    return Status::ok();
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    eyecod_assert(cells.size() == headers_.size(),
                  "row arity %zu != header arity %zu",
                  cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &row : rows_)
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            os << row[i];
            if (i + 1 < row.size())
                os << std::string(widths[i] - row[i].size() + 2, ' ');
        }
        os << '\n';
    };
    emit_row(headers_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

std::string
formatDouble(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
formatSi(double v, int decimals)
{
    const char *suffix = "";
    double scaled = v;
    if (std::fabs(v) >= 1e12) {
        scaled = v / 1e12;
        suffix = "T";
    } else if (std::fabs(v) >= 1e9) {
        scaled = v / 1e9;
        suffix = "G";
    } else if (std::fabs(v) >= 1e6) {
        scaled = v / 1e6;
        suffix = "M";
    } else if (std::fabs(v) >= 1e3) {
        scaled = v / 1e3;
        suffix = "K";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%s", decimals, scaled, suffix);
    return buf;
}

} // namespace eyecod
