#include "common/stats.h"

#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace eyecod {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    eyecod_assert(cells.size() == headers_.size(),
                  "row arity %zu != header arity %zu",
                  cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &row : rows_)
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            os << row[i];
            if (i + 1 < row.size())
                os << std::string(widths[i] - row[i].size() + 2, ' ');
        }
        os << '\n';
    };
    emit_row(headers_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

std::string
formatDouble(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
formatSi(double v, int decimals)
{
    const char *suffix = "";
    double scaled = v;
    if (std::fabs(v) >= 1e12) {
        scaled = v / 1e12;
        suffix = "T";
    } else if (std::fabs(v) >= 1e9) {
        scaled = v / 1e9;
        suffix = "G";
    } else if (std::fabs(v) >= 1e6) {
        scaled = v / 1e6;
        suffix = "M";
    } else if (std::fabs(v) >= 1e3) {
        scaled = v / 1e3;
        suffix = "K";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%s", decimals, scaled, suffix);
    return buf;
}

} // namespace eyecod
