/**
 * @file
 * Non-MAC layers: pooling, nearest-neighbour upsampling, channel
 * concatenation, element-wise residual addition, standalone
 * activations, and batch normalization.
 */

#ifndef EYECOD_NN_BASIC_LAYERS_H
#define EYECOD_NN_BASIC_LAYERS_H

#include "nn/layer.h"

namespace eyecod {
namespace nn {

/** Pooling flavours. */
enum class PoolMode { Max, Average, GlobalAverage };

/**
 * Spatial pooling.
 */
class Pool : public Layer
{
  public:
    /**
     * @param in input shape.
     * @param mode pooling flavour; GlobalAverage ignores kernel/stride.
     * @param kernel pooling window.
     * @param stride pooling stride (defaults to kernel).
     */
    Pool(std::string name, Shape in, PoolMode mode, int kernel = 2,
         int stride = 0);

    using Layer::forward;
    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 const ExecContext &ctx) const override;
    Shape outputShape() const override;
    LayerKind kind() const override { return LayerKind::Pool; }
    LayerWorkload workload() const override;

  private:
    Shape in_;
    PoolMode mode_;
    int kernel_;
    int stride_;
};

/**
 * Nearest-neighbour 2x upsampling (the paper's up-sampling reshaping
 * operation duplicates activations; zero-insertion is also supported
 * for transposed-convolution style upsampling).
 */
class Upsample : public Layer
{
  public:
    /** @param zero_insert insert zeros instead of duplicating. */
    Upsample(std::string name, Shape in, int factor = 2,
             bool zero_insert = false);

    using Layer::forward;
    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 const ExecContext &ctx) const override;
    Shape outputShape() const override;
    LayerKind kind() const override { return LayerKind::Upsample; }
    LayerWorkload workload() const override;

  private:
    Shape in_;
    int factor_;
    bool zero_insert_;
};

/**
 * Channel concatenation of two inputs with equal spatial extent.
 */
class Concat : public Layer
{
  public:
    Concat(std::string name, Shape in_a, Shape in_b);

    using Layer::forward;
    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 const ExecContext &ctx) const override;
    Shape outputShape() const override;
    LayerKind kind() const override { return LayerKind::Concat; }
    LayerWorkload workload() const override;

  private:
    Shape a_, b_;
};

/**
 * Element-wise addition of two same-shaped inputs (residual skip).
 */
class Add : public Layer
{
  public:
    Add(std::string name, Shape in, bool relu = false);

    using Layer::forward;
    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 const ExecContext &ctx) const override;
    Shape outputShape() const override { return in_; }
    LayerKind kind() const override { return LayerKind::Add; }

  private:
    Shape in_;
    bool relu_;
};

/** Standalone activation functions. */
enum class ActFn { Relu, LeakyRelu, Tanh, Sigmoid };

/**
 * A standalone activation layer.
 */
class Activation : public Layer
{
  public:
    Activation(std::string name, Shape in, ActFn fn,
               float slope = 0.01f);

    using Layer::forward;
    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 const ExecContext &ctx) const override;
    Shape outputShape() const override { return in_; }
    LayerKind kind() const override { return LayerKind::Activation; }

  private:
    Shape in_;
    ActFn fn_;
    float slope_;
};

/**
 * Standalone batch normalization with learned (seeded) scale/shift;
 * provided for graphs that keep BN unfolded.
 */
class BatchNorm : public Layer
{
  public:
    BatchNorm(std::string name, Shape in, uint64_t seed = 1);

    using Layer::forward;
    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 const ExecContext &ctx) const override;
    Shape outputShape() const override { return in_; }
    LayerKind kind() const override { return LayerKind::BatchNorm; }
    long long paramCount() const override { return 2LL * in_.c; }

  private:
    Shape in_;
    std::vector<float> scale_;
    std::vector<float> shift_;
};

/** Per-pixel argmax over channels (segmentation decode helper). */
std::vector<int> channelArgmax(const Tensor &t);

} // namespace nn
} // namespace eyecod

#endif // EYECOD_NN_BASIC_LAYERS_H
