#include "nn/basic_layers.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace eyecod {
namespace nn {

Pool::Pool(std::string name, Shape in, PoolMode mode, int kernel,
           int stride)
    : Layer(std::move(name)), in_(in), mode_(mode), kernel_(kernel),
      stride_(stride > 0 ? stride : kernel)
{
    eyecod_assert(kernel_ > 0 && stride_ > 0,
                  "pool %s bad kernel/stride", this->name().c_str());
}

Shape
Pool::outputShape() const
{
    if (mode_ == PoolMode::GlobalAverage)
        return Shape{in_.c, 1, 1};
    return Shape{in_.c, (in_.h + stride_ - 1) / stride_,
                 (in_.w + stride_ - 1) / stride_};
}

LayerWorkload
Pool::workload() const
{
    LayerWorkload w = Layer::workload();
    w.c_in = in_.c;
    w.h_in = in_.h;
    w.w_in = in_.w;
    w.kernel = mode_ == PoolMode::GlobalAverage ? in_.h : kernel_;
    w.stride = stride_;
    return w;
}

void
Pool::forward(const std::vector<const Tensor *> &in, Tensor &out,
              const ExecContext &ctx) const
{
    eyecod_assert(in.size() == 1 && in[0]->shape() == in_,
                  "pool %s input mismatch", name().c_str());
    const Tensor &x = *in[0];
    const Shape out_shape = outputShape();
    eyecod_assert(out.shape() == out_shape,
                  "pool %s output shape mismatch", name().c_str());

    if (mode_ == PoolMode::GlobalAverage) {
        const double inv = 1.0 / (double(in_.h) * in_.w);
        for (int c = 0; c < in_.c; ++c) {
            double acc = 0.0;
            for (int y = 0; y < in_.h; ++y)
                for (int xx = 0; xx < in_.w; ++xx)
                    acc += x.at(c, y, xx);
            out.at(c, 0, 0) = float(acc * inv);
        }
        return;
    }

    ctx.parallelFor(in_.c, 1, [&](long c_begin, long c_end) {
        for (int c = int(c_begin); c < int(c_end); ++c) {
            for (int oy = 0; oy < out_shape.h; ++oy) {
                for (int ox = 0; ox < out_shape.w; ++ox) {
                    double acc = mode_ == PoolMode::Max
                        ? -1e30 : 0.0;
                    int count = 0;
                    for (int ky = 0; ky < kernel_; ++ky) {
                        const int iy = oy * stride_ + ky;
                        if (iy >= in_.h)
                            continue;
                        for (int kx = 0; kx < kernel_; ++kx) {
                            const int ix = ox * stride_ + kx;
                            if (ix >= in_.w)
                                continue;
                            const double v = x.at(c, iy, ix);
                            if (mode_ == PoolMode::Max)
                                acc = std::max(acc, v);
                            else
                                acc += v;
                            ++count;
                        }
                    }
                    if (mode_ == PoolMode::Average && count > 0)
                        acc /= count;
                    out.at(c, oy, ox) = float(acc);
                }
            }
        }
    });
}

Upsample::Upsample(std::string name, Shape in, int factor,
                   bool zero_insert)
    : Layer(std::move(name)), in_(in), factor_(factor),
      zero_insert_(zero_insert)
{
    eyecod_assert(factor_ >= 2, "upsample %s factor must be >= 2",
                  this->name().c_str());
}

Shape
Upsample::outputShape() const
{
    return Shape{in_.c, in_.h * factor_, in_.w * factor_};
}

LayerWorkload
Upsample::workload() const
{
    LayerWorkload w = Layer::workload();
    w.c_in = in_.c;
    w.h_in = in_.h;
    w.w_in = in_.w;
    w.stride = factor_;
    return w;
}

void
Upsample::forward(const std::vector<const Tensor *> &in, Tensor &out,
                  const ExecContext &ctx) const
{
    eyecod_assert(in.size() == 1 && in[0]->shape() == in_,
                  "upsample %s input mismatch", name().c_str());
    const Tensor &x = *in[0];
    eyecod_assert(out.shape() == outputShape(),
                  "upsample %s output shape mismatch", name().c_str());
    ctx.parallelFor(in_.c, 1, [&](long c_begin, long c_end) {
        for (int c = int(c_begin); c < int(c_end); ++c) {
            for (int y = 0; y < in_.h * factor_; ++y) {
                for (int xx = 0; xx < in_.w * factor_; ++xx) {
                    if (zero_insert_ &&
                        (y % factor_ != 0 || xx % factor_ != 0)) {
                        out.at(c, y, xx) = 0.0f;
                    } else {
                        out.at(c, y, xx) =
                            x.at(c, y / factor_, xx / factor_);
                    }
                }
            }
        }
    });
}

Concat::Concat(std::string name, Shape in_a, Shape in_b)
    : Layer(std::move(name)), a_(in_a), b_(in_b)
{
    eyecod_assert(in_a.h == in_b.h && in_a.w == in_b.w,
                  "concat %s spatial mismatch", this->name().c_str());
}

Shape
Concat::outputShape() const
{
    return Shape{a_.c + b_.c, a_.h, a_.w};
}

LayerWorkload
Concat::workload() const
{
    LayerWorkload w = Layer::workload();
    w.c_in = a_.c + b_.c;
    w.h_in = a_.h;
    w.w_in = a_.w;
    return w;
}

void
Concat::forward(const std::vector<const Tensor *> &in, Tensor &out,
                const ExecContext &) const
{
    eyecod_assert(in.size() == 2 && in[0]->shape() == a_ &&
                  in[1]->shape() == b_,
                  "concat %s input mismatch", name().c_str());
    eyecod_assert(out.shape() == outputShape(),
                  "concat %s output shape mismatch", name().c_str());
    std::copy(in[0]->data().begin(), in[0]->data().end(),
              out.data().begin());
    std::copy(in[1]->data().begin(), in[1]->data().end(),
              out.data().begin() + in[0]->size());
}

Add::Add(std::string name, Shape in, bool relu)
    : Layer(std::move(name)), in_(in), relu_(relu)
{
}

void
Add::forward(const std::vector<const Tensor *> &in, Tensor &out,
             const ExecContext &ctx) const
{
    eyecod_assert(in.size() == 2 && in[0]->shape() == in_ &&
                  in[1]->shape() == in_,
                  "add %s input mismatch", name().c_str());
    eyecod_assert(out.shape() == in_,
                  "add %s output shape mismatch", name().c_str());
    const long n = long(out.size());
    ctx.parallelFor(n, std::max(1L, n / (ctx.concurrency() * 2L)),
                    [&](long begin, long end) {
        for (long i = begin; i < end; ++i) {
            float v = in[0]->data()[size_t(i)] +
                      in[1]->data()[size_t(i)];
            if (relu_ && v < 0.0f)
                v = 0.0f;
            out.data()[size_t(i)] = v;
        }
    });
}

Activation::Activation(std::string name, Shape in, ActFn fn,
                       float slope)
    : Layer(std::move(name)), in_(in), fn_(fn), slope_(slope)
{
}

void
Activation::forward(const std::vector<const Tensor *> &in,
                    Tensor &out, const ExecContext &ctx) const
{
    eyecod_assert(in.size() == 1 && in[0]->shape() == in_,
                  "activation %s input mismatch", name().c_str());
    eyecod_assert(out.shape() == in_,
                  "activation %s output shape mismatch",
                  name().c_str());
    const long n = long(out.size());
    ctx.parallelFor(n, std::max(1L, n / (ctx.concurrency() * 2L)),
                    [&](long begin, long end) {
        for (long i = begin; i < end; ++i) {
            const float v = in[0]->data()[size_t(i)];
            switch (fn_) {
              case ActFn::Relu:
                out.data()[size_t(i)] = v > 0.0f ? v : 0.0f;
                break;
              case ActFn::LeakyRelu:
                out.data()[size_t(i)] = v > 0.0f ? v : slope_ * v;
                break;
              case ActFn::Tanh:
                out.data()[size_t(i)] = std::tanh(v);
                break;
              case ActFn::Sigmoid:
                out.data()[size_t(i)] = 1.0f / (1.0f + std::exp(-v));
                break;
            }
        }
    });
}

BatchNorm::BatchNorm(std::string name, Shape in, uint64_t seed)
    : Layer(std::move(name)), in_(in)
{
    Rng rng(seed);
    scale_.resize(size_t(in_.c));
    shift_.resize(size_t(in_.c));
    for (int c = 0; c < in_.c; ++c) {
        scale_[size_t(c)] = float(1.0 + rng.gaussian(0.0, 0.05));
        shift_[size_t(c)] = float(rng.gaussian(0.0, 0.05));
    }
}

void
BatchNorm::forward(const std::vector<const Tensor *> &in, Tensor &out,
                   const ExecContext &ctx) const
{
    eyecod_assert(in.size() == 1 && in[0]->shape() == in_,
                  "batchnorm %s input mismatch", name().c_str());
    eyecod_assert(out.shape() == in_,
                  "batchnorm %s output shape mismatch",
                  name().c_str());
    const size_t plane = size_t(in_.h) * in_.w;
    ctx.parallelFor(in_.c, 1, [&](long c_begin, long c_end) {
        for (int c = int(c_begin); c < int(c_end); ++c) {
            const float s = scale_[size_t(c)];
            const float b = shift_[size_t(c)];
            const float *src =
                in[0]->data().data() + size_t(c) * plane;
            float *dst = out.data().data() + size_t(c) * plane;
            for (size_t i = 0; i < plane; ++i)
                dst[i] = s * src[i] + b;
        }
    });
}

std::vector<int>
channelArgmax(const Tensor &t)
{
    const Shape s = t.shape();
    std::vector<int> out(size_t(s.h) * s.w, 0);
    for (int y = 0; y < s.h; ++y) {
        for (int x = 0; x < s.w; ++x) {
            int best = 0;
            float best_v = t.at(0, y, x);
            for (int c = 1; c < s.c; ++c) {
                const float v = t.at(c, y, x);
                if (v > best_v) {
                    best_v = v;
                    best = c;
                }
            }
            out[size_t(y) * s.w + x] = best;
        }
    }
    return out;
}

} // namespace nn
} // namespace eyecod
