#include "nn/runtime.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace eyecod {
namespace nn {

ExecutionPlan::ExecutionPlan(const Graph &graph) : graph_(&graph)
{
    const size_t n = graph.numNodes();
    eyecod_assert(n > 0, "planning empty graph %s",
                  graph.name().c_str());

    value_slot_.assign(n, -1);
    input_index_.assign(n, -1);
    const std::vector<int> &input_ids = graph.inputIds();
    for (size_t i = 0; i < input_ids.size(); ++i)
        input_index_[size_t(input_ids[i])] = int(i);

    // Liveness: how many consumers of each value remain unscheduled.
    // A value's slot is recycled the moment its count reaches zero.
    std::vector<int> remaining(n, 0);
    for (size_t id = 0; id < n; ++id)
        for (int p : graph.nodeInputs(int(id)))
            ++remaining[size_t(p)];

    const int output_node = int(n) - 1;
    std::vector<int> free_slots;
    size_t live = 0;

    for (size_t id = 0; id < n; ++id) {
        if (graph.isInput(int(id)))
            continue;
        Step step;
        step.node = int(id);
        step.layer = graph.nodeLayer(int(id));
        step.shape = graph.nodeShape(int(id));
        step.arg_nodes = graph.nodeInputs(int(id));
        const size_t need = step.shape.size();
        stats_.eager_elements += need;

        // Acquire a slot before releasing this step's arguments so an
        // output never aliases an input of the same step. Best fit
        // first; otherwise grow the largest free slot; otherwise a
        // fresh slot.
        int chosen = -1;
        size_t best_cap = std::numeric_limits<size_t>::max();
        int biggest = -1;
        size_t biggest_cap = 0;
        for (size_t f = 0; f < free_slots.size(); ++f) {
            const size_t cap = slot_capacity_[size_t(free_slots[f])];
            if (cap >= need && cap < best_cap) {
                best_cap = cap;
                chosen = int(f);
            }
            if (biggest < 0 || cap > biggest_cap) {
                biggest_cap = cap;
                biggest = int(f);
            }
        }
        if (chosen < 0 && biggest >= 0)
            chosen = biggest;
        int slot;
        if (chosen >= 0) {
            slot = free_slots[size_t(chosen)];
            free_slots.erase(free_slots.begin() + chosen);
            slot_capacity_[size_t(slot)] =
                std::max(slot_capacity_[size_t(slot)], need);
        } else {
            slot = int(slot_capacity_.size());
            slot_capacity_.push_back(need);
        }
        value_slot_[id] = slot;
        step.slot = slot;
        live += need;
        stats_.peak_live_elements =
            std::max(stats_.peak_live_elements, live);

        for (int p : step.arg_nodes) {
            if (--remaining[size_t(p)] == 0 &&
                !graph.isInput(p) && p != output_node) {
                free_slots.push_back(value_slot_[size_t(p)]);
                live -= graph.nodeShape(p).size();
            }
        }
        steps_.push_back(std::move(step));
    }

    stats_.arena_slots = slot_capacity_.size();
    for (size_t cap : slot_capacity_)
        stats_.arena_elements += cap;
}

namespace {

/** Index of the first non-finite element of @p t, or -1. */
long
firstNonFinite(const Tensor &t)
{
    const float *data = t.data().data();
    for (size_t i = 0; i < t.size(); ++i)
        if (!std::isfinite(data[i]))
            return long(i);
    return -1;
}

} // namespace

Status
Backend::runImpl(const ExecutionPlan &plan,
                 const std::vector<const Tensor *> &inputs,
                 bool finite_checks, Tensor *out_tensor)
{
    const Graph &graph = plan.graph();
    const std::vector<int> &input_ids = graph.inputIds();
    if (inputs.size() != input_ids.size())
        return Status::error(ErrorCode::InvalidArgument,
                             "graph %s expects %zu inputs, got %zu",
                             graph.name().c_str(), input_ids.size(),
                             inputs.size());
    for (size_t i = 0; i < input_ids.size(); ++i) {
        if (!(inputs[i]->shape() == graph.nodeShape(input_ids[i])))
            return Status::error(ErrorCode::ShapeMismatch,
                                 "graph %s input %zu shape mismatch",
                                 graph.name().c_str(), i);
        if (finite_checks && firstNonFinite(*inputs[i]) >= 0)
            return Status::error(
                ErrorCode::NonFinite,
                "graph %s input %zu contains non-finite values",
                graph.name().c_str(), i);
    }

    if (arena_plan_ != &plan || arena_.size() != plan.numSlots()) {
        arena_.assign(plan.numSlots(), Tensor());
        for (size_t s = 0; s < arena_.size(); ++s)
            arena_[s].reserve(plan.slotCapacity(int(s)));
        arena_plan_ = &plan;
    }

    ExecContext ctx{pool()};
    ctx.finite_checks = finite_checks;
    std::vector<const Tensor *> &args = args_scratch_;
    for (const ExecutionPlan::Step &step : plan.steps()) {
        args.clear();
        args.reserve(step.arg_nodes.size());
        for (int p : step.arg_nodes) {
            const int input_idx = plan.inputIndex(p);
            args.push_back(input_idx >= 0
                               ? inputs[size_t(input_idx)]
                               : &arena_[size_t(plan.valueSlot(p))]);
        }
        Tensor &out = arena_[size_t(step.slot)];
        out.reset(step.shape);
        step.layer->forward(args, out, ctx);
        if (tap_)
            tap_(step, out);
        if (ctx.finite_checks) {
            const long bad = firstNonFinite(out);
            if (bad >= 0)
                return Status::error(
                    ErrorCode::NonFinite,
                    "graph %s layer %s produced a non-finite value "
                    "at element %ld",
                    graph.name().c_str(),
                    step.layer->name().c_str(), bad);
        }
    }

    if (plan.steps().empty()) {
        // Degenerate graph of inputs only: echo the last node.
        const int last = int(graph.numNodes()) - 1;
        *out_tensor = *inputs[size_t(plan.inputIndex(last))];
    } else {
        // Copy-out (capacity-reusing for a warm @p out_tensor): the
        // arena slot is recycled by the next run.
        *out_tensor = arena_[size_t(plan.steps().back().slot)];
    }
    return Status::ok();
}

Tensor
Backend::run(const ExecutionPlan &plan,
             const std::vector<Tensor> &inputs)
{
    input_ptrs_scratch_.clear();
    for (const Tensor &t : inputs)
        input_ptrs_scratch_.push_back(&t);
    Tensor out;
    const Status status =
        runImpl(plan, input_ptrs_scratch_, false, &out);
    if (!status.isOk())
        panic("Backend::run: %s", status.toString().c_str());
    return out;
}

Result<Tensor>
Backend::runChecked(const ExecutionPlan &plan,
                    const std::vector<Tensor> &inputs)
{
    input_ptrs_scratch_.clear();
    for (const Tensor &t : inputs)
        input_ptrs_scratch_.push_back(&t);
    Tensor out;
    Status status = runImpl(plan, input_ptrs_scratch_, true, &out);
    if (!status.isOk())
        return status;
    return out;
}

Status
Backend::runCheckedInto(const ExecutionPlan &plan,
                        const std::vector<const Tensor *> &inputs,
                        Tensor *out)
{
    return runImpl(plan, inputs, true, out);
}

std::string
ThreadedBackend::name() const
{
    return "threaded-" + std::to_string(pool_.threadCount());
}

std::unique_ptr<Backend>
makeBackend(BackendKind kind, int threads)
{
    switch (kind) {
      case BackendKind::Serial:
        return std::make_unique<SerialBackend>();
      case BackendKind::Threaded:
        return std::make_unique<ThreadedBackend>(threads);
    }
    return std::make_unique<SerialBackend>();
}

Tensor
runEager(const Graph &graph, const std::vector<Tensor> &inputs)
{
    const std::vector<int> &input_ids = graph.inputIds();
    eyecod_assert(inputs.size() == input_ids.size(),
                  "graph %s expects %zu inputs, got %zu",
                  graph.name().c_str(), input_ids.size(),
                  inputs.size());
    eyecod_assert(graph.numNodes() > 0, "empty graph %s",
                  graph.name().c_str());

    std::vector<Tensor> values(graph.numNodes());
    for (size_t i = 0; i < input_ids.size(); ++i) {
        eyecod_assert(inputs[i].shape() ==
                      graph.nodeShape(input_ids[i]),
                      "graph %s input %zu shape mismatch",
                      graph.name().c_str(), i);
        values[size_t(input_ids[i])] = inputs[i];
    }

    for (size_t i = 0; i < graph.numNodes(); ++i) {
        const Layer *layer = graph.nodeLayer(int(i));
        if (!layer)
            continue;
        std::vector<const Tensor *> args;
        args.reserve(graph.nodeInputs(int(i)).size());
        for (int id : graph.nodeInputs(int(i)))
            args.push_back(&values[size_t(id)]);
        values[i] = layer->forward(args);
    }
    return values.back();
}

} // namespace nn
} // namespace eyecod
