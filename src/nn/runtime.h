/**
 * @file
 * Planned NN execution runtime: the plan/execute split for the
 * functional CPU path, mirroring what the accelerator compiler in
 * src/accel does for the simulated hardware.
 *
 * An ExecutionPlan topologically schedules a Graph once, computes
 * per-node liveness (the step index of each value's last consumer),
 * and assigns every node output into a reusable tensor arena slot —
 * a slot is recycled as soon as the value it holds has been consumed
 * for the last time, so the arena footprint of a U-Net style graph is
 * far below the sum of all intermediate sizes.
 *
 * A Backend executes a plan. Two implementations ship here:
 *
 *  - SerialBackend: single-threaded reference, semantically identical
 *    to the historical eager Graph::forward;
 *  - ThreadedBackend: multithreaded CPU execution on a ThreadPool,
 *    parallelizing conv output channels/rows, depth-wise channels,
 *    and matmul row blocks inside each layer. Work is chunked over
 *    disjoint output ranges, so results are bitwise identical to the
 *    serial backend and independent of the thread count.
 *
 * Later backends (batched, sharded, accelerator-offloaded) plug into
 * the same ExecutionPlan/Backend seam instead of rewriting layers.
 */

#ifndef EYECOD_NN_RUNTIME_H
#define EYECOD_NN_RUNTIME_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "nn/graph.h"

namespace eyecod {
namespace nn {

/** Memory accounting of a plan (element counts, not bytes). */
struct PlanStats
{
    size_t arena_slots = 0;     ///< Physical arena slots allocated.
    size_t arena_elements = 0;  ///< Sum of slot capacities.
    size_t peak_live_elements = 0; ///< Max simultaneously-live values.
    size_t eager_elements = 0;  ///< Sum of every node output size —
                                ///< what the eager executor held.
};

/**
 * A topologically scheduled Graph with liveness-derived arena slot
 * assignments. Planning is done once; the plan is immutable and
 * shareable across backends. The Graph must outlive the plan.
 */
class ExecutionPlan
{
  public:
    /** One scheduled layer execution. */
    struct Step
    {
        int node = -1;              ///< Node id in the graph.
        const Layer *layer = nullptr;
        Shape shape;                ///< Output shape.
        int slot = -1;              ///< Arena slot for the output.
        std::vector<int> arg_nodes; ///< Producer node ids.
    };

    explicit ExecutionPlan(const Graph &graph);

    /** The planned graph. */
    const Graph &graph() const { return *graph_; }

    /** Scheduled layer executions, in order. */
    const std::vector<Step> &steps() const { return steps_; }

    /** Number of physical arena slots. */
    size_t numSlots() const { return slot_capacity_.size(); }

    /** Element capacity of @p slot. */
    size_t slotCapacity(int slot) const
    {
        return slot_capacity_[size_t(slot)];
    }

    /** Arena slot of node @p id's value (-1 for graph inputs). */
    int valueSlot(int node) const { return value_slot_[size_t(node)]; }

    /**
     * Index into the caller-provided input vector when node @p id is
     * a graph input, -1 otherwise.
     */
    int inputIndex(int node) const
    {
        return input_index_[size_t(node)];
    }

    /** Memory accounting (slot reuse vs eager materialization). */
    const PlanStats &stats() const { return stats_; }

  private:
    const Graph *graph_;
    std::vector<Step> steps_;
    std::vector<int> value_slot_;      ///< Per node; -1 for inputs.
    std::vector<int> input_index_;     ///< Per node; -1 for layers.
    std::vector<size_t> slot_capacity_;
    PlanStats stats_;
};

/**
 * Executes ExecutionPlans. A backend owns its arena (sized lazily per
 * plan and reused across run() calls), so a long-lived backend incurs
 * zero steady-state tensor allocation.
 */
class Backend
{
  public:
    virtual ~Backend() = default;

    Backend(const Backend &) = delete;
    Backend &operator=(const Backend &) = delete;

    /** Human-readable backend name. */
    virtual std::string name() const = 0;

    /**
     * Execute @p plan on @p inputs (one tensor per declared graph
     * input, in order); returns the output of the final node.
     * Panics on malformed inputs (programming errors).
     */
    Tensor run(const ExecutionPlan &plan,
               const std::vector<Tensor> &inputs);

    /**
     * Serving-path execution with typed errors: input count/shape
     * mismatches return InvalidArgument/ShapeMismatch instead of
     * aborting, and finite-check mode (ExecContext::finite_checks)
     * is enabled — non-finite values in an input or any step output
     * return a NonFinite error naming the offending layer, so a
     * poisoned tensor surfaces as a recoverable fault rather than
     * garbage gaze.
     */
    [[nodiscard]] Result<Tensor> runChecked(const ExecutionPlan &plan,
                              const std::vector<Tensor> &inputs);

    /**
     * Zero-copy checked execution: inputs arrive as pointers to
     * caller-owned (typically arena- or member-backed) tensors — no
     * copy-in — and the output lands in @p out, whose buffer is
     * reused across calls. Bitwise-identical to runChecked(); on
     * error @p out is left unspecified. This is the steady-state
     * serving entry point.
     */
    [[nodiscard]] Status
    runCheckedInto(const ExecutionPlan &plan,
                   const std::vector<const Tensor *> &inputs,
                   Tensor *out);

    /**
     * Observer/perturbation hook invoked on every step's output right
     * after the layer computes it (and before the finite check in
     * runChecked). The fault-injection harness uses it to model
     * silent hardware corruption reaching the activations; an empty
     * tap (the default) costs one branch per step.
     */
    using ActivationTap =
        std::function<void(const ExecutionPlan::Step &, Tensor &)>;

    /** Install (or clear, with an empty function) the tap. */
    void setActivationTap(ActivationTap tap)
    {
        tap_ = std::move(tap);
    }

  protected:
    Backend() = default;

    /** Parallel substrate handed to layers (null = serial). */
    virtual ThreadPool *pool() { return nullptr; }

  private:
    /** Shared executor behind every run entry point. */
    Status runImpl(const ExecutionPlan &plan,
                   const std::vector<const Tensor *> &inputs,
                   bool finite_checks, Tensor *out);

    /** Arena reused across run() calls; rebuilt when the plan
     *  changes. */
    std::vector<Tensor> arena_;
    const ExecutionPlan *arena_plan_ = nullptr;
    ActivationTap tap_;
    /** Per-step argument pointers, reused across runs. */
    std::vector<const Tensor *> args_scratch_;
    /** Input pointers built by the owning-vector entry points. */
    std::vector<const Tensor *> input_ptrs_scratch_;
};

/** Single-threaded reference backend. */
class SerialBackend : public Backend
{
  public:
    SerialBackend() = default;
    std::string name() const override { return "serial"; }
};

/**
 * Multithreaded CPU backend. Results are bitwise identical to
 * SerialBackend for every layer in this engine, independent of
 * @p threads (see ThreadPool's determinism contract).
 */
class ThreadedBackend : public Backend
{
  public:
    /** @param threads total concurrency; 0 = hardware concurrency. */
    explicit ThreadedBackend(int threads = 0) : pool_(threads) {}

    std::string name() const override;

    /** Total concurrency in use. */
    int threadCount() const { return pool_.threadCount(); }

  protected:
    ThreadPool *pool() override { return &pool_; }

  private:
    ThreadPool pool_;
};

/** Backend selector for configuration surfaces. */
enum class BackendKind {
    Serial,   ///< Reference single-thread execution.
    Threaded, ///< ThreadPool-backed CPU execution.
};

/** Construct a backend. @p threads only applies to Threaded. */
std::unique_ptr<Backend> makeBackend(BackendKind kind,
                                     int threads = 0);

/**
 * The historical eager executor: one freshly allocated tensor per
 * node, all intermediates kept live for the whole pass. Retained as
 * the baseline for runtime benchmarks and parity tests.
 */
Tensor runEager(const Graph &graph, const std::vector<Tensor> &inputs);

} // namespace nn
} // namespace eyecod

#endif // EYECOD_NN_RUNTIME_H
