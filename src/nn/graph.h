/**
 * @file
 * A DAG of layers with topological execution, FLOPs/params accounting,
 * and workload extraction for the accelerator compiler.
 */

#ifndef EYECOD_NN_GRAPH_H
#define EYECOD_NN_GRAPH_H

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/layer.h"

namespace eyecod {
namespace nn {

/**
 * A feed-forward DAG. Nodes are appended in topological order; node 0
 * onwards may be graph inputs; the last added node is the graph
 * output.
 */
class Graph
{
  public:
    explicit Graph(std::string name) : name_(std::move(name)) {}

    /** Declare a graph input; returns its node id. */
    int addInput(Shape shape, std::string name = "input");

    /**
     * Append a layer consuming the given producer nodes; returns the
     * new node id. Producer ids must already exist.
     */
    int add(LayerPtr layer, std::vector<int> inputs);

    /** Construct-and-append convenience. */
    template <typename L, typename... Args>
    int
    emplace(std::vector<int> inputs, Args &&...args)
    {
        return add(std::make_unique<L>(std::forward<Args>(args)...),
                   std::move(inputs));
    }

    /**
     * Execute the graph; @p inputs must match the declared input
     * nodes in order. Returns the output of the last node.
     *
     * Convenience wrapper: plans the graph and runs it on a serial
     * reference backend. Callers that execute repeatedly should build
     * an ExecutionPlan + Backend once and reuse them (see runtime.h).
     */
    Tensor forward(const std::vector<Tensor> &inputs) const;

    /** Shape of the graph output. */
    Shape outputShape() const;

    /** Shape of node @p id. */
    Shape nodeShape(int id) const;

    /** Total multiply-accumulates of one inference. */
    long long totalMacs() const;

    /** Total trainable parameters. */
    long long totalParams() const;

    /** MACs grouped by layer kind. */
    std::map<LayerKind, long long> macsByKind() const;

    /**
     * Per-layer workload records in execution order (all layers,
     * including non-MAC ones; the compiler filters).
     */
    std::vector<LayerWorkload> workloads() const;

    /** Number of nodes (inputs + layers). */
    size_t numNodes() const { return nodes_.size(); }

    /** Number of layer nodes (excluding inputs). */
    size_t numLayers() const;

    /** True when node @p id is a graph input. */
    bool isInput(int id) const;

    /** Layer of node @p id (null for input nodes). */
    const Layer *nodeLayer(int id) const;

    /** Producer node ids of node @p id (empty for inputs). */
    const std::vector<int> &nodeInputs(int id) const;

    /** Node ids of the declared graph inputs, in order. */
    const std::vector<int> &inputIds() const { return input_ids_; }

    /** Graph name. */
    const std::string &name() const { return name_; }

  private:
    struct Node
    {
        LayerPtr layer;       ///< Null for input nodes.
        Shape shape;          ///< Output shape of the node.
        std::vector<int> inputs;
        std::string input_name; ///< Name for input nodes.
    };

    std::string name_;
    std::vector<Node> nodes_;
    std::vector<int> input_ids_;
};

} // namespace nn
} // namespace eyecod

#endif // EYECOD_NN_GRAPH_H
