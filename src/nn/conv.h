/**
 * @file
 * Convolution layers: generic KxK, point-wise 1x1, and depth-wise,
 * the three MAC-dominant layer types of the paper's Sec. 5.1.
 *
 * Batch-norm parameters are folded into the convolution weights at
 * construction (standard inference-time folding) and ReLU may be
 * fused; both choices match what the deployment engine executes.
 */

#ifndef EYECOD_NN_CONV_H
#define EYECOD_NN_CONV_H

#include "nn/layer.h"
#include "nn/quantize.h"

namespace eyecod {
namespace nn {

/** Construction parameters of a convolution layer. */
struct ConvSpec
{
    Shape in;            ///< Input tensor shape.
    int out_channels = 1;
    int kernel = 3;      ///< Square kernel size.
    int stride = 1;
    bool depthwise = false; ///< groups == channels when true.
    bool relu = true;    ///< Fused ReLU.
    int quant_bits = 0;  ///< 0 = float; 8 = int8 fake-quantization.
    uint64_t seed = 1;   ///< Weight init seed.
};

/**
 * A 2-D convolution over a CHW tensor with 'same' padding
 * (floor(kernel / 2)) and He-initialized weights.
 */
class Conv2d : public Layer
{
  public:
    Conv2d(std::string name, const ConvSpec &spec);

    using Layer::forward;
    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 const ExecContext &ctx) const override;
    Shape outputShape() const override;
    LayerKind kind() const override;
    long long macs() const override;
    long long paramCount() const override;
    LayerWorkload workload() const override;

    /** Direct weight access: [c_out][c_in_per_group][ky][kx]. */
    std::vector<float> &weights() { return weights_; }
    /** Direct weight access (const). */
    const std::vector<float> &weights() const { return weights_; }
    /** Per-output-channel bias. */
    std::vector<float> &bias() { return bias_; }
    /** Per-output-channel bias (const). */
    const std::vector<float> &bias() const { return bias_; }

    /** The construction spec. */
    const ConvSpec &spec() const { return spec_; }

  private:
    ConvSpec spec_;
    int group_channels_; ///< Input channels per group.
    std::vector<float> weights_;
    std::vector<float> bias_;
};

/**
 * A fully-connected layer over a flattened tensor.
 */
class FullyConnected : public Layer
{
  public:
    /**
     * @param in input shape (flattened to c*h*w features).
     * @param out_features output width.
     */
    FullyConnected(std::string name, Shape in, int out_features,
                   bool relu = false, int quant_bits = 0,
                   uint64_t seed = 1);

    using Layer::forward;
    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 const ExecContext &ctx) const override;
    Shape outputShape() const override;
    LayerKind kind() const override { return LayerKind::FullyConnected; }
    long long macs() const override;
    long long paramCount() const override;
    LayerWorkload workload() const override;

  private:
    Shape in_;
    int in_features_;
    int out_features_;
    bool relu_;
    int quant_bits_;
    std::vector<float> weights_; ///< [out][in].
    std::vector<float> bias_;
};

/**
 * Matrix-matrix multiplication with a learned right operand, treated
 * by the paper as point-wise convolution with batch > 1: the input is
 * (rows x 1 x k) and the layer computes (rows x 1 x cols).
 *
 * This is the layer type the FlatCam image reconstruction lowers to.
 */
class MatMul : public Layer
{
  public:
    MatMul(std::string name, int rows, int k, int cols,
           uint64_t seed = 1);

    using Layer::forward;
    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 const ExecContext &ctx) const override;
    Shape outputShape() const override;
    LayerKind kind() const override { return LayerKind::MatMul; }
    long long macs() const override;
    long long paramCount() const override;
    LayerWorkload workload() const override;

  private:
    int rows_, k_, cols_;
    std::vector<float> weights_; ///< [k][cols].
};

} // namespace nn
} // namespace eyecod

#endif // EYECOD_NN_CONV_H
