#include "nn/graph.h"

#include "common/logging.h"
#include "nn/runtime.h"

namespace eyecod {
namespace nn {

int
Graph::addInput(Shape shape, std::string name)
{
    Node node;
    node.shape = shape;
    node.input_name = std::move(name);
    nodes_.push_back(std::move(node));
    const int id = int(nodes_.size()) - 1;
    input_ids_.push_back(id);
    return id;
}

int
Graph::add(LayerPtr layer, std::vector<int> inputs)
{
    eyecod_assert(layer != nullptr, "null layer added to %s",
                  name_.c_str());
    for (int id : inputs) {
        eyecod_assert(id >= 0 && size_t(id) < nodes_.size(),
                      "graph %s: layer %s consumes unknown node %d",
                      name_.c_str(), layer->name().c_str(), id);
    }
    Node node;
    node.shape = layer->outputShape();
    node.layer = std::move(layer);
    node.inputs = std::move(inputs);
    nodes_.push_back(std::move(node));
    return int(nodes_.size()) - 1;
}

Tensor
Graph::forward(const std::vector<Tensor> &inputs) const
{
    const ExecutionPlan plan(*this);
    SerialBackend backend;
    return backend.run(plan, inputs);
}

Shape
Graph::outputShape() const
{
    eyecod_assert(!nodes_.empty(), "empty graph %s", name_.c_str());
    return nodes_.back().shape;
}

Shape
Graph::nodeShape(int id) const
{
    eyecod_assert(id >= 0 && size_t(id) < nodes_.size(),
                  "nodeShape: unknown node %d", id);
    return nodes_[size_t(id)].shape;
}

long long
Graph::totalMacs() const
{
    long long acc = 0;
    for (const Node &node : nodes_)
        if (node.layer)
            acc += node.layer->macs();
    return acc;
}

long long
Graph::totalParams() const
{
    long long acc = 0;
    for (const Node &node : nodes_)
        if (node.layer)
            acc += node.layer->paramCount();
    return acc;
}

std::map<LayerKind, long long>
Graph::macsByKind() const
{
    std::map<LayerKind, long long> out;
    for (const Node &node : nodes_)
        if (node.layer)
            out[node.layer->kind()] += node.layer->macs();
    return out;
}

std::vector<LayerWorkload>
Graph::workloads() const
{
    std::vector<LayerWorkload> out;
    for (const Node &node : nodes_) {
        if (!node.layer)
            continue;
        LayerWorkload w = node.layer->workload();
        // Fill input extent from the first producer when the layer
        // did not set it.
        if (w.h_in == 0 && !node.inputs.empty()) {
            const Shape in = nodes_[size_t(node.inputs[0])].shape;
            w.c_in = in.c;
            w.h_in = in.h;
            w.w_in = in.w;
        }
        out.push_back(std::move(w));
    }
    return out;
}

size_t
Graph::numLayers() const
{
    size_t n = 0;
    for (const Node &node : nodes_)
        if (node.layer)
            ++n;
    return n;
}

bool
Graph::isInput(int id) const
{
    eyecod_assert(id >= 0 && size_t(id) < nodes_.size(),
                  "isInput: unknown node %d", id);
    return nodes_[size_t(id)].layer == nullptr;
}

const Layer *
Graph::nodeLayer(int id) const
{
    eyecod_assert(id >= 0 && size_t(id) < nodes_.size(),
                  "nodeLayer: unknown node %d", id);
    return nodes_[size_t(id)].layer.get();
}

const std::vector<int> &
Graph::nodeInputs(int id) const
{
    eyecod_assert(id >= 0 && size_t(id) < nodes_.size(),
                  "nodeInputs: unknown node %d", id);
    return nodes_[size_t(id)].inputs;
}

} // namespace nn
} // namespace eyecod
