/**
 * @file
 * Post-training symmetric quantization helpers.
 *
 * The paper deploys both RITNet and FBNet-C100 in 8-bit; the engine
 * models this with symmetric per-tensor fake quantization (values are
 * snapped to the int grid but kept in float storage), which reproduces
 * the numerical error of int8 deployment while keeping a single
 * execution path.
 */

#ifndef EYECOD_NN_QUANTIZE_H
#define EYECOD_NN_QUANTIZE_H

#include <vector>

#include "nn/tensor.h"

namespace eyecod {
namespace nn {

/** Symmetric per-tensor quantization parameters. */
struct QuantParams
{
    float scale = 1.0f; ///< Step size; value = q * scale.
    int bits = 8;       ///< Bit width.

    /** Largest representable magnitude. */
    float maxValue() const
    {
        return scale * float((1 << (bits - 1)) - 1);
    }
};

/**
 * Choose a symmetric scale covering the max-abs of @p values.
 */
QuantParams chooseQuantParams(const std::vector<float> &values,
                              int bits);

/** Snap one value to the quantization grid. */
float fakeQuantize(float v, const QuantParams &qp);

/** Snap a buffer in place to the quantization grid. */
void fakeQuantize(std::vector<float> &values, const QuantParams &qp);

/**
 * Quantize-dequantize a whole tensor in place with a fresh per-tensor
 * scale; returns the parameters used.
 */
QuantParams fakeQuantizeTensor(Tensor &t, int bits);

/** Mean squared quantization error of snapping @p values to @p qp. */
double quantizationMse(const std::vector<float> &values,
                       const QuantParams &qp);

} // namespace nn
} // namespace eyecod

#endif // EYECOD_NN_QUANTIZE_H
