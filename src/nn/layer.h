/**
 * @file
 * Layer abstraction of the functional DNN engine plus the workload
 * descriptor consumed by the accelerator compiler.
 *
 * FLOPs convention: following the paper (and the common convention in
 * the efficient-DNN literature it cites), "FLOPs" counts one
 * multiply-accumulate as one operation, so ResNet18 at 224x224 is
 * 1.82 GFLOPs.
 */

#ifndef EYECOD_NN_LAYER_H
#define EYECOD_NN_LAYER_H

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace eyecod {

class ThreadPool;

namespace nn {

/**
 * Per-execution context handed to Layer::forward. Carries the
 * parallel substrate of the executing backend; a null pool (the
 * default) means serial reference execution.
 */
struct ExecContext
{
    ThreadPool *pool = nullptr; ///< Null for serial execution.
    /**
     * Finite-check mode: the executing backend scans every step
     * output for NaN/Inf and surfaces the first offender as a typed
     * NonFinite error instead of letting poisoned activations flow
     * into the gaze output. Set via Backend::runChecked.
     */
    bool finite_checks = false;

    /**
     * Run @p body over [0, n) in chunks of at most @p grain. Serial
     * (one chunk-at-a-time, in order) when pool is null; otherwise
     * delegates to the pool, whose chunk boundaries are independent
     * of thread count. Chunks must write disjoint outputs.
     *
     * Templated on the body so the serial path invokes the lambda
     * directly — no std::function wrapper, no heap allocation per
     * call (the serial backend's steady-state zero-alloc contract).
     * The pool path type-erases once per call, on top of the pool's
     * own dispatch cost.
     */
    template <typename Body>
    void
    parallelFor(long n, long grain, const Body &body) const
    {
        if (pool) {
            poolParallelFor(n, grain, body);
            return;
        }
        if (grain < 1)
            grain = 1;
        for (long begin = 0; begin < n; begin += grain)
            body(begin, std::min(n, begin + grain));
    }

    /** Worker count of the backing pool (1 when serial). */
    int concurrency() const;

  private:
    /** Pool-backed dispatch (type-erasing); pool must be non-null. */
    void poolParallelFor(long n, long grain,
                         const std::function<void(long, long)> &body)
        const;
};

/** The layer taxonomy of Sec. 5.1 Challenge #II. */
enum class LayerKind {
    ConvGeneric,   ///< KxK convolution, K > 1, groups == 1.
    ConvPointwise, ///< 1x1 convolution.
    ConvDepthwise, ///< KxK convolution with groups == channels.
    FullyConnected,
    MatMul,        ///< Matrix-matrix multiplication (batched 1x1).
    Pool,
    Upsample,
    Concat,
    Add,
    BatchNorm,
    Activation,
};

/** Human-readable name of a LayerKind. */
const char *layerKindName(LayerKind kind);

/** True for the three kinds executed on the MAC array. */
bool isMacKind(LayerKind kind);

/**
 * Per-layer workload record handed to the accelerator compiler; all
 * byte counts assume the 8-bit deployment datatype.
 */
struct LayerWorkload
{
    std::string name;      ///< Layer name within its graph.
    LayerKind kind = LayerKind::ConvGeneric;
    int c_in = 0;          ///< Input channels.
    int c_out = 0;         ///< Output channels.
    int kernel = 1;        ///< Kernel size (square).
    int stride = 1;        ///< Spatial stride.
    int h_in = 0, w_in = 0;   ///< Input feature map extent.
    int h_out = 0, w_out = 0; ///< Output feature map extent.
    long long macs = 0;    ///< Multiply-accumulate count.
    long long params = 0;  ///< Weight element count.

    /** Input activation bytes (8-bit). */
    long long inActBytes() const
    {
        return (long long)c_in * h_in * w_in;
    }
    /** Output activation bytes (8-bit). */
    long long outActBytes() const
    {
        return (long long)c_out * h_out * w_out;
    }
    /** Weight bytes (8-bit). */
    long long weightBytes() const { return params; }
};

/**
 * Base class for all functional layers.
 */
class Layer
{
  public:
    /** @param name unique layer name within its graph. */
    explicit Layer(std::string name) : name_(std::move(name)) {}
    virtual ~Layer() = default;

    Layer(const Layer &) = delete;
    Layer &operator=(const Layer &) = delete;

    /**
     * Execute the layer, writing into @p out.
     *
     * @p out arrives already reset() to outputShape(); its previous
     * contents are unspecified (it may be a reused arena slot), so
     * implementations must write every element. @p out is guaranteed
     * not to alias any input. @p ctx supplies the backend's parallel
     * substrate; implementations may ignore it.
     */
    virtual void forward(const std::vector<const Tensor *> &in,
                         Tensor &out, const ExecContext &ctx) const = 0;

    /**
     * Compatibility shim: allocate-and-return serial execution.
     * Prefer the planned runtime (nn::ExecutionPlan + nn::Backend)
     * for whole-graph inference.
     */
    Tensor forward(const std::vector<const Tensor *> &in) const;

    /** Output shape given the construction-time input shapes. */
    virtual Shape outputShape() const = 0;

    /** Layer taxonomy bucket. */
    virtual LayerKind kind() const = 0;

    /** Multiply-accumulate count of one inference. */
    virtual long long macs() const { return 0; }

    /** Trainable parameter count. */
    virtual long long paramCount() const { return 0; }

    /** Workload record for the accelerator compiler. */
    virtual LayerWorkload workload() const;

    /** Layer name. */
    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

using LayerPtr = std::unique_ptr<Layer>;

} // namespace nn
} // namespace eyecod

#endif // EYECOD_NN_LAYER_H
