#include "nn/conv.h"

#include <cmath>

#include "common/logging.h"

namespace eyecod {
namespace nn {

namespace {

/** He-initialize a weight buffer and optionally fake-quantize it. */
void
initWeights(std::vector<float> &w, double fan_in, uint64_t seed,
            int quant_bits)
{
    Rng rng(seed);
    const double stddev = std::sqrt(2.0 / std::max(1.0, fan_in));
    for (float &v : w)
        v = float(rng.gaussian(0.0, stddev));
    if (quant_bits > 0) {
        const QuantParams qp = chooseQuantParams(w, quant_bits);
        fakeQuantize(w, qp);
    }
}

} // namespace

Conv2d::Conv2d(std::string name, const ConvSpec &spec)
    : Layer(std::move(name)), spec_(spec)
{
    eyecod_assert(spec_.in.c > 0 && spec_.out_channels > 0 &&
                  spec_.kernel > 0 && spec_.stride > 0,
                  "invalid conv spec for %s", this->name().c_str());
    if (spec_.depthwise) {
        eyecod_assert(spec_.out_channels == spec_.in.c,
                      "depthwise conv %s must keep channel count "
                      "(%d != %d)", this->name().c_str(),
                      spec_.out_channels, spec_.in.c);
        group_channels_ = 1;
    } else {
        group_channels_ = spec_.in.c;
    }
    weights_.resize(size_t(spec_.out_channels) * group_channels_ *
                    spec_.kernel * spec_.kernel);
    bias_.resize(size_t(spec_.out_channels), 0.0f);
    initWeights(weights_,
                double(group_channels_) * spec_.kernel * spec_.kernel,
                spec_.seed, spec_.quant_bits);
}

Shape
Conv2d::outputShape() const
{
    // 'Same' padding: out = ceil(in / stride).
    return Shape{spec_.out_channels,
                 (spec_.in.h + spec_.stride - 1) / spec_.stride,
                 (spec_.in.w + spec_.stride - 1) / spec_.stride};
}

LayerKind
Conv2d::kind() const
{
    if (spec_.depthwise)
        return LayerKind::ConvDepthwise;
    if (spec_.kernel == 1)
        return LayerKind::ConvPointwise;
    return LayerKind::ConvGeneric;
}

long long
Conv2d::macs() const
{
    const Shape out = outputShape();
    return (long long)out.c * out.h * out.w * group_channels_ *
           spec_.kernel * spec_.kernel;
}

long long
Conv2d::paramCount() const
{
    return (long long)weights_.size() + (long long)bias_.size();
}

LayerWorkload
Conv2d::workload() const
{
    LayerWorkload w = Layer::workload();
    w.c_in = spec_.in.c;
    w.kernel = spec_.kernel;
    w.stride = spec_.stride;
    w.h_in = spec_.in.h;
    w.w_in = spec_.in.w;
    return w;
}

Tensor
Conv2d::forward(const std::vector<const Tensor *> &in) const
{
    eyecod_assert(in.size() == 1, "conv %s expects one input",
                  name().c_str());
    const Tensor &x = *in[0];
    eyecod_assert(x.shape() == spec_.in,
                  "conv %s input shape mismatch", name().c_str());

    Tensor input = x;
    if (spec_.quant_bits > 0)
        fakeQuantizeTensor(input, spec_.quant_bits);

    const Shape out_shape = outputShape();
    Tensor out(out_shape);
    const int k = spec_.kernel;
    const int s = spec_.stride;
    const int pad = k / 2;
    const int kk = k * k;

    for (int oc = 0; oc < out_shape.c; ++oc) {
        const int ic_begin = spec_.depthwise ? oc : 0;
        const int ic_count = group_channels_;
        const float *wbase =
            &weights_[size_t(oc) * ic_count * kk];
        for (int oy = 0; oy < out_shape.h; ++oy) {
            for (int ox = 0; ox < out_shape.w; ++ox) {
                double acc = bias_[size_t(oc)];
                for (int g = 0; g < ic_count; ++g) {
                    const int ic = ic_begin + g;
                    const float *wk = wbase + size_t(g) * kk;
                    for (int ky = 0; ky < k; ++ky) {
                        const int iy = oy * s + ky - pad;
                        if (iy < 0 || iy >= spec_.in.h)
                            continue;
                        for (int kx = 0; kx < k; ++kx) {
                            const int ix = ox * s + kx - pad;
                            if (ix < 0 || ix >= spec_.in.w)
                                continue;
                            acc += wk[ky * k + kx] *
                                   input.at(ic, iy, ix);
                        }
                    }
                }
                if (spec_.relu && acc < 0.0)
                    acc = 0.0;
                out.at(oc, oy, ox) = float(acc);
            }
        }
    }
    return out;
}

FullyConnected::FullyConnected(std::string name, Shape in,
                               int out_features, bool relu,
                               int quant_bits, uint64_t seed)
    : Layer(std::move(name)), in_(in),
      in_features_(int(in.size())), out_features_(out_features),
      relu_(relu), quant_bits_(quant_bits)
{
    eyecod_assert(out_features > 0, "fc %s needs positive width",
                  this->name().c_str());
    weights_.resize(size_t(out_features_) * in_features_);
    bias_.resize(size_t(out_features_), 0.0f);
    initWeights(weights_, double(in_features_), seed, quant_bits);
}

Shape
FullyConnected::outputShape() const
{
    return Shape{1, 1, out_features_};
}

long long
FullyConnected::macs() const
{
    return (long long)in_features_ * out_features_;
}

long long
FullyConnected::paramCount() const
{
    return (long long)weights_.size() + (long long)bias_.size();
}

LayerWorkload
FullyConnected::workload() const
{
    LayerWorkload w = Layer::workload();
    w.c_in = in_features_;
    w.h_in = 1;
    w.w_in = 1;
    w.kernel = 1;
    return w;
}

Tensor
FullyConnected::forward(const std::vector<const Tensor *> &in) const
{
    eyecod_assert(in.size() == 1, "fc %s expects one input",
                  name().c_str());
    const Tensor &x = *in[0];
    eyecod_assert(int(x.size()) == in_features_,
                  "fc %s input size %zu != %d", name().c_str(),
                  x.size(), in_features_);

    std::vector<float> input = x.data();
    if (quant_bits_ > 0) {
        const QuantParams qp = chooseQuantParams(input, quant_bits_);
        fakeQuantize(input, qp);
    }

    Tensor out(outputShape());
    for (int o = 0; o < out_features_; ++o) {
        double acc = bias_[size_t(o)];
        const float *wrow = &weights_[size_t(o) * in_features_];
        for (int i = 0; i < in_features_; ++i)
            acc += wrow[i] * input[size_t(i)];
        if (relu_ && acc < 0.0)
            acc = 0.0;
        out.at(0, 0, o) = float(acc);
    }
    return out;
}

MatMul::MatMul(std::string name, int rows, int k, int cols,
               uint64_t seed)
    : Layer(std::move(name)), rows_(rows), k_(k), cols_(cols)
{
    eyecod_assert(rows > 0 && k > 0 && cols > 0,
                  "matmul %s needs positive dims", this->name().c_str());
    weights_.resize(size_t(k_) * cols_);
    initWeights(weights_, double(k_), seed, 0);
}

Shape
MatMul::outputShape() const
{
    return Shape{rows_, 1, cols_};
}

long long
MatMul::macs() const
{
    return (long long)rows_ * k_ * cols_;
}

long long
MatMul::paramCount() const
{
    return (long long)weights_.size();
}

LayerWorkload
MatMul::workload() const
{
    LayerWorkload w = Layer::workload();
    w.c_in = k_;
    w.h_in = rows_;
    w.w_in = 1;
    w.kernel = 1;
    return w;
}

Tensor
MatMul::forward(const std::vector<const Tensor *> &in) const
{
    eyecod_assert(in.size() == 1, "matmul %s expects one input",
                  name().c_str());
    const Tensor &x = *in[0];
    eyecod_assert(x.shape().c == rows_ && x.shape().w == k_ &&
                  x.shape().h == 1,
                  "matmul %s input shape mismatch", name().c_str());
    Tensor out(outputShape());
    for (int r = 0; r < rows_; ++r) {
        for (int c = 0; c < cols_; ++c) {
            double acc = 0.0;
            for (int i = 0; i < k_; ++i)
                acc += x.at(r, 0, i) * weights_[size_t(i) * cols_ + c];
            out.at(r, 0, c) = float(acc);
        }
    }
    return out;
}

} // namespace nn
} // namespace eyecod
