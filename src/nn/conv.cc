#include "nn/conv.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace eyecod {
namespace nn {

namespace {

/** He-initialize a weight buffer and optionally fake-quantize it. */
void
initWeights(std::vector<float> &w, double fan_in, uint64_t seed,
            int quant_bits)
{
    Rng rng(seed);
    const double stddev = std::sqrt(2.0 / std::max(1.0, fan_in));
    for (float &v : w)
        v = float(rng.gaussian(0.0, stddev));
    if (quant_bits > 0) {
        const QuantParams qp = chooseQuantParams(w, quant_bits);
        fakeQuantize(w, qp);
    }
}

/**
 * Per-thread accumulator scratch for the conv kernels, grown to at
 * least @p count doubles and reused across calls. Hoisting it out of
 * the parallelFor chunk lambdas keeps the steady-state inference
 * path free of heap allocations (each worker thread reuses its own
 * buffer; contents are overwritten before every use).
 */
std::vector<double> &
accScratch(size_t count)
{
    thread_local std::vector<double> acc;
    if (acc.size() < count)
        acc.resize(count);
    return acc;
}

} // namespace

Conv2d::Conv2d(std::string name, const ConvSpec &spec)
    : Layer(std::move(name)), spec_(spec)
{
    eyecod_assert(spec_.in.c > 0 && spec_.out_channels > 0 &&
                  spec_.kernel > 0 && spec_.stride > 0,
                  "invalid conv spec for %s", this->name().c_str());
    if (spec_.depthwise) {
        eyecod_assert(spec_.out_channels == spec_.in.c,
                      "depthwise conv %s must keep channel count "
                      "(%d != %d)", this->name().c_str(),
                      spec_.out_channels, spec_.in.c);
        group_channels_ = 1;
    } else {
        group_channels_ = spec_.in.c;
    }
    weights_.resize(size_t(spec_.out_channels) * group_channels_ *
                    spec_.kernel * spec_.kernel);
    bias_.resize(size_t(spec_.out_channels), 0.0f);
    initWeights(weights_,
                double(group_channels_) * spec_.kernel * spec_.kernel,
                spec_.seed, spec_.quant_bits);
}

Shape
Conv2d::outputShape() const
{
    // 'Same' padding: out = ceil(in / stride).
    return Shape{spec_.out_channels,
                 (spec_.in.h + spec_.stride - 1) / spec_.stride,
                 (spec_.in.w + spec_.stride - 1) / spec_.stride};
}

LayerKind
Conv2d::kind() const
{
    if (spec_.depthwise)
        return LayerKind::ConvDepthwise;
    if (spec_.kernel == 1)
        return LayerKind::ConvPointwise;
    return LayerKind::ConvGeneric;
}

long long
Conv2d::macs() const
{
    const Shape out = outputShape();
    return (long long)out.c * out.h * out.w * group_channels_ *
           spec_.kernel * spec_.kernel;
}

long long
Conv2d::paramCount() const
{
    return (long long)weights_.size() + (long long)bias_.size();
}

LayerWorkload
Conv2d::workload() const
{
    LayerWorkload w = Layer::workload();
    w.c_in = spec_.in.c;
    w.kernel = spec_.kernel;
    w.stride = spec_.stride;
    w.h_in = spec_.in.h;
    w.w_in = spec_.in.w;
    return w;
}

void
Conv2d::forward(const std::vector<const Tensor *> &in, Tensor &out,
                const ExecContext &ctx) const
{
    eyecod_assert(in.size() == 1, "conv %s expects one input",
                  name().c_str());
    const Tensor &x = *in[0];
    eyecod_assert(x.shape() == spec_.in,
                  "conv %s input shape mismatch", name().c_str());
    const Shape out_shape = outputShape();
    eyecod_assert(out.shape() == out_shape,
                  "conv %s output shape mismatch", name().c_str());

    const Tensor *src = &x;
    Tensor quantized;
    if (spec_.quant_bits > 0) {
        quantized = x;
        fakeQuantizeTensor(quantized, spec_.quant_bits);
        src = &quantized;
    }
    const float *in_data = src->data().data();
    float *out_data = out.data().data();

    const int k = spec_.kernel;
    const int s = spec_.stride;
    const int pad = k / 2;
    const int kk = k * k;
    const int in_h = spec_.in.h;
    const int in_w = spec_.in.w;
    const size_t in_plane = size_t(in_h) * in_w;
    const size_t out_plane = size_t(out_shape.h) * out_shape.w;
    const int ic_count = group_channels_;
    const bool relu = spec_.relu;

    if (k == 1 && !spec_.depthwise) {
        // Point-wise: an ic-major SAXPY into a per-channel double
        // accumulator plane. The per-element accumulation order
        // (bias, then ascending ic) matches the generic nest, so the
        // result is bitwise identical to it.
        ctx.parallelFor(out_shape.c, 1, [&](long oc_begin,
                                            long oc_end) {
            std::vector<double> &acc = accScratch(out_plane);
            for (long oc = oc_begin; oc < oc_end; ++oc) {
                std::fill(acc.data(), acc.data() + out_plane,
                          double(bias_[size_t(oc)]));
                const float *wrow =
                    &weights_[size_t(oc) * ic_count];
                for (int ic = 0; ic < ic_count; ++ic) {
                    const double w = wrow[ic];
                    const float *iplane = in_data + size_t(ic) *
                                          in_plane;
                    if (s == 1) {
                        for (size_t p = 0; p < out_plane; ++p)
                            acc[p] += w * iplane[p];
                    } else {
                        for (int oy = 0; oy < out_shape.h; ++oy) {
                            const float *irow =
                                iplane + size_t(oy) * s * in_w;
                            double *arow =
                                acc.data() + size_t(oy) * out_shape.w;
                            for (int ox = 0; ox < out_shape.w; ++ox)
                                arow[ox] += w * irow[ox * s];
                        }
                    }
                }
                float *oplane = out_data + size_t(oc) * out_plane;
                for (size_t p = 0; p < out_plane; ++p) {
                    double v = acc[p];
                    if (relu && v < 0.0)
                        v = 0.0;
                    oplane[p] = float(v);
                }
            }
        });
        return;
    }

    // Generic / depth-wise KxK: parallel over (oc, oy) output rows.
    // Each row keeps a double accumulator over ox; every (g, ky, kx)
    // tap is applied to its valid ox range as one SAXPY over a
    // contiguous input row (for stride 1), which vectorizes. Per
    // output element the taps still arrive in ascending (g, ky, kx)
    // order over in-bounds positions, so the result is bitwise
    // identical to the original bounds-checked scalar nest.
    const long rows = long(out_shape.c) * out_shape.h;
    const long grain =
        std::max(1L, rows / (long(ctx.concurrency()) * 8));
    ctx.parallelFor(rows, grain, [&](long begin, long end) {
        std::vector<double> &acc = accScratch(size_t(out_shape.w));
        for (long r = begin; r < end; ++r) {
            const int oc = int(r / out_shape.h);
            const int oy = int(r % out_shape.h);
            const int ic_begin = spec_.depthwise ? oc : 0;
            const float *wbase =
                &weights_[size_t(oc) * ic_count * kk];
            float *orow = out_data + size_t(oc) * out_plane +
                          size_t(oy) * out_shape.w;
            const int ky_lo = std::max(0, pad - oy * s);
            const int ky_hi = std::min(k, in_h + pad - oy * s);
            std::fill(acc.data(), acc.data() + out_shape.w,
                      double(bias_[size_t(oc)]));
            for (int g = 0; g < ic_count; ++g) {
                const float *iplane =
                    in_data + size_t(ic_begin + g) * in_plane;
                const float *wk = wbase + size_t(g) * kk;
                for (int ky = ky_lo; ky < ky_hi; ++ky) {
                    const int iy = oy * s + ky - pad;
                    const float *irow = iplane + size_t(iy) * in_w;
                    const float *wrow = wk + ky * k;
                    for (int kx = 0; kx < k; ++kx) {
                        const double w = wrow[kx];
                        const int shift = kx - pad;
                        // ox range with ox*s + shift inside [0,in_w).
                        const int ox_lo = shift < 0
                            ? (-shift + s - 1) / s : 0;
                        const int ox_hi = std::min(
                            out_shape.w, (in_w - 1 - shift) / s + 1);
                        if (ox_hi <= ox_lo)
                            continue;
                        if (s == 1) {
                            const float *ir = irow + shift + ox_lo;
                            double *ar = acc.data() + ox_lo;
                            const int span = ox_hi - ox_lo;
                            for (int t = 0; t < span; ++t)
                                ar[t] += w * ir[t];
                        } else {
                            for (int ox = ox_lo; ox < ox_hi; ++ox)
                                acc[size_t(ox)] +=
                                    w * irow[ox * s + shift];
                        }
                    }
                }
            }
            for (int ox = 0; ox < out_shape.w; ++ox) {
                double v = acc[size_t(ox)];
                if (relu && v < 0.0)
                    v = 0.0;
                orow[ox] = float(v);
            }
        }
    });
}

FullyConnected::FullyConnected(std::string name, Shape in,
                               int out_features, bool relu,
                               int quant_bits, uint64_t seed)
    : Layer(std::move(name)), in_(in),
      in_features_(int(in.size())), out_features_(out_features),
      relu_(relu), quant_bits_(quant_bits)
{
    eyecod_assert(out_features > 0, "fc %s needs positive width",
                  this->name().c_str());
    weights_.resize(size_t(out_features_) * in_features_);
    bias_.resize(size_t(out_features_), 0.0f);
    initWeights(weights_, double(in_features_), seed, quant_bits);
}

Shape
FullyConnected::outputShape() const
{
    return Shape{1, 1, out_features_};
}

long long
FullyConnected::macs() const
{
    return (long long)in_features_ * out_features_;
}

long long
FullyConnected::paramCount() const
{
    return (long long)weights_.size() + (long long)bias_.size();
}

LayerWorkload
FullyConnected::workload() const
{
    LayerWorkload w = Layer::workload();
    w.c_in = in_features_;
    w.h_in = 1;
    w.w_in = 1;
    w.kernel = 1;
    return w;
}

void
FullyConnected::forward(const std::vector<const Tensor *> &in,
                        Tensor &out, const ExecContext &ctx) const
{
    eyecod_assert(in.size() == 1, "fc %s expects one input",
                  name().c_str());
    const Tensor &x = *in[0];
    eyecod_assert(int(x.size()) == in_features_,
                  "fc %s input size %zu != %d", name().c_str(),
                  x.size(), in_features_);
    eyecod_assert(out.shape() == outputShape(),
                  "fc %s output shape mismatch", name().c_str());

    const float *input_data = x.data().data();
    std::vector<float> quantized;
    if (quant_bits_ > 0) {
        quantized = x.data();
        const QuantParams qp =
            chooseQuantParams(quantized, quant_bits_);
        fakeQuantize(quantized, qp);
        input_data = quantized.data();
    }

    const long grain =
        std::max(1L, long(out_features_) /
                         (long(ctx.concurrency()) * 4));
    ctx.parallelFor(out_features_, grain, [&](long begin, long end) {
        for (long o = begin; o < end; ++o) {
            double acc = bias_[size_t(o)];
            const float *wrow = &weights_[size_t(o) * in_features_];
            for (int i = 0; i < in_features_; ++i)
                acc += wrow[i] * input_data[size_t(i)];
            if (relu_ && acc < 0.0)
                acc = 0.0;
            out.at(0, 0, int(o)) = float(acc);
        }
    });
}

MatMul::MatMul(std::string name, int rows, int k, int cols,
               uint64_t seed)
    : Layer(std::move(name)), rows_(rows), k_(k), cols_(cols)
{
    eyecod_assert(rows > 0 && k > 0 && cols > 0,
                  "matmul %s needs positive dims", this->name().c_str());
    weights_.resize(size_t(k_) * cols_);
    initWeights(weights_, double(k_), seed, 0);
}

Shape
MatMul::outputShape() const
{
    return Shape{rows_, 1, cols_};
}

long long
MatMul::macs() const
{
    return (long long)rows_ * k_ * cols_;
}

long long
MatMul::paramCount() const
{
    return (long long)weights_.size();
}

LayerWorkload
MatMul::workload() const
{
    LayerWorkload w = Layer::workload();
    w.c_in = k_;
    w.h_in = rows_;
    w.w_in = 1;
    w.kernel = 1;
    return w;
}

void
MatMul::forward(const std::vector<const Tensor *> &in, Tensor &out,
                const ExecContext &ctx) const
{
    eyecod_assert(in.size() == 1, "matmul %s expects one input",
                  name().c_str());
    const Tensor &x = *in[0];
    eyecod_assert(x.shape().c == rows_ && x.shape().w == k_ &&
                  x.shape().h == 1,
                  "matmul %s input shape mismatch", name().c_str());
    eyecod_assert(out.shape() == outputShape(),
                  "matmul %s output shape mismatch", name().c_str());

    // Row blocks: each output row is one independent dot-product fan.
    const long grain =
        std::max(1L, long(rows_) / (long(ctx.concurrency()) * 4));
    ctx.parallelFor(rows_, grain, [&](long begin, long end) {
        for (long r = begin; r < end; ++r) {
            for (int c = 0; c < cols_; ++c) {
                double acc = 0.0;
                for (int i = 0; i < k_; ++i)
                    acc += x.at(int(r), 0, i) *
                           weights_[size_t(i) * cols_ + c];
                out.at(int(r), 0, c) = float(acc);
            }
        }
    });
}

} // namespace nn
} // namespace eyecod
