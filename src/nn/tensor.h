/**
 * @file
 * CHW float tensor used by the functional DNN inference engine.
 *
 * The engine processes single frames (batch 1), so a rank-3
 * channels x height x width layout covers every layer in the paper's
 * two networks; fully-connected and matrix-matrix layers view the
 * tensor as (1 x 1 x features) or (rows x 1 x cols).
 */

#ifndef EYECOD_NN_TENSOR_H
#define EYECOD_NN_TENSOR_H

#include <cstddef>
#include <vector>

#include "common/image.h"
#include "common/rng.h"

namespace eyecod {
namespace nn {

/** Shape of a CHW tensor. */
struct Shape
{
    int c = 1; ///< Channels.
    int h = 1; ///< Height.
    int w = 1; ///< Width.

    /** Total element count. */
    size_t size() const { return size_t(c) * size_t(h) * size_t(w); }

    bool
    operator==(const Shape &o) const
    {
        return c == o.c && h == o.h && w == o.w;
    }
};

/**
 * A dense CHW float tensor.
 */
class Tensor
{
  public:
    /** An empty tensor. */
    Tensor() = default;

    /** A zero-filled tensor of the given shape. */
    explicit Tensor(Shape shape, float fill = 0.0f);

    /** Shape accessor. */
    const Shape &shape() const { return shape_; }
    /** Total element count. */
    size_t size() const { return data_.size(); }

    /**
     * Rebind this tensor to @p shape for arena reuse. Storage shrinks
     * or grows to shape.size() but never releases capacity, so a slot
     * cycled through shapes no larger than its reserve() never
     * reallocates. Element contents are unspecified afterwards; every
     * layer writes its full output, which is what makes this safe.
     */
    void reset(Shape shape);

    /** Pre-allocate capacity for @p elements without changing shape. */
    void reserve(size_t elements) { data_.reserve(elements); }

    /** Mutable element access (no bounds check). */
    float &
    at(int c, int y, int x)
    {
        return data_[(size_t(c) * shape_.h + y) * shape_.w + x];
    }
    /** Const element access (no bounds check). */
    float
    at(int c, int y, int x) const
    {
        return data_[(size_t(c) * shape_.h + y) * shape_.w + x];
    }

    /** Element access with spatial border clamping (for conv edges). */
    float atClamped(int c, int y, int x) const;

    /** Raw storage. */
    std::vector<float> &data() { return data_; }
    /** Raw storage (const). */
    const std::vector<float> &data() const { return data_; }

    /** Build a 1-channel tensor from an Image. */
    static Tensor fromImage(const Image &img);

    /** Build a multi-channel tensor from per-channel Images. */
    static Tensor fromImages(const std::vector<Image> &channels);

    /** Extract one channel as an Image. */
    Image toImage(int channel = 0) const;

    /** Fill with He-initialized Gaussian values (seeded). */
    void randomInit(Rng &rng, double fan_in);

  private:
    Shape shape_;
    std::vector<float> data_;
};

} // namespace nn
} // namespace eyecod

#endif // EYECOD_NN_TENSOR_H
