#include "nn/quantize.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace eyecod {
namespace nn {

QuantParams
chooseQuantParams(const std::vector<float> &values, int bits)
{
    eyecod_assert(bits >= 2 && bits <= 16, "bad quant bits %d", bits);
    float max_abs = 0.0f;
    for (float v : values)
        max_abs = std::max(max_abs, std::fabs(v));
    QuantParams qp;
    qp.bits = bits;
    const int qmax = (1 << (bits - 1)) - 1;
    qp.scale = max_abs > 0.0f ? max_abs / float(qmax) : 1.0f;
    return qp;
}

float
fakeQuantize(float v, const QuantParams &qp)
{
    const int qmax = (1 << (qp.bits - 1)) - 1;
    const int qmin = -qmax - 1;
    const float q = std::round(v / qp.scale);
    const float clamped = std::clamp(q, float(qmin), float(qmax));
    return clamped * qp.scale;
}

void
fakeQuantize(std::vector<float> &values, const QuantParams &qp)
{
    for (float &v : values)
        v = fakeQuantize(v, qp);
}

QuantParams
fakeQuantizeTensor(Tensor &t, int bits)
{
    QuantParams qp = chooseQuantParams(t.data(), bits);
    fakeQuantize(t.data(), qp);
    return qp;
}

double
quantizationMse(const std::vector<float> &values, const QuantParams &qp)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (float v : values) {
        const double d = double(v) - double(fakeQuantize(v, qp));
        acc += d * d;
    }
    return acc / double(values.size());
}

} // namespace nn
} // namespace eyecod
