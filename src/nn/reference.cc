#include "nn/reference.h"

#include "common/logging.h"
#include "common/matrix.h"

namespace eyecod {
namespace nn {

Tensor
referenceConvForward(const Conv2d &conv, const Tensor &input)
{
    const ConvSpec &spec = conv.spec();
    eyecod_assert(input.shape() == spec.in,
                  "reference conv input shape mismatch");

    Tensor x = input;
    if (spec.quant_bits > 0)
        fakeQuantizeTensor(x, spec.quant_bits);

    const Shape out_shape = conv.outputShape();
    const int k = spec.kernel;
    const int s = spec.stride;
    const int pad = k / 2;
    const int groups = spec.depthwise ? spec.in.c : 1;
    const int cin_g = spec.in.c / groups;
    const int cout_g = out_shape.c / groups;
    const int pixels = out_shape.h * out_shape.w;

    Tensor out(out_shape);
    for (int g = 0; g < groups; ++g) {
        // im2col: one row per output pixel, one column per
        // (in-channel, ky, kx) tap of this group.
        const size_t cols = size_t(cin_g) * k * k;
        Matrix im(size_t(pixels), cols);
        for (int oy = 0; oy < out_shape.h; ++oy) {
            for (int ox = 0; ox < out_shape.w; ++ox) {
                const size_t row = size_t(oy) * out_shape.w + ox;
                size_t col = 0;
                for (int c = 0; c < cin_g; ++c) {
                    const int ic = g * cin_g + c;
                    for (int ky = 0; ky < k; ++ky) {
                        for (int kx = 0; kx < k; ++kx) {
                            const int iy = oy * s + ky - pad;
                            const int ix = ox * s + kx - pad;
                            double v = 0.0;
                            if (iy >= 0 && iy < spec.in.h &&
                                ix >= 0 && ix < spec.in.w)
                                v = x.at(ic, iy, ix);
                            im(row, col++) = v;
                        }
                    }
                }
            }
        }
        // Weight matrix: (taps) x (group output channels).
        Matrix wm(cols, size_t(cout_g));
        const std::vector<float> &weights = conv.weights();
        for (int oc = 0; oc < cout_g; ++oc) {
            const size_t base =
                (size_t(g) * cout_g + oc) * cols;
            for (size_t t = 0; t < cols; ++t)
                wm(t, size_t(oc)) = weights[base + t];
        }
        const Matrix prod = im.multiply(wm);
        const std::vector<float> &bias = conv.bias();
        for (int oc = 0; oc < cout_g; ++oc) {
            const int o = g * cout_g + oc;
            for (int p = 0; p < pixels; ++p) {
                double v = prod(size_t(p), size_t(oc)) +
                           bias[size_t(o)];
                if (spec.relu && v < 0.0)
                    v = 0.0;
                out.at(o, p / out_shape.w, p % out_shape.w) =
                    float(v);
            }
        }
    }
    return out;
}

} // namespace nn
} // namespace eyecod
