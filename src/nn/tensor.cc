#include "nn/tensor.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace eyecod {
namespace nn {

Tensor::Tensor(Shape shape, float fill)
    : shape_(shape), data_(shape.size(), fill)
{
    eyecod_assert(shape.c > 0 && shape.h > 0 && shape.w > 0,
                  "tensor shape must be positive, got %dx%dx%d",
                  shape.c, shape.h, shape.w);
}

void
Tensor::reset(Shape shape)
{
    eyecod_assert(shape.c > 0 && shape.h > 0 && shape.w > 0,
                  "tensor reset shape must be positive, got %dx%dx%d",
                  shape.c, shape.h, shape.w);
    shape_ = shape;
    data_.resize(shape.size());
}

float
Tensor::atClamped(int c, int y, int x) const
{
    y = std::clamp(y, 0, shape_.h - 1);
    x = std::clamp(x, 0, shape_.w - 1);
    return at(c, y, x);
}

Tensor
Tensor::fromImage(const Image &img)
{
    Tensor t(Shape{1, img.height(), img.width()});
    std::copy(img.data().begin(), img.data().end(), t.data().begin());
    return t;
}

Tensor
Tensor::fromImages(const std::vector<Image> &channels)
{
    eyecod_assert(!channels.empty(), "fromImages with no channels");
    const int h = channels[0].height();
    const int w = channels[0].width();
    Tensor t(Shape{int(channels.size()), h, w});
    for (size_t c = 0; c < channels.size(); ++c) {
        eyecod_assert(channels[c].height() == h &&
                      channels[c].width() == w,
                      "fromImages channel shape mismatch");
        std::copy(channels[c].data().begin(), channels[c].data().end(),
                  t.data().begin() + c * size_t(h) * size_t(w));
    }
    return t;
}

Image
Tensor::toImage(int channel) const
{
    eyecod_assert(channel >= 0 && channel < shape_.c,
                  "toImage channel %d out of range", channel);
    Image img(shape_.h, shape_.w);
    const size_t off = size_t(channel) * shape_.h * shape_.w;
    std::copy(data_.begin() + off,
              data_.begin() + off + img.size(), img.data().begin());
    return img;
}

void
Tensor::randomInit(Rng &rng, double fan_in)
{
    const double stddev = std::sqrt(2.0 / std::max(1.0, fan_in));
    for (float &v : data_)
        v = float(rng.gaussian(0.0, stddev));
}

} // namespace nn
} // namespace eyecod
