/**
 * @file
 * Independent reference implementation of convolution via
 * im2col + dense matrix multiplication. It shares no code with the
 * direct loop nest in Conv2d::forward, so agreement between the two
 * is a strong correctness check (used by the property tests).
 */

#ifndef EYECOD_NN_REFERENCE_H
#define EYECOD_NN_REFERENCE_H

#include "nn/conv.h"

namespace eyecod {
namespace nn {

/**
 * Execute @p conv on @p input by lowering to im2col + GEMM.
 * Supports the full ConvSpec feature set (stride, depthwise, fused
 * ReLU, quantization emulation).
 */
Tensor referenceConvForward(const Conv2d &conv, const Tensor &input);

} // namespace nn
} // namespace eyecod

#endif // EYECOD_NN_REFERENCE_H
