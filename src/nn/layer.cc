#include "nn/layer.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace eyecod {
namespace nn {

void
ExecContext::poolParallelFor(
    long n, long grain,
    const std::function<void(long, long)> &body) const
{
    pool->parallelFor(n, grain, body);
}

int
ExecContext::concurrency() const
{
    return pool ? pool->threadCount() : 1;
}

Tensor
Layer::forward(const std::vector<const Tensor *> &in) const
{
    Tensor out(outputShape());
    forward(in, out, ExecContext{});
    return out;
}

const char *
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::ConvGeneric:   return "conv-generic";
      case LayerKind::ConvPointwise: return "conv-pointwise";
      case LayerKind::ConvDepthwise: return "conv-depthwise";
      case LayerKind::FullyConnected: return "fc";
      case LayerKind::MatMul:        return "matmul";
      case LayerKind::Pool:          return "pool";
      case LayerKind::Upsample:      return "upsample";
      case LayerKind::Concat:        return "concat";
      case LayerKind::Add:           return "add";
      case LayerKind::BatchNorm:     return "batchnorm";
      case LayerKind::Activation:    return "activation";
    }
    return "unknown";
}

bool
isMacKind(LayerKind kind)
{
    switch (kind) {
      case LayerKind::ConvGeneric:
      case LayerKind::ConvPointwise:
      case LayerKind::ConvDepthwise:
      case LayerKind::FullyConnected:
      case LayerKind::MatMul:
        return true;
      default:
        return false;
    }
}

LayerWorkload
Layer::workload() const
{
    LayerWorkload w;
    w.name = name_;
    w.kind = kind();
    const Shape out = outputShape();
    w.c_out = out.c;
    w.h_out = out.h;
    w.w_out = out.w;
    w.macs = macs();
    w.params = paramCount();
    return w;
}

} // namespace nn
} // namespace eyecod
