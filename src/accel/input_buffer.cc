#include "accel/input_buffer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace eyecod {
namespace accel {

InputBufferTiming
simulateInputBuffer(const InputBufferConfig &cfg, int rounds)
{
    eyecod_assert(rounds > 0 && cfg.rows_per_round > 0 &&
                  cfg.row_bytes > 0 &&
                  cfg.compute_cycles_per_round > 0 &&
                  cfg.gb_bytes_per_cycle > 0.0,
                  "bad input buffer configuration");
    const long long fetch_bytes =
        (long long)cfg.rows_per_round * cfg.row_bytes;
    const long long fetch_cycles = (long long)std::ceil(
        double(fetch_bytes) / cfg.gb_bytes_per_cycle);
    const long long compute = cfg.compute_cycles_per_round;

    InputBufferTiming t;
    if (cfg.swpr) {
        // The temp buffer fetches round r+1's rows during round r's
        // compute; In-Act G0/G1 alternate so reads never wait on
        // writes. The first round's fetch is exposed.
        const long long per_round = std::max(compute, fetch_cycles);
        t.total_cycles = fetch_cycles + (long long)rounds * per_round;
        t.stall_cycles =
            (long long)rounds * std::max(0LL, fetch_cycles - compute)
            + fetch_cycles;
        t.required_peak_bw = double(fetch_bytes) / double(compute);
    } else {
        // The plain buffer serializes fetch and compute: rows must
        // land before the round starts. Zero-stall operation would
        // need the whole round's rows within the ~1.5-cycle
        // write-to-read turnaround window.
        t.total_cycles = (long long)rounds * (compute + fetch_cycles);
        t.stall_cycles = (long long)rounds * fetch_cycles;
        t.required_peak_bw = double(fetch_bytes) / 1.5;
    }
    t.effective_bw = double(fetch_bytes) * rounds /
                     double(std::max(1LL, t.total_cycles));
    return t;
}

double
swprBandwidthSaving(const InputBufferConfig &cfg)
{
    InputBufferConfig plain = cfg;
    plain.swpr = false;
    InputBufferConfig swpr = cfg;
    swpr.swpr = true;
    const double bw_plain =
        simulateInputBuffer(plain, 1).required_peak_bw;
    const double bw_swpr =
        simulateInputBuffer(swpr, 1).required_peak_bw;
    return 1.0 - bw_swpr / bw_plain;
}

} // namespace accel
} // namespace eyecod
