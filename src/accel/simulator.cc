#include "accel/simulator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace eyecod {
namespace accel {

namespace {

/** Typed validation of a workload set. */
Status
validateWorkloads(const std::vector<ModelWorkload> &workloads)
{
    if (workloads.empty())
        return Status::error(ErrorCode::InvalidArgument,
                             "simulate with no workloads");
    bool any_per_frame = false;
    for (const ModelWorkload &m : workloads) {
        if (m.period < 1)
            return Status::error(ErrorCode::InvalidArgument,
                                 "workload %s has period %d (< 1)",
                                 m.name.c_str(), m.period);
        if (m.layers.empty())
            return Status::error(ErrorCode::InvalidArgument,
                                 "workload %s has no layers",
                                 m.name.c_str());
        any_per_frame = any_per_frame || m.period == 1;
    }
    if (!any_per_frame)
        return Status::error(ErrorCode::InvalidArgument,
                             "pipeline needs at least one per-frame "
                             "workload");
    return Status::ok();
}

/** The core analytic model; callers have validated the inputs. */
PerfReport
simulateCore(const std::vector<ModelWorkload> &workloads,
             const HwConfig &hw, const EnergyModel &energy)
{
    PerfReport r;
    r.schedule = scheduleFrame(workloads, hw);
    r.utilization = r.schedule.utilization;
    r.seg_hidden_fraction = r.schedule.seg_hidden_fraction;
    r.active_lanes = hw.mac_lanes;

    // Activation memory: every model must keep its resident set
    // within the two activation GBs; the feature-wise partition is
    // applied per model when enabled. A model forced to partition
    // pays the stripe overhead: halo rows re-read from the Act GB at
    // the read bandwidth (extending the frame) and weights
    // re-streamed through the weight path (energy only — hidden
    // under the double-buffered staging). Both amortize by the
    // model's period, same discipline as the schedule's activity.
    const long long budget =
        (long long)hw.act_gb_bytes * hw.act_gb_count;
    long long resident = 0;
    long long unpart = 0;
    int factor = 1;
    bool fits = true;
    long long extra_act_bytes = 0;
    long long extra_weight_bytes = 0;
    long long overhead_cycles = 0;
    for (const ModelWorkload &m : workloads) {
        unpart = std::max(unpart, peakActivationBytes(m.layers));
        if (hw.feature_partition) {
            const PartitionAnalysis a =
                analyzePartition(m.layers, budget);
            resident = std::max(resident, a.partitioned_bytes);
            factor = std::max(factor, a.partition_factor);
            fits = fits && a.fits;
            if (a.partition_factor > 1) {
                const PartitionOverhead o =
                    partitionOverhead(m.layers, a.partition_factor);
                extra_act_bytes += o.act_reread_bytes / m.period;
                extra_weight_bytes +=
                    o.weight_restream_bytes / m.period;
                overhead_cycles +=
                    (long long)std::ceil(
                        double(o.act_reread_bytes) /
                        hw.actReadBandwidth()) /
                    m.period;
            }
        } else {
            resident = std::max(resident,
                                peakActivationBytes(m.layers));
            fits = fits && resident <= budget;
        }
    }
    r.act_mem_bytes = resident;
    r.act_mem_unpartitioned = unpart;
    r.partition_factor = factor;
    r.act_mem_fits = fits;

    r.partition_overhead_cycles = overhead_cycles;
    r.frame_cycles = r.schedule.frame_cycles + overhead_cycles;
    r.frame_ms = double(r.frame_cycles) / hw.clock_hz * 1e3;
    r.fps = hw.clock_hz / double(std::max(1LL, r.frame_cycles));
    r.fps_peak =
        hw.clock_hz /
        double(std::max(1LL, r.schedule.peak_frame_cycles +
                                 overhead_cycles));
    if (overhead_cycles > 0)
        r.utilization *= double(r.schedule.frame_cycles) /
                         double(std::max(1LL, r.frame_cycles));

    // Energy: amortized per-frame activity over the frame window.
    r.activity = r.schedule.activity;
    r.activity.act_gb_bytes += extra_act_bytes;
    r.activity.weight_gb_bytes += extra_weight_bytes;
    r.activity.buf_bytes += extra_weight_bytes;
    r.activity.cycles = r.frame_cycles;
    r.energy_per_frame_j = energy.energyJoules(r.activity);
    r.power_w = energy.averagePowerWatts(r.activity);
    r.fps_per_watt = r.power_w > 0.0 ? r.fps / r.power_w : 0.0;
    return r;
}

/** Watchdog: a frame beyond the cycle budget is a typed timeout. */
Status
checkWatchdog(const HwConfig &hw, long long frame_cycles)
{
    if (hw.watchdog_cycle_budget > 0 &&
        frame_cycles > hw.watchdog_cycle_budget)
        return Status::error(
            ErrorCode::ScheduleTimeout,
            "frame schedule of %lld cycles exceeds the watchdog "
            "budget of %lld",
            frame_cycles, hw.watchdog_cycle_budget);
    return Status::ok();
}

} // namespace

PerfReport
simulate(const std::vector<ModelWorkload> &workloads,
         const HwConfig &hw, const EnergyModel &energy)
{
    Result<PerfReport> r = simulateChecked(workloads, hw, energy);
    if (!r.ok())
        panic("simulate: %s", r.status().toString().c_str());
    return r.take();
}

Result<PerfReport>
simulateChecked(const std::vector<ModelWorkload> &workloads,
                const HwConfig &hw, const EnergyModel &energy)
{
    Status valid = validateHwConfig(hw);
    if (!valid.isOk())
        return valid;
    valid = validateWorkloads(workloads);
    if (!valid.isOk())
        return valid;

    PerfReport r = simulateCore(workloads, hw, energy);
    const Status watchdog = checkWatchdog(hw, r.frame_cycles);
    if (!watchdog.isOk())
        return watchdog;
    return r;
}

Result<PerfReport>
simulateFaulted(const std::vector<ModelWorkload> &workloads,
                const HwConfig &hw, const EnergyModel &energy,
                const HwFaultInjector &injector, long frame)
{
    Status valid = validateHwConfig(hw);
    if (!valid.isOk())
        return valid;
    valid = validateWorkloads(workloads);
    if (!valid.isOk())
        return valid;

    // Lane retirement: configured + BIST-dead lanes are mapped out
    // and the orchestrator re-partitions every workload across the
    // survivors, so the degraded schedule, utilization, and FPS stay
    // self-consistent.
    const int retired = injector.retiredLaneCount();
    Result<HwConfig> degraded = retireLanes(hw, retired);
    if (!degraded.ok())
        return degraded.status();
    const HwConfig eff = degraded.take();
    if (retired > 0)
        warnLimited("accel-lane-retire",
                    "frame %ld: %d MAC lane(s) retired, "
                    "re-partitioned onto %d survivors",
                    frame, retired, eff.mac_lanes);

    PerfReport r = simulateCore(workloads, eff, energy);
    r.retired_lanes = retired;
    r.active_lanes = eff.mac_lanes;

    // Per-frame transients: stuck lanes (silent wrong-compute),
    // SRAM upsets classified by the SECDED model, orchestrator
    // stalls.
    const FrameHwFaults faults = injector.plan(frame);
    r.stuck_lane_events = int(faults.stuck_lanes.size());
    r.ecc = injector.classify(faults, frame);
    r.injected_stall_cycles = faults.stall_cycles;
    if (r.stuck_lane_events > 0)
        warnLimited("accel-lane-stuck",
                    "frame %ld: %d stuck lane(s) computing silently "
                    "wrong results",
                    frame, r.stuck_lane_events);
    if (r.ecc.detected_uncorrectable > 0)
        warnLimited("accel-ecc-uncorrectable",
                    "frame %ld: %lld detected-uncorrectable SRAM "
                    "word(s), refetch retried",
                    frame, r.ecc.detected_uncorrectable);
    if (r.ecc.silent > 0)
        warnLimited("accel-ecc-silent",
                    "frame %ld: %lld SRAM upset(s) escaped ECC",
                    frame, r.ecc.silent);

    // Fold the ECC correction/retry bubbles and the injected stalls
    // into the frame, then re-derive every cycle-dependent metric.
    const long long overhead =
        r.ecc.overhead_cycles + faults.stall_cycles;
    if (overhead > 0) {
        const long long clean_cycles = r.frame_cycles;
        r.frame_cycles += overhead;
        r.frame_ms = double(r.frame_cycles) / eff.clock_hz * 1e3;
        r.fps = eff.clock_hz / double(std::max(1LL, r.frame_cycles));
        r.fps_peak =
            eff.clock_hz /
            double(std::max(1LL, r.schedule.peak_frame_cycles +
                                     r.partition_overhead_cycles +
                                     overhead));
        r.utilization *= double(clean_cycles) /
                         double(std::max(1LL, r.frame_cycles));
        r.activity.cycles = r.frame_cycles;
    }
    r.ecc_energy_j = energy.eccEventJoules(
        r.ecc.corrected, r.ecc.detected_uncorrectable);
    if (overhead > 0 || r.ecc_energy_j > 0.0) {
        r.energy_per_frame_j =
            energy.energyJoules(r.activity) + r.ecc_energy_j;
        const double t = double(r.activity.cycles) / energy.clock_hz;
        r.power_w = t > 0.0 ? r.energy_per_frame_j / t : 0.0;
        r.fps_per_watt =
            r.power_w > 0.0 ? r.fps / r.power_w : 0.0;
    }

    const Status watchdog = checkWatchdog(hw, r.frame_cycles);
    if (!watchdog.isOk()) {
        warnLimited("accel-watchdog",
                    "frame %ld: %s", frame,
                    watchdog.toString().c_str());
        return watchdog;
    }
    return r;
}

} // namespace accel
} // namespace eyecod
