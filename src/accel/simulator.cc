#include "accel/simulator.h"

#include <algorithm>

#include "common/logging.h"

namespace eyecod {
namespace accel {

PerfReport
simulate(const std::vector<ModelWorkload> &workloads,
         const HwConfig &hw, const EnergyModel &energy)
{
    PerfReport r;
    r.schedule = scheduleFrame(workloads, hw);
    r.frame_cycles = r.schedule.frame_cycles;
    r.frame_ms = double(r.frame_cycles) / hw.clock_hz * 1e3;
    r.fps = hw.clock_hz / double(std::max(1LL, r.frame_cycles));
    r.fps_peak =
        hw.clock_hz / double(std::max(1LL,
                                      r.schedule.peak_frame_cycles));
    r.utilization = r.schedule.utilization;
    r.seg_hidden_fraction = r.schedule.seg_hidden_fraction;

    // Activation memory: every model must keep its resident set
    // within the two activation GBs; the feature-wise partition is
    // applied per model when enabled.
    const long long budget =
        (long long)hw.act_gb_bytes * hw.act_gb_count;
    long long resident = 0;
    long long unpart = 0;
    int factor = 1;
    bool fits = true;
    for (const ModelWorkload &m : workloads) {
        unpart = std::max(unpart, peakActivationBytes(m.layers));
        if (hw.feature_partition) {
            const PartitionAnalysis a =
                analyzePartition(m.layers, budget);
            resident = std::max(resident, a.partitioned_bytes);
            factor = std::max(factor, a.partition_factor);
            fits = fits && a.fits;
        } else {
            resident = std::max(resident,
                                peakActivationBytes(m.layers));
            fits = fits && resident <= budget;
        }
    }
    r.act_mem_bytes = resident;
    r.act_mem_unpartitioned = unpart;
    r.partition_factor = factor;
    r.act_mem_fits = fits;

    // Energy: amortized per-frame activity over the frame window.
    r.activity = r.schedule.activity;
    r.activity.cycles = r.frame_cycles;
    r.energy_per_frame_j = energy.energyJoules(r.activity);
    r.power_w = energy.averagePowerWatts(r.activity);
    r.fps_per_watt = r.power_w > 0.0 ? r.fps / r.power_w : 0.0;
    return r;
}

} // namespace accel
} // namespace eyecod
