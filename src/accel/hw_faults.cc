#include "accel/hw_faults.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/rng.h"

namespace eyecod {
namespace accel {

const char *
hwFaultKindName(HwFaultKind kind)
{
    switch (kind) {
      case HwFaultKind::DeadLane: return "dead-lane";
      case HwFaultKind::StuckLane: return "stuck-lane";
      case HwFaultKind::TransientBitFlip: return "transient-bit-flip";
      case HwFaultKind::PersistentBitFlip:
        return "persistent-bit-flip";
      case HwFaultKind::OrchestratorStall: return "orchestrator-stall";
    }
    return "unknown";
}

const char *
sramDomainName(SramDomain domain)
{
    switch (domain) {
      case SramDomain::ActGb: return "act-gb";
      case SramDomain::WeightBuffer: return "weight-buffer";
      case SramDomain::InputBuffer: return "input-buffer";
    }
    return "unknown";
}

bool
HwFaultConfig::anyEnabled() const
{
    return stuck_lane_rate > 0.0 || dead_lane_rate > 0.0 ||
           transient_flip_rate > 0.0 || persistent_flip_rate > 0.0 ||
           stall_rate > 0.0 || retired_lanes > 0;
}

HwFaultConfig
HwFaultConfig::mixed(double rate, uint64_t seed)
{
    HwFaultConfig cfg;
    cfg.stuck_lane_rate = rate;
    cfg.dead_lane_rate = rate;
    cfg.transient_flip_rate = rate;
    cfg.persistent_flip_rate = rate;
    cfg.stall_rate = rate;
    cfg.seed = seed;
    return cfg;
}

int
ChipFaults::totalStuckWords() const
{
    int n = 0;
    for (int w : stuck_words)
        n += w;
    return n;
}

long
FrameHwFaults::totalFlips() const
{
    long n = 0;
    for (long f : flips)
        n += f;
    return n;
}

bool
FrameHwFaults::any() const
{
    return !stuck_lanes.empty() || totalFlips() > 0 ||
           stall_cycles > 0;
}

namespace {

/** splitmix64 mix of a 64-bit state (public-domain constant set). */
uint64_t
mix64(uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Fresh RNG for (seed, frame, stage); stage decorrelates draws. */
Rng
frameRng(uint64_t seed, long frame, uint64_t stage)
{
    return Rng(mix64(mix64(seed ^ uint64_t(frame)) ^ stage));
}

/** Each silent event lands in a given executor step with this
 *  probability (models a few-dozen-layer pipeline). */
constexpr double kStepHitProb = 1.0 / 32.0;

/** Flip one mantissa or sign bit of @p v (keeps the value finite). */
float
flipFloatBit(float v, int bit_choice)
{
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    // bit_choice in [0, 23]: 0..22 are mantissa bits, 23 is the sign.
    const int bit = bit_choice == 23 ? 31 : bit_choice;
    bits ^= (uint32_t(1) << bit);
    float out;
    std::memcpy(&out, &bits, sizeof(out));
    return out;
}

} // namespace

HwFaultInjector::HwFaultInjector(HwFaultConfig cfg, const HwConfig &hw)
    : cfg_(cfg), mac_lanes_(hw.mac_lanes)
{
    const Status valid = validateHwConfig(hw);
    eyecod_assert(valid.isOk(), "HwFaultInjector on invalid hw: %s",
                  valid.toString().c_str());
    eyecod_assert(cfg_.retired_lanes >= 0,
                  "retired_lanes must be non-negative");
    banks_[int(SramDomain::ActGb)] =
        hw.act_gb_count * hw.act_gb_banks;
    // Weight GB plus the two ping-pong buffers.
    banks_[int(SramDomain::WeightBuffer)] = 3;
    // The two interleaved In-Act G0/G1 groups (Fig. 12).
    banks_[int(SramDomain::InputBuffer)] = 2;

    // Chip-instance faults: drawn once from the seed (frame
    // independent), modelling manufacturing defects.
    Rng rng(mix64(mix64(cfg_.seed) ^ 0xc41bd00d));
    for (int lane = 0; lane < mac_lanes_; ++lane)
        if (rng.bernoulli(cfg_.dead_lane_rate))
            chip_.dead_lanes.push_back(lane);
    for (int d = 0; d < kNumSramDomains; ++d) {
        int words = 0;
        for (int b = 0; b < banks_[d]; ++b)
            if (rng.bernoulli(cfg_.persistent_flip_rate))
                ++words;
        chip_.stuck_words[size_t(d)] = words;
    }
}

int
HwFaultInjector::banksIn(SramDomain domain) const
{
    return banks_[size_t(int(domain))];
}

int
HwFaultInjector::retiredLaneCount() const
{
    return cfg_.retired_lanes + int(chip_.dead_lanes.size());
}

FrameHwFaults
HwFaultInjector::plan(long frame) const
{
    FrameHwFaults f;
    if (frame < cfg_.first_frame ||
        (cfg_.last_frame >= 0 && frame > cfg_.last_frame))
        return f;

    if (cfg_.stuck_lane_rate > 0.0) {
        Rng rng = frameRng(cfg_.seed, frame, 0x1a7e5);
        for (int lane = 0; lane < mac_lanes_; ++lane)
            if (rng.bernoulli(cfg_.stuck_lane_rate))
                f.stuck_lanes.push_back(lane);
    }
    if (cfg_.transient_flip_rate > 0.0) {
        for (int d = 0; d < kNumSramDomains; ++d) {
            Rng rng =
                frameRng(cfg_.seed, frame, 0xf11b0 + uint64_t(d));
            f.flips[size_t(d)] = long(rng.poisson(
                cfg_.transient_flip_rate * double(banks_[d])));
        }
    }
    if (cfg_.stall_rate > 0.0) {
        Rng rng = frameRng(cfg_.seed, frame, 0x57a11);
        if (rng.bernoulli(cfg_.stall_rate))
            f.stall_cycles = cfg_.stall_cycles;
    }
    return f;
}

EccCounters
HwFaultInjector::classify(const FrameHwFaults &faults,
                          long frame) const
{
    EccCounters c;
    Rng rng = frameRng(cfg_.seed, frame, 0xecc1);
    for (int d = 0; d < kNumSramDomains; ++d) {
        for (long i = 0; i < faults.flips[size_t(d)]; ++i) {
            if (!cfg_.ecc.enabled) {
                ++c.silent;
                continue;
            }
            const double u = rng.uniform();
            if (u < cfg_.ecc.multi_bit_fraction)
                ++c.silent;
            else if (u < cfg_.ecc.multi_bit_fraction +
                             cfg_.ecc.double_bit_fraction)
                ++c.detected_uncorrectable;
            else
                ++c.corrected;
        }
    }
    // Stuck-at words raise a single-bit error on every access; ECC
    // re-corrects each touch, without it every touch corrupts.
    const long long touches =
        (long long)chip_.totalStuckWords() *
        cfg_.persistent_touches_per_frame;
    if (cfg_.ecc.enabled)
        c.corrected += touches;
    else
        c.silent += touches;

    if (cfg_.ecc.enabled)
        c.overhead_cycles =
            c.corrected * cfg_.ecc.correction_cycles +
            c.detected_uncorrectable * cfg_.ecc.retry_cycles;
    return c;
}

long long
HwFaultInjector::silentEvents(long frame) const
{
    const FrameHwFaults f = plan(frame);
    return classify(f, frame).silent +
           (long long)f.stuck_lanes.size();
}

void
HwFaultInjector::corruptStepOutput(nn::Tensor &out, long frame,
                                   uint64_t model_tag,
                                   int step_node) const
{
    if (out.size() == 0)
        return;
    const FrameHwFaults f = plan(frame);
    const long long sram_silent = classify(f, frame).silent;
    const long long lane_silent = (long long)f.stuck_lanes.size();
    if (sram_silent == 0 && lane_silent == 0)
        return;

    Rng rng(mix64(mix64(cfg_.seed ^ uint64_t(frame)) ^
                  mix64(model_tag ^
                        (uint64_t(uint32_t(step_node)) << 32) ^
                        0xac7f)));
    float *data = out.data().data();
    const long long n = (long long)out.size();
    long applied = 0;

    // ECC-escaping SRAM upsets: flip one mantissa/sign bit of one
    // activation each.
    for (long long i = 0; i < sram_silent; ++i) {
        if (!rng.bernoulli(kStepHitProb))
            continue;
        const long long idx = rng.uniformInt(0, n - 1);
        const int bit = int(rng.uniformInt(0, 23));
        data[idx] = flipFloatBit(data[idx], bit);
        ++applied;
    }
    // Stuck-lane wrong-compute: one 8-wide MAC group emits garbage;
    // modelled as a zeroed 8-element run of the output.
    for (long long i = 0; i < lane_silent; ++i) {
        if (!rng.bernoulli(kStepHitProb))
            continue;
        const long long start =
            rng.uniformInt(0, std::max<long long>(0, n - 8));
        for (long long k = start; k < std::min(n, start + 8); ++k)
            data[k] = 0.0f;
        ++applied;
    }
    if (applied > 0)
        warnLimited("accel-act-corrupt",
                    "frame %ld: %ld silent hw fault(s) perturbed "
                    "step %d activations",
                    frame, applied, step_node);
}

} // namespace accel
} // namespace eyecod
