/**
 * @file
 * Hardware configuration of the EyeCoD accelerator (Tab. 1 / Fig. 13):
 * 128 MAC lanes x 8 MACs at 370 MHz, two 512 KB activation global
 * buffers, double-buffered 64 KB weight buffers fed from a 512 KB
 * weight GB, 20 KB index and 4 KB instruction SRAMs — plus the
 * feature switches the Tab. 6 ablation toggles.
 */

#ifndef EYECOD_ACCEL_HW_CONFIG_H
#define EYECOD_ACCEL_HW_CONFIG_H

#include <cstdint>

#include "common/status.h"

namespace eyecod {
namespace accel {

/** Workload orchestration modes of Sec. 5.1 Challenge/Principle #I. */
enum class OrchestrationMode {
    TimeMultiplex, ///< One model's layer owns the whole array.
    Concurrent,    ///< Static lane split between the two models.
    PartialTimeMultiplex, ///< Gaze owns the array; segmentation
                          ///  backfills waves with utilization < 80%.
};

/**
 * Bounds on HwConfig derived products, enforced by validateHwConfig.
 * The design-space explorer sweeps lattice corners far beyond the
 * paper's Tab. 1 point; these caps guarantee every downstream
 * product (total MACs, SRAM capacities, bank bandwidth) fits
 * comfortably in 64-bit cycle/byte arithmetic instead of silently
 * overflowing.
 */
constexpr long long kMaxTotalMacs = 1LL << 24;       ///< 16 Mi MACs.
constexpr long long kMaxSramBytes = 1LL << 40;       ///< 1 TiB.
constexpr int kMaxActGbCount = 1024;
constexpr long long kMaxBankBytesPerCycle = 1LL << 20; ///< 1 MiB/cy.

/** The accelerator configuration. */
struct HwConfig
{
    // --- Compute (Tab. 1) ---
    int mac_lanes = 128;     ///< MAC lanes.
    int macs_per_lane = 8;   ///< MACs per lane.
    double clock_hz = 370e6; ///< Core clock.

    // --- Memories (Tab. 1) ---
    long act_gb_bytes = 512 * 1024;   ///< Each of the two Act GBs.
    int act_gb_count = 2;
    long weight_buf_bytes = 64 * 1024; ///< Each ping-pong buffer.
    long weight_gb_bytes = 512 * 1024;
    long index_sram_bytes = 20 * 1024;
    long instr_sram_bytes = 4 * 1024;

    // --- Activation GB organization (Fig. 11) ---
    int act_gb_banks = 4;        ///< Parallel banks per Act GB.
    int act_bank_width_bytes = 16; ///< One 16-channel tile / address.

    // --- Input activation buffer (Fig. 12) ---
    int input_buf_rows = 16;     ///< M rows fetched per round.

    // --- Feature switches (Tab. 6 ablation) ---
    /** Sequential-write-parallel-read input buffer ("Input."). */
    bool swpr_input_buffer = true;
    /** Intra-channel reuse for depth-wise layers ("Depth."). */
    bool depthwise_optimization = true;
    /** Input feature-wise partition (all Tab. 6 rows keep this on). */
    bool feature_partition = true;
    /** Workload orchestration ("Partial."). */
    OrchestrationMode orchestration =
        OrchestrationMode::PartialTimeMultiplex;

    /**
     * Utilization threshold below which partial time-multiplexing
     * donates unused lanes to the segmentation model (Fig. 7).
     */
    double partial_util_threshold = 0.80;

    /**
     * Cycle-budget watchdog: a frame schedule (including injected
     * stalls and ECC retry overheads) exceeding this many cycles is
     * reported as a ScheduleTimeout error by the checked simulation
     * entry points instead of silently producing sub-real-time
     * numbers. 0 disables the watchdog.
     */
    long long watchdog_cycle_budget = 0;

    /**
     * Total MAC count. 64-bit: the DSE sweep visits lattice corners
     * whose lane x MAC products overflow int, and validateHwConfig
     * only bounds the product for *valid* configs — callers probing
     * candidate configs read this before validation.
     */
    long long totalMacs() const
    {
        return (long long)mac_lanes * macs_per_lane;
    }

    /**
     * Provisioned on-chip SRAM: both Act GBs, the double-buffered
     * weight buffers, the weight GB, and the index + instruction
     * SRAMs. This is the capacity axis of the DSE Pareto front.
     */
    long long totalSramBytes() const
    {
        return (long long)act_gb_bytes * act_gb_count +
               2LL * weight_buf_bytes + (long long)weight_gb_bytes +
               (long long)index_sram_bytes +
               (long long)instr_sram_bytes;
    }

    /**
     * Peak Act-GB read bandwidth in bytes per cycle. The
     * sequential-write-parallel-read buffer doubles usable read
     * bandwidth (parallel reads from In-Act G0/G1) relative to the
     * plain buffer whose reads serialize against writes.
     */
    double
    actReadBandwidth() const
    {
        // One bank address (a 16-channel tile) is served per cycle
        // per read port; the SWPR buffer's interleaved In-Act G0/G1
        // groups double the usable read bandwidth (Fig. 12).
        const double raw = double(act_bank_width_bytes);
        return swpr_input_buffer ? raw * 2.0 : raw;
    }
};

/**
 * Validate a hardware configuration: zero/negative lane counts, bank
 * sizes, or clock rates return a typed InvalidArgument Status naming
 * the offending field, so malformed configs fail at the simulate()
 * boundary instead of as downstream divide-by-zero/NaN reports.
 */
[[nodiscard]] Status validateHwConfig(const HwConfig &hw);

/**
 * The configuration with @p retired lanes mapped out of the MAC
 * array (lane retirement after BIST/runtime fault detection). The
 * orchestrator re-partitions every workload across the surviving
 * lanes, so schedules, utilization, and FPS stay self-consistent.
 * Fails with HwLaneFault when no lane would survive.
 */
Result<HwConfig> retireLanes(const HwConfig &hw, int retired);

} // namespace accel
} // namespace eyecod

#endif // EYECOD_ACCEL_HW_CONFIG_H
