#include "accel/hw_config.h"

#include <cmath>

namespace eyecod {
namespace accel {

Status
validateHwConfig(const HwConfig &hw)
{
    if (hw.mac_lanes <= 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "mac_lanes must be positive (got %d)",
                             hw.mac_lanes);
    if (hw.macs_per_lane <= 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "macs_per_lane must be positive (got %d)",
                             hw.macs_per_lane);
    if (!(hw.clock_hz > 0.0) || !std::isfinite(hw.clock_hz))
        return Status::error(ErrorCode::InvalidArgument,
                             "clock_hz must be positive and finite "
                             "(got %g)",
                             hw.clock_hz);
    if (hw.act_gb_bytes <= 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "act_gb_bytes must be positive (got %ld)",
                             hw.act_gb_bytes);
    if (hw.act_gb_count <= 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "act_gb_count must be positive (got %d)",
                             hw.act_gb_count);
    if (hw.weight_buf_bytes <= 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "weight_buf_bytes must be positive "
                             "(got %ld)",
                             hw.weight_buf_bytes);
    if (hw.weight_gb_bytes <= 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "weight_gb_bytes must be positive "
                             "(got %ld)",
                             hw.weight_gb_bytes);
    if (hw.act_gb_banks <= 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "act_gb_banks must be positive (got %d)",
                             hw.act_gb_banks);
    if (hw.act_bank_width_bytes <= 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "act_bank_width_bytes must be positive "
                             "(got %d)",
                             hw.act_bank_width_bytes);
    if (hw.input_buf_rows <= 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "input_buf_rows must be positive "
                             "(got %d)",
                             hw.input_buf_rows);
    if (hw.partial_util_threshold < 0.0 ||
        hw.partial_util_threshold > 1.0 ||
        !std::isfinite(hw.partial_util_threshold))
        return Status::error(ErrorCode::InvalidArgument,
                             "partial_util_threshold must be in "
                             "[0, 1] (got %g)",
                             hw.partial_util_threshold);
    if (hw.watchdog_cycle_budget < 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "watchdog_cycle_budget must be "
                             "non-negative (got %lld)",
                             hw.watchdog_cycle_budget);
    // --- Overflow guards for derived products (DSE lattice corners).
    // All operands are already known positive here, so the products
    // below cannot overflow long long before the comparison: each
    // factor is an int/long bounded by its own positivity check.
    if ((long long)hw.mac_lanes * hw.macs_per_lane > kMaxTotalMacs)
        return Status::error(ErrorCode::InvalidArgument,
                             "mac_lanes x macs_per_lane = %lld MACs "
                             "exceeds the %lld supported maximum",
                             (long long)hw.mac_lanes *
                                 hw.macs_per_lane,
                             kMaxTotalMacs);
    if (hw.act_gb_count > kMaxActGbCount)
        return Status::error(ErrorCode::InvalidArgument,
                             "act_gb_count %d exceeds the %d "
                             "supported maximum",
                             hw.act_gb_count, kMaxActGbCount);
    if ((long long)hw.act_gb_bytes > kMaxSramBytes ||
        (long long)hw.act_gb_bytes * hw.act_gb_count > kMaxSramBytes)
        return Status::error(ErrorCode::InvalidArgument,
                             "act_gb_bytes x act_gb_count = "
                             "%lld bytes exceeds the %lld-byte "
                             "SRAM capacity bound",
                             (long long)hw.act_gb_bytes *
                                 hw.act_gb_count,
                             kMaxSramBytes);
    if ((long long)hw.weight_buf_bytes > kMaxSramBytes / 2)
        return Status::error(ErrorCode::InvalidArgument,
                             "weight_buf_bytes %ld (double-buffered) "
                             "exceeds the %lld-byte SRAM capacity "
                             "bound",
                             hw.weight_buf_bytes, kMaxSramBytes);
    if ((long long)hw.weight_gb_bytes > kMaxSramBytes)
        return Status::error(ErrorCode::InvalidArgument,
                             "weight_gb_bytes %ld exceeds the "
                             "%lld-byte SRAM capacity bound",
                             hw.weight_gb_bytes, kMaxSramBytes);
    if ((long long)hw.index_sram_bytes > kMaxSramBytes ||
        (long long)hw.instr_sram_bytes > kMaxSramBytes)
        return Status::error(ErrorCode::InvalidArgument,
                             "index/instr SRAM (%ld / %ld bytes) "
                             "exceeds the %lld-byte SRAM capacity "
                             "bound",
                             hw.index_sram_bytes, hw.instr_sram_bytes,
                             kMaxSramBytes);
    if ((long long)hw.act_gb_banks * hw.act_bank_width_bytes >
        kMaxBankBytesPerCycle)
        return Status::error(ErrorCode::InvalidArgument,
                             "act_gb_banks x act_bank_width_bytes = "
                             "%lld B/cycle exceeds the %lld B/cycle "
                             "bank bandwidth bound",
                             (long long)hw.act_gb_banks *
                                 hw.act_bank_width_bytes,
                             kMaxBankBytesPerCycle);
    return Status::ok();
}

Result<HwConfig>
retireLanes(const HwConfig &hw, int retired)
{
    const Status valid = validateHwConfig(hw);
    if (!valid.isOk())
        return valid;
    if (retired < 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "retired lane count must be "
                             "non-negative (got %d)",
                             retired);
    if (retired >= hw.mac_lanes)
        return Status::error(ErrorCode::HwLaneFault,
                             "retiring %d of %d MAC lanes leaves no "
                             "compute",
                             retired, hw.mac_lanes);
    HwConfig degraded = hw;
    degraded.mac_lanes = hw.mac_lanes - retired;
    return degraded;
}

} // namespace accel
} // namespace eyecod
