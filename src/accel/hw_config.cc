#include "accel/hw_config.h"

#include <cmath>

namespace eyecod {
namespace accel {

Status
validateHwConfig(const HwConfig &hw)
{
    if (hw.mac_lanes <= 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "mac_lanes must be positive (got %d)",
                             hw.mac_lanes);
    if (hw.macs_per_lane <= 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "macs_per_lane must be positive (got %d)",
                             hw.macs_per_lane);
    if (!(hw.clock_hz > 0.0) || !std::isfinite(hw.clock_hz))
        return Status::error(ErrorCode::InvalidArgument,
                             "clock_hz must be positive and finite "
                             "(got %g)",
                             hw.clock_hz);
    if (hw.act_gb_bytes <= 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "act_gb_bytes must be positive (got %ld)",
                             hw.act_gb_bytes);
    if (hw.act_gb_count <= 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "act_gb_count must be positive (got %d)",
                             hw.act_gb_count);
    if (hw.weight_buf_bytes <= 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "weight_buf_bytes must be positive "
                             "(got %ld)",
                             hw.weight_buf_bytes);
    if (hw.weight_gb_bytes <= 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "weight_gb_bytes must be positive "
                             "(got %ld)",
                             hw.weight_gb_bytes);
    if (hw.act_gb_banks <= 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "act_gb_banks must be positive (got %d)",
                             hw.act_gb_banks);
    if (hw.act_bank_width_bytes <= 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "act_bank_width_bytes must be positive "
                             "(got %d)",
                             hw.act_bank_width_bytes);
    if (hw.input_buf_rows <= 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "input_buf_rows must be positive "
                             "(got %d)",
                             hw.input_buf_rows);
    if (hw.partial_util_threshold < 0.0 ||
        hw.partial_util_threshold > 1.0 ||
        !std::isfinite(hw.partial_util_threshold))
        return Status::error(ErrorCode::InvalidArgument,
                             "partial_util_threshold must be in "
                             "[0, 1] (got %g)",
                             hw.partial_util_threshold);
    if (hw.watchdog_cycle_budget < 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "watchdog_cycle_budget must be "
                             "non-negative (got %lld)",
                             hw.watchdog_cycle_budget);
    return Status::ok();
}

Result<HwConfig>
retireLanes(const HwConfig &hw, int retired)
{
    const Status valid = validateHwConfig(hw);
    if (!valid.isOk())
        return valid;
    if (retired < 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "retired lane count must be "
                             "non-negative (got %d)",
                             retired);
    if (retired >= hw.mac_lanes)
        return Status::error(ErrorCode::HwLaneFault,
                             "retiring %d of %d MAC lanes leaves no "
                             "compute",
                             retired, hw.mac_lanes);
    HwConfig degraded = hw;
    degraded.mac_lanes = hw.mac_lanes - retired;
    return degraded;
}

} // namespace accel
} // namespace eyecod
