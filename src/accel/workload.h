/**
 * @file
 * Workload assembly for the accelerator simulator: per-model layer
 * lists plus the composed EyeCoD predict-then-focus pipeline workload
 * (per-frame gaze estimation + FlatCam reconstruction, segmentation
 * once every N frames).
 */

#ifndef EYECOD_ACCEL_WORKLOAD_H
#define EYECOD_ACCEL_WORKLOAD_H

#include <string>
#include <vector>

#include "nn/graph.h"

namespace eyecod {
namespace accel {

/** A model's layer workload plus its execution period. */
struct ModelWorkload
{
    std::string name;
    std::vector<nn::LayerWorkload> layers;
    /** The model executes once every `period` frames (>= 1). */
    int period = 1;

    /** Total MACs of one execution. */
    long long totalMacs() const;

    /** MACs amortized per frame. */
    double macsPerFrame() const
    {
        return double(totalMacs()) / double(period);
    }
};

/** Extract a ModelWorkload from a functional graph. */
ModelWorkload workloadFromGraph(const nn::Graph &graph, int period = 1);

/**
 * The FlatCam Tikhonov reconstruction lowered to the accelerator's
 * matrix-matrix layers: Ul^T y, (.) Ur, Vl Xhat, (.) Vr^T (the
 * element-wise singular-value filter rides along the second product).
 *
 * @param scene scene extent (reconstruction output is scene x scene).
 * @param sensor sensor extent (measurement is sensor x sensor).
 */
ModelWorkload reconstructionWorkload(int scene, int sensor);

/** Configuration of the full pipeline workload. */
struct PipelineWorkloadConfig
{
    int scene = 256;        ///< Reconstructed scene extent.
    int sensor = 512;       ///< FlatCam sensor extent (~2x scene).
    int seg_input = 128;    ///< Segmentation input (downsampled).
    int roi_height = 96;    ///< Gaze ROI extent.
    int roi_width = 160;
    int roi_refresh = 50;   ///< Segmentation period (frames).
    int quant_bits = 8;     ///< Deployment precision.
    bool flatcam = true;    ///< Include the reconstruction workload.
    /**
     * Sensing-processing interface (Sec. 4.2): the first conv layer
     * of the segmentation model is computed optically in the mask
     * and dropped from the electronic workload.
     */
    bool optical_first_layer = false;
};

/**
 * Assemble the per-frame workloads of the EyeCoD pipeline:
 * reconstruction (period 1, FlatCam only), gaze estimation
 * (FBNet-C100, period 1), and segmentation (RITNet, period N).
 *
 * Order matters to the orchestrator: index 0.. are per-frame
 * ("gaze-side") workloads; the last entry is the periodic
 * segmentation workload.
 */
std::vector<ModelWorkload> buildPipelineWorkload(
    const PipelineWorkloadConfig &cfg);

/**
 * The lens-based baseline workload of Sec. 6.4: no reconstruction,
 * no ROI — segmentation and gaze estimation both consume the raw
 * 256x256 frames.
 */
std::vector<ModelWorkload> buildLensBaselineWorkload(
    const PipelineWorkloadConfig &cfg);

} // namespace accel
} // namespace eyecod

#endif // EYECOD_ACCEL_WORKLOAD_H
