/**
 * @file
 * Timing model of the sequential-write-parallel-read input
 * activation buffer (Fig. 12): a temp buffer fetches the next
 * round's M input-activation rows from the Act GBs sequentially
 * while the MAC lanes work on the current round; the two interleaved
 * groups In-Act G0/G1 are then read in parallel. The plain
 * (non-SWPR) buffer must fetch the rows up front, stalling the
 * array.
 */

#ifndef EYECOD_ACCEL_INPUT_BUFFER_H
#define EYECOD_ACCEL_INPUT_BUFFER_H

#include <vector>

namespace eyecod {
namespace accel {

/** Timing parameters of an input-buffer simulation. */
struct InputBufferConfig
{
    int rows_per_round = 16;     ///< M rows fetched per round.
    int row_bytes = 80;          ///< Bytes per activation row.
    int compute_cycles_per_round = 3; ///< Kernel-size cycles.
    double gb_bytes_per_cycle = 64.0; ///< Act GB fetch bandwidth.
    bool swpr = true;            ///< Overlap fetch with compute.
};

/** Result of simulating a run of rounds. */
struct InputBufferTiming
{
    long long total_cycles = 0;  ///< Compute + stalls.
    long long stall_cycles = 0;  ///< Cycles the array waited.
    double effective_bw = 0.0;   ///< Bytes/cycle actually needed.
    /**
     * Peak instantaneous bandwidth the Act GB must provide to avoid
     * stalls: the whole round's rows in one cycle without SWPR,
     * spread over the round with it.
     */
    double required_peak_bw = 0.0;
};

/**
 * Simulate @p rounds rounds of processing through the input buffer.
 */
InputBufferTiming simulateInputBuffer(const InputBufferConfig &cfg,
                                      int rounds);

/**
 * Bandwidth saving of the SWPR buffer vs the plain buffer for the
 * same round shape: 1 - required_peak_bw(swpr) /
 * required_peak_bw(plain). The paper reports 50-60% for 3x3 kernels.
 */
double swprBandwidthSaving(const InputBufferConfig &cfg);

} // namespace accel
} // namespace eyecod

#endif // EYECOD_ACCEL_INPUT_BUFFER_H
