/**
 * @file
 * Instruction set of the EyeCoD accelerator's on-chip controller
 * (Fig. 9): the controller reads instructions from the 4 KB
 * instruction SRAM to sequence weight loads (ping-pong buffers),
 * input-row fetches (SWPR buffer), MAC-lane waves, output stores,
 * and the Fig. 11 reshaping operations whose tile descriptors live
 * in the 20 KB index SRAM.
 *
 * Loops keep the encoding compact: a layer's waves and partition
 * stripes are expressed as LoopBegin/LoopEnd pairs rather than
 * unrolled, which is what makes the 4 KB instruction SRAM
 * sufficient for the whole predict-then-focus pipeline.
 */

#ifndef EYECOD_ACCEL_ISA_H
#define EYECOD_ACCEL_ISA_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "accel/hw_config.h"
#include "accel/workload.h"

namespace eyecod {
namespace accel {

/** Controller opcodes. */
enum class Opcode : uint8_t {
    ConfigLayer,  ///< Latch layer shape/dataflow registers.
    LoadWeights,  ///< Weight GB -> ping-pong weight buffer chunk.
    LoadInput,    ///< Act GB -> input activation buffer rows.
    Compute,      ///< Run one wave on the MAC lanes.
    StoreOutput,  ///< Output activation buffer -> Act GB.
    Reshape,      ///< Install a Fig. 11 view descriptor (index SRAM).
    LoopBegin,    ///< Repeat the enclosed block arg0 times.
    LoopEnd,
    Barrier,      ///< Wait for all lanes / buffers to drain.
};

/** Human-readable opcode name. */
const char *opcodeName(Opcode op);

/** One fixed-width (8-byte encoded) controller instruction. */
struct Instruction
{
    Opcode op;
    int layer = -1;      ///< Layer index within the model.
    int64_t arg0 = 0;    ///< Opcode-specific (loop count, bytes...).
    int64_t arg1 = 0;
};

/** A compiled instruction stream plus its storage footprints. */
struct InstructionStream
{
    std::string model;   ///< Source model name.
    std::vector<Instruction> instructions;
    /** Index-SRAM bytes consumed by reshaping descriptors. */
    long long index_bytes = 0;

    /** Encoded size: 8 bytes per instruction. */
    long long
    encodedBytes() const
    {
        return 8LL * (long long)instructions.size();
    }

    /** Instruction count per opcode. */
    std::map<Opcode, int> histogram() const;

    /** True when the stream fits the Tab. 1 SRAM budgets. */
    bool fitsOnChip(const HwConfig &hw) const;
};

/**
 * Lower a model workload to a controller instruction stream.
 *
 * @param model layer workloads in execution order.
 * @param hw hardware configuration (buffer sizes, lanes).
 * @param partition_stripes feature-wise partition factor applied to
 *        the activation traffic (Principle #III).
 */
InstructionStream compileModel(const ModelWorkload &model,
                               const HwConfig &hw,
                               int partition_stripes = 1);

/**
 * Verify structural well-formedness: balanced loops, weights
 * configured and loaded before the first compute of each layer, a
 * final barrier. Returns an empty string when valid, else a
 * diagnostic.
 */
std::string validateStream(const InstructionStream &stream);

} // namespace accel
} // namespace eyecod

#endif // EYECOD_ACCEL_ISA_H
