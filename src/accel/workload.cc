#include "accel/workload.h"

#include "common/logging.h"
#include "models/model_zoo.h"

namespace eyecod {
namespace accel {

long long
ModelWorkload::totalMacs() const
{
    long long acc = 0;
    for (const nn::LayerWorkload &w : layers)
        acc += w.macs;
    return acc;
}

ModelWorkload
workloadFromGraph(const nn::Graph &graph, int period)
{
    eyecod_assert(period >= 1, "workload period must be >= 1");
    ModelWorkload m;
    m.name = graph.name();
    m.layers = graph.workloads();
    m.period = period;
    return m;
}

ModelWorkload
reconstructionWorkload(int scene, int sensor)
{
    eyecod_assert(scene > 0 && sensor >= scene,
                  "reconstruction needs sensor >= scene (%d < %d)",
                  sensor, scene);
    ModelWorkload m;
    m.name = "flatcam-recon";
    m.period = 1;
    auto matmul = [&](const std::string &name, int rows, int k,
                      int cols) {
        nn::LayerWorkload w;
        w.name = name;
        w.kind = nn::LayerKind::MatMul;
        w.c_out = rows;
        w.h_out = 1;
        w.w_out = cols;
        w.c_in = k;
        w.h_in = rows;
        w.w_in = 1;
        w.kernel = 1;
        w.stride = 1;
        w.macs = (long long)rows * k * cols;
        w.params = (long long)k * cols;
        m.layers.push_back(std::move(w));
    };
    // X = Vl * ((Sl (Ul^T y Ur) Sr) ./ (Sl^2 Sr^2 + eps)) * Vr^T.
    matmul("ult_y", scene, sensor, sensor);   // Ul^T * y
    matmul("y_ur", scene, sensor, scene);     // (.) * Ur
    matmul("vl_x", scene, scene, scene);      // Vl * Xhat
    matmul("x_vrt", scene, scene, scene);     // (.) * Vr^T
    return m;
}

std::vector<ModelWorkload>
buildPipelineWorkload(const PipelineWorkloadConfig &cfg)
{
    std::vector<ModelWorkload> out;
    if (cfg.flatcam)
        out.push_back(reconstructionWorkload(cfg.scene, cfg.sensor));

    const nn::Graph gaze = models::buildFBNetC100(
        cfg.roi_height, cfg.roi_width, cfg.quant_bits);
    out.push_back(workloadFromGraph(gaze, 1));

    const nn::Graph seg = models::buildRitNet(
        cfg.seg_input, cfg.seg_input, cfg.quant_bits);
    ModelWorkload seg_w = workloadFromGraph(seg, cfg.roi_refresh);
    if (cfg.optical_first_layer && !seg_w.layers.empty()) {
        // The mask computes the first conv optically (Sec. 4.2).
        seg_w.layers.erase(seg_w.layers.begin());
    }
    out.push_back(std::move(seg_w));
    return out;
}

std::vector<ModelWorkload>
buildLensBaselineWorkload(const PipelineWorkloadConfig &cfg)
{
    std::vector<ModelWorkload> out;
    // Gaze on the raw full-resolution frame (no ROI focus).
    const nn::Graph gaze = models::buildFBNetC100(
        cfg.scene, cfg.scene, cfg.quant_bits);
    out.push_back(workloadFromGraph(gaze, 1));

    const nn::Graph seg = models::buildRitNet(
        cfg.seg_input, cfg.seg_input, cfg.quant_bits);
    out.push_back(workloadFromGraph(seg, cfg.roi_refresh));
    return out;
}

} // namespace accel
} // namespace eyecod
