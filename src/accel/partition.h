/**
 * @file
 * Input feature-wise partition (Challenge/Principle #III, Fig. 8):
 * activation-memory analysis with and without partitioned cross-layer
 * processing.
 *
 * Without partition, layer-by-layer processing must keep each
 * layer's full input + output activations resident, so the required
 * activation memory is the maximum such working set. With the
 * partition, the feature maps are tiled along the spatial dimensions
 * into P stripes processed through consecutive layers, so only 1/P of
 * each working set plus a (kernel-1)-wide halo per layer is resident.
 */

#ifndef EYECOD_ACCEL_PARTITION_H
#define EYECOD_ACCEL_PARTITION_H

#include <vector>

#include "nn/layer.h"

namespace eyecod {
namespace accel {

/** Result of the activation-memory analysis for one model. */
struct PartitionAnalysis
{
    long long unpartitioned_bytes = 0; ///< Peak in+out working set.
    long long partitioned_bytes = 0;   ///< Peak with P stripes + halo.
    int partition_factor = 1;          ///< Chosen P.
    bool fits = false;                 ///< Partitioned set fits budget.
};

/** Peak layer-by-layer activation working set (8-bit activations). */
long long peakActivationBytes(
    const std::vector<nn::LayerWorkload> &layers);

/** Resident activation bytes when partitioned into @p stripes. */
long long partitionedActivationBytes(
    const std::vector<nn::LayerWorkload> &layers, int stripes);

/**
 * Pick the smallest power-of-two partition factor whose resident set
 * fits @p budget_bytes (caps at @p max_stripes).
 */
PartitionAnalysis analyzePartition(
    const std::vector<nn::LayerWorkload> &layers,
    long long budget_bytes, int max_stripes = 16);

/**
 * Traffic overhead of running one model partitioned into @p stripes:
 * consecutive stripes re-read a (kernel-1)-row halo of every layer's
 * input from the activation GB, and every stripe re-streams each
 * layer's weights from the weight GB through the ping-pong buffers
 * (the weights cannot stay resident across the cross-layer stripe
 * walk). Both terms are zero at stripes == 1, so an unpartitioned
 * model pays nothing.
 */
struct PartitionOverhead
{
    /** Halo bytes re-read from the Act GB, whole model. */
    long long act_reread_bytes = 0;
    /** Weight bytes re-streamed (weight GB + ping-pong buffers). */
    long long weight_restream_bytes = 0;
};

PartitionOverhead partitionOverhead(
    const std::vector<nn::LayerWorkload> &layers, int stripes);

} // namespace accel
} // namespace eyecod

#endif // EYECOD_ACCEL_PARTITION_H
