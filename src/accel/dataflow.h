/**
 * @file
 * Per-layer dataflow cost model of the EyeCoD accelerator.
 *
 * Mapping (Sec. 5.2): each MAC lane holds one input-activation row in
 * its FIFO and streams weights from the ping-pong weight buffers
 * (row-wise intra-channel reuse). Work is tiled into "waves" of up to
 * `mac_lanes` spatial units:
 *
 *  - generic / point-wise conv (and FC / matmul): a unit is one
 *    output row for a group of 8 output channels; the 8 MACs of a
 *    lane compute 8 filters against the broadcast input row (input
 *    reuse), so a wave costs w_out * K * K * c_in cycles with all 8
 *    MACs busy;
 *  - depth-wise conv, naive mapping: a unit is one output row of ONE
 *    channel — there is no cross-filter input reuse, so only 1 of 8
 *    MACs can be fed from the lane's single row (Challenge #II);
 *  - depth-wise conv, optimized (Principle #II, Fig. 10):
 *    column-wise intra-channel reuse lets ceil(K/stride) weight rows
 *    share one input row (that many MACs active), and deeper
 *    row-wise reuse splits a row across two lanes, halving wave
 *    cycles.
 *
 * Input-read stalls (Challenge #IV / Principle #IV): a layer demands
 * `input_bytes / compute_cycles` bytes per cycle from the activation
 * GB. With the sequential-write-parallel-read input buffer the full
 * banked bandwidth is usable and next-round rows load during the
 * current round; without it reads serialize and effective bandwidth
 * halves. Demand beyond the effective bandwidth stalls the array.
 */

#ifndef EYECOD_ACCEL_DATAFLOW_H
#define EYECOD_ACCEL_DATAFLOW_H

#include "accel/energy.h"
#include "accel/hw_config.h"
#include "nn/layer.h"

namespace eyecod {
namespace accel {

/** Cost of one layer execution on (a slice of) the array. */
struct LayerCost
{
    long long compute_cycles = 0; ///< Array-occupancy cycles.
    long long stall_cycles = 0;   ///< Input-bandwidth stalls.
    long long ideal_macs = 0;     ///< Algorithmic MAC count.
    int lanes_used = 0;           ///< Peak lanes occupied.
    int waves = 0;                ///< Spatial tiling waves.
    double utilization = 0.0;     ///< ideal / (cycles * lanes * 8).
    double read_bytes_per_cycle = 0.0; ///< Act GB read demand.
    ActivityCounts activity;      ///< Energy-relevant traffic.

    /** Total cycles including stalls. */
    long long totalCycles() const
    {
        return compute_cycles + stall_cycles;
    }
};

/**
 * Cost a single layer on @p lanes_available lanes of the array.
 *
 * Non-MAC layers (pool / upsample / add / batchnorm / activation)
 * cost their data movement on the Act GB; concat is free (the banked
 * storage arrangement of Fig. 11 makes it address arithmetic).
 *
 * @param w layer workload (8-bit datatype byte counts).
 * @param hw hardware configuration (feature switches respected).
 * @param lanes_available lanes granted by the orchestrator.
 */
LayerCost costLayer(const nn::LayerWorkload &w, const HwConfig &hw,
                    int lanes_available);

/**
 * Sum the cost of an entire model (layer list) run layer-by-layer on
 * @p lanes_available lanes.
 */
LayerCost costModel(const std::vector<nn::LayerWorkload> &layers,
                    const HwConfig &hw, int lanes_available);

} // namespace accel
} // namespace eyecod

#endif // EYECOD_ACCEL_DATAFLOW_H
