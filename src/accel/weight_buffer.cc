#include "accel/weight_buffer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace eyecod {
namespace accel {

WeightStreamTiming
simulateWeightStream(const WeightStreamConfig &c)
{
    eyecod_assert(c.weight_bytes >= 0 && c.compute_cycles >= 0 &&
                  c.buffer_bytes > 0 && c.gb_bytes_per_cycle > 0.0,
                  "bad weight stream configuration");
    WeightStreamTiming t;
    if (c.weight_bytes == 0) {
        t.total_cycles = c.compute_cycles;
        return t;
    }
    t.chunks = int((c.weight_bytes + c.buffer_bytes - 1) /
                   c.buffer_bytes);
    const long long chunk_load = (long long)std::ceil(
        double(std::min(c.weight_bytes, c.buffer_bytes)) /
        c.gb_bytes_per_cycle);
    t.load_cycles = (long long)t.chunks * chunk_load;

    // Compute is spread evenly over the chunks (each chunk's weights
    // cover a slice of the output channels).
    const long long compute_per_chunk =
        c.compute_cycles / std::max(1, t.chunks);

    if (!c.double_buffered) {
        // Every chunk load is exposed.
        t.stall_cycles = t.load_cycles;
    } else {
        // The first fill is exposed; subsequent fills overlap the
        // previous chunk's compute window.
        t.stall_cycles = chunk_load;
        for (int i = 1; i < t.chunks; ++i)
            t.stall_cycles +=
                std::max(0LL, chunk_load - compute_per_chunk);
    }
    t.total_cycles = c.compute_cycles + t.stall_cycles;
    return t;
}

} // namespace accel
} // namespace eyecod
