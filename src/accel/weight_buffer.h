/**
 * @file
 * Timing model of the ping-pong weight buffers (Fig. 9): two 64 KB
 * buffers between the weight GB and the MAC lanes, filled
 * alternately so the next chunk loads while the current one streams
 * to the lanes — "to avoid the weight load stalls". Stalls appear
 * only when a chunk's load time exceeds the compute time it covers
 * (small layers with large weights, i.e. FC).
 */

#ifndef EYECOD_ACCEL_WEIGHT_BUFFER_H
#define EYECOD_ACCEL_WEIGHT_BUFFER_H

namespace eyecod {
namespace accel {

/** Weight streaming parameters for one layer. */
struct WeightStreamConfig
{
    long long weight_bytes = 0;  ///< Layer weight footprint.
    long long compute_cycles = 0; ///< Layer compute duration.
    long long buffer_bytes = 64 * 1024; ///< One ping-pong buffer.
    double gb_bytes_per_cycle = 16.0; ///< Weight GB bandwidth.
    bool double_buffered = true; ///< Ping-pong enabled.
};

/** Timing result of streaming one layer's weights. */
struct WeightStreamTiming
{
    int chunks = 0;             ///< Buffer-sized chunks.
    long long load_cycles = 0;  ///< Total fill time.
    long long stall_cycles = 0; ///< Exposed (non-overlapped) time.
    long long total_cycles = 0; ///< Compute + stalls.
};

/**
 * Simulate weight streaming for one layer: chunk i+1 loads during
 * the compute window of chunk i when double buffering is on;
 * otherwise every load is exposed.
 */
WeightStreamTiming simulateWeightStream(const WeightStreamConfig &c);

} // namespace accel
} // namespace eyecod

#endif // EYECOD_ACCEL_WEIGHT_BUFFER_H
