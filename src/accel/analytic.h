/**
 * @file
 * Shared closed-form accelerator formulas. The dataflow cost model,
 * the roofline analysis, the serving timing model, and the
 * design-space estimators (src/dse) all derive their numbers from
 * these helpers, so "peak MACs/cycle" or "cycles at the configured
 * clock" can never drift apart between the cycle-level simulator and
 * the analytical estimators that must validate against it.
 */

#ifndef EYECOD_ACCEL_ANALYTIC_H
#define EYECOD_ACCEL_ANALYTIC_H

#include "accel/hw_config.h"

namespace eyecod {
namespace accel {

/** ceil division for positive integers. */
constexpr long long
ceilDivPositive(long long a, long long b)
{
    return (a + b - 1) / b;
}

/** Peak MAC throughput of the array, MACs per cycle. */
inline double
peakMacsPerCycle(const HwConfig &hw)
{
    return double(hw.totalMacs());
}

/**
 * Machine-balance intensity: the MACs-per-activation-byte arithmetic
 * intensity at which the compute and bandwidth roofs meet.
 */
inline double
balanceIntensity(const HwConfig &hw)
{
    return peakMacsPerCycle(hw) / hw.actReadBandwidth();
}

/**
 * Aggregate Act-GB bank bandwidth available to data-movement layers
 * (pool / upsample / add), bytes per cycle: every bank of one GB
 * serves one address per cycle.
 */
inline double
bankMoveBandwidth(const HwConfig &hw)
{
    return double(hw.act_gb_banks) * double(hw.act_bank_width_bytes);
}

/** Cycles at the configured clock, in microseconds. */
inline double
cyclesToUs(long long cycles, const HwConfig &hw)
{
    return double(cycles) / hw.clock_hz * 1e6;
}

/** Frames per second of a per-frame cycle count (floor of 1 cycle). */
inline double
cyclesToFps(long long frame_cycles, const HwConfig &hw)
{
    return hw.clock_hz /
           double(frame_cycles < 1 ? 1LL : frame_cycles);
}

} // namespace accel
} // namespace eyecod

#endif // EYECOD_ACCEL_ANALYTIC_H
