/**
 * @file
 * Deterministic hardware fault model of the EyeCoD accelerator,
 * mirroring the sensor-path fault injection of
 * flatcam/fault_injection for the silicon half of the co-design.
 *
 * Edge eye-tracking accelerators (i-FlatCam, JaneEye) operate at
 * aggressive voltage/area points where the dominant reliability
 * concerns are SRAM bit upsets and MAC-lane defects. The model
 * covers:
 *
 *  - *chip-instance* faults drawn once per seed: manufacturing-dead
 *    MAC lanes (detected at BIST and retired) and stuck-at SRAM words
 *    whose single-bit errors recur on every access;
 *  - *per-frame transient* faults: lanes computing wrong results for
 *    one frame (undetected — no ECC on the datapath), word upsets in
 *    the activation GBs / weight buffers / input buffer, and
 *    orchestrator stall events (control hangs, arbitration
 *    livelocks).
 *
 * A SECDED ECC model classifies every SRAM upset as corrected
 * (single bit), detected-uncorrectable (double bit, triggers a
 * refetch retry), or silent (multi-bit escape, or everything when
 * ECC is disabled); corrected/detected events carry cycle and energy
 * overheads folded into the PerfReport, silent events perturb the
 * functional RITNet/FBNet activations through the NN runtime's
 * activation tap.
 *
 * Like the sensor injector, the schedule is a pure function of
 * (seed, frame, unit): every query derives a fresh splitmix64-seeded
 * RNG, so replaying a faulted simulation is bitwise identical
 * regardless of call order.
 */

#ifndef EYECOD_ACCEL_HW_FAULTS_H
#define EYECOD_ACCEL_HW_FAULTS_H

#include <array>
#include <cstdint>
#include <vector>

#include "accel/hw_config.h"
#include "nn/tensor.h"

namespace eyecod {
namespace accel {

/** The hardware fault taxonomy. */
enum class HwFaultKind : int {
    DeadLane = 0,     ///< Chip-instance lane defect (BIST-retired).
    StuckLane,        ///< Transient wrong-compute lane (silent).
    TransientBitFlip, ///< One-frame SRAM word upset.
    PersistentBitFlip, ///< Stuck-at SRAM word (recurs every access).
    OrchestratorStall, ///< Control stall: dead cycles, no corruption.
};

/** Number of HwFaultKind values. */
constexpr int kNumHwFaultKinds = 5;

/** Human-readable name of an HwFaultKind. */
const char *hwFaultKindName(HwFaultKind kind);

/** SRAM domains subject to bit flips. */
enum class SramDomain : int {
    ActGb = 0,     ///< Banked activation global buffers.
    WeightBuffer,  ///< Weight GB + ping-pong buffers.
    InputBuffer,   ///< SWPR input activation buffer groups.
};

/** Number of SramDomain values. */
constexpr int kNumSramDomains = 3;

/** Human-readable name of an SramDomain. */
const char *sramDomainName(SramDomain domain);

/** SECDED ECC behaviour per SRAM bank. */
struct EccConfig
{
    bool enabled = true;
    /** Fraction of upsets hitting two bits of one word (adjacent
     *  cells); SECDED detects but cannot correct these. */
    double double_bit_fraction = 0.08;
    /** Fraction of upsets hitting >= 3 bits: escapes SECDED and
     *  corrupts data silently. */
    double multi_bit_fraction = 0.005;
    /** Pipeline bubble per corrected word. */
    long long correction_cycles = 3;
    /** Refetch penalty per detected-uncorrectable word (re-read the
     *  tile from the weight GB / DRAM path). */
    long long retry_cycles = 512;
};

/** ECC outcome counters of one simulated frame (or a whole run). */
struct EccCounters
{
    long long corrected = 0;              ///< Single-bit, fixed inline.
    long long detected_uncorrectable = 0; ///< Double-bit, retried.
    long long silent = 0;                 ///< Escaped ECC (or ECC off).
    long long overhead_cycles = 0;        ///< Correction + retry time.

    /** Total classified upset events. */
    long long
    total() const
    {
        return corrected + detected_uncorrectable + silent;
    }

    EccCounters &
    operator+=(const EccCounters &o)
    {
        corrected += o.corrected;
        detected_uncorrectable += o.detected_uncorrectable;
        silent += o.silent;
        overhead_cycles += o.overhead_cycles;
        return *this;
    }
};

/** Per-kind rates and shape knobs of the hardware fault model. */
struct HwFaultConfig
{
    /** P(a given lane computes wrong results) per lane per frame. */
    double stuck_lane_rate = 0.0;
    /** P(a given lane is manufactured dead), chip-instance. */
    double dead_lane_rate = 0.0;
    /** Expected transient word upsets per SRAM bank per frame. */
    double transient_flip_rate = 0.0;
    /** P(a given SRAM bank carries a stuck-at word), chip-instance. */
    double persistent_flip_rate = 0.0;
    /** P(an orchestrator stall event) per frame. */
    double stall_rate = 0.0;
    /** Dead cycles per stall event. */
    long long stall_cycles = 20000;

    /** Lanes already mapped out by BIST/operator policy; the
     *  orchestrator re-partitions work across the survivors. */
    int retired_lanes = 0;

    /** SECDED ECC model applied to every SRAM domain. */
    EccConfig ecc;

    /**
     * Accesses per frame that land on one stuck-at word: each access
     * re-raises the single-bit error (re-corrected by ECC every
     * time, or silently corrupting without it).
     */
    long long persistent_touches_per_frame = 64;

    uint64_t seed = 0xacce1;  ///< Schedule seed.

    /**
     * Active frame window [first_frame, last_frame] for *transient*
     * faults; last_frame < 0 means unbounded. Chip-instance faults
     * (dead lanes, stuck-at words) are window-independent.
     */
    long first_frame = 0;
    long last_frame = -1;

    /** True when any fault rate is positive. */
    bool anyEnabled() const;

    /** A uniform mixed-fault config: every rate at @p rate. */
    static HwFaultConfig mixed(double rate, uint64_t seed = 0xacce1);
};

/** Chip-instance (seed-only, frame-independent) faults. */
struct ChipFaults
{
    std::vector<int> dead_lanes; ///< BIST-detected lane defects.
    /** Stuck-at words per SRAM domain. */
    std::array<int, kNumSramDomains> stuck_words{};

    /** Total stuck-at words across domains. */
    int totalStuckWords() const;
};

/** The transient faults planned for one frame. */
struct FrameHwFaults
{
    std::vector<int> stuck_lanes; ///< Wrong-compute lanes this frame.
    /** Transient word upsets per SRAM domain. */
    std::array<long, kNumSramDomains> flips{};
    long long stall_cycles = 0;   ///< Injected orchestrator stalls.

    /** Total transient upsets across domains. */
    long totalFlips() const;

    /** True when any fault is planned. */
    bool any() const;
};

/**
 * Stateless, deterministic hardware fault source. All methods are
 * const and derive their randomness from (config seed, frame, unit)
 * only, so replays are bitwise identical.
 */
class HwFaultInjector
{
  public:
    /**
     * @param cfg fault rates and ECC model.
     * @param hw hardware configuration (lane and bank counts).
     */
    HwFaultInjector(HwFaultConfig cfg, const HwConfig &hw);

    /** Chip-instance faults (computed once from the seed). */
    const ChipFaults &chip() const { return chip_; }

    /** The transient fault schedule entry for @p frame. */
    FrameHwFaults plan(long frame) const;

    /**
     * SECDED classification of the frame's upsets (transient flips
     * of @p faults plus the chip's stuck-at word re-corrections),
     * with correction/retry cycle overheads.
     */
    EccCounters classify(const FrameHwFaults &faults, long frame) const;

    /**
     * Silently-corrupting events reaching the datapath at @p frame:
     * ECC-escaping (or unprotected) SRAM upsets plus stuck-lane
     * wrong-compute events. This is what the functional activation
     * corruption scales with.
     */
    long long silentEvents(long frame) const;

    /**
     * Deterministically perturb one executor step's output as if the
     * frame's silent faults reached it: each silent event lands in
     * this step with a fixed per-step probability; SRAM escapes flip
     * one bit of one float activation, stuck-lane events zero one
     * 8-element MAC-group run. A frame with no silent events leaves
     * @p out bitwise untouched.
     *
     * @param out the step's output activations (perturbed in place).
     * @param frame frame index.
     * @param model_tag decorrelates models sharing a frame (e.g.
     *        hashes of "ritnet"/"fbnet").
     * @param step_node the plan step's node id.
     */
    void corruptStepOutput(nn::Tensor &out, long frame,
                           uint64_t model_tag, int step_node) const;

    /** Lanes to retire: configured count plus BIST-dead lanes. */
    int retiredLaneCount() const;

    /** SRAM banks modelled per domain for this hardware config. */
    int banksIn(SramDomain domain) const;

    /** Configuration in use. */
    const HwFaultConfig &config() const { return cfg_; }

  private:
    HwFaultConfig cfg_;
    int mac_lanes_;
    std::array<int, kNumSramDomains> banks_{};
    ChipFaults chip_;
};

} // namespace accel
} // namespace eyecod

#endif // EYECOD_ACCEL_HW_FAULTS_H
