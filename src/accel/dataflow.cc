#include "accel/dataflow.h"

#include <algorithm>
#include <cmath>

#include "accel/analytic.h"
#include "common/logging.h"

namespace eyecod {
namespace accel {

using nn::LayerKind;
using nn::LayerWorkload;

namespace {

/** Shared closed form (accel/analytic.h), local shorthand. */
constexpr auto ceilDiv = ceilDivPositive;

/** Fill the common derived fields of a MAC-layer cost. */
void
finalizeMacCost(LayerCost &c, const LayerWorkload &w,
                const HwConfig &hw, long long input_bytes)
{
    c.ideal_macs = w.macs;
    if (c.compute_cycles > 0) {
        c.utilization =
            double(c.ideal_macs) /
            (double(c.compute_cycles) * double(hw.totalMacs()));
        c.read_bytes_per_cycle =
            double(input_bytes) / double(c.compute_cycles);
    }
    // Input-bandwidth stalls beyond the effective GB read bandwidth.
    const double bw = hw.actReadBandwidth();
    const long long min_read_cycles =
        (long long)std::ceil(double(input_bytes) / bw);
    c.stall_cycles = std::max(0LL, min_read_cycles - c.compute_cycles);

    c.activity.mac_ops = c.ideal_macs;
    c.activity.act_gb_bytes = input_bytes + w.outActBytes();
    // Rows pass through the input buffer; weights through the
    // ping-pong buffers.
    c.activity.buf_bytes = input_bytes + w.weightBytes();
    c.activity.weight_gb_bytes = w.weightBytes();
    // Weights are streamed from off-chip once per execution (the
    // weight GB double-buffers them); activations stay on-chip.
    c.activity.dram_bytes = w.weightBytes();
    c.activity.cycles = c.totalCycles();
}

/** Generic / point-wise convolution (FC and matmul lower to this). */
LayerCost
costDenseConv(const LayerWorkload &w, const HwConfig &hw, int lanes)
{
    LayerCost c;
    const long long cgroups = ceilDiv(w.c_out, hw.macs_per_lane);
    const long long units = (long long)w.h_out * cgroups;
    c.waves = int(ceilDiv(units, lanes));
    const long long wave_cycles =
        (long long)w.w_out * w.kernel * w.kernel * w.c_in;
    c.compute_cycles = c.waves * wave_cycles;
    c.lanes_used = int(std::min<long long>(units, lanes));

    // Each output row pulls K input rows; rows are broadcast across
    // the channel groups sharing the same spatial row.
    const long long input_bytes =
        (long long)w.kernel * w.h_out * w.w_in * w.c_in;
    finalizeMacCost(c, w, hw, input_bytes);
    return c;
}

/** Fully-connected: one unit per 8-output group, c_in-cycle waves. */
LayerCost
costFc(const LayerWorkload &w, const HwConfig &hw, int lanes)
{
    LayerCost c;
    const long long units = ceilDiv(w.c_out, hw.macs_per_lane);
    c.waves = int(ceilDiv(units, lanes));
    c.compute_cycles = c.waves * std::max(1, w.c_in);
    c.lanes_used = int(std::min<long long>(units, lanes));
    finalizeMacCost(c, w, hw, w.c_in);
    return c;
}

/**
 * Matrix-matrix multiplication: treated as point-wise convolution
 * with batch > 1 (Sec. 5.1): units tile (rows x column groups), a
 * wave costs k cycles per output column.
 */
LayerCost
costMatMul(const LayerWorkload &w, const HwConfig &hw, int lanes)
{
    LayerCost c;
    const long long rows = w.c_out; // rows in the workload encoding
    const long long cols = w.w_out;
    const long long k = w.c_in;
    const long long cgroups = ceilDiv(cols, hw.macs_per_lane);
    const long long units = rows * cgroups;
    c.waves = int(ceilDiv(units, lanes));
    // A wave streams the k-length input row once: k cycles produce 8
    // outputs per lane.
    c.compute_cycles = c.waves * std::max(1LL, k);
    c.lanes_used = int(std::min<long long>(units, lanes));
    const long long input_bytes = rows * k; // each row read once
    finalizeMacCost(c, w, hw, input_bytes);
    return c;
}

/** Depth-wise convolution. */
LayerCost
costDepthwise(const LayerWorkload &w, const HwConfig &hw, int lanes)
{
    LayerCost c;
    long long units;
    long long wave_cycles;
    long long input_bytes;

    if (!hw.depthwise_optimization) {
        // Naive mapping: one output row of one channel per lane;
        // only 1 of the 8 MACs can be fed from the single row FIFO.
        units = (long long)w.h_out * w.c_out;
        wave_cycles = (long long)w.w_out * w.kernel * w.kernel;
        input_bytes =
            (long long)w.kernel * w.h_out * w.w_in * w.c_in;
    } else {
        // Column-wise intra-channel reuse: ceil(K/stride) weight rows
        // of one filter column share the lane's input row, producing
        // that many output rows (Fig. 10a). Stride > 1 halves the
        // sharing because weight rows then hit disjoint input rows.
        const int col_reuse =
            std::max(1, (w.kernel + w.stride - 1) / w.stride);
        // Deeper row-wise reuse (Fig. 10b): split one input row over
        // two lanes when the row is long enough to amortize it.
        const int row_split = w.w_out >= 16 ? 2 : 1;
        units = ceilDiv(w.h_out, col_reuse) * (long long)w.c_out *
                row_split;
        wave_cycles = ceilDiv(w.w_out, row_split) *
                      (long long)w.kernel * w.kernel;
        // The shared row feeds col_reuse output rows, cutting reads.
        input_bytes = (long long)w.kernel * w.h_out * w.w_in *
                      w.c_in / col_reuse;
    }
    c.waves = int(ceilDiv(units, lanes));
    c.compute_cycles = c.waves * wave_cycles;
    c.lanes_used = int(std::min<long long>(units, lanes));
    finalizeMacCost(c, w, hw, input_bytes);
    return c;
}

/** Non-MAC layers: data movement on the activation GB. */
LayerCost
costDataMovement(const LayerWorkload &w, const HwConfig &hw)
{
    LayerCost c;
    long long bytes = w.inActBytes() + w.outActBytes();
    if (w.kind == LayerKind::Concat) {
        // The banked storage arrangement (Fig. 11c) realizes concat
        // as address arithmetic: no data moves.
        bytes = 0;
    }
    const double bw = bankMoveBandwidth(hw);
    c.compute_cycles = (long long)std::ceil(double(bytes) / bw);
    c.activity.act_gb_bytes = bytes;
    c.activity.cycles = c.compute_cycles;
    c.utilization = 0.0;
    return c;
}

} // namespace

LayerCost
costLayer(const LayerWorkload &w, const HwConfig &hw,
          int lanes_available)
{
    eyecod_assert(lanes_available > 0 &&
                  lanes_available <= hw.mac_lanes,
                  "layer %s granted %d lanes (array has %d)",
                  w.name.c_str(), lanes_available, hw.mac_lanes);
    switch (w.kind) {
      case LayerKind::ConvGeneric:
      case LayerKind::ConvPointwise:
        return costDenseConv(w, hw, lanes_available);
      case LayerKind::ConvDepthwise:
        return costDepthwise(w, hw, lanes_available);
      case LayerKind::FullyConnected:
        return costFc(w, hw, lanes_available);
      case LayerKind::MatMul:
        return costMatMul(w, hw, lanes_available);
      default:
        return costDataMovement(w, hw);
    }
}

LayerCost
costModel(const std::vector<LayerWorkload> &layers, const HwConfig &hw,
          int lanes_available)
{
    LayerCost total;
    for (const LayerWorkload &w : layers) {
        const LayerCost c = costLayer(w, hw, lanes_available);
        total.compute_cycles += c.compute_cycles;
        total.stall_cycles += c.stall_cycles;
        total.ideal_macs += c.ideal_macs;
        total.lanes_used = std::max(total.lanes_used, c.lanes_used);
        total.waves += c.waves;
        total.activity += c.activity;
    }
    if (total.totalCycles() > 0) {
        total.utilization =
            double(total.ideal_macs) /
            (double(total.totalCycles()) * double(hw.totalMacs()));
    }
    return total;
}

} // namespace accel
} // namespace eyecod
