#include "accel/act_gb.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace eyecod {
namespace accel {

namespace {

/** Channel tiles of a view with c channels and t-pixel tiles. */
int
channelTiles(int c, int t)
{
    return (c + t - 1) / t;
}

} // namespace

int8_t
ActView::read(const ActGbModel &gb, int c, int y, int x) const
{
    eyecod_assert(c >= 0 && c < c_ && y >= 0 && y < h_ && x >= 0 &&
                  x < w_,
                  "ActView read (%d,%d,%d) out of %dx%dx%d bounds",
                  c, y, x, c_, h_, w_);
    switch (kind_) {
      case Kind::Base: {
        const int ct = channelTiles(c_, gb.tileChannels());
        const long tile =
            base_tile_ + (long(y) * w_ + x) * ct +
            c / gb.tileChannels();
        return gb.readPhysical(tile, c % gb.tileChannels());
      }
      case Kind::Partition:
        return child_a_->read(gb, c, y + off_y_, x + off_x_);
      case Kind::Concat:
        if (c < child_a_->channels())
            return child_a_->read(gb, c, y, x);
        return child_b_->read(gb, c - child_a_->channels(), y, x);
      case Kind::Downsample:
        return child_a_->read(gb, c, y * factor_, x * factor_);
      case Kind::Upsample:
        if (zero_insert_ && (y % factor_ != 0 || x % factor_ != 0))
            return 0;
        return child_a_->read(gb, c, y / factor_, x / factor_);
    }
    panic("unreachable view kind");
}

TileAddress
ActView::tileOf(const ActGbModel &gb, int c, int y, int x) const
{
    switch (kind_) {
      case Kind::Base: {
        const int ct = channelTiles(c_, gb.tileChannels());
        const long tile =
            base_tile_ + (long(y) * w_ + x) * ct +
            c / gb.tileChannels();
        return gb.mapTile(tile);
      }
      case Kind::Partition:
        return child_a_->tileOf(gb, c, y + off_y_, x + off_x_);
      case Kind::Concat:
        if (c < child_a_->channels())
            return child_a_->tileOf(gb, c, y, x);
        return child_b_->tileOf(gb, c - child_a_->channels(), y, x);
      case Kind::Downsample:
        return child_a_->tileOf(gb, c, y * factor_, x * factor_);
      case Kind::Upsample:
        return child_a_->tileOf(gb, c, y / factor_, x / factor_);
    }
    panic("unreachable view kind");
}

ActGbModel::ActGbModel(int banks, int tile_channels, long bank_rows)
    : banks_(banks), tile_channels_(tile_channels),
      bank_rows_(bank_rows)
{
    eyecod_assert(banks > 0 && tile_channels > 0 && bank_rows > 0,
                  "bad ActGbModel configuration");
    storage_.resize(size_t(banks));
    for (auto &bank : storage_)
        bank.assign(size_t(bank_rows) * tile_channels, 0);
}

int8_t
ActGbModel::readPhysical(long tile, int lane) const
{
    const TileAddress a = mapTile(tile);
    eyecod_assert(a.row < bank_rows_, "Act GB tile %ld out of range",
                  tile);
    return storage_[size_t(a.bank)]
                   [size_t(a.row) * tile_channels_ + lane];
}

void
ActGbModel::writePhysical(long tile, int lane, int8_t value)
{
    const TileAddress a = mapTile(tile);
    eyecod_assert(a.row < bank_rows_, "Act GB tile %ld out of range",
                  tile);
    storage_[size_t(a.bank)][size_t(a.row) * tile_channels_ + lane] =
        value;
}

ActView
ActGbModel::alloc(int c, int h, int w)
{
    eyecod_assert(c > 0 && h > 0 && w > 0, "alloc of empty view");
    ActView v;
    v.kind_ = ActView::Kind::Base;
    v.c_ = c;
    v.h_ = h;
    v.w_ = w;
    v.base_tile_ = next_tile_;
    const long tiles =
        long(h) * w * channelTiles(c, tile_channels_);
    next_tile_ += tiles;
    eyecod_assert(next_tile_ <= bank_rows_ * banks_,
                  "Act GB capacity exceeded (%ld tiles > %ld)",
                  next_tile_, bank_rows_ * banks_);
    return v;
}

ActView
ActGbModel::store(const nn::Tensor &t)
{
    const nn::Shape s = t.shape();
    ActView v = alloc(s.c, s.h, s.w);
    for (int c = 0; c < s.c; ++c)
        for (int y = 0; y < s.h; ++y)
            for (int x = 0; x < s.w; ++x)
                write(v, c, y, x,
                      int8_t(std::clamp(
                          std::lround(t.at(c, y, x) * 127.0f), -128L,
                          127L)));
    return v;
}

void
ActGbModel::write(const ActView &v, int c, int y, int x, int8_t value)
{
    eyecod_assert(v.kind_ == ActView::Kind::Base,
                  "writes only through base views");
    const int ct = channelTiles(v.c_, tile_channels_);
    const long tile =
        v.base_tile_ + (long(y) * v.w_ + x) * ct + c / tile_channels_;
    writePhysical(tile, c % tile_channels_, value);
}

ActView
ActGbModel::partition(const ActView &v, int off_y, int off_x, int h,
                      int w) const
{
    eyecod_assert(off_y >= 0 && off_x >= 0 &&
                  off_y + h <= v.height() && off_x + w <= v.width(),
                  "partition out of bounds");
    ActView out;
    out.kind_ = ActView::Kind::Partition;
    out.c_ = v.channels();
    out.h_ = h;
    out.w_ = w;
    out.off_y_ = off_y;
    out.off_x_ = off_x;
    out.child_a_ = std::make_shared<ActView>(v);
    return out;
}

ActView
ActGbModel::concat(const ActView &a, const ActView &b) const
{
    eyecod_assert(a.height() == b.height() && a.width() == b.width(),
                  "concat extent mismatch");
    ActView out;
    out.kind_ = ActView::Kind::Concat;
    out.c_ = a.channels() + b.channels();
    out.h_ = a.height();
    out.w_ = a.width();
    out.child_a_ = std::make_shared<ActView>(a);
    out.child_b_ = std::make_shared<ActView>(b);
    return out;
}

ActView
ActGbModel::downsample(const ActView &v, int factor) const
{
    eyecod_assert(factor >= 2, "downsample factor must be >= 2");
    ActView out;
    out.kind_ = ActView::Kind::Downsample;
    out.c_ = v.channels();
    out.h_ = v.height() / factor;
    out.w_ = v.width() / factor;
    out.factor_ = factor;
    out.child_a_ = std::make_shared<ActView>(v);
    return out;
}

ActView
ActGbModel::upsample(const ActView &v, int factor,
                     bool zero_insert) const
{
    eyecod_assert(factor >= 2, "upsample factor must be >= 2");
    ActView out;
    out.kind_ = ActView::Kind::Upsample;
    out.c_ = v.channels();
    out.h_ = v.height() * factor;
    out.w_ = v.width() * factor;
    out.factor_ = factor;
    out.zero_insert_ = zero_insert;
    out.child_a_ = std::make_shared<ActView>(v);
    return out;
}

int
ActGbModel::conflictsFor(const std::vector<TileAddress> &tiles) const
{
    std::vector<int> per_bank(size_t(banks_), 0);
    for (const TileAddress &t : tiles)
        ++per_bank[size_t(t.bank)];
    int max_depth = 0;
    for (int d : per_bank)
        max_depth = std::max(max_depth, d);
    // Serialized extra cycles beyond the first parallel access.
    return std::max(0, max_depth - 1);
}

} // namespace accel
} // namespace eyecod
