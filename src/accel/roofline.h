/**
 * @file
 * Roofline analysis of the accelerator workload: per-layer
 * arithmetic intensity (MACs per byte of activation + weight
 * traffic) against the machine balance point (peak MACs/cycle over
 * activation-GB bytes/cycle), classifying each layer as compute- or
 * bandwidth-bound. This is the analytical companion to the stall
 * model: bandwidth-bound layers are exactly the ones the SWPR input
 * buffer and the depth-wise intra-channel reuse rescue.
 */

#ifndef EYECOD_ACCEL_ROOFLINE_H
#define EYECOD_ACCEL_ROOFLINE_H

#include <string>
#include <vector>

#include "accel/hw_config.h"
#include "accel/workload.h"

namespace eyecod {
namespace accel {

/** Roofline placement of one layer. */
struct RooflinePoint
{
    std::string layer;
    nn::LayerKind kind;
    double intensity = 0.0;      ///< MACs per traffic byte.
    double attainable = 0.0;     ///< MACs/cycle under the roofline.
    double achieved = 0.0;       ///< MACs/cycle from the cost model.
    bool bandwidth_bound = false; ///< Below the balance point.
};

/** Whole-model roofline summary. */
struct RooflineSummary
{
    double balance_intensity = 0.0; ///< Machine balance (MACs/B).
    double peak_macs_per_cycle = 0.0;
    std::vector<RooflinePoint> points;
    int bandwidth_bound_layers = 0;
    double bandwidth_bound_mac_share = 0.0; ///< Fraction of MACs.
};

/**
 * Compute the roofline placement of every MAC layer of a model on
 * the given hardware.
 */
RooflineSummary analyzeRoofline(const ModelWorkload &model,
                                const HwConfig &hw);

} // namespace accel
} // namespace eyecod

#endif // EYECOD_ACCEL_ROOFLINE_H
