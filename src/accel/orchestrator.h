/**
 * @file
 * Workload orchestration between the per-frame (reconstruction +
 * gaze) workloads and the periodic segmentation workload, in the
 * three modes of Sec. 5.1: time-multiplexing, concurrent, and the
 * proposed partial time-multiplexing (Fig. 6).
 */

#ifndef EYECOD_ACCEL_ORCHESTRATOR_H
#define EYECOD_ACCEL_ORCHESTRATOR_H

#include <string>
#include <vector>

#include "accel/dataflow.h"
#include "accel/workload.h"
#include "common/status.h"

namespace eyecod {
namespace accel {

/** One layer's slot in the frame schedule (Fig. 7 trace source). */
struct LayerTrace
{
    std::string model;    ///< Owning model name.
    std::string layer;    ///< Layer name.
    long long start_cycle = 0;
    long long cycles = 0; ///< Including stalls.
    double utilization = 0.0; ///< MAC utilization during the slot.
    int lanes = 0;        ///< Lanes granted.
    bool coscheduled = false; ///< Segmentation ran on spare lanes.
};

/** Schedule of one steady-state frame. */
struct FrameSchedule
{
    long long frame_cycles = 0;  ///< Amortized steady-state frame.
    long long peak_frame_cycles = 0; ///< Worst frame (seg boundary).
    double utilization = 0.0;    ///< MAC utilization incl. seg work.
    double seg_hidden_fraction = 0.0; ///< Seg work absorbed in slack.
    int concurrent_seg_lanes = 0; ///< Static split (Concurrent mode).
    ActivityCounts activity;     ///< Per-frame (amortized) activity.
    std::vector<LayerTrace> trace; ///< Per-frame layer timeline.
};

/**
 * Schedule one steady-state frame of the pipeline workloads.
 *
 * @param workloads per-frame workloads (period == 1) plus periodic
 *        ones (period > 1); see buildPipelineWorkload().
 * @param hw configuration; hw.orchestration selects the mode.
 */
FrameSchedule scheduleFrame(const std::vector<ModelWorkload> &workloads,
                            const HwConfig &hw);

/**
 * Checked scheduling entry: returns typed Status errors instead of
 * panicking on malformed inputs (invalid HwConfig, empty workload
 * set, no per-frame workload), and ScheduleTimeout when the frame
 * exceeds hw.watchdog_cycle_budget.
 */
[[nodiscard]] Result<FrameSchedule> scheduleFrameChecked(
    const std::vector<ModelWorkload> &workloads, const HwConfig &hw);

} // namespace accel
} // namespace eyecod

#endif // EYECOD_ACCEL_ORCHESTRATOR_H
