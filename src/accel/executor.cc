#include "accel/executor.h"

#include <algorithm>
#include <vector>

#include "accel/dataflow.h"
#include "common/logging.h"

namespace eyecod {
namespace accel {

ExecStats
executeStream(const InstructionStream &stream,
              const ModelWorkload &model, const HwConfig &hw)
{
    Result<ExecStats> r = executeStreamChecked(stream, model, hw);
    if (!r.ok())
        panic("executeStream(%s): %s", model.name.c_str(),
              r.status().toString().c_str());
    return r.take();
}

Result<ExecStats>
executeStreamChecked(const InstructionStream &stream,
                     const ModelWorkload &model, const HwConfig &hw,
                     long long max_dynamic_instructions)
{
    const std::string problem = validateStream(stream);
    if (!problem.empty())
        return Status::error(ErrorCode::InvalidArgument,
                             "invalid stream for %s: %s",
                             model.name.c_str(), problem.c_str());
    if (max_dynamic_instructions <= 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "non-positive dynamic instruction cap");

    // Per-layer wave cycle cost from the dataflow model (the
    // fixed-width encoding stores wave counts, not cycle counts).
    std::vector<long long> wave_cycles(model.layers.size(), 0);
    for (size_t i = 0; i < model.layers.size(); ++i) {
        const nn::LayerWorkload &w = model.layers[i];
        if (!nn::isMacKind(w.kind))
            continue;
        const LayerCost c = costLayer(w, hw, hw.mac_lanes);
        wave_cycles[i] =
            c.compute_cycles / std::max(1, c.waves);
    }

    struct LoopFrame
    {
        size_t begin_pc;    ///< Index of the LoopBegin.
        int64_t remaining;  ///< Iterations left after this one.
    };

    ExecStats stats;
    std::vector<LoopFrame> loops;
    // Warn once on the way up, before the watchdog trips.
    const long long near_cap =
        max_dynamic_instructions - max_dynamic_instructions / 10;
    size_t pc = 0;
    while (pc < stream.instructions.size()) {
        const Instruction &in = stream.instructions[pc];
        ++stats.dynamic_instructions;
        if (stats.dynamic_instructions == near_cap)
            warnLimited("accel-exec-near-cap",
                        "stream for %s at 90%% of its %lld dynamic "
                        "instruction budget",
                        model.name.c_str(),
                        max_dynamic_instructions);
        if (stats.dynamic_instructions >= max_dynamic_instructions)
            return Status::error(
                ErrorCode::ScheduleTimeout,
                "runaway instruction stream for %s: over %lld "
                "dynamic instructions",
                model.name.c_str(), max_dynamic_instructions);
        switch (in.op) {
          case Opcode::LoopBegin:
            loops.push_back({pc, in.arg0 - 1});
            stats.max_loop_depth = std::max(
                stats.max_loop_depth, int(loops.size()));
            break;
          case Opcode::LoopEnd:
            if (loops.empty())
                return Status::error(
                    ErrorCode::Internal,
                    "loop underflow at pc %zu in stream for %s", pc,
                    model.name.c_str());
            if (loops.back().remaining > 0) {
                --loops.back().remaining;
                pc = loops.back().begin_pc;
            } else {
                loops.pop_back();
            }
            break;
          case Opcode::LoadWeights:
            stats.weight_bytes += in.arg0;
            stats.peak_weight_chunk =
                std::max<long long>(stats.peak_weight_chunk,
                                    in.arg0);
            break;
          case Opcode::Compute: {
            if (in.layer < 0 ||
                size_t(in.layer) >= wave_cycles.size())
                return Status::error(
                    ErrorCode::InvalidArgument,
                    "compute references unknown layer %d in stream "
                    "for %s",
                    in.layer, model.name.c_str());
            stats.compute_cycles +=
                in.arg0 * wave_cycles[size_t(in.layer)];
            break;
          }
          case Opcode::LoadInput:
            stats.act_bytes += in.arg0 + in.arg1;
            break;
          case Opcode::StoreOutput:
            stats.act_bytes += in.arg0;
            break;
          case Opcode::Reshape:
            ++stats.reshape_views;
            break;
          case Opcode::ConfigLayer:
          case Opcode::Barrier:
            break;
        }
        ++pc;
    }
    return stats;
}

} // namespace accel
} // namespace eyecod
