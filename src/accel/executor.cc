#include "accel/executor.h"

#include <algorithm>
#include <vector>

#include "accel/dataflow.h"
#include "common/logging.h"

namespace eyecod {
namespace accel {

ExecStats
executeStream(const InstructionStream &stream,
              const ModelWorkload &model, const HwConfig &hw)
{
    eyecod_assert(validateStream(stream).empty(),
                  "executing an invalid stream for %s",
                  model.name.c_str());

    // Per-layer wave cycle cost from the dataflow model (the
    // fixed-width encoding stores wave counts, not cycle counts).
    std::vector<long long> wave_cycles(model.layers.size(), 0);
    for (size_t i = 0; i < model.layers.size(); ++i) {
        const nn::LayerWorkload &w = model.layers[i];
        if (!nn::isMacKind(w.kind))
            continue;
        const LayerCost c = costLayer(w, hw, hw.mac_lanes);
        wave_cycles[i] =
            c.compute_cycles / std::max(1, c.waves);
    }

    struct LoopFrame
    {
        size_t begin_pc;    ///< Index of the LoopBegin.
        int64_t remaining;  ///< Iterations left after this one.
    };

    ExecStats stats;
    std::vector<LoopFrame> loops;
    constexpr long long kDynamicCap = 50'000'000;
    size_t pc = 0;
    while (pc < stream.instructions.size()) {
        const Instruction &in = stream.instructions[pc];
        ++stats.dynamic_instructions;
        eyecod_assert(stats.dynamic_instructions < kDynamicCap,
                      "runaway instruction stream for %s",
                      model.name.c_str());
        switch (in.op) {
          case Opcode::LoopBegin:
            loops.push_back({pc, in.arg0 - 1});
            stats.max_loop_depth = std::max(
                stats.max_loop_depth, int(loops.size()));
            break;
          case Opcode::LoopEnd:
            eyecod_assert(!loops.empty(), "loop underflow");
            if (loops.back().remaining > 0) {
                --loops.back().remaining;
                pc = loops.back().begin_pc;
            } else {
                loops.pop_back();
            }
            break;
          case Opcode::LoadWeights:
            stats.weight_bytes += in.arg0;
            stats.peak_weight_chunk =
                std::max<long long>(stats.peak_weight_chunk,
                                    in.arg0);
            break;
          case Opcode::Compute: {
            eyecod_assert(in.layer >= 0 &&
                          size_t(in.layer) < wave_cycles.size(),
                          "compute references unknown layer %d",
                          in.layer);
            stats.compute_cycles +=
                in.arg0 * wave_cycles[size_t(in.layer)];
            break;
          }
          case Opcode::LoadInput:
            stats.act_bytes += in.arg0 + in.arg1;
            break;
          case Opcode::StoreOutput:
            stats.act_bytes += in.arg0;
            break;
          case Opcode::Reshape:
            ++stats.reshape_views;
            break;
          case Opcode::ConfigLayer:
          case Opcode::Barrier:
            break;
        }
        ++pc;
    }
    return stats;
}

} // namespace accel
} // namespace eyecod
