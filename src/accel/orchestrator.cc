#include "accel/orchestrator.h"

#include <algorithm>

#include "common/logging.h"

namespace eyecod {
namespace accel {

namespace {

/** Scale activity counters by 1/period for amortized accounting. */
ActivityCounts
scaleActivity(const ActivityCounts &a, int period)
{
    ActivityCounts s;
    s.mac_ops = a.mac_ops / period;
    s.act_gb_bytes = a.act_gb_bytes / period;
    s.buf_bytes = a.buf_bytes / period;
    s.weight_gb_bytes = a.weight_gb_bytes / period;
    s.dram_bytes = a.dram_bytes / period;
    s.cycles = a.cycles / period;
    return s;
}

/** Append a model's layers to the trace; returns the total cycles. */
long long
appendModelTrace(FrameSchedule &fs, const ModelWorkload &m,
                 const HwConfig &hw, int lanes, long long start)
{
    long long t = start;
    for (const nn::LayerWorkload &w : m.layers) {
        const LayerCost c = costLayer(w, hw, lanes);
        LayerTrace lt;
        lt.model = m.name;
        lt.layer = w.name;
        lt.start_cycle = t;
        lt.cycles = c.totalCycles();
        lt.utilization = double(c.ideal_macs) /
                         (double(std::max(1LL, c.totalCycles())) *
                          double(hw.totalMacs()));
        lt.lanes = c.lanes_used;
        fs.trace.push_back(std::move(lt));
        t += c.totalCycles();
    }
    return t - start;
}

FrameSchedule
scheduleTimeMux(const std::vector<const ModelWorkload *> &per_frame,
                const std::vector<const ModelWorkload *> &periodic,
                const HwConfig &hw)
{
    FrameSchedule fs;
    long long t = 0;
    long long ideal = 0;
    for (const ModelWorkload *m : per_frame) {
        t += appendModelTrace(fs, *m, hw, hw.mac_lanes, t);
        const LayerCost c = costModel(m->layers, hw, hw.mac_lanes);
        fs.activity += c.activity;
        ideal += c.ideal_macs;
    }
    // Time-multiplexing interleaves the periodic model's layers
    // across the window, one chunk per frame; the worst frame
    // additionally carries the periodic model's bottleneck layer
    // (the paper's Challenge #I analysis of RITNet's 3rd / 5th /
    // 42nd / 44th layers).
    long long worst_periodic_layer = 0;
    long long amortized_periodic = 0;
    for (const ModelWorkload *m : periodic) {
        const LayerCost c = costModel(m->layers, hw, hw.mac_lanes);
        for (const nn::LayerWorkload &w : m->layers) {
            worst_periodic_layer = std::max(
                worst_periodic_layer,
                costLayer(w, hw, hw.mac_lanes).totalCycles());
        }
        amortized_periodic += c.totalCycles() / m->period;
        t += c.totalCycles() / m->period;
        fs.activity += scaleActivity(c.activity, m->period);
        ideal += c.ideal_macs / m->period;
        // The periodic model appears in the trace at its amortized
        // share so the timeline sums to the steady-state frame.
        LayerTrace lt;
        lt.model = m->name;
        lt.layer = "(amortized 1/" + std::to_string(m->period) + ")";
        lt.start_cycle = t - c.totalCycles() / m->period;
        lt.cycles = c.totalCycles() / m->period;
        lt.utilization = c.utilization;
        lt.lanes = hw.mac_lanes;
        fs.trace.push_back(std::move(lt));
    }
    fs.frame_cycles = t;
    fs.peak_frame_cycles = std::max(
        t, t - amortized_periodic + worst_periodic_layer);
    fs.utilization = double(ideal) /
                     (double(std::max(1LL, fs.frame_cycles)) *
                      double(hw.totalMacs()));
    return fs;
}

FrameSchedule
scheduleConcurrent(const std::vector<const ModelWorkload *> &per_frame,
                   const std::vector<const ModelWorkload *> &periodic,
                   const HwConfig &hw)
{
    // Find the static lane split minimizing the steady frame time.
    long long best_frame = -1;
    int best_s = 1;
    for (int s = 1; s < hw.mac_lanes; ++s) {
        long long pf = 0;
        for (const ModelWorkload *m : per_frame)
            pf += costModel(m->layers, hw, hw.mac_lanes - s)
                      .totalCycles();
        long long pd = 0;
        for (const ModelWorkload *m : periodic)
            pd += costModel(m->layers, hw, s).totalCycles() /
                  m->period;
        const long long frame = std::max(pf, pd);
        if (best_frame < 0 || frame < best_frame) {
            best_frame = frame;
            best_s = s;
        }
    }

    FrameSchedule fs;
    fs.concurrent_seg_lanes = best_s;
    long long t = 0;
    long long ideal = 0;
    for (const ModelWorkload *m : per_frame) {
        t += appendModelTrace(fs, *m, hw, hw.mac_lanes - best_s, t);
        const LayerCost c =
            costModel(m->layers, hw, hw.mac_lanes - best_s);
        fs.activity += c.activity;
        ideal += c.ideal_macs;
    }
    for (const ModelWorkload *m : periodic) {
        const LayerCost c = costModel(m->layers, hw, best_s);
        fs.activity += scaleActivity(c.activity, m->period);
        ideal += c.ideal_macs / m->period;
    }
    fs.frame_cycles = std::max(t, best_frame);
    fs.peak_frame_cycles = fs.frame_cycles;
    fs.utilization = double(ideal) /
                     (double(std::max(1LL, fs.frame_cycles)) *
                      double(hw.totalMacs()));
    return fs;
}

FrameSchedule
schedulePartial(const std::vector<const ModelWorkload *> &per_frame,
                const std::vector<const ModelWorkload *> &periodic,
                const HwConfig &hw)
{
    FrameSchedule fs;
    const double total_macs = double(hw.totalMacs());

    // Per-frame (gaze-side) timeline at full width, collecting the
    // spare MAC-cycles of every slot below the donation threshold.
    long long t = 0;
    long long ideal = 0;
    double donated = 0.0;
    std::vector<size_t> donor_slots;
    for (const ModelWorkload *m : per_frame) {
        for (const nn::LayerWorkload &w : m->layers) {
            const LayerCost c = costLayer(w, hw, hw.mac_lanes);
            LayerTrace lt;
            lt.model = m->name;
            lt.layer = w.name;
            lt.start_cycle = t;
            lt.cycles = c.totalCycles();
            lt.utilization =
                double(c.ideal_macs) /
                (double(std::max(1LL, c.totalCycles())) * total_macs);
            lt.lanes = c.lanes_used;
            if (lt.utilization < hw.partial_util_threshold &&
                c.totalCycles() > 0) {
                donated += (1.0 - lt.utilization) *
                           double(c.totalCycles()) * total_macs;
                donor_slots.push_back(fs.trace.size());
            }
            fs.trace.push_back(std::move(lt));
            t += c.totalCycles();
            ideal += c.ideal_macs;
        }
        const LayerCost c = costModel(m->layers, hw, hw.mac_lanes);
        fs.activity += c.activity;
    }

    // Periodic (segmentation) demand per frame, in MAC-cycles at the
    // efficiency it achieves when co-running on spare lanes (half
    // array is the representative grant).
    double needed = 0.0;
    long long periodic_ideal = 0;
    for (const ModelWorkload *m : periodic) {
        const int granted = std::max(1, hw.mac_lanes / 2);
        const LayerCost c = costModel(m->layers, hw, granted);
        // Efficiency per *granted* MAC when co-running on spare lanes.
        const double eff =
            double(c.ideal_macs) /
            (double(std::max(1LL, c.totalCycles())) * granted *
             hw.macs_per_lane);
        const double eff_clamped = std::clamp(eff, 0.05, 0.9);
        needed += double(c.ideal_macs) / m->period / eff_clamped;
        periodic_ideal += c.ideal_macs / m->period;
        fs.activity += scaleActivity(c.activity, m->period);
    }

    const double hidden = std::min(donated, needed);
    fs.seg_hidden_fraction = needed > 0.0 ? hidden / needed : 1.0;
    const long long extra =
        (long long)std::ceil((needed - hidden) / total_macs);
    fs.frame_cycles = t + extra;
    fs.peak_frame_cycles = fs.frame_cycles;
    ideal += periodic_ideal;
    fs.utilization = double(ideal) /
                     (double(std::max(1LL, fs.frame_cycles)) *
                      total_macs);

    // Mark donor slots and credit them with the absorbed seg work.
    if (donated > 0.0) {
        for (size_t idx : donor_slots) {
            LayerTrace &lt = fs.trace[idx];
            const double slot_spare =
                (1.0 - lt.utilization) * double(lt.cycles) *
                total_macs;
            const double credit = slot_spare / donated * hidden;
            lt.coscheduled = true;
            lt.utilization = std::min(
                0.97, lt.utilization +
                          credit / (double(lt.cycles) * total_macs));
        }
    }
    return fs;
}

} // namespace

FrameSchedule
scheduleFrame(const std::vector<ModelWorkload> &workloads,
              const HwConfig &hw)
{
    eyecod_assert(!workloads.empty(), "scheduleFrame with no work");
    std::vector<const ModelWorkload *> per_frame;
    std::vector<const ModelWorkload *> periodic;
    for (const ModelWorkload &m : workloads) {
        if (m.period <= 1)
            per_frame.push_back(&m);
        else
            periodic.push_back(&m);
    }
    eyecod_assert(!per_frame.empty(),
                  "pipeline needs at least one per-frame workload");

    switch (hw.orchestration) {
      case OrchestrationMode::TimeMultiplex:
        return scheduleTimeMux(per_frame, periodic, hw);
      case OrchestrationMode::Concurrent:
        return scheduleConcurrent(per_frame, periodic, hw);
      case OrchestrationMode::PartialTimeMultiplex:
        return schedulePartial(per_frame, periodic, hw);
    }
    panic("unknown orchestration mode");
}

Result<FrameSchedule>
scheduleFrameChecked(const std::vector<ModelWorkload> &workloads,
                     const HwConfig &hw)
{
    const Status valid = validateHwConfig(hw);
    if (!valid.isOk())
        return valid;
    if (workloads.empty())
        return Status::error(ErrorCode::InvalidArgument,
                             "scheduleFrame with no workloads");
    bool any_per_frame = false;
    for (const ModelWorkload &m : workloads) {
        if (m.period < 1)
            return Status::error(ErrorCode::InvalidArgument,
                                 "workload %s has period %d (< 1)",
                                 m.name.c_str(), m.period);
        any_per_frame = any_per_frame || m.period == 1;
    }
    if (!any_per_frame)
        return Status::error(ErrorCode::InvalidArgument,
                             "pipeline needs at least one per-frame "
                             "workload");

    FrameSchedule fs = scheduleFrame(workloads, hw);
    if (hw.watchdog_cycle_budget > 0 &&
        fs.frame_cycles > hw.watchdog_cycle_budget)
        return Status::error(
            ErrorCode::ScheduleTimeout,
            "frame schedule of %lld cycles exceeds the watchdog "
            "budget of %lld",
            fs.frame_cycles, hw.watchdog_cycle_budget);
    return fs;
}

} // namespace accel
} // namespace eyecod
