/**
 * @file
 * Top-level accelerator simulator: composes the dataflow cost model,
 * the workload orchestrator, the feature-wise partition analysis,
 * and the energy model into the per-configuration performance report
 * that the Tab. 6 / Fig. 7 / Fig. 14 benchmarks consume.
 */

#ifndef EYECOD_ACCEL_SIMULATOR_H
#define EYECOD_ACCEL_SIMULATOR_H

#include "accel/energy.h"
#include "accel/orchestrator.h"
#include "accel/partition.h"
#include "accel/workload.h"

namespace eyecod {
namespace accel {

/** Performance report of one simulated configuration. */
struct PerfReport
{
    double fps = 0.0;        ///< Steady-state throughput.
    double fps_peak = 0.0;   ///< Worst-frame throughput.
    double utilization = 0.0; ///< Overall MAC utilization.
    long long frame_cycles = 0;
    double frame_ms = 0.0;
    double power_w = 0.0;        ///< Average power.
    double energy_per_frame_j = 0.0;
    double fps_per_watt = 0.0;   ///< Energy-efficiency metric.
    long long act_mem_bytes = 0; ///< Resident activations (partitioned).
    long long act_mem_unpartitioned = 0;
    int partition_factor = 1;
    bool act_mem_fits = false;   ///< Fits the two Act GBs.
    double seg_hidden_fraction = 0.0;
    ActivityCounts activity;     ///< Amortized per-frame activity.
    FrameSchedule schedule;      ///< Layer timeline (Fig. 7).
};

/**
 * Simulate one steady-state frame of the given pipeline workloads on
 * the given hardware configuration.
 */
PerfReport simulate(const std::vector<ModelWorkload> &workloads,
                    const HwConfig &hw, const EnergyModel &energy);

} // namespace accel
} // namespace eyecod

#endif // EYECOD_ACCEL_SIMULATOR_H
