/**
 * @file
 * Top-level accelerator simulator: composes the dataflow cost model,
 * the workload orchestrator, the feature-wise partition analysis,
 * and the energy model into the per-configuration performance report
 * that the Tab. 6 / Fig. 7 / Fig. 14 benchmarks consume.
 */

#ifndef EYECOD_ACCEL_SIMULATOR_H
#define EYECOD_ACCEL_SIMULATOR_H

#include "accel/energy.h"
#include "accel/hw_faults.h"
#include "accel/orchestrator.h"
#include "accel/partition.h"
#include "accel/workload.h"

namespace eyecod {
namespace accel {

/** Performance report of one simulated configuration. */
struct PerfReport
{
    double fps = 0.0;        ///< Steady-state throughput.
    double fps_peak = 0.0;   ///< Worst-frame throughput.
    double utilization = 0.0; ///< Overall MAC utilization.
    long long frame_cycles = 0;
    double frame_ms = 0.0;
    double power_w = 0.0;        ///< Average power.
    double energy_per_frame_j = 0.0;
    double fps_per_watt = 0.0;   ///< Energy-efficiency metric.
    long long act_mem_bytes = 0; ///< Resident activations (partitioned).
    long long act_mem_unpartitioned = 0;
    int partition_factor = 1;
    bool act_mem_fits = false;   ///< Fits the two Act GBs.
    /**
     * Extra frame cycles spent re-reading stripe halos when a model
     * runs feature-partitioned (partition_factor > 1); zero for an
     * unpartitioned pipeline, leaving those reports bitwise
     * unchanged. The matching traffic rides in `activity`.
     */
    long long partition_overhead_cycles = 0;
    double seg_hidden_fraction = 0.0;
    ActivityCounts activity;     ///< Amortized per-frame activity.
    FrameSchedule schedule;      ///< Layer timeline (Fig. 7).

    // --- Hardware-fault / degradation accounting. All zero (and
    // every field above bitwise unchanged) on the clean path. ---
    int active_lanes = 0;        ///< Lanes the schedule ran on.
    int retired_lanes = 0;       ///< Lanes mapped out (config + BIST).
    int stuck_lane_events = 0;   ///< Wrong-compute lanes this frame.
    long long injected_stall_cycles = 0; ///< Orchestrator stalls.
    EccCounters ecc;             ///< SECDED outcome counters.
    double ecc_energy_j = 0.0;   ///< ECC event energy (in totals).
};

/**
 * Simulate one steady-state frame of the given pipeline workloads on
 * the given hardware configuration. Panics on an invalid HwConfig or
 * workload set (trusted-caller entry; the serving path uses
 * simulateChecked/simulateFaulted).
 */
PerfReport simulate(const std::vector<ModelWorkload> &workloads,
                    const HwConfig &hw, const EnergyModel &energy);

/**
 * Checked simulation entry: malformed hardware configurations
 * (zero/negative lane counts, bank sizes, clock rates) and workload
 * sets return typed Status errors instead of downstream
 * divide-by-zero/NaN reports, and a schedule exceeding
 * hw.watchdog_cycle_budget returns ScheduleTimeout.
 */
[[nodiscard]] Result<PerfReport> simulateChecked(
    const std::vector<ModelWorkload> &workloads, const HwConfig &hw,
    const EnergyModel &energy);

/**
 * Simulate one frame under the hardware fault model: retired and
 * BIST-dead lanes are mapped out and the workloads re-partitioned
 * across the survivors (degraded FPS/utilization stay
 * self-consistent), SECDED correction/retry overheads extend the
 * frame and its energy, and injected orchestrator stalls count
 * against the cycle-budget watchdog. With every fault rate at zero
 * the report is bitwise identical to simulateChecked().
 *
 * Fails with HwLaneFault when no lane survives retirement and with
 * ScheduleTimeout when the degraded frame exceeds the watchdog
 * budget.
 */
Result<PerfReport> simulateFaulted(
    const std::vector<ModelWorkload> &workloads, const HwConfig &hw,
    const EnergyModel &energy, const HwFaultInjector &injector,
    long frame);

} // namespace accel
} // namespace eyecod

#endif // EYECOD_ACCEL_SIMULATOR_H
