#include "accel/partition.h"

#include <algorithm>

#include "common/logging.h"

namespace eyecod {
namespace accel {

long long
peakActivationBytes(const std::vector<nn::LayerWorkload> &layers)
{
    long long peak = 0;
    for (const nn::LayerWorkload &w : layers)
        peak = std::max(peak, w.inActBytes() + w.outActBytes());
    return peak;
}

long long
partitionedActivationBytes(
    const std::vector<nn::LayerWorkload> &layers, int stripes)
{
    eyecod_assert(stripes >= 1, "partition stripes must be >= 1");
    long long peak = 0;
    for (const nn::LayerWorkload &w : layers) {
        const long long body =
            (w.inActBytes() + w.outActBytes()) / stripes;
        // Cross-layer stripe processing keeps a (kernel-1)-column
        // halo of the input resident per stripe boundary.
        const long long halo =
            stripes > 1
                ? (long long)(w.kernel - 1) * w.h_in * w.c_in
                : 0;
        peak = std::max(peak, body + std::max(0LL, halo));
    }
    return peak;
}

PartitionAnalysis
analyzePartition(const std::vector<nn::LayerWorkload> &layers,
                 long long budget_bytes, int max_stripes)
{
    PartitionAnalysis a;
    a.unpartitioned_bytes = peakActivationBytes(layers);
    a.partition_factor = 1;
    a.partitioned_bytes = a.unpartitioned_bytes;
    while (a.partitioned_bytes > budget_bytes &&
           a.partition_factor < max_stripes) {
        a.partition_factor *= 2;
        a.partitioned_bytes =
            partitionedActivationBytes(layers, a.partition_factor);
    }
    a.fits = a.partitioned_bytes <= budget_bytes;
    return a;
}

PartitionOverhead
partitionOverhead(const std::vector<nn::LayerWorkload> &layers,
                  int stripes)
{
    eyecod_assert(stripes >= 1, "partition stripes must be >= 1");
    PartitionOverhead o;
    if (stripes <= 1)
        return o;
    for (const nn::LayerWorkload &w : layers) {
        // One halo per interior stripe boundary, matching the
        // resident-set halo of partitionedActivationBytes.
        const long long halo =
            std::max(0LL,
                     (long long)(w.kernel - 1) * w.h_in * w.c_in);
        o.act_reread_bytes += halo * (stripes - 1);
        // Each stripe beyond the first re-pulls the layer's weights
        // through the double-buffered weight path.
        o.weight_restream_bytes += w.weightBytes() * (stripes - 1);
    }
    return o;
}

} // namespace accel
} // namespace eyecod
