#include "accel/roofline.h"

#include <algorithm>

#include "accel/analytic.h"
#include "accel/dataflow.h"
#include "common/logging.h"

namespace eyecod {
namespace accel {

RooflineSummary
analyzeRoofline(const ModelWorkload &model, const HwConfig &hw)
{
    RooflineSummary s;
    s.peak_macs_per_cycle = peakMacsPerCycle(hw);
    const double bandwidth = hw.actReadBandwidth();
    s.balance_intensity = balanceIntensity(hw);

    long long total_macs = 0;
    long long bound_macs = 0;
    for (const nn::LayerWorkload &w : model.layers) {
        if (!nn::isMacKind(w.kind))
            continue;
        const LayerCost cost = costLayer(w, hw, hw.mac_lanes);
        RooflinePoint p;
        p.layer = w.name;
        p.kind = w.kind;
        // Intensity over the contended resource: activation-GB
        // *read* traffic (weights stream through their own buffers;
        // writes use the second GB). With the stall model charging
        // max(0, reads/bw - compute), achieved <= attainable holds
        // by construction.
        const double reads =
            double(cost.activity.act_gb_bytes - w.outActBytes());
        p.intensity = reads > 0.0 ? double(w.macs) / reads : 1e9;
        p.attainable = std::min(s.peak_macs_per_cycle,
                                p.intensity * bandwidth);
        p.achieved =
            double(w.macs) /
            double(std::max(1LL, cost.totalCycles()));
        p.bandwidth_bound = p.intensity < s.balance_intensity;
        total_macs += w.macs;
        if (p.bandwidth_bound) {
            ++s.bandwidth_bound_layers;
            bound_macs += w.macs;
        }
        s.points.push_back(std::move(p));
    }
    s.bandwidth_bound_mac_share =
        total_macs > 0 ? double(bound_macs) / double(total_macs)
                       : 0.0;
    return s;
}

} // namespace accel
} // namespace eyecod
