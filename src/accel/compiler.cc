#include "accel/isa.h"

#include <algorithm>

#include "accel/dataflow.h"
#include "common/logging.h"

namespace eyecod {
namespace accel {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::ConfigLayer: return "config";
      case Opcode::LoadWeights: return "load-weights";
      case Opcode::LoadInput:   return "load-input";
      case Opcode::Compute:     return "compute";
      case Opcode::StoreOutput: return "store-output";
      case Opcode::Reshape:     return "reshape";
      case Opcode::LoopBegin:   return "loop-begin";
      case Opcode::LoopEnd:     return "loop-end";
      case Opcode::Barrier:     return "barrier";
    }
    return "unknown";
}

std::map<Opcode, int>
InstructionStream::histogram() const
{
    std::map<Opcode, int> out;
    for (const Instruction &i : instructions)
        ++out[i.op];
    return out;
}

bool
InstructionStream::fitsOnChip(const HwConfig &hw) const
{
    return encodedBytes() <= hw.instr_sram_bytes &&
           index_bytes <= hw.index_sram_bytes;
}

namespace {

/** Bytes of one reshaping-view descriptor in the index SRAM. */
constexpr long long kDescriptorBytes = 16;

} // namespace

InstructionStream
compileModel(const ModelWorkload &model, const HwConfig &hw,
             int partition_stripes)
{
    eyecod_assert(partition_stripes >= 1,
                  "partition stripes must be >= 1");
    InstructionStream s;
    s.model = model.name;

    int layer_id = 0;
    for (const nn::LayerWorkload &w : model.layers) {
        if (!nn::isMacKind(w.kind)) {
            // Non-MAC layers lower to reshaping descriptors (concat
            // / up / down-sampling are address arithmetic, Fig. 11)
            // or to a data-movement instruction (pool / add / BN).
            if (w.kind == nn::LayerKind::Concat ||
                w.kind == nn::LayerKind::Upsample) {
                s.instructions.push_back(
                    {Opcode::Reshape, layer_id, partition_stripes,
                     0});
                s.index_bytes +=
                    kDescriptorBytes * partition_stripes;
            } else {
                // Pool / add / BN: a single streaming data-move
                // through the vector path (bytes in, bytes out).
                s.instructions.push_back(
                    {Opcode::LoadInput, layer_id,
                     w.inActBytes() / partition_stripes,
                     w.outActBytes() / partition_stripes});
            }
            ++layer_id;
            continue;
        }

        s.instructions.push_back(
            {Opcode::ConfigLayer, layer_id,
             int64_t(w.kernel) << 8 | int64_t(w.stride), w.c_out});

        // Weights stream through the 64 KB ping-pong buffers.
        const long long chunks =
            std::max(1LL, (w.weightBytes() + hw.weight_buf_bytes - 1)
                              / hw.weight_buf_bytes);
        if (chunks > 1) {
            s.instructions.push_back(
                {Opcode::LoopBegin, layer_id, chunks, 0});
            s.instructions.push_back(
                {Opcode::LoadWeights, layer_id,
                 std::min<long long>(w.weightBytes(),
                                     hw.weight_buf_bytes),
                 0});
            s.instructions.push_back(
                {Opcode::LoopEnd, layer_id, 0, 0});
        } else {
            s.instructions.push_back(
                {Opcode::LoadWeights, layer_id, w.weightBytes(), 0});
        }

        // One Compute instruction per stripe loop: the wave sequence
        // and the per-round input/output buffer traffic are
        // hardware-managed (the SWPR input buffer of Fig. 12 and the
        // output buffer drain autonomously), so the controller only
        // encodes the wave count and lane grant.
        const LayerCost cost = costLayer(w, hw, hw.mac_lanes);
        const long long waves_per_stripe =
            std::max(1LL,
                     (long long)cost.waves / partition_stripes);
        if (partition_stripes > 1) {
            s.instructions.push_back(
                {Opcode::LoopBegin, layer_id, partition_stripes, 0});
        }
        s.instructions.push_back(
            {Opcode::Compute, layer_id, waves_per_stripe,
             cost.lanes_used});
        if (partition_stripes > 1) {
            s.instructions.push_back(
                {Opcode::LoopEnd, layer_id, 0, 0});
        }

        // Stripe boundaries need a halo view descriptor.
        if (partition_stripes > 1)
            s.index_bytes += kDescriptorBytes * partition_stripes;
        ++layer_id;
    }
    s.instructions.push_back({Opcode::Barrier, -1, 0, 0});
    return s;
}

std::string
validateStream(const InstructionStream &s)
{
    int depth = 0;
    std::vector<char> weights_loaded;
    std::vector<char> configured;
    for (const Instruction &i : s.instructions) {
        if (i.layer >= 0) {
            if (size_t(i.layer) >= weights_loaded.size()) {
                weights_loaded.resize(size_t(i.layer) + 1, 0);
                configured.resize(size_t(i.layer) + 1, 0);
            }
        }
        switch (i.op) {
          case Opcode::LoopBegin:
            if (i.arg0 <= 0)
                return "loop with non-positive trip count";
            ++depth;
            break;
          case Opcode::LoopEnd:
            if (--depth < 0)
                return "unbalanced loop end";
            break;
          case Opcode::ConfigLayer:
            configured[size_t(i.layer)] = 1;
            break;
          case Opcode::LoadWeights:
            if (!configured[size_t(i.layer)])
                return "weights loaded before layer config";
            weights_loaded[size_t(i.layer)] = 1;
            break;
          case Opcode::Compute:
            if (!weights_loaded[size_t(i.layer)])
                return "compute before weights loaded";
            if (i.arg1 <= 0)
                return "compute with no lanes";
            break;
          default:
            break;
        }
    }
    if (depth != 0)
        return "unterminated loop";
    if (s.instructions.empty() ||
        s.instructions.back().op != Opcode::Barrier)
        return "stream must end with a barrier";
    return "";
}

} // namespace accel
} // namespace eyecod
