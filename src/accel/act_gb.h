/**
 * @file
 * Functional model of the activation global buffer storage
 * arrangement (Fig. 11): each bank address stores one 16-pixel tile
 * along the channel dimension, banks are interleaved along the
 * flattened (channel-tile, y, x) order, and the four reshaping
 * operations of the predict-then-focus pipeline — partition,
 * concatenation, down-sampling, up-sampling — are pure address
 * arithmetic over that arrangement (no data movement).
 */

#ifndef EYECOD_ACCEL_ACT_GB_H
#define EYECOD_ACCEL_ACT_GB_H

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace eyecod {
namespace accel {

/** Physical location of one activation tile. */
struct TileAddress
{
    int bank = 0;  ///< Bank index.
    long row = 0;  ///< Address within the bank.
};

class ActGbModel;

/**
 * A logical CHW view over activations stored in the GB. Views are
 * produced by allocation or by reshaping other views; reads resolve
 * through the view chain to physical tiles.
 */
class ActView
{
  public:
    /** Channels of the view. */
    int channels() const { return c_; }
    /** Height of the view. */
    int height() const { return h_; }
    /** Width of the view. */
    int width() const { return w_; }

    /** Read one activation (int8) through the view chain. */
    int8_t read(const ActGbModel &gb, int c, int y, int x) const;

    /**
     * Physical address of the tile holding (c, y, x); only defined
     * for views that resolve to a single backing tensor (i.e. not
     * across a concat seam).
     */
    TileAddress tileOf(const ActGbModel &gb, int c, int y,
                       int x) const;

  private:
    friend class ActGbModel;

    enum class Kind { Base, Partition, Concat, Downsample, Upsample };

    Kind kind_ = Kind::Base;
    int c_ = 0, h_ = 0, w_ = 0;
    // Base:
    long base_tile_ = 0; ///< First linear tile index.
    // Partition:
    int off_y_ = 0, off_x_ = 0;
    // Down/Upsample:
    int factor_ = 1;
    bool zero_insert_ = false;
    // Children (one for most, two for concat).
    std::shared_ptr<const ActView> child_a_;
    std::shared_ptr<const ActView> child_b_;
};

/**
 * The banked activation GB.
 */
class ActGbModel
{
  public:
    /**
     * @param banks parallel banks (4 in EyeCoD).
     * @param tile_channels channel pixels per address (16).
     * @param bank_rows addresses per bank.
     */
    ActGbModel(int banks, int tile_channels, long bank_rows);

    /** Allocate and write a CHW tensor (quantized to int8 storage). */
    ActView store(const nn::Tensor &t);

    /** Allocate space for a CHW shape without writing. */
    ActView alloc(int c, int h, int w);

    /** Write one value through a base view. */
    void write(const ActView &v, int c, int y, int x, int8_t value);

    // --- The four reshaping operations (Fig. 11 b-e) ---

    /** Spatial partition: a stripe [off_y, off_y+h) x [off_x, ...). */
    ActView partition(const ActView &v, int off_y, int off_x, int h,
                      int w) const;

    /** Channel-wise concatenation of two equal-extent views. */
    ActView concat(const ActView &a, const ActView &b) const;

    /** Factor-f down-sampling (keeps every f-th pixel). */
    ActView downsample(const ActView &v, int factor) const;

    /** Factor-f up-sampling (duplicate or zero-insert). */
    ActView upsample(const ActView &v, int factor,
                     bool zero_insert) const;

    /** Banks in the GB. */
    int banks() const { return banks_; }
    /** Channel pixels per address. */
    int tileChannels() const { return tile_channels_; }
    /** Tiles allocated so far. */
    long tilesAllocated() const { return next_tile_; }

    /**
     * Number of bank conflicts when the given tiles are fetched in
     * one cycle (tiles mapping to the same bank serialize).
     */
    int conflictsFor(const std::vector<TileAddress> &tiles) const;

  private:
    friend class ActView;

    /** Bank/row of a linear tile index (bank-interleaved). */
    TileAddress
    mapTile(long tile) const
    {
        return TileAddress{int(tile % banks_), tile / banks_};
    }

    int8_t readPhysical(long tile, int lane) const;
    void writePhysical(long tile, int lane, int8_t value);

    int banks_;
    int tile_channels_;
    long bank_rows_;
    long next_tile_ = 0;
    std::vector<std::vector<int8_t>> storage_; ///< Per-bank bytes.
};

} // namespace accel
} // namespace eyecod

#endif // EYECOD_ACCEL_ACT_GB_H
