/**
 * @file
 * Functional executor for compiled instruction streams: walks a
 * stream with a loop stack, tracks buffer occupancy, and accumulates
 * dynamic statistics. Used to cross-check the compiler against the
 * analytical dataflow model — the executor's cycle total for a model
 * must agree with costModel() on the same hardware.
 */

#ifndef EYECOD_ACCEL_EXECUTOR_H
#define EYECOD_ACCEL_EXECUTOR_H

#include "accel/isa.h"
#include "common/status.h"

namespace eyecod {
namespace accel {

/** Dynamic statistics of one stream execution. */
struct ExecStats
{
    long long dynamic_instructions = 0; ///< Instructions retired.
    long long compute_cycles = 0;   ///< MAC-array busy cycles.
    long long weight_bytes = 0;     ///< Weight buffer fill traffic.
    long long act_bytes = 0;        ///< Data-move traffic.
    int reshape_views = 0;          ///< Descriptors installed.
    int max_loop_depth = 0;
    /** Peak single-chunk weight-buffer occupancy. */
    long long peak_weight_chunk = 0;
};

/**
 * Execute a compiled stream against its source model.
 *
 * @param stream output of compileModel().
 * @param model the model the stream was compiled from (supplies the
 *        per-wave cycle counts the fixed-width encoding omits).
 * @param hw hardware configuration used at compile time.
 */
ExecStats executeStream(const InstructionStream &stream,
                        const ModelWorkload &model,
                        const HwConfig &hw);

/**
 * Checked execution entry: invalid streams and compute references to
 * unknown layers return InvalidArgument, loop-stack underflow returns
 * Internal, and a stream retiring more than
 * @p max_dynamic_instructions returns ScheduleTimeout (the runaway
 * watchdog) instead of panicking.
 */
[[nodiscard]] Result<ExecStats> executeStreamChecked(
    const InstructionStream &stream, const ModelWorkload &model,
    const HwConfig &hw,
    long long max_dynamic_instructions = 50'000'000);

} // namespace accel
} // namespace eyecod

#endif // EYECOD_ACCEL_EXECUTOR_H
