/**
 * @file
 * Energy model of the EyeCoD accelerator. Per-operation energies are
 * 28 nm-class constants calibrated so the simulated chip lands on the
 * silicon prototype's measured power envelope (154.32 mW at 370 MHz,
 * Fig. 13); the paper's own simulator derives these costs "from the
 * real chip measurement or the post-layout simulation".
 */

#ifndef EYECOD_ACCEL_ENERGY_H
#define EYECOD_ACCEL_ENERGY_H

namespace eyecod {
namespace accel {

/** Aggregate activity counters of one simulated frame (or window). */
struct ActivityCounts
{
    long long mac_ops = 0;        ///< int8 multiply-accumulates.
    long long act_gb_bytes = 0;   ///< Activation GB reads + writes.
    long long buf_bytes = 0;      ///< Small-buffer (input/weight) traffic.
    long long weight_gb_bytes = 0; ///< Weight GB reads.
    long long dram_bytes = 0;     ///< Off-chip traffic.
    long long cycles = 0;         ///< Elapsed cycles (leakage).

    ActivityCounts &
    operator+=(const ActivityCounts &o)
    {
        mac_ops += o.mac_ops;
        act_gb_bytes += o.act_gb_bytes;
        buf_bytes += o.buf_bytes;
        weight_gb_bytes += o.weight_gb_bytes;
        dram_bytes += o.dram_bytes;
        cycles += o.cycles;
        return *this;
    }
};

/** Per-operation energy constants (picojoules). */
struct EnergyModel
{
    double mac_pj = 0.25;       ///< int8 MAC incl. local weight reg.
    double buf_pj_per_byte = 0.35;  ///< 64 KB-class SRAM access.
    double act_gb_pj_per_byte = 1.2; ///< 512 KB-class SRAM access.
    double weight_gb_pj_per_byte = 1.2;
    double dram_pj_per_byte = 20.0;  ///< LPDDR-class interface.
    double leakage_w = 0.030;   ///< Static power (whole chip).
    /**
     * Clock tree + control fabric power while the chip is active;
     * calibrated so the full configuration lands on the Tab. 1
     * simulator envelope (335 mW) at peak utilization.
     */
    double clock_tree_w = 0.125;
    double clock_hz = 370e6;

    // --- SECDED ECC event overheads (hardware fault model) ---
    // Syndrome computation rides the SRAM access pipeline; only the
    // *events* cost extra: an inline single-bit correction, or the
    // weight-GB/DRAM-path refetch a detected-uncorrectable word
    // triggers. Zero events (the clean path) adds zero energy.
    double ecc_correct_pj = 8.0;  ///< Per corrected word.
    double ecc_retry_pj = 250.0;  ///< Per detected-uncorrectable word.

    /** Energy of ECC correction/retry events, in joules. */
    double
    eccEventJoules(long long corrected,
                   long long detected_uncorrectable) const
    {
        return (double(corrected) * ecc_correct_pj +
                double(detected_uncorrectable) * ecc_retry_pj) *
               1e-12;
    }

    /** Dynamic + static energy of the counted activity, in joules. */
    double
    energyJoules(const ActivityCounts &c) const
    {
        const double dynamic =
            (double(c.mac_ops) * mac_pj +
             double(c.act_gb_bytes) * act_gb_pj_per_byte +
             double(c.buf_bytes) * buf_pj_per_byte +
             double(c.weight_gb_bytes) * weight_gb_pj_per_byte +
             double(c.dram_bytes) * dram_pj_per_byte) * 1e-12;
        const double t = double(c.cycles) / clock_hz;
        return dynamic + (leakage_w + clock_tree_w) * t;
    }

    /** Average power over the counted window, in watts. */
    double
    averagePowerWatts(const ActivityCounts &c) const
    {
        const double t = double(c.cycles) / clock_hz;
        return t > 0.0 ? energyJoules(c) / t : 0.0;
    }
};

} // namespace accel
} // namespace eyecod

#endif // EYECOD_ACCEL_ENERGY_H
