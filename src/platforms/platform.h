/**
 * @file
 * Analytical models of the baseline platforms of Fig. 14 — EdgeCPU
 * (Raspberry Pi), CPU (AMD EPYC 7742), EdgeGPU (Jetson TX2), GPU
 * (RTX 2080 Ti), and the CIS-GEP eye tracking ASIC — plus the
 * camera-to-processor communication model that separates the paper's
 * end-to-end system speedups (abstract: 10.95x / 3.21x / 12.85x)
 * from its compute-only throughput ratios (Sec. 6.2: 12.75x / 2.61x
 * / 12.86x).
 *
 * Each platform is characterized by its sustained batch-1 DNN
 * throughput (MAC/s), a fixed per-frame overhead (kernel launch /
 * scheduling), a power envelope, and its camera link. Constants are
 * documented estimates from public specifications; Fig. 14 reports
 * ratios, which these models are built to preserve (see DESIGN.md).
 */

#ifndef EYECOD_PLATFORMS_PLATFORM_H
#define EYECOD_PLATFORMS_PLATFORM_H

#include <string>
#include <vector>

namespace eyecod {
namespace platforms {

/** Camera-to-processor link. */
struct CommLink
{
    double bandwidth_bytes_per_s = 100e6;
    double fixed_latency_s = 1e-3;

    /** Transfer latency of one frame of @p bytes. */
    double
    latency(long long bytes) const
    {
        return fixed_latency_s +
               double(bytes) / bandwidth_bytes_per_s;
    }
};

/** A general-purpose platform model. */
struct PlatformSpec
{
    std::string name;
    /** Sustained batch-1 MAC/s on the eye tracking DNNs. */
    double effective_mac_per_s = 1e9;
    /** Fixed per-frame software overhead (seconds). */
    double frame_overhead_s = 0.0;
    /** Board / system power during inference (watts). */
    double power_w = 1.0;
    /** Camera link to the processor. */
    CommLink link;
    /**
     * Fixed-function throughput: when > 0 the platform is a
     * dedicated processor (CIS-GEP) whose FPS is taken from its own
     * publication instead of the MAC model.
     */
    double fixed_fps = 0.0;
};

/** Per-platform evaluation result. */
struct PlatformPerf
{
    std::string name;
    double compute_s = 0.0;  ///< Per-frame compute latency.
    double comm_s = 0.0;     ///< Per-frame camera-link latency.
    double fps = 0.0;        ///< Compute-only throughput.
    double system_fps = 0.0; ///< End-to-end (comm + compute).
    double fps_per_watt = 0.0;
    double energy_per_frame_j = 0.0;
};

/**
 * Evaluate a platform on a per-frame workload.
 *
 * @param spec platform model.
 * @param macs_per_frame amortized MACs per frame.
 * @param frame_bytes camera-to-processor bytes per frame.
 */
PlatformPerf evaluatePlatform(const PlatformSpec &spec,
                              double macs_per_frame,
                              long long frame_bytes);

/** The five Fig. 14 baselines with documented constants. */
std::vector<PlatformSpec> baselinePlatforms();

/** The EyeCoD sensor-attached FlatCam link (Sec. 4.2). */
CommLink eyecodAttachedLink();

} // namespace platforms
} // namespace eyecod

#endif // EYECOD_PLATFORMS_PLATFORM_H
