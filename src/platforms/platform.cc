#include "platforms/platform.h"

#include "common/logging.h"

namespace eyecod {
namespace platforms {

PlatformPerf
evaluatePlatform(const PlatformSpec &spec, double macs_per_frame,
                 long long frame_bytes)
{
    eyecod_assert(macs_per_frame > 0.0, "empty workload");
    PlatformPerf p;
    p.name = spec.name;
    if (spec.fixed_fps > 0.0) {
        p.compute_s = 1.0 / spec.fixed_fps;
    } else {
        p.compute_s = spec.frame_overhead_s +
                      macs_per_frame / spec.effective_mac_per_s;
    }
    p.comm_s = spec.link.latency(frame_bytes);
    p.fps = 1.0 / p.compute_s;
    p.system_fps = 1.0 / (p.compute_s + p.comm_s);
    p.fps_per_watt = p.fps / spec.power_w;
    p.energy_per_frame_j = spec.power_w * (p.compute_s + p.comm_s);
    return p;
}

std::vector<PlatformSpec>
baselinePlatforms()
{
    std::vector<PlatformSpec> out;

    // EdgeCPU: Raspberry Pi class. Scalar fp32 inference without a
    // tuned BLAS sustains O(0.1) GMAC/s on these small-batch models.
    PlatformSpec edge_cpu;
    edge_cpu.name = "EdgeCPU";
    edge_cpu.effective_mac_per_s = 0.12e9;
    edge_cpu.frame_overhead_s = 2e-3;
    edge_cpu.power_w = 4.0;
    edge_cpu.link = CommLink{30e6, 4e-3}; // USB2 camera
    out.push_back(edge_cpu);

    // CPU: AMD EPYC 7742, batch-1 (the paper pins batch size to 1).
    // Single-stream inference uses a fraction of the socket: ~30
    // GMAC/s sustained across the pipeline's small layers.
    PlatformSpec cpu;
    cpu.name = "CPU";
    cpu.effective_mac_per_s = 30e9;
    cpu.frame_overhead_s = 1e-3;
    cpu.power_w = 225.0;
    cpu.link = CommLink{300e6, 1e-3}; // USB3 camera
    out.push_back(cpu);

    // EdgeGPU: Jetson TX2. Batch-1 fp16 with per-layer launch
    // overheads sustains ~25 GMAC/s on this workload.
    PlatformSpec edge_gpu;
    edge_gpu.name = "EdgeGPU";
    edge_gpu.effective_mac_per_s = 25e9;
    edge_gpu.frame_overhead_s = 1.5e-3;
    edge_gpu.power_w = 15.0;
    edge_gpu.link = CommLink{400e6, 1e-3}; // CSI camera
    out.push_back(edge_gpu);

    // GPU: RTX 2080 Ti. Batch-1 inference is kernel-launch bound:
    // ~200 GMAC/s sustained plus ~0.8 ms of launch/synchronization.
    PlatformSpec gpu;
    gpu.name = "GPU";
    gpu.effective_mac_per_s = 200e9;
    gpu.frame_overhead_s = 0.8e-3;
    gpu.power_w = 250.0;
    gpu.link = CommLink{1e9, 0.5e-3}; // USB3/PCIe capture
    out.push_back(gpu);

    // CIS-GEP: the 65 nm CMOS-image-sensor gaze processor. Its own
    // publication reports 30 FPS; system power includes the sensor
    // interface and host-side handling.
    PlatformSpec cisgep;
    cisgep.name = "CIS-GEP";
    cisgep.fixed_fps = 30.0;
    cisgep.power_w = 0.105;
    cisgep.link = CommLink{400e6, 0.05e-3}; // integrated sensor
    out.push_back(cisgep);

    return out;
}

CommLink
eyecodAttachedLink()
{
    // The FlatCam's reduced thickness lets the accelerator attach
    // directly behind the sensor: a short parallel interface with
    // negligible fixed latency.
    return CommLink{2e9, 0.05e-3};
}

} // namespace platforms
} // namespace eyecod
