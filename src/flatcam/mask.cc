#include "flatcam/mask.h"

#include <cmath>

#include "common/logging.h"

namespace eyecod {
namespace flatcam {

namespace {

/**
 * Primitive Galois feedback masks for right-shift LFSRs of width
 * 3..16. Index [order - 3].
 */
const uint32_t kPrimitiveTaps[] = {
    0x6,    // 3: x^3 + x^2 + 1
    0xC,    // 4: x^4 + x^3 + 1
    0x14,   // 5: x^5 + x^3 + 1
    0x30,   // 6: x^6 + x^5 + 1
    0x60,   // 7: x^7 + x^6 + 1
    0xB8,   // 8: x^8 + x^6 + x^5 + x^4 + 1
    0x110,  // 9: x^9 + x^5 + 1
    0x240,  // 10: x^10 + x^7 + 1
    0x500,  // 11: x^11 + x^9 + 1
    0xE08,  // 12
    0x1C80, // 13
    0x3802, // 14
    0x6000, // 15
    0xD008, // 16
};

} // namespace

std::vector<int>
mlsSequence(int order)
{
    if (order < 3 || order > 16)
        fatal("MLS order %d unsupported (must be in [3, 16])", order);
    const uint32_t taps = kPrimitiveTaps[order - 3];
    const size_t len = (size_t(1) << order) - 1;
    std::vector<int> seq(len);
    // Right-shift Galois LFSR; kPrimitiveTaps holds the standard
    // Galois feedback masks, so a maximal period of 2^order - 1 is
    // guaranteed from any non-zero start state.
    uint32_t state = 1;
    for (size_t i = 0; i < len; ++i) {
        const uint32_t lsb = state & 1;
        seq[i] = lsb ? 1 : -1;
        state >>= 1;
        if (lsb)
            state ^= taps;
    }
    return seq;
}

SeparableMask
makeSeparableMask(const MaskConfig &cfg)
{
    eyecod_assert(cfg.sensor_rows > 0 && cfg.sensor_cols > 0 &&
                  cfg.scene_rows > 0 && cfg.scene_cols > 0,
                  "mask config has non-positive dimensions");
    const std::vector<int> seq = mlsSequence(cfg.mls_order);
    const size_t len = seq.size();
    if (len < size_t(cfg.scene_rows) || len < size_t(cfg.scene_cols)) {
        fatal("MLS length %zu shorter than scene extent %dx%d; "
              "raise mls_order", len, cfg.scene_rows, cfg.scene_cols);
    }

    Rng rng(cfg.seed);
    auto build = [&](int rows, int cols) {
        Matrix phi(static_cast<size_t>(rows),
                   static_cast<size_t>(cols));
        // Normalization keeps ||Phi x|| roughly on the scale of x so
        // a single Tikhonov epsilon works across configurations.
        const double norm = 1.0 / std::sqrt(double(cols));
        for (int r = 0; r < rows; ++r) {
            for (int c = 0; c < cols; ++c) {
                // {0, 1} amplitude transmission from the +/-1 MLS,
                // cyclically shifted per sensor row.
                const int bit = seq[(size_t(r) + size_t(c)) % len];
                double v = (bit > 0) ? 1.0 : 0.0;
                if (cfg.fabrication_noise > 0.0)
                    v *= 1.0 + rng.gaussian(0.0, cfg.fabrication_noise);
                phi(size_t(r), size_t(c)) = v * norm;
            }
        }
        return phi;
    };

    SeparableMask mask;
    mask.phiL = build(cfg.sensor_rows, cfg.scene_rows);
    mask.phiR = build(cfg.sensor_cols, cfg.scene_cols);
    return mask;
}

} // namespace flatcam
} // namespace eyecod
