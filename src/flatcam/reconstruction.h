/**
 * @file
 * Tikhonov-regularized separable reconstruction of FlatCam
 * measurements (Eq. (2) of the paper).
 *
 * Minimizing ||PhiL X PhiR^T - y||_2^2 + eps ||X||_2^2 has the closed
 * form, via the SVDs PhiL = Ul Sl Vl^T and PhiR = Ur Sr Vr^T:
 *
 *   Yhat   = Ul^T y Ur
 *   Xhat_ij = sl_i * sr_j * Yhat_ij / (sl_i^2 * sr_j^2 + eps)
 *   X      = Vl Xhat Vr^T
 *
 * The SVDs depend only on the (calibrated) mask, so they are computed
 * once at construction and each frame costs three small dense products
 * plus an element-wise filter — this is the "reconstruction" workload
 * whose weights live in the accelerator's weight GB.
 */

#ifndef EYECOD_FLATCAM_RECONSTRUCTION_H
#define EYECOD_FLATCAM_RECONSTRUCTION_H

#include "common/image.h"
#include "common/image_view.h"
#include "common/matrix.h"
#include "common/status.h"
#include "flatcam/mask.h"

namespace eyecod {
namespace flatcam {

/**
 * Precomputed separable Tikhonov inverse of a FlatCam mask.
 */
class FlatCamReconstructor
{
  public:
    /**
     * @param mask the calibrated separable mask.
     * @param epsilon Tikhonov regularization weight (> 0).
     */
    FlatCamReconstructor(const SeparableMask &mask,
                         double epsilon = 1e-4);

    /**
     * Reconstruct the scene estimate from a sensor measurement.
     * Convenience wrapper over reconstructFrame() that panics on a
     * mis-sized measurement; tests and benches use it.
     *
     * @param measurement sensor-extent image from FlatCamSensor.
     * @return scene-extent reconstructed image, clamped to [0, 1].
     */
    Image reconstruct(const Image &measurement) const;

    /**
     * Serving-path reconstruction: a mis-sized measurement returns a
     * ShapeMismatch status instead of aborting, and a measurement
     * containing non-finite values returns NonFinite (the separable
     * inverse would smear a single NaN across the whole scene).
     *
     * Thin shim over reconstructFrameInto().
     */
    Result<Image> reconstructFrame(const Image &measurement) const;

    /**
     * Zero-copy reconstruction: the measurement arrives as a view
     * and the scene estimate lands in @p out (buffer reused across
     * frames). Bitwise-identical to reconstruct(); panics on a
     * mis-sized measurement like reconstruct().
     */
    void reconstructInto(ImageConstView measurement, Image *out) const;

    /**
     * Zero-copy reconstructFrame: checked variant of
     * reconstructInto(); on error @p out is left unspecified.
     */
    Status reconstructFrameInto(ImageConstView measurement,
                                Image *out) const;

    /** Regularization weight in use. */
    double epsilon() const { return epsilon_; }

    /** Scene shape produced by reconstruct(). */
    int sceneRows() const { return int(vl_.rows()); }
    int sceneCols() const { return int(vr_.rows()); }

    /**
     * Multiply-accumulate count of one reconstruction, used by the
     * accelerator workload compiler (three dense products).
     */
    long long macsPerFrame() const;

  private:
    double epsilon_;
    Matrix ul_t_; ///< Ul^T (k_l x sensor_rows).
    Matrix ur_;   ///< Ur (sensor_cols x k_r).
    Matrix vl_;   ///< Vl (scene_rows x k_l).
    Matrix vr_;   ///< Vr (scene_cols x k_r).
    Matrix vr_t_; ///< Vr^T, cached at construction.
    std::vector<double> sl_; ///< Left singular values.
    std::vector<double> sr_; ///< Right singular values.

    // Per-frame reconstruction scratch, warmed on the first frame and
    // reused afterwards; not observable state, hence mutable. A
    // reconstructor is owned by one pipeline and never shared across
    // threads.
    mutable Matrix meas_mat_;  ///< y (measurement as doubles).
    mutable Matrix left_prod_; ///< Ul^T * y.
    mutable Matrix yhat_;      ///< Ul^T y Ur, then the filter.
    mutable Matrix vl_prod_;   ///< Vl * Xhat.
    mutable Matrix scene_mat_; ///< (Vl Xhat) * Vr^T.
};

} // namespace flatcam
} // namespace eyecod

#endif // EYECOD_FLATCAM_RECONSTRUCTION_H
