#include "flatcam/imaging.h"

#include <cmath>
#include <random>
#include <sstream>

#include "common/logging.h"

namespace eyecod {
namespace flatcam {

FlatCamSensor::FlatCamSensor(SeparableMask mask, SensorNoise noise)
    : mask_(std::move(mask)), phi_r_t_(mask_.phiR.transposed()),
      noise_(noise), rng_(noise.seed)
{
}

Image
FlatCamSensor::capture(const Image &scene) const
{
    eyecod_assert(scene.height() == sceneRows() &&
                  scene.width() == sceneCols(),
                  "scene shape %dx%d != mask scene extent %dx%d",
                  scene.height(), scene.width(),
                  sceneRows(), sceneCols());
    Image y;
    multiplexInto(ImageConstView::of(scene), &y);
    return y;
}

Result<Image>
FlatCamSensor::captureFrame(const Image &scene,
                            long frame_index) const
{
    Image y;
    Status status =
        captureFrameInto(ImageConstView::of(scene), frame_index, &y);
    if (!status.isOk())
        return status;
    return y;
}

Status
FlatCamSensor::captureFrameInto(ImageConstView scene,
                                long frame_index, Image *out) const
{
    if (scene.height() != sceneRows() || scene.width() != sceneCols())
        return Status::error(
            ErrorCode::ShapeMismatch,
            "frame %ld: scene shape %dx%d != mask scene extent %dx%d",
            frame_index, scene.height(), scene.width(), sceneRows(),
            sceneCols());

    FrameFaults faults;
    if (injector_)
        faults = injector_->plan(frame_index);
    if (faults.dropped())
        return Status::error(ErrorCode::FrameDropped,
                             "frame %ld dropped by sensor",
                             frame_index);

    multiplexInto(scene, out);
    if (injector_)
        injector_->applySensorFaults(faults, frame_index, *out);
    return Status::ok();
}

void
FlatCamSensor::resetNoise()
{
    rng_ = Rng(noise_.seed);
}

namespace {
constexpr uint32_t kSensorNoiseTag = 0x534e5331; // "SNS1"
/** mt19937_64 stream state text is ~6.3 KB; bound reads generously. */
constexpr size_t kMaxEngineStateChars = 1u << 15;
} // namespace

void
FlatCamSensor::saveNoiseState(snap::SnapshotWriter &w) const
{
    w.tag(kSensorNoiseTag);
    // The standard serialization of the engine state: decimal words,
    // space-separated. Field-wise (one engine word per token), stable
    // across platforms, and checkable on restore.
    std::ostringstream os;
    os << rng_.engine();
    w.str(os.str());
}

Status
FlatCamSensor::restoreNoiseState(snap::SnapshotReader &r)
{
    Status fence = r.expectTag(kSensorNoiseTag);
    if (!fence.isOk())
        return fence;
    auto text = r.str(kMaxEngineStateChars);
    if (!text.ok())
        return text.status();
    std::istringstream is(text.value());
    // detlint:allow(R1) restoring the seeded Rng's own engine state
    std::mt19937_64 engine;
    is >> engine;
    if (is.fail())
        return Status::error(ErrorCode::CorruptSnapshot,
                             "unparsable sensor RNG stream state");
    rng_.engine() = engine;
    return Status::ok();
}

void
FlatCamSensor::multiplexInto(ImageConstView scene, Image *out) const
{
    imageToMatrixInto(scene, &scene_mat_);
    mask_.phiL.multiplyInto(scene_mat_, &left_prod_);
    left_prod_.multiplyInto(phi_r_t_, &measurement_);

    // Shot noise: model each measurement as a scaled Poisson count.
    if (noise_.shot_noise_scale > 0.0) {
        const double scale = noise_.shot_noise_scale;
        for (double &v : measurement_.data()) {
            const double photons = std::max(0.0, v) * scale;
            v = double(rng_.poisson(photons)) / scale;
        }
    }
    // Additive Gaussian read noise.
    if (noise_.read_noise > 0.0) {
        for (double &v : measurement_.data())
            v += rng_.gaussian(0.0, noise_.read_noise);
    }
    matrixToImageInto(measurement_, out);
}

Matrix
imageToMatrix(const Image &img)
{
    Matrix m;
    imageToMatrixInto(ImageConstView::of(img), &m);
    return m;
}

void
imageToMatrixInto(ImageConstView img, Matrix *out)
{
    out->resetShape(size_t(img.height()), size_t(img.width()));
    for (int y = 0; y < img.height(); ++y)
        for (int x = 0; x < img.width(); ++x)
            (*out)(size_t(y), size_t(x)) = img.at(y, x);
}

Image
matrixToImage(const Matrix &m)
{
    Image img;
    matrixToImageInto(m, &img);
    return img;
}

void
matrixToImageInto(const Matrix &m, Image *out)
{
    out->resetShape(int(m.rows()), int(m.cols()));
    for (size_t y = 0; y < m.rows(); ++y)
        for (size_t x = 0; x < m.cols(); ++x)
            out->at(int(y), int(x)) = float(m(y, x));
}

} // namespace flatcam
} // namespace eyecod
