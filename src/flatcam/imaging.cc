#include "flatcam/imaging.h"

#include <cmath>

#include "common/logging.h"

namespace eyecod {
namespace flatcam {

FlatCamSensor::FlatCamSensor(SeparableMask mask, SensorNoise noise)
    : mask_(std::move(mask)), noise_(noise), rng_(noise.seed)
{
}

Image
FlatCamSensor::capture(const Image &scene) const
{
    eyecod_assert(scene.height() == sceneRows() &&
                  scene.width() == sceneCols(),
                  "scene shape %dx%d != mask scene extent %dx%d",
                  scene.height(), scene.width(),
                  sceneRows(), sceneCols());
    return multiplex(scene);
}

Result<Image>
FlatCamSensor::captureFrame(const Image &scene,
                            long frame_index) const
{
    if (scene.height() != sceneRows() || scene.width() != sceneCols())
        return Status::error(
            ErrorCode::ShapeMismatch,
            "frame %ld: scene shape %dx%d != mask scene extent %dx%d",
            frame_index, scene.height(), scene.width(), sceneRows(),
            sceneCols());

    FrameFaults faults;
    if (injector_)
        faults = injector_->plan(frame_index);
    if (faults.dropped())
        return Status::error(ErrorCode::FrameDropped,
                             "frame %ld dropped by sensor",
                             frame_index);

    Image y = multiplex(scene);
    if (injector_)
        injector_->applySensorFaults(faults, frame_index, y);
    return y;
}

void
FlatCamSensor::resetNoise()
{
    rng_ = Rng(noise_.seed);
}

Image
FlatCamSensor::multiplex(const Image &scene) const
{
    const Matrix x = imageToMatrix(scene);
    Matrix y = mask_.phiL.multiply(x).multiply(mask_.phiR.transposed());

    // Shot noise: model each measurement as a scaled Poisson count.
    if (noise_.shot_noise_scale > 0.0) {
        const double scale = noise_.shot_noise_scale;
        for (double &v : y.data()) {
            const double photons = std::max(0.0, v) * scale;
            v = double(rng_.poisson(photons)) / scale;
        }
    }
    // Additive Gaussian read noise.
    if (noise_.read_noise > 0.0) {
        for (double &v : y.data())
            v += rng_.gaussian(0.0, noise_.read_noise);
    }
    return matrixToImage(y);
}

Matrix
imageToMatrix(const Image &img)
{
    Matrix m(size_t(img.height()), size_t(img.width()));
    for (int y = 0; y < img.height(); ++y)
        for (int x = 0; x < img.width(); ++x)
            m(size_t(y), size_t(x)) = img.at(y, x);
    return m;
}

Image
matrixToImage(const Matrix &m)
{
    Image img(int(m.rows()), int(m.cols()));
    for (size_t y = 0; y < m.rows(); ++y)
        for (size_t x = 0; x < m.cols(); ++x)
            img.at(int(y), int(x)) = float(m(y, x));
    return img;
}

} // namespace flatcam
} // namespace eyecod
