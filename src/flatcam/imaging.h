/**
 * @file
 * Forward imaging model of the FlatCam: applies the separable transfer
 * matrices of Eq. (1) to a scene and adds sensor noise (Gaussian read
 * noise plus optional Poisson shot noise), producing the multiplexed
 * measurement a real FlatCam sensor would record.
 *
 * The *Into capture path is the zero-copy spine: it takes the scene
 * as a non-owning view, runs the forward model through per-sensor
 * matrix scratch (warmed once, reused every frame), and writes the
 * measurement into a caller-owned image — zero heap allocations in
 * steady state. The owning APIs remain as thin shims over it.
 */

#ifndef EYECOD_FLATCAM_IMAGING_H
#define EYECOD_FLATCAM_IMAGING_H

#include <cstdint>

#include "common/image.h"
#include "common/image_view.h"
#include "common/snapshot.h"
#include "common/status.h"
#include "flatcam/fault_injection.h"
#include "flatcam/mask.h"

namespace eyecod {
namespace flatcam {

/** Sensor noise configuration. */
struct SensorNoise
{
    double read_noise = 0.002;   ///< Gaussian read-noise std-dev.
    double shot_noise_scale = 0.0; ///< Photon count scale (0 = off).
    uint64_t seed = 0xcafe;      ///< Noise RNG seed.
};

/**
 * The FlatCam forward model y = PhiL * x * PhiR^T + e.
 */
class FlatCamSensor
{
  public:
    /**
     * @param mask separable mask (copied).
     * @param noise sensor noise parameters.
     */
    FlatCamSensor(SeparableMask mask, SensorNoise noise = {});

    /**
     * Capture a scene: the scene image must match the mask's scene
     * extent; returns the sensor measurement (sensor extent).
     * Convenience wrapper over captureFrame() that panics on error
     * and applies no fault schedule; tests and benches use it.
     */
    Image capture(const Image &scene) const;

    /**
     * Capture one frame of a stream. A mis-sized scene returns a
     * ShapeMismatch status (a real sensor feed can deliver garbage;
     * the serving path must not abort). When a fault injector is
     * attached, its schedule entry for @p frame_index is applied:
     * a dropped frame returns FrameDropped, pixel-level faults
     * corrupt the returned measurement in place.
     *
     * Thin shim over captureFrameInto().
     */
    Result<Image> captureFrame(const Image &scene,
                               long frame_index) const;

    /**
     * Zero-copy captureFrame: the scene arrives as a view and the
     * measurement lands in @p out (buffer reused across frames).
     * Bitwise-identical to captureFrame(); on error @p out is left
     * unspecified.
     */
    Status captureFrameInto(ImageConstView scene, long frame_index,
                            Image *out) const;

    /**
     * Attach a fault injector consulted by captureFrame(); pass
     * nullptr to detach. Not owned; must outlive the sensor's use.
     */
    void setFaultInjector(const FaultInjector *injector)
    {
        injector_ = injector;
    }

    /** The attached fault injector (null when none). */
    const FaultInjector *faultInjector() const { return injector_; }

    /**
     * Restart the read/shot-noise RNG from its seed so a replayed
     * sequence sees the identical noise stream (determinism tests and
     * pipeline reset()).
     */
    void resetNoise();

    /**
     * Serialize the noise RNG's stream position — the only mutable
     * state a sensor carries that the seed alone cannot rebuild. A
     * restored sensor continues the read/shot-noise stream from the
     * exact draw the snapshot was taken at (bitwise replay across a
     * checkpoint boundary).
     */
    void saveNoiseState(snap::SnapshotWriter &w) const;

    /** Restore the noise RNG stream position; typed errors on
     *  corrupt input. */
    Status restoreNoiseState(snap::SnapshotReader &r);

    /** The mask in use. */
    const SeparableMask &mask() const { return mask_; }

    /** Sensor measurement shape. */
    int sensorRows() const { return int(mask_.phiL.rows()); }
    int sensorCols() const { return int(mask_.phiR.rows()); }

    /** Scene shape expected by capture(). */
    int sceneRows() const { return int(mask_.phiL.cols()); }
    int sceneCols() const { return int(mask_.phiR.cols()); }

  private:
    /** The noisy forward model, shared by both capture paths. */
    void multiplexInto(ImageConstView scene, Image *out) const;

    // detlint:allow(R12) optics config, fixed at construction.
    SeparableMask mask_;
    // detlint:allow(R12) cache of mask_, recomputed at construction.
    Matrix phi_r_t_; ///< PhiR^T, cached at construction.
    // detlint:allow(R12) noise model config; rng_ carries the dynamic state.
    SensorNoise noise_;
    mutable Rng rng_;
    // detlint:allow(R12) non-owning wiring, reattached by the owner.
    const FaultInjector *injector_ = nullptr;

    // Per-frame forward-model scratch, warmed on the first capture
    // and reused afterwards. mutable for the same reason rng_ is:
    // capture is logically const, the scratch is not observable
    // state. A sensor is owned by one pipeline and never shared
    // across threads (the RNG already forbids that).
    // detlint:allow(R12) per-frame scratch, rewarmed on first capture.
    mutable Matrix scene_mat_;  ///< x (scene as doubles).
    // detlint:allow(R12) per-frame scratch, rewarmed on first capture.
    mutable Matrix left_prod_;  ///< PhiL * x.
    // detlint:allow(R12) per-frame scratch, rewarmed on first capture.
    mutable Matrix measurement_; ///< (PhiL * x) * PhiR^T, then noise.
};

/** Convert an Image to a Matrix (double). */
Matrix imageToMatrix(const Image &img);

/** Convert a view to a Matrix (double), reusing @p out's buffer. */
void imageToMatrixInto(ImageConstView img, Matrix *out);

/** Convert a Matrix to an Image (float), without rescaling. */
Image matrixToImage(const Matrix &m);

/** Matrix-to-Image conversion reusing @p out's buffer. */
void matrixToImageInto(const Matrix &m, Image *out);

} // namespace flatcam
} // namespace eyecod

#endif // EYECOD_FLATCAM_IMAGING_H
