/**
 * @file
 * Deterministic sensor fault injection for robustness testing and the
 * fault-recovery benchmarks.
 *
 * Real lensless front-ends fail in characteristic ways: frames are
 * dropped on the camera link, pixel blocks die or stick hot, the
 * photodiode saturates under strong illumination, bursts of read
 * noise corrupt scanline bands, and a corrupted measurement can drive
 * the Tikhonov reconstruction to non-finite values. The FaultInjector
 * reproduces each of these on demand.
 *
 * The schedule is a pure function of (seed, frame index): plan() and
 * the apply*() stages derive a fresh RNG from a per-frame hash, so
 * the same seed yields bitwise-identical fault sequences regardless
 * of call order or resets — the property the degradation-determinism
 * tests rely on.
 */

#ifndef EYECOD_FLATCAM_FAULT_INJECTION_H
#define EYECOD_FLATCAM_FAULT_INJECTION_H

#include <array>
#include <cstdint>

#include "common/image.h"
#include "common/image_view.h"
#include "common/rng.h"

namespace eyecod {
namespace flatcam {

/** The fault taxonomy. */
enum class FaultKind : int {
    DroppedFrame = 0, ///< The sensor delivered nothing this tick.
    DeadPixelBlock,   ///< A block of pixels stuck at zero.
    HotPixelBlock,    ///< A block of pixels stuck at an outlier level.
    Saturation,       ///< Highlights clipped at a reduced full-scale.
    BurstNoise,       ///< Strong noise over a scanline band.
    NanPoison,        ///< Non-finite values in the reconstruction.
};

/** Number of FaultKind values. */
constexpr int kNumFaultKinds = 6;

/** Human-readable name of a FaultKind. */
const char *faultKindName(FaultKind kind);

/** Per-kind, per-frame injection probabilities and shape knobs. */
struct FaultConfig
{
    double drop_rate = 0.0;       ///< P(DroppedFrame) per frame.
    double dead_block_rate = 0.0; ///< P(DeadPixelBlock) per frame.
    double hot_block_rate = 0.0;  ///< P(HotPixelBlock) per frame.
    double saturation_rate = 0.0; ///< P(Saturation) per frame.
    double burst_noise_rate = 0.0; ///< P(BurstNoise) per frame.
    double nan_rate = 0.0;        ///< P(NanPoison) per frame.

    int block_extent = 12;        ///< Dead/hot block side in pixels.
    int burst_rows = 8;           ///< Scanline band height.
    double burst_sigma = 0.5;     ///< Burst noise std-dev, fraction
                                  ///  of the frame's dynamic range.
    double saturation_knee = 0.55; ///< Clip level, fraction of range.
    int nan_extent = 6;           ///< NaN-poisoned block side.

    uint64_t seed = 0xfa017;      ///< Schedule seed.

    /**
     * Active frame window [first_frame, last_frame]. Outside it
     * plan() returns no faults; last_frame < 0 means unbounded. The
     * per-frame schedule inside the window is independent of the
     * bounds, so narrowing the window only masks entries. Used to
     * model a bounded outage followed by a clean recovery tail.
     */
    long first_frame = 0;
    long last_frame = -1;

    /** True when any rate is positive. */
    bool anyEnabled() const;

    /** A uniform mixed-fault config: every kind at @p rate. */
    static FaultConfig mixed(double rate, uint64_t seed = 0xfa017);
};

/** The faults planned for one frame. */
struct FrameFaults
{
    std::array<bool, kNumFaultKinds> active{};

    bool has(FaultKind k) const { return active[size_t(int(k))]; }
    bool dropped() const { return has(FaultKind::DroppedFrame); }

    /** True when any fault is planned. */
    bool any() const;

    /** Number of planned faults. */
    int count() const;
};

/**
 * Stateless, deterministic fault source. All methods are const and
 * derive their randomness from (config seed, frame index) only.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultConfig cfg);

    /** The fault schedule entry for @p frame. */
    FrameFaults plan(long frame) const;

    /**
     * Apply the sensor-domain faults (dead/hot blocks, saturation,
     * burst noise) planned for @p frame to @p measurement in place.
     * DroppedFrame and NanPoison are not handled here.
     */
    void applySensorFaults(const FrameFaults &faults, long frame,
                           ImageView measurement) const;

    /** Owning-image shim over the view overload. */
    void applySensorFaults(const FrameFaults &faults, long frame,
                           Image &measurement) const;

    /**
     * Apply the reconstruction-domain faults (NanPoison) planned for
     * @p frame to the reconstructed @p view in place.
     */
    void applyViewFaults(const FrameFaults &faults, long frame,
                         ImageView view) const;

    /** Owning-image shim over the view overload. */
    void applyViewFaults(const FrameFaults &faults, long frame,
                         Image &view) const;

    /** Configuration in use. */
    const FaultConfig &config() const { return cfg_; }

  private:
    /** Fresh RNG for (frame, stage); stage decorrelates the draws. */
    Rng frameRng(long frame, uint64_t stage) const;

    FaultConfig cfg_;
};

} // namespace flatcam
} // namespace eyecod

#endif // EYECOD_FLATCAM_FAULT_INJECTION_H
