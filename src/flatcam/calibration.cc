#include "flatcam/calibration.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace eyecod {
namespace flatcam {

namespace {

/** Rank-1 factorization Y ~ a b^T via the dominant singular pair. */
void
rankOneFactor(const Matrix &y, std::vector<double> &a,
              std::vector<double> &b)
{
    const Svd svd = computeSvd(y);
    const double s = std::sqrt(std::max(0.0, svd.s[0]));
    a.resize(y.rows());
    b.resize(y.cols());
    // Fix the sign so the (physically non-negative) factors have a
    // positive mean.
    double mean_u = 0.0;
    for (size_t i = 0; i < y.rows(); ++i)
        mean_u += svd.u(i, 0);
    const double sign = mean_u >= 0.0 ? 1.0 : -1.0;
    for (size_t i = 0; i < y.rows(); ++i)
        a[i] = sign * svd.u(i, 0) * s;
    for (size_t j = 0; j < y.cols(); ++j)
        b[j] = sign * svd.v(j, 0) * s;
}

/** Project the columns of Y onto a fixed right factor c. */
std::vector<double>
projectColumns(const Matrix &y, const std::vector<double> &c)
{
    double norm2 = 0.0;
    for (double v : c)
        norm2 += v * v;
    eyecod_assert(norm2 > 0.0, "degenerate calibration anchor");
    std::vector<double> out(y.rows(), 0.0);
    for (size_t i = 0; i < y.rows(); ++i) {
        double acc = 0.0;
        for (size_t j = 0; j < y.cols(); ++j)
            acc += y(i, j) * c[j];
        out[i] = acc / norm2;
    }
    return out;
}

} // namespace

CalibrationResult
calibrateSeparable(const FlatCamSensor &sensor,
                   const SeparableMask *truth)
{
    const int sr = sensor.sceneRows();
    const int sc = sensor.sceneCols();

    CalibrationResult result;

    // 1. Full-on anchor capture: Y = (PhiL 1)(PhiR 1)^T.
    const Image full_scene(sr, sc, 1.0f);
    const Matrix y_full = imageToMatrix(sensor.capture(full_scene));
    ++result.captures_used;
    std::vector<double> a_hat; // ~ PhiL 1 (up to the scale split)
    std::vector<double> c_hat; // ~ PhiR 1
    rankOneFactor(y_full, a_hat, c_hat);

    // 2. Row impulses: column i of PhiL from Y_i = (PhiL e_i) c^T.
    result.mask.phiL =
        Matrix(size_t(sensor.sensorRows()), size_t(sr));
    for (int i = 0; i < sr; ++i) {
        Image scene(sr, sc, 0.0f);
        for (int x = 0; x < sc; ++x)
            scene.at(i, x) = 1.0f;
        const Matrix y = imageToMatrix(sensor.capture(scene));
        ++result.captures_used;
        const std::vector<double> col = projectColumns(y, c_hat);
        for (size_t r = 0; r < col.size(); ++r)
            result.mask.phiL(r, size_t(i)) = col[r];
    }

    // 3. Column impulses: column j of PhiR from Y_j = a (PhiR e_j)^T.
    result.mask.phiR =
        Matrix(size_t(sensor.sensorCols()), size_t(sc));
    for (int j = 0; j < sc; ++j) {
        Image scene(sr, sc, 0.0f);
        for (int y = 0; y < sr; ++y)
            scene.at(y, j) = 1.0f;
        const Matrix ym = imageToMatrix(sensor.capture(scene));
        ++result.captures_used;
        const std::vector<double> col =
            projectColumns(ym.transposed(), a_hat);
        for (size_t r = 0; r < col.size(); ++r)
            result.mask.phiR(r, size_t(j)) = col[r];
    }

    // The projection against c_hat ~ gamma^-1 (PhiR 1) makes
    // PhiL_hat = gamma PhiL and PhiR_hat = PhiR / gamma: the product
    // is preserved, which is all reconstruction needs.

    if (truth) {
        // Probe the forward operators on a random scene.
        Rng rng(0xca11b);
        Matrix x(static_cast<size_t>(sr), static_cast<size_t>(sc));
        for (double &v : x.data())
            v = rng.uniform();
        const Matrix ref =
            truth->phiL.multiply(x).multiply(
                truth->phiR.transposed());
        const Matrix est =
            result.mask.phiL.multiply(x).multiply(
                result.mask.phiR.transposed());
        result.product_error =
            est.sub(ref).frobeniusNorm() / ref.frobeniusNorm();
    }
    return result;
}

} // namespace flatcam
} // namespace eyecod
