/**
 * @file
 * Separable FlatCam calibration.
 *
 * A physical FlatCam never knows its transfer matrices exactly (mask
 * fabrication and alignment perturb them); they are estimated by
 * displaying known calibration patterns and recording the sensor
 * measurements, as in Asif et al. For a separable system
 * y = PhiL x PhiR^T + e, line patterns make every measurement
 * rank-1:
 *
 *   full-on scene  X = 1 1^T     ->  Y = (PhiL 1)(PhiR 1)^T
 *   row impulse    X = e_i 1^T   ->  Y = (PhiL e_i)(PhiR 1)^T
 *   column impulse X = 1 e_j^T   ->  Y = (PhiL 1)(PhiR e_j)^T
 *
 * The full-on capture anchors the rank-1 factors; each line capture
 * then yields one column of PhiL or PhiR by projection. The estimate
 * carries the usual alpha / 1/alpha scale split between PhiL and
 * PhiR, which leaves the product — and therefore reconstruction —
 * unchanged.
 */

#ifndef EYECOD_FLATCAM_CALIBRATION_H
#define EYECOD_FLATCAM_CALIBRATION_H

#include "flatcam/imaging.h"

namespace eyecod {
namespace flatcam {

/** Result of a calibration run. */
struct CalibrationResult
{
    SeparableMask mask;      ///< Estimated transfer matrices.
    int captures_used = 0;   ///< Calibration frames recorded.
    /**
     * Relative product error ||PhiL_hat X PhiR_hat^T - PhiL X
     * PhiR^T|| / ||PhiL X PhiR^T|| on a random probe scene
     * (scale-split invariant).
     */
    double product_error = 0.0;
};

/**
 * Calibrate a FlatCam by capturing line patterns through it.
 *
 * @param sensor the device under calibration (treated as a black
 *        box; its noise is part of the calibration error).
 * @param truth optional ground-truth mask used only to compute
 *        product_error (pass the sensor's mask; never used in the
 *        estimation itself).
 */
CalibrationResult calibrateSeparable(const FlatCamSensor &sensor,
                                     const SeparableMask *truth
                                     = nullptr);

} // namespace flatcam
} // namespace eyecod

#endif // EYECOD_FLATCAM_CALIBRATION_H
