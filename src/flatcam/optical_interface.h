/**
 * @file
 * EyeCoD's sensing-processing interface (Sec. 4.2 of the paper): the
 * first convolution layer of the eye tracking model is folded into the
 * FlatCam's coded masks, so the sensor transmits first-layer *feature
 * maps* rather than raw pixels.
 *
 * The physical device realizes this with per-channel optical mask
 * responses; this module emulates the optical computation functionally
 * (fixed edge/difference kernels applied at the sensor, with sensor
 * noise) and accounts the two benefits the paper claims: the removed
 * first-layer FLOPs and the reduced sensor-to-processor traffic.
 */

#ifndef EYECOD_FLATCAM_OPTICAL_INTERFACE_H
#define EYECOD_FLATCAM_OPTICAL_INTERFACE_H

#include <cstdint>
#include <vector>

#include "common/image.h"
#include "common/rng.h"

namespace eyecod {
namespace flatcam {

/** Configuration of the optical first layer. */
struct OpticalLayerConfig
{
    int out_channels = 4;  ///< Optical feature channels.
    int stride = 4;        ///< Optical downsampling stride.
    int kernel = 5;        ///< Emulated optical kernel size.
    double response_noise = 0.01; ///< Optical response mismatch noise.
    uint64_t seed = 0x0071ca1;    ///< Perturbation seed.
};

/**
 * Emulated optical computation of a first convolution layer.
 */
class OpticalFirstLayer
{
  public:
    explicit OpticalFirstLayer(OpticalLayerConfig cfg = {});

    /**
     * Apply the optical layer to a scene, producing out_channels
     * feature maps at the downsampled resolution.
     */
    std::vector<Image> apply(const Image &scene) const;

    /** Configuration in use. */
    const OpticalLayerConfig &config() const { return cfg_; }

    /**
     * Bytes a lens-based camera would transmit per frame for the given
     * scene shape (one raw 8-bit pixel per site).
     */
    static long long rawBytes(int height, int width);

    /**
     * Bytes this interface transmits per frame for the given scene
     * shape: out_channels maps at 1/stride^2 the resolution, 8-bit.
     */
    long long featureBytes(int height, int width) const;

    /**
     * MACs of the emulated first conv layer, i.e. the compute the
     * optical masks remove from the electronic accelerator.
     */
    long long removedMacs(int height, int width) const;

  private:
    OpticalLayerConfig cfg_;
    /// Fixed per-channel kernels (kernel x kernel each).
    std::vector<std::vector<float>> kernels_;
};

} // namespace flatcam
} // namespace eyecod

#endif // EYECOD_FLATCAM_OPTICAL_INTERFACE_H
