#include "flatcam/optical_interface.h"

#include <cmath>

#include "common/logging.h"

namespace eyecod {
namespace flatcam {

OpticalFirstLayer::OpticalFirstLayer(OpticalLayerConfig cfg)
    : cfg_(cfg)
{
    if (cfg_.out_channels <= 0 || cfg_.stride <= 0 || cfg_.kernel <= 0)
        fatal("invalid optical layer config");
    Rng rng(cfg_.seed);
    const int k = cfg_.kernel;
    kernels_.resize(size_t(cfg_.out_channels));
    // A fixed bank of oriented edge / centre-surround responses, the
    // kind of point-spread functions the co-designed masks realize.
    for (int c = 0; c < cfg_.out_channels; ++c) {
        std::vector<float> ker(size_t(k) * size_t(k), 0.0f);
        const double theta = M_PI * c / cfg_.out_channels;
        const double gx = std::cos(theta);
        const double gy = std::sin(theta);
        for (int y = 0; y < k; ++y) {
            for (int x = 0; x < k; ++x) {
                const double dy = y - (k - 1) / 2.0;
                const double dx = x - (k - 1) / 2.0;
                double v;
                if (c % 4 == 3) {
                    // Centre-surround (Laplacian-like).
                    v = (dy == 0.0 && dx == 0.0)
                        ? double(k * k - 1) : -1.0;
                    v /= double(k * k);
                } else {
                    // Oriented first-derivative response.
                    v = (gx * dx + gy * dy) / double(k);
                }
                v *= 1.0 + rng.gaussian(0.0, cfg_.response_noise);
                ker[size_t(y) * k + x] = float(v);
            }
        }
        kernels_[size_t(c)] = std::move(ker);
    }
}

std::vector<Image>
OpticalFirstLayer::apply(const Image &scene) const
{
    const int k = cfg_.kernel;
    const int s = cfg_.stride;
    const int oh = scene.height() / s;
    const int ow = scene.width() / s;
    std::vector<Image> out;
    out.reserve(kernels_.size());
    for (const auto &ker : kernels_) {
        Image fm(oh, ow);
        for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
                double acc = 0.0;
                for (int ky = 0; ky < k; ++ky)
                    for (int kx = 0; kx < k; ++kx)
                        acc += ker[size_t(ky) * k + kx] *
                               scene.atClamped(oy * s + ky - k / 2,
                                               ox * s + kx - k / 2);
                fm.at(oy, ox) = float(acc);
            }
        }
        out.push_back(std::move(fm));
    }
    return out;
}

long long
OpticalFirstLayer::rawBytes(int height, int width)
{
    return (long long)height * width; // 8-bit raw pixels
}

long long
OpticalFirstLayer::featureBytes(int height, int width) const
{
    const long long oh = height / cfg_.stride;
    const long long ow = width / cfg_.stride;
    return oh * ow * cfg_.out_channels; // 8-bit feature maps
}

long long
OpticalFirstLayer::removedMacs(int height, int width) const
{
    const long long oh = height / cfg_.stride;
    const long long ow = width / cfg_.stride;
    return oh * ow * cfg_.out_channels *
           (long long)cfg_.kernel * cfg_.kernel;
}

} // namespace flatcam
} // namespace eyecod
