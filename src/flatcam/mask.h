/**
 * @file
 * Coded-aperture mask generation for the FlatCam optical model.
 *
 * Following Asif et al. (FlatCam, 2015), the paper's Eq. (1) models the
 * sensor measurement of a scene x as y = PhiL * x * PhiR^T + e, where
 * PhiL and PhiR are separable transfer matrices induced by a
 * maximum-length-sequence (MLS) amplitude mask. This module generates
 * the MLS patterns and the induced transfer matrices, including the
 * fabrication-imperfection perturbations the paper mentions as a source
 * of reconstruction artifacts.
 */

#ifndef EYECOD_FLATCAM_MASK_H
#define EYECOD_FLATCAM_MASK_H

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"

namespace eyecod {
namespace flatcam {

/**
 * Generate a maximum-length sequence of length 2^order - 1 using a
 * Fibonacci LFSR with a primitive feedback polynomial.
 *
 * @param order LFSR register width; supported range [3, 16].
 * @return sequence of +1 / -1 values of length 2^order - 1.
 */
std::vector<int> mlsSequence(int order);

/** Configuration of a separable FlatCam mask pair. */
struct MaskConfig
{
    int sensor_rows = 160;   ///< Rows of the sensor measurement.
    int sensor_cols = 160;   ///< Columns of the sensor measurement.
    int scene_rows = 128;    ///< Rows of the scene plane.
    int scene_cols = 128;    ///< Columns of the scene plane.
    int mls_order = 9;       ///< LFSR order for the MLS pattern.
    /**
     * Std-dev of multiplicative per-element perturbation modelling
     * mask fabrication imperfection (0 disables it).
     */
    double fabrication_noise = 0.005;
    uint64_t seed = 0x71a7ca; ///< Seed for the perturbations.
};

/**
 * A separable FlatCam mask: the pair of transfer matrices of Eq. (1).
 *
 * phiL is (sensor_rows x scene_rows) and phiR is
 * (sensor_cols x scene_cols); both have rows drawn from cyclic shifts
 * of a {0, 1} MLS amplitude pattern, scaled so the system is well
 * conditioned for the Tikhonov inversion.
 */
struct SeparableMask
{
    Matrix phiL; ///< Left transfer matrix.
    Matrix phiR; ///< Right transfer matrix.

    /** Mask thickness in millimetres (form-factor bookkeeping). */
    double thickness_mm = 0.5;
    /** Mask weight in grams (form-factor bookkeeping). */
    double weight_g = 0.5;
};

/**
 * Build the separable transfer matrices for the given configuration.
 *
 * Each row r of a transfer matrix is the MLS pattern cyclically
 * shifted by r (mapped from +/-1 to {0, 1} amplitude transmission),
 * truncated to the scene extent and normalized by the scene dimension
 * so measurement magnitudes stay O(1). Fabrication noise perturbs
 * each entry multiplicatively.
 */
SeparableMask makeSeparableMask(const MaskConfig &cfg);

} // namespace flatcam
} // namespace eyecod

#endif // EYECOD_FLATCAM_MASK_H
