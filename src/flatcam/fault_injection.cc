#include "flatcam/fault_injection.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace eyecod {
namespace flatcam {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::DroppedFrame: return "dropped-frame";
      case FaultKind::DeadPixelBlock: return "dead-pixel-block";
      case FaultKind::HotPixelBlock: return "hot-pixel-block";
      case FaultKind::Saturation: return "saturation";
      case FaultKind::BurstNoise: return "burst-noise";
      case FaultKind::NanPoison: return "nan-poison";
    }
    return "unknown";
}

bool
FaultConfig::anyEnabled() const
{
    return drop_rate > 0.0 || dead_block_rate > 0.0 ||
           hot_block_rate > 0.0 || saturation_rate > 0.0 ||
           burst_noise_rate > 0.0 || nan_rate > 0.0;
}

FaultConfig
FaultConfig::mixed(double rate, uint64_t seed)
{
    FaultConfig cfg;
    cfg.drop_rate = rate;
    cfg.dead_block_rate = rate;
    cfg.hot_block_rate = rate;
    cfg.saturation_rate = rate;
    cfg.burst_noise_rate = rate;
    cfg.nan_rate = rate;
    cfg.seed = seed;
    return cfg;
}

bool
FrameFaults::any() const
{
    for (bool a : active)
        if (a)
            return true;
    return false;
}

int
FrameFaults::count() const
{
    int n = 0;
    for (bool a : active)
        n += a ? 1 : 0;
    return n;
}

FaultInjector::FaultInjector(FaultConfig cfg) : cfg_(cfg)
{
    eyecod_assert(cfg_.block_extent > 0 && cfg_.burst_rows > 0 &&
                  cfg_.nan_extent > 0,
                  "fault block extents must be positive");
}

namespace {

/** splitmix64 mix of a 64-bit state (public-domain constant set). */
uint64_t
mix64(uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Top-left corner for an extent-sized block inside height x width. */
std::pair<int, int>
blockOrigin(Rng &rng, int height, int width, int extent)
{
    const int max_y = std::max(0, height - extent);
    const int max_x = std::max(0, width - extent);
    return {int(rng.uniformInt(0, max_y)), int(rng.uniformInt(0, max_x))};
}

} // namespace

Rng
FaultInjector::frameRng(long frame, uint64_t stage) const
{
    return Rng(mix64(mix64(cfg_.seed ^ uint64_t(frame)) ^ stage));
}

FrameFaults
FaultInjector::plan(long frame) const
{
    FrameFaults f;
    if (!cfg_.anyEnabled())
        return f;
    if (frame < cfg_.first_frame ||
        (cfg_.last_frame >= 0 && frame > cfg_.last_frame))
        return f;
    Rng rng = frameRng(frame, 0x91a4);
    // Draw in fixed kind order so the schedule is stable even if
    // rates change between runs for untouched kinds' positions.
    f.active[int(FaultKind::DroppedFrame)] =
        rng.bernoulli(cfg_.drop_rate);
    f.active[int(FaultKind::DeadPixelBlock)] =
        rng.bernoulli(cfg_.dead_block_rate);
    f.active[int(FaultKind::HotPixelBlock)] =
        rng.bernoulli(cfg_.hot_block_rate);
    f.active[int(FaultKind::Saturation)] =
        rng.bernoulli(cfg_.saturation_rate);
    f.active[int(FaultKind::BurstNoise)] =
        rng.bernoulli(cfg_.burst_noise_rate);
    f.active[int(FaultKind::NanPoison)] = rng.bernoulli(cfg_.nan_rate);
    return f;
}

namespace {

/** Min / max over a strided view (same scan order as Image::data()). */
float
viewMin(ImageConstView v)
{
    float best = v.at(0, 0);
    for (int y = 0; y < v.height(); ++y)
        for (int x = 0; x < v.width(); ++x)
            best = std::min(best, v.at(y, x));
    return best;
}

float
viewMax(ImageConstView v)
{
    float best = v.at(0, 0);
    for (int y = 0; y < v.height(); ++y)
        for (int x = 0; x < v.width(); ++x)
            best = std::max(best, v.at(y, x));
    return best;
}

} // namespace

void
FaultInjector::applySensorFaults(const FrameFaults &faults, long frame,
                                 Image &measurement) const
{
    if (measurement.size() == 0)
        return;
    applySensorFaults(faults, frame, ImageView::of(measurement));
}

void
FaultInjector::applySensorFaults(const FrameFaults &faults, long frame,
                                 ImageView measurement) const
{
    if (measurement.empty())
        return;
    const int h = measurement.height();
    const int w = measurement.width();
    // Dynamic range of this frame, used to scale fault magnitudes so
    // the same config works on [0,1] scene views and on multiplexed
    // sensor measurements with arbitrary scale.
    const float lo = viewMin(measurement);
    const float hi = viewMax(measurement);
    const float range = std::max(1e-6f, hi - lo);

    if (faults.has(FaultKind::DeadPixelBlock)) {
        Rng rng = frameRng(frame, 0xdead);
        const auto [oy, ox] =
            blockOrigin(rng, h, w, cfg_.block_extent);
        for (int y = oy; y < std::min(h, oy + cfg_.block_extent); ++y)
            for (int x = ox;
                 x < std::min(w, ox + cfg_.block_extent); ++x)
                measurement.at(y, x) = lo;
    }
    if (faults.has(FaultKind::HotPixelBlock)) {
        Rng rng = frameRng(frame, 0x407);
        const auto [oy, ox] =
            blockOrigin(rng, h, w, cfg_.block_extent);
        const float hot = hi + range; // a clear outlier level
        for (int y = oy; y < std::min(h, oy + cfg_.block_extent); ++y)
            for (int x = ox;
                 x < std::min(w, ox + cfg_.block_extent); ++x)
                measurement.at(y, x) = hot;
    }
    if (faults.has(FaultKind::Saturation)) {
        const float knee = lo + float(cfg_.saturation_knee) * range;
        for (int y = 0; y < h; ++y)
            for (int x = 0; x < w; ++x)
                measurement.at(y, x) =
                    std::min(measurement.at(y, x), knee);
    }
    if (faults.has(FaultKind::BurstNoise)) {
        Rng rng = frameRng(frame, 0xb0457);
        const int band = std::min(h, cfg_.burst_rows);
        const int oy = int(rng.uniformInt(0, std::max(0, h - band)));
        const double sigma = cfg_.burst_sigma * double(range);
        for (int y = oy; y < oy + band; ++y)
            for (int x = 0; x < w; ++x)
                measurement.at(y, x) +=
                    float(rng.gaussian(0.0, sigma));
    }
}

void
FaultInjector::applyViewFaults(const FrameFaults &faults, long frame,
                               Image &view) const
{
    if (view.size() == 0)
        return;
    applyViewFaults(faults, frame, ImageView::of(view));
}

void
FaultInjector::applyViewFaults(const FrameFaults &faults, long frame,
                               ImageView view) const
{
    if (view.empty() || !faults.has(FaultKind::NanPoison))
        return;
    Rng rng = frameRng(frame, 0x9a9);
    const auto [oy, ox] = blockOrigin(rng, view.height(), view.width(),
                                      cfg_.nan_extent);
    const float nan = std::numeric_limits<float>::quiet_NaN();
    for (int y = oy;
         y < std::min(view.height(), oy + cfg_.nan_extent); ++y)
        for (int x = ox;
             x < std::min(view.width(), ox + cfg_.nan_extent); ++x)
            view.at(y, x) = nan;
}

} // namespace flatcam
} // namespace eyecod
