#include "flatcam/reconstruction.h"

#include <cmath>

#include "common/logging.h"
#include "flatcam/imaging.h"

namespace eyecod {
namespace flatcam {

FlatCamReconstructor::FlatCamReconstructor(const SeparableMask &mask,
                                           double epsilon)
    : epsilon_(epsilon)
{
    if (epsilon <= 0.0)
        fatal("Tikhonov epsilon must be positive, got %g", epsilon);
    Svd left = computeSvd(mask.phiL);
    Svd right = computeSvd(mask.phiR);
    ul_t_ = left.u.transposed();
    vl_ = std::move(left.v);
    sl_ = std::move(left.s);
    ur_ = std::move(right.u);
    vr_ = std::move(right.v);
    sr_ = std::move(right.s);
    vr_t_ = vr_.transposed();
}

Image
FlatCamReconstructor::reconstruct(const Image &measurement) const
{
    Image out;
    reconstructInto(ImageConstView::of(measurement), &out);
    return out;
}

void
FlatCamReconstructor::reconstructInto(ImageConstView measurement,
                                      Image *out) const
{
    eyecod_assert(size_t(measurement.height()) == ul_t_.cols() &&
                  size_t(measurement.width()) == ur_.rows(),
                  "measurement shape %dx%d != sensor extent %zux%zu",
                  measurement.height(), measurement.width(),
                  ul_t_.cols(), ur_.rows());

    imageToMatrixInto(measurement, &meas_mat_);
    // Yhat = Ul^T y Ur.
    ul_t_.multiplyInto(meas_mat_, &left_prod_);
    left_prod_.multiplyInto(ur_, &yhat_);
    // Element-wise Tikhonov filter.
    for (size_t i = 0; i < yhat_.rows(); ++i) {
        for (size_t j = 0; j < yhat_.cols(); ++j) {
            const double sl = sl_[i];
            const double sr = sr_[j];
            yhat_(i, j) *= sl * sr / (sl * sl * sr * sr + epsilon_);
        }
    }
    // X = Vl Xhat Vr^T.
    vl_.multiplyInto(yhat_, &vl_prod_);
    vl_prod_.multiplyInto(vr_t_, &scene_mat_);
    matrixToImageInto(scene_mat_, out);
    out->clamp(0.0f, 1.0f);
}

Result<Image>
FlatCamReconstructor::reconstructFrame(const Image &measurement) const
{
    Image out;
    Status status =
        reconstructFrameInto(ImageConstView::of(measurement), &out);
    if (!status.isOk())
        return status;
    return out;
}

Status
FlatCamReconstructor::reconstructFrameInto(ImageConstView measurement,
                                           Image *out) const
{
    if (size_t(measurement.height()) != ul_t_.cols() ||
        size_t(measurement.width()) != ur_.rows())
        return Status::error(
            ErrorCode::ShapeMismatch,
            "measurement shape %dx%d != sensor extent %zux%zu",
            measurement.height(), measurement.width(), ul_t_.cols(),
            ur_.rows());
    for (int y = 0; y < measurement.height(); ++y) {
        for (int x = 0; x < measurement.width(); ++x) {
            if (!std::isfinite(measurement.at(y, x)))
                return Status::error(
                    ErrorCode::NonFinite,
                    "non-finite sensor measurement; reconstruction "
                    "would corrupt the whole scene");
        }
    }
    reconstructInto(measurement, out);
    return Status::ok();
}

long long
FlatCamReconstructor::macsPerFrame() const
{
    const long long kl = (long long)sl_.size();
    const long long kr = (long long)sr_.size();
    const long long sr_rows = (long long)ul_t_.cols();
    const long long sc_cols = (long long)ur_.rows();
    const long long scene_r = (long long)vl_.rows();
    const long long scene_c = (long long)vr_.rows();
    // Ul^T * y, (.) * Ur, element-wise filter, Vl * Xhat, (.) * Vr^T.
    return kl * sr_rows * sc_cols + kl * sc_cols * kr + kl * kr +
           scene_r * kl * kr + scene_r * kr * scene_c;
}

} // namespace flatcam
} // namespace eyecod
