#include "flatcam/reconstruction.h"

#include <cmath>

#include "common/logging.h"
#include "flatcam/imaging.h"

namespace eyecod {
namespace flatcam {

FlatCamReconstructor::FlatCamReconstructor(const SeparableMask &mask,
                                           double epsilon)
    : epsilon_(epsilon)
{
    if (epsilon <= 0.0)
        fatal("Tikhonov epsilon must be positive, got %g", epsilon);
    Svd left = computeSvd(mask.phiL);
    Svd right = computeSvd(mask.phiR);
    ul_t_ = left.u.transposed();
    vl_ = std::move(left.v);
    sl_ = std::move(left.s);
    ur_ = std::move(right.u);
    vr_ = std::move(right.v);
    sr_ = std::move(right.s);
}

Image
FlatCamReconstructor::reconstruct(const Image &measurement) const
{
    eyecod_assert(size_t(measurement.height()) == ul_t_.cols() &&
                  size_t(measurement.width()) == ur_.rows(),
                  "measurement shape %dx%d != sensor extent %zux%zu",
                  measurement.height(), measurement.width(),
                  ul_t_.cols(), ur_.rows());

    const Matrix y = imageToMatrix(measurement);
    // Yhat = Ul^T y Ur.
    Matrix yhat = ul_t_.multiply(y).multiply(ur_);
    // Element-wise Tikhonov filter.
    for (size_t i = 0; i < yhat.rows(); ++i) {
        for (size_t j = 0; j < yhat.cols(); ++j) {
            const double sl = sl_[i];
            const double sr = sr_[j];
            yhat(i, j) *= sl * sr / (sl * sl * sr * sr + epsilon_);
        }
    }
    // X = Vl Xhat Vr^T.
    Matrix x = vl_.multiply(yhat).multiply(vr_.transposed());
    Image out = matrixToImage(x);
    out.clamp(0.0f, 1.0f);
    return out;
}

Result<Image>
FlatCamReconstructor::reconstructFrame(const Image &measurement) const
{
    if (size_t(measurement.height()) != ul_t_.cols() ||
        size_t(measurement.width()) != ur_.rows())
        return Status::error(
            ErrorCode::ShapeMismatch,
            "measurement shape %dx%d != sensor extent %zux%zu",
            measurement.height(), measurement.width(), ul_t_.cols(),
            ur_.rows());
    for (const float v : measurement.data()) {
        if (!std::isfinite(v))
            return Status::error(
                ErrorCode::NonFinite,
                "non-finite sensor measurement; reconstruction "
                "would corrupt the whole scene");
    }
    return reconstruct(measurement);
}

long long
FlatCamReconstructor::macsPerFrame() const
{
    const long long kl = (long long)sl_.size();
    const long long kr = (long long)sr_.size();
    const long long sr_rows = (long long)ul_t_.cols();
    const long long sc_cols = (long long)ur_.rows();
    const long long scene_r = (long long)vl_.rows();
    const long long scene_c = (long long)vr_.rows();
    // Ul^T * y, (.) * Ur, element-wise filter, Vl * Xhat, (.) * Vr^T.
    return kl * sr_rows * sc_cols + kl * sc_cols * kr + kl * kr +
           scene_r * kl * kr + scene_r * kr * scene_c;
}

} // namespace flatcam
} // namespace eyecod
