/**
 * @file
 * Tab. 3 reproduction: eye segmentation across architecture
 * (U-Net / RITNet), input resolution (512/256/128), camera (origin
 * vs FlatCam-reconstructed images), and precision (float vs 8-bit).
 * mIOU comes from the functional segmenter stand-in (DESIGN.md);
 * FLOPs from the exact graphs.
 */

#include <cstdio>

#include "common/stats.h"
#include "eyetrack/pipeline.h"
#include "eyetrack/segmentation.h"
#include "models/model_zoo.h"

using namespace eyecod;
using namespace eyecod::eyetrack;

namespace {

struct Row
{
    const char *model;
    int resolution;
    int quant_bits;
    double paper_origin;
    double paper_flatcam;
    nn::Graph (*graph)(int, int, int);
};

const Row kRows[] = {
    {"U-net", 512, 0, 93.3, 92.5, &models::buildUNet},
    {"RITNet", 512, 0, 95.1, 93.6, &models::buildRitNet},
    {"RITNet", 256, 0, 94.7, 93.8, &models::buildRitNet},
    {"RITNet (8-bit)", 256, 8, 94.0, 92.8, &models::buildRitNet},
    {"RITNet", 128, 0, 94.1, 93.5, &models::buildRitNet},
    {"RITNet (8-bit)", 128, 8, 93.3, 92.7, &models::buildRitNet},
};

/** mIOU of the stand-in segmenter at a resolution/camera/precision. */
std::pair<double, double>
evaluate(int resolution, int quant_bits, int samples)
{
    dataset::RenderConfig rc;
    rc.image_size = resolution;
    const dataset::SyntheticEyeRenderer ren(rc, 2019);

    SegmenterConfig sc;
    sc.quant_bits = quant_bits;
    const ClassicalSegmenter seg(sc);

    // FlatCam path at the row's resolution.
    PipelineConfig pc;
    pc.camera = CameraKind::FlatCam;
    pc.scene_size = resolution;
    const PredictThenFocusPipeline pipe(pc);

    double origin = 0.0, flatcam = 0.0;
    for (int i = 0; i < samples; ++i) {
        const auto s = ren.sample(uint64_t(1000 + i));
        origin +=
            segmentationIou(seg.segment(s.image), s.mask)[4];
        flatcam += segmentationIou(
            seg.segment(pipe.acquire(s.image)), s.mask)[4];
    }
    return {origin / samples, flatcam / samples};
}

} // namespace

int
main()
{
    TextTable t({"model", "resolution", "origin mIOU (paper)",
                 "FlatCam mIOU (paper)", "FLOPs (paper)"});
    const char *paper_flops[] = {"14.1G", "17.0G", "4.1G",
                                 "0.3G*", "1.0G", "0.1G*"};
    int idx = 0;
    for (const Row &row : kRows) {
        // Fewer samples at the expensive 512 resolution.
        const int samples = row.resolution >= 512 ? 6 : 12;
        const auto [origin, flatcam] =
            evaluate(row.resolution, row.quant_bits, samples);
        const nn::Graph g =
            row.graph(row.resolution, row.resolution, 0);
        t.addRow({row.model,
                  std::to_string(row.resolution) + "x" +
                      std::to_string(row.resolution),
                  formatDouble(origin, 1) + " (" +
                      formatDouble(row.paper_origin, 1) + ")",
                  formatDouble(flatcam, 1) + " (" +
                      formatDouble(row.paper_flatcam, 1) + ")",
                  formatSi(double(g.totalMacs()), 1) + " (" +
                      std::string(paper_flops[idx]) + ")"});
        ++idx;
    }
    std::printf("=== Tab. 3: eye segmentation settings "
                "(ours, paper in parentheses) ===\n%s\n"
                "* the paper counts 8-bit FLOPs at reduced cost.\n"
                "mIOU from the functional stand-in segmenter "
                "(DESIGN.md); FLOPs from the exact graphs.\n",
                t.render().c_str());
    return 0;
}
