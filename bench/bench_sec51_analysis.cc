/**
 * @file
 * Sec. 5.1 analysis numbers, reproduced from the workload and cost
 * model:
 *
 *  - layer-type operation breakdown over a 50-frame window
 *    (paper: generic 8.8%, point-wise 68.8%, depth-wise 7.9%,
 *    FC 0.001%, matmul 14.5%);
 *  - depth-wise share of processing time under the naive mapping
 *    (paper: 7.9% of ops but 33.6% of time);
 *  - depth-wise time reduction from intra-channel reuse (paper 71%);
 *  - time-multiplexing extra-MAC requirement for 240 FPS
 *    (paper: +256 MACs = +25%);
 *  - activation memory with/without feature-wise partition
 *    (paper: 2.78 MB -> ~1 MB, about 36%);
 *  - SWPR input-buffer bandwidth saving (paper: 50-60% for 3x3).
 */

#include <cstdio>
#include <map>

#include "accel/input_buffer.h"
#include "accel/partition.h"
#include "accel/simulator.h"
#include "common/stats.h"
#include "models/model_zoo.h"

using namespace eyecod;
using namespace eyecod::accel;

int
main()
{
    PipelineWorkloadConfig pc;
    const auto workloads = buildPipelineWorkload(pc);

    // --- Layer-type breakdown over a 50-frame window ---
    std::map<nn::LayerKind, double> ops;
    double total = 0.0;
    for (const auto &m : workloads) {
        const double execs = 50.0 / m.period;
        for (const auto &l : m.layers) {
            if (!nn::isMacKind(l.kind))
                continue;
            ops[l.kind] += double(l.macs) * execs;
            total += double(l.macs) * execs;
        }
    }
    const std::pair<nn::LayerKind, double> paper_share[] = {
        {nn::LayerKind::ConvGeneric, 8.8},
        {nn::LayerKind::ConvPointwise, 68.8},
        {nn::LayerKind::ConvDepthwise, 7.9},
        {nn::LayerKind::FullyConnected, 0.001},
        {nn::LayerKind::MatMul, 14.5},
    };
    TextTable t({"layer type", "ops share % (paper)"});
    for (const auto &[kind, paper] : paper_share) {
        t.addRow({nn::layerKindName(kind),
                  formatDouble(100.0 * ops[kind] / total, 2) + " (" +
                      formatDouble(paper, 3) + ")"});
    }
    std::printf("=== Sec. 5.1 #II: operation breakdown over a "
                "50-frame window ===\n%s\n",
                t.render().c_str());

    // --- Depth-wise time share under the naive mapping ---
    HwConfig naive;
    naive.depthwise_optimization = false;
    long long dw_cycles = 0, all_cycles = 0, dw_macs = 0,
              all_macs = 0;
    for (const auto &m : workloads) {
        for (const auto &l : m.layers) {
            const LayerCost c = costLayer(l, naive, naive.mac_lanes);
            const double execs = 50.0 / m.period;
            const long long cyc =
                (long long)(double(c.totalCycles()) * execs);
            all_cycles += cyc;
            all_macs += (long long)(double(l.macs) * execs);
            if (l.kind == nn::LayerKind::ConvDepthwise) {
                dw_cycles += cyc;
                dw_macs += (long long)(double(l.macs) * execs);
            }
        }
    }
    std::printf("=== Sec. 5.1 #II(3): depth-wise pathology ===\n"
                "depth-wise: %.1f%% of ops but %.1f%% of time under "
                "the naive mapping (paper: 7.9%% of ops, 33.6%% of "
                "time)\n\n",
                100.0 * double(dw_macs) / double(all_macs),
                100.0 * double(dw_cycles) / double(all_cycles));

    // --- Intra-channel reuse gain on depth-wise layers ---
    HwConfig opt;
    long long dw_opt_cycles = 0;
    for (const auto &m : workloads)
        for (const auto &l : m.layers)
            if (l.kind == nn::LayerKind::ConvDepthwise)
                dw_opt_cycles += (long long)(
                    double(costLayer(l, opt, opt.mac_lanes)
                               .totalCycles()) *
                    (50.0 / m.period));
    std::printf("=== Principle #II: intra-channel reuse ===\n"
                "depth-wise processing time reduced by %.0f%% "
                "(paper: 71%%)\n\n",
                100.0 * (1.0 - double(dw_opt_cycles) /
                                   double(dw_cycles)));

    // --- Time-multiplexing extra-MAC analysis ---
    // MACs needed to hold 240 FPS through the worst (segmentation
    // boundary) frame under time-multiplexing, vs the steady need.
    HwConfig tm;
    tm.orchestration = OrchestrationMode::TimeMultiplex;
    const EnergyModel energy;
    const PerfReport tm_perf = simulate(workloads, tm, energy);
    const double target_cycles = tm.clock_hz / 240.0;
    const double steady_macs =
        double(tm_perf.frame_cycles) / target_cycles *
        double(tm.totalMacs());
    const double peak_macs =
        double(tm.clock_hz / tm_perf.fps_peak) / target_cycles *
        double(tm.totalMacs());
    std::printf("=== Challenge #I: time-multiplexing provisioning "
                "for 240 FPS ===\n"
                "steady-state need: %.0f MACs; boundary-frame need: "
                "%.0f MACs (+%.0f%%) (paper: 1024 + 256 = +25%%)\n\n",
                steady_macs, peak_macs,
                100.0 * (peak_macs - steady_macs) / steady_macs);

    // --- Activation memory partition ---
    long long unpart = 0, part = 0;
    for (const auto &m : workloads) {
        unpart += peakActivationBytes(m.layers);
        const PartitionAnalysis a =
            analyzePartition(m.layers, 2LL * 512 * 1024);
        part += a.partitioned_bytes;
    }
    std::printf("=== Principle #III: input feature-wise partition "
                "===\n"
                "activation memory: %.2f MB -> %.2f MB (%.0f%%) "
                "(paper: 2.78 MB -> ~1 MB, 36%%)\n\n",
                double(unpart) / 1048576.0, double(part) / 1048576.0,
                100.0 * double(part) / double(unpart));

    // --- SWPR input buffer bandwidth saving ---
    InputBufferConfig ib;
    ib.compute_cycles_per_round = 3;
    std::printf("=== Principle #IV: sequential-write-parallel-read "
                "buffer ===\n"
                "bandwidth saving for 3x3 kernels: %.0f%% "
                "(paper: 50-60%%); for 5x5: %.0f%%\n",
                100.0 * swprBandwidthSaving(ib),
                100.0 * [&] {
                    InputBufferConfig k5 = ib;
                    k5.compute_cycles_per_round = 5;
                    return swprBandwidthSaving(k5);
                }());
    return 0;
}
