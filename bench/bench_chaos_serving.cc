/**
 * @file
 * Chaos soak of the serving engine: 16 user sessions on 4 virtual
 * chips, with chip 1 killed mid-run and rejoining later. The run
 * exercises the whole failover stack — in-flight batch re-dispatch
 * with bounded backoff, the four-tier degradation ladder riding the
 * capacity loss up and back down, and per-reason drop accounting —
 * and everything stays in virtual time, so the soak is bitwise
 * replayable at any scheduler thread count.
 *
 * Acceptance gates (exit code):
 *  - zero session terminations: the outage closes no session and
 *    every admitted session survives to the drain;
 *  - every emitted gaze vector is finite (degraded-resolution frames
 *    included);
 *  - the kill is actually exercised: one chip failure, one rejoin,
 *    and at least one re-dispatched completion;
 *  - p99 latency recovery: completions later than one ROI-refresh
 *    window (roi_refresh * frame_interval) after the rejoin show
 *    p99 <= 1.5x the pre-fault p99;
 *  - the ladder engages during the outage and returns to tier 0 by
 *    the end of the run;
 *  - accounting identity: submitted == completed + queue_drops, and
 *    queue_drops partitions exactly into the per-reason buckets;
 *  - a chaos schedule generated at zero fault rates is empty and the
 *    engine under it is bitwise identical (gaze streams + serialized
 *    metrics) to a clean engine.
 *
 * Results merge into BENCH_chaos.json (override the path with the
 * first positional argument). --quick shrinks the soak for sanitizer
 * CI runs.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/perf_json.h"
#include "common/stats.h"
#include "serve/engine.h"

using namespace eyecod;
using namespace eyecod::serve;

namespace {

core::SystemConfig
benchSystem()
{
    core::SystemConfig sys;
    sys.pipeline.camera = eyetrack::CameraKind::Lens;
    sys.pipeline.roi_refresh = 25;
    return sys;
}

/** Observable signature of a run: gaze streams + metrics JSON. */
std::string
runSignature(const ServingConfig &cfg,
             const eyetrack::RidgeGazeEstimator &trained,
             const dataset::SyntheticEyeRenderer &ren,
             const TrafficConfig &tc)
{
    ServingEngine eng(cfg, trained, ren);
    eng.runTrace(makeTraffic(ren, tc));
    std::string sig;
    char buf[96];
    for (int s = 0; s < eng.sessionCount(); ++s)
        for (const dataset::GazeVec &g : eng.sessionGazeLog(s)) {
            std::snprintf(buf, sizeof(buf), "%a,%a,%a;", g[0], g[1],
                          g[2]);
            sig += buf;
        }
    PerfJson json;
    eng.exportMetrics(json, "serving");
    sig += json.serialize();
    return sig;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string json_path = "BENCH_chaos.json";
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--quick")
            quick = true;
        else
            json_path = argv[i];
    }

    const int sessions = 16;
    const int chips = 4;
    const long frames = quick ? 120 : 480;
    // 156000 lands mid-batch on chip 1 (its in-flight frames get
    // re-dispatched); traffic is a pure function of the seed, so the
    // outage window behaves identically in quick and full runs.
    const long long t_fail = 156000;
    const long long t_rejoin = 306000;

    const core::SystemConfig sys = benchSystem();
    dataset::RenderConfig rc;
    rc.image_size = sys.pipeline.scene_size;
    const dataset::SyntheticEyeRenderer ren(rc, 2019);

    eyetrack::PredictThenFocusPipeline proto(sys.pipeline);
    proto.trainGaze(ren, 200);
    const eyetrack::RidgeGazeEstimator &trained =
        proto.gazeEstimator();

    ServingConfig cfg;
    cfg.system = sys;
    cfg.virtual_chips = chips;
    cfg.scheduler_threads = 0; // hardware concurrency
    cfg.record_gaze = true;
    cfg.record_completions = true;
    cfg.failover.chip_faults = {
        ChipFaultEvent{t_fail, 1, ChipEventKind::Fail, 0},
        ChipFaultEvent{t_rejoin, 1, ChipEventKind::Rejoin, 0},
    };

    TrafficConfig tc;
    tc.sessions = sessions;
    tc.frames_per_session = frames;

    ServingEngine eng(cfg, trained, ren);
    const FleetMetrics f = eng.runTrace(makeTraffic(ren, tc));

    // --- Windowed p99: before the kill, during the outage, and past
    // one ROI-refresh window after the rejoin.
    const long long refresh_window_us =
        (long long)(sys.pipeline.roi_refresh) * cfg.frame_interval_us;
    std::vector<double> pre, outage, recovered;
    for (const CompletionRecord &c : eng.completionLog()) {
        if (c.completion_us < t_fail)
            pre.push_back(c.latency_us);
        else if (c.completion_us < t_rejoin)
            outage.push_back(c.latency_us);
        else if (c.completion_us >= t_rejoin + refresh_window_us)
            recovered.push_back(c.latency_us);
    }
    const double pre_p99 = percentile(pre, 0.99);
    const double outage_p99 = percentile(outage, 0.99);
    const double recovered_p99 = percentile(recovered, 0.99);
    const double recovery_ratio =
        pre_p99 > 0.0 ? recovered_p99 / pre_p99 : 0.0;

    // --- Gates.
    const bool zero_terminations =
        f.sessions_closed == 0 && f.sessions_opened == sessions &&
        eng.activeSessions() == sessions;

    bool finite_gaze = true;
    long long gaze_vectors = 0;
    for (int s = 0; s < eng.sessionCount(); ++s)
        for (const dataset::GazeVec &g : eng.sessionGazeLog(s)) {
            ++gaze_vectors;
            finite_gaze = finite_gaze && std::isfinite(g[0]) &&
                          std::isfinite(g[1]) && std::isfinite(g[2]);
        }

    const bool kill_exercised = f.chip_failures == 1 &&
                                f.chip_rejoins == 1 &&
                                f.redispatched_frames > 0;
    const bool p99_recovered = pre_p99 > 0.0 &&
                               !recovered.empty() &&
                               recovered_p99 <= 1.5 * pre_p99;
    long long outage_tier_ticks = 0;
    for (int t = 1; t <= kNumDegradationTiers; ++t)
        outage_tier_ticks += f.tier_residency[t];
    const bool ladder_round_trip =
        outage_tier_ticks > 0 && f.degradation_tier == 0;
    const bool accounting_ok =
        f.submitted == f.completed + f.queue_drops &&
        f.queue_drops == f.drops_backpressure + f.drops_shed_on_close +
                             f.drops_rate_downgrade + f.drops_failover;

    // --- Zero-fault identity: a generated schedule at all-zero fault
    // rates is empty, and serving under it is bitwise identical to a
    // clean engine (shorter trace: identity needs no soak).
    ServingConfig clean = cfg;
    clean.failover.chip_faults.clear();
    clean.record_completions = false;
    ServingConfig zero_rate = clean;
    ChaosScheduleConfig cc; // all rates zero
    cc.horizon_us = 500000;
    zero_rate.failover.chip_faults =
        makeChipFaultSchedule(cc, sys.hw, chips);
    TrafficConfig id_tc = tc;
    id_tc.frames_per_session = std::min<long>(frames, 120);
    const bool zero_fault_identity =
        zero_rate.failover.chip_faults.empty() &&
        runSignature(clean, trained, ren, id_tc) ==
            runSignature(zero_rate, trained, ren, id_tc);

    // --- Report + JSON.
    TextTable t({"phase", "completions", "p99 us"});
    t.addRow({"pre-fault", std::to_string(pre.size()),
              formatDouble(pre_p99, 0)});
    t.addRow({"outage", std::to_string(outage.size()),
              formatDouble(outage_p99, 0)});
    t.addRow({"recovered", std::to_string(recovered.size()),
              formatDouble(recovered_p99, 0)});

    PerfJson::update(json_path, "chaos", "sessions", double(sessions));
    PerfJson::update(json_path, "chaos", "chips", double(chips));
    PerfJson::update(json_path, "chaos", "frames_per_session",
                     double(frames));
    PerfJson::update(json_path, "chaos", "fail_us", double(t_fail));
    PerfJson::update(json_path, "chaos", "rejoin_us",
                     double(t_rejoin));
    PerfJson::update(json_path, "chaos", "submitted",
                     double(f.submitted));
    PerfJson::update(json_path, "chaos", "completed",
                     double(f.completed));
    PerfJson::update(json_path, "chaos", "queue_drops",
                     double(f.queue_drops));
    PerfJson::update(json_path, "chaos", "drops_backpressure",
                     double(f.drops_backpressure));
    PerfJson::update(json_path, "chaos", "drops_shed_on_close",
                     double(f.drops_shed_on_close));
    PerfJson::update(json_path, "chaos", "drops_rate_downgrade",
                     double(f.drops_rate_downgrade));
    PerfJson::update(json_path, "chaos", "drops_failover",
                     double(f.drops_failover));
    PerfJson::update(json_path, "chaos", "deadline_misses",
                     double(f.deadline_misses));
    PerfJson::update(json_path, "chaos", "chip_failures",
                     double(f.chip_failures));
    PerfJson::update(json_path, "chaos", "chip_rejoins",
                     double(f.chip_rejoins));
    PerfJson::update(json_path, "chaos", "redispatched_frames",
                     double(f.redispatched_frames));
    PerfJson::update(json_path, "chaos", "degraded_res_frames",
                     double(f.degraded_res_frames));
    PerfJson::update(json_path, "chaos", "tier_transitions",
                     double(f.tier_transitions));
    for (int tier = 0; tier <= kNumDegradationTiers; ++tier) {
        char key[40];
        std::snprintf(key, sizeof(key), "tier%d_residency_ticks",
                      tier);
        PerfJson::update(json_path, "chaos", key,
                         double(f.tier_residency[tier]));
    }
    PerfJson::update(json_path, "chaos", "aggregate_fps",
                     f.aggregate_fps);
    PerfJson::update(json_path, "chaos", "p50_latency_us",
                     f.p50_latency_us);
    PerfJson::update(json_path, "chaos", "p99_latency_us",
                     f.p99_latency_us);
    PerfJson::update(json_path, "chaos", "p999_latency_us",
                     f.p999_latency_us);
    PerfJson::update(json_path, "chaos", "failover_p99_latency_us",
                     f.failover_p99_latency_us);
    PerfJson::update(json_path, "chaos", "pre_fault_p99_us", pre_p99);
    PerfJson::update(json_path, "chaos", "outage_p99_us", outage_p99);
    PerfJson::update(json_path, "chaos", "recovered_p99_us",
                     recovered_p99);
    PerfJson::update(json_path, "chaos", "recovery_ratio",
                     recovery_ratio);
    PerfJson::update(json_path, "chaos", "completion_log_dropped",
                     double(eng.completionLogDropped()));

    PerfJson::update(json_path, "acceptance",
                     "zero_session_terminations",
                     zero_terminations ? 1.0 : 0.0);
    PerfJson::update(json_path, "acceptance", "finite_gaze",
                     finite_gaze ? 1.0 : 0.0);
    PerfJson::update(json_path, "acceptance", "chip_kill_exercised",
                     kill_exercised ? 1.0 : 0.0);
    PerfJson::update(json_path, "acceptance",
                     "p99_recovery_within_refresh_window",
                     p99_recovered ? 1.0 : 0.0);
    PerfJson::update(json_path, "acceptance", "ladder_round_trip",
                     ladder_round_trip ? 1.0 : 0.0);
    PerfJson::update(json_path, "acceptance", "accounting_identity",
                     accounting_ok ? 1.0 : 0.0);
    PerfJson::update(json_path, "acceptance",
                     "zero_fault_bitwise_identity",
                     zero_fault_identity ? 1.0 : 0.0);
    PerfJson::update(json_path, "acceptance", "quick_mode",
                     quick ? 1.0 : 0.0);

    const bool all_ok = zero_terminations && finite_gaze &&
                        kill_exercised && p99_recovered &&
                        ladder_round_trip && accounting_ok &&
                        zero_fault_identity;
    std::printf(
        "=== Chaos serving soak (%d sessions, %d chips, %ld "
        "frames/user%s) ===\n"
        "chip 1 killed at %lldus, rejoined at %lldus "
        "(refresh window %lldus)\n"
        "%s\n"
        "completions: %lld of %lld submitted (%lld drops: %lld "
        "backpressure, %lld rate-downgrade, %lld failover), "
        "%lld re-dispatched, %lld served at reduced resolution\n"
        "tier residency (0..4): %lld %lld %lld %lld %lld ticks, "
        "%lld transitions, final tier %d\n"
        "gates: terminations=%s finite-gaze(%lld)=%s kill=%s "
        "p99-recovery(%.2fx<=1.5x)=%s ladder-round-trip=%s "
        "accounting=%s zero-fault-identity=%s\n"
        "overall: %s — results merged into %s\n",
        sessions, chips, frames, quick ? ", --quick" : "", t_fail,
        t_rejoin, refresh_window_us, t.render().c_str(), f.completed,
        f.submitted, f.queue_drops, f.drops_backpressure,
        f.drops_rate_downgrade, f.drops_failover,
        f.redispatched_frames, f.degraded_res_frames,
        f.tier_residency[0], f.tier_residency[1], f.tier_residency[2],
        f.tier_residency[3], f.tier_residency[4], f.tier_transitions,
        f.degradation_tier, zero_terminations ? "ok" : "FAIL",
        gaze_vectors, finite_gaze ? "ok" : "FAIL",
        kill_exercised ? "ok" : "FAIL", recovery_ratio,
        p99_recovered ? "ok" : "FAIL",
        ladder_round_trip ? "ok" : "FAIL",
        accounting_ok ? "ok" : "FAIL",
        zero_fault_identity ? "ok" : "FAIL",
        all_ok ? "PASS" : "FAIL", json_path.c_str());
    return all_ok ? 0 : 1;
}
