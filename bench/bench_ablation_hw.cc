/**
 * @file
 * Hardware design-space ablations beyond the paper's Tab. 6: MAC
 * lane scaling, activation-GB bank width, the partial
 * time-multiplexing donation threshold, and a head-to-head of the
 * three orchestration modes — each isolating one design choice of
 * Sec. 5.
 */

#include <cstdio>

#include "accel/simulator.h"
#include "common/stats.h"

using namespace eyecod;
using namespace eyecod::accel;

int
main()
{
    const EnergyModel energy;
    PipelineWorkloadConfig pc;
    const auto workloads = buildPipelineWorkload(pc);

    // --- MAC lane scaling ---
    {
        TextTable t({"lanes (MACs)", "FPS", "utilization",
                     "power mW", "FPS/W"});
        for (int lanes : {32, 64, 128, 256}) {
            HwConfig hw;
            hw.mac_lanes = lanes;
            const PerfReport r = simulate(workloads, hw, energy);
            t.addRow({std::to_string(lanes) + " (" +
                          std::to_string(hw.totalMacs()) + ")",
                      formatDouble(r.fps, 1),
                      formatDouble(r.utilization * 100.0, 1) + "%",
                      formatDouble(r.power_w * 1e3, 1),
                      formatDouble(r.fps_per_watt, 0)});
        }
        std::printf("=== Ablation: MAC lane scaling (Tab. 1 ships "
                    "128 lanes) ===\n%s\n",
                    t.render().c_str());
    }

    // --- Activation GB bank width (read bandwidth) ---
    {
        TextTable t({"bank width B", "plain-buffer FPS",
                     "SWPR-buffer FPS", "SWPR gain"});
        for (int width : {8, 16, 32, 64}) {
            HwConfig plain;
            plain.act_bank_width_bytes = width;
            plain.swpr_input_buffer = false;
            HwConfig swpr = plain;
            swpr.swpr_input_buffer = true;
            const double f_plain =
                simulate(workloads, plain, energy).fps;
            const double f_swpr =
                simulate(workloads, swpr, energy).fps;
            t.addRow({std::to_string(width),
                      formatDouble(f_plain, 1),
                      formatDouble(f_swpr, 1),
                      formatDouble(f_swpr / f_plain, 2) + "x"});
        }
        std::printf("=== Ablation: Act GB bank width vs the SWPR "
                    "input buffer (Principle #IV) ===\n%s\n",
                    t.render().c_str());
    }

    // --- Partial time-multiplexing donation threshold ---
    {
        TextTable t({"util threshold", "FPS", "seg hidden",
                     "utilization"});
        for (double thr : {0.5, 0.65, 0.8, 0.95}) {
            HwConfig hw;
            hw.partial_util_threshold = thr;
            const PerfReport r = simulate(workloads, hw, energy);
            t.addRow({formatDouble(thr, 2),
                      formatDouble(r.fps, 1),
                      formatDouble(r.seg_hidden_fraction * 100.0, 0)
                          + "%",
                      formatDouble(r.utilization * 100.0, 1) + "%"});
        }
        std::printf("=== Ablation: partial time-multiplexing "
                    "donation threshold (paper uses 0.80) ===\n%s\n",
                    t.render().c_str());
    }

    // --- Orchestration mode head-to-head ---
    {
        TextTable t({"mode", "steady FPS", "worst-frame FPS",
                     "utilization"});
        const std::pair<const char *, OrchestrationMode> modes[] = {
            {"time-multiplexing", OrchestrationMode::TimeMultiplex},
            {"concurrent", OrchestrationMode::Concurrent},
            {"partial time-multiplexing",
             OrchestrationMode::PartialTimeMultiplex},
        };
        for (const auto &[name, mode] : modes) {
            HwConfig hw;
            hw.orchestration = mode;
            const PerfReport r = simulate(workloads, hw, energy);
            t.addRow({name, formatDouble(r.fps, 1),
                      formatDouble(r.fps_peak, 1),
                      formatDouble(r.utilization * 100.0, 1) + "%"});
        }
        std::printf("=== Ablation: the three orchestration modes of "
                    "Sec. 5.1 #I ===\n%s\n",
                    t.render().c_str());
    }

    // --- ROI refresh period vs accelerator load ---
    {
        TextTable t({"refresh 1/N", "FPS", "energy/frame uJ"});
        for (int n : {10, 25, 50, 100}) {
            PipelineWorkloadConfig cfg;
            cfg.roi_refresh = n;
            const PerfReport r =
                simulate(buildPipelineWorkload(cfg), HwConfig{},
                         energy);
            t.addRow({std::to_string(n), formatDouble(r.fps, 1),
                      formatDouble(r.energy_per_frame_j * 1e6, 1)});
        }
        std::printf("=== Ablation: segmentation refresh period vs "
                    "accelerator throughput (Tab. 5 companion) "
                    "===\n%s\n",
                    t.render().c_str());
    }
    return 0;
}
