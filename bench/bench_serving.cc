/**
 * @file
 * Multi-session serving benchmark: sweeps the fleet size (1 / 4 /
 * 16 / 64 users) against the number of virtual accelerator chips
 * (1 / 2 / 4) and reports, per cell, what the serving engine
 * admitted, completed, shed, and missed, plus aggregate FPS, chip
 * utilization, and latency percentiles.
 *
 * Acceptance gates (exit code):
 *  - throughput scaling: 16 sessions on 4 chips sustain >= 3x the
 *    aggregate FPS of 1 session on 4 chips (a single 240 FPS user
 *    cannot feed the fleet; the scheduler must batch across users);
 *  - zero deadline misses in every cell below saturation (admitted
 *    utilization < 0.7);
 *  - graceful overload above saturation: load is shed through typed
 *    admission rejections and/or bounded accounted queue drops
 *    (drop rate < 0.75), never through lost frames;
 *  - accounting identity in every cell after drain:
 *    submitted == completed + queue_drops, and queue_drops
 *    partitions exactly into the per-reason buckets (backpressure /
 *    shed-on-close / rate-downgrade / failover) that BENCH_serving
 *    .json now breaks out per cell.
 *
 * The binary is also the memory-spine auditor: it links the
 * operator new/delete counting hooks, classifies every served frame
 * as steady (gaze-only) or refresh (segmentation / drop handling),
 * and gates on zero heap allocations across all steady frames —
 * the zero-copy serving path's contract. The memory audit merges
 * into BENCH_memory.json (steady/refresh allocation counts and the
 * largest per-session arena footprint).
 *
 * Results print as a table and merge into BENCH_serving.json
 * (override the paths with positional arguments: first the serving
 * JSON, then the memory JSON). --quick shrinks the sweep for
 * sanitizer CI runs.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/alloc_counter.h"
#include "common/perf_json.h"
#include "common/stats.h"
#include "serve/engine.h"

using namespace eyecod;
using namespace eyecod::serve;

namespace {

core::SystemConfig
benchSystem()
{
    core::SystemConfig sys;
    sys.pipeline.camera = eyetrack::CameraKind::Lens;
    sys.pipeline.roi_refresh = 25;
    return sys;
}

struct Cell
{
    int sessions = 0;
    int chips = 0;
    FleetMetrics fleet;
    double admitted_utilization = 0.0;
    bool accounting_ok = false;
};

Cell
runCell(int sessions, int chips, long frames,
        const eyetrack::RidgeGazeEstimator &trained,
        const dataset::SyntheticEyeRenderer &ren)
{
    ServingConfig cfg;
    cfg.system = benchSystem();
    cfg.virtual_chips = chips;
    cfg.scheduler_threads = 0; // hardware concurrency

    TrafficConfig tc;
    tc.sessions = sessions;
    tc.frames_per_session = frames;

    ServingEngine eng(cfg, trained, ren);
    Cell cell;
    cell.sessions = sessions;
    cell.chips = chips;
    cell.fleet = eng.runTrace(makeTraffic(ren, tc));
    // Utilization the admitted fleet asks for (demand / capacity);
    // the saturation classification below keys off this.
    cell.admitted_utilization =
        double(cell.fleet.sessions_opened) *
        eng.serviceModel().amortized_frame_us /
        (double(cfg.frame_interval_us) * double(chips));
    // Two-part identity: every submitted frame is completed or
    // dropped, and every drop carries exactly one typed reason.
    cell.accounting_ok =
        cell.fleet.submitted ==
            cell.fleet.completed + cell.fleet.queue_drops &&
        cell.fleet.queue_drops == cell.fleet.drops_backpressure +
                                      cell.fleet.drops_shed_on_close +
                                      cell.fleet.drops_rate_downgrade +
                                      cell.fleet.drops_failover;
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    // Pull the allocation-counting operator new/delete overrides out
    // of the static library; the memory gate below keys off this.
    const bool hooks = allocHooksForceLink();

    bool quick = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--quick")
            quick = true;
        else
            paths.push_back(argv[i]);
    }
    const std::string json_path =
        paths.size() > 0 ? paths[0] : "BENCH_serving.json";
    const std::string memory_json_path =
        paths.size() > 1 ? paths[1] : "BENCH_memory.json";

    const std::vector<int> session_counts =
        quick ? std::vector<int>{1, 4, 16}
              : std::vector<int>{1, 4, 16, 64};
    const std::vector<int> chip_counts =
        quick ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4};
    const long frames = quick ? 30 : 120;

    const core::SystemConfig sys = benchSystem();
    dataset::RenderConfig rc;
    rc.image_size = sys.pipeline.scene_size;
    const dataset::SyntheticEyeRenderer ren(rc, 2019);

    // One fleet-trained estimator, copied into every session the way
    // a deployment shares a fleet-calibrated model.
    eyetrack::PredictThenFocusPipeline proto(sys.pipeline);
    proto.trainGaze(ren, 200);
    const eyetrack::RidgeGazeEstimator &trained =
        proto.gazeEstimator();

    TextTable t({"sessions", "chips", "admit", "reject", "submit",
                 "done", "drops", "misses", "agg FPS", "util",
                 "p50 us", "p99 us"});

    std::vector<Cell> cells;
    for (int chips : chip_counts) {
        for (int sessions : session_counts) {
            const Cell cell =
                runCell(sessions, chips, frames, trained, ren);
            cells.push_back(cell);
            const FleetMetrics &f = cell.fleet;
            t.addRow({std::to_string(sessions),
                      std::to_string(chips),
                      std::to_string(f.sessions_opened),
                      std::to_string(f.sessions_rejected),
                      std::to_string(f.submitted),
                      std::to_string(f.completed),
                      std::to_string(f.queue_drops),
                      std::to_string(f.deadline_misses),
                      formatDouble(f.aggregate_fps, 1),
                      formatDouble(f.backend_utilization, 3),
                      formatDouble(f.p50_latency_us, 0),
                      formatDouble(f.p99_latency_us, 0)});

            char section[32];
            std::snprintf(section, sizeof(section), "s%d_k%d",
                          sessions, chips);
            PerfJson::update(json_path, section, "sessions_opened",
                             double(f.sessions_opened));
            PerfJson::update(json_path, section,
                             "sessions_rejected",
                             double(f.sessions_rejected));
            PerfJson::update(json_path, section, "submitted",
                             double(f.submitted));
            PerfJson::update(json_path, section, "completed",
                             double(f.completed));
            PerfJson::update(json_path, section, "queue_drops",
                             double(f.queue_drops));
            // Drop breakdown by reason: the total above must equal
            // the sum of these buckets (gated below).
            PerfJson::update(json_path, section, "drops_backpressure",
                             double(f.drops_backpressure));
            PerfJson::update(json_path, section,
                             "drops_shed_on_close",
                             double(f.drops_shed_on_close));
            PerfJson::update(json_path, section,
                             "drops_rate_downgrade",
                             double(f.drops_rate_downgrade));
            PerfJson::update(json_path, section, "drops_failover",
                             double(f.drops_failover));
            PerfJson::update(json_path, section, "deadline_misses",
                             double(f.deadline_misses));
            PerfJson::update(json_path, section, "aggregate_fps",
                             f.aggregate_fps);
            PerfJson::update(json_path, section,
                             "backend_utilization",
                             f.backend_utilization);
            PerfJson::update(json_path, section, "drop_rate",
                             f.drop_rate);
            PerfJson::update(json_path, section,
                             "admitted_utilization",
                             cell.admitted_utilization);
            PerfJson::update(json_path, section, "p50_latency_us",
                             f.p50_latency_us);
            PerfJson::update(json_path, section, "p99_latency_us",
                             f.p99_latency_us);

            PerfJson::update(memory_json_path, section,
                             "steady_frames", double(f.steady_frames));
            PerfJson::update(memory_json_path, section,
                             "steady_allocs", double(f.steady_allocs));
            PerfJson::update(memory_json_path, section,
                             "refresh_frames",
                             double(f.refresh_frames));
            PerfJson::update(memory_json_path, section,
                             "refresh_allocs",
                             double(f.refresh_allocs));
            PerfJson::update(memory_json_path, section,
                             "peak_arena_bytes",
                             double(f.peak_arena_bytes));
        }
    }

    // --- Acceptance gates ---
    const auto findCell = [&](int sessions, int chips) -> const Cell * {
        for (const Cell &c : cells)
            if (c.sessions == sessions && c.chips == chips)
                return &c;
        return nullptr;
    };

    const Cell *one_4k = findCell(1, 4);
    const Cell *sixteen_4k = findCell(16, 4);
    double scaling = 0.0;
    if (one_4k && sixteen_4k &&
        one_4k->fleet.aggregate_fps > 0.0)
        scaling = sixteen_4k->fleet.aggregate_fps /
                  one_4k->fleet.aggregate_fps;
    const bool scaling_ok = scaling >= 3.0;

    bool no_misses_below_saturation = true;
    bool graceful_overload = true;
    bool accounting_ok = true;
    for (const Cell &c : cells) {
        accounting_ok = accounting_ok && c.accounting_ok;
        if (c.admitted_utilization < 0.7) {
            no_misses_below_saturation =
                no_misses_below_saturation &&
                c.fleet.deadline_misses == 0;
        }
        // Overload (more demand than the admission bound accepts, or
        // an oversubscribed admitted fleet) must surface as typed
        // rejections and/or bounded accounted drops.
        if (c.admitted_utilization > 1.0 ||
            c.fleet.sessions_rejected > 0) {
            const bool shed_typed =
                c.fleet.sessions_rejected > 0 ||
                c.fleet.queue_drops > 0;
            graceful_overload = graceful_overload && shed_typed &&
                                c.fleet.drop_rate < 0.75;
        }
    }

    PerfJson::update(json_path, "acceptance", "fps_scaling_16v1_k4",
                     scaling);
    PerfJson::update(json_path, "acceptance",
                     "fps_scaling_at_least_3x",
                     scaling_ok ? 1.0 : 0.0);
    PerfJson::update(json_path, "acceptance",
                     "zero_misses_below_saturation",
                     no_misses_below_saturation ? 1.0 : 0.0);
    PerfJson::update(json_path, "acceptance", "graceful_overload",
                     graceful_overload ? 1.0 : 0.0);
    PerfJson::update(json_path, "acceptance", "accounting_identity",
                     accounting_ok ? 1.0 : 0.0);
    PerfJson::update(json_path, "acceptance", "quick_mode",
                     quick ? 1.0 : 0.0);

    // --- Memory-spine gate: zero heap allocations on steady frames.
    long long steady_frames = 0, steady_allocs = 0;
    long long refresh_frames = 0, refresh_allocs = 0;
    long long peak_arena_bytes = 0;
    for (const Cell &c : cells) {
        steady_frames += c.fleet.steady_frames;
        steady_allocs += c.fleet.steady_allocs;
        refresh_frames += c.fleet.refresh_frames;
        refresh_allocs += c.fleet.refresh_allocs;
        peak_arena_bytes =
            std::max(peak_arena_bytes, c.fleet.peak_arena_bytes);
    }
    const double allocs_per_steady_frame =
        steady_frames > 0
            ? double(steady_allocs) / double(steady_frames)
            : 0.0;
    // Without the hooks linked every counter reads zero, which would
    // make the gate pass vacuously — require the hooks and a
    // non-empty steady population before claiming the proof.
    const bool memory_ok =
        hooks && steady_frames > 0 && steady_allocs == 0;

    PerfJson::update(memory_json_path, "memory", "hooks_installed",
                     hooks ? 1.0 : 0.0);
    PerfJson::update(memory_json_path, "memory", "steady_frames",
                     double(steady_frames));
    PerfJson::update(memory_json_path, "memory", "steady_allocs",
                     double(steady_allocs));
    PerfJson::update(memory_json_path, "memory",
                     "allocs_per_steady_frame",
                     allocs_per_steady_frame);
    PerfJson::update(memory_json_path, "memory", "refresh_frames",
                     double(refresh_frames));
    PerfJson::update(memory_json_path, "memory", "refresh_allocs",
                     double(refresh_allocs));
    PerfJson::update(memory_json_path, "memory", "peak_arena_bytes",
                     double(peak_arena_bytes));
    PerfJson::update(memory_json_path, "memory",
                     "zero_steady_state_allocs",
                     memory_ok ? 1.0 : 0.0);
    PerfJson::update(memory_json_path, "memory", "quick_mode",
                     quick ? 1.0 : 0.0);

    const bool all_ok = scaling_ok && no_misses_below_saturation &&
                        graceful_overload && accounting_ok &&
                        memory_ok;
    std::printf(
        "=== Multi-session serving sweep (%ld frames/user%s) ===\n"
        "%s\n"
        "aggregate FPS scaling, 16 vs 1 sessions on 4 chips: %.2fx "
        "(acceptance >= 3x)\n"
        "zero deadline misses below saturation (util < 0.7): %s\n"
        "graceful overload (typed rejections / bounded drops): %s\n"
        "accounting identity (submitted == completed + drops): %s\n"
        "memory spine: %lld steady frames, %.3f allocs/frame "
        "(%lld refresh frames, %lld allocs), peak arena %lld B/session"
        " — %s\n"
        "overall: %s — results merged into %s and %s\n",
        frames, quick ? ", --quick" : "", t.render().c_str(),
        scaling, no_misses_below_saturation ? "yes" : "NO",
        graceful_overload ? "yes" : "NO",
        accounting_ok ? "yes" : "NO", steady_frames,
        allocs_per_steady_frame, refresh_frames, refresh_allocs,
        peak_arena_bytes, memory_ok ? "zero-alloc" : "FAIL",
        all_ok ? "PASS" : "FAIL", json_path.c_str(),
        memory_json_path.c_str());
    return all_ok ? 0 : 1;
}
